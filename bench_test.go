// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation, each regenerating the exhibit through
// internal/experiments (the same code path as cmd/pcmrepro), plus
// ablation benchmarks for the design choices called out in DESIGN.md.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Reproduce a single exhibit with full output:
//
//	go run ./cmd/pcmrepro -id F8
package repro

import (
	"context"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bch"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/drift"
	"repro/internal/experiments"
	"repro/internal/levels"
	"repro/internal/logic"
	"repro/internal/memsim"
	"repro/internal/pcmarray"
	"repro/internal/pcmserve"
	"repro/internal/rng"
	"repro/internal/trace"
)

// benchOpts keeps per-iteration cost moderate; use cmd/pcmrepro with
// -samples 1000000000 for the paper's full Monte Carlo depth.
var benchOpts = experiments.Options{
	MCSamples: 1_000_000,
	Seed:      20130817,
	MemsimOps: 100_000,
}

// benchExperiment runs one exhibit per iteration and keeps its output.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		res := spec.Run(benchOpts)
		sink += len(res.Rows)
	}
	_ = sink
}

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "T1") }
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "F1") }
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkFigure3 regenerates the per-state 4LCn drift error rates
// (Monte Carlo over the full time grid).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "F3") }

func BenchmarkFigure4(b *testing.B)       { benchExperiment(b, "F4") }
func BenchmarkRefreshBudget(b *testing.B) { benchExperiment(b, "S4.1") }

// BenchmarkFigure5 regenerates the BLER-vs-CER surface for No-ECC through
// BCH-10.
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "F5") }

// BenchmarkFigure6 and 7 include the constrained mapping optimization
// (cached after the first run, so steady-state cost is the CER audit).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "F6") }
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "F7") }

// BenchmarkFigure8 regenerates the headline five-design drift comparison.
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "F8") }

func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "F9") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "T2") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "F10-F12") }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "F13") }
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "F14") }

// BenchmarkTable3 includes the permutation-coding Monte Carlo and the
// retention-limit searches.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "T3") }

func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "T4") }
func BenchmarkFigure15(b *testing.B) { benchExperiment(b, "F15") }
func BenchmarkTable5(b *testing.B)   { benchExperiment(b, "T5") }

// BenchmarkFigure16 runs the full 6-workload x 4-design system sweep.
func BenchmarkFigure16(b *testing.B) { benchExperiment(b, "F16") }

// BenchmarkAblationExhibits times the registered ablation experiments
// (A1 drift-mitigation ladder, A2 multi-level cells, A5 write cost).
// A3 (lifetime) and A4 (refresh sweep) are heavier; run them via
// cmd/pcmrepro.
func BenchmarkAblationExhibitA1(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkAblationExhibitA2(b *testing.B) { benchExperiment(b, "A2") }
func BenchmarkAblationExhibitA5(b *testing.B) { benchExperiment(b, "A5") }

// ---- Ablation benchmarks (DESIGN.md Section 6) ----

// BenchmarkAblationMappingOptimal quantifies the optimal mapping's CER
// advantage at the 17-minute operating point.
func BenchmarkAblationMappingOptimal(b *testing.B) {
	naive, opt := levels.FourLCNaive(), levels.FourLCOpt()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += naive.QuadCER(1020) / opt.QuadCER(1020)
	}
	_ = sink
}

// BenchmarkAblationSmartEncoding isolates the smart-encoding skew.
func BenchmarkAblationSmartEncoding(b *testing.B) {
	naive, smart := levels.FourLCNaive(), levels.FourLCSmart()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += naive.QuadCER(1020) / smart.QuadCER(1020)
	}
	_ = sink
}

// BenchmarkAblationRateSwitch measures the cost of the conservative 3LC
// drift-rate switch at a ten-year horizon.
func BenchmarkAblationRateSwitch(b *testing.B) {
	with := levels.ThreeLCNaive()
	without := with
	without.RateSwitchAt = 0
	const tenYears = 10 * 365.25 * 86400
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += with.QuadCER(tenYears) - without.QuadCER(tenYears)
	}
	_ = sink
}

// BenchmarkAblationORChain compares the two Figure 13 prefix networks at
// the paper's 177-pair width.
func BenchmarkAblationORChain(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += logic.ORChainFO4(177, logic.Ripple) / logic.ORChainFO4(177, logic.Sklansky)
	}
	_ = sink
}

// BenchmarkAblationBCHStrength sweeps decoder cost across code strengths
// on real codewords (not just the FO4 model): BCH-1 vs BCH-10 decode.
func BenchmarkAblationBCHStrength(b *testing.B) {
	r := rng.New(1)
	mk := func(t, msgBits int) (c *bch.Code, msg, parity bitvec.Vector) {
		c = bch.Must(10, t, msgBits)
		msg = bitvec.New(msgBits)
		for i := 0; i < msgBits; i++ {
			msg.Set(i, uint(r.Uint64())&1)
		}
		parity = c.Encode(msg)
		msg.Flip(17)
		return c, msg, parity
	}
	c1, m1, p1 := mk(1, 708)
	c10, m10, p10 := mk(10, 512)
	b.Run("BCH-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := m1.Clone()
			p := p1.Clone()
			c1.Decode(m, p)
		}
	})
	b.Run("BCH-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := m10.Clone()
			p := p10.Clone()
			c10.Decode(m, p)
		}
	})
}

// BenchmarkArchPipelines measures the end-to-end block write+read cost of
// each architecture's full Figure 9 pipeline.
func BenchmarkArchPipelines(b *testing.B) {
	noWear := pcmarray.DefaultOptions(1)
	noWear.EnduranceMean = 0
	data := make([]byte, core.BlockBytes)
	for i := range data {
		data[i] = byte(i)
	}
	archs := []core.Arch{
		core.NewThreeLC(16, core.ThreeLCConfig{Array: noWear}),
		core.NewFourLC(16, core.FourLCConfig{Array: noWear}),
		core.NewPermutation(16, noWear),
	}
	for _, a := range archs {
		a := a
		b.Run(a.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				blk := i & 15
				if err := a.Write(blk, data); err != nil {
					b.Fatal(err)
				}
				if _, err := a.Read(blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonteCarloThroughput reports raw drift-sampling speed, the
// quantity that bounds full 1e9-sample reproduction runs.
func BenchmarkMonteCarloThroughput(b *testing.B) {
	specs := levels.FourLCNaive().Specs()
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	times := []float64{2, 32, 1020, 32400, 1.0368e6, 3.15e7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		drift.MCCERCurve(specs, probs, times, 1_000_000, uint64(i+1), 0)
	}
}

// BenchmarkMemsimThroughput reports simulator speed per design point.
func BenchmarkMemsimThroughput(b *testing.B) {
	for _, d := range memsim.Designs() {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			cfg := memsim.ConfigFor(d)
			for i := 0; i < b.N; i++ {
				memsim.Run(cfg, trace.New(trace.Mcf, 100_000, uint64(i+1)))
			}
		})
	}
}

// BenchmarkPCMServe measures the networked serving layer end to end:
// a loopback pcmserve server over a 4-shard 3LC device, driven by
// concurrent pipelined clients. ns/op is the per-request wire+device
// latency under load; with -benchmem, MB/s follows from the 64-byte
// op payload.
func BenchmarkPCMServe(b *testing.B) {
	shards, err := pcmserve.NewShards(pcmserve.ShardsConfig{
		Shards:     4,
		QueueDepth: 64,
		Device: device.Config{
			Kind:           device.ThreeLC,
			Blocks:         256,
			Seed:           benchOpts.Seed,
			DisableWearout: true,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer shards.Close()
	srv := pcmserve.NewServer(shards, pcmserve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()
	size := shards.Size()

	for _, mode := range []string{"write", "read", "mixed"} {
		mode := mode
		b.Run(mode, func(b *testing.B) { benchServedOps(b, addr, size, mode) })
	}
}

// benchServedOps drives one benchmark mode through pipelined clients,
// recording per-op latency so the run reports a served-op p99 next to
// ns/op — the regression gate cmd/benchdiff compares across runs.
func benchServedOps(b *testing.B, addr string, size int64, mode string) {
	var mu sync.Mutex
	var all []time.Duration
	b.SetBytes(core.BlockBytes)
	b.RunParallel(func(pb *testing.PB) {
		c, err := pcmserve.Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		buf := make([]byte, core.BlockBytes)
		lat := make([]time.Duration, 0, 4096)
		var i int64
		for pb.Next() {
			off := (i * 8 * core.BlockBytes) % (size - core.BlockBytes)
			t0 := time.Now()
			var err error
			switch {
			case mode == "write" || (mode == "mixed" && i%3 == 0):
				_, err = c.WriteAt(buf, off)
			default:
				_, err = c.ReadAt(buf, off)
			}
			if err != nil {
				b.Error(err)
				return
			}
			lat = append(lat, time.Since(t0))
			i++
		}
		mu.Lock()
		all = append(all, lat...)
		mu.Unlock()
	})
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		idx := len(all) * 99 / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		b.ReportMetric(float64(all[idx].Nanoseconds())/1e3, "p99-us")
	}
}

// BenchmarkPCMServeLive measures the drift-faithful serving mode: live
// 4LCo shards at the paper's 1020 s refresh interval, time-compressed
// so the budgeted refresh scheduler cycles continuously during the
// benchmark. The delta against BenchmarkPCMServe is the cost of drift
// bookkeeping plus refresh interference on the foreground path.
func BenchmarkPCMServeLive(b *testing.B) {
	shards, err := pcmserve.NewShards(pcmserve.ShardsConfig{
		Shards:     4,
		QueueDepth: 64,
		Device:     device.Config{Blocks: 256, Seed: benchOpts.Seed},
		Live: &pcmserve.LiveConfig{
			Levels:                 4,
			RefreshIntervalSeconds: 1020,
			TimeScale:              21600, // quarter sim day per wall second
			WriteBudgetBytesPerSec: 40e6,  // the paper's 40 MB/s
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer shards.Close()
	srv := pcmserve.NewServer(shards, pcmserve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()
	size := shards.Size()

	for _, mode := range []string{"write", "read", "mixed"} {
		mode := mode
		b.Run(mode, func(b *testing.B) { benchServedOps(b, addr, size, mode) })
	}
	if st := shards.LiveStats(); st.UncorrectableReads > 0 {
		b.Fatalf("lost data during benchmark: %d uncorrectable reads", st.UncorrectableReads)
	}
}
