// Package repro is a from-scratch Go reproduction of Yoon, Chang,
// Schreiber & Jouppi, "Practical Nonvolatile Multilevel-Cell Phase
// Change Memory" (SC '13).
//
// The library lives under internal/ (see README.md for the layer map),
// the experiment harness regenerating every table and figure is
// internal/experiments (driven by cmd/pcmrepro and the benchmarks in
// bench_test.go), and runnable demonstrations are under examples/.
//
// Start with DESIGN.md for the system inventory and the per-experiment
// index, and EXPERIMENTS.md for paper-versus-measured results.
package repro
