package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2.75, 0.9970202367649454},
		{-2.75, 0.002979763235054556},
		{5, 0.9999997133484281},
	}
	for _, c := range cases {
		if got := NormCDF(c.z); !almostEq(got, c.want, 1e-12) {
			t.Errorf("NormCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormSFTail(t *testing.T) {
	// Survival function must remain accurate deep into the tail where
	// 1-Φ(z) underflows in the naive form.
	got := NormSF(8)
	want := 6.22096057427178e-16
	if !almostEq(got, want, 1e-9) {
		t.Errorf("NormSF(8) = %v, want %v", got, want)
	}
	if NormSF(25) <= 0 {
		t.Error("NormSF(25) underflowed to zero")
	}
}

func TestNormCDFSFComplement(t *testing.T) {
	for z := -6.0; z <= 6.0; z += 0.25 {
		if s := NormCDF(z) + NormSF(z); !almostEq(s, 1, 1e-12) {
			t.Errorf("CDF+SF at z=%v is %v", z, s)
		}
	}
}

func TestNormInvCDFRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-6, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-6} {
		z := NormInvCDF(p)
		if got := NormCDF(z); !almostEq(got, p, 1e-10) {
			t.Errorf("NormCDF(NormInvCDF(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormInvCDF(0), -1) || !math.IsInf(NormInvCDF(1), 1) {
		t.Error("NormInvCDF endpoints wrong")
	}
	if !math.IsNaN(NormInvCDF(-0.1)) {
		t.Error("NormInvCDF(-0.1) should be NaN")
	}
}

func TestTruncNormBasics(t *testing.T) {
	tn := TruncNorm{Mean: 4, SD: 1.0 / 6, Lo: 4 - 2.75/6, Hi: 4 + 2.75/6}
	if got := tn.CDF(tn.Lo - 1); got != 0 {
		t.Errorf("CDF below Lo = %v", got)
	}
	if got := tn.CDF(tn.Hi + 1); got != 1 {
		t.Errorf("CDF above Hi = %v", got)
	}
	if got := tn.CDF(4); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("CDF at mean = %v, want 0.5", got)
	}
	if got := tn.SF(4); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("SF at mean = %v, want 0.5", got)
	}
	for x := tn.Lo; x <= tn.Hi; x += 0.01 {
		if s := tn.CDF(x) + tn.SF(x); !almostEq(s, 1, 1e-10) {
			t.Fatalf("CDF+SF at %v = %v", x, s)
		}
	}
}

func TestTruncNormPDFIntegratesToOne(t *testing.T) {
	tn := TruncNorm{Mean: 0, SD: 1, Lo: -2, Hi: 1.5}
	got := GaussLegendrePanels(tn.PDF, tn.Lo, tn.Hi, 4)
	if !almostEq(got, 1, 1e-10) {
		t.Errorf("integral of truncated pdf = %v", got)
	}
}

func TestTruncNormMatchesSampling(t *testing.T) {
	tn := TruncNorm{Mean: 5, SD: 1.0 / 6, Lo: 5 - 2.75/6, Hi: 5 + 2.75/6}
	r := rng.New(123)
	const n = 200000
	x := 5.1
	count := 0
	for i := 0; i < n; i++ {
		if r.TruncNorm(tn.Mean, tn.SD, tn.Lo, tn.Hi) <= x {
			count++
		}
	}
	emp := float64(count) / n
	if math.Abs(emp-tn.CDF(x)) > 0.005 {
		t.Errorf("empirical CDF %v vs analytic %v", emp, tn.CDF(x))
	}
}

func TestLogChoose(t *testing.T) {
	if got := LogChoose(10, 3); !almostEq(got, math.Log(120), 1e-12) {
		t.Errorf("LogChoose(10,3) = %v", got)
	}
	if got := LogChoose(0, 0); !almostEq(got, 0, 1e-12) {
		t.Errorf("LogChoose(0,0) = %v", got)
	}
	if !math.IsInf(LogChoose(5, 6), -1) {
		t.Error("LogChoose(5,6) should be -Inf")
	}
}

// naiveBinomialTail computes the complement sum directly for small n.
func naiveBinomialTail(n, k int, p float64) float64 {
	sum := 0.0
	for j := k + 1; j <= n; j++ {
		sum += math.Exp(LogChoose(n, j)) * math.Pow(p, float64(j)) * math.Pow(1-p, float64(n-j))
	}
	return sum
}

func TestBinomialTailMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 5, 20, 100} {
		for _, k := range []int{0, 1, 3, 10} {
			if k >= n {
				continue
			}
			for _, p := range []float64{1e-6, 1e-3, 0.1, 0.5, 0.9} {
				got := BinomialTail(n, k, p)
				want := naiveBinomialTail(n, k, p)
				if !almostEq(got, want, 1e-9) {
					t.Errorf("BinomialTail(%d,%d,%v) = %v, want %v", n, k, p, got, want)
				}
			}
		}
	}
}

func TestBinomialTailEdgeCases(t *testing.T) {
	if got := BinomialTail(100, 5, 0); got != 0 {
		t.Errorf("p=0 tail = %v", got)
	}
	if got := BinomialTail(100, 5, 1); got != 1 {
		t.Errorf("p=1 tail = %v", got)
	}
	if got := BinomialTail(100, 100, 0.5); got != 0 {
		t.Errorf("k=n tail = %v", got)
	}
	if got := BinomialTail(100, -1, 0.5); got != 1 {
		t.Errorf("k=-1 tail = %v", got)
	}
}

func TestBinomialTailDeepTail(t *testing.T) {
	// 256-cell block, BCH-10, CER 1e-3: the paper's Section 5.3 regime.
	// P(X > 10) with n=256, p=1e-3: the dominant term is
	// C(256,11) 1e-33 ≈ 3.2e-17... verify against the log variant and
	// positivity.
	p := BinomialTail(256, 10, 1e-3)
	lp := LogBinomialTail(256, 10, 1e-3)
	if p <= 0 || p > 1e-10 {
		t.Errorf("deep tail = %v out of expected range", p)
	}
	if !almostEq(math.Log(p), lp, 1e-9) {
		t.Errorf("log tail mismatch: log(%v)=%v vs %v", p, math.Log(p), lp)
	}
}

func TestBinomialTailMonotonicInP(t *testing.T) {
	prev := 0.0
	for _, p := range []float64{1e-9, 1e-7, 1e-5, 1e-3, 1e-1} {
		cur := BinomialTail(708, 1, p)
		if cur < prev {
			t.Fatalf("tail not monotone in p: %v after %v", cur, prev)
		}
		prev = cur
	}
}

func TestBinomialTailMonotonicInK(t *testing.T) {
	prev := 1.1
	for k := 0; k < 12; k++ {
		cur := BinomialTail(512, k, 1e-3)
		if cur > prev {
			t.Fatalf("tail not monotone in k at k=%d", k)
		}
		prev = cur
	}
}

func TestBinomialTailProperty(t *testing.T) {
	f := func(n16 uint16, k8 uint8, pRaw uint32) bool {
		n := int(n16%500) + 1
		k := int(k8) % (n + 1)
		p := float64(pRaw%1000000) / 1000000
		got := BinomialTail(n, k, p)
		return got >= 0 && got <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussLegendrePolynomialExact(t *testing.T) {
	// Exact for x^10 on [0, 2]: integral = 2^11/11.
	got := GaussLegendre(func(x float64) float64 { return math.Pow(x, 10) }, 0, 2)
	want := math.Pow(2, 11) / 11
	if !almostEq(got, want, 1e-12) {
		t.Errorf("GL x^10 = %v, want %v", got, want)
	}
}

func TestGaussLegendreGaussian(t *testing.T) {
	got := GaussLegendrePanels(NormPDF, -8, 8, 8)
	if !almostEq(got, 1, 1e-12) {
		t.Errorf("integral of normal pdf = %v", got)
	}
}

func TestGaussLegendreDegenerate(t *testing.T) {
	if got := GaussLegendre(math.Sin, 1, 1); got != 0 {
		t.Errorf("zero-width integral = %v", got)
	}
	// Reversed limits flip the sign.
	a := GaussLegendre(math.Exp, 0, 1)
	b := GaussLegendre(math.Exp, 1, 0)
	if !almostEq(a, -b, 1e-12) {
		t.Errorf("reversed limits: %v vs %v", a, b)
	}
}

func BenchmarkBinomialTail(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += BinomialTail(708, 1, 1e-5)
	}
	_ = sink
}

func BenchmarkGaussLegendre(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += GaussLegendre(NormPDF, -4, 4)
	}
	_ = sink
}
