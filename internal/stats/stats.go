// Package stats provides the numerical-statistics substrate of the
// reproduction: Gaussian and truncated-Gaussian distribution functions,
// numerically stable binomial tail probabilities (used for block error
// rates down to 1E-15 and beyond), and fixed-order Gauss–Legendre
// quadrature (used by the deterministic cell-error-rate integrator).
package stats

import "math"

// NormCDF returns Φ(z), the standard normal cumulative distribution.
func NormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormPDF returns φ(z), the standard normal density.
func NormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// NormSF returns the survival function 1-Φ(z), accurate in the upper tail.
func NormSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// NormInvCDF returns Φ⁻¹(p) using Acklam's rational approximation refined
// by one Halley step; the result is accurate to full double precision for
// p in (0, 1). It returns ±Inf for p = 0, 1 and NaN outside [0, 1].
func NormInvCDF(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// TruncNorm describes a Gaussian N(Mean, SD²) truncated to [Lo, Hi].
type TruncNorm struct {
	Mean, SD, Lo, Hi float64
}

// mass returns the untruncated probability mass inside [Lo, Hi].
func (t TruncNorm) mass() float64 {
	return NormCDF((t.Hi-t.Mean)/t.SD) - NormCDF((t.Lo-t.Mean)/t.SD)
}

// CDF returns P(X <= x) for the truncated distribution.
func (t TruncNorm) CDF(x float64) float64 {
	switch {
	case x <= t.Lo:
		return 0
	case x >= t.Hi:
		return 1
	}
	num := NormCDF((x-t.Mean)/t.SD) - NormCDF((t.Lo-t.Mean)/t.SD)
	return num / t.mass()
}

// SF returns P(X > x), computed in the upper tail for accuracy.
func (t TruncNorm) SF(x float64) float64 {
	switch {
	case x <= t.Lo:
		return 1
	case x >= t.Hi:
		return 0
	}
	num := NormSF((x-t.Mean)/t.SD) - NormSF((t.Hi-t.Mean)/t.SD)
	return num / t.mass()
}

// PDF returns the truncated density at x.
func (t TruncNorm) PDF(x float64) float64 {
	if x < t.Lo || x > t.Hi {
		return 0
	}
	return NormPDF((x-t.Mean)/t.SD) / (t.SD * t.mass())
}

// LogChoose returns log(C(n, k)) using the log-gamma function.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// BinomialTail returns P(X > k) for X ~ Binomial(n, p): the probability
// that more than k of n independent trials fail. This is the block error
// rate of an n-cell block protected by a k-error-correcting code when each
// cell errs independently with probability p. The sum is evaluated in log
// space from the smallest term up, so results far below the double-
// precision underflow of naive evaluation (e.g. 1E-300) remain exact to
// several digits.
func BinomialTail(n, k int, p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		if k < n {
			return 1
		}
		return 0
	case k >= n:
		return 0
	case k < 0:
		return 1
	}
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	// Term j: C(n,j) p^j q^(n-j) for j = k+1..n. Accumulate via
	// log-sum-exp anchored at the largest term.
	maxLog := math.Inf(-1)
	logs := make([]float64, 0, n-k)
	for j := k + 1; j <= n; j++ {
		l := LogChoose(n, j) + float64(j)*logP + float64(n-j)*logQ
		logs = append(logs, l)
		if l > maxLog {
			maxLog = l
		}
		// Terms decay geometrically once past the mode; stop when
		// negligible relative to the max so n in the thousands stays fast.
		if l < maxLog-745 && j > int(float64(n)*p)+1 {
			break
		}
	}
	if math.IsInf(maxLog, -1) {
		return 0
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	return math.Exp(maxLog) * sum
}

// LogBinomialTail returns log(P(X > k)) for X ~ Binomial(n, p), usable even
// when the tail underflows float64 (it returns the log directly).
func LogBinomialTail(n, k int, p float64) float64 {
	switch {
	case p <= 0 || k >= n:
		return math.Inf(-1)
	case k < 0:
		return 0
	}
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	maxLog := math.Inf(-1)
	logs := make([]float64, 0, n-k)
	for j := k + 1; j <= n; j++ {
		l := LogChoose(n, j) + float64(j)*logP + float64(n-j)*logQ
		logs = append(logs, l)
		if l > maxLog {
			maxLog = l
		}
		if l < maxLog-745 && j > int(float64(n)*p)+1 {
			break
		}
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	return maxLog + math.Log(sum)
}

// glNode holds precomputed 64-point Gauss–Legendre abscissae and weights
// on [-1, 1], generated by Newton iteration on the Legendre polynomial.
var glX, glW = legendre(64)

// legendre computes n-point Gauss–Legendre nodes and weights on [-1, 1].
func legendre(n int) ([]float64, []float64) {
	x := make([]float64, n)
	w := make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Initial guess: Chebyshev approximation of the i-th root.
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = ((2*float64(j)+1)*z*p2 - float64(j)*p3) / float64(j+1)
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1)
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) < 1e-15 {
				break
			}
		}
		x[i] = -z
		x[n-1-i] = z
		w[i] = 2 / ((1 - z*z) * pp * pp)
		w[n-1-i] = w[i]
	}
	return x, w
}

// GaussLegendre integrates f over [a, b] with 64-point Gauss–Legendre
// quadrature. It is exact for polynomials up to degree 127 and accurate to
// near machine precision for the smooth Gaussian integrands used here.
func GaussLegendre(f func(float64) float64, a, b float64) float64 {
	if a == b {
		return 0
	}
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)
	sum := 0.0
	for i, xi := range glX {
		sum += glW[i] * f(mid+half*xi)
	}
	return half * sum
}

// GaussLegendrePanels splits [a, b] into panels and applies 64-point
// quadrature on each, for integrands with localized structure.
func GaussLegendrePanels(f func(float64) float64, a, b float64, panels int) float64 {
	if panels < 1 {
		panels = 1
	}
	h := (b - a) / float64(panels)
	sum := 0.0
	for i := 0; i < panels; i++ {
		sum += GaussLegendre(f, a+float64(i)*h, a+float64(i+1)*h)
	}
	return sum
}
