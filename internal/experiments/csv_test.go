package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestCSVFormat(t *testing.T) {
	r := Result{
		ID:     "X",
		Title:  "csv check",
		Header: []string{"a", "b,with comma", `c"quoted"`},
		Rows: [][]string{
			{"1", "2", "3"},
			{"x,y", `he said "hi"`, "plain"},
		},
	}
	got := r.CSV()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), got)
	}
	if lines[0] != `a,"b,with comma","c""quoted"""` {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,2,3" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != `"x,y","he said ""hi""",plain` {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestCSVOfEveryExhibitParses(t *testing.T) {
	// Every exhibit's CSV must parse as RFC-4180 with rectangular shape
	// and round-trip the original cells.
	for _, s := range []string{"T1", "F4", "F15", "T5"} {
		spec, err := ByID(s)
		if err != nil {
			t.Fatal(err)
		}
		res := spec.Run(cheap)
		records, err := csv.NewReader(strings.NewReader(res.CSV())).ReadAll()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(records) != len(res.Rows)+1 {
			t.Fatalf("%s: %d records, want %d", s, len(records), len(res.Rows)+1)
		}
		for j, cell := range records[0] {
			if cell != res.Header[j] {
				t.Errorf("%s: header cell %d = %q, want %q", s, j, cell, res.Header[j])
			}
		}
		for i, row := range res.Rows {
			for j, cell := range row {
				if records[i+1][j] != cell {
					t.Errorf("%s: cell (%d,%d) = %q, want %q", s, i, j, records[i+1][j], cell)
				}
			}
		}
	}
}
