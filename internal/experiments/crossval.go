package experiments

import (
	"errors"
	"fmt"

	"repro/internal/bler"
	"repro/internal/core"
	"repro/internal/levels"
	"repro/internal/pcmarray"
)

// AblationCrossValidation closes the loop between the paper's two
// methodology layers: the analytic reliability chain (drift model →
// quadrature CER → binomial BLER, Figures 5 and 8) and the actual
// device pipeline (cell array → BCH-10 → ECP → Gray decode, Figure 9).
// At the paper's 17-minute operating point block errors are ~1E-14 —
// unobservable in simulation — so the refresh interval is stretched
// until the predicted BLER is measurable, and the device-measured block
// error rate is compared against the prediction at the same interval.
func AblationCrossValidation(o Options) Result {
	o = o.withDefaults()
	const blocks = 48
	// The device datapath stores raw Gray-coded data (no smart encoding),
	// so its state occupancy is near-uniform; the prediction must use the
	// optimal geometry with uniform probabilities, not 4LCo's assumed
	// 35/15/15/35 skew, to be comparing the same system.
	mapping := levels.FourLCOpt()
	mapping.Probs = []float64{0.25, 0.25, 0.25, 0.25}

	r := Result{
		ID:    "A7",
		Title: "Cross-validation: analytic BLER vs measured device block errors (4LCo)",
		Header: []string{"scrub interval", "CER (quad)", "BLER predicted",
			"periods", "block errors", "BLER measured"},
		Notes: []string{
			"prediction: BinomialTail(306 cells, BCH-10, CER); measurement: full Figure 9 pipeline",
			"detected + miscorrected errors both count as block errors (data compared bytewise)",
		},
	}

	for _, iv := range []struct {
		label   string
		seconds float64
		periods int
	}{
		{"9hour", 32400, 24},
		{"1day", 86400, 16},
		{"4day", 4 * 86400, 12},
	} {
		cer := mapping.QuadCER(iv.seconds)
		predicted := bler.BlockError(306, 10, cer)

		opt := pcmarray.DefaultOptions(o.Seed)
		opt.EnduranceMean = 0
		dev := core.NewFourLC(blocks, core.FourLCConfig{Array: opt})
		want := make([][]byte, blocks)
		for b := 0; b < blocks; b++ {
			want[b] = make([]byte, core.BlockBytes)
			for i := range want[b] {
				want[b][i] = byte(b*31 + i*7)
			}
			if err := dev.Write(b, want[b]); err != nil {
				panic(err)
			}
		}
		errorsSeen, trials := 0, 0
		for p := 0; p < iv.periods; p++ {
			dev.Array().Advance(iv.seconds)
			for b := 0; b < blocks; b++ {
				got, err := dev.Read(b)
				trials++
				bad := err != nil && errors.Is(err, core.ErrUncorrectable)
				if !bad {
					for i := range got {
						if got[i] != want[b][i] {
							bad = true
							break
						}
					}
				}
				if bad {
					errorsSeen++
				}
				// Scrub: rewrite the intended data (as refresh would,
				// after higher-level recovery for lost blocks).
				if werr := dev.Write(b, want[b]); werr != nil {
					panic(werr)
				}
			}
		}
		r.Rows = append(r.Rows, []string{
			iv.label,
			sci(cer),
			sci(predicted),
			fmt.Sprintf("%d", trials),
			fmt.Sprintf("%d", errorsSeen),
			sci(float64(errorsSeen) / float64(trials)),
		})
	}
	return r
}
