package experiments

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/trace"
)

// AblationWriteCancellation measures write cancellation and write
// pausing (Qureshi et al., the paper's reference [25]) on the 3LC
// design: demand reads interrupt in-flight data writes — cancellation
// restarts the write from scratch, pausing keeps its progress. Both cut
// read tail latency dramatically; cancellation pays with wasted write
// work (longer runtime on write-bound traces), which is precisely why
// the original paper pairs the two.
func AblationWriteCancellation(o Options) Result {
	o = o.withDefaults()
	r := Result{
		ID:    "A8",
		Title: "Ablation: write cancellation and pausing (3LC memory system)",
		Header: []string{"workload", "read p99 base/cancel/pause",
			"avg read base/cancel/pause (ns)", "time cancel", "time pause"},
		Notes: []string{
			"reads interrupt in-flight data writes (reference [25]); times normalized to no-interruption",
			"cancellation restarts the write (wasted work); pausing resumes it",
		},
	}
	for _, p := range trace.Profiles() {
		base := memsim.Run(memsim.ConfigFor(memsim.ThreeLC), trace.New(p, o.MemsimOps, o.Seed))
		cfgC := memsim.ConfigFor(memsim.ThreeLC)
		cfgC.WriteCancellation = true
		canc := memsim.Run(cfgC, trace.New(p, o.MemsimOps, o.Seed))
		cfgP := memsim.ConfigFor(memsim.ThreeLC)
		cfgP.WritePausing = true
		paus := memsim.Run(cfgP, trace.New(p, o.MemsimOps, o.Seed))
		r.Rows = append(r.Rows, []string{
			p.WorkloadName,
			fmt.Sprintf("%d / %d / %d", base.ReadLatencyPercentileNs(99),
				canc.ReadLatencyPercentileNs(99), paus.ReadLatencyPercentileNs(99)),
			fmt.Sprintf("%.0f / %.0f / %.0f", base.AvgReadLatencyNs(),
				canc.AvgReadLatencyNs(), paus.AvgReadLatencyNs()),
			fmt.Sprintf("%.3f", float64(canc.ExecNs)/float64(base.ExecNs)),
			fmt.Sprintf("%.3f", float64(paus.ExecNs)/float64(base.ExecNs)),
		})
	}
	return r
}
