// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a pure function from Options to a
// printable Result; cmd/pcmrepro renders them as text tables and the
// top-level benchmarks time them. The per-experiment index lives in
// DESIGN.md; paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/bler"
	"repro/internal/drift"
	"repro/internal/encoding"
	"repro/internal/levels"
	"repro/internal/logic"
	"repro/internal/perm"
	"repro/internal/wearout"
)

// Options tunes experiment cost. Zero values select cheap defaults.
type Options struct {
	// MCSamples is the Monte Carlo sample count for drift experiments
	// (the paper uses 1e9; the default 1e7 resolves to 1e-6).
	MCSamples int64
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds Monte Carlo parallelism (0 = GOMAXPROCS).
	Workers int
	// MemsimOps is the trace length per Figure 16 run.
	MemsimOps int
}

func (o Options) withDefaults() Options {
	if o.MCSamples <= 0 {
		o.MCSamples = 10_000_000
	}
	if o.Seed == 0 {
		o.Seed = 20130817 // SC'13 vintage
	}
	if o.MemsimOps <= 0 {
		o.MemsimOps = 200_000
	}
	return o
}

// Result is one regenerated exhibit.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// CSV renders the result as RFC-4180 comma-separated values (header row
// first), for downstream plotting.
func (r Result) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Format renders the result as an aligned text table.
func (r Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// timeGrid is the x-axis of Figures 3 and 8 with the paper's labels.
var timeGrid = []struct {
	label   string
	seconds float64
}{
	{"2s", 2},
	{"32s", 32},
	{"17min", 1020},
	{"9hour", 32400},
	{"12day", 12 * 86400},
	{"1year", 365.25 * 86400},
	{"34year", 34 * 365.25 * 86400},
	{"1089year", 1089 * 365.25 * 86400},
	{"34865year", 34865 * 365.25 * 86400},
}

func sci(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-99:
		return "<1E-99"
	}
	return strings.ToUpper(fmt.Sprintf("%.2e", v))
}

// Table1 reproduces the published resistance and drift parameters.
func Table1(Options) Result {
	r := Result{
		ID:     "T1",
		Title:  "MLC-PCM resistance and drift parameters",
		Header: []string{"state", "log10R", "sigmaR", "muAlpha", "sigmaAlpha"},
	}
	names := []string{"S1", "S2", "S3", "S4"}
	for i, e := range drift.Table1 {
		r.Rows = append(r.Rows, []string{
			names[i],
			fmt.Sprintf("%.0f", e.MuLogR),
			fmt.Sprintf("%.4f", drift.SigmaLogR),
			fmt.Sprintf("%.3f", e.Alpha.Mu),
			fmt.Sprintf("%.4f", e.Alpha.Sigma),
		})
	}
	return r
}

// mappingRows renders a mapping's geometry (Figures 1, 6, 7).
func mappingRows(m levels.Mapping) [][]string {
	rows := [][]string{}
	names3 := []string{"S1", "S2", "S4"}
	names4 := []string{"S1", "S2", "S3", "S4"}
	for i, nom := range m.Nominals {
		name := names4[i]
		if m.Levels() == 3 {
			name = names3[i]
		} else if m.Levels() != 4 {
			name = fmt.Sprintf("S%d", i+1)
		}
		th := "-"
		if i < len(m.Thresholds) {
			th = fmt.Sprintf("%.3f", m.Thresholds[i])
		}
		rows = append(rows, []string{
			m.Name, name,
			fmt.Sprintf("%.3f", nom),
			fmt.Sprintf("%.0f%%", 100*m.Probs[i]),
			th,
		})
	}
	return rows
}

// Figure1 renders the naive four-level state mapping.
func Figure1(Options) Result {
	return Result{
		ID:     "F1",
		Title:  "State mapping in a 4-level cell (naive)",
		Header: []string{"mapping", "state", "nominal log10R", "probability", "upper threshold"},
		Rows:   mappingRows(levels.FourLCNaive()),
	}
}

// Figure2 illustrates drift trajectories of S2 cells written low, nominal
// and high in the acceptance window.
func Figure2(Options) Result {
	m := levels.FourLCNaive()
	spec := m.Specs()[1]
	r := Result{
		ID:     "F2",
		Title:  "Transient errors due to resistance drift (S2 trajectories)",
		Header: []string{"time", "written low (-2.75s)", "written nominal", "written high (+2.75s)"},
		Notes: []string{fmt.Sprintf("threshold into S3 at log10R = %.3f; drift exponent at its mean %.3f",
			m.Thresholds[1], spec.Alpha.Mu)},
	}
	for _, tg := range timeGrid[:6] {
		row := []string{tg.label}
		for _, x := range []float64{spec.WriteLow(), spec.Nominal, spec.WriteHigh()} {
			logR := spec.LogRAt(x, spec.Alpha.Mu, 0, tg.seconds)
			mark := ""
			if logR >= m.Thresholds[1] {
				mark = " (ERR)"
			}
			row = append(row, fmt.Sprintf("%.3f%s", logR, mark))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Figure3 reproduces the per-state drift error rates of the naive
// four-level cell via Monte Carlo, with the quadrature value alongside.
func Figure3(o Options) Result {
	o = o.withDefaults()
	m := levels.FourLCNaive()
	specs := m.Specs()
	times := make([]float64, len(timeGrid))
	for i, tg := range timeGrid {
		times[i] = tg.seconds
	}
	s2 := drift.MCCERCurve(specs[1:2], []float64{1}, times, o.MCSamples, o.Seed, o.Workers)
	s3 := drift.MCCERCurve(specs[2:3], []float64{1}, times, o.MCSamples, o.Seed+1, o.Workers)
	r := Result{
		ID:     "F3",
		Title:  "Drift error rates in a conventional four-level cell",
		Header: []string{"time", "S2 (MC)", "S2 (quad)", "S3 (MC)", "S3 (quad)"},
		Notes: []string{fmt.Sprintf("Monte Carlo with %d samples; resolution floor %s",
			o.MCSamples, sci(1/float64(o.MCSamples)))},
	}
	for i, tg := range timeGrid {
		r.Rows = append(r.Rows, []string{
			tg.label,
			sci(s2.CER[i]), sci(drift.QuadCER(specs[1], tg.seconds)),
			sci(s3.CER[i]), sci(drift.QuadCER(specs[2], tg.seconds)),
		})
	}
	return r
}

// Figure4 reproduces PCM availability versus refresh interval.
func Figure4(Options) Result {
	d := bler.PaperDevice()
	r := Result{
		ID:     "F4",
		Title:  "PCM availability as a function of refresh interval",
		Header: []string{"refresh period", "device availability (1 block at a time)", "bank availability (8 banks)"},
	}
	for _, min := range []int{1, 2, 4, 9, 17, 34, 68, 137} {
		iv := time.Duration(min) * time.Minute
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d min", min),
			fmt.Sprintf("%.3f", d.DeviceAvailability(iv)),
			fmt.Sprintf("%.3f", d.BankAvailability(iv)),
		})
	}
	return r
}

// RefreshBudget reproduces Section 4.1's refresh arithmetic.
func RefreshBudget(Options) Result {
	d := bler.PaperDevice()
	iv := 17 * time.Minute
	return Result{
		ID:     "S4.1",
		Title:  "Refresh budget for a 16 GB MLC-PCM device",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"blocks per device", fmt.Sprintf("%d", d.Blocks())},
			{"one refresh pass, back to back", fmt.Sprintf("%.0f s", d.RefreshPassTime().Seconds())},
			{"one refresh pass at 40 MB/s write throughput", fmt.Sprintf("%.0f s", d.BandwidthPassTime().Seconds())},
			{"device availability at 17 min", fmt.Sprintf("%.0f%%", 100*d.DeviceAvailability(iv))},
			{"bank availability at 17 min (8 banks)", fmt.Sprintf("%.0f%%", 100*d.BankAvailability(iv))},
			{"refresh share of write bandwidth at 17 min", fmt.Sprintf("%.0f%%", 100*d.RefreshWriteShare(iv))},
		},
	}
}

// Figure5 reproduces block error rate as a function of cell error rate
// and ECC strength, with the three target lines.
func Figure5(Options) Result {
	d := bler.PaperDevice()
	// 2 bits per cell: a 512-bit block with BCH-n check bits occupies
	// 256 + n*10/2 cells; every cell errs independently.
	r := Result{
		ID:    "F5",
		Title: "Block error rate vs cell error rate and ECC (2 bits/cell)",
		Header: []string{"CER", "NoECC", "BCH-1", "BCH-2", "BCH-3", "BCH-4",
			"BCH-5", "BCH-6", "BCH-7", "BCH-8", "BCH-9", "BCH-10"},
		Notes: []string{
			fmt.Sprintf("target BLER per period: >10yr %s, 1yr %s, 17min %s",
				sci(d.CumulativeTarget()),
				sci(d.PerPeriodTarget(365*24*time.Hour)),
				sci(d.PerPeriodTarget(17*time.Minute))),
			"ECC overhead: 0%..20% in cells (5 check cells per corrected bit)",
		},
	}
	for _, cer := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10} {
		row := []string{sci(cer)}
		for t := 0; t <= 10; t++ {
			cells := 256 + t*5
			row = append(row, sci(bler.BlockError(cells, t, cer)))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Figure6 compares the simple and optimal four-level mappings.
func Figure6(Options) Result {
	naive := levels.FourLCNaive()
	opt := levels.FourLCOpt()
	r := Result{
		ID:     "F6",
		Title:  "Four-level cell: simple and optimal mapping",
		Header: []string{"mapping", "state", "nominal log10R", "probability", "upper threshold"},
		Rows:   append(mappingRows(naive), mappingRows(opt)...),
		Notes: []string{fmt.Sprintf("CER at 215 s: naive %s, optimal %s",
			sci(naive.QuadCER(215)), sci(opt.QuadCER(215)))},
	}
	return r
}

// Figure7 compares the simple and optimal three-level mappings.
func Figure7(Options) Result {
	naive := levels.ThreeLCNaive()
	opt := levels.ThreeLCOpt()
	return Result{
		ID:     "F7",
		Title:  "Three-level cell: simple and optimal mapping",
		Header: []string{"mapping", "state", "nominal log10R", "probability", "upper threshold"},
		Rows:   append(mappingRows(naive), mappingRows(opt)...),
		Notes: []string{fmt.Sprintf("CER at 10 years: naive %s, optimal %s",
			sci(naive.QuadCER(10*365.25*86400)), sci(opt.QuadCER(10*365.25*86400)))},
	}
}

// Figure8 reproduces the headline drift-error-rate comparison across all
// five designs, by quadrature (resolving the deep 3LC tails) and Monte
// Carlo where the sample count can see the rate.
func Figure8(o Options) Result {
	o = o.withDefaults()
	times := make([]float64, len(timeGrid))
	for i, tg := range timeGrid {
		times[i] = tg.seconds
	}
	mappings := levels.All()
	r := Result{
		ID:     "F8",
		Title:  "Cell drift error rates: four-level vs three-level designs (quadrature)",
		Header: append([]string{"time"}, func() []string {
			names := make([]string, len(mappings))
			for i, m := range mappings {
				names[i] = m.Name
			}
			return names
		}()...),
		Notes: []string{"values below the Monte Carlo floor are quadrature-only, as in DESIGN.md"},
	}
	for i, tg := range timeGrid {
		row := []string{tg.label}
		for _, m := range mappings {
			row = append(row, sci(m.QuadCER(times[i])))
		}
		r.Rows = append(r.Rows, row)
		_ = i
	}
	return r
}

// Figure9 documents the read data path and its stage latencies.
func Figure9(Options) Result {
	return Result{
		ID:     "F9",
		Title:  "Read data path of the proposed PCM architecture",
		Header: []string{"stage", "3LC component", "4LCo component", "latency (FO4, 3LC/4LC)"},
		Rows: [][]string{
			{"1. PCM array read", "354+10 cells", "256+50 cells", "array access"},
			{"2. transient error correction", "BCH-1 (708-bit msg)", "BCH-10 (512-bit msg)",
				fmt.Sprintf("%.0f / %.0f", logic.BCHDecodeFO4(1), logic.BCHDecodeFO4(10))},
			{"3. hard error correction", "mark-and-spare (6 stages)", "ECP-6",
				fmt.Sprintf("%.0f / ~", logic.MarkAndSpareFO4(177, 6, logic.Sklansky))},
			{"4. symbol decode", "3-ON-2 pairs", "Gray cells", "mux"},
		},
	}
}

// Table2 reproduces the 3-ON-2 encoding table.
func Table2(Options) Result {
	r := Result{
		ID:     "T2",
		Title:  "Example 3-ON-2 encoding",
		Header: []string{"first cell", "second cell", "3-bit data"},
	}
	name := []string{"S1", "S2", "S4"}
	for bits := uint(0); bits < 8; bits++ {
		c1, c2 := encoding.EncodePair(bits)
		r.Rows = append(r.Rows, []string{name[c1], name[c2], fmt.Sprintf("%03b", bits)})
	}
	r.Rows = append(r.Rows, []string{"S4", "S4", "INV"})
	return r
}

// Figure10 walks the mark-and-spare marking example of Figures 10–12.
func Figure10(Options) Result {
	m := wearout.MarkAndSpare{DataPairs: 8, SparePairs: 2}
	data := []int{0, 1, 2, 3, 4, 5, 6, 7}
	phys, err := m.Layout(data, map[int]bool{1: true, 4: true})
	if err != nil {
		panic(err)
	}
	corrected, used, err := m.Correct(phys)
	if err != nil {
		panic(err)
	}
	render := func(vals []int) string {
		parts := make([]string, len(vals))
		for i, v := range vals {
			if v == encoding.INV {
				parts[i] = "INV"
			} else {
				parts[i] = fmt.Sprintf("%03b", v)
			}
		}
		return strings.Join(parts, " ")
	}
	return Result{
		ID:     "F10-F12",
		Title:  "Mark-and-spare: 8 data pairs + 2 spares, failures at pairs 1 and 4",
		Header: []string{"view", "pairs"},
		Rows: [][]string{
			{"logical data", render(data)},
			{"physical (marked)", render(phys)},
			{"corrected", render(corrected)},
		},
		Notes: []string{fmt.Sprintf("%d spare pairs consumed; real blocks use 171 data + 6 spare pairs", used)},
	}
}

// Figure13 reproduces the OR-gate chain comparison.
func Figure13(Options) Result {
	r := Result{
		ID:     "F13",
		Title:  "OR-gate chain: ripple O(n) vs Sklansky O(log n)",
		Header: []string{"inputs", "ripple FO4", "sklansky FO4", "ripple gates", "sklansky gates"},
	}
	for _, n := range []int{16, 32, 64, 128, 177, 342} {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", logic.ORChainFO4(n, logic.Ripple)),
			fmt.Sprintf("%.0f", logic.ORChainFO4(n, logic.Sklansky)),
			fmt.Sprintf("%d", logic.ORChainGates(n, logic.Ripple)),
			fmt.Sprintf("%d", logic.ORChainGates(n, logic.Sklansky)),
		})
	}
	return r
}

// Figure14 documents the MLC adaptation of ECP.
func Figure14(Options) Result {
	e := wearout.MLCECP()
	return Result{
		ID:     "F14",
		Title:  "ECP for MLC (four-level cells)",
		Header: []string{"field", "cells"},
		Rows: [][]string{
			{"pointer (8 bits, 2 bits/cell)", "4"},
			{"replacement cell", "1"},
			{"cells per entry", fmt.Sprintf("%d", e.CellsPerEntry)},
			{"entries", fmt.Sprintf("%d", e.Entries)},
			{"full flag", fmt.Sprintf("%d", e.FlagCells)},
			{"total overhead", fmt.Sprintf("%d", e.CellOverhead())},
		},
	}
}

// retentionGrid is a finer interval ladder used only for the Table 3
// refresh-period search, so the reported period is not quantized to the
// coarse figure axis.
var retentionGrid = []struct {
	label   string
	seconds float64
}{
	{"2s", 2}, {"8s", 8}, {"32s", 32}, {"2min", 120}, {"4min", 240},
	{"8.5min", 510}, {"17min", 1020}, {"34min", 2040}, {"2.3hour", 8160},
	{"9hour", 32400}, {"37day", 37 * 86400}, {"1year", 365.25 * 86400},
	{"10year", 10 * 365.25 * 86400}, {"68year", 68 * 365.25 * 86400},
	{"1089year", 1089 * 365.25 * 86400},
}

// retentionLimit returns the largest grid interval at which the design's
// per-period block error rate still meets the device target.
func retentionLimit(cer func(float64) float64, cells, t int) string {
	d := bler.PaperDevice()
	best := "-"
	for _, tg := range retentionGrid {
		iv := time.Duration(tg.seconds * float64(time.Second))
		target := d.PerPeriodTarget(iv)
		if bler.LogBlockError(cells, t, cer(tg.seconds)) <= math.Log(target) {
			best = tg.label
		}
	}
	return best
}

// Table3 reproduces the qualitative comparison of the three storage
// mechanisms.
func Table3(o Options) Result {
	o = o.withDefaults()
	fourCER := func(t float64) float64 { return levels.FourLCOpt().QuadCER(t) }
	threeCER := func(t float64) float64 { return levels.ThreeLCOpt().QuadCER(t) }
	// Permutation: sampled group error, converted to per-cell terms, with
	// the ML repair decode. Keep the MC cost modest.
	permSamples := int(o.MCSamples / 100)
	if permSamples > 400000 {
		permSamples = 400000
	}
	if permSamples < 20000 {
		permSamples = 20000
	}
	permCER := func(t float64) float64 {
		return perm.CellErrorFromGroupError(perm.GroupErrorRepairedMC(t, permSamples, o.Seed))
	}
	return Result{
		ID:    "T3",
		Title: "Qualitative comparison",
		Header: []string{"mechanism", "64B data", "wearout correction", "drift ECC",
			"enc/dec FO4", "refresh period", "density b/cell"},
		Rows: [][]string{
			{"4LCo", "2 bits/cell, 256 cells", "ECP-6 (5 cells/failure)", "BCH-10",
				fmt.Sprintf("%.0f / %.0f", logic.BCHEncodeFO4(612), logic.BCHDecodeFO4(10)),
				retentionLimit(fourCER, 306, 10),
				fmt.Sprintf("%.2f", 512.0/337)},
			{"Permutation", "11 bits/7 cells, 329 cells", "ECP-6 SLC (10 cells/failure)", "perm + BCH-1",
				"n/a",
				retentionLimit(permCER, 329, 1),
				fmt.Sprintf("%.2f", 512.0/399)},
			{"3-ON-2", "3 bits/2 cells, 342 cells", "mark-and-spare (2 cells/failure)", "BCH-1",
				fmt.Sprintf("%.0f / %.0f", logic.BCHEncodeFO4(718), logic.BCHDecodeFO4(1)),
				retentionLimit(threeCER, 354, 1),
				fmt.Sprintf("%.2f", 512.0/364)},
		},
		Notes: []string{"refresh period = longest grid interval still meeting the 10-year one-block-per-device target"},
	}
}

// Table4 reproduces the comparison with tri-level cell PCM.
func Table4(Options) Result {
	return Result{
		ID:     "T4",
		Title:  "Comparison with tri-level cell PCM (Seong et al.)",
		Header: []string{"design", "data", "wearout correction", "drift ECC", "density b/cell"},
		Rows: [][]string{
			{"4LC in [29]", "512 bits / 256 cells", "n/a", "BCH-32: 320 bits/160 cells",
				fmt.Sprintf("%.2f", 512.0/(256+160))},
			{"4LCo (this work)", "512 bits / 256 cells", "ECP-6: 31 cells", "BCH-10: 100 bits/50 cells",
				fmt.Sprintf("%.2f", 512.0/337)},
			{"3LC in [29]", "8 bits / 6 cells", "n/a", "n/a",
				fmt.Sprintf("%.2f", 8.0/6)},
			{"3LCo (this work)", "512 bits / 342 cells", "mark-and-spare: 12 cells", "BCH-1: 10 bits/10 cells",
				fmt.Sprintf("%.2f", 512.0/364)},
		},
	}
}

// Figure15 reproduces storage capacity versus tolerated hard errors.
func Figure15(Options) Result {
	r := Result{
		ID:     "F15",
		Title:  "Capacity (bits/cell) vs hard errors tolerated",
		Header: []string{"failures", "4LC", "3-ON-2", "permutation"},
	}
	for n := 0; n <= 20; n++ {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", fourLCDensity(n)),
			fmt.Sprintf("%.3f", threeLCDensity(n)),
			fmt.Sprintf("%.3f", permDensity(n)),
		})
	}
	return r
}

// Density formulas duplicated from core to keep the experiments package
// free of the heavyweight architecture dependency chain.
func threeLCDensity(n int) float64 { return 512.0 / float64(342+2*n+10) }
func fourLCDensity(n int) float64  { return 512.0 / float64(256+50+5*n+1) }
func permDensity(n int) float64    { return 512.0 / float64(329+10*n+10) }

// AblationMitigation compares the drift-mitigation ladder the paper
// walks: naive 4LC, circuit-level time-aware sensing (Section 3, "limited
// improvement"), smart encoding, optimal mapping, and backing off to
// three levels — the design-space argument behind the 3LC proposal.
func AblationMitigation(Options) Result {
	naive := levels.FourLCNaive()
	smart := levels.FourLCSmart()
	opt := levels.FourLCOpt()
	threeO := levels.ThreeLCOpt()
	r := Result{
		ID:     "A1",
		Title:  "Ablation: drift mitigation techniques (CER per period)",
		Header: []string{"time", "4LCn", "4LC+time-aware", "4LCs", "4LCo", "3LCo"},
		Notes: []string{"time-aware sensing helps an order of magnitude but cannot make 4LC nonvolatile;",
			"only removing the vulnerable state does (Section 5)"},
	}
	for _, tg := range timeGrid[:7] {
		r.Rows = append(r.Rows, []string{
			tg.label,
			sci(naive.QuadCER(tg.seconds)),
			sci(levels.TimeAwareCER(naive, tg.seconds)),
			sci(smart.QuadCER(tg.seconds)),
			sci(opt.QuadCER(tg.seconds)),
			sci(threeO.QuadCER(tg.seconds)),
		})
	}
	return r
}

// AblationMultiLevel explores the Section 8 generalization: five- and
// six-level cells with feasibility-scaled write precision, before and
// after mapping optimization.
func AblationMultiLevel(o Options) Result {
	o = o.withDefaults()
	r := Result{
		ID:     "A2",
		Title:  "Ablation: non-power-of-two multi-level cells (Section 8)",
		Header: []string{"design", "levels", "sigma", "ideal b/cell", "CER @17min", "CER @1yr", "CER @10yr"},
		Notes:  []string{"five+ levels require tighter write spread (see levels.Uniform); CER by quadrature"},
	}
	year := 365.25 * 86400.0
	optOpts := levels.DefaultOptimizeOptions()
	optOpts.Sweeps = 3
	for _, k := range []int{3, 4, 5, 6} {
		u := levels.Uniform(k)
		om := levels.Optimize(u, optOpts)
		for _, m := range []levels.Mapping{u, om} {
			r.Rows = append(r.Rows, []string{
				m.Name,
				fmt.Sprintf("%d", m.Levels()),
				fmt.Sprintf("%.4f", m.SigmaValue()),
				fmt.Sprintf("%.2f", m.BitsPerCellIdeal()),
				sci(m.QuadCER(1020)),
				sci(m.QuadCER(year)),
				sci(m.QuadCER(10 * year)),
			})
		}
	}
	return r
}

// Spec names one runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(Options) Result
}

// All returns every experiment in paper order.
func All() []Spec {
	return []Spec{
		{"T1", "resistance and drift parameters", Table1},
		{"F1", "naive 4LC state mapping", Figure1},
		{"F2", "drift trajectories", Figure2},
		{"F3", "4LCn per-state drift error rates", Figure3},
		{"F4", "availability vs refresh interval", Figure4},
		{"S4.1", "refresh budget", RefreshBudget},
		{"F5", "BLER vs CER and ECC", Figure5},
		{"F6", "4LC optimal mapping", Figure6},
		{"F7", "3LC optimal mapping", Figure7},
		{"F8", "drift error rates, all designs", Figure8},
		{"F9", "read data path", Figure9},
		{"T2", "3-ON-2 encoding", Table2},
		{"F10-F12", "mark-and-spare example", Figure10},
		{"F13", "OR-gate chains", Figure13},
		{"F14", "ECP for MLC", Figure14},
		{"T3", "qualitative comparison", Table3},
		{"T4", "tri-level cell comparison", Table4},
		{"F15", "capacity vs hard errors", Figure15},
		{"T5", "simulation parameters", Table5Params},
		{"F16", "system performance, energy, power", Figure16},
		{"A1", "ablation: drift mitigation ladder", AblationMitigation},
		{"A2", "ablation: five- and six-level cells", AblationMultiLevel},
		{"A3", "ablation: wearout-stack lifetime", AblationLifetime},
		{"A4", "ablation: refresh-interval sensitivity", AblationRefreshInterval},
		{"A5", "ablation: program-and-verify write cost", AblationWriteCost},
		{"A6", "ablation: drift-rate-switch model sensitivity", AblationSwitchMode},
		{"A7", "cross-validation: analytic vs device block errors", AblationCrossValidation},
		{"A8", "ablation: write cancellation", AblationWriteCancellation},
		{"A9", "design space summary", DesignSpace},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Spec, error) {
	for _, s := range All() {
		if strings.EqualFold(s.ID, id) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids(), ", "))
}

func ids() []string {
	out := []string{}
	for _, s := range All() {
		out = append(out, s.ID)
	}
	sort.Strings(out)
	return out
}
