package experiments

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/trace"
)

// Table5Params reproduces the simulation parameter table.
func Table5Params(Options) Result {
	cfg := memsim.Table5()
	return Result{
		ID:     "T5",
		Title:  "Simulation parameters",
		Header: []string{"component", "configuration"},
		Rows: [][]string{
			{"processor", fmt.Sprintf("trace-driven core at %.1f GHz, 1 instruction/cycle", cfg.CoreGHz)},
			{"L1 cache", fmt.Sprintf("%d kB data, %d-way, %dB lines", cfg.L1Bytes>>10, cfg.L1Assoc, cfg.LineBytes)},
			{"L2 cache", fmt.Sprintf("%d kB unified, %d-way, %dB lines", cfg.L2Bytes>>10, cfg.L2Assoc, cfg.LineBytes)},
			{"MLC-PCM", fmt.Sprintf("%d GB, %d banks, %dB blocks", cfg.DeviceBytes>>30, cfg.Banks, cfg.LineBytes)},
			{"PCM read", fmt.Sprintf("%d ns (+%d ns BCH-10 or +5 ns 3LC)", cfg.ReadLatencyNs, cfg.ECCReadAdderNs)},
			{"PCM write", fmt.Sprintf("%d ns", cfg.WriteLatencyNs)},
			{"write throughput", fmt.Sprintf("%d MB/s", int(cfg.WriteBandwidth)>>20)},
			{"refresh interval", fmt.Sprintf("%d min (4LC designs)", cfg.RefreshIntervalNs/60_000_000_000)},
		},
	}
}

// Figure16 reproduces the system evaluation: normalized execution time,
// energy and power for the six workloads under the four designs, with
// the RD/WR/REF energy breakdown.
func Figure16(o Options) Result {
	o = o.withDefaults()
	r := Result{
		ID:    "F16",
		Title: "Normalized execution time, energy, and power (lower is better)",
		Header: []string{"workload", "design", "time", "energy", "power",
			"E_rd%", "E_wr%", "E_ref%"},
		Notes: []string{fmt.Sprintf("synthetic traces, %d memory ops each; normalized to 4LC-REF per workload", o.MemsimOps)},
	}
	for _, p := range trace.Profiles() {
		var base memsim.Stats
		for i, d := range memsim.Designs() {
			s := memsim.Run(memsim.ConfigFor(d), trace.New(p, o.MemsimOps, o.Seed))
			if i == 0 {
				base = s
			}
			tot := s.TotalEnergyNJ()
			r.Rows = append(r.Rows, []string{
				p.WorkloadName, d.String(),
				fmt.Sprintf("%.3f", float64(s.ExecNs)/float64(base.ExecNs)),
				fmt.Sprintf("%.3f", tot/base.TotalEnergyNJ()),
				fmt.Sprintf("%.3f", s.AvgPowerW()/base.AvgPowerW()),
				fmt.Sprintf("%.0f", 100*s.EnergyRead/tot),
				fmt.Sprintf("%.0f", 100*s.EnergyWrite/tot),
				fmt.Sprintf("%.0f", 100*s.EnergyRefresh/tot),
			})
		}
	}
	return r
}
