package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pcmarray"
	"repro/internal/remap"
	"repro/internal/trace"
	"repro/internal/wearlevel"

	"repro/internal/memsim"
)

// AblationLifetime measures device lifetime (writes absorbed before the
// first unrecoverable failure) under an adversarial hot-block workload,
// with the wearout-tolerance stack enabled layer by layer: bare
// mark-and-spare, plus FREE-p-style remapping, plus start-gap wear
// leveling — the paper's Section 6.4 mechanisms composed with the related
// work it cites. Endurance is scaled down (mean 300 cycles) so lifetimes
// are measurable; the *ratios* between configurations are the result.
func AblationLifetime(o Options) Result {
	o = o.withDefaults()
	const blocks = 8
	mk := func(extra int, seed uint64) core.Arch {
		opt := pcmarray.DefaultOptions(seed)
		opt.EnduranceMean = 300
		opt.EnduranceSigma = 0.25
		return core.NewThreeLC(blocks+extra, core.ThreeLCConfig{Array: opt})
	}
	lifetime := func(dev core.Arch) int64 {
		data := make([]byte, core.BlockBytes)
		for i := int64(0); ; i++ {
			data[0], data[1] = byte(i), byte(i>>8)
			if err := dev.Write(0, data); err != nil { // hot block 0
				return i
			}
			if i > 5_000_000 {
				return i
			}
		}
	}
	trials := 3
	avg := func(mk func(seed uint64) core.Arch) float64 {
		var sum int64
		for s := 0; s < trials; s++ {
			sum += lifetime(mk(o.Seed + uint64(s)))
		}
		return float64(sum) / float64(trials)
	}

	raw := avg(func(s uint64) core.Arch { return mk(0, s) })
	remapped := avg(func(s uint64) core.Arch { return remap.Wrap(mk(4, s), 4) })
	leveled := avg(func(s uint64) core.Arch { return wearlevel.Wrap(mk(1, s), 16) })
	full := avg(func(s uint64) core.Arch {
		return wearlevel.Wrap(remap.Wrap(mk(5, s), 4), 16)
	})

	row := func(name string, v float64) []string {
		return []string{name, fmt.Sprintf("%.0f", v), fmt.Sprintf("%.1fx", v/raw)}
	}
	return Result{
		ID:     "A3",
		Title:  "Ablation: hot-block lifetime with the wearout stack (mean endurance 300 cycles)",
		Header: []string{"configuration", "writes to failure", "vs bare"},
		Rows: [][]string{
			row("3LC (mark-and-spare only)", raw),
			row("+ remap (4 reserve blocks)", remapped),
			row("+ start-gap (psi=16)", leveled),
			row("+ both", full),
		},
		Notes: []string{fmt.Sprintf("hot-block workload, average of %d seeds; MLC endurance scaled from 1E5 to 3E2", trials)},
	}
}

// AblationRefreshInterval sweeps the 4LC refresh interval on the most
// memory-intensive workload, connecting Figure 4's availability curve to
// Figure 16's performance cost: short intervals starve the write window.
func AblationRefreshInterval(o Options) Result {
	o = o.withDefaults()
	r := Result{
		ID:     "A4",
		Title:  "Ablation: refresh-interval sensitivity (STREAM, 4LC-REF)",
		Header: []string{"interval", "norm. time", "norm. energy", "refresh ops", "refresh write-BW share"},
	}
	base := memsim.Run(memsim.ConfigFor(memsim.FourLCNoRef), trace.New(trace.STREAM, o.MemsimOps, o.Seed))
	for _, min := range []int{1, 2, 4, 9, 17, 34, 68, 137} {
		cfg := memsim.ConfigFor(memsim.FourLCRef)
		cfg.RefreshIntervalNs = int64(min) * 60_000_000_000
		s := memsim.Run(cfg, trace.New(trace.STREAM, o.MemsimOps, o.Seed))
		share := float64(s.RefreshOps) * 64 / (float64(s.ExecNs) / 1e9) / cfg.WriteBandwidth
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d min", min),
			fmt.Sprintf("%.3f", float64(s.ExecNs)/float64(base.ExecNs)),
			fmt.Sprintf("%.3f", s.TotalEnergyNJ()/base.TotalEnergyNJ()),
			fmt.Sprintf("%d", s.RefreshOps),
			fmt.Sprintf("%.0f%%", 100*share),
		})
	}
	r.Notes = []string{"normalized to 4LC-NO-REF; at 1-2 minutes refresh devours the 40 MB/s write budget"}
	return r
}
