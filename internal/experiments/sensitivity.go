package experiments

import (
	"repro/internal/drift"
	"repro/internal/levels"
)

// AblationSwitchMode quantifies how the paper's headline retention
// numbers depend on the one under-specified piece of the drift model:
// what happens to a cell's drift-exponent variation when the
// conservative 3LC rate switch fires (Section 5.3 says only "we apply a
// different drift rate (using S3's drift rate parameters: µα = 0.06)").
// Three readings are compared; the repository's default is the most
// conservative (independent resample). See drift.SwitchMode.
func AblationSwitchMode(Options) Result {
	year := 365.25 * 86400.0
	horizons := []struct {
		label string
		t     float64
	}{
		{"1year", year}, {"10year", 10 * year}, {"16year", 16 * year}, {"68year", 68 * year},
	}
	modes := []drift.SwitchMode{drift.SwitchResample, drift.SwitchCorrelated, drift.SwitchMeanOnly}
	r := Result{
		ID:     "A6",
		Title:  "Ablation: 3LCo retention vs drift-rate-switch modeling",
		Header: []string{"horizon", "resample (default)", "correlated", "mean-only"},
		Notes: []string{
			"the paper claims error-free >16 years and ~1E-8 at 68 years;",
			"all three readings support the ten-year nonvolatility claim with BCH-1",
		},
	}
	base := levels.ThreeLCOpt()
	for _, h := range horizons {
		row := []string{h.label}
		for _, mode := range modes {
			m := base
			m.SwitchMode = mode
			row = append(row, sci(m.QuadCER(h.t)))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}
