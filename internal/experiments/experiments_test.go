package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cheap keeps the Monte Carlo experiments fast in the unit-test sweep.
var cheap = Options{MCSamples: 200_000, MemsimOps: 40_000, Seed: 7}

func TestAllExperimentsRun(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			res := s.Run(cheap)
			if res.ID == "" || res.Title == "" {
				t.Fatal("missing identity")
			}
			if len(res.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range res.Rows {
				if len(row) != len(res.Header) {
					t.Fatalf("row width %d != header %d: %v", len(row), len(res.Header), row)
				}
			}
			out := res.Format()
			if !strings.Contains(out, res.ID) || len(out) < 40 {
				t.Fatalf("Format output suspicious:\n%s", out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	s, err := ByID("f8")
	if err != nil || s.ID != "F8" {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := ByID("F99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFigure3ShapeMatchesPaper(t *testing.T) {
	res := Figure3(Options{MCSamples: 2_000_000, Seed: 3})
	// S3's quadrature column must exceed S2's at the 17-minute row and
	// both must increase over time.
	var prevS3 float64
	for _, row := range res.Rows {
		s2, _ := strconv.ParseFloat(strings.Replace(row[2], "E", "e", 1), 64)
		s3, _ := strconv.ParseFloat(strings.Replace(row[4], "E", "e", 1), 64)
		if s3 < prevS3 {
			t.Fatalf("S3 quad column not monotone at %s", row[0])
		}
		prevS3 = s3
		if row[0] == "17min" {
			if s3 < 3*s2 {
				t.Errorf("at 17min S3 %v not well above S2 %v", s3, s2)
			}
			if s3 < 1e-2 {
				t.Errorf("S3 at 17min = %v, paper shows >1E-2", s3)
			}
		}
	}
}

func TestFigure8OrderingMatchesPaper(t *testing.T) {
	res := Figure8(cheap)
	// At the 17-minute row the ordering must be
	// 4LCn > 4LCs > 4LCo >> 3LCn >= 3LCo.
	for _, row := range res.Rows {
		if row[0] != "17min" {
			continue
		}
		vals := make([]float64, 5)
		for i := 0; i < 5; i++ {
			cell := row[i+1]
			if cell == "0" || strings.HasPrefix(cell, "<") {
				continue // below representable range: zero
			}
			v, err := strconv.ParseFloat(strings.Replace(cell, "E", "e", 1), 64)
			if err != nil {
				t.Fatal(err)
			}
			vals[i] = v
		}
		if !(vals[0] > vals[1] && vals[1] > vals[2]) {
			t.Errorf("4LC ordering wrong: %v", vals[:3])
		}
		if vals[3] > vals[2]/1e3 {
			t.Errorf("3LCn %v not orders below 4LCo %v", vals[3], vals[2])
		}
		if vals[4] > vals[3]+1e-18 {
			t.Errorf("3LCo %v above 3LCn %v", vals[4], vals[3])
		}
		return
	}
	t.Fatal("17min row missing")
}

func TestFigure15Crossover(t *testing.T) {
	res := Figure15(cheap)
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	first := res.Rows[0]
	last := res.Rows[len(res.Rows)-1]
	if !(parse(first[1]) > parse(first[2])) {
		t.Error("at n=0, 4LC should lead")
	}
	if !(parse(last[2]) > parse(last[1])) {
		t.Error("at n=20, 3-ON-2 should lead")
	}
}

func TestFigure16ContainsAllCells(t *testing.T) {
	res := Figure16(Options{MemsimOps: 30_000, Seed: 2})
	if len(res.Rows) != 6*4 {
		t.Fatalf("rows = %d, want 24", len(res.Rows))
	}
	// Every 4LC-REF row is the normalization base: time == 1.000.
	for _, row := range res.Rows {
		if row[1] == "4LC-REF" && row[2] != "1.000" {
			t.Errorf("%s: base time %s != 1.000", row[0], row[2])
		}
	}
}

func TestTable3RefreshPeriods(t *testing.T) {
	res := Table3(Options{MCSamples: 2_000_000, Seed: 5})
	var four, perm3, three string
	for _, row := range res.Rows {
		switch row[0] {
		case "4LCo":
			four = row[5]
		case "Permutation":
			perm3 = row[5]
		case "3-ON-2":
			three = row[5]
		}
	}
	// Paper: 17 minutes / >37 days / >68 years. Our drift model puts the
	// 4LCo limit in the minutes range (see EXPERIMENTS.md for the
	// calibration discussion); the permutation and 3-ON-2 rows quantize
	// to the retention ladder.
	switch four {
	case "2min", "4min", "8.5min", "17min", "34min":
	default:
		t.Errorf("4LCo refresh period = %q, want minutes-scale", four)
	}
	switch perm3 {
	case "2.3hour", "9hour", "37day", "1year":
	default:
		t.Errorf("permutation refresh period = %q, want hours-to-days scale", perm3)
	}
	switch three {
	case "10year", "68year", "1089year":
	default:
		t.Errorf("3-ON-2 refresh period = %q, want decades+", three)
	}
}

func TestAblationWriteCostShape(t *testing.T) {
	res := AblationWriteCost(cheap)
	pulses := map[string]float64{}
	for _, row := range res.Rows {
		if row[1] == "S2" {
			v, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				t.Fatal(err)
			}
			pulses[row[0]] = v
		}
	}
	// Section 6.7: relaxed S2 writes are cheaper.
	if pulses["BE-3LC"] >= pulses["3LCo"] {
		t.Errorf("BE-3LC S2 (%.2f pulses) not cheaper than 3LCo (%.2f)",
			pulses["BE-3LC"], pulses["3LCo"])
	}
}

func TestAblationLifetimeOrdering(t *testing.T) {
	res := AblationLifetime(Options{Seed: 3})
	var vals []float64
	for _, row := range res.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	if len(vals) != 4 {
		t.Fatalf("rows = %d", len(vals))
	}
	bare, remapped, leveled, full := vals[0], vals[1], vals[2], vals[3]
	if remapped <= bare {
		t.Errorf("remapping did not extend lifetime: %v vs %v", remapped, bare)
	}
	if leveled <= bare {
		t.Errorf("leveling did not extend lifetime: %v vs %v", leveled, bare)
	}
	if full <= remapped || full <= leveled {
		t.Errorf("composition (%v) should beat either alone (%v, %v)", full, remapped, leveled)
	}
}

func TestAblationSwitchModeShape(t *testing.T) {
	res := AblationSwitchMode(cheap)
	parse := func(s string) float64 {
		if s == "0" || strings.HasPrefix(s, "<") {
			return 0
		}
		v, err := strconv.ParseFloat(strings.Replace(s, "E", "e", 1), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, row := range res.Rows {
		resample, correlated, meanOnly := parse(row[1]), parse(row[2]), parse(row[3])
		if meanOnly > resample || meanOnly > correlated {
			t.Errorf("%s: mean-only %v not the optimistic extreme", row[0], meanOnly)
		}
		if row[0] == "10year" {
			// Every reading supports the ten-year nonvolatility claim.
			for i, v := range []float64{resample, correlated, meanOnly} {
				if v > 1e-7 {
					t.Errorf("mode %d CER at 10 years = %v; claim broken", i, v)
				}
			}
		}
	}
}

func TestDesignSpaceShape(t *testing.T) {
	res := DesignSpace(cheap)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	density := func(i int) float64 {
		v, err := strconv.ParseFloat(res.Rows[i][2], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Density: SLC lowest; 6LC highest; 3LCo in between.
	if !(density(0) < density(1) && density(1) < density(4)) {
		t.Errorf("density ordering wrong: %v %v %v", density(0), density(1), density(4))
	}
	// Retention: SLC and the 3LC proposal reach years; 4LC+ do not.
	for i, wantYears := range []bool{true, true, false, false, false} {
		r := res.Rows[i][3]
		gotYears := strings.HasSuffix(r, "yr")
		if gotYears != wantYears {
			t.Errorf("%s: retention %q, want years=%v", res.Rows[i][0], r, wantYears)
		}
	}
	// Write cost grows with level count beyond SLC.
	first, _ := strconv.ParseFloat(res.Rows[0][4], 64)
	last, _ := strconv.ParseFloat(res.Rows[4][4], 64)
	if !(first <= 1.2 && last > first) {
		t.Errorf("write-cost trend wrong: %v .. %v", first, last)
	}
}

func TestCrossValidationAgreement(t *testing.T) {
	res := AblationCrossValidation(Options{Seed: 5})
	for _, row := range res.Rows {
		pred, err1 := strconv.ParseFloat(strings.Replace(row[2], "E", "e", 1), 64)
		meas, err2 := strconv.ParseFloat(strings.Replace(row[5], "E", "e", 1), 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("parse: %v %v", err1, err2)
		}
		// Skip statistically starved rows (<10 events).
		events, _ := strconv.Atoi(row[4])
		if events < 10 {
			continue
		}
		if ratio := meas / pred; ratio < 0.3 || ratio > 3 {
			t.Errorf("%s: measured %v vs predicted %v (ratio %.2f)", row[0], meas, pred, ratio)
		}
	}
}

func BenchmarkFigure8Quadrature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Figure8(Options{MCSamples: 1, Seed: 1})
	}
}
