package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bler"
	"repro/internal/levels"
	"repro/internal/progverify"
)

// DesignSpace is the capstone summary: every cell organization built in
// this repository on the axes the paper trades against each other —
// information density, unpowered retention, write cost, and the ECC it
// needs to meet the ten-year one-block-per-device goal. It condenses
// the argument of the whole paper into one table: density and retention
// pull in opposite directions, and the three-level cell is the point
// where both are acceptable.
func DesignSpace(o Options) Result {
	o = o.withDefaults()
	p := progverify.Default()
	year := 365.25 * 86400.0

	// retentionYears returns the longest horizon (on a coarse ladder) at
	// which the mapping's CER stays below a BCH-8-correctable operating
	// point for the device target.
	ladder := []float64{1.0 / 365.25, 0.1, 1, 10, 100, 1000}
	retention := func(m levels.Mapping, cells, t int) string {
		best := "<1day"
		for _, yrs := range ladder {
			if retentionMeets(m, yrs*year, cells, t) {
				switch {
				case yrs >= 1:
					best = fmt.Sprintf("%gyr", yrs)
				case yrs >= 0.09:
					best = "~1month"
				default:
					best = "1day"
				}
			}
		}
		return best
	}

	// writeCost averages program-and-verify pulses over the mapping's
	// states.
	writeCost := func(m levels.Mapping) float64 {
		total := 0.0
		for _, spec := range m.Specs() {
			st := p.Measure(spec.WriteLow(), spec.WriteHigh(), 4000, o.Seed)
			total += st.MeanPulses
		}
		return total / float64(m.Levels())
	}

	r := Result{
		ID:    "A9",
		Title: "Design space: density vs retention vs write cost",
		Header: []string{"design", "levels", "density b/cell", "retention @BCH<=8",
			"avg write pulses", "endurance class"},
		Notes: []string{
			"density includes wearout + drift ECC overheads at the six-failure point",
			"retention: longest ladder horizon meeting the 10-year device goal with <=8-bit ECC",
		},
	}

	add := func(name string, m levels.Mapping, density float64, cells, t int, endurance string) {
		r.Rows = append(r.Rows, []string{
			name,
			fmt.Sprintf("%d", m.Levels()),
			fmt.Sprintf("%.2f", density),
			retention(m, cells, t),
			fmt.Sprintf("%.1f", writeCost(m)),
			endurance,
		})
	}

	slc := levels.Uniform(2)
	add("SLC", slc, 512.0/573, 512, 0, "~1E8")
	add("3LCo (proposal)", levels.ThreeLCOpt(), threeLCDensity(6), 354, 1, "~1E5")
	fourUniform := levels.FourLCOpt()
	fourUniform.Probs = []float64{0.25, 0.25, 0.25, 0.25}
	add("4LCo", fourUniform, fourLCDensity(6), 306, 8, "~1E5")
	optOpts := levels.DefaultOptimizeOptions()
	optOpts.Sweeps = 2
	five := levels.Optimize(levels.Uniform(5), optOpts)
	add("5LC (Section 8)", five, 512.0/(258+18+60), 276, 8, "~1E5")
	six := levels.Optimize(levels.Uniform(6), optOpts)
	add("6LC (Section 8)", six, 512.0/(215+30+60), 245, 8, "~1E5")
	return r
}

// retentionMeets reports whether the mapping's per-period CER at the
// given interval keeps a cells-sized block under the device target with
// a t-bit code.
func retentionMeets(m levels.Mapping, intervalSeconds float64, cells, t int) bool {
	cer := m.QuadCER(intervalSeconds)
	if cer == 0 {
		return true
	}
	d := bler.PaperDevice()
	iv := time.Duration(intervalSeconds * float64(time.Second))
	return bler.LogBlockError(cells, t, cer) <= math.Log(d.PerPeriodTarget(iv))
}
