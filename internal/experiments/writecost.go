package experiments

import (
	"fmt"

	"repro/internal/levels"
	"repro/internal/progverify"
)

// AblationWriteCost measures iterative program-and-verify cost per state
// for the 4LC and 3LC designs, plus Seong et al.'s Bandwidth-Enhanced
// 3LC variant (Section 6.7: "relaxed writes to S2 in order to improve
// write latency and bandwidth"), modeled as a 2x-wider S2 acceptance
// window. Pulse counts convert to latency at ~100 ns per pulse,
// connecting the mechanism to Table 5's 1 µs MLC write.
func AblationWriteCost(o Options) Result {
	o = o.withDefaults()
	p := progverify.Default()
	samples := int(o.MCSamples / 2000)
	if samples < 2000 {
		samples = 2000
	}
	if samples > 50000 {
		samples = 50000
	}

	r := Result{
		ID:     "A5",
		Title:  "Ablation: iterative program-and-verify write cost",
		Header: []string{"design", "state", "window (log10R)", "mean pulses", "p99", "latency (ns)"},
		Notes: []string{
			"~100 ns per pulse; extreme states are single-pulse (SLC-like), intermediates pay the MLC penalty",
			"BE-3LC relaxes the S2 window 2x (Section 6.7), trading drift margin for write bandwidth",
		},
	}
	names := map[int][]string{3: {"S1", "S2", "S4"}, 4: {"S1", "S2", "S3", "S4"}}
	addMapping := func(label string, m levels.Mapping, relaxState int) {
		for i, spec := range m.Specs() {
			lo, hi := spec.WriteLow(), spec.WriteHigh()
			if i == relaxState {
				mid, half := (lo+hi)/2, hi-lo
				lo, hi = mid-half, mid+half
			}
			st := p.Measure(lo, hi, samples, o.Seed+uint64(i))
			r.Rows = append(r.Rows, []string{
				label, names[m.Levels()][i],
				fmt.Sprintf("[%.2f, %.2f]", lo, hi),
				fmt.Sprintf("%.2f", st.MeanPulses),
				fmt.Sprintf("%d", st.P99Pulses),
				fmt.Sprintf("%.0f", progverify.LatencyNs(st.MeanPulses)),
			})
		}
	}
	addMapping("4LCo", levels.FourLCOpt(), -1)
	addMapping("3LCo", levels.ThreeLCOpt(), -1)
	addMapping("BE-3LC", levels.ThreeLCOpt(), 1)
	return r
}
