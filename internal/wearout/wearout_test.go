package wearout

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/encoding"
	"repro/internal/rng"
)

func TestPaperDesignGeometry(t *testing.T) {
	m := PaperDesign()
	if m.TotalPairs() != 177 || m.TotalCells() != 354 {
		t.Fatalf("geometry: %d pairs, %d cells", m.TotalPairs(), m.TotalCells())
	}
	// Section 6.4: "Tolerating six wearout failures requires 12 spare
	// cells", i.e. 2 per failure.
	if CellOverhead(6) != 12 {
		t.Fatalf("overhead for 6 failures = %d", CellOverhead(6))
	}
}

func randPairs(r *rng.Rand, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(8) // valid (non-INV) pair values
	}
	return out
}

func TestMarkAndSpareCleanPassThrough(t *testing.T) {
	m := PaperDesign()
	r := rng.New(1)
	data := randPairs(r, m.DataPairs)
	phys, err := m.Layout(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, used, err := m.Correct(phys)
	if err != nil || used != 0 {
		t.Fatalf("clean correct: used=%d err=%v", used, err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func TestMarkAndSpareFigure12Example(t *testing.T) {
	// Figure 12: eight data pairs, two spare pairs, failures at data
	// positions 1 and 4. After correction the logical data is intact.
	m := MarkAndSpare{DataPairs: 8, SparePairs: 2}
	data := []int{0, 1, 2, 3, 4, 5, 6, 7}
	phys, err := m.Layout(data, map[int]bool{1: true, 4: true})
	if err != nil {
		t.Fatal(err)
	}
	if phys[1] != encoding.INV || phys[4] != encoding.INV {
		t.Fatalf("marked positions not INV: %v", phys)
	}
	got, used, err := m.Correct(phys)
	if err != nil || used != 2 {
		t.Fatalf("used=%d err=%v", used, err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("pair %d: got %d want %d (phys %v)", i, got[i], data[i], phys)
		}
	}
}

func TestMarkAndSpareAllFailurePositions(t *testing.T) {
	// Any combination of up to SparePairs marked positions — including
	// marked spares themselves — must round-trip.
	m := MarkAndSpare{DataPairs: 8, SparePairs: 4}
	r := rng.New(2)
	for trial := 0; trial < 500; trial++ {
		data := randPairs(r, m.DataPairs)
		marked := map[int]bool{}
		for len(marked) < r.Intn(m.SparePairs+1) {
			marked[r.Intn(m.TotalPairs())] = true
		}
		phys, err := m.Layout(data, marked)
		if err != nil {
			t.Fatal(err)
		}
		got, used, err := m.Correct(phys)
		if err != nil {
			t.Fatalf("marked=%v: %v", marked, err)
		}
		if used != len(marked) {
			t.Fatalf("used=%d, marked=%d", used, len(marked))
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("marked=%v pair %d wrong", marked, i)
			}
		}
	}
}

func TestMarkAndSpareOverCapacity(t *testing.T) {
	m := MarkAndSpare{DataPairs: 8, SparePairs: 2}
	marked := map[int]bool{0: true, 1: true, 2: true}
	if _, err := m.Layout(randPairs(rng.New(3), 8), marked); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("Layout over capacity: %v", err)
	}
	// Read side: three INV pairs with two spares is uncorrectable.
	phys := make([]int, m.TotalPairs())
	phys[0], phys[3], phys[9] = encoding.INV, encoding.INV, encoding.INV
	if _, _, err := m.Correct(phys); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("Correct over capacity: %v", err)
	}
}

func TestMarkAndSpareValidation(t *testing.T) {
	m := MarkAndSpare{DataPairs: 4, SparePairs: 1}
	if _, _, err := m.Correct([]int{1, 2}); err == nil {
		t.Error("short input accepted")
	}
	if _, _, err := m.Correct([]int{0, 1, 2, 3, 9}); err == nil {
		t.Error("out-of-range pair accepted")
	}
	if _, err := m.Layout([]int{1}, nil); err == nil {
		t.Error("short data accepted")
	}
	if _, err := m.Layout([]int{1, 2, 3, encoding.INV}, nil); err == nil {
		t.Error("INV data value accepted")
	}
}

// Property: Layout followed by Correct is the identity for any data and
// any in-capacity marking.
func TestMarkAndSpareRoundTripProperty(t *testing.T) {
	m := PaperDesign()
	f := func(seed uint64, nMarked uint8) bool {
		r := rng.New(seed)
		data := randPairs(r, m.DataPairs)
		marked := map[int]bool{}
		want := int(nMarked) % (m.SparePairs + 1)
		for len(marked) < want {
			marked[r.Intn(m.TotalPairs())] = true
		}
		phys, err := m.Layout(data, marked)
		if err != nil {
			return false
		}
		got, used, err := m.Correct(phys)
		if err != nil || used != len(marked) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFailureModePinning(t *testing.T) {
	if _, pinned := Healthy.Pinned(2); pinned {
		t.Error("healthy cell pinned")
	}
	if s, pinned := StuckReset.Pinned(2); !pinned || s != 2 {
		t.Error("stuck-reset should pin to top state")
	}
	if s, pinned := StuckSetRevived.Pinned(3); !pinned || s != 3 {
		t.Error("revived stuck-set should pin to top state")
	}
	if _, pinned := StuckSet.Pinned(2); pinned {
		t.Error("un-revived stuck-set is not pinned")
	}
	for _, m := range []FailureMode{Healthy, StuckReset, StuckSet, StuckSetRevived} {
		if m.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestECPFigure14Geometry(t *testing.T) {
	e := MLCECP()
	// Section 6.6: "an ECP entry of five cells is required for correcting
	// a cell failure. To tolerate six wearout failures, a total of 31
	// cells ... are needed."
	if e.CellOverhead() != 31 {
		t.Fatalf("MLC ECP overhead = %d, want 31", e.CellOverhead())
	}
	p := SLCECPForPermutation(329)
	if p.CellOverhead() != 60 {
		t.Fatalf("SLC ECP overhead = %d, want 60", p.CellOverhead())
	}
}

func TestECPApply(t *testing.T) {
	e := MLCECP()
	r := rng.New(4)
	cells := make([]int, 256)
	intended := make([]int, 256)
	for i := range cells {
		intended[i] = r.Intn(4)
		cells[i] = intended[i]
	}
	// Six cells fail: they read back as garbage.
	failures := map[int]int{3: intended[3], 77: intended[77], 100: intended[100],
		200: intended[200], 254: intended[254], 255: intended[255]}
	for ptr := range failures {
		cells[ptr] = 3 // stuck at top state
	}
	entries, err := e.Allocate(failures)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.Apply(cells, entries)
	if err != nil || n != 6 {
		t.Fatalf("applied %d, err %v", n, err)
	}
	for i := range cells {
		if cells[i] != intended[i] {
			t.Fatalf("cell %d not restored", i)
		}
	}
}

func TestECPLaterEntryWins(t *testing.T) {
	e := ECP{DataCells: 8, Entries: 2, CellsPerEntry: 5}
	cells := make([]int, 8)
	entries := []Entry{
		{Ptr: 3, Replacement: 1, Valid: true},
		{Ptr: 3, Replacement: 2, Valid: true},
	}
	if _, err := e.Apply(cells, entries); err != nil {
		t.Fatal(err)
	}
	if cells[3] != 2 {
		t.Fatalf("cell 3 = %d, want later entry's 2", cells[3])
	}
}

func TestECPValidation(t *testing.T) {
	e := ECP{DataCells: 8, Entries: 2, CellsPerEntry: 5}
	if _, err := e.Apply(make([]int, 7), nil); err == nil {
		t.Error("wrong cell count accepted")
	}
	if _, err := e.Apply(make([]int, 8), make([]Entry, 3)); err == nil {
		t.Error("too many entries accepted")
	}
	if _, err := e.Apply(make([]int, 8), []Entry{{Ptr: 9, Valid: true}}); err == nil {
		t.Error("out-of-range pointer accepted")
	}
	if _, err := e.Allocate(map[int]int{0: 1, 1: 1, 2: 1}); !errors.Is(err, ErrTooManyFailures) {
		t.Error("over-capacity allocation accepted")
	}
	if _, err := e.Allocate(map[int]int{100: 1}); err == nil {
		t.Error("out-of-range failure accepted")
	}
}

func BenchmarkMarkAndSpareCorrect(b *testing.B) {
	m := PaperDesign()
	data := randPairs(rng.New(1), m.DataPairs)
	phys, _ := m.Layout(data, map[int]bool{5: true, 80: true, 176: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Correct(phys); err != nil {
			b.Fatal(err)
		}
	}
}
