package wearout

import (
	"fmt"

	"repro/internal/encoding"
)

// MarkAndSpare is the paper's wearout-tolerance mechanism for 3-ON-2
// encoded blocks (Section 6.4). A cell pair containing a worn-out cell is
// marked with the reserved INV state ([S4, S4]); on read, a MUX network
// driven by prefix OR chains shifts spare pairs in to replace the marked
// ones (Figure 12). The storage overhead is two spare cells (one pair)
// per tolerated failure — versus five cells per failure for MLC ECP.
//
// The paper's design point is 171 data pairs (342 cells holding 512 bits)
// plus 6 spare pairs (12 cells) tolerating six wearout failures.
type MarkAndSpare struct {
	DataPairs  int
	SparePairs int
}

// PaperDesign returns the 64-byte-block configuration of Section 6.4.
func PaperDesign() MarkAndSpare {
	return MarkAndSpare{DataPairs: 171, SparePairs: 6}
}

// TotalPairs returns data plus spare pairs.
func (m MarkAndSpare) TotalPairs() int { return m.DataPairs + m.SparePairs }

// TotalCells returns the cell footprint (two cells per pair).
func (m MarkAndSpare) TotalCells() int { return 2 * m.TotalPairs() }

// SpareCellsPerFailure is the scheme's marginal overhead: one pair.
const SpareCellsPerFailure = 2

// ErrTooManyFailures is returned when a block carries more INV pairs than
// there are spare pairs.
var ErrTooManyFailures = fmt.Errorf("wearout: more INV pairs than spares")

// Correct performs the read-side correction of Figure 12 on a block of
// pair values (0..8, with 8 = INV), laid out as DataPairs data pairs
// followed by SparePairs spare pairs. It returns the DataPairs logical
// pair values with INV pairs squeezed out and spares shifted in — the
// hardware's cascade of MUX stages, expressed functionally — plus the
// number of spare pairs consumed.
func (m MarkAndSpare) Correct(pairs []int) (data []int, used int, err error) {
	if len(pairs) != m.TotalPairs() {
		return nil, 0, fmt.Errorf("wearout: got %d pairs, want %d", len(pairs), m.TotalPairs())
	}
	data = make([]int, 0, m.DataPairs)
	inv := 0
	for _, p := range pairs {
		if p < 0 || p > encoding.INV {
			return nil, 0, fmt.Errorf("wearout: pair value %d out of range", p)
		}
		if p == encoding.INV {
			inv++
			continue
		}
		if len(data) < m.DataPairs {
			data = append(data, p)
		}
	}
	if inv > m.SparePairs {
		return nil, inv, ErrTooManyFailures
	}
	if len(data) < m.DataPairs {
		// Cannot happen when inv <= SparePairs, by counting.
		return nil, inv, fmt.Errorf("wearout: internal shortfall: %d data pairs", len(data))
	}
	return data, inv, nil
}

// Layout performs the write-side placement: given DataPairs logical pair
// values and the set of marked (worn) physical pair positions, it returns
// the physical pair values — data pairs skipped over marked positions,
// marked positions pinned to INV, and unused spare positions padded with
// zero. Correct is its exact inverse for any marking within capacity.
func (m MarkAndSpare) Layout(data []int, marked map[int]bool) ([]int, error) {
	if len(data) != m.DataPairs {
		return nil, fmt.Errorf("wearout: got %d data pairs, want %d", len(data), m.DataPairs)
	}
	if len(marked) > m.SparePairs {
		return nil, ErrTooManyFailures
	}
	out := make([]int, m.TotalPairs())
	next := 0
	for i := range out {
		if marked[i] {
			out[i] = encoding.INV
			continue
		}
		if next < len(data) {
			v := data[next]
			if v < 0 || v >= encoding.INV {
				return nil, fmt.Errorf("wearout: data pair value %d invalid", v)
			}
			out[i] = v
			next++
		} else {
			out[i] = 0
		}
	}
	if next < len(data) {
		return nil, ErrTooManyFailures
	}
	return out, nil
}

// CellOverhead returns the scheme's cell overhead for tolerating n
// failures (used by Figure 15's capacity comparison).
func CellOverhead(n int) int { return SpareCellsPerFailure * n }
