package wearout

import "fmt"

// ECP implements Error Correcting Pointers (Schechter et al., adapted in
// the paper's Section 6.6): each entry stores a pointer to a failed cell
// plus a replacement value; on read, entries patch the failed cells.
//
// Two variants are modeled:
//
//   - SLC ECP (the original): the pointer addresses a bit, the
//     replacement is one bit, and each entry costs PointerBits+1 cells in
//     SLC mode.
//   - MLC ECP (Figure 14): for a 256-cell four-level block, an 8-bit
//     pointer is stored in four 2-bit cells and the replacement state in
//     one additional cell, so an entry costs five cells; a full flag adds
//     one cell per block.
type ECP struct {
	// DataCells is the number of correctable positions.
	DataCells int
	// Entries is the number of failures tolerated (6 in the paper).
	Entries int
	// CellsPerEntry is the per-entry cell cost (5 for the paper's MLC
	// adaptation; 10 for the SLC entries guarding permutation-coded
	// blocks in Table 3).
	CellsPerEntry int
	// FlagCells is the fixed overhead (1 full-flag cell in Figure 14).
	FlagCells int
}

// MLCECP returns Figure 14's configuration for a 256-cell 4LC block.
func MLCECP() ECP {
	return ECP{DataCells: 256, Entries: 6, CellsPerEntry: 5, FlagCells: 1}
}

// SLCECPForPermutation returns the ECP-6 configuration the paper attaches
// to permutation coding in Table 3 (10 cells per failure, SLC mode).
func SLCECPForPermutation(dataCells int) ECP {
	return ECP{DataCells: dataCells, Entries: 6, CellsPerEntry: 10, FlagCells: 0}
}

// Entry is one correction record.
type Entry struct {
	Ptr         int // failed cell index
	Replacement int // state the failed cell should read as
	Valid       bool
}

// CellOverhead returns the total cell cost of the table.
func (e ECP) CellOverhead() int { return e.Entries*e.CellsPerEntry + e.FlagCells }

// Apply patches cells in place using the valid entries and returns the
// number applied. Later entries take precedence over earlier ones when
// they point at the same cell — matching ECP's write-ordering semantics,
// where a replacement cell that itself fails is patched by a later entry.
func (e ECP) Apply(cells []int, entries []Entry) (int, error) {
	if len(cells) != e.DataCells {
		return 0, fmt.Errorf("wearout: got %d cells, want %d", len(cells), e.DataCells)
	}
	if len(entries) > e.Entries {
		return 0, fmt.Errorf("wearout: %d entries exceed capacity %d", len(entries), e.Entries)
	}
	applied := 0
	for _, en := range entries {
		if !en.Valid {
			continue
		}
		if en.Ptr < 0 || en.Ptr >= e.DataCells {
			return applied, fmt.Errorf("wearout: pointer %d out of range", en.Ptr)
		}
		cells[en.Ptr] = en.Replacement
		applied++
	}
	return applied, nil
}

// Allocate returns an entry table patching the given failed cells with
// their intended states, or ErrTooManyFailures if capacity is exceeded.
func (e ECP) Allocate(failures map[int]int) ([]Entry, error) {
	if len(failures) > e.Entries {
		return nil, ErrTooManyFailures
	}
	entries := make([]Entry, 0, len(failures))
	// Deterministic order: ascending pointer.
	for ptr := 0; ptr < e.DataCells && len(entries) < len(failures); ptr++ {
		if state, ok := failures[ptr]; ok {
			entries = append(entries, Entry{Ptr: ptr, Replacement: state, Valid: true})
		}
	}
	if len(entries) != len(failures) {
		return nil, fmt.Errorf("wearout: failure pointer out of range")
	}
	return entries, nil
}
