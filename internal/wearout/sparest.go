package wearout

import "fmt"

// SpareSet generalizes mark-and-spare from cell pairs to arbitrary
// enumerative groups (Section 8: the same INV-marking idea works for any
// non-power-of-two-level cell whose group code reserves the all-highest
// combination). A group whose value equals INV is skipped on read and a
// spare group shifts in.
type SpareSet struct {
	DataGroups  int
	SpareGroups int
	// INV is the reserved marker value (one past the largest data value).
	INV int
}

// Total returns data plus spare groups.
func (s SpareSet) Total() int { return s.DataGroups + s.SpareGroups }

// Correct squeezes INV groups out of the physical sequence and returns
// the DataGroups logical values, plus the number of spares consumed.
func (s SpareSet) Correct(groups []int) (data []int, used int, err error) {
	if len(groups) != s.Total() {
		return nil, 0, fmt.Errorf("wearout: got %d groups, want %d", len(groups), s.Total())
	}
	data = make([]int, 0, s.DataGroups)
	inv := 0
	for _, g := range groups {
		if g < 0 || g > s.INV {
			return nil, 0, fmt.Errorf("wearout: group value %d out of range", g)
		}
		if g == s.INV {
			inv++
			continue
		}
		if len(data) < s.DataGroups {
			data = append(data, g)
		}
	}
	if inv > s.SpareGroups {
		return nil, inv, ErrTooManyFailures
	}
	if len(data) < s.DataGroups {
		return nil, inv, fmt.Errorf("wearout: internal shortfall: %d data groups", len(data))
	}
	return data, inv, nil
}

// Layout is the write-side inverse of Correct: data values placed over
// unmarked positions in order, marked positions pinned to INV, trailing
// spares zeroed.
func (s SpareSet) Layout(data []int, marked map[int]bool) ([]int, error) {
	if len(data) != s.DataGroups {
		return nil, fmt.Errorf("wearout: got %d data groups, want %d", len(data), s.DataGroups)
	}
	if len(marked) > s.SpareGroups {
		return nil, ErrTooManyFailures
	}
	out := make([]int, s.Total())
	next := 0
	for i := range out {
		if marked[i] {
			out[i] = s.INV
			continue
		}
		if next < len(data) {
			v := data[next]
			if v < 0 || v >= s.INV {
				return nil, fmt.Errorf("wearout: data value %d invalid", v)
			}
			out[i] = v
			next++
		}
	}
	if next < len(data) {
		return nil, ErrTooManyFailures
	}
	return out, nil
}
