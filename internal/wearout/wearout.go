// Package wearout implements the paper's hard-error (wearout) tolerance
// mechanisms: the proposed mark-and-spare scheme for 3-ON-2 encoded
// three-level cells (Section 6.4, Figures 10–12) and the Error Correcting
// Pointers baseline, both in its original SLC form and the MLC adaptation
// of Figure 14. It also models PCM's two wearout failure modes.
package wearout

import "fmt"

// FailureMode is a PCM wearout failure type (Section 6.4, after Burr et
// al.): stuck-reset cells are pinned at the highest resistance state;
// stuck-set cells cannot be RESET to the highest state (and can usually
// be revived into it by a reverse current pulse, per Goux et al.).
type FailureMode int

const (
	// Healthy marks a functioning cell.
	Healthy FailureMode = iota
	// StuckReset pins the cell at the highest-resistance state.
	StuckReset
	// StuckSet prevents the cell from reaching the highest-resistance
	// state; it reads back at a lower state than written.
	StuckSet
	// StuckSetRevived is a stuck-set cell forced into the highest state
	// by reverse current: it behaves as permanently highest-resistance.
	StuckSetRevived
)

// String implements fmt.Stringer.
func (m FailureMode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case StuckReset:
		return "stuck-reset"
	case StuckSet:
		return "stuck-set"
	case StuckSetRevived:
		return "stuck-set-revived"
	}
	return fmt.Sprintf("FailureMode(%d)", int(m))
}

// Pinned reports whether the mode forces the cell to the top state.
func (m FailureMode) Pinned(topState int) (state int, pinned bool) {
	switch m {
	case StuckReset, StuckSetRevived:
		return topState, true
	}
	return 0, false
}
