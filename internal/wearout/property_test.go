package wearout

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// Property: SpareSet Layout∘Correct is the identity for arbitrary
// geometries, data, and in-capacity markings.
func TestSpareSetRoundTripProperty(t *testing.T) {
	f := func(seed uint64, dataRaw, spareRaw, invRaw uint8, markRaw uint8) bool {
		dataGroups := int(dataRaw)%32 + 1
		spareGroups := int(spareRaw)%8 + 1
		invVal := int(invRaw)%100 + 1
		ss := SpareSet{DataGroups: dataGroups, SpareGroups: spareGroups, INV: invVal}
		r := rng.New(seed)
		data := make([]int, dataGroups)
		for i := range data {
			data[i] = r.Intn(invVal)
		}
		marked := map[int]bool{}
		for len(marked) < int(markRaw)%(spareGroups+1) {
			marked[r.Intn(ss.Total())] = true
		}
		phys, err := ss.Layout(data, marked)
		if err != nil {
			return false
		}
		got, used, err := ss.Correct(phys)
		if err != nil || used != len(marked) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: ECP Allocate∘Apply restores any in-capacity failure set.
func TestECPRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nFail uint8) bool {
		e := MLCECP()
		r := rng.New(seed)
		intended := make([]int, e.DataCells)
		cells := make([]int, e.DataCells)
		for i := range cells {
			intended[i] = r.Intn(4)
			cells[i] = intended[i]
		}
		failures := map[int]int{}
		for len(failures) < int(nFail)%(e.Entries+1) {
			ptr := r.Intn(e.DataCells)
			failures[ptr] = intended[ptr]
			cells[ptr] = 3 // stuck high
		}
		entries, err := e.Allocate(failures)
		if err != nil {
			return false
		}
		if _, err := e.Apply(cells, entries); err != nil {
			return false
		}
		for i := range cells {
			if cells[i] != intended[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
