package remap

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/levels"
	"repro/internal/pcmarray"
	"repro/internal/wearout"
)

func noWear(seed uint64) pcmarray.Options {
	o := pcmarray.DefaultOptions(seed)
	o.EnduranceMean = 0
	return o
}

func newDev(t *testing.T, logical, reserve int, seed uint64) (*Device, *core.ThreeLC) {
	t.Helper()
	inner := core.NewThreeLC(logical+reserve, core.ThreeLCConfig{Array: noWear(seed)})
	return Wrap(inner, reserve), inner
}

// killBlock injects seven stuck-reset failures in distinct pairs of a
// physical block so its next all-zero write exceeds mark-and-spare.
func killBlock(inner core.Arch, physBlock, cellsPerBlock int) {
	base := physBlock * cellsPerBlock
	for k := 0; k < 7; k++ {
		inner.Array().InjectFailure(base+2*(20*k+1), wearout.StuckReset)
	}
}

func TestPassThrough(t *testing.T) {
	d, _ := newDev(t, 4, 2, 1)
	if d.Blocks() != 4 {
		t.Fatalf("blocks = %d", d.Blocks())
	}
	want := make([]byte, core.BlockBytes)
	copy(want, "remap pass-through")
	if err := d.Write(1, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("round trip: %v", err)
	}
	if d.Retired() != 0 || d.ReserveLeft() != 2 {
		t.Fatal("spurious remapping")
	}
}

func TestRemapOnWearout(t *testing.T) {
	d, inner := newDev(t, 4, 2, 2)
	cells := inner.CellsPerBlock()
	killBlock(inner, 1, cells)
	zero := make([]byte, core.BlockBytes)
	if err := d.Write(1, zero); err != nil {
		t.Fatalf("write with dead physical block: %v", err)
	}
	if d.Retired() != 1 || d.ReserveLeft() != 1 {
		t.Fatalf("retired=%d reserve=%d", d.Retired(), d.ReserveLeft())
	}
	got, err := d.Read(1)
	if err != nil || !bytes.Equal(got, zero) {
		t.Fatalf("read after remap: %v", err)
	}
	// Other blocks unaffected.
	data := make([]byte, core.BlockBytes)
	copy(data, "neighbour")
	if err := d.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if d.Retired() != 1 {
		t.Fatal("neighbour write triggered remap")
	}
}

func TestReserveBlockCanAlsoDie(t *testing.T) {
	d, inner := newDev(t, 2, 2, 3)
	cells := inner.CellsPerBlock()
	killBlock(inner, 0, cells) // the logical block
	killBlock(inner, 3, cells) // the first reserve to be popped (LIFO from end? pop order)
	// Pop order is from the tail of the reserve slice; Wrap pushed
	// physical blocks n-1 down to logical, so the first pop is block 2.
	// Kill that one too to force a double hop.
	killBlock(inner, 2, cells)
	zero := make([]byte, core.BlockBytes)
	err := d.Write(0, zero)
	if err != nil {
		// Both reserves dead: exhaustion is the correct outcome.
		if !errors.Is(err, ErrExhausted) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	t.Fatalf("write succeeded with every candidate block dead (retired=%d)", d.Retired())
}

func TestExhaustionReported(t *testing.T) {
	d, inner := newDev(t, 2, 1, 4)
	cells := inner.CellsPerBlock()
	killBlock(inner, 1, cells)
	killBlock(inner, 2, cells)
	zero := make([]byte, core.BlockBytes)
	if err := d.Write(1, zero); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

// fakeArch scripts inner-device behaviour so remap's scrub-wearout branch
// can be exercised deterministically (in the real 3LC device a stuck cell
// corrupts its pair's read-back so that the rewrite re-targets the stuck
// state and verify passes — wearout surfaces at scrub time only through
// fresh endurance deaths, which are stochastic).
type fakeArch struct {
	blocks    [][]byte
	arr       *pcmarray.Array
	scrubWorn map[int]bool // physical blocks whose next scrub rewrite wears out
	writeWorn map[int]bool // physical blocks that reject writes outright
}

func newFakeArch(n int) *fakeArch {
	return &fakeArch{
		blocks:    make([][]byte, n),
		arr:       pcmarray.New(levelsForFake(), 4, noWear(1)),
		scrubWorn: map[int]bool{},
		writeWorn: map[int]bool{},
	}
}

func levelsForFake() levels.Mapping { return levels.ThreeLCNaive() }

func (f *fakeArch) Name() string           { return "fake" }
func (f *fakeArch) Blocks() int            { return len(f.blocks) }
func (f *fakeArch) CellsPerBlock() int     { return 364 }
func (f *fakeArch) Density() float64       { return 1.4 }
func (f *fakeArch) Array() *pcmarray.Array { return f.arr }
func (f *fakeArch) Write(b int, d []byte) error {
	if f.writeWorn[b] {
		return core.ErrWornOut
	}
	f.blocks[b] = append([]byte(nil), d...)
	return nil
}
func (f *fakeArch) Read(b int) ([]byte, error) {
	if f.blocks[b] == nil {
		return nil, fmt.Errorf("fake: unwritten")
	}
	return append([]byte(nil), f.blocks[b]...), nil
}
func (f *fakeArch) Scrub(b int) error {
	if f.scrubWorn[b] {
		f.scrubWorn[b] = false
		f.writeWorn[b] = true
		return core.ErrWornOut
	}
	return nil
}

func TestScrubTriggersRemap(t *testing.T) {
	inner := newFakeArch(4)
	d := Wrap(inner, 2)
	want := make([]byte, core.BlockBytes)
	copy(want, "scrub-remap")
	if err := d.Write(1, want); err != nil {
		t.Fatal(err)
	}
	inner.scrubWorn[1] = true
	if err := d.Scrub(1); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if d.Retired() != 1 {
		t.Fatalf("retired = %d", d.Retired())
	}
	got, err := d.Read(1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("data lost across scrub-remap: %v", err)
	}
}

func TestUncorrectableScrubIsReportedNotRemapped(t *testing.T) {
	// Integration: stuck cells injected mid-retention make the block
	// transiently uncorrectable; scrub must surface ErrUncorrectable and
	// must NOT burn a reserve block (the cells are not write-failed).
	d, inner := newDev(t, 3, 2, 5)
	want := make([]byte, core.BlockBytes)
	copy(want, "scrub-remap")
	if err := d.Write(2, want); err != nil {
		t.Fatal(err)
	}
	base := 2 * inner.CellsPerBlock()
	for k := 0; k < 7; k++ {
		inner.Array().InjectFailure(base+2*(40+10*k), wearout.StuckReset)
	}
	// Fourteen flipped TEC bits overwhelm BCH-1; the decode either
	// reports failure or — as for any bounded-distance code fed a random
	// syndrome — miscorrects. Either way this is a transient-error event,
	// not wearout: the reserve pool must stay untouched.
	scrubErr := d.Scrub(2)
	if d.Retired() != 0 {
		t.Fatalf("reserve burned on a transient error: retired = %d", d.Retired())
	}
	got, readErr := d.Read(2)
	if scrubErr == nil && readErr == nil && bytes.Equal(got, want) {
		t.Fatal("seven in-place stuck cells left no trace at all")
	}
	if errors.Is(scrubErr, ErrExhausted) {
		t.Fatalf("unexpected exhaustion: %v", scrubErr)
	}
}

func TestDensityAndBounds(t *testing.T) {
	d, inner := newDev(t, 6, 2, 6)
	if d.Density() >= inner.Density() {
		t.Error("remap density should pay the reserve tax")
	}
	if err := d.Write(6, make([]byte, core.BlockBytes)); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := d.Read(-1); err == nil {
		t.Error("negative read accepted")
	}
}

func TestWrapPanics(t *testing.T) {
	inner := core.NewThreeLC(4, core.ThreeLCConfig{Array: noWear(7)})
	for name, reserve := range map[string]int{"zero": 0, "all": 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			Wrap(inner, reserve)
		}()
	}
}

func TestEnduranceLifetimeExtension(t *testing.T) {
	// End-to-end: under a hot-block workload with real endurance, the
	// remapped device must absorb strictly more writes before dying than
	// the raw one.
	lifetime := func(reserve int) int {
		opt := pcmarray.DefaultOptions(8)
		opt.EnduranceMean = 150
		opt.EnduranceSigma = 0.2
		inner := core.NewThreeLC(1+reserve, core.ThreeLCConfig{Array: opt})
		var dev core.Arch = inner
		if reserve > 0 {
			dev = Wrap(inner, reserve)
		}
		data := make([]byte, core.BlockBytes)
		for i := 0; i < 100000; i++ {
			data[0] = byte(i)
			if err := dev.Write(0, data); err != nil {
				return i
			}
		}
		return 100000
	}
	raw := lifetime(0)
	remapped := lifetime(3)
	if remapped <= raw {
		t.Fatalf("remapping did not extend lifetime: %d vs %d writes", remapped, raw)
	}
	t.Log(fmt.Sprintf("hot-block lifetime: raw %d writes, +3 reserves %d writes", raw, remapped))
}

// TestRetireForceRemaps: the escalation path moves a logical block onto
// a fresh reserve block without a wearout event, consuming reserve and
// counting as retired; the rewritten content lands on the new physical
// block.
func TestRetireForceRemaps(t *testing.T) {
	d, _ := newDev(t, 4, 2, 3)
	want := make([]byte, core.BlockBytes)
	copy(want, "pre-retire content")
	if err := d.Write(2, want); err != nil {
		t.Fatal(err)
	}

	if err := d.Retire(2); err != nil {
		t.Fatalf("Retire: %v", err)
	}
	if d.Retired() != 1 || d.ReserveLeft() != 1 {
		t.Fatalf("retired=%d reserve=%d, want 1/1", d.Retired(), d.ReserveLeft())
	}
	// The caller's contract: rewrite immediately; the write must land on
	// the replacement block and read back.
	copy(want, "post-retire content")
	if err := d.Write(2, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(2)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-retire round trip: %v", err)
	}

	// Exhaust the pool: one more retire succeeds, the next reports
	// ErrExhausted and keeps the old mapping serving.
	if err := d.Retire(0); err != nil {
		t.Fatalf("second retire: %v", err)
	}
	if err := d.Retire(1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("retire on empty pool = %v, want ErrExhausted", err)
	}
	if _, err := d.Read(2); err != nil {
		t.Fatalf("read after exhaustion: %v", err)
	}

	// Bounds still checked.
	if err := d.Retire(99); err == nil {
		t.Fatal("out-of-range retire accepted")
	}
}
