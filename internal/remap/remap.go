// Package remap implements fine-grained worn-block remapping in the
// spirit of FREE-p (Yoon et al., HPCA'11), which the paper invokes for
// end-to-end protection once a block exhausts its in-block wearout
// tolerance (Section 6.4: "we can combine the current design with
// fine-grained block remapping to provide end-to-end protection").
//
// A Device reserves a fraction of an inner architecture's blocks; when a
// logical block's write fails with core.ErrWornOut — its mark-and-spare
// or ECP capacity is exhausted — the block is transparently remapped to
// a reserve block, and service continues until the reserve pool itself
// runs dry.
package remap

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

// ErrExhausted reports that both the block's wearout tolerance and the
// device's reserve pool are used up — true device end-of-life.
var ErrExhausted = errors.New("remap: reserve pool exhausted")

// Device wraps an inner architecture with a remapping table and a
// reserve pool taken from the tail of the inner block space.
type Device struct {
	inner   core.Arch
	logical int
	table   map[int]int // logical -> physical (absent: identity)
	reserve []int       // free reserve physical blocks, LIFO
	retired int
}

// Wrap reserves `reserve` blocks of the inner device. The wrapped device
// exposes inner.Blocks()-reserve logical blocks.
func Wrap(inner core.Arch, reserve int) *Device {
	if reserve < 1 || reserve >= inner.Blocks() {
		panic("remap: reserve must be in [1, blocks)")
	}
	d := &Device{
		inner:   inner,
		logical: inner.Blocks() - reserve,
		table:   map[int]int{},
	}
	// LIFO from the end: pop order is deterministic.
	for p := inner.Blocks() - 1; p >= d.logical; p-- {
		d.reserve = append(d.reserve, p)
	}
	return d
}

// Name implements core.Arch.
func (d *Device) Name() string { return d.inner.Name() + " + remap" }

// Blocks implements core.Arch.
func (d *Device) Blocks() int { return d.logical }

// CellsPerBlock implements core.Arch.
func (d *Device) CellsPerBlock() int { return d.inner.CellsPerBlock() }

// Density implements core.Arch, amortizing the reserve pool.
func (d *Device) Density() float64 {
	return d.inner.Density() * float64(d.logical) / float64(d.inner.Blocks())
}

// Array implements core.Arch.
func (d *Device) Array() *pcmarray.Array { return d.inner.Array() }

// Retired returns the number of blocks remapped so far.
func (d *Device) Retired() int { return d.retired }

// ReserveLeft returns the remaining reserve capacity.
func (d *Device) ReserveLeft() int { return len(d.reserve) }

func (d *Device) physical(block int) int {
	if p, ok := d.table[block]; ok {
		return p
	}
	return block
}

func (d *Device) check(block int) error {
	if block < 0 || block >= d.logical {
		return fmt.Errorf("remap: block %d out of range [0,%d)", block, d.logical)
	}
	return nil
}

// Write implements core.Arch: on wearout, remap to reserve blocks until
// the write sticks or the pool empties. A reserve block can itself wear
// out, so the loop continues down the pool.
func (d *Device) Write(block int, data []byte) error {
	if err := d.check(block); err != nil {
		return err
	}
	for {
		err := d.inner.Write(d.physical(block), data)
		if !errors.Is(err, core.ErrWornOut) {
			return err
		}
		if len(d.reserve) == 0 {
			return ErrExhausted
		}
		next := d.reserve[len(d.reserve)-1]
		d.reserve = d.reserve[:len(d.reserve)-1]
		d.table[block] = next
		d.retired++
	}
}

// Retire force-remaps a logical block onto a fresh reserve block
// without waiting for a write to hit core.ErrWornOut — the escalation
// path for a block whose stored content failed end-to-end integrity
// checks beyond correction capability. The new physical block starts
// with whatever it last held; callers are expected to rewrite the
// logical block immediately. Returns ErrExhausted when the reserve
// pool is empty (the old mapping is kept).
func (d *Device) Retire(block int) error {
	if err := d.check(block); err != nil {
		return err
	}
	if len(d.reserve) == 0 {
		return ErrExhausted
	}
	next := d.reserve[len(d.reserve)-1]
	d.reserve = d.reserve[:len(d.reserve)-1]
	d.table[block] = next
	d.retired++
	return nil
}

// Read implements core.Arch.
func (d *Device) Read(block int) ([]byte, error) {
	if err := d.check(block); err != nil {
		return nil, err
	}
	return d.inner.Read(d.physical(block))
}

// Scrub implements core.Arch; a scrub that hits wearout triggers the
// same remapping path as a write.
func (d *Device) Scrub(block int) error {
	if err := d.check(block); err != nil {
		return err
	}
	err := d.inner.Scrub(d.physical(block))
	if !errors.Is(err, core.ErrWornOut) {
		return err
	}
	// Recover the block's content (possibly with corrections) and move it.
	data, rerr := d.inner.Read(d.physical(block))
	if rerr != nil && !errors.Is(rerr, core.ErrUncorrectable) {
		return rerr
	}
	return d.Write(block, data)
}

var _ core.Arch = (*Device)(nil)
