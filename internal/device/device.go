// Package device composes the full storage stack of this reproduction —
// a block architecture (3LC, 4LCo, or permutation), optional start-gap
// wear leveling, optional FREE-p-style block remapping, and a refresh
// schedule — behind byte-addressable io.ReaderAt/io.WriterAt interfaces,
// the form in which a persistent-memory device would actually be adopted
// (the paper's Section 1 use cases: file systems, persistent data
// structures, in-memory checkpointing).
//
// Reads and writes of arbitrary byte ranges are translated to 64-byte
// block operations with read-modify-write at the edges. Simulated time
// advances explicitly through Advance, which also drives refresh for
// architectures that need it.
//
// # Concurrency
//
// A Device is NOT safe for concurrent use. The composed stack (cell
// array, wear leveling, remapping, refresh bookkeeping) is mutable
// state with no internal locking — mirroring real PCM, where a rank is
// owned by one memory-controller channel. Callers must confine a
// Device to a single goroutine or serialize access themselves:
//
//   - internal/pcmserve shards the byte address space across several
//     devices, each owned by one goroutine draining a bounded queue —
//     the intended path for serving concurrent request streams.
//   - For embedding a single device directly, wrap it in a mutex (see
//     the package example ExampleDevice_lockedWrapper).
package device

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pcmarray"
	"repro/internal/refresh"
	"repro/internal/remap"
	"repro/internal/wearlevel"
)

// ArchKind selects the block architecture.
type ArchKind int

const (
	// ThreeLC is the paper's proposal: nonvolatile, no refresh needed.
	ThreeLC ArchKind = iota
	// FourLC is the 4LCo baseline: dense, volatile, needs refresh.
	FourLC
	// Permutation is the rank-order-coding baseline.
	Permutation
)

// String implements fmt.Stringer.
func (k ArchKind) String() string {
	switch k {
	case ThreeLC:
		return "3LC"
	case FourLC:
		return "4LCo"
	case Permutation:
		return "permutation"
	}
	return fmt.Sprintf("ArchKind(%d)", int(k))
}

// Config assembles a device.
type Config struct {
	// Kind selects the architecture (default ThreeLC).
	Kind ArchKind
	// Blocks is the logical 64-byte block capacity (required).
	Blocks int
	// Seed drives all stochastic behaviour.
	Seed uint64
	// WearLeveling enables start-gap rotation with the given period
	// (Psi defaults to 100 when zero).
	WearLeveling bool
	Psi          int
	// ReserveBlocks enables FREE-p-style remapping with that many
	// reserve blocks.
	ReserveBlocks int
	// RefreshIntervalSeconds enables scrubbing; zero selects the
	// architecture default (17 minutes for FourLC, none otherwise).
	RefreshIntervalSeconds float64
	// DisableWearout turns off endurance limits (useful for pure
	// retention studies).
	DisableWearout bool
}

// Device is a byte-addressable PCM storage device.
type Device struct {
	cfg   Config
	arch  core.Arch
	mgr   *refresh.Manager
	valid []bool // logical blocks ever written
}

var _ io.ReaderAt = (*Device)(nil)
var _ io.WriterAt = (*Device)(nil)

// New assembles a device from the configuration.
func New(cfg Config) (*Device, error) {
	if cfg.Blocks < 1 {
		return nil, errors.New("device: need at least one block")
	}
	opt := pcmarray.DefaultOptions(cfg.Seed)
	if cfg.DisableWearout {
		opt.EnduranceMean = 0
	}
	physical := cfg.Blocks + cfg.ReserveBlocks
	if cfg.WearLeveling {
		physical++ // the gap line
	}
	var arch core.Arch
	switch cfg.Kind {
	case ThreeLC:
		arch = core.NewThreeLC(physical, core.ThreeLCConfig{Array: opt})
	case FourLC:
		arch = core.NewFourLC(physical, core.FourLCConfig{Array: opt})
	case Permutation:
		arch = core.NewPermutation(physical, opt)
	default:
		return nil, fmt.Errorf("device: unknown architecture %v", cfg.Kind)
	}
	if cfg.WearLeveling {
		psi := cfg.Psi
		if psi == 0 {
			psi = 100
		}
		arch = wearlevel.Wrap(arch, psi)
	}
	if cfg.ReserveBlocks > 0 {
		arch = remap.Wrap(arch, cfg.ReserveBlocks)
	}
	d := &Device{cfg: cfg, arch: arch, valid: make([]bool, cfg.Blocks)}
	interval := cfg.RefreshIntervalSeconds
	if interval == 0 && cfg.Kind == FourLC {
		interval = 17 * 60
	}
	if interval > 0 {
		d.mgr = refresh.NewManager(arch, interval)
	}
	return d, nil
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(d.cfg.Blocks) * core.BlockBytes }

// Name describes the assembled stack.
func (d *Device) Name() string { return d.arch.Name() }

// Density returns stored data bits per physical cell, all overheads in.
func (d *Device) Density() float64 { return d.arch.Density() }

// Advance moves simulated time forward by dt seconds, running any
// refresh work that falls due.
func (d *Device) Advance(dt float64) error {
	if d.mgr != nil {
		return d.mgr.Advance(dt)
	}
	d.arch.Array().Advance(dt)
	return nil
}

// RemapStats reports FREE-p remapping occupancy: reserve blocks still
// available and worn blocks remapped so far (zeros when remapping is
// disabled). Like every Device method it must be called from the
// owning goroutine.
func (d *Device) RemapStats() (reserveLeft, retired int) {
	if rd, ok := d.arch.(*remap.Device); ok {
		return rd.ReserveLeft(), rd.Retired()
	}
	return 0, 0
}

// RetireBlock force-remaps logical block b onto a fresh reserve block —
// the escalation path for a block whose content failed an end-to-end
// integrity check beyond correction capability (pcmserve's BCH layer).
// The relocated block's content is undefined until rewritten; callers
// rewrite it immediately. Returns an error when remapping is disabled
// or the reserve pool is exhausted. Like every Device method it must be
// called from the owning goroutine.
func (d *Device) RetireBlock(b int) error {
	rd, ok := d.arch.(*remap.Device)
	if !ok {
		return errors.New("device: block remapping disabled (no reserve blocks)")
	}
	if b < 0 || b >= d.cfg.Blocks {
		return fmt.Errorf("device: retire block %d out of range [0,%d)", b, d.cfg.Blocks)
	}
	return rd.Retire(b)
}

// RefreshStats reports scrub outcomes (zero value when refresh is off).
func (d *Device) RefreshStats() refresh.Stats {
	if d.mgr == nil {
		return refresh.Stats{}
	}
	return d.mgr.Stats()
}

// readBlock fetches a logical block, treating never-written blocks as
// zero-filled.
func (d *Device) readBlock(b int) ([]byte, error) {
	if !d.valid[b] {
		return make([]byte, core.BlockBytes), nil
	}
	return d.arch.Read(b)
}

// ReadAt implements io.ReaderAt over the device's byte space.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("device: negative offset")
	}
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		if pos >= d.Size() {
			return n, io.EOF
		}
		b := int(pos / core.BlockBytes)
		inBlk := int(pos % core.BlockBytes)
		blk, err := d.readBlock(b)
		if err != nil {
			return n, fmt.Errorf("device: block %d: %w", b, err)
		}
		n += copy(p[n:], blk[inBlk:])
	}
	return n, nil
}

// WriteAt implements io.WriterAt, performing read-modify-write for
// partial blocks.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("device: negative offset")
	}
	if off+int64(len(p)) > d.Size() {
		return 0, fmt.Errorf("device: write [%d, %d) exceeds size %d", off, off+int64(len(p)), d.Size())
	}
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		b := int(pos / core.BlockBytes)
		inBlk := int(pos % core.BlockBytes)
		span := core.BlockBytes - inBlk
		if span > len(p)-n {
			span = len(p) - n
		}
		var blk []byte
		if inBlk == 0 && span == core.BlockBytes {
			blk = p[n : n+core.BlockBytes]
		} else {
			cur, err := d.readBlock(b)
			if err != nil && !errors.Is(err, core.ErrUncorrectable) {
				return n, fmt.Errorf("device: rmw read block %d: %w", b, err)
			}
			// An uncorrectable read is tolerated — the write replaces
			// the damaged span anyway — but the returned buffer may be
			// nil or short; the read-modify-write below needs a full
			// block to splice into.
			if len(cur) < core.BlockBytes {
				full := make([]byte, core.BlockBytes)
				copy(full, cur)
				cur = full
			}
			copy(cur[inBlk:], p[n:n+span])
			blk = cur
		}
		if err := d.arch.Write(b, blk); err != nil {
			return n, fmt.Errorf("device: write block %d: %w", b, err)
		}
		d.valid[b] = true
		n += span
	}
	return n, nil
}
