package device_test

import (
	"fmt"

	"repro/internal/device"
)

// Assemble the full stack — 3LC blocks, start-gap wear leveling, a
// remapping reserve — behind io.ReaderAt/io.WriterAt, write across block
// boundaries, lose power for a decade, and read back.
func Example() {
	dev, err := device.New(device.Config{
		Kind:           device.ThreeLC,
		Blocks:         32,
		Seed:           7,
		WearLeveling:   true,
		ReserveBlocks:  2,
		DisableWearout: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	msg := []byte("persistent across a decade without power")
	if _, err := dev.WriteAt(msg, 100); err != nil { // unaligned on purpose
		fmt.Println(err)
		return
	}
	if err := dev.Advance(10 * 365.25 * 86400); err != nil {
		fmt.Println(err)
		return
	}
	got := make([]byte, len(msg))
	if _, err := dev.ReadAt(got, 100); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s\n", got)
	// Output:
	// persistent across a decade without power
}
