package device_test

import (
	"fmt"
	"sync"

	"repro/internal/device"
)

// Assemble the full stack — 3LC blocks, start-gap wear leveling, a
// remapping reserve — behind io.ReaderAt/io.WriterAt, write across block
// boundaries, lose power for a decade, and read back.
func Example() {
	dev, err := device.New(device.Config{
		Kind:           device.ThreeLC,
		Blocks:         32,
		Seed:           7,
		WearLeveling:   true,
		ReserveBlocks:  2,
		DisableWearout: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	msg := []byte("persistent across a decade without power")
	if _, err := dev.WriteAt(msg, 100); err != nil { // unaligned on purpose
		fmt.Println(err)
		return
	}
	if err := dev.Advance(10 * 365.25 * 86400); err != nil {
		fmt.Println(err)
		return
	}
	got := make([]byte, len(msg))
	if _, err := dev.ReadAt(got, 100); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s\n", got)
	// Output:
	// persistent across a decade without power
}

// lockedDevice is the minimal way to share one Device between
// goroutines: serialize every access behind a mutex. A Device is not
// safe for concurrent use (see the package documentation); when
// per-device serialization becomes the bottleneck, shard the address
// space across several devices instead — internal/pcmserve does
// exactly that, one goroutine per shard.
type lockedDevice struct {
	mu  sync.Mutex
	dev *device.Device
}

func (l *lockedDevice) ReadAt(p []byte, off int64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dev.ReadAt(p, off)
}

func (l *lockedDevice) WriteAt(p []byte, off int64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dev.WriteAt(p, off)
}

func (l *lockedDevice) Advance(dt float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dev.Advance(dt)
}

// Share a single device between concurrent writers by wrapping it in a
// mutex — the embedder-side answer to the package's single-goroutine
// concurrency contract.
func ExampleDevice_lockedWrapper() {
	dev, err := device.New(device.Config{
		Kind:           device.ThreeLC,
		Blocks:         32,
		Seed:           7,
		DisableWearout: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	shared := &lockedDevice{dev: dev}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := []byte(fmt.Sprintf("writer %d", w))
			if _, err := shared.WriteAt(chunk, int64(w)*128+33); err != nil {
				fmt.Println(err)
			}
		}(w)
	}
	wg.Wait()

	got := make([]byte, 8)
	if _, err := shared.ReadAt(got, 2*128+33); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s\n", got)
	// Output:
	// writer 2
}
