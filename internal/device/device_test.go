package device

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/pcmarray"
	"repro/internal/rng"
)

func newDev(t *testing.T, cfg Config) *Device {
	t.Helper()
	if cfg.Blocks == 0 {
		cfg.Blocks = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cfg.DisableWearout = true
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestByteRoundTripAligned(t *testing.T) {
	d := newDev(t, Config{})
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i)
	}
	if n, err := d.WriteAt(data, 64); err != nil || n != 128 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	got := make([]byte, 128)
	if n, err := d.ReadAt(got, 64); err != nil || n != 128 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("aligned round trip failed")
	}
}

func TestUnalignedReadModifyWrite(t *testing.T) {
	d := newDev(t, Config{})
	// Lay down a background pattern, then splice an unaligned write
	// across three blocks.
	bg := make([]byte, 4*64)
	for i := range bg {
		bg[i] = 0xEE
	}
	if _, err := d.WriteAt(bg, 0); err != nil {
		t.Fatal(err)
	}
	splice := []byte("unaligned write across block boundaries, straddling three 64B blocks!")
	off := int64(37)
	if _, err := d.WriteAt(splice, off); err != nil {
		t.Fatal(err)
	}
	whole := make([]byte, len(bg))
	if _, err := d.ReadAt(whole, 0); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), bg...)
	copy(want[off:], splice)
	if !bytes.Equal(whole, want) {
		t.Fatal("read-modify-write corrupted surrounding bytes")
	}
}

func TestUnwrittenReadsAsZero(t *testing.T) {
	d := newDev(t, Config{})
	got := make([]byte, 100)
	got[0] = 0xFF
	if _, err := d.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("unwritten byte %d = %#x", i, b)
		}
	}
}

func TestBoundsAndEOF(t *testing.T) {
	d := newDev(t, Config{Blocks: 2})
	if _, err := d.WriteAt([]byte{1}, d.Size()); err == nil {
		t.Error("write past end accepted")
	}
	if _, err := d.WriteAt([]byte{1}, -1); err == nil {
		t.Error("negative write offset accepted")
	}
	buf := make([]byte, 10)
	n, err := d.ReadAt(buf, d.Size()-4)
	if err != io.EOF || n != 4 {
		t.Errorf("partial read at end: n=%d err=%v", n, err)
	}
	if _, err := New(Config{Blocks: 0}); err == nil {
		t.Error("zero-block device accepted")
	}
}

func TestFullStackComposition(t *testing.T) {
	d := newDev(t, Config{
		Kind:          ThreeLC,
		Blocks:        8,
		WearLeveling:  true,
		Psi:           4,
		ReserveBlocks: 2,
	})
	if d.Size() != 8*64 {
		t.Fatalf("size = %d", d.Size())
	}
	name := d.Name()
	if name == "" || d.Density() <= 0 {
		t.Fatal("metadata missing")
	}
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i * 3)
	}
	for round := 0; round < 20; round++ {
		data[0] = byte(round)
		if _, err := d.WriteAt(data, 0); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := make([]byte, 512)
		if _, err := d.ReadAt(got, 0); err != nil {
			t.Fatalf("round %d read: %v", round, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round %d corrupted", round)
		}
	}
}

func TestFourLCNeedsItsRefresh(t *testing.T) {
	// With the default 17-minute schedule a 4LC device survives a day of
	// Advance; without (interval forced huge) it decays.
	alive := newDev(t, Config{Kind: FourLC, Blocks: 8, Seed: 5})
	dead := newDev(t, Config{Kind: FourLC, Blocks: 8, Seed: 5, RefreshIntervalSeconds: 1e9})
	data := make([]byte, 8*64)
	for i := range data {
		data[i] = byte(i * 11)
	}
	for _, d := range []*Device{alive, dead} {
		if _, err := d.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		if err := d.Advance(86400); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(data))
	if _, err := alive.ReadAt(got, 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("refreshed 4LC lost data: %v", err)
	}
	if alive.RefreshStats().Scrubs == 0 {
		t.Fatal("no scrubs recorded")
	}
	if _, err := dead.ReadAt(got, 0); err == nil && bytes.Equal(got, data) {
		t.Fatal("unrefreshed 4LC survived a day suspiciously")
	}
}

func TestThreeLCDecadeUnpowered(t *testing.T) {
	d := newDev(t, Config{Kind: ThreeLC, Blocks: 8, Seed: 7})
	data := make([]byte, 8*64)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if _, err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance(10 * 365.25 * 86400); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("3LC device lost data over a decade: %v", err)
	}
}

func TestShadowBufferProperty(t *testing.T) {
	// Random writes against a shadow buffer; every read must agree.
	d := newDev(t, Config{Blocks: 8, Seed: 11})
	shadow := make([]byte, d.Size())
	r := rng.New(3)
	f := func(offRaw uint16, lenRaw uint8, fill byte) bool {
		off := int64(offRaw) % d.Size()
		length := int(lenRaw)%96 + 1
		if off+int64(length) > d.Size() {
			length = int(d.Size() - off)
		}
		chunk := make([]byte, length)
		for i := range chunk {
			chunk[i] = fill ^ byte(i) ^ byte(r.Uint64())
		}
		if _, err := d.WriteAt(chunk, off); err != nil {
			return false
		}
		copy(shadow[off:], chunk)
		whole := make([]byte, d.Size())
		if _, err := d.ReadAt(whole, 0); err != nil {
			return false
		}
		return bytes.Equal(whole, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestArchKindString(t *testing.T) {
	for _, k := range []ArchKind{ThreeLC, FourLC, Permutation} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if _, err := New(Config{Blocks: 1, Kind: ArchKind(9)}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// faultyArch wraps a real core.Arch but makes reads of designated
// blocks fail uncorrectably with the worst-case contract a decoder may
// exhibit: a nil or short buffer alongside core.ErrUncorrectable.
type faultyArch struct {
	core.Arch
	uncorrectable map[int][]byte // block → buffer to return (may be nil/short)
}

func (f *faultyArch) Read(b int) ([]byte, error) {
	if buf, ok := f.uncorrectable[b]; ok {
		return buf, core.ErrUncorrectable
	}
	return f.Arch.Read(b)
}

// TestWriteAtUncorrectableRMW is the regression test for the
// read-modify-write path when the underlying block read is
// uncorrectable: a nil (or short) buffer from the decoder used to
// panic the splice; the write must instead proceed, replacing the
// damaged block.
func TestWriteAtUncorrectableRMW(t *testing.T) {
	for _, tc := range []struct {
		name string
		buf  []byte
	}{
		{"nil buffer", nil},
		{"short buffer", make([]byte, 17)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := pcmarray.DefaultOptions(99)
			opt.EnduranceMean = 0
			fa := &faultyArch{
				Arch:          core.NewThreeLC(2, core.ThreeLCConfig{Array: opt}),
				uncorrectable: map[int][]byte{0: tc.buf},
			}
			d := &Device{cfg: Config{Blocks: 2}, arch: fa, valid: make([]bool, 2)}
			// Mark block 0 as written so the RMW path consults the
			// (failing) decoder rather than the zero-fill shortcut.
			d.valid[0] = true

			splice := []byte{0xAB, 0xCD, 0xEF, 0x01}
			if _, err := d.WriteAt(splice, 10); err != nil {
				t.Fatalf("unaligned WriteAt over uncorrectable block: %v", err)
			}

			// The write landed; with the fault cleared the block reads
			// back as the spliced content over a zero (or short) base.
			delete(fa.uncorrectable, 0)
			got := make([]byte, core.BlockBytes)
			if _, err := d.ReadAt(got, 0); err != nil {
				t.Fatalf("readback: %v", err)
			}
			want := make([]byte, core.BlockBytes)
			copy(want, tc.buf)
			copy(want[10:], splice)
			if !bytes.Equal(got, want) {
				t.Fatalf("spliced block mismatch:\n got %x\nwant %x", got, want)
			}
		})
	}
}

// TestReadWriteEdges pins down the unaligned-edge semantics of
// ReadAt/WriteAt: block-boundary straddles, ranges ending exactly at
// Size(), zero-length buffers, and EOF behaviour.
func TestReadWriteEdges(t *testing.T) {
	d := newDev(t, Config{Blocks: 4}) // 256 bytes, 64-byte blocks
	size := d.Size()

	writes := []struct {
		name string
		off  int64
		n    int
	}{
		{"within one block, unaligned", 5, 20},
		{"straddles blocks 0/1", 60, 8},
		{"exactly one aligned block", 64, 64},
		{"straddles three blocks", 70, 130},
		{"ends exactly at Size", size - 9, 9},
		{"single byte at last offset", size - 1, 1},
	}
	mirror := make([]byte, size)
	pat := byte(3)
	for _, w := range writes {
		t.Run("write "+w.name, func(t *testing.T) {
			p := make([]byte, w.n)
			for i := range p {
				p[i] = pat
				pat = pat*7 + 1
			}
			n, err := d.WriteAt(p, w.off)
			if err != nil || n != w.n {
				t.Fatalf("WriteAt(%d bytes, %d) = %d, %v", w.n, w.off, n, err)
			}
			copy(mirror[w.off:], p)
		})
	}

	reads := []struct {
		name    string
		off     int64
		n       int
		wantN   int
		wantErr error
	}{
		{"full device", 0, int(size), int(size), nil},
		{"straddling blocks 1/2", 100, 56, 56, nil},
		{"ends exactly at Size", size - 13, 13, 13, nil},
		{"crosses Size", size - 5, 12, 5, io.EOF},
		{"starts at Size", size, 4, 0, io.EOF},
		{"starts past Size", size + 40, 4, 0, io.EOF},
		{"zero-length at 0", 0, 0, 0, nil},
		{"zero-length at Size", size, 0, 0, nil},
	}
	for _, r := range reads {
		t.Run("read "+r.name, func(t *testing.T) {
			p := make([]byte, r.n)
			n, err := d.ReadAt(p, r.off)
			if n != r.wantN || err != r.wantErr {
				t.Fatalf("ReadAt(%d bytes, %d) = %d, %v; want %d, %v", r.n, r.off, n, err, r.wantN, r.wantErr)
			}
			if r.off < size && !bytes.Equal(p[:n], mirror[r.off:r.off+int64(n)]) {
				t.Fatal("content mismatch against mirror")
			}
		})
	}

	// Zero-length writes are accepted anywhere in range.
	if n, err := d.WriteAt(nil, 0); n != 0 || err != nil {
		t.Fatalf("zero-length WriteAt = %d, %v", n, err)
	}
	if n, err := d.WriteAt(nil, size); n != 0 || err != nil {
		t.Fatalf("zero-length WriteAt at Size = %d, %v", n, err)
	}
}
