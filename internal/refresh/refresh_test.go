package refresh

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

func noWear(seed uint64) pcmarray.Options {
	o := pcmarray.DefaultOptions(seed)
	o.EnduranceMean = 0
	return o
}

func pattern(b int) []byte {
	data := make([]byte, core.BlockBytes)
	for i := range data {
		data[i] = byte(b*13 + i)
	}
	return data
}

func fill(t *testing.T, dev core.Arch) {
	t.Helper()
	for b := 0; b < dev.Blocks(); b++ {
		if err := dev.Write(b, pattern(b)); err != nil {
			t.Fatal(err)
		}
	}
}

func verify(t *testing.T, dev core.Arch) int {
	t.Helper()
	bad := 0
	for b := 0; b < dev.Blocks(); b++ {
		got, err := dev.Read(b)
		if err != nil || !bytes.Equal(got, pattern(b)) {
			bad++
		}
	}
	return bad
}

func TestRefreshKeeps4LCAlive(t *testing.T) {
	// 4LCo with a 17-minute refresh interval survives a simulated day —
	// the volatile-memory use the paper argues 4LCo can support.
	dev := core.NewFourLC(16, core.FourLCConfig{Array: noWear(1)})
	fill(t, dev)
	mgr := NewManager(dev, 17*60)
	if err := mgr.Advance(86400); err != nil {
		t.Fatal(err)
	}
	if bad := verify(t, dev); bad != 0 {
		t.Fatalf("%d blocks lost under refresh", bad)
	}
	s := mgr.Stats()
	// One pass scrubs 16 blocks per 1020 s: a day is ~84.7 passes.
	day := 86400.0
	wantScrubs := int64(day / (17 * 60) * 16)
	if s.Scrubs < wantScrubs-2 || s.Scrubs > wantScrubs+2 {
		t.Errorf("scrubs = %d, want ~%d", s.Scrubs, wantScrubs)
	}
	if s.Uncorrectable != 0 {
		t.Errorf("uncorrectable events = %d", s.Uncorrectable)
	}
}

func TestNoRefreshKills4LC(t *testing.T) {
	// The control: the same device with no refresh decays within 12 days.
	dev := core.NewFourLC(16, core.FourLCConfig{Array: noWear(1)})
	fill(t, dev)
	dev.Array().Advance(12 * 86400)
	if bad := verify(t, dev); bad == 0 {
		t.Fatal("no decay without refresh; control broken")
	}
}

func TestTooLongIntervalShowsUncorrectables(t *testing.T) {
	// Stretch the interval to a month: drift accumulates past BCH-10
	// between scrubs, and the manager records uncorrectable events
	// rather than failing silently.
	dev := core.NewFourLC(16, core.FourLCConfig{Array: noWear(2)})
	fill(t, dev)
	mgr := NewManager(dev, 30*86400)
	if err := mgr.Advance(90 * 86400); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().Uncorrectable == 0 {
		t.Fatal("month-long 4LC refresh interval reported no uncorrectables")
	}
}

func TestThreeLCNeedsNoRefreshForDecade(t *testing.T) {
	dev := core.NewThreeLC(16, core.ThreeLCConfig{Array: noWear(3)})
	fill(t, dev)
	dev.Array().Advance(10 * 365.25 * 86400)
	if bad := verify(t, dev); bad != 0 {
		t.Fatalf("%d 3LC blocks lost without refresh", bad)
	}
}

func TestAdvanceSplitsArbitrarily(t *testing.T) {
	// The schedule must be invariant to how callers chunk time.
	mk := func() (*Manager, core.Arch) {
		dev := core.NewThreeLC(4, core.ThreeLCConfig{Array: noWear(4)})
		fill(t, dev)
		return NewManager(dev, 1000), dev
	}
	a, devA := mk()
	if err := a.Advance(5000); err != nil {
		t.Fatal(err)
	}
	b, devB := mk()
	for i := 0; i < 50; i++ {
		if err := b.Advance(100); err != nil {
			t.Fatal(err)
		}
	}
	if a.Stats().Scrubs != b.Stats().Scrubs {
		t.Fatalf("scrub counts differ: %d vs %d", a.Stats().Scrubs, b.Stats().Scrubs)
	}
	if devA.Array().Now() != devB.Array().Now() {
		t.Fatalf("clocks differ: %v vs %v", devA.Array().Now(), devB.Array().Now())
	}
}

func TestAdvanceRejectsNegative(t *testing.T) {
	dev := core.NewThreeLC(2, core.ThreeLCConfig{Array: noWear(5)})
	fill(t, dev)
	if err := NewManager(dev, 100).Advance(-1); err == nil {
		t.Fatal("negative dt accepted")
	}
}

func TestNewManagerPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewManager(core.NewThreeLC(1, core.ThreeLCConfig{Array: noWear(6)}), 0)
}

// failingArch wraps a real Arch and fails Scrub on selected blocks with
// an error outside the counted classes (not ErrUncorrectable/ErrWornOut).
type failingArch struct {
	core.Arch
	failOn map[int]error
}

func (f *failingArch) Scrub(block int) error {
	if err, ok := f.failOn[block]; ok {
		return err
	}
	return f.Arch.Scrub(block)
}

func TestAdvanceErrorKeepsClockExact(t *testing.T) {
	// Regression: an unexpected scrub error used to return mid-pass with
	// the array clock advanced by less than dt and the failing block's
	// slot half-consumed. The pass must now complete — exact clock, every
	// due block visited — and report the first error at the end.
	boom := errors.New("injected scrub failure")
	mk := func(fail bool) (*Manager, core.Arch) {
		dev := core.NewThreeLC(8, core.ThreeLCConfig{Array: noWear(7)})
		fill(t, dev)
		var arch core.Arch = dev
		if fail {
			arch = &failingArch{Arch: dev, failOn: map[int]error{2: boom, 5: boom}}
		}
		return NewManager(arch, 800), dev
	}

	a, devA := mk(true)
	err := a.Advance(1234) // 12 due scrubs at a 100 s gap, failures at blocks 2, 5, …
	if err == nil {
		t.Fatal("injected scrub failure not reported")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the scrub failure", err)
	}

	b, devB := mk(false)
	if err := b.Advance(1234); err != nil {
		t.Fatal(err)
	}
	if got, want := devA.Array().Now(), devB.Array().Now(); got != want {
		t.Fatalf("clock after failing pass = %v, want exactly %v", got, want)
	}
	if got, want := a.Stats().Scrubs, b.Stats().Scrubs; got != want {
		t.Fatalf("scrubs after failing pass = %d, want %d (every due block visited)", got, want)
	}

	// The schedule stays chunk-invariant across failures: a second
	// Advance lands on the same clock as the healthy manager's.
	if err := a.Advance(321); !errors.Is(err, boom) && err != nil {
		t.Fatal(err)
	}
	if err := b.Advance(321); err != nil {
		t.Fatal(err)
	}
	if devA.Array().Now() != devB.Array().Now() {
		t.Fatalf("clocks diverge after the failing pass: %v vs %v",
			devA.Array().Now(), devB.Array().Now())
	}
}

func TestAdvanceCarryPropertyRandomSplits(t *testing.T) {
	// Property: for any way of splitting a total advance into steps, the
	// scrub count and array clock match one monolithic call. Fractional
	// gaps are the interesting regime, so steps are drawn non-uniformly
	// around the 250 s per-block gap.
	const total = 13579.0
	mkDev := func() (*Manager, core.Arch) {
		dev := core.NewThreeLC(4, core.ThreeLCConfig{Array: noWear(8)})
		fill(t, dev)
		return NewManager(dev, 1000), dev
	}
	ref, refDev := mkDev()
	if err := ref.Advance(total); err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		m, dev := mkDev()
		left := total
		for left > 0 {
			var step float64
			switch rnd.Intn(3) {
			case 0: // tiny fraction of a gap
				step = rnd.Float64() * 25
			case 1: // around one gap
				step = 150 + rnd.Float64()*200
			default: // several gaps at once
				step = rnd.Float64() * 2000
			}
			if step > left {
				step = left
			}
			if err := m.Advance(step); err != nil {
				t.Fatal(err)
			}
			left -= step
		}
		if got, want := m.Stats().Scrubs, ref.Stats().Scrubs; got != want {
			t.Fatalf("trial %d: scrubs = %d, want %d", trial, got, want)
		}
		if got, want := dev.Array().Now(), refDev.Array().Now(); math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: clock = %v, want %v", trial, got, want)
		}
	}
}
