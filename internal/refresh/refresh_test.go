package refresh

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/pcmarray"
)

func noWear(seed uint64) pcmarray.Options {
	o := pcmarray.DefaultOptions(seed)
	o.EnduranceMean = 0
	return o
}

func pattern(b int) []byte {
	data := make([]byte, core.BlockBytes)
	for i := range data {
		data[i] = byte(b*13 + i)
	}
	return data
}

func fill(t *testing.T, dev core.Arch) {
	t.Helper()
	for b := 0; b < dev.Blocks(); b++ {
		if err := dev.Write(b, pattern(b)); err != nil {
			t.Fatal(err)
		}
	}
}

func verify(t *testing.T, dev core.Arch) int {
	t.Helper()
	bad := 0
	for b := 0; b < dev.Blocks(); b++ {
		got, err := dev.Read(b)
		if err != nil || !bytes.Equal(got, pattern(b)) {
			bad++
		}
	}
	return bad
}

func TestRefreshKeeps4LCAlive(t *testing.T) {
	// 4LCo with a 17-minute refresh interval survives a simulated day —
	// the volatile-memory use the paper argues 4LCo can support.
	dev := core.NewFourLC(16, core.FourLCConfig{Array: noWear(1)})
	fill(t, dev)
	mgr := NewManager(dev, 17*60)
	if err := mgr.Advance(86400); err != nil {
		t.Fatal(err)
	}
	if bad := verify(t, dev); bad != 0 {
		t.Fatalf("%d blocks lost under refresh", bad)
	}
	s := mgr.Stats()
	// One pass scrubs 16 blocks per 1020 s: a day is ~84.7 passes.
	day := 86400.0
	wantScrubs := int64(day / (17 * 60) * 16)
	if s.Scrubs < wantScrubs-2 || s.Scrubs > wantScrubs+2 {
		t.Errorf("scrubs = %d, want ~%d", s.Scrubs, wantScrubs)
	}
	if s.Uncorrectable != 0 {
		t.Errorf("uncorrectable events = %d", s.Uncorrectable)
	}
}

func TestNoRefreshKills4LC(t *testing.T) {
	// The control: the same device with no refresh decays within 12 days.
	dev := core.NewFourLC(16, core.FourLCConfig{Array: noWear(1)})
	fill(t, dev)
	dev.Array().Advance(12 * 86400)
	if bad := verify(t, dev); bad == 0 {
		t.Fatal("no decay without refresh; control broken")
	}
}

func TestTooLongIntervalShowsUncorrectables(t *testing.T) {
	// Stretch the interval to a month: drift accumulates past BCH-10
	// between scrubs, and the manager records uncorrectable events
	// rather than failing silently.
	dev := core.NewFourLC(16, core.FourLCConfig{Array: noWear(2)})
	fill(t, dev)
	mgr := NewManager(dev, 30*86400)
	if err := mgr.Advance(90 * 86400); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().Uncorrectable == 0 {
		t.Fatal("month-long 4LC refresh interval reported no uncorrectables")
	}
}

func TestThreeLCNeedsNoRefreshForDecade(t *testing.T) {
	dev := core.NewThreeLC(16, core.ThreeLCConfig{Array: noWear(3)})
	fill(t, dev)
	dev.Array().Advance(10 * 365.25 * 86400)
	if bad := verify(t, dev); bad != 0 {
		t.Fatalf("%d 3LC blocks lost without refresh", bad)
	}
}

func TestAdvanceSplitsArbitrarily(t *testing.T) {
	// The schedule must be invariant to how callers chunk time.
	mk := func() (*Manager, core.Arch) {
		dev := core.NewThreeLC(4, core.ThreeLCConfig{Array: noWear(4)})
		fill(t, dev)
		return NewManager(dev, 1000), dev
	}
	a, devA := mk()
	if err := a.Advance(5000); err != nil {
		t.Fatal(err)
	}
	b, devB := mk()
	for i := 0; i < 50; i++ {
		if err := b.Advance(100); err != nil {
			t.Fatal(err)
		}
	}
	if a.Stats().Scrubs != b.Stats().Scrubs {
		t.Fatalf("scrub counts differ: %d vs %d", a.Stats().Scrubs, b.Stats().Scrubs)
	}
	if devA.Array().Now() != devB.Array().Now() {
		t.Fatalf("clocks differ: %v vs %v", devA.Array().Now(), devB.Array().Now())
	}
}

func TestAdvanceRejectsNegative(t *testing.T) {
	dev := core.NewThreeLC(2, core.ThreeLCConfig{Array: noWear(5)})
	fill(t, dev)
	if err := NewManager(dev, 100).Advance(-1); err == nil {
		t.Fatal("negative dt accepted")
	}
}

func TestNewManagerPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewManager(core.NewThreeLC(1, core.ThreeLCConfig{Array: noWear(6)}), 0)
}
