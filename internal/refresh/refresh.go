// Package refresh implements the device-level refresh (scrub) manager of
// Sections 1 and 4: every block is periodically read, ECC-corrected, and
// rewritten so that cell resistances return to nominal values before
// drift accumulates into uncorrectable errors. Banks are scrubbed
// independently and the schedule spreads block scrubs uniformly across
// the interval, matching the bank-availability model of Figure 4.
//
// The manager drives any core.Arch and keeps the error bookkeeping a
// reliability study needs: corrected (transient) events, uncorrectable
// blocks, and wearout retirements.
package refresh

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Stats aggregates scrub outcomes.
type Stats struct {
	// Scrubs is the number of block scrub operations performed.
	Scrubs int64
	// Uncorrectable counts scrubs that found a block beyond its ECC
	// (data loss events; the quantity bounded by the target BLER).
	Uncorrectable int64
	// WornOut counts blocks retired for exceeding wearout capacity.
	WornOut int64
}

// Manager schedules periodic scrubs of an architecture's blocks.
type Manager struct {
	dev core.Arch
	// IntervalSeconds is the full-device refresh period.
	IntervalSeconds float64

	stats     Stats
	nextBlock int
	// carry accumulates simulated time not yet consumed by scrubs.
	carry float64
}

// NewManager wraps a device with a refresh schedule. interval is the
// full-device refresh period in seconds (the paper's 17 minutes for
// 4LCo); it must be positive.
func NewManager(dev core.Arch, intervalSeconds float64) *Manager {
	if intervalSeconds <= 0 {
		panic("refresh: non-positive interval")
	}
	return &Manager{dev: dev, IntervalSeconds: intervalSeconds}
}

// perBlockGap returns the time between consecutive block scrubs when the
// schedule spreads one full pass uniformly over the interval.
func (m *Manager) perBlockGap() float64 {
	return m.IntervalSeconds / float64(m.dev.Blocks())
}

// Advance moves simulated time forward by dt seconds, performing every
// block scrub that falls due. Uncorrectable blocks are counted, not
// fatal: the scrub still rewrites the (corrupted) content, as hardware
// would. An unexpected scrub error does not abort the pass either: the
// schedule completes (the array clock advances by exactly dt, every due
// block is still visited, carry stays consistent with the caller's
// clock) and the first such error is returned at the end — so the
// schedule remains invariant to how callers chunk time even across
// failures.
func (m *Manager) Advance(dt float64) error {
	if dt < 0 {
		return errors.New("refresh: negative time step")
	}
	gap := m.perBlockGap()
	remaining := dt
	var firstErr error
	// Invariant: the array clock advances by exactly dt across this call;
	// carry tracks how far into the current gap the schedule has moved.
	for m.carry+remaining >= gap {
		step := gap - m.carry
		m.dev.Array().Advance(step)
		remaining -= step
		m.carry = 0
		err := m.dev.Scrub(m.nextBlock)
		m.stats.Scrubs++
		switch {
		case err == nil:
		case errors.Is(err, core.ErrUncorrectable):
			m.stats.Uncorrectable++
		case errors.Is(err, core.ErrWornOut):
			m.stats.WornOut++
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("refresh: scrub block %d: %w", m.nextBlock, err)
			}
		}
		m.nextBlock = (m.nextBlock + 1) % m.dev.Blocks()
	}
	m.dev.Array().Advance(remaining)
	m.carry += remaining
	return firstErr
}

// Stats returns accumulated outcomes.
func (m *Manager) Stats() Stats { return m.stats }
