package refresh_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pcmarray"
	"repro/internal/refresh"
)

// Keep a volatile 4LCo device alive for a simulated day with the paper's
// 17-minute scrub schedule.
func Example() {
	opt := pcmarray.DefaultOptions(6)
	opt.EnduranceMean = 0
	dev := core.NewFourLC(16, core.FourLCConfig{Array: opt})
	for b := 0; b < dev.Blocks(); b++ {
		data := make([]byte, core.BlockBytes)
		data[0] = byte(b)
		if err := dev.Write(b, data); err != nil {
			fmt.Println(err)
			return
		}
	}
	mgr := refresh.NewManager(dev, 17*60)
	if err := mgr.Advance(86400); err != nil {
		fmt.Println(err)
		return
	}
	s := mgr.Stats()
	fmt.Printf("scrubs per block per day: %d\n", s.Scrubs/int64(dev.Blocks()))
	fmt.Printf("uncorrectable events: %d\n", s.Uncorrectable)
	// Output:
	// scrubs per block per day: 84
	// uncorrectable events: 0
}
