// Package levels defines the cell-level state mappings studied in the
// paper — nominal log-resistance values, inter-state thresholds, and state
// occurrence probabilities — and the constrained optimizer that produces
// the "optimal mapping" designs (Sections 5.1 and 5.2, Figures 1, 6, 7).
//
// Five mappings reproduce the paper's design points:
//
//	4LCn  naive four-level cell: nominals 10^3..10^6 Ω, midpoint thresholds
//	4LCs  4LCn plus smart encoding (skewed state probabilities 35/15/15/35)
//	4LCo  optimal mapping plus smart encoding
//	3LCn  three-level cell: S3 removed from the naive 4LC mapping
//	3LCo  optimally mapped three-level cell (the paper's proposal)
//
// The generalized constructors (Uniform, Optimize) also support the
// paper's Section 8 extension to five- and six-level cells.
package levels

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/drift"
	"repro/internal/stats"
)

// Delta is the paper's guard band δ between a threshold and a distribution
// tail: 0.05 σ, covering sense-amplifier noise and slow downward drift.
const Delta = 0.05 * drift.SigmaLogR

// Margin is the minimum spacing between a state's nominal value and an
// adjacent threshold: the write window plus the guard band.
const Margin = drift.WriteWindow*drift.SigmaLogR + Delta

// RateSwitchLogR is where the conservative 3LC drift-rate increase kicks
// in: 10^4.5 Ω, the original τ2 of the naive four-level mapping.
const RateSwitchLogR = 4.5

// Mapping is a complete level design: k states with nominal log10
// resistances, k-1 thresholds, occurrence probabilities, and the Table 1
// drift-parameter index for each state. RateSwitchAt > 0 enables the
// piecewise drift-rate increase (3LC designs).
type Mapping struct {
	Name         string
	Nominals     []float64
	Thresholds   []float64
	Probs        []float64
	AlphaIdx     []int
	RateSwitchAt float64
	// SwitchMode selects how the post-switch drift exponent relates to
	// the cell's pre-switch exponent (zero value: independent resample,
	// the most conservative reading — see drift.SwitchMode).
	SwitchMode drift.SwitchMode
	// Sigma is the per-state written log-resistance standard deviation;
	// zero means the paper's default of 1/6. Five- and six-level cells
	// require a tighter write distribution to be feasible at all
	// (Section 8: "we can best improve storage density by reducing the
	// variability of the log-resistance of written cells").
	Sigma float64
}

// sigma returns the mapping's write standard deviation.
func (m Mapping) sigma() float64 {
	if m.Sigma > 0 {
		return m.Sigma
	}
	return drift.SigmaLogR
}

// SigmaValue returns the effective write standard deviation (the default
// 1/6 when the Sigma field is zero).
func (m Mapping) SigmaValue() float64 { return m.sigma() }

// MarginWidth returns the minimum nominal-to-threshold spacing for this
// mapping: the ±2.75σ write window plus the 0.05σ guard band.
func (m Mapping) MarginWidth() float64 {
	return (drift.WriteWindow + 0.05) * m.sigma()
}

// Levels returns the number of states.
func (m Mapping) Levels() int { return len(m.Nominals) }

// BitsPerCellIdeal returns log2(levels), the information-theoretic
// capacity of one cell under this mapping.
func (m Mapping) BitsPerCellIdeal() float64 {
	return math.Log2(float64(m.Levels()))
}

// Validate checks structural consistency and the ordering/margin
// constraints of Section 5.1.
func (m Mapping) Validate() error {
	k := m.Levels()
	if k < 2 {
		return fmt.Errorf("levels: mapping %q has %d states", m.Name, k)
	}
	if len(m.Thresholds) != k-1 || len(m.Probs) != k || len(m.AlphaIdx) != k {
		return fmt.Errorf("levels: mapping %q has inconsistent slice lengths", m.Name)
	}
	sum := 0.0
	for _, p := range m.Probs {
		if p < 0 {
			return fmt.Errorf("levels: mapping %q has negative probability", m.Name)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("levels: mapping %q probabilities sum to %v", m.Name, sum)
	}
	for i := 0; i < k-1; i++ {
		lo := m.Nominals[i] + m.MarginWidth()
		hi := m.Nominals[i+1] - m.MarginWidth()
		if m.Thresholds[i] < lo-1e-9 || m.Thresholds[i] > hi+1e-9 {
			return fmt.Errorf("levels: mapping %q threshold %d = %v outside [%v, %v]",
				m.Name, i, m.Thresholds[i], lo, hi)
		}
	}
	for i, idx := range m.AlphaIdx {
		if idx < 0 || idx >= len(drift.Table1) {
			return fmt.Errorf("levels: mapping %q state %d has alpha index %d", m.Name, i, idx)
		}
	}
	return nil
}

// Specs expands the mapping into per-state drift specifications.
func (m Mapping) Specs() []drift.StateSpec {
	k := m.Levels()
	specs := make([]drift.StateSpec, k)
	for i := 0; i < k; i++ {
		upper := math.Inf(1)
		if i < k-1 {
			upper = m.Thresholds[i]
		}
		s := drift.StateSpec{
			Nominal: m.Nominals[i],
			Sigma:   m.sigma(),
			Upper:   upper,
			Alpha:   drift.Table1[m.AlphaIdx[i]].Alpha,
		}
		if m.RateSwitchAt > 0 && !math.IsInf(upper, 1) && upper > m.RateSwitchAt {
			// Past the switch resistance the cell is in S3's resistance
			// regime; the paper conservatively applies S3's µα = 0.06.
			// The switch attaches whenever the state's error path crosses
			// the switch resistance — regardless of where the nominal
			// sits — so the optimizer cannot dodge the conservative
			// regime by shifting a nominal past 10^4.5 Ω.
			s.Switch = &drift.RateSwitch{AtLogR: m.RateSwitchAt, Alpha: drift.Table1[2].Alpha, Mode: m.SwitchMode}
		}
		specs[i] = s
	}
	return specs
}

// QuadCER returns the mapping's probability-weighted cell error rate at
// time t (seconds since write), by deterministic quadrature.
func (m Mapping) QuadCER(t float64) float64 {
	return drift.QuadCERMix(m.Specs(), m.Probs, t)
}

// MCCERCurve returns the Monte Carlo cell-error-rate curve on the given
// ascending time grid.
func (m Mapping) MCCERCurve(times []float64, samples int64, seed uint64, workers int) drift.MCResult {
	return drift.MCCERCurve(m.Specs(), m.Probs, times, samples, seed, workers)
}

// State reads back the state index for a sensed log10 resistance.
func (m Mapping) State(logR float64) int {
	for i, th := range m.Thresholds {
		if logR < th {
			return i
		}
	}
	return m.Levels() - 1
}

// uniformProbs returns equal occurrence probabilities for k states.
func uniformProbs(k int) []float64 {
	p := make([]float64, k)
	for i := range p {
		p[i] = 1 / float64(k)
	}
	return p
}

// FourLCNaive returns 4LCn: nominals at 10^3..10^6 Ω, evenly spaced
// thresholds, equal state probabilities (Figure 1).
func FourLCNaive() Mapping {
	return Mapping{
		Name:       "4LCn",
		Nominals:   []float64{3, 4, 5, 6},
		Thresholds: []float64{3.5, 4.5, 5.5},
		Probs:      uniformProbs(4),
		AlphaIdx:   []int{0, 1, 2, 3},
	}
}

// FourLCSmart returns 4LCs: the naive geometry with the paper's
// (optimistic) smart-encoding state skew of 35% for S1/S4 and 15% for the
// vulnerable S2/S3.
func FourLCSmart() Mapping {
	m := FourLCNaive()
	m.Name = "4LCs"
	m.Probs = []float64{0.35, 0.15, 0.15, 0.35}
	return m
}

// ThreeLCNaive returns 3LCn: S3 removed from the naive mapping. The three
// states keep the paper's names S1, S2, S4; the region above the original
// τ3 = 10^5.5 Ω reads as S4, so S2 gains a wide drift margin. The
// conservative drift-rate switch at 10^4.5 Ω is enabled.
func ThreeLCNaive() Mapping {
	return Mapping{
		Name:         "3LCn",
		Nominals:     []float64{3, 4, 6},
		Thresholds:   []float64{3.5, 5.5},
		Probs:        uniformProbs(3),
		AlphaIdx:     []int{0, 1, 3},
		RateSwitchAt: RateSwitchLogR,
	}
}

// Uniform returns a k-level mapping with nominals evenly spaced over
// [10^3, 10^6] Ω, midpoint thresholds, equal probabilities, and Table 1
// drift parameters assigned by resistance neighbourhood — the starting
// point for the Section 8 generalization to five- and six-level cells.
func Uniform(k int) Mapping {
	if k < 2 || k > 8 {
		panic("levels: Uniform supports 2..8 levels")
	}
	nom := make([]float64, k)
	for i := range nom {
		nom[i] = 3 + 3*float64(i)/float64(k-1)
	}
	// With the default σ = 1/6 the margin constraints are infeasible for
	// five or more levels (2·(2.75+0.05)σ ≈ 0.93 exceeds the 0.75 state
	// spacing). Per the paper's Section 8 discussion, higher density
	// requires a tighter write distribution: scale σ so the margins fit
	// with slack.
	sigma := 0.0
	spacing := 3 / float64(k-1)
	if spacing < 2*(drift.WriteWindow+0.05)*drift.SigmaLogR*1.2 {
		sigma = spacing / (2 * (drift.WriteWindow + 0.05) * 1.2)
	}
	th := make([]float64, k-1)
	idx := make([]int, k)
	for i := range th {
		th[i] = (nom[i] + nom[i+1]) / 2
	}
	for i := range idx {
		a := drift.AlphaForLevel(nom[i])
		for j, e := range drift.Table1 {
			if e.Alpha == a {
				idx[i] = j
			}
		}
	}
	return Mapping{
		Name:       fmt.Sprintf("%dLCu", k),
		Nominals:   nom,
		Thresholds: th,
		Probs:      uniformProbs(k),
		AlphaIdx:   idx,
		Sigma:      sigma,
	}
}

// OptimizeOptions controls the constrained mapping optimizer.
type OptimizeOptions struct {
	// ObjectiveTime is the paper's CER evaluation time: 215 s.
	ObjectiveTime float64
	// SecondaryTime and SecondaryWeight add a small retention-horizon term
	// to the objective. The paper's single-time objective is flat (zero
	// under any finite sampling) over much of the 3LC feasible region; the
	// secondary term breaks those ties in favour of the longest retention,
	// which is what the paper's published 3LCo achieves. For 4LC the term
	// is negligible relative to the primary.
	SecondaryTime   float64
	SecondaryWeight float64
	// Sweeps is the number of coordinate-descent passes.
	Sweeps int
}

// DefaultOptimizeOptions mirror Section 5.1: objective CER at t = 215 s,
// with a ten-year secondary horizon at weight 1e-6.
func DefaultOptimizeOptions() OptimizeOptions {
	return OptimizeOptions{
		ObjectiveTime:   215,
		SecondaryTime:   10 * 365.25 * 86400,
		SecondaryWeight: 1e-6,
		Sweeps:          8,
	}
}

// Optimize minimizes the mapping's cell error rate over the interior
// nominal values and all thresholds, holding the first and last nominals
// fixed (the fully crystalline and amorphous resistances are set by
// process technology). Constraints follow Section 5.1:
//
//	µi + 2.75σ + δ  <  τi  <  µ(i+1) − 2.75σ − δ
//
// The method is projected coordinate descent with golden-section line
// search on each coordinate, using the deterministic quadrature CER, so
// the result is stable across runs.
func Optimize(m Mapping, opt OptimizeOptions) Mapping {
	out := m
	out.Nominals = append([]float64(nil), m.Nominals...)
	out.Thresholds = append([]float64(nil), m.Thresholds...)
	out.Name = m.Name + "-opt"

	objective := func(c Mapping) float64 {
		v := c.QuadCER(opt.ObjectiveTime)
		if opt.SecondaryWeight > 0 {
			v += opt.SecondaryWeight * c.QuadCER(opt.SecondaryTime)
		}
		return v
	}

	k := out.Levels()
	for sweep := 0; sweep < opt.Sweeps; sweep++ {
		improved := false
		// Interior nominals: µ2 .. µ(k-1).
		for i := 1; i < k-1; i++ {
			lo := out.Thresholds[i-1] + out.MarginWidth()
			hi := out.Thresholds[i] - out.MarginWidth()
			improved = goldenMin(&out.Nominals[i], lo, hi, func() float64 { return objective(out) }) || improved
		}
		// Thresholds: τ1 .. τ(k-1).
		for i := 0; i < k-1; i++ {
			lo := out.Nominals[i] + out.MarginWidth()
			hi := out.Nominals[i+1] - out.MarginWidth()
			improved = goldenMin(&out.Thresholds[i], lo, hi, func() float64 { return objective(out) }) || improved
		}
		if !improved {
			break
		}
	}
	return out
}

// goldenMin minimizes f over [lo, hi] by golden-section search on the
// coordinate pointed to by x, accepting the result only if it improves on
// the current value. Returns whether an improvement was made.
func goldenMin(x *float64, lo, hi float64, f func() float64) bool {
	if hi <= lo {
		return false
	}
	const phi = 0.6180339887498949
	orig := *x
	best := f()

	eval := func(v float64) float64 {
		*x = v
		return f()
	}
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := eval(c), eval(d)
	for i := 0; i < 60 && (b-a) > 1e-6; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = eval(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = eval(d)
		}
	}
	cand := (a + b) / 2
	if fCand := eval(cand); fCand < best {
		*x = cand
		return math.Abs(cand-orig) > 1e-9
	}
	*x = orig
	return false
}

var (
	fourLCOptOnce  sync.Once
	fourLCOptVal   Mapping
	threeLCOptOnce sync.Once
	threeLCOptVal  Mapping
)

// FourLCOpt returns 4LCo: the optimally mapped four-level cell with smart
// encoding (Section 5.1, Figure 6). The optimizer result is computed once
// and cached.
func FourLCOpt() Mapping {
	fourLCOptOnce.Do(func() {
		m := FourLCSmart()
		m.Name = "4LCo"
		fourLCOptVal = Optimize(m, DefaultOptimizeOptions())
		fourLCOptVal.Name = "4LCo"
	})
	return fourLCOptVal
}

// ThreeLCOpt returns 3LCo: the paper's proposed optimally mapped
// three-level cell (Section 5.2, Figure 7). Cached after first use.
func ThreeLCOpt() Mapping {
	threeLCOptOnce.Do(func() {
		m := ThreeLCNaive()
		m.Name = "3LCo"
		threeLCOptVal = Optimize(m, DefaultOptimizeOptions())
		threeLCOptVal.Name = "3LCo"
	})
	return threeLCOptVal
}

// All returns the five mappings of Figure 8 in presentation order.
func All() []Mapping {
	return []Mapping{FourLCNaive(), FourLCSmart(), FourLCOpt(), ThreeLCNaive(), ThreeLCOpt()}
}

// PDF evaluates the mixture probability density of written log10
// resistance under the mapping — the curves drawn in Figures 1, 6 and 7.
func (m Mapping) PDF(logR float64) float64 {
	sum := 0.0
	for i, spec := range m.Specs() {
		if m.Probs[i] == 0 {
			continue
		}
		tn := stats.TruncNorm{
			Mean: spec.Nominal, SD: spec.Sigma,
			Lo: spec.WriteLow(), Hi: spec.WriteHigh(),
		}
		sum += m.Probs[i] * tn.PDF(logR)
	}
	return sum
}
