package levels_test

import (
	"fmt"

	"repro/internal/levels"
)

// Compare per-period cell error rates of the naive four-level cell and
// the paper's proposed optimal three-level cell at the 17-minute refresh
// interval (Figure 8's central comparison).
func Example() {
	fourNaive := levels.FourLCNaive()
	threeOpt := levels.ThreeLCOpt()

	const interval = 17 * 60 // seconds
	fmt.Printf("4LCn CER at 17 min: %.1E\n", fourNaive.QuadCER(interval))
	fmt.Printf("3LCo CER at 17 min: %.1E\n", threeOpt.QuadCER(interval))
	fmt.Printf("3LCo thresholds: [%.2f %.2f]\n", threeOpt.Thresholds[0], threeOpt.Thresholds[1])
	// Output:
	// 4LCn CER at 17 min: 9.6E-03
	// 3LCo CER at 17 min: 8.6E-92
	// 3LCo thresholds: [3.50 5.53]
}
