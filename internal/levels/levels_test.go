package levels

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestPredefinedMappingsValidate(t *testing.T) {
	for _, m := range []Mapping{FourLCNaive(), FourLCSmart(), ThreeLCNaive(), Uniform(5), Uniform(6)} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestOptimizedMappingsValidate(t *testing.T) {
	for _, m := range []Mapping{FourLCOpt(), ThreeLCOpt()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadMappings(t *testing.T) {
	bad := FourLCNaive()
	bad.Thresholds[0] = 3.05 // inside S1's write window
	if bad.Validate() == nil {
		t.Error("threshold inside write window accepted")
	}
	bad = FourLCNaive()
	bad.Probs = []float64{0.5, 0.5, 0.5, 0.5}
	if bad.Validate() == nil {
		t.Error("non-normalized probabilities accepted")
	}
	bad = FourLCNaive()
	bad.Probs = bad.Probs[:3]
	if bad.Validate() == nil {
		t.Error("short probability slice accepted")
	}
}

func TestStateReadback(t *testing.T) {
	m := FourLCNaive()
	for i, nom := range m.Nominals {
		if got := m.State(nom); got != i {
			t.Errorf("State(%v) = %d, want %d", nom, got, i)
		}
	}
	if got := m.State(2.0); got != 0 {
		t.Errorf("State(2.0) = %d", got)
	}
	if got := m.State(9.0); got != 3 {
		t.Errorf("State(9.0) = %d", got)
	}
	// Threshold boundaries read as the upper state.
	if got := m.State(3.5); got != 1 {
		t.Errorf("State(3.5) = %d, want 1", got)
	}
}

func TestStateThreeLevel(t *testing.T) {
	m := ThreeLCNaive()
	cases := []struct {
		logR float64
		want int
	}{{3, 0}, {4, 1}, {5.0, 1}, {5.6, 2}, {6, 2}}
	for _, c := range cases {
		if got := m.State(c.logR); got != c.want {
			t.Errorf("State(%v) = %d, want %d", c.logR, got, c.want)
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	// Integrate piecewise over each state's truncation window so the
	// quadrature never straddles a density discontinuity.
	for _, m := range []Mapping{FourLCNaive(), FourLCSmart(), ThreeLCNaive()} {
		got := 0.0
		for _, spec := range m.Specs() {
			got += stats.GaussLegendrePanels(m.PDF, spec.WriteLow(), spec.WriteHigh(), 4)
		}
		if math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: pdf integrates to %v", m.Name, got)
		}
	}
}

func TestSpecsThresholdStructure(t *testing.T) {
	m := FourLCNaive()
	specs := m.Specs()
	if len(specs) != 4 {
		t.Fatalf("got %d specs", len(specs))
	}
	if !math.IsInf(specs[3].Upper, 1) {
		t.Error("top state has a finite threshold")
	}
	for i := 0; i < 3; i++ {
		if specs[i].Upper != m.Thresholds[i] {
			t.Errorf("spec %d upper %v != threshold %v", i, specs[i].Upper, m.Thresholds[i])
		}
		if specs[i].Switch != nil {
			t.Errorf("4LC spec %d unexpectedly has a rate switch", i)
		}
	}
}

func TestThreeLCSpecsHaveRateSwitch(t *testing.T) {
	specs := ThreeLCNaive().Specs()
	if specs[0].Switch != nil {
		t.Error("S1 should not cross the switch resistance before its threshold")
	}
	if specs[1].Switch == nil {
		t.Fatal("S2 must carry the drift-rate switch")
	}
	if specs[1].Switch.AtLogR != 4.5 {
		t.Errorf("switch at %v, want 4.5", specs[1].Switch.AtLogR)
	}
	if specs[1].Switch.Alpha.Mu != 0.06 {
		t.Errorf("switch alpha %v, want S3's 0.06", specs[1].Switch.Alpha.Mu)
	}
	if specs[2].Switch != nil {
		t.Error("top state should not have a switch")
	}
}

func TestSmartEncodingLowersCER(t *testing.T) {
	// Figure 8: 4LCs sits below 4LCn because the vulnerable states are
	// depopulated (15% instead of 25%).
	tRef := 17.0 * 60
	n := FourLCNaive().QuadCER(tRef)
	s := FourLCSmart().QuadCER(tRef)
	if s >= n {
		t.Fatalf("4LCs CER %v not below 4LCn %v", s, n)
	}
	ratio := n / s
	if ratio < 1.3 || ratio > 2.5 {
		t.Errorf("4LCs improvement ratio %v outside the expected 25/15 band", ratio)
	}
}

func TestOptimalFourLCShape(t *testing.T) {
	// Figure 6: nominals of S2 and S3 shift left; the S3/S4 threshold
	// shifts right, widening S3's drift margin.
	naive := FourLCNaive()
	opt := FourLCOpt()
	if opt.Nominals[1] >= naive.Nominals[1] {
		t.Errorf("µ2 did not shift left: %v", opt.Nominals[1])
	}
	if opt.Nominals[2] >= naive.Nominals[2] {
		t.Errorf("µ3 did not shift left: %v", opt.Nominals[2])
	}
	if opt.Thresholds[2] <= naive.Thresholds[2] {
		t.Errorf("τ3 did not shift right: %v", opt.Thresholds[2])
	}
	// S3's margin to τ3 must have widened significantly.
	naiveMargin := naive.Thresholds[2] - (naive.Nominals[2] + 2.75/6)
	optMargin := opt.Thresholds[2] - (opt.Nominals[2] + 2.75/6)
	if optMargin < 2*naiveMargin {
		t.Errorf("S3 margin %v not significantly wider than naive %v", optMargin, naiveMargin)
	}
}

func TestOptimalFourLCImprovesCER(t *testing.T) {
	// Section 5.3: 4LCo achieves roughly an order of magnitude lower CER
	// than 4LCn; at the 17-minute refresh interval it is around 1E-3.
	tRef := 17.0 * 60
	n := FourLCNaive().QuadCER(tRef)
	o := FourLCOpt().QuadCER(tRef)
	if o >= n/3 {
		t.Fatalf("4LCo CER %v not well below 4LCn %v", o, n)
	}
	if o < 5e-5 || o > 6e-3 {
		t.Errorf("4LCo CER(17 min) = %v, paper reports ~1E-3", o)
	}
}

func TestThreeLCOrdersOfMagnitudeBetter(t *testing.T) {
	// Figure 8: the 3LC designs sit orders of magnitude below every 4LC
	// design.
	tRef := 17.0 * 60
	fourBest := FourLCOpt().QuadCER(tRef)
	threeN := ThreeLCNaive().QuadCER(tRef)
	threeO := ThreeLCOpt().QuadCER(tRef)
	if threeN > fourBest/1e3 {
		t.Errorf("3LCn CER %v not ≥3 orders below 4LCo %v", threeN, fourBest)
	}
	if threeO > threeN+1e-18 {
		t.Errorf("3LCo CER %v above 3LCn %v", threeO, threeN)
	}
}

func TestThreeLCNaiveNegligibleUntilOneYear(t *testing.T) {
	// Section 5.3: "Even a simple mapping (3LCn) has negligible cell
	// error rate until one year."
	year := 365.25 * 86400.0
	if got := ThreeLCNaive().QuadCER(year); got > 1e-7 {
		t.Errorf("3LCn CER(1 yr) = %v, expected negligible", got)
	}
}

func TestThreeLCOptRetention(t *testing.T) {
	// Section 5.3: 3LCo's error-free period exceeds 16 years; at 68 years
	// the rate is about 1E-8, low enough for BCH-1.
	year := 365.25 * 86400.0
	m := ThreeLCOpt()
	if got := m.QuadCER(10 * year); got > 1e-9 {
		t.Errorf("3LCo CER(10 yr) = %v, want < 1e-9 (nonvolatility)", got)
	}
	if got := m.QuadCER(68 * year); got > 1e-5 {
		t.Errorf("3LCo CER(68 yr) = %v, want small (~1E-8 in the paper)", got)
	}
}

func TestOptimizePreservesEndpoints(t *testing.T) {
	for _, m := range []Mapping{FourLCOpt(), ThreeLCOpt()} {
		k := m.Levels()
		if m.Nominals[0] != 3 || m.Nominals[k-1] != 6 {
			t.Errorf("%s endpoints moved: %v", m.Name, m.Nominals)
		}
	}
}

func TestOptimizeImprovesUniformFive(t *testing.T) {
	m := Uniform(5)
	opt := DefaultOptimizeOptions()
	opt.Sweeps = 2
	o := Optimize(m, opt)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	objBefore := m.QuadCER(215) + 1e-6*m.QuadCER(opt.SecondaryTime)
	objAfter := o.QuadCER(215) + 1e-6*o.QuadCER(opt.SecondaryTime)
	if objAfter > objBefore {
		t.Errorf("optimizer worsened objective: %v -> %v", objBefore, objAfter)
	}
}

func TestBitsPerCellIdeal(t *testing.T) {
	if got := FourLCNaive().BitsPerCellIdeal(); got != 2 {
		t.Errorf("4LC bits/cell = %v", got)
	}
	got := ThreeLCNaive().BitsPerCellIdeal()
	if math.Abs(got-1.584962500721156) > 1e-12 {
		t.Errorf("3LC bits/cell = %v", got)
	}
}

func TestAllReturnsFigure8Order(t *testing.T) {
	names := []string{"4LCn", "4LCs", "4LCo", "3LCn", "3LCo"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d mappings", len(all))
	}
	for i, m := range all {
		if m.Name != names[i] {
			t.Errorf("All()[%d] = %s, want %s", i, m.Name, names[i])
		}
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(1) did not panic")
		}
	}()
	Uniform(1)
}

// Property: State is the inverse of writing at any accepted resistance,
// immediately after write (no drift yet).
func TestStateInverseProperty(t *testing.T) {
	m := FourLCNaive()
	f := func(stateRaw uint8, offRaw uint16) bool {
		s := int(stateRaw) % 4
		// offset within the ±2.75σ acceptance window
		off := (float64(offRaw)/65535*2 - 1) * 2.75 / 6
		x := m.Nominals[s] + off
		return m.State(x) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQuadCERFourLC(b *testing.B) {
	m := FourLCNaive()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.QuadCER(1020)
	}
	_ = sink
}

func BenchmarkQuadCERThreeLC(b *testing.B) {
	m := ThreeLCNaive()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.QuadCER(1e8)
	}
	_ = sink
}

func BenchmarkOptimizeThreeLC(b *testing.B) {
	opt := DefaultOptimizeOptions()
	opt.Sweeps = 1
	for i := 0; i < b.N; i++ {
		Optimize(ThreeLCNaive(), opt)
	}
}
