package levels

import "testing"

func TestTimeAwareImprovesNaive(t *testing.T) {
	m := FourLCNaive()
	for _, tt := range []float64{32, 1020, 32400} {
		naive := m.QuadCER(tt)
		aware := TimeAwareCER(m, tt)
		if aware >= naive/5 {
			t.Errorf("t=%v: time-aware %v not well below naive %v", tt, aware, naive)
		}
	}
}

func TestTimeAwareStillVolatile(t *testing.T) {
	// The paper's point: circuit-level mitigation is "limited" — it
	// cannot make a four-level cell nonvolatile. At one year the
	// compensated CER is still far above anything a practical ECC can
	// carry to the ten-year target.
	year := 365.25 * 86400.0
	if got := TimeAwareCER(FourLCNaive(), year); got < 1e-3 {
		t.Errorf("time-aware CER at 1 year = %v; expected still-volatile rates", got)
	}
	// And it remains orders of magnitude above the three-level designs.
	three := ThreeLCOpt().QuadCER(year)
	if TimeAwareCER(FourLCNaive(), year) < three*1e6 {
		t.Error("time-aware sensing approached 3LC retention; model implausible")
	}
}

func TestTimeAwareMonotoneInTime(t *testing.T) {
	m := FourLCNaive()
	prev := -1.0
	for _, tt := range []float64{2, 32, 1020, 32400, 1.0368e6, 3.15e7} {
		cur := TimeAwareCER(m, tt)
		if cur < prev {
			t.Fatalf("time-aware CER decreased at t=%v", tt)
		}
		prev = cur
	}
}

func TestTimeAwareEdgeCases(t *testing.T) {
	if got := TimeAwareCER(FourLCNaive(), 0.5); got != 0 {
		t.Errorf("CER before t0 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rate-switched mapping accepted")
		}
	}()
	TimeAwareCER(ThreeLCNaive(), 1020)
}

func TestTimeAwareDownwardTermActive(t *testing.T) {
	// Construct a mapping where the threshold's compensation (tracking a
	// fast lower state) overtakes a slow upper state: S3-regime below
	// (µα=0.06), S1-regime above (µα=0.001). The downward term must
	// dominate and grow with time.
	// Populate only the slow upper state: it has no upper threshold, so
	// without compensation its error rate is exactly zero — any nonzero
	// time-aware CER is the downward (overtaken-by-the-threshold) term.
	m := Mapping{
		Name:       "inverted",
		Nominals:   []float64{4.8, 5.8},
		Thresholds: []float64{5.3},
		Probs:      []float64{0, 1},
		AlphaIdx:   []int{2, 0}, // fast below, slow above
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if plain := m.QuadCER(3.15e7); plain != 0 {
		t.Fatalf("top state errs without compensation: %v", plain)
	}
	early := TimeAwareCER(m, 1020)
	late := TimeAwareCER(m, 3.15e7)
	if late <= early || late < 1e-3 {
		t.Fatalf("downward overtake not visible: early %v late %v", early, late)
	}
}
