package levels

import (
	"math"

	"repro/internal/drift"
	"repro/internal/stats"
)

// Time-aware sensing (Xu & Zhang, discussed in the paper's Section 3) is
// a circuit-level drift mitigation: the sense thresholds move up over
// time along the expected drift trajectory of the state below them, so a
// typically drifting cell stays inside its region. The paper notes such
// "complementary drift error reduction techniques show limited
// improvement"; this model quantifies that.
//
// Threshold τi between states i and i+1 is raised by µα(i)·log10(t/t0).
// Two error terms result:
//
//   - upward: state i still errs when its cell's exponent exceeds the
//     compensated slope, i.e. α > (τi − x)/L + µα(i);
//   - downward: state i+1 errs when its cell drifts *slower* than the
//     moving threshold, i.e. x + α·L < τi + µα(i)·L.
//
// The second term is why the technique cannot be pushed arbitrarily far:
// compensating for S3's mean drift eventually overtakes slow S4 cells.

// TimeAwareCER returns the probability-weighted cell error rate of the
// mapping at time t (seconds) under time-aware sensing. It applies to
// mappings without the 3LC rate switch (the compensation interacts with
// the piecewise regime; the technique targets four-level cells).
func TimeAwareCER(m Mapping, t float64) float64 {
	if m.RateSwitchAt > 0 {
		panic("levels: TimeAwareCER does not support rate-switched mappings")
	}
	if t <= drift.T0 {
		return 0
	}
	L := math.Log10(t / drift.T0)
	specs := m.Specs()
	total := 0.0
	for i := 0; i < m.Levels()-1; i++ {
		lower, upper := specs[i], specs[i+1]
		shift := lower.Alpha.Mu // threshold tracks the lower state's mean drift
		tau := m.Thresholds[i]

		// Upward term for state i.
		wrLo := stats.TruncNorm{Mean: lower.Nominal, SD: lower.Sigma,
			Lo: lower.WriteLow(), Hi: lower.WriteHigh()}
		up := stats.GaussLegendrePanels(func(x float64) float64 {
			need := (tau-x)/L + shift
			z := (need - lower.Alpha.Mu) / lower.Alpha.Sigma
			return wrLo.PDF(x) * stats.NormSF(z)
		}, wrLo.Lo, wrLo.Hi, 6)
		total += m.Probs[i] * up

		// Downward term for state i+1: the moving threshold overtakes a
		// slow cell.
		wrHi := stats.TruncNorm{Mean: upper.Nominal, SD: upper.Sigma,
			Lo: upper.WriteLow(), Hi: upper.WriteHigh()}
		down := stats.GaussLegendrePanels(func(x float64) float64 {
			// err iff α < shift − (x − τ)/L
			limit := shift - (x-tau)/L
			z := (limit - upper.Alpha.Mu) / upper.Alpha.Sigma
			return wrHi.PDF(x) * stats.NormCDF(z)
		}, wrHi.Lo, wrHi.Hi, 6)
		total += m.Probs[i+1] * down
	}
	if total < 0 {
		return 0
	}
	if total > 1 {
		return 1
	}
	return total
}
