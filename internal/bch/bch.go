// Package bch implements binary, systematic, shortened BCH codes — the
// transient-error-correcting codes (TEC) of the paper: BCH-1 for the
// proposed three-level-cell design (Section 6.3: a 708-bit message with
// 10 check bits over GF(2^10)) and BCH-10 for the optimized four-level
// baseline (Section 6.6: a 512-bit message with 100 check bits).
//
// Encoding is the classic systematic LFSR division by the generator
// polynomial. Decoding computes syndromes, runs the Berlekamp–Massey
// algorithm for the error-locator polynomial, and locates errors by Chien
// search. Up to t bit errors per codeword are corrected; more are
// reported (detection is probabilistic beyond the designed distance, as
// for any BCH code).
package bch

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/gf2"
)

// Code is a t-error-correcting shortened BCH code over GF(2^m) with a
// fixed message length in bits. Safe for concurrent use.
type Code struct {
	M       int // field degree; codeword length at most 2^m - 1
	T       int // designed correction capability in bits
	MsgBits int // message length (shortened)

	field  *gf2.Field
	gen    gf2.Poly
	parity int // generator degree = number of check bits
}

// New constructs BCH-t over GF(2^m) shortened to msgBits message bits.
func New(m, t, msgBits int) (*Code, error) {
	if t < 1 {
		return nil, fmt.Errorf("bch: t must be >= 1, got %d", t)
	}
	if msgBits < 1 {
		return nil, fmt.Errorf("bch: message length must be >= 1, got %d", msgBits)
	}
	field, err := gf2.NewField(m)
	if err != nil {
		return nil, err
	}
	// Generator = lcm of minimal polynomials of α^1..α^2t, i.e. the
	// product over distinct cyclotomic cosets.
	gen := gf2.PolyFromCoeffs(0) // 1
	seen := map[int]bool{}
	for i := 1; i <= 2*t; i++ {
		leader := cosetLeader(i, field.N)
		if seen[leader] {
			continue
		}
		seen[leader] = true
		gen = gen.Mul(field.MinPoly(i))
	}
	c := &Code{M: m, T: t, MsgBits: msgBits, field: field, gen: gen, parity: gen.Degree()}
	if msgBits+c.parity > field.N {
		return nil, fmt.Errorf("bch: message %d + parity %d exceeds code length %d",
			msgBits, c.parity, field.N)
	}
	return c, nil
}

// Must is New panicking on error, for statically valid parameters.
func Must(m, t, msgBits int) *Code {
	c, err := New(m, t, msgBits)
	if err != nil {
		panic(err)
	}
	return c
}

// cosetLeader returns the smallest element of the cyclotomic coset of i
// modulo n.
func cosetLeader(i, n int) int {
	min := i % n
	for j := (2 * i) % n; j != i%n; j = (2 * j) % n {
		if j < min {
			min = j
		}
	}
	return min
}

// ParityBits returns the number of check bits appended by Encode.
func (c *Code) ParityBits() int { return c.parity }

// CodewordBits returns the stored codeword length: message plus parity.
func (c *Code) CodewordBits() int { return c.MsgBits + c.parity }

// Encode computes the parity bits of msg. msg.Len() must equal MsgBits.
//
// Layout: the codeword polynomial is msg(x)·x^parity + rem(x), with
// message bit i the coefficient of x^(parity+i) and parity bit j the
// coefficient of x^j — the standard systematic form.
func (c *Code) Encode(msg bitvec.Vector) bitvec.Vector {
	if msg.Len() != c.MsgBits {
		panic(fmt.Sprintf("bch: message length %d, want %d", msg.Len(), c.MsgBits))
	}
	// LFSR division of msg(x)·x^parity by gen(x), processing message bits
	// from the highest coefficient down.
	rem := bitvec.New(c.parity)
	for i := c.MsgBits - 1; i >= 0; i-- {
		// feedback = incoming bit XOR current highest remainder bit
		fb := msg.Get(i) ^ rem.Get(c.parity-1)
		// shift remainder left by one
		for j := c.parity - 1; j > 0; j-- {
			rem.Set(j, rem.Get(j-1))
		}
		rem.Set(0, 0)
		if fb != 0 {
			// XOR the generator's lower coefficients (the x^parity term
			// is the implicit feedback).
			for j := 0; j < c.parity; j++ {
				if c.gen.Coeff(j) {
					rem.Flip(j)
				}
			}
		}
	}
	return rem
}

// DecodeResult reports what Decode did.
type DecodeResult struct {
	// Corrected is the number of bit errors corrected in place.
	Corrected int
	// OK is false when the syndrome was consistent with more than t
	// errors and nothing could be corrected reliably.
	OK bool
}

// Decode corrects up to T bit errors across msg and parity in place and
// reports the number corrected. When more than T errors are present the
// result has OK=false and the data is left unmodified (detection beyond
// the designed distance is best-effort, as with any bounded-distance
// decoder).
func (c *Code) Decode(msg, parity bitvec.Vector) DecodeResult {
	if msg.Len() != c.MsgBits || parity.Len() != c.parity {
		panic("bch: Decode length mismatch")
	}
	f := c.field

	// Syndromes S_j = r(α^j), j = 1..2t, where bit positions map to
	// polynomial degrees: parity bit j ↔ x^j, message bit i ↔ x^(parity+i).
	synd := make([]uint32, 2*c.T+1)
	anyNonzero := false
	eval := func(deg int) {
		for j := 1; j <= 2*c.T; j++ {
			synd[j] ^= f.Exp(j * deg)
		}
	}
	for i := parity.NextSet(0); i >= 0; i = parity.NextSet(i + 1) {
		eval(i)
	}
	for i := msg.NextSet(0); i >= 0; i = msg.NextSet(i + 1) {
		eval(c.parity + i)
	}
	for j := 1; j <= 2*c.T; j++ {
		if synd[j] != 0 {
			anyNonzero = true
			break
		}
	}
	if !anyNonzero {
		return DecodeResult{Corrected: 0, OK: true}
	}

	// Berlekamp–Massey: find the minimal LFSR (error locator σ) that
	// generates the syndrome sequence.
	sigma := c.berlekampMassey(synd)
	degSigma := len(sigma) - 1
	for degSigma > 0 && sigma[degSigma] == 0 {
		degSigma--
	}
	if degSigma == 0 || degSigma > c.T {
		return DecodeResult{Corrected: 0, OK: false}
	}

	// Chien search over the stored (shortened) positions: position p is
	// an error location iff σ(α^{-p}) = 0.
	n := c.CodewordBits()
	locations := make([]int, 0, degSigma)
	for p := 0; p < n; p++ {
		// Evaluate σ at α^{-p}.
		var v uint32
		for d := 0; d <= degSigma; d++ {
			if sigma[d] == 0 {
				continue
			}
			v ^= f.Mul(sigma[d], f.Exp(-p*d))
		}
		if v == 0 {
			locations = append(locations, p)
		}
	}
	if len(locations) != degSigma {
		// Locator does not split over the stored positions: either >t
		// errors, or errors in the virtual (shortened-away) region.
		return DecodeResult{Corrected: 0, OK: false}
	}
	for _, p := range locations {
		if p < c.parity {
			parity.Flip(p)
		} else {
			msg.Flip(p - c.parity)
		}
	}
	return DecodeResult{Corrected: len(locations), OK: true}
}

// berlekampMassey returns the error-locator polynomial σ (lowest degree
// first, σ[0] = 1) for the syndrome sequence synd[1..2t].
func (c *Code) berlekampMassey(synd []uint32) []uint32 {
	f := c.field
	twoT := 2 * c.T
	sigma := make([]uint32, twoT+1)
	prev := make([]uint32, twoT+1)
	sigma[0], prev[0] = 1, 1
	var l int      // current LFSR length
	mShift := 1    // steps since last length change
	b := uint32(1) // discrepancy at last length change

	for r := 1; r <= twoT; r++ {
		// Discrepancy d = S_r + Σ σ_i · S_{r-i}.
		d := synd[r]
		for i := 1; i <= l; i++ {
			if sigma[i] != 0 && r-i >= 1 {
				d ^= f.Mul(sigma[i], synd[r-i])
			}
		}
		if d == 0 {
			mShift++
			continue
		}
		// σ' = σ - (d/b)·x^mShift·prev
		next := make([]uint32, twoT+1)
		copy(next, sigma)
		coef := f.Div(d, b)
		for i := 0; i+mShift <= twoT; i++ {
			if prev[i] != 0 {
				next[i+mShift] ^= f.Mul(coef, prev[i])
			}
		}
		if 2*l <= r-1 {
			prev = sigma
			l = r - l
			b = d
			mShift = 1
		} else {
			mShift++
		}
		sigma = next
	}
	return sigma
}
