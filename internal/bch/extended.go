package bch

import "repro/internal/bitvec"

// Extended augments a Code with one overall even-parity bit over the
// whole codeword (message + BCH check bits), raising the guaranteed
// minimum distance from 2t+1 to 2t+2. The practical consequence — and
// the property the serving stack's integrity layer depends on — is that
// any error pattern of exactly t+1 bits is always DETECTED (Decode
// returns OK=false, data untouched) and never silently miscorrected,
// which a bounded-distance decoder over the bare code cannot promise:
// a t+1-bit pattern can land within distance t of a neighbouring
// codeword and be "corrected" into it.
//
// Layout: Encode returns ParityBits() = Code.ParityBits()+1 check bits;
// the first Code.ParityBits() are the systematic BCH remainder, the
// last is the even-parity bit over message and BCH check bits.
type Extended struct {
	code *Code
}

// NewExtended constructs the extended BCH-t code over GF(2^m) shortened
// to msgBits message bits.
func NewExtended(m, t, msgBits int) (*Extended, error) {
	c, err := New(m, t, msgBits)
	if err != nil {
		return nil, err
	}
	return &Extended{code: c}, nil
}

// MustExtended is NewExtended panicking on error, for statically valid
// parameters.
func MustExtended(m, t, msgBits int) *Extended {
	e, err := NewExtended(m, t, msgBits)
	if err != nil {
		panic(err)
	}
	return e
}

// Code returns the underlying bounded-distance code.
func (e *Extended) Code() *Code { return e.code }

// T returns the designed correction capability in bits.
func (e *Extended) T() int { return e.code.T }

// MsgBits returns the message length in bits.
func (e *Extended) MsgBits() int { return e.code.MsgBits }

// ParityBits returns the number of check bits appended by Encode: the
// BCH remainder plus the overall parity bit.
func (e *Extended) ParityBits() int { return e.code.ParityBits() + 1 }

// CodewordBits returns the stored extended codeword length.
func (e *Extended) CodewordBits() int { return e.code.MsgBits + e.ParityBits() }

// Encode computes the extended check bits of msg: the systematic BCH
// remainder followed by one even-parity bit over message and remainder.
func (e *Extended) Encode(msg bitvec.Vector) bitvec.Vector {
	rem := e.code.Encode(msg)
	out := bitvec.New(e.ParityBits())
	out.CopyFrom(rem, 0)
	out.Set(e.code.ParityBits(), uint(msg.OnesCount()+rem.OnesCount())&1)
	return out
}

// Decode corrects up to T bit errors across msg and the extended parity
// in place. Guarantees, counting errors over the whole extended
// codeword (message, BCH check bits, and the overall parity bit):
//
//   - at most T errors: corrected, OK=true;
//   - exactly T+1 errors: detected — OK=false and the data left
//     unmodified, never a silent miscorrection;
//   - beyond T+1: detection is best-effort, as for any code.
//
// The overall parity bit arbitrates the ambiguous boundary: a decode
// claiming exactly T corrections that leaves the overall parity
// inconsistent can only arise from ≥ T+1 real errors, so it is
// rejected and the corrections undone.
func (e *Extended) Decode(msg, parity bitvec.Vector) DecodeResult {
	pb := e.code.ParityBits()
	if msg.Len() != e.code.MsgBits || parity.Len() != pb+1 {
		panic("bch: Extended.Decode length mismatch")
	}
	bchPar := parity.Slice(0, pb)
	extBit := parity.Get(pb)

	msgOrig := msg.Clone()
	res := e.code.Decode(msg, bchPar)
	if !res.OK {
		return DecodeResult{Corrected: 0, OK: false}
	}
	even := uint(msg.OnesCount()+bchPar.OnesCount())&1 == extBit
	switch {
	case even:
		// Corrections (if any) are parity-consistent: commit them.
		parity.CopyFrom(bchPar, 0)
		return res
	case res.Corrected < e.code.T:
		// Fewer than T corrections plus one overall-parity error is
		// still within the T-error budget: the extra bit itself is
		// wrong. Commit and fix it.
		parity.CopyFrom(bchPar, 0)
		parity.Flip(pb)
		return DecodeResult{Corrected: res.Corrected + 1, OK: true}
	default:
		// Exactly T corrections with inconsistent overall parity: the
		// real error count is at least T+1 (a T+1-bit pattern that
		// fools the bounded-distance decoder always lands here, because
		// error plus miscorrection form a codeword of odd weight
		// ≥ 2T+1). Undo and report detection.
		msg.CopyFrom(msgOrig, 0)
		return DecodeResult{Corrected: 0, OK: false}
	}
}
