package bch

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// servePathCodes are the exact extended codes the pcmserve integrity
// layer stores in per-shard sideband: BCH-1 and BCH-10 over GF(2^10)
// shortened to one 64-byte (512-bit) block.
func servePathCodes(t *testing.T) map[string]*Extended {
	t.Helper()
	return map[string]*Extended{
		"BCH-1+p":  MustExtended(10, 1, 512),
		"BCH-10+p": MustExtended(10, 10, 512),
	}
}

// flipDistinct flips exactly k distinct bit positions across the
// extended codeword (message first, then parity) and returns the
// positions chosen.
func flipDistinct(r *rng.Rand, msg, parity bitvec.Vector, k int) []int {
	total := msg.Len() + parity.Len()
	chosen := map[int]bool{}
	out := make([]int, 0, k)
	for len(out) < k {
		p := r.Intn(total)
		if chosen[p] {
			continue
		}
		chosen[p] = true
		out = append(out, p)
		if p < msg.Len() {
			msg.Flip(p)
		} else {
			parity.Flip(p - msg.Len())
		}
	}
	return out
}

func TestExtendedParitySizes(t *testing.T) {
	codes := servePathCodes(t)
	if got := codes["BCH-1+p"].ParityBits(); got != 11 {
		t.Errorf("BCH-1+p parity = %d, want 11", got)
	}
	if got := codes["BCH-10+p"].ParityBits(); got != 101 {
		t.Errorf("BCH-10+p parity = %d, want 101", got)
	}
}

// TestExtendedCorrectsUpToT: any pattern of at most T errors — including
// patterns touching the BCH check bits and the overall parity bit — is
// corrected exactly.
func TestExtendedCorrectsUpToT(t *testing.T) {
	for name, code := range servePathCodes(t) {
		code := code
		t.Run(name, func(t *testing.T) {
			r := rng.New(0xEC0DE)
			trials := 150
			if code.T() > 1 {
				trials = 40 // decode is costlier at t=10
			}
			for trial := 0; trial < trials; trial++ {
				msg := randMsg(r, code.MsgBits())
				parity := code.Encode(msg)
				wantMsg, wantPar := msg.Clone(), parity.Clone()

				k := 1 + r.Intn(code.T())
				flipDistinct(r, msg, parity, k)
				res := code.Decode(msg, parity)
				if !res.OK {
					t.Fatalf("trial %d: %d ≤ t errors not corrected", trial, k)
				}
				if res.Corrected != k {
					t.Fatalf("trial %d: Corrected = %d, want %d", trial, res.Corrected, k)
				}
				if !msg.Equal(wantMsg) || !parity.Equal(wantPar) {
					t.Fatalf("trial %d: decode did not restore the codeword", trial)
				}
			}
		})
	}
}

// TestExtendedDetectsTPlusOne is the beyond-t contract the integrity
// layer relies on: EVERY pattern of exactly t+1 flipped bits must come
// back as a detection error with the data untouched. The bare
// bounded-distance code cannot promise this — a t+1 pattern can sit
// within distance t of a neighbouring codeword and be silently
// "corrected" into it — which is exactly what the overall parity bit
// forbids.
func TestExtendedDetectsTPlusOne(t *testing.T) {
	for name, code := range servePathCodes(t) {
		code := code
		t.Run(name, func(t *testing.T) {
			r := rng.New(0xDE7EC7)
			trials := 400
			if code.T() > 1 {
				trials = 60
			}
			for trial := 0; trial < trials; trial++ {
				msg := randMsg(r, code.MsgBits())
				parity := code.Encode(msg)

				corrupted := msg.Clone()
				corruptedPar := parity.Clone()
				flipDistinct(r, corrupted, corruptedPar, code.T()+1)
				before, beforePar := corrupted.Clone(), corruptedPar.Clone()

				res := code.Decode(corrupted, corruptedPar)
				if res.OK {
					t.Fatalf("trial %d: t+1 = %d flips silently decoded (Corrected=%d)",
						trial, code.T()+1, res.Corrected)
				}
				if !corrupted.Equal(before) || !corruptedPar.Equal(beforePar) {
					t.Fatalf("trial %d: failed decode modified the data", trial)
				}
			}
		})
	}
}

// TestExtendedBareCodeMiscorrects documents why the overall parity bit
// exists: over the bare BCH-1 code, t+1 = 2 flips can be silently
// miscorrected (the decoder reports success with the wrong data), so
// the serve path must not use the bare decoder.
func TestExtendedBareCodeMiscorrects(t *testing.T) {
	c, err := New(10, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	miscorrected := false
	for trial := 0; trial < 400 && !miscorrected; trial++ {
		msg := randMsg(r, c.MsgBits)
		parity := c.Encode(msg)
		want := msg.Clone()

		// Flip two distinct message bits.
		a := r.Intn(c.MsgBits)
		b := r.Intn(c.MsgBits)
		for b == a {
			b = r.Intn(c.MsgBits)
		}
		msg.Flip(a)
		msg.Flip(b)
		if res := c.Decode(msg, parity); res.OK && !msg.Equal(want) {
			miscorrected = true
		}
	}
	if !miscorrected {
		t.Skip("no bare-code miscorrection found in 400 trials (distance may exceed design); extended guarantee still holds")
	}
}

// TestExtendedZeroAndBoundary covers the degenerate patterns: no
// errors, a single error on the overall parity bit, and t errors plus
// the parity bit (t+1 total — must detect).
func TestExtendedZeroAndBoundary(t *testing.T) {
	for name, code := range servePathCodes(t) {
		code := code
		t.Run(name, func(t *testing.T) {
			r := rng.New(99)
			msg := randMsg(r, code.MsgBits())
			parity := code.Encode(msg)

			if res := code.Decode(msg.Clone(), parity.Clone()); !res.OK || res.Corrected != 0 {
				t.Fatalf("clean decode: %+v", res)
			}

			// Only the overall parity bit flipped: one error, corrected.
			m2, p2 := msg.Clone(), parity.Clone()
			p2.Flip(code.ParityBits() - 1)
			if res := code.Decode(m2, p2); !res.OK || res.Corrected != 1 {
				t.Fatalf("parity-bit-only error: %+v", res)
			}
			if !m2.Equal(msg) || !p2.Equal(parity) {
				t.Fatal("parity-bit-only error not restored")
			}

			// t message errors plus the overall parity bit: t+1 total.
			m3, p3 := msg.Clone(), parity.Clone()
			for i := 0; i < code.T(); i++ {
				m3.Flip(i * 7)
			}
			p3.Flip(code.ParityBits() - 1)
			if res := code.Decode(m3, p3); res.OK {
				t.Fatalf("t+parity-bit (t+1 total) errors decoded OK: %+v", res)
			}
		})
	}
}
