package bch

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// TestParameterGrid exercises the codec across field degrees and
// correction strengths well beyond the two paper design points: every
// (m, t, message-length) combination must round-trip cleanly and correct
// exactly-t random error patterns.
func TestParameterGrid(t *testing.T) {
	r := rng.New(31)
	type cfg struct{ m, t, msg int }
	grid := []cfg{
		{6, 1, 32}, {6, 2, 40},
		{7, 1, 64}, {7, 3, 80},
		{8, 2, 128}, {8, 4, 180},
		{9, 3, 256}, {9, 5, 400},
		{10, 1, 708}, {10, 6, 512}, {10, 10, 512}, {10, 12, 800},
		{11, 2, 1024},
	}
	for _, g := range grid {
		c, err := New(g.m, g.t, g.msg)
		if err != nil {
			t.Fatalf("New(%d,%d,%d): %v", g.m, g.t, g.msg, err)
		}
		if c.ParityBits() > g.m*g.t {
			t.Errorf("(%d,%d): parity %d exceeds m*t", g.m, g.t, c.ParityBits())
		}
		for trial := 0; trial < 4; trial++ {
			msg := bitvec.New(g.msg)
			for i := 0; i < g.msg; i++ {
				msg.Set(i, uint(r.Uint64())&1)
			}
			orig := msg.Clone()
			parity := c.Encode(msg)
			origParity := parity.Clone()

			flipped := map[int]bool{}
			for len(flipped) < g.t {
				p := r.Intn(c.CodewordBits())
				if flipped[p] {
					continue
				}
				flipped[p] = true
				if p < g.msg {
					msg.Flip(p)
				} else {
					parity.Flip(p - g.msg)
				}
			}
			res := c.Decode(msg, parity)
			if !res.OK || res.Corrected != g.t {
				t.Fatalf("(%d,%d,%d): decode %+v with %d errors", g.m, g.t, g.msg, res, g.t)
			}
			if !msg.Equal(orig) || !parity.Equal(origParity) {
				t.Fatalf("(%d,%d,%d): mis-corrected", g.m, g.t, g.msg)
			}
		}
	}
}

// TestBurstErrors checks contiguous error bursts up to t bits — the
// pattern a failing cell pair produces under the 2-bit TEC mapping.
func TestBurstErrors(t *testing.T) {
	c := Must(10, 4, 512)
	r := rng.New(33)
	for trial := 0; trial < 30; trial++ {
		msg := bitvec.New(512)
		for i := 0; i < 512; i++ {
			msg.Set(i, uint(r.Uint64())&1)
		}
		orig := msg.Clone()
		parity := c.Encode(msg)
		start := r.Intn(512 - 4)
		for k := 0; k < 4; k++ {
			msg.Flip(start + k)
		}
		res := c.Decode(msg, parity)
		if !res.OK || !msg.Equal(orig) {
			t.Fatalf("burst at %d not corrected: %+v", start, res)
		}
	}
}

// TestAllZeroAndAllOneMessages covers degenerate codewords.
func TestAllZeroAndAllOneMessages(t *testing.T) {
	c := Must(10, 3, 300)
	zero := bitvec.New(300)
	pZero := c.Encode(zero)
	if pZero.OnesCount() != 0 {
		t.Error("parity of the zero codeword must be zero (linearity)")
	}
	ones := bitvec.New(300)
	for i := 0; i < 300; i++ {
		ones.Set(i, 1)
	}
	parity := c.Encode(ones)
	ones.Flip(0)
	ones.Flip(299)
	res := c.Decode(ones, parity)
	if !res.OK || res.Corrected != 2 {
		t.Fatalf("all-ones correction: %+v", res)
	}
}
