package bch_test

import (
	"fmt"

	"repro/internal/bch"
	"repro/internal/bitvec"
)

// Build the paper's transient-error code for the 3LC design — BCH-1 over
// the 708-bit message of Section 6.3 — and correct a drift error.
func Example() {
	code := bch.Must(10, 1, 708)
	fmt.Println("check bits:", code.ParityBits())

	msg := bitvec.New(708)
	msg.Set(100, 1)
	msg.Set(505, 1)
	parity := code.Encode(msg)

	msg.Flip(303) // a drift error: one bit under the TEC mapping
	res := code.Decode(msg, parity)
	fmt.Println("corrected:", res.Corrected, "ok:", res.OK)
	fmt.Println("bit 303 restored:", msg.Get(303) == 0)
	// Output:
	// check bits: 10
	// corrected: 1 ok: true
	// bit 303 restored: true
}
