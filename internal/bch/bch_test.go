package bch

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// paperTEC1 is the 3LC design's transient-error code: BCH-1 over GF(2^10)
// on a 708-bit message (Section 6.3).
func paperTEC1(t *testing.T) *Code {
	t.Helper()
	c, err := New(10, 1, 708)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// paperTEC10 is the 4LCo design's code: BCH-10 over GF(2^10) on 512 bits.
func paperTEC10(t *testing.T) *Code {
	t.Helper()
	c, err := New(10, 10, 512)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randMsg(r *rng.Rand, n int) bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, uint(r.Uint64())&1)
	}
	return v
}

func TestPaperParitySizes(t *testing.T) {
	// Section 6.3: BCH-1 "requires additional 10 check bits over a 64B
	// block". Section 6.6: BCH-10 needs "100 check bits".
	if got := paperTEC1(t).ParityBits(); got != 10 {
		t.Errorf("BCH-1 parity = %d, want 10", got)
	}
	if got := paperTEC10(t).ParityBits(); got != 100 {
		t.Errorf("BCH-10 parity = %d, want 100", got)
	}
}

func TestNewRejectsBadParameters(t *testing.T) {
	if _, err := New(10, 0, 100); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(10, 1, 0); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := New(4, 2, 100); err == nil {
		t.Error("message longer than code accepted")
	}
	if _, err := New(40, 1, 10); err == nil {
		t.Error("unsupported field accepted")
	}
}

func TestCleanRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, c := range []*Code{paperTEC1(t), paperTEC10(t), Must(8, 3, 100)} {
		for trial := 0; trial < 20; trial++ {
			msg := randMsg(r, c.MsgBits)
			orig := msg.Clone()
			parity := c.Encode(msg)
			res := c.Decode(msg, parity)
			if !res.OK || res.Corrected != 0 {
				t.Fatalf("clean decode: %+v", res)
			}
			if !msg.Equal(orig) {
				t.Fatal("clean decode modified the message")
			}
		}
	}
}

func TestCorrectsUpToT(t *testing.T) {
	r := rng.New(2)
	for _, c := range []*Code{paperTEC1(t), paperTEC10(t), Must(9, 4, 300)} {
		for e := 1; e <= c.T; e++ {
			for trial := 0; trial < 10; trial++ {
				msg := randMsg(r, c.MsgBits)
				orig := msg.Clone()
				parity := c.Encode(msg)
				origParity := parity.Clone()

				flipped := map[int]bool{}
				total := c.CodewordBits()
				for len(flipped) < e {
					p := r.Intn(total)
					if flipped[p] {
						continue
					}
					flipped[p] = true
					if p < c.MsgBits {
						msg.Flip(p)
					} else {
						parity.Flip(p - c.MsgBits)
					}
				}
				res := c.Decode(msg, parity)
				if !res.OK {
					t.Fatalf("t=%d code failed on %d errors", c.T, e)
				}
				if res.Corrected != e {
					t.Fatalf("corrected %d, injected %d", res.Corrected, e)
				}
				if !msg.Equal(orig) || !parity.Equal(origParity) {
					t.Fatalf("t=%d code mis-corrected %d errors", c.T, e)
				}
			}
		}
	}
}

func TestBeyondTDetectedOrMiscorrected(t *testing.T) {
	// Beyond the designed distance a bounded-distance decoder either
	// reports failure or lands on a different codeword; it must never
	// panic, and must not claim to have corrected more than T errors.
	r := rng.New(3)
	c := paperTEC10(t)
	for trial := 0; trial < 20; trial++ {
		msg := randMsg(r, c.MsgBits)
		parity := c.Encode(msg)
		for i := 0; i < c.T+5; i++ {
			msg.Flip(r.Intn(c.MsgBits))
		}
		res := c.Decode(msg, parity)
		if res.OK && res.Corrected > c.T {
			t.Fatalf("claimed %d corrections with t=%d", res.Corrected, c.T)
		}
	}
}

func TestHammingDetectsDouble(t *testing.T) {
	// BCH-1 over GF(2^10) has designed distance 3; two errors produce a
	// nonzero syndrome, so decode must not return a clean result.
	r := rng.New(4)
	c := paperTEC1(t)
	for trial := 0; trial < 50; trial++ {
		msg := randMsg(r, c.MsgBits)
		parity := c.Encode(msg)
		a := r.Intn(c.MsgBits)
		b := a
		for b == a {
			b = r.Intn(c.MsgBits)
		}
		msg.Flip(a)
		msg.Flip(b)
		res := c.Decode(msg, parity)
		if res.OK && res.Corrected == 0 {
			t.Fatal("two errors decoded as clean")
		}
	}
}

func TestParityProtectsItself(t *testing.T) {
	// A drift error can land on a check cell; errors in the parity region
	// must be corrected too (the paper stores TEC check bits in SLC mode
	// to reduce their error rate, but the code still covers them).
	r := rng.New(5)
	c := paperTEC1(t)
	msg := randMsg(r, c.MsgBits)
	orig := msg.Clone()
	parity := c.Encode(msg)
	origParity := parity.Clone()
	parity.Flip(3)
	res := c.Decode(msg, parity)
	if !res.OK || res.Corrected != 1 {
		t.Fatalf("parity-bit error not corrected: %+v", res)
	}
	if !msg.Equal(orig) || !parity.Equal(origParity) {
		t.Fatal("state wrong after parity correction")
	}
}

func TestEncodeLengthPanics(t *testing.T) {
	c := paperTEC1(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Encode(bitvec.New(17))
}

func TestLinearity(t *testing.T) {
	// BCH codes are linear: parity(a XOR b) == parity(a) XOR parity(b).
	r := rng.New(6)
	c := Must(10, 3, 256)
	for trial := 0; trial < 10; trial++ {
		a := randMsg(r, c.MsgBits)
		b := randMsg(r, c.MsgBits)
		pa := c.Encode(a)
		pb := c.Encode(b)
		a.Xor(b)
		pab := c.Encode(a)
		pa.Xor(pb)
		if !pab.Equal(pa) {
			t.Fatal("code is not linear")
		}
	}
}

// Property: single-bit errors at arbitrary positions are always corrected
// by any of the paper's codes.
func TestSingleErrorProperty(t *testing.T) {
	c := Must(10, 1, 708)
	r := rng.New(7)
	f := func(posRaw uint16, seed uint64) bool {
		msg := randMsg(rng.New(seed), c.MsgBits)
		orig := msg.Clone()
		parity := c.Encode(msg)
		pos := int(posRaw) % c.CodewordBits()
		if pos < c.MsgBits {
			msg.Flip(pos)
		} else {
			parity.Flip(pos - c.MsgBits)
		}
		res := c.Decode(msg, parity)
		return res.OK && res.Corrected == 1 && msg.Equal(orig)
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeBCH1(b *testing.B) {
	c := Must(10, 1, 708)
	msg := randMsg(rng.New(1), 708)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(msg)
	}
}

func BenchmarkEncodeBCH10(b *testing.B) {
	c := Must(10, 10, 512)
	msg := randMsg(rng.New(1), 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(msg)
	}
}

func BenchmarkDecodeCleanBCH10(b *testing.B) {
	c := Must(10, 10, 512)
	msg := randMsg(rng.New(1), 512)
	parity := c.Encode(msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Decode(msg, parity)
	}
}

func BenchmarkDecodeWorstBCH10(b *testing.B) {
	c := Must(10, 10, 512)
	r := rng.New(1)
	msg := randMsg(r, 512)
	parity := c.Encode(msg)
	dirtyMsg := msg.Clone()
	for i := 0; i < 10; i++ {
		dirtyMsg.Flip(r.Intn(512))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := dirtyMsg.Clone()
		p := parity.Clone()
		c.Decode(m, p)
	}
}
