package bler_test

import (
	"fmt"
	"time"

	"repro/internal/bler"
)

// Reproduce Section 4's reliability arithmetic for the paper's 16 GB
// device.
func Example() {
	d := bler.PaperDevice()
	fmt.Printf("refresh pass: %.0f s\n", d.RefreshPassTime().Seconds())
	fmt.Printf("device availability @17min: %.0f%%\n", 100*d.DeviceAvailability(17*time.Minute))
	fmt.Printf("bank availability   @17min: %.0f%%\n", 100*d.BankAvailability(17*time.Minute))
	fmt.Printf("cumulative target BLER: %.2E\n", d.CumulativeTarget())
	fmt.Printf("BCH needed at CER 1E-3: %d\n",
		bler.RequiredBCH(306, 1e-3, d.PerPeriodTarget(17*time.Minute), 20))
	// Output:
	// refresh pass: 268 s
	// device availability @17min: 74%
	// bank availability   @17min: 97%
	// cumulative target BLER: 3.73E-09
	// BCH needed at CER 1E-3: 11
}
