package bler

import (
	"math"
	"testing"
	"time"
)

func TestPaperDeviceGeometry(t *testing.T) {
	d := PaperDevice()
	if d.Blocks() != 1<<28 {
		t.Fatalf("blocks = %d, want 2^28", d.Blocks())
	}
}

func TestRefreshPassTimes(t *testing.T) {
	d := PaperDevice()
	// Section 4.1: "refreshing a 16GB device takes around 268 s".
	pass := d.RefreshPassTime().Seconds()
	if pass < 260 || pass > 275 {
		t.Errorf("refresh pass = %v s, want ~268", pass)
	}
	// "refreshing a 16GB MLC-PCM takes around 410 s" at 40 MB/s.
	bw := d.BandwidthPassTime().Seconds()
	if bw < 400 || bw > 420 {
		t.Errorf("bandwidth-limited pass = %v s, want ~410", bw)
	}
}

func TestAvailabilityPaperAnchors(t *testing.T) {
	d := PaperDevice()
	interval := 17 * time.Minute
	// Section 4.1: "at a refresh interval of 17 minutes, the PCM device
	// is available only 74% of the time" and "bank availability can be as
	// high as 97% in an 8-bank PCM device".
	dev := d.DeviceAvailability(interval)
	if dev < 0.70 || dev > 0.78 {
		t.Errorf("device availability = %v, want ~0.74", dev)
	}
	bank := d.BankAvailability(interval)
	if bank < 0.955 || bank > 0.98 {
		t.Errorf("bank availability = %v, want ~0.97", bank)
	}
}

func TestAvailabilityMonotoneAndBounded(t *testing.T) {
	d := PaperDevice()
	prevD, prevB := -1.0, -1.0
	for _, min := range []int{1, 2, 4, 9, 17, 34, 68, 137} {
		iv := time.Duration(min) * time.Minute
		dev, bank := d.DeviceAvailability(iv), d.BankAvailability(iv)
		if dev < 0 || dev > 1 || bank < 0 || bank > 1 {
			t.Fatalf("availability out of range at %d min", min)
		}
		if dev < prevD || bank < prevB {
			t.Fatalf("availability not monotone at %d min", min)
		}
		if bank < dev {
			t.Fatalf("bank availability below device availability at %d min", min)
		}
		prevD, prevB = dev, bank
	}
	if d.DeviceAvailability(0) != 0 {
		t.Error("zero interval should be unavailable")
	}
	// Intervals shorter than a pass: zero, not negative.
	if d.DeviceAvailability(10*time.Second) != 0 {
		t.Error("sub-pass interval should clamp to zero")
	}
}

func TestRefreshWriteShare(t *testing.T) {
	d := PaperDevice()
	// 16 GB / 1020 s ≈ 16.8 MB/s of the 40 MB/s budget ≈ 42%.
	share := d.RefreshWriteShare(17 * time.Minute)
	if share < 0.38 || share > 0.46 {
		t.Errorf("refresh write share = %v, want ~0.42", share)
	}
	if d.RefreshWriteShare(time.Second) != 1 {
		t.Error("impossible interval should saturate at 1")
	}
}

func TestCumulativeTarget(t *testing.T) {
	// Section 4.2: "a target cumulative BLER of 3.73E-9".
	got := PaperDevice().CumulativeTarget()
	if math.Abs(got-3.725e-9)/3.725e-9 > 0.01 {
		t.Errorf("cumulative target = %v, want ~3.73E-9", got)
	}
}

func TestPerPeriodTargets(t *testing.T) {
	d := PaperDevice()
	// Nonvolatile (>10 yr): full cumulative target.
	if got := d.PerPeriodTarget(11 * 365 * 24 * time.Hour); got != d.CumulativeTarget() {
		t.Errorf("long-interval target = %v", got)
	}
	// 17-minute refresh: the paper quotes a 1.20E-14 BLER achieved by
	// BCH-10 sitting just under this line.
	got := d.PerPeriodTarget(17 * time.Minute)
	if got < 5e-15 || got > 5e-14 {
		t.Errorf("17-min per-period target = %v, want ~1.2E-14", got)
	}
	// One-year refresh: cumulative / 10.
	oneYear := d.PerPeriodTarget(365*24*time.Hour + 6*time.Hour)
	want := d.CumulativeTarget() / 10
	if math.Abs(oneYear-want)/want > 0.01 {
		t.Errorf("1-yr target = %v, want %v", oneYear, want)
	}
}

func TestBlockErrorPaperAnchor(t *testing.T) {
	// Section 5.3: at a CER "around 1E-3", BCH-10 keeps the BLER near
	// 1.20E-14, under the 17-minute target. The quoted figure corresponds
	// to an operating CER just below 1E-3 (at exactly 1E-3 the binomial
	// tail for a 306-cell codeword is ~3.5E-14); verify both the order of
	// magnitude at 1E-3 and that the target is met slightly below it.
	d := PaperDevice()
	target := d.PerPeriodTarget(17 * time.Minute)
	at1e3 := BlockError(306, 10, 1e-3)
	if at1e3 < 1e-15 || at1e3 > 1e-12 {
		t.Errorf("BLER(1e-3) = %v, expected ~1E-14 order", at1e3)
	}
	if atOp := BlockError(306, 10, 8.5e-4); atOp > target {
		t.Errorf("BCH-10 BLER %v at the operating CER exceeds the target %v", atOp, target)
	}
}

func TestBlockErrorNoECC(t *testing.T) {
	// Without ECC a 306-cell block at CER 1e-3 is almost surely corrupt
	// within a few thousand periods.
	if got := BlockError(306, 0, 1e-3); got < 0.2 {
		t.Errorf("no-ECC BLER = %v", got)
	}
}

func TestLogBlockErrorConsistency(t *testing.T) {
	for _, cer := range []float64{1e-5, 1e-3, 1e-2} {
		for _, tt := range []int{1, 4, 10} {
			p := BlockError(354, tt, cer)
			lp := LogBlockError(354, tt, cer)
			if p > 0 && math.Abs(math.Log(p)-lp) > 1e-9 {
				t.Errorf("log mismatch at cer=%v t=%d", cer, tt)
			}
		}
	}
	// Log form resolves rates that underflow the linear form.
	if lp := LogBlockError(354, 10, 1e-10); math.IsInf(lp, -1) || lp > -200 {
		t.Errorf("deep log BLER = %v", lp)
	}
}

func TestRequiredBCH(t *testing.T) {
	d := PaperDevice()
	// At the 4LCo operating point (CER ~1E-3, 17-minute target), a code
	// around BCH-10 is needed — not dramatically less.
	got := RequiredBCH(306, 1e-3, d.PerPeriodTarget(17*time.Minute), 20)
	if got < 8 || got > 12 {
		t.Errorf("required BCH at 1E-3 = %d, paper uses 10", got)
	}
	// At 3LCo's deep-retention CER (1E-8 at 68 years), BCH-1 suffices.
	got = RequiredBCH(354, 1e-8, d.CumulativeTarget(), 20)
	if got > 1 {
		t.Errorf("required BCH at 1E-8 = %d, paper uses 1", got)
	}
	// Impossible target.
	if got := RequiredBCH(306, 0.5, 1e-30, 4); got != -1 {
		t.Errorf("impossible target returned %d", got)
	}
}

func TestMTBF(t *testing.T) {
	d := PaperDevice()
	// At exactly the per-period target, the MTBF is ten years by
	// construction (one expected failure over the horizon).
	iv := 17 * time.Minute
	target := d.PerPeriodTarget(iv)
	mtbf := d.MTBF(target, iv)
	ratio := float64(mtbf) / float64(TenYears)
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("MTBF at target = %.3f of ten years", ratio)
	}
	if !d.MeetsGoal(target, iv) {
		t.Error("target BLER should exactly meet the goal")
	}
	if d.MeetsGoal(target*3, iv) {
		t.Error("3x the target should fail the goal")
	}
	// The 4LCo operating point from Section 5.3 meets the goal.
	if !d.MeetsGoal(BlockError(306, 10, 8.5e-4), iv) {
		t.Error("paper's BCH-10 operating point should meet the goal")
	}
	if d.MTBF(0, iv) <= TenYears {
		t.Error("zero BLER should give an effectively infinite MTBF")
	}
}

func TestRequiredBCHMonotoneInCER(t *testing.T) {
	d := PaperDevice()
	target := d.PerPeriodTarget(17 * time.Minute)
	prev := 0
	for _, cer := range []float64{1e-9, 1e-7, 1e-5, 1e-3} {
		got := RequiredBCH(306, cer, target, 30)
		if got < prev {
			t.Fatalf("required strength decreased at cer=%v", cer)
		}
		prev = got
	}
}
