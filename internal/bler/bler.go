// Package bler implements the paper's block-level reliability and refresh
// arithmetic (Section 4): block error rate as a function of cell error
// rate and ECC strength (Figure 5), the target-BLER lines derived from a
// one-bad-block-per-device-per-decade goal, refresh-bandwidth budgets
// (Section 4.1), and device/bank availability as a function of refresh
// interval (Figure 4).
package bler

import (
	"math"
	"time"

	"repro/internal/stats"
)

// Device describes the PCM device assumed throughout the paper's
// Section 4: 16 GB with 64-byte blocks, 8 banks, 1 µs block writes, and
// 40 MB/s sustained write throughput.
type Device struct {
	Bytes          int64
	BlockBytes     int
	Banks          int
	BlockWriteTime time.Duration
	WriteBandwidth float64 // bytes per second
}

// PaperDevice returns the paper's 16 GB configuration.
func PaperDevice() Device {
	return Device{
		Bytes:          16 << 30,
		BlockBytes:     64,
		Banks:          8,
		BlockWriteTime: time.Microsecond,
		WriteBandwidth: 40 << 20,
	}
}

// Blocks returns the number of blocks in the device (2^28 for the paper).
func (d Device) Blocks() int64 { return d.Bytes / int64(d.BlockBytes) }

// RefreshPassTime returns how long one full refresh pass takes when
// blocks are refreshed back to back, one at a time (≈268 s for the paper
// device).
func (d Device) RefreshPassTime() time.Duration {
	return time.Duration(d.Blocks()) * d.BlockWriteTime
}

// BandwidthPassTime returns the refresh-pass time implied by the write
// throughput limit (≈410 s at 40 MB/s), Section 4.1's tighter bound.
func (d Device) BandwidthPassTime() time.Duration {
	sec := float64(d.Bytes) / d.WriteBandwidth
	return time.Duration(sec * float64(time.Second))
}

// DeviceAvailability returns the fraction of time the device is usable
// when refresh blocks the whole device, one block at a time (Figure 4's
// lower curve). Intervals shorter than a pass give zero availability.
func (d Device) DeviceAvailability(interval time.Duration) float64 {
	if interval <= 0 {
		return 0
	}
	a := 1 - float64(d.RefreshPassTime())/float64(interval)
	if a < 0 {
		return 0
	}
	return a
}

// BankAvailability returns per-bank availability with independent
// per-bank refresh (Figure 4's upper curve): while one bank refreshes,
// the others serve requests.
func (d Device) BankAvailability(interval time.Duration) float64 {
	if interval <= 0 {
		return 0
	}
	perBank := time.Duration(d.Blocks()/int64(d.Banks)) * d.BlockWriteTime
	a := 1 - float64(perBank)/float64(interval)
	if a < 0 {
		return 0
	}
	return a
}

// RefreshWriteShare returns the fraction of the device's write bandwidth
// consumed by refreshing every block once per interval — the contention
// quantity behind Figure 16 (≈42% at the 17-minute interval).
func (d Device) RefreshWriteShare(interval time.Duration) float64 {
	if interval <= 0 {
		return 1
	}
	bytesPerSec := float64(d.Bytes) / interval.Seconds()
	share := bytesPerSec / d.WriteBandwidth
	if share > 1 {
		return 1
	}
	return share
}

// BlockError returns the per-refresh-period block error rate: the
// probability that more than t of the block's cells err when each errs
// independently with probability cer (Figure 5's solid curves).
func BlockError(cells, t int, cer float64) float64 {
	return stats.BinomialTail(cells, t, cer)
}

// LogBlockError is BlockError in log space, resolving rates that
// underflow float64 (Figure 5 plots down to 1E-14 and the quadrature CER
// goes far lower).
func LogBlockError(cells, t int, cer float64) float64 {
	return stats.LogBinomialTail(cells, t, cer)
}

// TenYears is the paper's reliability horizon.
const TenYears = 10 * 365.25 * 24 * time.Hour

// CumulativeTarget returns the ten-year cumulative BLER target: one
// erroneous block per device, i.e. BlockBytes/Bytes (3.73E-9 for the
// paper device).
func (d Device) CumulativeTarget() float64 {
	return float64(d.BlockBytes) / float64(d.Bytes)
}

// PerPeriodTarget returns the per-refresh-period BLER target for a given
// refresh interval: the cumulative target divided by the number of
// refresh events in ten years (Figure 5's dotted lines). Intervals at or
// beyond ten years get the full cumulative target.
func (d Device) PerPeriodTarget(interval time.Duration) float64 {
	if interval >= TenYears || interval <= 0 {
		return d.CumulativeTarget()
	}
	periods := float64(TenYears) / float64(interval)
	return d.CumulativeTarget() / periods
}

// RequiredBCH returns the smallest BCH correction strength t (searching
// up to maxT) for which the per-period block error rate at the given CER
// meets the target, or -1 if none does.
func RequiredBCH(cells int, cer, target float64, maxT int) int {
	logTarget := math.Log(target)
	for t := 0; t <= maxT; t++ {
		if LogBlockError(cells, t, cer) <= logTarget {
			return t
		}
	}
	return -1
}

// MTBF returns the device mean time between (block) failures implied by
// a per-refresh-period block error rate: with N blocks each failing
// independently with probability p per period of the given interval, the
// expected number of periods to the first failure is 1/(N·p). The paper's
// reliability goal (Section 4.2) is an MTBF above ten years.
func (d Device) MTBF(perPeriodBLER float64, interval time.Duration) time.Duration {
	if perPeriodBLER <= 0 {
		return time.Duration(math.MaxInt64)
	}
	expected := float64(interval) / (perPeriodBLER * float64(d.Blocks()))
	if expected > float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(expected)
}

// MeetsGoal reports whether a design point (block error rate per period
// at the given refresh interval) satisfies the ten-year MTBF goal.
func (d Device) MeetsGoal(perPeriodBLER float64, interval time.Duration) bool {
	return d.MTBF(perPeriodBLER, interval) >= TenYears
}
