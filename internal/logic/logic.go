// Package logic provides the gate-delay models behind the paper's
// latency claims: FO4 estimates for BCH encoding and decoding (Table 3,
// after Strukov's bit-parallel BCH decoder analysis) and for the OR-gate
// chains of the mark-and-spare corrector in ripple and parallel-prefix
// (Sklansky) form (Figure 13).
//
// All delays are in FO4 (fanout-of-4 inverter delays), the
// technology-neutral unit the paper reports. The decoder model is
// calibrated to the paper's two published points — 68 FO4 for BCH-1 and
// 569 FO4 for BCH-10 — through the per-iteration critical path of an
// inversionless Berlekamp–Massey implementation.
package logic

import (
	"fmt"
	"math"
)

// FO4PerXOR2 is the nominal delay of a 2-input XOR stage.
const FO4PerXOR2 = 1.8

// FO4PerOR2 is the nominal delay of a 2-input OR stage.
const FO4PerOR2 = 2.0

// bmIterFO4 is the critical path of one inversionless Berlekamp–Massey
// iteration (a GF(2^10) multiplier, an XOR accumulate, and a select),
// calibrated so the paper's published decode latencies are met exactly:
// decode(t) = bmBaseFO4 + 2t·bmIterFO4 with decode(1)=68, decode(10)=569.
const bmIterFO4 = (569.0 - 68.0) / (2 * 9) // ≈ 27.8 FO4

// bmBaseFO4 is the fixed decode cost: syndrome XOR trees and the Chien
// output stage.
const bmBaseFO4 = 68.0 - 2*bmIterFO4

// XorTreeFO4 returns the delay of a balanced XOR tree over n inputs.
func XorTreeFO4(n int) float64 {
	if n < 1 {
		panic("logic: XOR tree needs at least one input")
	}
	if n == 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n))) * FO4PerXOR2
}

// BCHEncodeFO4 returns the bit-parallel encoder latency for a codeword of
// the given length: each check bit is an XOR tree over (at most) the
// codeword bits. For both of the paper's codes (718- and 612-bit
// codewords) this evaluates to the published 18 FO4.
func BCHEncodeFO4(codewordBits int) float64 {
	return XorTreeFO4(codewordBits)
}

// BCHDecodeFO4 returns the bit-parallel decoder latency (syndromes,
// Berlekamp–Massey, Chien search and correction) for a t-error-correcting
// code. The 2t BM iterations dominate for large t, which is why the
// paper's BCH-1 decode is more than 8× faster than BCH-10's.
func BCHDecodeFO4(t int) float64 {
	if t < 1 {
		panic("logic: t must be >= 1")
	}
	return bmBaseFO4 + float64(2*t)*bmIterFO4
}

// ChainStyle selects the OR-gate chain implementation of Figure 13.
type ChainStyle int

const (
	// Ripple is Figure 13(a): a linear chain, O(n) delay.
	Ripple ChainStyle = iota
	// Sklansky is Figure 13(b): a parallel-prefix tree, O(log n) delay.
	Sklansky
)

// String implements fmt.Stringer.
func (s ChainStyle) String() string {
	switch s {
	case Ripple:
		return "ripple"
	case Sklansky:
		return "sklansky"
	}
	return fmt.Sprintf("ChainStyle(%d)", int(s))
}

// ORChainFO4 returns the delay of an n-input prefix OR chain (all prefix
// outputs valid) in the given style.
func ORChainFO4(n int, style ChainStyle) float64 {
	if n < 1 {
		panic("logic: OR chain needs at least one input")
	}
	if n == 1 {
		return 0
	}
	switch style {
	case Ripple:
		return float64(n-1) * FO4PerOR2
	case Sklansky:
		return math.Ceil(math.Log2(float64(n))) * FO4PerOR2
	}
	panic("logic: unknown chain style")
}

// ORChainGates returns the gate count of the chain, the area side of the
// prefix-network tradeoff (Sklansky trades gates for depth).
func ORChainGates(n int, style ChainStyle) int {
	if n < 1 {
		panic("logic: OR chain needs at least one input")
	}
	switch style {
	case Ripple:
		return n - 1
	case Sklansky:
		levels := int(math.Ceil(math.Log2(float64(n))))
		gates := 0
		for l := 0; l < levels; l++ {
			// Sklansky level l drives n - 2^l prefix outputs.
			gates += n - 1<<l
			if 1<<l >= n {
				break
			}
		}
		return gates
	}
	panic("logic: unknown chain style")
}

// FO4PerMux2 is the nominal delay of a 2:1 multiplexer stage.
const FO4PerMux2 = 1.5

// MarkAndSpareFO4 returns the read-side latency of an n-stage
// mark-and-spare corrector over `pairs` pair positions: each stage is a
// prefix OR chain over the INV flags feeding a MUX rank (Figure 12).
func MarkAndSpareFO4(pairs, stages int, style ChainStyle) float64 {
	if stages < 0 {
		panic("logic: negative stage count")
	}
	per := ORChainFO4(pairs, style) + FO4PerMux2
	return float64(stages) * per
}
