package logic

import (
	"math"
	"testing"
)

func TestPaperEncodeLatency(t *testing.T) {
	// Table 3: encode is 18 FO4 for both designs — the 718-bit BCH-1
	// codeword (708+10) and the 612-bit BCH-10 codeword (512+100).
	if got := BCHEncodeFO4(718); got != 18 {
		t.Errorf("BCH-1 encode = %v FO4, want 18", got)
	}
	if got := BCHEncodeFO4(612); got != 18 {
		t.Errorf("BCH-10 encode = %v FO4, want 18", got)
	}
}

func TestPaperDecodeLatency(t *testing.T) {
	// Table 3: decode is 68 FO4 (BCH-1) vs 569 FO4 (BCH-10); Section 6.6:
	// "BCH-1 is more than 8x faster than BCH-10".
	d1 := BCHDecodeFO4(1)
	d10 := BCHDecodeFO4(10)
	if math.Abs(d1-68) > 1e-9 {
		t.Errorf("BCH-1 decode = %v, want 68", d1)
	}
	if math.Abs(d10-569) > 1e-9 {
		t.Errorf("BCH-10 decode = %v, want 569", d10)
	}
	if d10/d1 < 8 {
		t.Errorf("speed ratio %v < 8", d10/d1)
	}
}

func TestDecodeMonotone(t *testing.T) {
	prev := 0.0
	for tt := 1; tt <= 32; tt++ {
		cur := BCHDecodeFO4(tt)
		if cur <= prev {
			t.Fatalf("decode latency not increasing at t=%d", tt)
		}
		prev = cur
	}
}

func TestXorTree(t *testing.T) {
	if XorTreeFO4(1) != 0 {
		t.Error("single input should be free")
	}
	if got := XorTreeFO4(2); got != FO4PerXOR2 {
		t.Errorf("two inputs = %v", got)
	}
	if got := XorTreeFO4(512); got != 9*FO4PerXOR2 {
		t.Errorf("512 inputs = %v", got)
	}
}

func TestORChainFigure13(t *testing.T) {
	// Figure 13: a 177-input chain (the paper's 64B mark-and-spare block)
	// drops from O(n) to O(log n).
	ripple := ORChainFO4(177, Ripple)
	skl := ORChainFO4(177, Sklansky)
	if ripple != 176*FO4PerOR2 {
		t.Errorf("ripple = %v", ripple)
	}
	if skl != 8*FO4PerOR2 {
		t.Errorf("sklansky = %v (want 8 levels)", skl)
	}
	if ripple/skl < 20 {
		t.Errorf("prefix speedup only %vx", ripple/skl)
	}
	// The 16-input example drawn in the figure: 4 levels.
	if got := ORChainFO4(16, Sklansky); got != 4*FO4PerOR2 {
		t.Errorf("16-input sklansky = %v", got)
	}
}

func TestORChainGates(t *testing.T) {
	// Ripple uses the fewest gates; Sklansky trades gates for depth.
	if got := ORChainGates(16, Ripple); got != 15 {
		t.Errorf("ripple gates = %d", got)
	}
	skl := ORChainGates(16, Sklansky)
	// Sklansky over 16 inputs: 8+12+14+15 = 49 gates.
	if skl != 49 {
		t.Errorf("sklansky gates = %d, want 49", skl)
	}
	if skl <= 15 {
		t.Error("sklansky should cost more gates than ripple")
	}
}

func TestORChainDegenerate(t *testing.T) {
	if ORChainFO4(1, Ripple) != 0 || ORChainFO4(1, Sklansky) != 0 {
		t.Error("single input should be free")
	}
	for name, fn := range map[string]func(){
		"zeroFO4":    func() { ORChainFO4(0, Ripple) },
		"zeroGates":  func() { ORChainGates(0, Sklansky) },
		"zeroXor":    func() { XorTreeFO4(0) },
		"zeroDecode": func() { BCHDecodeFO4(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMarkAndSpareLatency(t *testing.T) {
	// Six stages over 177 pairs: with Sklansky chains this stays well
	// under the BCH-10 decode latency, supporting the paper's low-read-
	// latency claim for the 3LC pipeline.
	total := MarkAndSpareFO4(177, 6, Sklansky)
	if total >= BCHDecodeFO4(10) {
		t.Errorf("mark-and-spare %v FO4 not below BCH-10 decode %v", total, BCHDecodeFO4(10))
	}
	if MarkAndSpareFO4(177, 0, Sklansky) != 0 {
		t.Error("zero stages should be free")
	}
}

func TestChainStyleString(t *testing.T) {
	if Ripple.String() != "ripple" || Sklansky.String() != "sklansky" {
		t.Error("style strings wrong")
	}
}
