// Package bitvec provides a compact, fixed-length bit vector used by the
// error-correcting-code layers: BCH message/parity words, Gray-coded cell
// payloads, and fault masks. Bits are indexed from 0; storage is packed
// 64 bits per word.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length sequence of bits. The zero value is an empty
// vector; use New for a sized one.
type Vector struct {
	w []uint64
	n int
}

// New returns an all-zero vector of n bits.
func New(n int) Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vector{w: make([]uint64, (n+63)/64), n: n}
}

// FromBytes builds a vector of n bits from packed little-endian bytes
// (bit i is byte i/8, bit i%8).
func FromBytes(b []byte, n int) Vector {
	if n > len(b)*8 {
		panic("bitvec: FromBytes length exceeds data")
	}
	v := New(n)
	for i := 0; i < n; i++ {
		if b[i/8]&(1<<(i%8)) != 0 {
			v.Set(i, 1)
		}
	}
	return v
}

// Bytes packs the vector into little-endian bytes (inverse of FromBytes).
func (v Vector) Bytes() []byte {
	out := make([]byte, (v.n+7)/8)
	for i := 0; i < v.n; i++ {
		if v.Get(i) != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// Len returns the number of bits.
func (v Vector) Len() int { return v.n }

// Get returns bit i as 0 or 1.
func (v Vector) Get(i int) uint {
	v.check(i)
	return uint(v.w[i>>6]>>(i&63)) & 1
}

// Set assigns bit i to the low bit of val.
func (v Vector) Set(i int, val uint) {
	v.check(i)
	mask := uint64(1) << (i & 63)
	if val&1 != 0 {
		v.w[i>>6] |= mask
	} else {
		v.w[i>>6] &^= mask
	}
}

// Flip inverts bit i.
func (v Vector) Flip(i int) {
	v.check(i)
	v.w[i>>6] ^= 1 << (i & 63)
}

// check panics on out-of-range access.
func (v Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	out := Vector{w: make([]uint64, len(v.w)), n: v.n}
	copy(out.w, v.w)
	return out
}

// Xor sets v ^= other. Lengths must match.
func (v Vector) Xor(other Vector) {
	if v.n != other.n {
		panic("bitvec: Xor length mismatch")
	}
	for i := range v.w {
		v.w[i] ^= other.w[i]
	}
}

// Equal reports whether two vectors have identical length and contents.
func (v Vector) Equal(other Vector) bool {
	if v.n != other.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != other.w[i] {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits.
func (v Vector) OnesCount() int {
	c := 0
	for _, w := range v.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (v Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	for i < v.n {
		word := v.w[i>>6] >> (i & 63)
		if word != 0 {
			j := i + bits.TrailingZeros64(word)
			if j >= v.n {
				return -1
			}
			return j
		}
		i = (i>>6 + 1) << 6
	}
	return -1
}

// Slice returns a copy of bits [from, to).
func (v Vector) Slice(from, to int) Vector {
	if from < 0 || to > v.n || from > to {
		panic("bitvec: bad slice bounds")
	}
	out := New(to - from)
	for i := from; i < to; i++ {
		out.Set(i-from, v.Get(i))
	}
	return out
}

// CopyFrom writes src into v starting at offset dst.
func (v Vector) CopyFrom(src Vector, dst int) {
	if dst < 0 || dst+src.n > v.n {
		panic("bitvec: CopyFrom out of range")
	}
	for i := 0; i < src.n; i++ {
		v.Set(dst+i, src.Get(i))
	}
}

// Uint returns bits [from, from+width) as an integer, bit from being the
// least significant. width must be <= 64.
func (v Vector) Uint(from, width int) uint64 {
	if width < 0 || width > 64 || from < 0 || from+width > v.n {
		panic("bitvec: bad Uint range")
	}
	var out uint64
	for i := 0; i < width; i++ {
		out |= uint64(v.Get(from+i)) << i
	}
	return out
}

// SetUint writes the low width bits of val at [from, from+width).
func (v Vector) SetUint(from, width int, val uint64) {
	if width < 0 || width > 64 || from < 0 || from+width > v.n {
		panic("bitvec: bad SetUint range")
	}
	for i := 0; i < width; i++ {
		v.Set(from+i, uint(val>>i)&1)
	}
}

// String renders the bits most-significant-last, for debugging.
func (v Vector) String() string {
	var sb strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Get(i) != 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
