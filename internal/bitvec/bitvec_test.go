package bitvec

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	v.Set(0, 1)
	v.Set(64, 1)
	v.Set(129, 1)
	for _, i := range []int{0, 64, 129} {
		if v.Get(i) != 1 {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.OnesCount() != 3 {
		t.Errorf("OnesCount = %d", v.OnesCount())
	}
	v.Flip(64)
	if v.Get(64) != 0 || v.OnesCount() != 2 {
		t.Error("Flip failed")
	}
	v.Set(0, 0)
	if v.Get(0) != 0 {
		t.Error("clear failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for name, fn := range map[string]func(){
		"get":  func() { v.Get(10) },
		"set":  func() { v.Set(-1, 1) },
		"flip": func() { v.Flip(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 512, 708} {
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, uint(r.Uint64())&1)
		}
		got := FromBytes(v.Bytes(), n)
		if !got.Equal(v) {
			t.Errorf("n=%d: bytes round trip failed", n)
		}
	}
}

func TestXorEqualClone(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(3, 1)
	b.Set(3, 1)
	b.Set(99, 1)
	c := a.Clone()
	a.Xor(b)
	if a.Get(3) != 0 || a.Get(99) != 1 {
		t.Error("Xor wrong")
	}
	if !c.Equal(c.Clone()) || c.Equal(a) {
		t.Error("Equal/Clone wrong")
	}
	a.Xor(b) // undo
	if !a.Equal(c) {
		t.Error("double xor is not identity")
	}
}

func TestXorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(10).Xor(New(11))
}

func TestNextSet(t *testing.T) {
	v := New(200)
	for _, i := range []int{5, 63, 64, 130, 199} {
		v.Set(i, 1)
	}
	want := []int{5, 63, 64, 130, 199}
	got := []int{}
	for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if v.NextSet(200) != -1 {
		t.Error("NextSet past end should be -1")
	}
	if New(10).NextSet(0) != -1 {
		t.Error("NextSet on empty should be -1")
	}
}

func TestSliceCopyFrom(t *testing.T) {
	v := New(64)
	for i := 10; i < 20; i++ {
		v.Set(i, 1)
	}
	s := v.Slice(10, 20)
	if s.Len() != 10 || s.OnesCount() != 10 {
		t.Fatalf("Slice wrong: %v", s)
	}
	w := New(30)
	w.CopyFrom(s, 5)
	for i := 0; i < 30; i++ {
		want := uint(0)
		if i >= 5 && i < 15 {
			want = 1
		}
		if w.Get(i) != want {
			t.Fatalf("CopyFrom bit %d = %d", i, w.Get(i))
		}
	}
}

func TestUintRoundTrip(t *testing.T) {
	v := New(100)
	v.SetUint(17, 13, 0x1abc)
	if got := v.Uint(17, 13); got != 0x1abc&0x1fff {
		t.Fatalf("Uint = %#x", got)
	}
	v.SetUint(36, 64, 0xdeadbeefcafe1234)
	if got := v.Uint(36, 64); got != 0xdeadbeefcafe1234 {
		t.Fatalf("Uint64 = %#x", got)
	}
}

func TestString(t *testing.T) {
	v := New(4)
	v.Set(1, 1)
	v.Set(3, 1)
	if got := v.String(); got != "0101" {
		t.Fatalf("String = %q", got)
	}
}

func TestUintProperty(t *testing.T) {
	f := func(val uint64, fromRaw, widthRaw uint8) bool {
		width := int(widthRaw%65)
		from := int(fromRaw % 64)
		v := New(from + width + 1)
		masked := val
		if width < 64 {
			masked &= (1 << width) - 1
		}
		v.SetUint(from, width, val)
		return v.Uint(from, width) == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOnesCount(b *testing.B) {
	v := New(708)
	for i := 0; i < 708; i += 3 {
		v.Set(i, 1)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink += v.OnesCount()
	}
	_ = sink
}
