package progverify

import (
	"math"
	"testing"

	"repro/internal/drift"
	"repro/internal/levels"
	"repro/internal/rng"
)

// window returns a state's acceptance window under a mapping.
func window(m levels.Mapping, state int) (lo, hi float64) {
	spec := m.Specs()[state]
	return spec.WriteLow(), spec.WriteHigh()
}

func TestProgramLandsInWindow(t *testing.T) {
	p := Default()
	r := rng.New(1)
	m := levels.FourLCNaive()
	for state := 0; state < 4; state++ {
		lo, hi := window(m, state)
		for i := 0; i < 2000; i++ {
			o := p.Program(r, lo, hi)
			if !o.OK {
				t.Fatalf("state %d: programming failed (pulses %d)", state, o.Pulses)
			}
			if o.LogR < lo || o.LogR > hi {
				t.Fatalf("state %d: landed at %v outside [%v, %v]", state, o.LogR, lo, hi)
			}
		}
	}
}

func TestExtremeStatesAreCheap(t *testing.T) {
	// S1 and S4 take ~1 pulse; intermediates take several — the origin
	// of the MLC write-latency penalty.
	p := Default()
	m := levels.FourLCNaive()
	var cost [4]CostStats
	for state := 0; state < 4; state++ {
		lo, hi := window(m, state)
		cost[state] = p.Measure(lo, hi, 5000, 42)
	}
	if cost[0].MeanPulses > 1.1 || cost[3].MeanPulses > 1.1 {
		t.Errorf("extreme states not single-pulse: S1 %.2f, S4 %.2f",
			cost[0].MeanPulses, cost[3].MeanPulses)
	}
	for _, mid := range []int{1, 2} {
		if cost[mid].MeanPulses < 2 {
			t.Errorf("intermediate state %d suspiciously cheap: %.2f pulses", mid, cost[mid].MeanPulses)
		}
		if cost[mid].MeanPulses < 1.5*cost[0].MeanPulses {
			t.Errorf("intermediate state %d not clearly dearer than extremes", mid)
		}
	}
	// S2, farther from the RESET level, needs the longer staircase.
	if cost[1].MeanPulses <= cost[2].MeanPulses {
		t.Errorf("S2 (%.2f) should cost more pulses than S3 (%.2f)",
			cost[1].MeanPulses, cost[2].MeanPulses)
	}
	// The paper's latency anchors: SLC-like extreme writes ~100 ns, MLC
	// intermediate writes approaching ~1 µs.
	if l := LatencyNs(cost[1].MeanPulses); l < 300 || l > 2000 {
		t.Errorf("S2 write latency %v ns; expect several hundred ns to ~1 us", l)
	}
}

func TestRelaxedWindowCutsWriteCost(t *testing.T) {
	// Section 6.7: Bandwidth-Enhanced 3LC relaxes writes to S2 to improve
	// write latency and bandwidth. Doubling the S2 acceptance window must
	// reduce mean pulse count.
	p := Default()
	m := levels.ThreeLCNaive()
	lo, hi := window(m, 1)
	tight := p.Measure(lo, hi, 5000, 7)
	mid := (lo + hi) / 2
	halfWidth := (hi - lo)
	relaxed := p.Measure(mid-halfWidth, mid+halfWidth, 5000, 7)
	if relaxed.MeanPulses >= tight.MeanPulses {
		t.Fatalf("relaxed window not cheaper: %.2f vs %.2f pulses",
			relaxed.MeanPulses, tight.MeanPulses)
	}
}

func TestDeliveredDistributionMatchesAbstraction(t *testing.T) {
	// The rest of the repo assumes write-and-verify delivers resistances
	// inside ±2.75σ of nominal. The mechanism must deliver exactly that
	// support, with most mass near the window (no systematic pile-up at
	// a single edge beyond ~3x imbalance).
	p := Default()
	r := rng.New(9)
	m := levels.FourLCNaive()
	lo, hi := window(m, 2) // S3
	nLow, nHigh := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		o := p.Program(r, lo, hi)
		if !o.OK {
			t.Fatal("programming failed")
		}
		mid := (lo + hi) / 2
		if o.LogR < mid {
			nLow++
		} else {
			nHigh++
		}
	}
	ratio := float64(nHigh) / float64(nLow)
	if ratio > 3 || ratio < 1.0/3 {
		t.Errorf("delivered distribution heavily lopsided: high/low = %v", ratio)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	p := Default()
	a := p.Measure(3.8, 4.2, 2000, 5)
	b := p.Measure(3.8, 4.2, 2000, 5)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestFinerStaircaseAfterOvershoot(t *testing.T) {
	// A very narrow window forces overshoots and resets; with a generous
	// pulse budget the programmer must still converge essentially always,
	// and the cost must reflect the precision demanded.
	p := Default()
	p.MaxPulses = 512
	narrowLo, narrowHi := 4.49, 4.51
	st := p.Measure(narrowLo, narrowHi, 2000, 11)
	if st.FailRate > 0.01 {
		t.Fatalf("fail rate %v on a narrow window", st.FailRate)
	}
	if st.MeanPulses < 6 {
		t.Fatalf("narrow window suspiciously cheap: %.2f pulses", st.MeanPulses)
	}
}

func TestProgramPanicsOnEmptyWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Default().Program(rng.New(1), 4.2, 4.2)
}

func TestWriteWindowConstantConsistency(t *testing.T) {
	// The acceptance windows used above are the drift model's ±2.75σ.
	m := levels.FourLCNaive()
	lo, hi := window(m, 1)
	wantHalf := drift.WriteWindow * drift.SigmaLogR
	if math.Abs((hi-lo)/2-wantHalf) > 1e-12 {
		t.Fatalf("window half-width %v != %v", (hi-lo)/2, wantHalf)
	}
}

func BenchmarkProgramIntermediate(b *testing.B) {
	p := Default()
	r := rng.New(1)
	m := levels.FourLCNaive()
	lo, hi := window(m, 1)
	for i := 0; i < b.N; i++ {
		p.Program(r, lo, hi)
	}
}
