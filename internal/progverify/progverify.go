// Package progverify models iterative program-and-verify, the write
// mechanism MLC-PCM actually uses (Section 2.2, after Nirschl et al.'s
// write strategies): a RESET pulse melts the cell to the amorphous
// (highest-resistance) state, then a staircase of partial-SET pulses
// crystallizes it step by step, sensing after each pulse, until the
// resistance lands inside the target acceptance window. Overshooting the
// window forces a fresh RESET and a finer staircase.
//
// The rest of the repository abstracts this loop as a truncated-Gaussian
// draw (the distribution the loop delivers); this package provides the
// loop itself so that
//
//   - the acceptance-window abstraction can be validated against the
//     mechanism, and
//   - per-state write cost (pulse counts → latency, energy, wear) can be
//     measured, reproducing why MLC writes take ~1 µs versus ~100 ns for
//     SLC, and why Seong et al.'s Bandwidth-Enhanced 3LC relaxes the S2
//     window to buy write bandwidth (Section 6.7).
package progverify

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Programmer holds the pulse-staircase parameters.
type Programmer struct {
	// ResetLogR is the log-resistance reached by a RESET pulse (the
	// amorphous state); the paper's S4 nominal is 6.
	ResetLogR float64
	// ResetSigma is the spread of the RESET level.
	ResetSigma float64
	// SetLogR is the log-resistance of a full SET (crystalline) pulse.
	SetLogR float64
	// SetSigma is the spread of the full-SET level.
	SetSigma float64
	// StepMean is the initial partial-SET step size in log-decades per
	// pulse; each pulse reduces resistance by a noisy step.
	StepMean float64
	// StepRelSigma is the multiplicative step noise (relative).
	StepRelSigma float64
	// MaxPulses bounds one write attempt (including RESETs).
	MaxPulses int
}

// Default returns parameters tuned so that intermediate-state writes
// take on the order of ten pulses — the regime in which a ~100 ns pulse
// train reaches the paper's ~1 µs MLC write latency.
func Default() Programmer {
	return Programmer{
		ResetLogR:    6.0,
		ResetSigma:   1.0 / 6,
		SetLogR:      3.0,
		SetSigma:     1.0 / 6,
		StepMean:     0.35,
		StepRelSigma: 0.3,
		MaxPulses:    64,
	}
}

// Outcome reports one programming operation.
type Outcome struct {
	LogR   float64 // final log-resistance
	Pulses int     // total pulses applied (RESET and partial-SET)
	Resets int     // RESET pulses beyond the first
	OK     bool    // landed inside the window within MaxPulses
}

// Program drives the cell into the acceptance window [lo, hi] in
// log-resistance. Extreme states short-circuit: a window containing the
// RESET level is reached with a single RESET pulse; one containing the
// full-SET level with a single SET pulse (retried on the Gaussian tail
// miss), which is why S1 and S4 writes are cheap.
func (p Programmer) Program(r *rng.Rand, lo, hi float64) Outcome {
	if lo >= hi {
		panic(fmt.Sprintf("progverify: empty window [%v, %v]", lo, hi))
	}
	pulses := 0

	// Single-pulse fast paths for the extreme states.
	if p.ResetLogR >= lo && p.ResetLogR <= hi {
		for pulses < p.MaxPulses {
			pulses++
			x := r.Normal(p.ResetLogR, p.ResetSigma)
			if x >= lo && x <= hi {
				return Outcome{LogR: x, Pulses: pulses, OK: true}
			}
		}
		return Outcome{Pulses: pulses}
	}
	if p.SetLogR >= lo && p.SetLogR <= hi {
		for pulses < p.MaxPulses {
			pulses++
			x := r.Normal(p.SetLogR, p.SetSigma)
			if x >= lo && x <= hi {
				return Outcome{LogR: x, Pulses: pulses, OK: true}
			}
		}
		return Outcome{Pulses: pulses}
	}

	// Intermediate state: RESET then staircase down.
	resets := 0
	step := p.StepMean
	x := r.Normal(p.ResetLogR, p.ResetSigma)
	pulses++
	for pulses < p.MaxPulses {
		if x >= lo && x <= hi {
			return Outcome{LogR: x, Pulses: pulses, Resets: resets, OK: true}
		}
		if x < lo {
			// Overshot past the window: re-amorphize and try again with
			// a finer staircase.
			resets++
			step = math.Max(step*0.5, (hi-lo)/4)
			x = r.Normal(p.ResetLogR, p.ResetSigma)
			pulses++
			continue
		}
		// Partial SET: crystallize a bit more. Within reach of the
		// window, aim the pulse at the window centre (a trim pulse);
		// farther out, take a full staircase step. Aiming before the
		// window's near edge comes within one step keeps the delivered
		// distribution centred rather than piled at the first-entry edge.
		s := step
		if x-hi < 2*step {
			s = x - (lo+hi)/2
		}
		x -= s * (1 + p.StepRelSigma*r.Norm())
		pulses++
	}
	return Outcome{LogR: x, Pulses: pulses, Resets: resets}
}

// CostStats summarizes programming cost over samples.
type CostStats struct {
	MeanPulses float64
	P99Pulses  int
	FailRate   float64
}

// Measure programs the window `samples` times and aggregates pulse
// counts. Deterministic for a given seed.
func (p Programmer) Measure(lo, hi float64, samples int, seed uint64) CostStats {
	if samples <= 0 {
		panic("progverify: non-positive sample count")
	}
	r := rng.New(seed)
	counts := make([]int, 0, samples)
	fails := 0
	sum := 0
	for i := 0; i < samples; i++ {
		o := p.Program(r, lo, hi)
		if !o.OK {
			fails++
			continue
		}
		counts = append(counts, o.Pulses)
		sum += o.Pulses
	}
	st := CostStats{FailRate: float64(fails) / float64(samples)}
	if len(counts) > 0 {
		st.MeanPulses = float64(sum) / float64(len(counts))
		// p99 by counting (pulse counts are small integers).
		hist := map[int]int{}
		maxC := 0
		for _, c := range counts {
			hist[c]++
			if c > maxC {
				maxC = c
			}
		}
		need := int(math.Ceil(0.99 * float64(len(counts))))
		acc := 0
		for c := 1; c <= maxC; c++ {
			acc += hist[c]
			if acc >= need {
				st.P99Pulses = c
				break
			}
		}
	}
	return st
}

// PulseNs is a nominal per-pulse duration: a SET-class pulse of ~100 ns
// (Section 4.1 quotes ~100 ns SLC writes and ~1 µs MLC writes).
const PulseNs = 100

// LatencyNs converts a pulse count to nanoseconds.
func LatencyNs(pulses float64) float64 { return pulses * PulseNs }
