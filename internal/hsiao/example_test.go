package hsiao_test

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/hsiao"
)

// SEC-DED in action: one error corrected, two errors detected — never
// miscorrected, unlike a bounded-distance BCH-1.
func Example() {
	code := hsiao.Must(64)
	data := bitvec.New(64)
	data.Set(7, 1)
	parity := code.Encode(data)

	single := data.Clone()
	single.Flip(20)
	res := code.Decode(single, parity.Clone())
	fmt.Printf("single: corrected=%d ok=%v\n", res.Corrected, res.OK)

	double := data.Clone()
	double.Flip(20)
	double.Flip(41)
	res = code.Decode(double, parity.Clone())
	fmt.Printf("double: detected=%v ok=%v\n", res.DoubleError, res.OK)
	// Output:
	// single: corrected=1 ok=true
	// double: detected=true ok=false
}
