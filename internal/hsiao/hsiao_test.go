package hsiao

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/bch"
	"repro/internal/bitvec"
	"repro/internal/rng"
)

// paperCode is the SEC-DED code for the 3LC design's 708-bit TEC message.
func paperCode(t *testing.T) *Code {
	t.Helper()
	c, err := New(708)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randData(r *rng.Rand, n int) bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, uint(r.Uint64())&1)
	}
	return v
}

func TestCheckBitCount(t *testing.T) {
	// 708 data bits need 11 check bits (the 10-bit odd-column pool holds
	// only 502 columns) — one more cell than BCH-1, the DED premium.
	if got := paperCode(t).CheckBits; got != 11 {
		t.Fatalf("check bits = %d, want 11", got)
	}
	if got := Must(57).CheckBits; got != 7 {
		t.Fatalf("57-bit code check bits = %d, want 7", got)
	}
}

func TestColumnInvariants(t *testing.T) {
	c := paperCode(t)
	seen := map[uint32]bool{}
	for i, col := range c.cols {
		if bits.OnesCount32(col)%2 == 0 || bits.OnesCount32(col) < 3 {
			t.Fatalf("column %d = %011b has invalid weight", i, col)
		}
		if seen[col] {
			t.Fatalf("duplicate column %011b", col)
		}
		seen[col] = true
	}
}

func TestCleanRoundTrip(t *testing.T) {
	c := paperCode(t)
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		data := randData(r, c.DataBits)
		orig := data.Clone()
		parity := c.Encode(data)
		res := c.Decode(data, parity)
		if !res.OK || res.Corrected != 0 || !data.Equal(orig) {
			t.Fatalf("clean decode: %+v", res)
		}
	}
}

func TestEverySingleErrorCorrected(t *testing.T) {
	c := Must(100)
	r := rng.New(2)
	data := randData(r, 100)
	orig := data.Clone()
	parity := c.Encode(data)
	origParity := parity.Clone()
	for pos := 0; pos < 100+c.CheckBits; pos++ {
		d, p := orig.Clone(), origParity.Clone()
		if pos < 100 {
			d.Flip(pos)
		} else {
			p.Flip(pos - 100)
		}
		res := c.Decode(d, p)
		if !res.OK || res.Corrected != 1 || !d.Equal(orig) || !p.Equal(origParity) {
			t.Fatalf("single error at %d not corrected: %+v", pos, res)
		}
	}
}

func TestEveryDoubleErrorDetectedNeverMiscorrected(t *testing.T) {
	// The SEC-DED guarantee, checked exhaustively on a small code and by
	// sampling on the paper-size one.
	c := Must(40)
	r := rng.New(3)
	data := randData(r, 40)
	parity := c.Encode(data)
	total := 40 + c.CheckBits
	for a := 0; a < total; a++ {
		for b := a + 1; b < total; b++ {
			d, p := data.Clone(), parity.Clone()
			flip := func(pos int) {
				if pos < 40 {
					d.Flip(pos)
				} else {
					p.Flip(pos - 40)
				}
			}
			flip(a)
			flip(b)
			res := c.Decode(d, p)
			if !res.DoubleError || res.OK || res.Corrected != 0 {
				t.Fatalf("double error (%d,%d) not cleanly detected: %+v", a, b, res)
			}
		}
	}
}

func TestPaperSizeDoubleDetectionSampled(t *testing.T) {
	c := paperCode(t)
	r := rng.New(4)
	data := randData(r, c.DataBits)
	parity := c.Encode(data)
	for trial := 0; trial < 3000; trial++ {
		d, p := data.Clone(), parity.Clone()
		a := r.Intn(c.DataBits)
		b := a
		for b == a {
			b = r.Intn(c.DataBits)
		}
		d.Flip(a)
		d.Flip(b)
		if res := c.Decode(d, p); !res.DoubleError {
			t.Fatalf("double error (%d,%d) missed: %+v", a, b, res)
		}
	}
}

func TestHsiaoVsBCH1OnDoubleErrors(t *testing.T) {
	// Quantify the integrity gap the package comment claims: feed the
	// same double errors to the shortened BCH-1 and count miscorrections
	// (decode "succeeds" and flips a third bit). Hsiao must be at zero.
	code := bch.Must(10, 1, 708)
	r := rng.New(5)
	miscorrected := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		msg := randData(r, 708)
		parity := code.Encode(msg)
		a := r.Intn(708)
		b := a
		for b == a {
			b = r.Intn(708)
		}
		msg.Flip(a)
		msg.Flip(b)
		if res := code.Decode(msg, parity); res.OK {
			miscorrected++
		}
	}
	if miscorrected == 0 {
		t.Fatal("BCH-1 never miscorrected doubles; the comparison is vacuous")
	}
	t.Logf("BCH-1 miscorrected %d/%d double errors; Hsiao: 0 by construction", miscorrected, trials)
}

func TestTripleErrorsNeverPanic(t *testing.T) {
	c := Must(64)
	r := rng.New(6)
	for trial := 0; trial < 2000; trial++ {
		data := randData(r, 64)
		parity := c.Encode(data)
		for k := 0; k < 3; k++ {
			data.Flip(r.Intn(64))
		}
		res := c.Decode(data, parity)
		// A triple error has an odd syndrome: it is either flagged (no
		// matching column) or miscorrected into a single flip — both
		// must be reported consistently, never as a crash.
		if res.DoubleError && res.OK {
			t.Fatal("inconsistent result")
		}
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero-size code accepted")
	}
	if _, err := New(1 << 23); err == nil {
		t.Error("absurd size accepted")
	}
}

func TestEncodeProperty(t *testing.T) {
	// Linearity: parity(a^b) == parity(a)^parity(b).
	c := Must(96)
	f := func(seedA, seedB uint64) bool {
		a := randData(rng.New(seedA), 96)
		b := randData(rng.New(seedB), 96)
		pa, pb := c.Encode(a), c.Encode(b)
		a.Xor(b)
		pab := c.Encode(a)
		pa.Xor(pb)
		return pab.Equal(pa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	c := Must(708)
	data := randData(rng.New(1), 708)
	parity := c.Encode(data)
	data.Flip(300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := data.Clone()
		p := parity.Clone()
		c.Decode(d, p)
	}
}
