// Package hsiao implements Hsiao's odd-weight-column single-error-
// correcting, double-error-detecting (SEC-DED) code — the alternative the
// paper names for the 3LC transient-error code ("BCH-1 (or equivalently,
// a Hamming or a Hsiao code)", Section 6.3).
//
// The practical difference from a shortened BCH-1 matters for integrity:
// a bounded-distance BCH-1 decoder fed a double error usually
// *miscorrects* (any nonzero syndrome matching a valid locator flips some
// third bit), while Hsiao's construction — every column of H has odd
// weight — makes every double error produce an even-weight syndrome,
// which is detected and never "corrected". The price is one extra check
// bit on the paper's 708-bit message (11 vs 10).
package hsiao

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
)

// Code is a SEC-DED code over a fixed data length.
type Code struct {
	DataBits  int
	CheckBits int
	// cols[i] is the H-matrix column (syndrome pattern) of data bit i;
	// check bit j's column is the unit vector 1<<j.
	cols []uint32
	// colIndex maps a syndrome back to the data bit it identifies.
	colIndex map[uint32]int
}

// New constructs the code for the given data length, choosing the
// minimal check-bit count whose odd-weight (≥3) column pool covers the
// data bits, and assigning lightest columns first (Hsiao's minimum-
// total-weight heuristic, which minimizes encoder/decoder XOR fan-in).
func New(dataBits int) (*Code, error) {
	if dataBits < 1 {
		return nil, fmt.Errorf("hsiao: need at least one data bit")
	}
	for r := 4; r <= 24; r++ {
		pool := oddColumns(r)
		if len(pool) < dataBits {
			continue
		}
		c := &Code{
			DataBits:  dataBits,
			CheckBits: r,
			cols:      pool[:dataBits],
			colIndex:  make(map[uint32]int, dataBits),
		}
		for i, col := range c.cols {
			c.colIndex[col] = i
		}
		return c, nil
	}
	return nil, fmt.Errorf("hsiao: data length %d too large", dataBits)
}

// Must is New panicking on error.
func Must(dataBits int) *Code {
	c, err := New(dataBits)
	if err != nil {
		panic(err)
	}
	return c
}

// oddColumns enumerates r-bit patterns of odd weight >= 3 in increasing
// weight (then numeric) order.
func oddColumns(r int) []uint32 {
	var out []uint32
	for w := 3; w <= r; w += 2 {
		for v := uint32(1); v < 1<<uint(r); v++ {
			if bits.OnesCount32(v) == w {
				out = append(out, v)
			}
		}
	}
	return out
}

// Encode returns the check bits of data.
func (c *Code) Encode(data bitvec.Vector) bitvec.Vector {
	if data.Len() != c.DataBits {
		panic(fmt.Sprintf("hsiao: data length %d, want %d", data.Len(), c.DataBits))
	}
	var syn uint32
	for i := data.NextSet(0); i >= 0; i = data.NextSet(i + 1) {
		syn ^= c.cols[i]
	}
	parity := bitvec.New(c.CheckBits)
	for j := 0; j < c.CheckBits; j++ {
		parity.Set(j, uint(syn>>uint(j))&1)
	}
	return parity
}

// Result reports a decode outcome.
type Result struct {
	// Corrected is 1 when a single error was fixed in place.
	Corrected int
	// DoubleError is true when an (uncorrectable) even-weight syndrome
	// was seen — a guaranteed detection for any two-bit error.
	DoubleError bool
	// OK is false when the word is known corrupt (double error or an
	// odd syndrome matching no column, i.e. >= 3 errors).
	OK bool
}

// Decode checks and corrects data+parity in place.
func (c *Code) Decode(data, parity bitvec.Vector) Result {
	if data.Len() != c.DataBits || parity.Len() != c.CheckBits {
		panic("hsiao: decode length mismatch")
	}
	var syn uint32
	for i := data.NextSet(0); i >= 0; i = data.NextSet(i + 1) {
		syn ^= c.cols[i]
	}
	for j := 0; j < c.CheckBits; j++ {
		if parity.Get(j) != 0 {
			syn ^= 1 << uint(j)
		}
	}
	switch {
	case syn == 0:
		return Result{OK: true}
	case bits.OnesCount32(syn)%2 == 0:
		return Result{DoubleError: true}
	case bits.OnesCount32(syn) == 1:
		// A check-bit error.
		parity.Flip(bits.TrailingZeros32(syn))
		return Result{Corrected: 1, OK: true}
	default:
		if i, ok := c.colIndex[syn]; ok {
			data.Flip(i)
			return Result{Corrected: 1, OK: true}
		}
		// Odd syndrome matching no column: at least three errors.
		return Result{}
	}
}
