// Package perm implements the permutation-coding baseline the paper
// compares against (Section 3 and Table 3, after Mittelholzer et al.):
// 11 bits are stored in 7 memory cells by programming the cells to seven
// distinct resistance levels in a data-dependent order. Because decoding
// sorts the sensed resistances and recovers only their relative order,
// the code tolerates drift until drift reorders two cells — giving cell
// error rates around 1E-5 out to tens of days, at 11/7 ≈ 1.57 bits per
// cell before wearout/ECC overheads.
package perm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/drift"
	"repro/internal/rng"
)

// Cells is the permutation group size.
const Cells = 7

// Bits is the information stored per group: 2^11 = 2048 <= 7! = 5040.
const Bits = 11

// GroupsFor returns the number of 7-cell groups needed for dataBits bits
// (47 groups = 329 cells for a 64-byte block, as in Table 3).
func GroupsFor(dataBits int) int { return (dataBits + Bits - 1) / Bits }

// CellsFor returns the total cell count for dataBits bits.
func CellsFor(dataBits int) int { return Cells * GroupsFor(dataBits) }

// factorials[i] = i!.
var factorials = func() [Cells + 1]int {
	var f [Cells + 1]int
	f[0] = 1
	for i := 1; i <= Cells; i++ {
		f[i] = f[i-1] * i
	}
	return f
}()

// Encode maps an 11-bit value to an *even* permutation: element i of the
// result is the resistance rank (0 = lowest) assigned to cell i. The
// value fills the first five Lehmer digits (mixed radix 7·6·5·4·3 = 2520
// ≥ 2^11); the sixth digit is chosen to make the permutation even.
//
// Restricting the codebook to even permutations gives the code distance
// against drift: any single transposition — in particular the adjacent-
// rank swap that a drifting cell causes — flips permutation parity and
// thus always leaves the codebook, where RepairDecode can fix it. This
// realizes the patent's "find the most likely basic pattern" decode step
// with a concrete minimum-distance construction.
func Encode(val uint16) [Cells]int {
	if int(val) >= 1<<Bits {
		panic(fmt.Sprintf("perm: value %d exceeds %d bits", val, Bits))
	}
	v := int(val)
	var digits [Cells]int
	// Mixed-radix digits d0..d4 with radices 7,6,5,4,3.
	radix := [5]int{7, 6, 5, 4, 3}
	for i := 4; i >= 0; i-- {
		digits[i] = v % radix[i]
		v /= radix[i]
	}
	// Permutation parity is the Lehmer digit sum mod 2; pick d5 ∈ {0,1}
	// to make it even. d6 is always 0.
	sum := digits[0] + digits[1] + digits[2] + digits[3] + digits[4]
	digits[5] = sum & 1
	// Select from the remaining ranks.
	remaining := []int{0, 1, 2, 3, 4, 5, 6}
	var out [Cells]int
	for i, d := range digits {
		out[i] = remaining[d]
		remaining = append(remaining[:d], remaining[d+1:]...)
	}
	return out
}

// Decode inverts Encode. ok is false when the input is not a permutation,
// is odd (a single transposition away from any codeword), or indexes
// beyond the 11-bit range.
func Decode(p [Cells]int) (uint16, bool) {
	var seen [Cells]bool
	for _, r := range p {
		if r < 0 || r >= Cells || seen[r] {
			return 0, false
		}
		seen[r] = true
	}
	// Recover Lehmer digits.
	var digits [Cells]int
	for i := 0; i < Cells; i++ {
		smaller := 0
		for j := i + 1; j < Cells; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		digits[i] = smaller
	}
	sum := digits[0] + digits[1] + digits[2] + digits[3] + digits[4]
	if digits[5] != sum&1 || digits[6] != 0 {
		return 0, false // odd permutation or out-of-codebook tail
	}
	radix := [5]int{7, 6, 5, 4, 3}
	v := 0
	for i := 0; i < 5; i++ {
		v = v*radix[i] + digits[i]
	}
	if v >= 1<<Bits {
		return 0, false
	}
	return uint16(v), true
}

// LevelLogR returns the nominal log10 resistance of rank r: seven levels
// evenly spaced over the same [10^3, 10^6] Ω range used by the level-
// based designs.
func LevelLogR(r int) float64 {
	if r < 0 || r >= Cells {
		panic("perm: rank out of range")
	}
	return 3 + 3*float64(r)/float64(Cells-1)
}

// RankOrder recovers the permutation from sensed log-resistances by
// sorting — the analog decode step. Ties (measure zero) break by index.
func RankOrder(logR [Cells]float64) [Cells]int {
	idx := [Cells]int{0, 1, 2, 3, 4, 5, 6}
	sort.SliceStable(idx[:], func(a, b int) bool { return logR[idx[a]] < logR[idx[b]] })
	var ranks [Cells]int
	for rank, cell := range idx {
		ranks[cell] = rank
	}
	return ranks
}

// sigmaPerm is the written log-resistance spread for permutation-coded
// cells. Packing seven levels into the 3-decade range leaves 0.5 decades
// between levels; rank-order coding requires write-and-verify to place
// every cell strictly in rank order, so the programming spread must be
// tight enough that the ±2.75σ acceptance windows of adjacent ranks do
// not overlap: 2·2.75σ < 0.5 ⇒ σ < 0.0909. We use 0.08, which leaves a
// 0.06-decade guard between adjacent windows at write time — drift, not
// write noise, then sets the error rate, as in the patent's analysis.
const sigmaPerm = 0.08

// RepairDecode implements the patent's "most likely basic pattern" step:
// if the sensed rank order is not in the 11-bit codebook, it tries the
// six adjacent-rank transpositions (the overwhelmingly most likely drift
// reordering) and picks the decodable candidate whose swapped cells are
// closest in sensed log-resistance. It returns the decoded value and
// whether decoding (possibly after repair) succeeded.
func RepairDecode(logR [Cells]float64) (uint16, bool) {
	p := RankOrder(logR)
	if v, ok := Decode(p); ok {
		return v, true
	}
	bestGap := math.Inf(1)
	var bestVal uint16
	found := false
	for r := 0; r < Cells-1; r++ {
		// Locate the cells holding ranks r and r+1 and swap them.
		var lo, hi int
		for c, rank := range p {
			if rank == r {
				lo = c
			}
			if rank == r+1 {
				hi = c
			}
		}
		q := p
		q[lo], q[hi] = q[hi], q[lo]
		if v, ok := Decode(q); ok {
			gap := math.Abs(logR[lo] - logR[hi])
			if gap < bestGap {
				bestGap, bestVal, found = gap, v, true
			}
		}
	}
	return bestVal, found
}

// GroupErrorMC estimates, by Monte Carlo over groups, the probability
// that drift reorders at least two cells of a group by time t (seconds),
// i.e. the group decodes to the wrong 11-bit value. Each cell drifts with
// the Table 1 exponent of its resistance regime.
//
// Note on calibration: without the repair step, Table 1's drift
// variability (σα = 0.4·µα) reorders adjacent same-regime ranks often
// (~3E-2 per group at 37 days). With GroupErrorRepairedMC's
// single-transposition repair the group error at 37 days drops to
// ~3.5E-4 (per-cell ~5E-5), the same order as the patent's quoted 1E-5 —
// see EXPERIMENTS.md.
func GroupErrorMC(t float64, samples int, seed uint64) float64 {
	r := rng.New(seed)
	errors := 0
	for s := 0; s < samples; s++ {
		val := uint16(r.Intn(1 << Bits))
		p := Encode(val)
		var logR [Cells]float64
		for cell, rank := range p {
			nominal := LevelLogR(rank)
			x := r.TruncNorm(nominal, sigmaPerm,
				nominal-drift.WriteWindow*sigmaPerm, nominal+drift.WriteWindow*sigmaPerm)
			ap := drift.AlphaForLevel(nominal)
			alpha := r.Normal(ap.Mu, ap.Sigma)
			if alpha < 0 {
				alpha = 0
			}
			logR[cell] = x
			if t > drift.T0 {
				logR[cell] = x + alpha*math.Log10(t/drift.T0)
			}
		}
		got := RankOrder(logR)
		if got != p {
			errors++
		}
	}
	return float64(errors) / float64(samples)
}

// GroupErrorRepairedMC is GroupErrorMC with the RepairDecode step applied,
// measuring the benefit of the patent's maximum-likelihood pattern repair.
func GroupErrorRepairedMC(t float64, samples int, seed uint64) float64 {
	r := rng.New(seed)
	errors := 0
	for s := 0; s < samples; s++ {
		val := uint16(r.Intn(1 << Bits))
		p := Encode(val)
		var logR [Cells]float64
		for cell, rank := range p {
			nominal := LevelLogR(rank)
			x := r.TruncNorm(nominal, sigmaPerm,
				nominal-drift.WriteWindow*sigmaPerm, nominal+drift.WriteWindow*sigmaPerm)
			ap := drift.AlphaForLevel(nominal)
			alpha := r.Normal(ap.Mu, ap.Sigma)
			if alpha < 0 {
				alpha = 0
			}
			logR[cell] = x
			if t > drift.T0 {
				logR[cell] = x + alpha*math.Log10(t/drift.T0)
			}
		}
		got, ok := RepairDecode(logR)
		if !ok || got != val {
			errors++
		}
	}
	return float64(errors) / float64(samples)
}

// CellErrorFromGroupError converts a group error rate to an equivalent
// per-cell error rate for comparison with level-based designs (a wrong
// group corrupts all 11 bits; we report the conservative per-cell figure
// the paper uses: group errors spread over the group's cells).
func CellErrorFromGroupError(groupErr float64) float64 {
	return groupErr / Cells
}
