package perm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeProducesPermutation(t *testing.T) {
	for val := uint16(0); val < 1<<Bits; val += 13 {
		p := Encode(val)
		var seen [Cells]bool
		for _, r := range p {
			if r < 0 || r >= Cells || seen[r] {
				t.Fatalf("Encode(%d) = %v is not a permutation", val, p)
			}
			seen[r] = true
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for val := 0; val < 1<<Bits; val++ {
		got, ok := Decode(Encode(uint16(val)))
		if !ok || got != uint16(val) {
			t.Fatalf("round trip of %d gave %d (ok=%v)", val, got, ok)
		}
	}
}

func TestEncodeInjective(t *testing.T) {
	seen := map[[Cells]int]uint16{}
	for val := 0; val < 1<<Bits; val++ {
		p := Encode(uint16(val))
		if prev, dup := seen[p]; dup {
			t.Fatalf("values %d and %d share permutation %v", prev, val, p)
		}
		seen[p] = uint16(val)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, ok := Decode([Cells]int{0, 0, 1, 2, 3, 4, 5}); ok {
		t.Error("duplicate rank accepted")
	}
	if _, ok := Decode([Cells]int{0, 1, 2, 3, 4, 5, 9}); ok {
		t.Error("out-of-range rank accepted")
	}
	// The reversed permutation has 21 inversions (odd): outside the
	// even-permutation codebook.
	if _, ok := Decode([Cells]int{6, 5, 4, 3, 2, 1, 0}); ok {
		t.Error("odd permutation accepted")
	}
	// Every single transposition of a codeword must leave the codebook —
	// the distance property RepairDecode relies on.
	p := Encode(1234)
	for i := 0; i < Cells; i++ {
		for j := i + 1; j < Cells; j++ {
			q := p
			q[i], q[j] = q[j], q[i]
			if _, ok := Decode(q); ok {
				t.Fatalf("transposition (%d,%d) stayed in codebook", i, j)
			}
		}
	}
}

func TestEncodePanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Encode(1 << Bits)
}

func TestGeometryMatchesTable3(t *testing.T) {
	// Table 3: a 64-byte block under permutation coding uses 329 cells.
	if got := CellsFor(512); got != 329 {
		t.Fatalf("cells for 512 bits = %d, want 329", got)
	}
	if got := GroupsFor(512); got != 47 {
		t.Fatalf("groups = %d, want 47", got)
	}
	bitsPerCell := float64(Bits) / float64(Cells)
	if bitsPerCell < 1.57 || bitsPerCell > 1.58 {
		t.Fatalf("raw density = %v", bitsPerCell)
	}
}

func TestLevelSpacing(t *testing.T) {
	if LevelLogR(0) != 3 || LevelLogR(6) != 6 {
		t.Fatal("level endpoints wrong")
	}
	for r := 1; r < Cells; r++ {
		d := LevelLogR(r) - LevelLogR(r-1)
		if d < 0.49 || d > 0.51 {
			t.Fatalf("level spacing %v", d)
		}
	}
}

func TestRankOrderRecoversCleanWrite(t *testing.T) {
	for val := uint16(0); val < 1<<Bits; val += 97 {
		p := Encode(val)
		var logR [Cells]float64
		for cell, rank := range p {
			logR[cell] = LevelLogR(rank)
		}
		if got := RankOrder(logR); got != p {
			t.Fatalf("rank order of nominal write differs: %v vs %v", got, p)
		}
	}
}

func TestGroupErrorGrowsWithTime(t *testing.T) {
	const n = 30000
	short := GroupErrorMC(60, n, 1)        // one minute
	long := GroupErrorMC(37*86400, n, 1)   // the patent's 37 days
	longer := GroupErrorMC(365*86400, n, 1)
	if short > long+0.002 || long > longer+0.005 {
		t.Fatalf("group error not increasing: %v, %v, %v", short, long, longer)
	}
	// Permutation coding is drift-resilient at memory-refresh timescales:
	// far better than naive 4LC (whose cell error rate passes 1E-2 within
	// 17 minutes).
	if short > 5e-3 {
		t.Errorf("group error at 1 min = %v, expected small", short)
	}
}

func TestRepairDecodeFixesAdjacentSwap(t *testing.T) {
	// A clean write, then force a single adjacent-rank swap by nudging
	// resistances: repair must recover the original value when the
	// swapped pattern leaves the codebook.
	fixed, total := 0, 0
	for val := uint16(0); val < 1<<Bits; val += 11 {
		p := Encode(val)
		var logR [Cells]float64
		for cell, rank := range p {
			logR[cell] = LevelLogR(rank)
		}
		// Swap ranks 3 and 4 by drifting the rank-3 cell just past rank 4.
		var lo, hi int
		for c, rank := range p {
			if rank == 3 {
				lo = c
			}
			if rank == 4 {
				hi = c
			}
		}
		logR[lo] = logR[hi] + 0.01
		got, ok := RepairDecode(logR)
		total++
		if ok && got == val {
			fixed++
		}
	}
	// The even-permutation codebook makes every single transposition
	// detectable, and the minimum-gap heuristic identifies the true swap
	// (its gap is 0.01 decades vs ~0.5 for the alternatives).
	if frac := float64(fixed) / float64(total); frac < 0.99 {
		t.Fatalf("repair recovered only %v of adjacent swaps", frac)
	}
}

func TestRepairReducesGroupError(t *testing.T) {
	const n = 100000
	tt := 37.0 * 86400
	plain := GroupErrorMC(tt, n, 9)
	repaired := GroupErrorRepairedMC(tt, n, 9)
	if repaired >= plain {
		t.Fatalf("repair did not help: %v vs %v", repaired, plain)
	}
}

func TestGroupErrorDeterministic(t *testing.T) {
	a := GroupErrorMC(3600, 20000, 42)
	b := GroupErrorMC(3600, 20000, 42)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestCellErrorConversion(t *testing.T) {
	if got := CellErrorFromGroupError(0.7); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("conversion = %v", got)
	}
}

// Property: every permutation Encode emits decodes back to its value.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		val := raw % (1 << Bits)
		got, ok := Decode(Encode(val))
		return ok && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	var sink [Cells]int
	for i := 0; i < b.N; i++ {
		sink = Encode(uint16(i) & 2047)
	}
	_ = sink
}

func BenchmarkGroupErrorMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GroupErrorMC(86400, 10000, uint64(i))
	}
}
