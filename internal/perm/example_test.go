package perm_test

import (
	"fmt"

	"repro/internal/perm"
)

// Encode 11 bits onto seven cells as a rank-order permutation, corrupt
// it with a drift-induced adjacent swap, and recover via the
// maximum-likelihood repair decode.
func Example() {
	val := uint16(0x5A5)
	p := perm.Encode(val)
	fmt.Println("ranks:", p)

	// Analog view: each cell at its rank's nominal resistance.
	var logR [perm.Cells]float64
	for cell, rank := range p {
		logR[cell] = perm.LevelLogR(rank)
	}
	// Drift reorders two adjacent ranks.
	logR[0] += 0.51

	got, ok := perm.RepairDecode(logR)
	fmt.Printf("recovered %#x (ok=%v)\n", got, ok)
	// Output:
	// ranks: [4 0 1 3 6 5 2]
	// recovered 0x5a5 (ok=true)
}
