package pcmserve

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
)

// testShards builds a small sharded 3LC device: shards × blocksPerShard
// 64-byte blocks.
func testShards(t testing.TB, shards, blocksPerShard, queueDepth int) *Shards {
	t.Helper()
	g, err := NewShards(ShardsConfig{
		Shards:     shards,
		QueueDepth: queueDepth,
		Device: device.Config{
			Kind:           device.ThreeLC,
			Blocks:         blocksPerShard,
			Seed:           12345,
			DisableWearout: true,
		},
	})
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestShardsSize(t *testing.T) {
	g := testShards(t, 4, 8, 16)
	want := int64(4 * 8 * core.BlockBytes)
	if g.Size() != want {
		t.Fatalf("Size() = %d, want %d", g.Size(), want)
	}
	if g.NumShards() != 4 {
		t.Fatalf("NumShards() = %d, want 4", g.NumShards())
	}
}

// TestShardsCrossBoundary writes and reads ranges that straddle shard
// boundaries and verifies contents against a plain byte-slice mirror.
func TestShardsCrossBoundary(t *testing.T) {
	g := testShards(t, 4, 4, 8) // shardSize = 256 bytes, total 1024
	mirror := make([]byte, g.Size())

	shardSize := g.Size() / int64(g.NumShards())
	cases := []struct {
		off int64
		n   int
	}{
		{0, 64},                                // block-aligned, one shard
		{shardSize - 10, 20},                   // straddles shard 0/1
		{shardSize*2 - 1, 2},                   // single byte each side
		{shardSize - 5, int(shardSize*2 + 10)}, // spans three boundaries
		{g.Size() - 7, 7},                      // ends exactly at Size()
		{13, 1},                                // single unaligned byte
	}
	rng := byte(1)
	for _, tc := range cases {
		p := make([]byte, tc.n)
		for i := range p {
			p[i] = rng
			rng = rng*31 + 7
		}
		n, err := g.WriteAt(p, tc.off)
		if err != nil || n != tc.n {
			t.Fatalf("WriteAt(%d bytes, %d) = %d, %v", tc.n, tc.off, n, err)
		}
		copy(mirror[tc.off:], p)
	}

	// Full readback plus the straddling sub-ranges.
	got := make([]byte, g.Size())
	if n, err := g.ReadAt(got, 0); err != nil || int64(n) != g.Size() {
		t.Fatalf("full ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("full readback differs from mirror")
	}
	for _, tc := range cases {
		p := make([]byte, tc.n)
		if n, err := g.ReadAt(p, tc.off); err != nil || n != tc.n {
			t.Fatalf("ReadAt(%d, %d) = %d, %v", tc.n, tc.off, n, err)
		}
		if !bytes.Equal(p, mirror[tc.off:tc.off+int64(tc.n)]) {
			t.Fatalf("readback at %d differs", tc.off)
		}
	}
}

func TestShardsEOFAndBounds(t *testing.T) {
	g := testShards(t, 2, 2, 4)
	size := g.Size()

	// Read past the end: available prefix + io.EOF.
	p := make([]byte, 100)
	n, err := g.ReadAt(p, size-10)
	if n != 10 || err != io.EOF {
		t.Fatalf("ReadAt past end = %d, %v; want 10, io.EOF", n, err)
	}
	// Read starting at/after the end.
	if n, err := g.ReadAt(p, size); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt at size = %d, %v; want 0, io.EOF", n, err)
	}
	// Zero-length read anywhere valid returns 0, nil.
	if n, err := g.ReadAt(nil, 0); n != 0 || err != nil {
		t.Fatalf("zero-length ReadAt = %d, %v", n, err)
	}
	// Writes beyond the end are rejected whole.
	if n, err := g.WriteAt(p, size-10); err == nil || n != 0 {
		t.Fatalf("overlong WriteAt = %d, %v; want 0, error", n, err)
	}
	// Negative offsets.
	if _, err := g.ReadAt(p, -1); err == nil {
		t.Fatal("negative-offset ReadAt succeeded")
	}
	if _, err := g.WriteAt(p, -1); err == nil {
		t.Fatal("negative-offset WriteAt succeeded")
	}
}

// TestShardsConcurrent hammers disjoint regions from many goroutines;
// run under -race this is the shard layer's thread-safety proof.
func TestShardsConcurrent(t *testing.T) {
	g := testShards(t, 4, 8, 4)
	const workers = 8
	region := g.Size() / workers
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * region
			buf := make([]byte, 96) // straddles blocks and shards
			for i := range buf {
				buf[i] = byte(w*31 + i)
			}
			for iter := 0; iter < 10; iter++ {
				off := base + int64(iter*7)%(region-int64(len(buf)))
				if _, err := g.WriteAt(buf, off); err != nil {
					errs <- err
					return
				}
				got := make([]byte, len(buf))
				if _, err := g.ReadAt(got, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, buf) {
					errs <- errors.New("read-after-write mismatch")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestShardsAdvanceAndSnapshot(t *testing.T) {
	g := testShards(t, 4, 2, 4)
	buf := make([]byte, core.BlockBytes)
	for i := 0; i < g.NumShards(); i++ {
		off := int64(i) * (g.Size() / int64(g.NumShards()))
		if _, err := g.WriteAt(buf, off); err != nil {
			t.Fatalf("WriteAt shard %d: %v", i, err)
		}
	}
	if err := g.Advance(3600); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	snap := g.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot() has %d shards, want 4", len(snap))
	}
	for i, st := range snap {
		if st.Writes != 1 {
			t.Errorf("shard %d: Writes = %d, want 1", i, st.Writes)
		}
		if st.Advances != 1 {
			t.Errorf("shard %d: Advances = %d, want 1", i, st.Advances)
		}
		if st.QueueCap != 4 {
			t.Errorf("shard %d: QueueCap = %d, want 4", i, st.QueueCap)
		}
		var hist uint64
		for _, c := range st.WriteLatencyUs {
			hist += c
		}
		if hist != st.Writes {
			t.Errorf("shard %d: write histogram total %d != writes %d", i, hist, st.Writes)
		}
	}
}

func TestShardsClose(t *testing.T) {
	g := testShards(t, 2, 2, 4)
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := g.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadAt after Close = %v, want ErrClosed", err)
	}
	if _, err := g.WriteAt(make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteAt after Close = %v, want ErrClosed", err)
	}
	if err := g.Advance(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Advance after Close = %v, want ErrClosed", err)
	}
}
