package pcmserve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("pcmserve: server closed")

// ServerConfig tunes the serving layer. The zero value is usable.
type ServerConfig struct {
	// MaxInflight bounds concurrently executing requests per
	// connection (default 32). Together with the bounded shard queues
	// this is the backpressure budget: when it is exhausted the
	// connection reader stops consuming frames and TCP flow control
	// pushes back on the client.
	MaxInflight int
	// IdleTimeout closes a connection that sends no frame for this
	// long (default 2 minutes; negative disables).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write (default 30 s; negative
	// disables).
	WriteTimeout time.Duration
	// MaxFrame bounds a single request or response frame
	// (default DefaultMaxFrame).
	MaxFrame uint32
	// ExpvarName, when non-empty, publishes the server's Stats through
	// expvar under this name (e.g. "pcmserve"). Names are global to
	// the process; publishing the same name twice is a no-op.
	ExpvarName string
}

func (c *ServerConfig) withDefaults() ServerConfig {
	out := *c
	if out.MaxInflight == 0 {
		out.MaxInflight = 32
	}
	if out.IdleTimeout == 0 {
		out.IdleTimeout = 2 * time.Minute
	}
	if out.WriteTimeout == 0 {
		out.WriteTimeout = 30 * time.Second
	}
	if out.MaxFrame == 0 {
		out.MaxFrame = DefaultMaxFrame
	}
	return out
}

// Server serves a Shards device over length-prefixed TCP framing.
type Server struct {
	shards  *Shards
	cfg     ServerConfig
	metrics *serverMetrics

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool

	connWG sync.WaitGroup
}

// NewServer wraps an assembled Shards device. The caller retains
// ownership of shards (Shutdown does not close it).
func NewServer(shards *Shards, cfg ServerConfig) *Server {
	s := &Server{
		shards:  shards,
		cfg:     cfg.withDefaults(),
		metrics: newServerMetrics(shards.obs.reg),
		conns:   make(map[net.Conn]struct{}),
	}
	shards.obs.reg.GaugeFunc("pcmserve_connections_active",
		"Currently open client connections.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})
	if name := s.cfg.ExpvarName; name != "" {
		publishExpvar(name, s)
	}
	return s
}

// expvarMu serializes the get-then-publish check; expvar.Publish
// panics on duplicate names.
var expvarMu sync.Mutex

func publishExpvar(name string, s *Server) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return s.Stats() }))
}

// Stats combines request-level counters with the per-shard snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	return Stats{
		Device:       s.shards.Name(),
		SizeBytes:    s.shards.Size(),
		Reads:        s.metrics.reads.Value(),
		Writes:       s.metrics.writes.Value(),
		Advances:     s.metrics.advances.Value(),
		StatsOps:     s.metrics.statsOps.Value(),
		Errors:       s.metrics.errors.Value(),
		BytesRead:    s.metrics.bytesRead.Value(),
		BytesWritten: s.metrics.bytesWritten.Value(),
		ActiveConns:  active,
		TotalConns:   int64(s.metrics.totalConns.Value()),
		SlowOps:      s.shards.obs.traces.SlowTotal(),
		Scrub:        s.shards.ScrubStats(),
		Integrity:    s.shards.IntegrityStats(),
		Live:         s.shards.LiveStats(),
		Shards:       s.shards.Snapshot(),
	}
}

// AdminHandler returns the admin HTTP plane for this server: /metrics
// (Prometheus text exposition of every instrument in the shared
// registry), /healthz (503 when any shard is dead), /tracez (sampled
// traces and the slow-op log), /debug/flightrecorder (live per-shard
// flight-recorder snapshots), and /debug/pprof. Mount it on a separate
// listener from the data plane.
func (s *Server) AdminHandler() http.Handler {
	return obs.AdminHandler(obs.AdminConfig{
		Registry: s.shards.obs.reg,
		Health:   s.healthReport,
		Traces:   s.shards.obs.traces,
		Dumps:    s.shards.RecorderSnapshots,
	})
}

func (s *Server) healthReport() obs.HealthReport {
	report := obs.HealthReport{Healthy: true}
	for i := 0; i < s.shards.NumShards(); i++ {
		h := s.shards.Health(i)
		if h == Dead {
			report.Healthy = false
		}
		report.Components = append(report.Components, obs.ComponentHealth{
			Name:  "shard/" + strconv.Itoa(i),
			State: h.String(),
		})
	}
	return report
}

// Serve accepts connections on ln until Shutdown. It always closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	defer ln.Close()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.metrics.totalConns.Inc()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown stops accepting, interrupts idle connection readers, waits
// for in-flight requests to drain, and force-closes any connection
// still open when ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	// Unblock every connection reader; handleConn treats a deadline
	// error during shutdown as "finish in-flight work and exit".
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// handleConn runs the per-connection reader loop plus a writer
// goroutine. Responses may be sent out of order; the request id keys
// them back to callers.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	out := make(chan []byte, s.cfg.MaxInflight)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		bw := bufio.NewWriter(conn)
		for buf := range out {
			if s.cfg.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			if _, err := bw.Write(buf); err != nil {
				// Keep draining so request handlers never block on a
				// dead connection's response channel.
				for range out {
				}
				return
			}
			// Flush when no more responses are immediately ready:
			// batches pipelined responses into fewer packets.
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					for range out {
					}
					return
				}
			}
		}
		bw.Flush()
	}()

	inflight := make(chan struct{}, s.cfg.MaxInflight)
	br := bufio.NewReader(conn)
	for {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		buf, err := readFrame(br, s.cfg.MaxFrame)
		if err != nil {
			if errors.Is(err, ErrFrameCRC) {
				s.metrics.frameCRCMismatch.Inc()
			}
			break // EOF, CRC mismatch, idle timeout, or shutdown nudge
		}
		req, err := parseRequest(buf)
		if err != nil {
			// The id parsed (frames shorter than the header are
			// rejected by readFrame), so the error can be returned
			// in-band before closing.
			out <- errFrame(req.id, err)
			break
		}
		inflight <- struct{}{} // backpressure: cap concurrent handlers
		go func() {
			defer func() { <-inflight }()
			out <- s.execute(req)
		}()
	}
	// Drain in-flight handlers before closing the response stream.
	for i := 0; i < cap(inflight); i++ {
		inflight <- struct{}{}
	}
	close(out)
	writerWG.Wait()
}

// execute runs one request against the sharded device and encodes the
// response frame.
func (s *Server) execute(req request) []byte {
	switch req.op {
	case OpRead:
		if req.n > s.cfg.MaxFrame-headerBytes {
			err := fmt.Errorf("pcmserve: read length %d exceeds frame limit", req.n)
			s.metrics.countOp(OpRead, 0, err)
			return errFrame(req.id, err)
		}
		buf := make([]byte, req.n)
		n, err := s.shards.readAtTraced(req.trace, buf, req.off)
		if err == io.EOF {
			s.metrics.countOp(OpRead, n, nil)
			return frame(req.id, StatusEOF, buf[:n])
		}
		s.metrics.countOp(OpRead, n, err)
		if err != nil {
			return errFrame(req.id, err)
		}
		return frame(req.id, StatusOK, buf[:n])
	case OpWrite:
		n, err := s.shards.writeAtTraced(req.trace, req.data, req.off)
		s.metrics.countOp(OpWrite, n, err)
		if err != nil {
			return errFrame(req.id, err)
		}
		return frame(req.id, StatusOK, u32(uint32(n)))
	case OpAdvance:
		err := s.shards.Advance(req.dt)
		s.metrics.countOp(OpAdvance, 0, err)
		if err != nil {
			return errFrame(req.id, err)
		}
		return frame(req.id, StatusOK)
	case OpStats:
		st := s.Stats()
		s.metrics.countOp(OpStats, 0, nil)
		payload, err := json.Marshal(st)
		if err != nil {
			return errFrame(req.id, err)
		}
		return frame(req.id, StatusOK, payload)
	}
	err := fmt.Errorf("pcmserve: unknown op %d", req.op)
	s.metrics.errors.Inc()
	return errFrame(req.id, err)
}
