package pcmserve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("pcmserve: server closed")

// ServerConfig tunes the serving layer. The zero value is usable.
type ServerConfig struct {
	// MaxInflight bounds concurrently executing requests per
	// connection (default 32). Together with the bounded shard queues
	// this is the backpressure budget: when it is exhausted the
	// connection reader stops consuming frames and TCP flow control
	// pushes back on the client.
	MaxInflight int
	// IdleTimeout closes a connection that sends no frame for this
	// long (default 2 minutes; negative disables).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write (default 30 s; negative
	// disables).
	WriteTimeout time.Duration
	// MaxFrame bounds a single request or response frame
	// (default DefaultMaxFrame).
	MaxFrame uint32
	// ExpvarName, when non-empty, publishes the server's Stats through
	// expvar under this name (e.g. "pcmserve"). Names are global to
	// the process; publishing the same name twice is a no-op.
	ExpvarName string
	// DisableRangeOps answers the vectored anti-entropy ops
	// (OpHashRange, OpReadStride) with CodeUnsupported, emulating a
	// peer predating them. Cluster clients use the verdict to fall back
	// to the per-slot sweep; this flag exists to exercise that path.
	DisableRangeOps bool
	// DisableExtHeader rejects requests carrying the extended header
	// (deadline + admission class) exactly the way a server predating it
	// does: a generic "unknown op" error followed by connection close.
	// Clients use the verdict to latch into legacy framing; this flag
	// exists to exercise that fallback.
	DisableExtHeader bool
}

func (c *ServerConfig) withDefaults() ServerConfig {
	out := *c
	if out.MaxInflight == 0 {
		out.MaxInflight = 32
	}
	if out.IdleTimeout == 0 {
		out.IdleTimeout = 2 * time.Minute
	}
	if out.WriteTimeout == 0 {
		out.WriteTimeout = 30 * time.Second
	}
	if out.MaxFrame == 0 {
		out.MaxFrame = DefaultMaxFrame
	}
	return out
}

// Server serves a Shards device over length-prefixed TCP framing.
type Server struct {
	shards  *Shards
	cfg     ServerConfig
	metrics *serverMetrics

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool

	connWG sync.WaitGroup
}

// NewServer wraps an assembled Shards device. The caller retains
// ownership of shards (Shutdown does not close it).
func NewServer(shards *Shards, cfg ServerConfig) *Server {
	s := &Server{
		shards:  shards,
		cfg:     cfg.withDefaults(),
		metrics: newServerMetrics(shards.obs.reg),
		conns:   make(map[net.Conn]struct{}),
	}
	shards.obs.reg.GaugeFunc("pcmserve_connections_active",
		"Currently open client connections.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})
	if name := s.cfg.ExpvarName; name != "" {
		publishExpvar(name, s)
	}
	return s
}

// expvarMu serializes the get-then-publish check; expvar.Publish
// panics on duplicate names.
var expvarMu sync.Mutex

func publishExpvar(name string, s *Server) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return s.Stats() }))
}

// Stats combines request-level counters with the per-shard snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	return Stats{
		Device:       s.shards.Name(),
		SizeBytes:    s.shards.Size(),
		Reads:        s.metrics.reads.Value(),
		Writes:       s.metrics.writes.Value(),
		Advances:     s.metrics.advances.Value(),
		StatsOps:     s.metrics.statsOps.Value(),
		HashRanges:   s.metrics.hashRanges.Value(),
		ReadStrides:  s.metrics.readStrides.Value(),
		Errors:       s.metrics.errors.Value(),
		BytesRead:    s.metrics.bytesRead.Value(),
		BytesWritten: s.metrics.bytesWritten.Value(),
		ActiveConns:  active,
		TotalConns:   int64(s.metrics.totalConns.Value()),
		SlowOps:      s.shards.obs.traces.SlowTotal(),
		Overload:     s.shards.OverloadStats(),
		Scrub:        s.shards.ScrubStats(),
		Integrity:    s.shards.IntegrityStats(),
		Live:         s.shards.LiveStats(),
		Shards:       s.shards.Snapshot(),
	}
}

// AdminHandler returns the admin HTTP plane for this server: /metrics
// (Prometheus text exposition of every instrument in the shared
// registry), /healthz (503 when any shard is dead), /tracez (sampled
// traces and the slow-op log), /debug/flightrecorder (live per-shard
// flight-recorder snapshots), and /debug/pprof. Mount it on a separate
// listener from the data plane.
func (s *Server) AdminHandler() http.Handler {
	return obs.AdminHandler(obs.AdminConfig{
		Registry: s.shards.obs.reg,
		Health:   s.healthReport,
		Traces:   s.shards.obs.traces,
		Dumps:    s.shards.RecorderSnapshots,
	})
}

func (s *Server) healthReport() obs.HealthReport {
	report := obs.HealthReport{Healthy: true}
	for i := 0; i < s.shards.NumShards(); i++ {
		h := s.shards.Health(i)
		if h == Dead {
			report.Healthy = false
		}
		report.Components = append(report.Components, obs.ComponentHealth{
			Name:  "shard/" + strconv.Itoa(i),
			State: h.String(),
		})
	}
	return report
}

// Serve accepts connections on ln until Shutdown. It always closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	defer ln.Close()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.metrics.totalConns.Inc()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown stops accepting, interrupts idle connection readers, waits
// for in-flight requests to drain, and force-closes any connection
// still open when ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	// Unblock every connection reader; handleConn treats a deadline
	// error during shutdown as "finish in-flight work and exit".
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	// Keep nudging: a reader that re-armed its idle deadline just
	// before the first nudge landed would otherwise sleep out its full
	// idle timeout before noticing the shutdown.
	nudge := time.NewTicker(20 * time.Millisecond)
	defer nudge.Stop()
	for {
		select {
		case <-done:
			return nil
		case <-nudge.C:
			s.mu.Lock()
			for c := range s.conns {
				c.SetReadDeadline(time.Now())
			}
			s.mu.Unlock()
		case <-ctx.Done():
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			<-done
			return ctx.Err()
		}
	}
}

// handleConn runs the per-connection reader loop plus a writer
// goroutine. Responses may be sent out of order; the request id keys
// them back to callers.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	out := make(chan []byte, s.cfg.MaxInflight)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		bw := bufio.NewWriter(conn)
		for buf := range out {
			if s.cfg.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			if _, err := bw.Write(buf); err != nil {
				// Keep draining so request handlers never block on a
				// dead connection's response channel.
				for range out {
				}
				return
			}
			// Flush when no more responses are immediately ready:
			// batches pipelined responses into fewer packets.
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					for range out {
					}
					return
				}
			}
		}
		bw.Flush()
	}()

	inflight := make(chan struct{}, s.cfg.MaxInflight)
	br := bufio.NewReader(conn)
	for {
		// Re-check shutdown every frame: a busy connection can keep
		// finding whole frames in the bufio buffer without ever touching
		// the socket, so the deadline nudge alone would never reach it
		// and Shutdown would hang until the client went idle.
		s.mu.Lock()
		down := s.shutdown
		s.mu.Unlock()
		if down {
			break
		}
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		buf, err := readFrame(br, s.cfg.MaxFrame)
		if err != nil {
			if errors.Is(err, ErrFrameCRC) {
				s.metrics.frameCRCMismatch.Inc()
			}
			break // EOF, CRC mismatch, idle timeout, or shutdown nudge
		}
		req, err := parseRequest(buf)
		if err != nil {
			// The id parsed (frames shorter than the header are
			// rejected by readFrame), so the error can be returned
			// in-band before closing.
			out <- errFrame(req.id, err)
			break
		}
		if req.ext && s.cfg.DisableExtHeader {
			// Byte-for-byte what an old server says to a flagged op:
			// generic error, then connection close.
			out <- errFrame(req.id, fmt.Errorf("pcmserve: unknown op %d", req.op|opFlagExt))
			break
		}
		// The deadline clock starts at receipt: the µs budget in the
		// frame is what the client had left when it sent the request.
		meta := opMeta{trace: req.trace}
		if req.ext {
			meta.sheddable = true
			if req.class == classBackground {
				meta.class = classBackground
			}
			if req.deadlineUs > 0 {
				meta.deadline = time.Now().Add(time.Duration(req.deadlineUs) * time.Microsecond)
			}
		}
		inflight <- struct{}{} // backpressure: cap concurrent handlers
		go func() {
			defer func() { <-inflight }()
			out <- s.execute(req, meta)
		}()
	}
	// Drain in-flight handlers before closing the response stream.
	for i := 0; i < cap(inflight); i++ {
		inflight <- struct{}{}
	}
	close(out)
	writerWG.Wait()
}

// execute runs one request against the sharded device and encodes the
// response frame.
func (s *Server) execute(req request, meta opMeta) []byte {
	if !meta.deadline.IsZero() && time.Now().After(meta.deadline) {
		// The budget was spent waiting on the inflight semaphore; answer
		// typed without touching a shard queue.
		s.shards.adm.expired.Inc()
		s.metrics.errors.Inc()
		return errFrame(req.id, ErrDeadlineExceeded)
	}
	switch req.op {
	case OpRead:
		if req.n > s.cfg.MaxFrame-headerBytes {
			err := fmt.Errorf("pcmserve: read length %d exceeds frame limit", req.n)
			s.metrics.countOp(OpRead, 0, err)
			return errFrame(req.id, err)
		}
		buf := make([]byte, req.n)
		n, err := s.shards.readAtMeta(meta, buf, req.off)
		if err == io.EOF {
			s.metrics.countOp(OpRead, n, nil)
			return frame(req.id, StatusEOF, buf[:n])
		}
		s.metrics.countOp(OpRead, n, err)
		if err != nil {
			return errFrame(req.id, err)
		}
		return frame(req.id, StatusOK, buf[:n])
	case OpWrite:
		n, err := s.shards.writeAtMeta(meta, req.data, req.off)
		s.metrics.countOp(OpWrite, n, err)
		if err != nil {
			return errFrame(req.id, err)
		}
		return frame(req.id, StatusOK, u32(uint32(n)))
	case OpAdvance:
		err := s.shards.Advance(req.dt)
		s.metrics.countOp(OpAdvance, 0, err)
		if err != nil {
			return errFrame(req.id, err)
		}
		return frame(req.id, StatusOK)
	case OpStats:
		st := s.Stats()
		s.metrics.countOp(OpStats, 0, nil)
		payload, err := json.Marshal(st)
		if err != nil {
			return errFrame(req.id, err)
		}
		return frame(req.id, StatusOK, payload)
	case OpHashRange:
		if s.cfg.DisableRangeOps {
			err := fmt.Errorf("pcmserve: HASH_RANGE disabled: %w", ErrUnsupported)
			s.metrics.countOp(OpHashRange, 0, err)
			return errFrame(req.id, err)
		}
		return s.hashRange(req, meta)
	case OpReadStride:
		if s.cfg.DisableRangeOps {
			err := fmt.Errorf("pcmserve: READ_STRIDE disabled: %w", ErrUnsupported)
			s.metrics.countOp(OpReadStride, 0, err)
			return errFrame(req.id, err)
		}
		return s.readStride(req, meta)
	}
	err := fmt.Errorf("pcmserve: unknown op %d", req.op)
	s.metrics.errors.Inc()
	return errFrame(req.id, err)
}

// maxRangeBytes bounds the bytes one HASH_RANGE request may digest
// (server-local work, never shipped over the wire), keeping a single
// handler's latency bounded. Callers split larger ranges.
const maxRangeBytes = 16 << 20

// hashRange digests req.count records of req.recordBytes each starting
// at req.off, split into at most req.fanout contiguous chunks, and
// returns one FNV-1a 64 digest per chunk. A chunk whose bytes cannot
// be read is flagged unreadable (digest 0) instead of failing the
// request: the anti-entropy caller treats it as divergent and descends.
func (s *Server) hashRange(req request, meta opMeta) []byte {
	if req.recordBytes == 0 || req.count == 0 || req.fanout == 0 {
		err := fmt.Errorf("pcmserve: HASH_RANGE rec=%d count=%d fanout=%d: all must be positive",
			req.recordBytes, req.count, req.fanout)
		s.metrics.countOp(OpHashRange, 0, err)
		return errFrame(req.id, err)
	}
	total := uint64(req.recordBytes) * uint64(req.count)
	if total > maxRangeBytes {
		err := fmt.Errorf("pcmserve: HASH_RANGE covers %d bytes, limit %d", total, maxRangeBytes)
		s.metrics.countOp(OpHashRange, 0, err)
		return errFrame(req.id, err)
	}
	fanout := req.fanout
	if fanout > req.count {
		fanout = req.count
	}
	if fanout > 1024 {
		fanout = 1024
	}
	// Chunk i covers base (+1 for the first rem chunks) records.
	base, rem := req.count/fanout, req.count%fanout
	body := make([]byte, 0, 13*fanout)
	buf := make([]byte, 64<<10)
	off := req.off
	hashed := 0
	for i := uint32(0); i < fanout; i++ {
		records := base
		if i < rem {
			records++
		}
		chunkBytes := int64(records) * int64(req.recordBytes)
		h := fnv.New64a()
		flag := uint8(0)
		for done := int64(0); done < chunkBytes; {
			n := chunkBytes - done
			if n > int64(len(buf)) {
				n = int64(len(buf))
			}
			rn, err := s.shards.readAtMeta(meta, buf[:n], off+done)
			if err != nil || int64(rn) != n {
				flag = 1
				break
			}
			h.Write(buf[:n])
			hashed += int(n)
			done += n
		}
		var digest uint64
		if flag == 0 {
			digest = h.Sum64()
		}
		var chunk [13]byte
		binary.BigEndian.PutUint32(chunk[:], records)
		chunk[4] = flag
		binary.BigEndian.PutUint64(chunk[5:], digest)
		body = append(body, chunk[:]...)
		off += chunkBytes
	}
	s.metrics.countOp(OpHashRange, hashed, nil)
	return frame(req.id, StatusOK, body)
}

// readStride reads the first req.recordBytes of req.count records
// spaced req.stride bytes apart, returning per-record readable flags
// followed by the concatenated record bytes (unreadable records are
// zero-filled so offsets stay aligned).
func (s *Server) readStride(req request, meta opMeta) []byte {
	if req.recordBytes == 0 || req.count == 0 || req.stride < req.recordBytes {
		err := fmt.Errorf("pcmserve: READ_STRIDE rec=%d count=%d stride=%d: need rec>0, count>0, stride≥rec",
			req.recordBytes, req.count, req.stride)
		s.metrics.countOp(OpReadStride, 0, err)
		return errFrame(req.id, err)
	}
	payload := uint64(req.count) + uint64(req.count)*uint64(req.recordBytes)
	if payload > uint64(s.cfg.MaxFrame)-headerBytes {
		err := fmt.Errorf("pcmserve: READ_STRIDE reply %d bytes exceeds frame limit", payload)
		s.metrics.countOp(OpReadStride, 0, err)
		return errFrame(req.id, err)
	}
	flags := make([]byte, req.count)
	records := make([]byte, uint64(req.count)*uint64(req.recordBytes))
	moved := 0
	for i := uint32(0); i < req.count; i++ {
		dst := records[uint64(i)*uint64(req.recordBytes):][:req.recordBytes]
		off := req.off + int64(i)*int64(req.stride)
		n, err := s.shards.readAtMeta(meta, dst, off)
		if err != nil || n != len(dst) {
			flags[i] = 1
			clear(dst)
			continue
		}
		moved += n
	}
	s.metrics.countOp(OpReadStride, moved, nil)
	return frame(req.id, StatusOK, flags, records)
}
