package pcmserve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faultinject"
)

// TestRetryWriteBounded: write retry attempts are bounded and surfaced
// in the error.
func TestRetryWriteBounded(t *testing.T) {
	// A listener that is immediately closed: every dial is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rc, err := DialRetry(addr, RetryConfig{
		MaxWriteAttempts: 3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer rc.Close()
	_, werr := rc.WriteAt(make([]byte, 8), 0)
	if werr == nil {
		t.Fatal("write against a dead address succeeded")
	}
	if !strings.Contains(werr.Error(), "3 attempts") {
		t.Fatalf("error does not surface the attempt bound: %v", werr)
	}
	if st := rc.RetryStats(); st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (attempts beyond the first)", st.Retries)
	}
}

// TestClientReconnectAcrossServerRestart is the acceptance check: a
// RetryClient completes a read workload across a full server restart
// with zero caller-visible errors.
func TestClientReconnectAcrossServerRestart(t *testing.T) {
	g := testShards(t, 4, 8, 16)

	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln1.Addr().String()
	srv1 := NewServer(g, ServerConfig{})
	go srv1.Serve(ln1)

	// Seed the device through a throwaway direct client.
	pattern := make([]byte, g.Size())
	for i := range pattern {
		pattern[i] = byte(i%249 + 3)
	}
	seed, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := seed.WriteAt(pattern, 0); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	seed.Close()

	rc, err := DialRetry(addr, RetryConfig{
		MaxReadAttempts: 64,
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      20 * time.Millisecond,
		OpTimeout:       2 * time.Second,
	})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer rc.Close()

	stop := make(chan struct{})
	var reads atomic.Uint64
	readerErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		buf := make([]byte, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			off := rng.Int63n(g.Size() - 64)
			if _, err := rc.ReadAt(buf, off); err != nil {
				readerErr <- fmt.Errorf("read at %d: %w", off, err)
				return
			}
			if !bytes.Equal(buf, pattern[off:off+64]) {
				readerErr <- fmt.Errorf("corrupted read at %d", off)
				return
			}
			reads.Add(1)
		}
	}()

	// Let the workload run, then restart the server under it.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	var ln2 net.Listener
	for i := 0; i < 200; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2 := NewServer(g, ServerConfig{})
	serve2 := make(chan error, 1)
	go func() { serve2 <- srv2.Serve(ln2) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		<-serve2
	})

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-readerErr:
		t.Fatalf("caller-visible error across restart: %v", err)
	default:
	}
	if reads.Load() == 0 {
		t.Fatal("reader made no progress")
	}
	if st := rc.RetryStats(); st.Redials < 2 {
		t.Fatalf("Redials = %d, want ≥ 2 (initial + post-restart)", st.Redials)
	}
}

// TestChaosSoak runs the full client–server stack with every fault
// family enabled at once — scheduled uncorrectable reads, injected
// write errors, shard panics, latency spikes, and connection cuts — and
// asserts the acceptance invariants: no corrupted data observed by any
// client, no deadlock (the test finishes), and every shard back to
// healthy at the end. Run under -race this is the resilience proof of
// the serving stack.
func TestChaosSoak(t *testing.T) {
	minOps := 2000
	if testing.Short() {
		minOps = 400
	}

	g, fis := testShardsFI(t, ShardsConfig{
		Shards:      4,
		QueueDepth:  16,
		HealAfter:   8,
		MaxRestarts: 20,
	}, func(i int) faultinject.Plan {
		return faultinject.Plan{
			Seed:              uint64(i)*7919 + 1,
			UncorrectableRead: faultinject.Schedule{Every: 70, Times: 5},
			WriteError:        faultinject.Schedule{Every: 90, Times: 5},
			Panic:             faultinject.Schedule{Every: 100, Start: 50, Times: 2},
			Latency:           faultinject.Schedule{Every: 40},
			LatencyDuration:   200 * time.Microsecond,
		}
	})

	addr := startServer(t, g, ServerConfig{MaxInflight: 16})

	const clients = 3
	region := g.Size() / clients
	const opLen = 96

	type report struct {
		worker       int
		mismatches   int
		corruptReads int
		writeFails   int
		readFails    int
		detail       string
	}
	reports := make(chan report, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rep := report{worker: w}
			defer func() { reports <- rep }()

			rc, err := NewRetryClient(RetryConfig{
				Dial:             faultinject.Dialer(addr, uint64(w)*13+5, 2<<10, 8<<10),
				MaxReadAttempts:  16,
				MaxWriteAttempts: 6,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       20 * time.Millisecond,
				OpTimeout:        5 * time.Second,
				Seed:             uint64(w) + 1,
			})
			if err != nil {
				rep.detail = err.Error()
				rep.mismatches++
				return
			}
			defer rc.Close()

			base := int64(w) * region
			mirror := make([]byte, region)
			valid := make([]bool, region)
			rng := rand.New(rand.NewSource(int64(w)*997 + 1))
			buf := make([]byte, opLen)

			for op := 0; op < minOps; op++ {
				off := rng.Int63n(region - opLen)
				if rng.Intn(100) < 60 {
					n, err := rc.ReadAt(buf[:opLen], base+off)
					if err != nil {
						if Classify(err) == ClassCorrupt {
							rep.corruptReads++
						} else {
							rep.readFails++
						}
						continue
					}
					for i := 0; i < n; i++ {
						if valid[off+int64(i)] && buf[i] != mirror[off+int64(i)] {
							rep.mismatches++
							rep.detail = fmt.Sprintf("worker %d: mismatch at %d (op %d)", w, base+off+int64(i), op)
							return
						}
					}
				} else {
					rng.Read(buf[:opLen])
					n, err := rc.WriteAt(buf[:opLen], base+off)
					if err == nil && n == opLen {
						copy(mirror[off:off+opLen], buf[:opLen])
						for i := int64(0); i < opLen; i++ {
							valid[off+i] = true
						}
					} else {
						// Failed or ambiguous: stop trusting the span.
						rep.writeFails++
						for i := int64(0); i < opLen; i++ {
							valid[off+i] = false
						}
					}
				}
			}

			// Post-soak verification with a clean, cut-free connection:
			// every byte a clean write confirmed must read back intact.
			c, err := Dial(addr)
			if err != nil {
				rep.detail = "final dial: " + err.Error()
				rep.mismatches++
				return
			}
			defer c.Close()
			final := make([]byte, region)
			for off := int64(0); off < region; off += 512 {
				end := off + 512
				if end > region {
					end = region
				}
				var rerr error
				for attempt := 0; attempt < 8; attempt++ {
					// Bounded fault schedules may not be exhausted yet, so
					// allow a few retries through the same clean conn.
					if _, rerr = c.ReadAt(final[off:end], base+off); rerr == nil {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				if rerr != nil {
					rep.detail = fmt.Sprintf("final read at %d: %v", base+off, rerr)
					rep.mismatches++
					return
				}
			}
			for i := int64(0); i < region; i++ {
				if valid[i] && final[i] != mirror[i] {
					rep.mismatches++
					rep.detail = fmt.Sprintf("worker %d: final mismatch at %d", w, base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(reports)

	var totalCorrupt, totalWriteFails, totalReadFails int
	for rep := range reports {
		if rep.mismatches != 0 {
			t.Fatalf("worker %d observed corrupted data: %s", rep.worker, rep.detail)
		}
		totalCorrupt += rep.corruptReads
		totalWriteFails += rep.writeFails
		totalReadFails += rep.readFails
	}
	t.Logf("soak: corruptReads=%d writeFails=%d readFails=%d", totalCorrupt, totalWriteFails, totalReadFails)

	// The fault plan must actually have fired: panics on at least one
	// shard, and injected faults overall.
	var panics, injectedReads uint64
	for _, fi := range fis {
		st := fi.Stats()
		panics += st.Panics
		injectedReads += st.UncorrectableReads
	}
	if panics == 0 {
		t.Error("no shard panics were injected; soak did not exercise the supervisor")
	}
	if injectedReads == 0 {
		t.Error("no uncorrectable reads were injected")
	}

	// Eventual recovery: every shard back to healthy, helped along by a
	// trickle of traffic (healing needs completed ops).
	buf := make([]byte, 8)
	waitHealth(t, g, Healthy, 10*time.Second, func() {
		for i := 0; i < g.NumShards(); i++ {
			g.ReadAt(buf, int64(i)*g.Size()/int64(g.NumShards()))
		}
	})

	snap := g.Snapshot()
	var restarts uint64
	for _, s := range snap {
		restarts += s.Restarts
	}
	if panics > 0 && restarts == 0 {
		t.Error("panics fired but no supervisor restarts recorded")
	}
}

// TestIntegrityChaosSoak is the end-to-end data-integrity proof: bits
// flip both in the stored blocks (under the BCH layer) and on the wire
// (under the frame CRC) while clients hammer a live server with the
// verify-scrubber running. The invariant is absolute — every read
// returns exactly the data last written or a typed error; silent
// corruption is an immediate failure. Run under -race this also proves
// the new integrity paths are data-race free.
func TestIntegrityChaosSoak(t *testing.T) {
	minOps := 1500
	if testing.Short() {
		minOps = 300
	}

	g, fis := testShardsFI(t, ShardsConfig{
		Shards:     2,
		QueueDepth: 16,
		Device: device.Config{
			Kind:           device.ThreeLC,
			Blocks:         48,
			Seed:           2026,
			ReserveBlocks:  4,
			DisableWearout: true,
		},
		Integrity:     &IntegrityConfig{T: 10},
		VerifyScrub:   true,
		ScrubInterval: 2 * time.Millisecond,
	}, func(i int) faultinject.Plan {
		return faultinject.Plan{
			Seed: uint64(i)*6151 + 3,
			// Flip 3 stored bits on every 20th read — always within
			// BCH-10 capability, so reads must come back exact.
			BitFlip:     faultinject.Schedule{Every: 20},
			BitFlipBits: 3,
		}
	})

	srv := NewServer(g, ServerConfig{MaxInflight: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()
	addr := ln.Addr().String()

	// Seed the whole device through a clean connection, so every later
	// read has a known expected value.
	pattern := make([]byte, g.Size())
	for i := range pattern {
		pattern[i] = byte(i*17 + 5)
	}
	seed, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := seed.WriteAt(pattern, 0); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	seed.Close()

	const clients = 2
	region := g.Size() / clients
	const opLen = 96

	type report struct {
		worker     int
		mismatches int
		readFails  int
		writeFails int
		redials    uint64
		detail     string
	}
	reports := make(chan report, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rep := report{worker: w}
			defer func() { reports <- rep }()

			rc, err := NewRetryClient(RetryConfig{
				// Roughly 1 flipped bit per 4 KiB in BOTH directions:
				// connections die on CRC mismatches and the retry layer
				// must reconnect, transparently.
				Dial:             faultinject.FlipDialer(addr, uint64(w)*31+7, 4096),
				MaxReadAttempts:  32,
				MaxWriteAttempts: 8,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       10 * time.Millisecond,
				OpTimeout:        5 * time.Second,
				Seed:             uint64(w) + 1,
			})
			if err != nil {
				rep.detail = err.Error()
				rep.mismatches++
				return
			}
			defer func() {
				rep.redials = rc.RetryStats().Redials
				rc.Close()
			}()

			base := int64(w) * region
			mirror := make([]byte, region)
			copy(mirror, pattern[base:base+region])
			valid := make([]bool, region)
			for i := range valid {
				valid[i] = true
			}
			rng := rand.New(rand.NewSource(int64(w)*631 + 9))
			buf := make([]byte, opLen)

			for op := 0; op < minOps; op++ {
				off := rng.Int63n(region - opLen)
				if rng.Intn(100) < 60 {
					n, err := rc.ReadAt(buf[:opLen], base+off)
					if err != nil {
						// No beyond-capability faults are injected, so even
						// a corrupt classification would be a bug — but a
						// read that errors at least never lied.
						rep.readFails++
						if Classify(err) == ClassCorrupt {
							rep.mismatches++
							rep.detail = fmt.Sprintf("worker %d: corrupt verdict without beyond-t injection: %v", w, err)
							return
						}
						continue
					}
					for i := 0; i < n; i++ {
						if valid[off+int64(i)] && buf[i] != mirror[off+int64(i)] {
							rep.mismatches++
							rep.detail = fmt.Sprintf("worker %d: silent corruption at %d (op %d)", w, base+off+int64(i), op)
							return
						}
					}
				} else {
					rng.Read(buf[:opLen])
					n, err := rc.WriteAt(buf[:opLen], base+off)
					if err == nil && n == opLen {
						copy(mirror[off:off+opLen], buf[:opLen])
						for i := int64(0); i < opLen; i++ {
							valid[off+i] = true
						}
					} else {
						rep.writeFails++
						for i := int64(0); i < opLen; i++ {
							valid[off+i] = false
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(reports)

	var totalReadFails, totalWriteFails int
	var totalRedials uint64
	for rep := range reports {
		if rep.mismatches != 0 {
			t.Fatalf("worker %d: %s", rep.worker, rep.detail)
		}
		totalReadFails += rep.readFails
		totalWriteFails += rep.writeFails
		totalRedials += rep.redials
	}

	// The faults must actually have fired, and the integrity machinery
	// must have caught and healed them.
	var storedFlips, correctedBits, readRepairs uint64
	for _, fi := range fis {
		storedFlips += fi.Stats().BitFlips
	}
	for _, s := range g.shards {
		correctedBits += s.integ.correctedBits.Value()
		readRepairs += s.integ.readRepairs.Value()
	}
	scrub := g.ScrubStats()
	t.Logf("soak: storedFlips=%d correctedBits=%d readRepairs=%d frameCRC=%d redials=%d readFails=%d writeFails=%d verify={clean:%d corrected:%d uncorrectable:%d}",
		storedFlips, correctedBits, readRepairs, srv.metrics.frameCRCMismatch.Value(),
		totalRedials, totalReadFails, totalWriteFails,
		scrub.VerifyClean, scrub.VerifyCorrected, scrub.VerifyUncorrectable)

	if storedFlips == 0 {
		t.Error("no stored bits were flipped; the soak did not exercise the BCH layer")
	}
	if correctedBits == 0 {
		t.Error("no bits were corrected; flips were injected but never decoded")
	}
	if readRepairs == 0 {
		t.Error("no read-repairs performed")
	}
	if srv.metrics.frameCRCMismatch.Value() == 0 {
		t.Error("server saw no frame CRC mismatches; wire flips did not reach it")
	}
	if totalRedials <= clients {
		t.Errorf("total redials = %d, want > %d (wire corruption must force reconnects)", totalRedials, clients)
	}
	if scrub.VerifyClean == 0 {
		t.Error("verify scrubber never saw a clean block")
	}
	if scrub.VerifyUncorrectable != 0 {
		t.Errorf("verify scrubber reported %d uncorrectable blocks with only within-t faults injected", scrub.VerifyUncorrectable)
	}
}

// TestWireCRCKillsConnTyped pins the client-visible contract of a CRC
// mismatch: the blocking call fails with ErrConnFailed AND ErrFrameCRC
// (transient), never a payload silently delivered. A hand-rolled server
// over a pipe answers the first request with a frame whose body is
// corrupted after the checksum was computed.
func TestWireCRCKillsConnTyped(t *testing.T) {
	cliSide, srvSide := net.Pipe()
	go func() {
		defer srvSide.Close()
		req, err := readFrame(srvSide, DefaultMaxFrame)
		if err != nil {
			return
		}
		r, err := parseRequest(req)
		if err != nil {
			return
		}
		resp := frame(r.id, StatusOK, make([]byte, 64))
		resp[len(resp)-1] ^= 0x40 // body bit flips in flight; CRC is stale
		srvSide.Write(resp)
	}()

	c := NewClient(cliSide)
	defer c.Close()

	_, rerr := c.ReadAt(make([]byte, 64), 0)
	if rerr == nil {
		t.Fatal("read returned a payload whose frame failed its checksum")
	}
	if !errors.Is(rerr, ErrConnFailed) || !errors.Is(rerr, ErrFrameCRC) {
		t.Fatalf("error = %v, want ErrConnFailed wrapping ErrFrameCRC", rerr)
	}
	if Classify(rerr) != ClassTransient {
		t.Fatalf("classified %v, want transient", Classify(rerr))
	}
}
