package pcmserve

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestRetryWriteCloseDuringFinalDial pins the satellite fix: a write
// resubmission whose final dial attempt races with Close must surface
// ErrClosed, not the generic dial error. The second Dial call holds
// the client mutex, so Close blocks mid-teardown — but its closing
// flag is already visible, and the retry loop must honor it when the
// dial fails.
func TestRetryWriteCloseDuringFinalDial(t *testing.T) {
	dialCalls := 0
	dialing := make(chan struct{}, 1)
	rc, err := NewRetryClient(RetryConfig{
		Dial: func() (net.Conn, error) {
			dialCalls++ // serialized under the client mutex
			if dialCalls == 2 {
				dialing <- struct{}{}
				time.Sleep(50 * time.Millisecond)
			}
			return nil, errors.New("synthetic dial failure")
		},
		MaxWriteAttempts: 2,
		BaseBackoff:      time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRetryClient: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, werr := rc.WriteAt(make([]byte, 64), 0)
		done <- werr
	}()
	<-dialing
	rc.Close() // blocks until the in-flight dial releases the mutex
	werr := <-done
	if !errors.Is(werr, ErrClosed) {
		t.Fatalf("WriteAt after Close race = %v, want ErrClosed", werr)
	}
	if dialCalls != 2 {
		t.Fatalf("dialCalls = %d, want 2", dialCalls)
	}
}

// TestRetryWriteCloseBetweenAttempts pins the other interleaving: Close
// lands while a resubmission is backing off, so the next attempt's
// conn() must return ErrClosed rather than redialing.
func TestRetryWriteCloseBetweenAttempts(t *testing.T) {
	dialCalls := 0
	firstFail := make(chan struct{}, 1)
	rc, err := NewRetryClient(RetryConfig{
		Dial: func() (net.Conn, error) {
			dialCalls++
			firstFail <- struct{}{}
			return nil, errors.New("synthetic dial failure")
		},
		MaxWriteAttempts: 3,
		BaseBackoff:      50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRetryClient: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, werr := rc.WriteAt(make([]byte, 64), 0)
		done <- werr
	}()
	<-firstFail
	rc.Close() // completes during the first backoff window
	werr := <-done
	if !errors.Is(werr, ErrClosed) {
		t.Fatalf("WriteAt after Close = %v, want ErrClosed", werr)
	}
}

// TestRetryStatsAcrossReconnect pins the retry-count metrics across one
// forced reconnect: the first connection delivers 8 bytes of the write
// frame and dies, so the retry layer must redial exactly once and
// resubmit exactly once, and the resubmitted write must be readable.
func TestRetryStatsAcrossReconnect(t *testing.T) {
	g := testShards(t, 2, 4, 8)
	addr := startServer(t, g, ServerConfig{})

	var dials atomic.Int64
	rc, err := NewRetryClient(RetryConfig{
		Dial: func() (net.Conn, error) {
			conn, derr := net.Dial("tcp", addr)
			if derr != nil {
				return nil, derr
			}
			if dials.Add(1) == 1 {
				return faultinject.WrapConn(conn, faultinject.ConnPlan{CutWriteAfter: 8}), nil
			}
			return conn, nil
		},
		BaseBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRetryClient: %v", err)
	}
	defer rc.Close()

	data := bytes.Repeat([]byte{0xA5}, 64)
	if _, err := rc.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt across reconnect: %v", err)
	}
	if st := rc.RetryStats(); st != (RetryStats{Redials: 2, Retries: 1}) {
		t.Fatalf("RetryStats after reconnect = %+v, want {Redials:2 Retries:1}", st)
	}

	got := make([]byte, 64)
	if _, err := rc.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("resubmitted write not visible: got % x", got[:8])
	}
	// The read rode the healthy second connection: no new recovery work.
	if st := rc.RetryStats(); st != (RetryStats{Redials: 2, Retries: 1}) {
		t.Fatalf("RetryStats after read = %+v, want unchanged {Redials:2 Retries:1}", st)
	}
}
