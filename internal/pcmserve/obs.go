package pcmserve

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/obs"
)

// Observability tunes the obs layer threaded through the serving
// stack. The zero value (and a nil *Observability) is fully usable:
// every Shards gets a private metrics registry, a sampled trace log,
// and per-shard flight recorders, with dumps logged to stderr.
type Observability struct {
	// Registry receives every instrument (nil → a private registry;
	// share one registry across components to serve a single /metrics).
	Registry *obs.Registry

	// SlowOp is the slow-op log threshold: server-side traces at least
	// this slow are always retained (default 50ms, negative disables).
	SlowOp time.Duration
	// TraceSampleEvery keeps one in N fast traces for /tracez
	// (default 64; 1 keeps all).
	TraceSampleEvery int
	// TraceDepth bounds each of the recent and slow trace rings
	// (default 64).
	TraceDepth int

	// RecorderDepth is the per-shard flight-recorder window, rounded up
	// to a power of two (default 256).
	RecorderDepth int
	// DumpSink receives flight-recorder dumps on shard panic, shard
	// death, and (when enabled) uncorrectable errors. Nil logs a
	// formatted dump to stderr.
	DumpSink func(obs.Dump)
	// DumpOnUncorrectable also dumps on every uncorrectable device
	// error (off by default: chaos tests and drifted devices can make
	// these frequent; panic and death dumps are always on).
	DumpOnUncorrectable bool
}

// serveObs is the wired observability state shared by the Shards
// layer, the Server, and the scrubber.
type serveObs struct {
	reg                 *obs.Registry
	traces              *obs.TraceLog
	sink                func(obs.Dump)
	recorderDepth       int
	dumpOnUncorrectable bool
}

func newServeObs(cfg *Observability) *serveObs {
	var c Observability
	if cfg != nil {
		c = *cfg
	}
	o := &serveObs{
		reg:                 c.Registry,
		sink:                c.DumpSink,
		recorderDepth:       c.RecorderDepth,
		dumpOnUncorrectable: c.DumpOnUncorrectable,
	}
	if o.reg == nil {
		o.reg = obs.NewRegistry()
	}
	if o.recorderDepth <= 0 {
		o.recorderDepth = 256
	}
	if o.sink == nil {
		o.sink = logDump
	}
	o.traces = obs.NewTraceLog(obs.TraceLogConfig{
		RecentCap:     c.TraceDepth,
		SlowCap:       c.TraceDepth,
		SampleEvery:   c.TraceSampleEvery,
		SlowThreshold: c.SlowOp,
	})
	return o
}

// logDump is the default dump sink: one formatted block to stderr.
func logDump(d obs.Dump) {
	log.New(os.Stderr, "", log.LstdFlags).Print(obs.FormatDump(d, opName))
}

// opName maps wire and internal op codes to metric label values.
func opName(op uint8) string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAdvance:
		return "advance"
	case OpStats:
		return "stats"
	case opScrub:
		return "scrub"
	case opRepair:
		return "repair"
	case opRefresh:
		return "refresh"
	}
	return fmt.Sprintf("op%d", op)
}

// latBoundsSeconds are the histogram upper bounds: power-of-two
// microseconds from 1 µs to ~4.2 s (2^22 µs), matching the bucket
// scheme the STATS snapshot has always used; the +Inf bucket makes
// histBuckets (24) buckets in total.
var latBoundsSeconds = func() []float64 {
	out := make([]float64, histBuckets-1)
	for i := range out {
		out[i] = float64(uint64(1)<<uint(i)) * 1e-6
	}
	return out
}()

// HistBucketBoundsUs returns the latency histogram bucket upper bounds
// in microseconds: bucket i of a ShardStats latency histogram counts
// operations with latency ≤ bounds[i] µs (and above the previous
// bound); the final bucket, at index len(bounds), absorbs everything
// slower. The returned slice is fresh on every call.
func HistBucketBoundsUs() []uint64 {
	out := make([]uint64, histBuckets-1)
	for i := range out {
		out[i] = uint64(1) << uint(i)
	}
	return out
}

// remapReporter is the optional device interface gauge collection uses
// to source spare-pool occupancy (device.Device implements it;
// faultinject.Device forwards it).
type remapReporter interface {
	RemapStats() (reserveLeft, retired int)
}

// eventClass maps an op outcome to its flight-recorder class.
func eventClass(err error) obs.EventClass {
	if err == nil {
		return obs.EventOK
	}
	switch Classify(err) {
	case ClassTransient:
		return obs.EventTransient
	case ClassCorrupt:
		return obs.EventCorrupt
	}
	return obs.EventPermanent
}
