package pcmserve

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wearout"
)

// ScrubStats counts what the background scrubber has found and fixed;
// it is part of the Stats snapshot and the expvar export.
type ScrubStats struct {
	// Passes counts completed walks of the whole logical block space.
	Passes uint64 `json:"passes"`
	// Scrubbed counts block scrub operations performed.
	Scrubbed uint64 `json:"scrubbed"`
	// Repaired counts correctable blocks rewritten at nominal levels
	// (drift cleared before it could accumulate past ECC).
	Repaired uint64 `json:"repaired"`
	// Uncorrectable counts scrubs that found a block beyond ECC.
	Uncorrectable uint64 `json:"uncorrectable"`
	// Spared counts spare pairs consumed by mark-and-spare accounting
	// (one per uncorrectable event, per the paper's Section 6.4).
	Spared uint64 `json:"spared"`
	// Retired counts blocks whose failures exceeded the spare capacity
	// of the paper's mark-and-spare design (6 spare pairs per block).
	Retired uint64 `json:"retired"`
	// Skipped counts scrub slots dropped because the owning shard was
	// dead or the scrub op itself failed.
	Skipped uint64 `json:"skipped"`
}

// scrubber walks the logical block space at a fixed cadence, issuing
// one opScrub per interval through the owning shard's queue so scrubs
// serialize with client traffic. Uncorrectable blocks are routed
// through internal/wearout mark-and-spare accounting: each failure
// marks one pair and consumes one spare; a block that exhausts the
// spare budget is retired (the ErrTooManyFailures condition).
type scrubber struct {
	g        *Shards
	interval time.Duration
	design   wearout.MarkAndSpare

	stop chan struct{}
	wg   sync.WaitGroup

	mu         sync.Mutex
	sparesUsed map[int64]int // logical block → spare pairs consumed
	stats      ScrubStats
}

func newScrubber(g *Shards, interval time.Duration) *scrubber {
	return &scrubber{
		g:          g,
		interval:   interval,
		design:     wearout.PaperDesign(),
		stop:       make(chan struct{}),
		sparesUsed: make(map[int64]int),
	}
}

func (sc *scrubber) start() {
	sc.wg.Add(1)
	go sc.run()
}

func (sc *scrubber) snapshot() ScrubStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.stats
}

func (sc *scrubber) run() {
	defer sc.wg.Done()
	tick := time.NewTicker(sc.interval)
	defer tick.Stop()
	nBlocks := sc.g.size / core.BlockBytes
	var block int64
	for {
		select {
		case <-sc.stop:
			return
		case <-tick.C:
		}
		sc.scrubOne(block)
		block++
		if block >= nBlocks {
			block = 0
			sc.mu.Lock()
			sc.stats.Passes++
			sc.mu.Unlock()
		}
	}
}

// scrubOne scrubs the logical block with the given global index. The
// enqueue follows the dispatch locking discipline: the closed check and
// the channel send happen under the read lock, so Close cannot close
// the queue out from under the send.
func (sc *scrubber) scrubOne(block int64) {
	off := block * core.BlockBytes
	s := sc.g.shards[off/sc.g.shardSize]

	sc.g.mu.RLock()
	if sc.g.closed {
		sc.g.mu.RUnlock()
		return
	}
	if s.healthState() == Dead {
		sc.g.mu.RUnlock()
		sc.mu.Lock()
		sc.stats.Skipped++
		sc.mu.Unlock()
		return
	}
	done := make(chan shardResult, 1)
	s.ch <- shardReq{op: opScrub, off: off % sc.g.shardSize, done: done}
	sc.g.mu.RUnlock()

	r := <-done
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.stats.Scrubbed++
	switch r.scrub {
	case scrubRepaired:
		sc.stats.Repaired++
	case scrubUncorrectable:
		sc.stats.Uncorrectable++
		// Mark-and-spare: the failure marks one pair INV and shifts a
		// spare in. Past SparePairs the block is beyond the scheme's
		// capacity and is retired (counted once).
		sc.sparesUsed[block]++
		used := sc.sparesUsed[block]
		if used <= sc.design.SparePairs {
			sc.stats.Spared++
		} else if used == sc.design.SparePairs+1 {
			sc.stats.Retired++
		}
	}
	if r.err != nil && !errors.Is(r.err, core.ErrUncorrectable) {
		sc.stats.Skipped++
	}
}
