package pcmserve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wearout"
)

// ScrubStats counts what the background scrubber has found and fixed;
// it is part of the Stats snapshot and the expvar export.
type ScrubStats struct {
	// Passes counts completed walks of the whole logical block space.
	Passes uint64 `json:"passes"`
	// Scrubbed counts block scrub operations performed.
	Scrubbed uint64 `json:"scrubbed"`
	// Repaired counts correctable blocks rewritten at nominal levels
	// (drift cleared before it could accumulate past ECC).
	Repaired uint64 `json:"repaired"`
	// Uncorrectable counts scrubs that found a block beyond ECC.
	Uncorrectable uint64 `json:"uncorrectable"`
	// Spared counts spare pairs consumed by mark-and-spare accounting
	// (one per uncorrectable event, per the paper's Section 6.4).
	Spared uint64 `json:"spared"`
	// Retired counts blocks whose failures exceeded the spare capacity
	// of the paper's mark-and-spare design (6 spare pairs per block).
	Retired uint64 `json:"retired"`
	// Skipped counts scrub slots dropped because the owning shard was
	// dead or the scrub op itself failed.
	Skipped uint64 `json:"skipped"`
	// Verify-pass outcomes (integrity layer + VerifyScrub): decoded
	// blocks found clean (no rewrite), corrected and repaired in place,
	// or beyond BCH capability (escalated by the integrity ladder).
	VerifyClean         uint64 `json:"verify_clean"`
	VerifyCorrected     uint64 `json:"verify_corrected"`
	VerifyUncorrectable uint64 `json:"verify_uncorrectable"`
	// PassHeadroomSeconds is the projected wall-clock time to finish
	// the current scrub pass at the configured cadence — the
	// refresh-interval headroom: it must stay below the drift window
	// the device can tolerate, or blocks go unrefreshed too long.
	PassHeadroomSeconds float64 `json:"pass_headroom_seconds"`
}

// scrubber walks the logical block space at a fixed cadence, issuing
// one opScrub per interval through the owning shard's queue so scrubs
// serialize with client traffic. Uncorrectable blocks are routed
// through internal/wearout mark-and-spare accounting: each failure
// marks one pair and consumes one spare; a block that exhausts the
// spare budget is retired (the ErrTooManyFailures condition).
type scrubber struct {
	g        *Shards
	interval time.Duration
	design   wearout.MarkAndSpare
	nBlocks  int64

	stop chan struct{}
	wg   sync.WaitGroup

	// cursor is the next logical block to scrub; the headroom gauge
	// derives pass-completion time from it.
	cursor atomic.Int64

	passes, scrubbed      *obs.Counter
	repairedDrift         *obs.Counter
	repairedUncorrectable *obs.Counter
	spared, retired       *obs.Counter
	skipped               *obs.Counter

	verifyClean         *obs.Counter
	verifyCorrected     *obs.Counter
	verifyUncorrectable *obs.Counter

	mu         sync.Mutex
	sparesUsed map[int64]int // logical block → spare pairs consumed
}

func newScrubber(g *Shards, interval time.Duration) *scrubber {
	sc := &scrubber{
		g:          g,
		interval:   interval,
		design:     wearout.PaperDesign(),
		nBlocks:    g.size / core.BlockBytes,
		stop:       make(chan struct{}),
		sparesUsed: make(map[int64]int),
	}
	reg := g.obs.reg
	sc.passes = reg.Counter("pcmserve_scrub_passes_total",
		"Completed scrub walks of the whole logical block space.")
	sc.scrubbed = reg.Counter("pcmserve_scrub_blocks_total",
		"Block scrub operations performed.")
	const repairsName = "pcmserve_scrub_repairs_total"
	const repairsHelp = "Blocks rewritten by the scrubber, by cause: drift (correctable, refreshed at nominal levels) or uncorrectable (content replaced, spare-accounted)."
	sc.repairedDrift = reg.Counter(repairsName, repairsHelp, obs.L("cause", "drift")...)
	sc.repairedUncorrectable = reg.Counter(repairsName, repairsHelp, obs.L("cause", "uncorrectable")...)
	sc.spared = reg.Counter("pcmserve_scrub_spared_total",
		"Spare pairs consumed by mark-and-spare accounting.")
	sc.retired = reg.Counter("pcmserve_scrub_retired_total",
		"Blocks retired after exhausting the mark-and-spare budget.")
	sc.skipped = reg.Counter("pcmserve_scrub_skipped_total",
		"Scrub slots dropped (dead shard or scrub op failure).")
	const verifyName = "pcmserve_scrub_verify_total"
	const verifyHelp = "Verify-pass scrub outcomes: decoded clean (no rewrite), corrected (repaired in place), or uncorrectable (escalated)."
	sc.verifyClean = reg.Counter(verifyName, verifyHelp, obs.L("outcome", "clean")...)
	sc.verifyCorrected = reg.Counter(verifyName, verifyHelp, obs.L("outcome", "corrected")...)
	sc.verifyUncorrectable = reg.Counter(verifyName, verifyHelp, obs.L("outcome", "uncorrectable")...)
	reg.GaugeFunc("pcmserve_scrub_pass_headroom_seconds",
		"Projected time to finish the current scrub pass at the configured cadence (the refresh-interval headroom).",
		sc.headroomSeconds)
	return sc
}

// headroomSeconds projects the remaining wall-clock time of the
// current pass: blocks still unvisited × the per-block cadence.
func (sc *scrubber) headroomSeconds() float64 {
	remaining := sc.nBlocks - sc.cursor.Load()
	if remaining < 0 {
		remaining = 0
	}
	return float64(remaining) * sc.interval.Seconds()
}

func (sc *scrubber) start() {
	sc.wg.Add(1)
	go sc.run()
}

func (sc *scrubber) snapshot() ScrubStats {
	return ScrubStats{
		Passes:              sc.passes.Value(),
		Scrubbed:            sc.scrubbed.Value(),
		Repaired:            sc.repairedDrift.Value(),
		Uncorrectable:       sc.repairedUncorrectable.Value(),
		Spared:              sc.spared.Value(),
		Retired:             sc.retired.Value(),
		Skipped:             sc.skipped.Value(),
		VerifyClean:         sc.verifyClean.Value(),
		VerifyCorrected:     sc.verifyCorrected.Value(),
		VerifyUncorrectable: sc.verifyUncorrectable.Value(),
		PassHeadroomSeconds: sc.headroomSeconds(),
	}
}

func (sc *scrubber) run() {
	defer sc.wg.Done()
	tick := time.NewTicker(sc.interval)
	defer tick.Stop()
	for {
		select {
		case <-sc.stop:
			return
		case <-tick.C:
		}
		block := sc.cursor.Load()
		sc.scrubOne(block)
		block++
		if block >= sc.nBlocks {
			block = 0
			sc.passes.Inc()
		}
		sc.cursor.Store(block)
	}
}

// scrubOne scrubs the logical block with the given global index. The
// enqueue follows the dispatch locking discipline: the closed check and
// the admission happen under the read lock, so Close cannot close the
// queue out from under the send. Scrub is background work: admission
// sheds it at the high-water mark (counted as a skipped slot; the
// cursor revisits the block next pass) so a saturated queue spends its
// capacity on foreground requests.
func (sc *scrubber) scrubOne(block int64) {
	off := block * core.BlockBytes
	s := sc.g.shards[off/sc.g.shardSize]

	sc.g.mu.RLock()
	if sc.g.closed {
		sc.g.mu.RUnlock()
		return
	}
	if s.healthState() == Dead {
		sc.g.mu.RUnlock()
		sc.skipped.Inc()
		return
	}
	done := make(chan shardResult, 1)
	err := s.admit(shardReq{op: opScrub, off: off % sc.g.shardSize, enq: time.Now(), done: done},
		opMeta{class: classBackground})
	sc.g.mu.RUnlock()
	if err != nil {
		sc.skipped.Inc()
		return
	}

	r := <-done
	sc.scrubbed.Inc()
	switch r.scrub {
	case scrubRepaired:
		sc.repairedDrift.Inc()
	case scrubUncorrectable:
		sc.repairedUncorrectable.Inc()
		// Mark-and-spare: the failure marks one pair INV and shifts a
		// spare in. Past SparePairs the block is beyond the scheme's
		// capacity and is retired (counted once).
		sc.mu.Lock()
		sc.sparesUsed[block]++
		used := sc.sparesUsed[block]
		sc.mu.Unlock()
		if used <= sc.design.SparePairs {
			sc.spared.Inc()
		} else if used == sc.design.SparePairs+1 {
			sc.retired.Inc()
		}
	case scrubVerifyClean:
		sc.verifyClean.Inc()
	case scrubVerifyCorrected:
		sc.verifyCorrected.Inc()
	case scrubVerifyUncorrectable:
		// The integrity ladder already spared/remapped and replaced the
		// content; the scrubber only observes the outcome.
		sc.verifyUncorrectable.Inc()
	}
	if r.err != nil && !errors.Is(r.err, core.ErrUncorrectable) {
		sc.skipped.Inc()
	}
}
