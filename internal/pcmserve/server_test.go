package pcmserve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// startServer brings up a loopback server over a fresh Shards device
// and returns its address. Cleanup shuts the server down gracefully.
func startServer(t *testing.T, g *Shards, cfg ServerConfig) string {
	t.Helper()
	srv := NewServer(g, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return ln.Addr().String()
}

// TestServerLoopback is the acceptance-criteria integration test: ≥ 4
// concurrent clients against a ≥ 4-shard server, read-after-write
// contents verified across shard boundaries, and STATS op counts that
// sum to the issued requests. Run under -race it also proves the
// serving stack free of data races.
func TestServerLoopback(t *testing.T) {
	g := testShards(t, 4, 8, 8) // shardSize = 512 B, total 2 KiB
	addr := startServer(t, g, ServerConfig{})

	const clients = 4
	const itersPerClient = 12
	region := g.Size() / clients
	shardSize := g.Size() / int64(g.NumShards())

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			base := int64(w) * region
			buf := make([]byte, 100) // straddles block and shard edges
			got := make([]byte, len(buf))
			for iter := 0; iter < itersPerClient; iter++ {
				for i := range buf {
					buf[i] = byte(w*37 + iter*11 + i)
				}
				off := base + int64(iter*13)%(region-int64(len(buf)))
				if _, err := c.WriteAt(buf, off); err != nil {
					errs <- err
					return
				}
				if _, err := c.ReadAt(got, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, buf) {
					errs <- errors.New("read-after-write mismatch over the wire")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// A request region deliberately straddling a shard boundary,
	// checked byte for byte from a separate client.
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	cross := make([]byte, 64)
	for i := range cross {
		cross[i] = byte(200 + i)
	}
	crossOff := shardSize*2 - 32 // half in shard 1, half in shard 2
	if _, err := c.WriteAt(cross, crossOff); err != nil {
		t.Fatalf("cross-shard WriteAt: %v", err)
	}
	got := make([]byte, len(cross))
	if _, err := c.ReadAt(got, crossOff); err != nil {
		t.Fatalf("cross-shard ReadAt: %v", err)
	}
	if !bytes.Equal(got, cross) {
		t.Fatal("cross-shard readback mismatch")
	}

	// Advance simulated time over the wire.
	if err := c.Advance(60); err != nil {
		t.Fatalf("Advance: %v", err)
	}

	// STATS: request-level op counts must sum to everything issued.
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	wantReads := uint64(clients*itersPerClient + 1)
	wantWrites := uint64(clients*itersPerClient + 1)
	if st.Reads != wantReads {
		t.Errorf("Stats.Reads = %d, want %d", st.Reads, wantReads)
	}
	if st.Writes != wantWrites {
		t.Errorf("Stats.Writes = %d, want %d", st.Writes, wantWrites)
	}
	if st.Advances != 1 {
		t.Errorf("Stats.Advances = %d, want 1", st.Advances)
	}
	if st.Errors != 0 {
		t.Errorf("Stats.Errors = %d, want 0", st.Errors)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("Stats.Shards has %d entries, want 4", len(st.Shards))
	}
	// Per-shard write counts must account for every write span: all
	// writes were single-shard except the cross-shard one (2 spans).
	var shardWrites uint64
	for _, ss := range st.Shards {
		shardWrites += ss.Writes
	}
	if want := wantWrites + 1; shardWrites != want {
		t.Errorf("sum of per-shard writes = %d, want %d", shardWrites, want)
	}
}

// TestClientPipelining issues many concurrent requests on ONE client
// connection; responses may interleave and return out of order.
func TestClientPipelining(t *testing.T) {
	g := testShards(t, 4, 8, 8)
	addr := startServer(t, g, ServerConfig{MaxInflight: 8})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i) * 128
			buf := bytes.Repeat([]byte{byte(i + 1)}, 128)
			if _, err := c.WriteAt(buf, off); err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(buf))
			if _, err := c.ReadAt(got, off); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, buf) {
				errs <- errors.New("pipelined read-after-write mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWireEOFAndErrors exercises the protocol's EOF and error paths.
func TestWireEOFAndErrors(t *testing.T) {
	g := testShards(t, 2, 2, 4)
	addr := startServer(t, g, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	size := g.Size()
	p := make([]byte, 50)
	n, err := c.ReadAt(p, size-10)
	if n != 10 || err != io.EOF {
		t.Fatalf("remote ReadAt past end = %d, %v; want 10, io.EOF", n, err)
	}
	if n, err := c.ReadAt(p, size+5); n != 0 || err != io.EOF {
		t.Fatalf("remote ReadAt beyond end = %d, %v; want 0, io.EOF", n, err)
	}
	if _, err := c.WriteAt(p, size-10); err == nil {
		t.Fatal("remote overlong WriteAt succeeded, want error")
	}
	// The connection must survive an in-band error response.
	if _, err := c.WriteAt(p, 0); err != nil {
		t.Fatalf("WriteAt after error response: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Errors != 1 {
		t.Errorf("Stats.Errors = %d, want 1 (the rejected write)", st.Errors)
	}
}

// TestGracefulShutdown verifies Shutdown drains an in-flight request
// rather than dropping it.
func TestGracefulShutdown(t *testing.T) {
	g := testShards(t, 4, 4, 8)
	srv := NewServer(g, ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// Prove the conn works, then shut down and verify the server exits.
	if _, err := c.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// New requests on the old connection now fail.
	if _, err := c.ReadAt(make([]byte, 8), 0); err == nil {
		t.Fatal("ReadAt after shutdown succeeded")
	}
}

// TestProtocolRoundTrip fuzzes the codec helpers directly.
func TestProtocolRoundTrip(t *testing.T) {
	const trace = 0xDEADBEEFCAFE
	exts := []*wireExt{nil, {deadlineUs: 2500, class: classBackground}}
	for _, ext := range exts {
		reqs := [][]byte{
			encodeReadReq(7, trace, ext, 1024, 512),
			encodeWriteReq(8, trace, ext, 64, []byte("hello pcm")),
			encodeAdvanceReq(9, trace, ext, 3.5),
			encodeStatsReq(10, trace, ext),
		}
		for i, fr := range reqs {
			body, err := readFrame(bytes.NewReader(fr), DefaultMaxFrame)
			if err != nil {
				t.Fatalf("req %d: readFrame: %v", i, err)
			}
			req, err := parseRequest(body)
			if err != nil {
				t.Fatalf("req %d: parseRequest: %v", i, err)
			}
			if req.id != uint64(7+i) {
				t.Errorf("req %d: id = %d, want %d", i, req.id, 7+i)
			}
			if req.trace != trace {
				t.Errorf("req %d: trace = %#x, want %#x", i, req.trace, uint64(trace))
			}
			if req.ext != (ext != nil) {
				t.Errorf("req %d: ext = %v, want %v", i, req.ext, ext != nil)
			}
			if ext != nil && (req.deadlineUs != ext.deadlineUs || req.class != ext.class) {
				t.Errorf("req %d: ext header = (%d, %d), want (%d, %d)",
					i, req.deadlineUs, req.class, ext.deadlineUs, ext.class)
			}
		}
	}
	if _, err := parseRequest([]byte{1, 2, 3}); err == nil {
		t.Error("short request parsed")
	}
	// Oversized frame rejected before allocation.
	big := encodeWriteReq(1, 0, nil, 0, make([]byte, 1024))
	if _, err := readFrame(bytes.NewReader(big), 64); err == nil {
		t.Error("oversized frame accepted")
	}
}
