package pcmserve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pcmlive"
)

// LiveConfig enables drift-backed shards: every shard device is a
// pcmlive.Device aging under simulated time, and a pcmlive.Scheduler
// replaces the fixed-cadence scrubber — refresh is bought from a write
// budget shared with foreground traffic and routed through the shard
// queues, so clients observe refresh-induced bank-busy latency.
type LiveConfig struct {
	// Levels selects the cell organization: 4 (4LCo + BCH-10, the
	// paper's volatile high-density point, needs refresh) or 3 (3LCo +
	// BCH-1, nonvolatile). Default 4.
	Levels int
	// RefreshIntervalSeconds is the refresh interval in SIM seconds
	// (the paper's 1020 s for 4LCo); 0 disables refresh entirely — the
	// control arm that demonstrates drift-induced data loss.
	RefreshIntervalSeconds float64
	// WriteBudgetBytesPerSec meters the combined write bandwidth
	// (foreground + refresh) in WALL bytes/second — the paper's
	// 40 MB/s. 0 leaves writes unmetered.
	WriteBudgetBytesPerSec float64
	// BurstBytes is the budget bucket capacity (0 → 50 ms of refill).
	BurstBytes float64
	// ReserveBytes is the headroom on-schedule refresh leaves for
	// foreground writes (0 → half the burst).
	ReserveBytes float64
	// TimeScale is simulated seconds per wall second (default 1).
	// Loadgen and CI smoke runs raise it so drift horizons of hours
	// play out in seconds.
	TimeScale float64
	// GraceFactor sets the refresh deadline-miss threshold (see
	// pcmlive.SchedulerConfig; 0 → default 0.25).
	GraceFactor float64
}

// liveState is the Shards-level live-mode machinery: the shared error
// model and budget, the per-shard raw devices, the scheduler, and the
// registered instruments.
type liveState struct {
	cfg    LiveConfig
	model  *pcmlive.ErrorModel
	budget *pcmlive.Budget
	devs   []*pcmlive.Device
	sched  *pcmlive.Scheduler // nil when refresh is disabled

	refreshClean         *obs.Counter
	refreshCorrected     *obs.Counter
	refreshUncorrectable *obs.Counter
	refreshUnwritten     *obs.Counter
	deadlineMiss         *obs.Counter
}

// newLiveState validates the live configuration and builds the shared
// model, budget, and instruments (devices are added per shard by
// NewShards).
func newLiveState(cfg LiveConfig, shards int, reg *obs.Registry) (*liveState, error) {
	levels := cfg.Levels
	if levels == 0 {
		levels = 4
	}
	lcfg, err := pcmlive.ConfigForLevels(levels)
	if err != nil {
		return nil, err
	}
	model, err := pcmlive.NewErrorModel(lcfg)
	if err != nil {
		return nil, err
	}
	if cfg.RefreshIntervalSeconds < 0 {
		return nil, fmt.Errorf("pcmserve: negative refresh interval %g", cfg.RefreshIntervalSeconds)
	}
	if cfg.WriteBudgetBytesPerSec < 0 {
		return nil, fmt.Errorf("pcmserve: negative write budget %g", cfg.WriteBudgetBytesPerSec)
	}
	ls := &liveState{
		cfg:   cfg,
		model: model,
		devs:  make([]*pcmlive.Device, 0, shards),
	}
	if cfg.WriteBudgetBytesPerSec > 0 {
		ls.budget = pcmlive.NewBudget(cfg.WriteBudgetBytesPerSec, cfg.BurstBytes)
	}
	const refreshName = "pcmlive_refresh_total"
	const refreshHelp = "Scheduled block refreshes by outcome: clean (rewritten before any cell erred), corrected (drift cleared within ECC), uncorrectable (beyond ECC, content replaced), unwritten (nothing stored)."
	ls.refreshClean = reg.Counter(refreshName, refreshHelp, obs.L("outcome", "clean")...)
	ls.refreshCorrected = reg.Counter(refreshName, refreshHelp, obs.L("outcome", "corrected")...)
	ls.refreshUncorrectable = reg.Counter(refreshName, refreshHelp, obs.L("outcome", "uncorrectable")...)
	ls.refreshUnwritten = reg.Counter(refreshName, refreshHelp, obs.L("outcome", "unwritten")...)
	ls.deadlineMiss = reg.Counter("pcmlive_deadline_miss_total",
		"Refreshes executed past the configured interval plus grace — late enough to matter.")
	return ls, nil
}

// onOutcome and onDeadlineMiss are the scheduler's metric hooks.
func (ls *liveState) onOutcome(_ int, o pcmlive.Outcome) {
	switch o {
	case pcmlive.RefreshClean:
		ls.refreshClean.Inc()
	case pcmlive.RefreshCorrected:
		ls.refreshCorrected.Inc()
	case pcmlive.RefreshUncorrectable:
		ls.refreshUncorrectable.Inc()
	case pcmlive.RefreshUnwritten:
		ls.refreshUnwritten.Inc()
	}
}

func (ls *liveState) onDeadlineMiss(_ int) { ls.deadlineMiss.Inc() }

// registerGauges installs the Shards-level live gauges once all
// devices (and the scheduler, if any) exist.
func (ls *liveState) registerGauges(reg *obs.Registry) {
	reg.GaugeFunc("pcmlive_refresh_debt_peak",
		"Highest refresh debt the scheduler has observed (blocks past the model-safe age, all shards).",
		func() float64 {
			if ls.sched == nil {
				return 0
			}
			return float64(ls.sched.DebtPeak())
		})
	reg.GaugeFunc("pcmlive_refresh_skipped_total",
		"Refresh slots deferred because taking budget would invade the foreground headroom (retried until overdue).",
		func() float64 {
			if ls.sched == nil {
				return 0
			}
			return float64(ls.sched.Stats().SkippedBudget)
		}, obs.L("reason", "budget")...)
	reg.GaugeFunc("pcmlive_refresh_skipped_total",
		"Refresh slots skipped over never-written blocks.",
		func() float64 {
			if ls.sched == nil {
				return 0
			}
			return float64(ls.sched.Stats().SkippedUnwritten)
		}, obs.L("reason", "unwritten")...)
	reg.GaugeFunc("pcmlive_refresh_forced_total",
		"Overdue refreshes that preempted the write budget (priority aging).",
		func() float64 {
			if ls.sched == nil {
				return 0
			}
			return float64(ls.sched.Stats().Forced)
		})
	reg.GaugeFunc("pcmlive_sim_seconds",
		"Simulated clock of shard 0's device.",
		func() float64 {
			if len(ls.devs) == 0 {
				return 0
			}
			return ls.devs[0].SimNow()
		})
}

// startScheduler arms budgeted refresh over the built devices. Called
// by NewShards after every shard exists; no-op when refresh is
// disabled.
func (ls *liveState) startScheduler(g *Shards) error {
	if ls.cfg.RefreshIntervalSeconds == 0 {
		return nil
	}
	sched, err := pcmlive.NewScheduler(ls.devs, pcmlive.SchedulerConfig{
		Interval:       ls.cfg.RefreshIntervalSeconds,
		Budget:         ls.budget,
		ReserveBytes:   ls.cfg.ReserveBytes,
		GraceFactor:    ls.cfg.GraceFactor,
		Exec:           g.execRefresh,
		OnOutcome:      ls.onOutcome,
		OnDeadlineMiss: ls.onDeadlineMiss,
	})
	if err != nil {
		return err
	}
	ls.sched = sched
	sched.Start()
	return nil
}

// execRefresh routes one live block refresh through the owning shard's
// queue, so refresh serializes with client traffic exactly like the
// classic scrubber's opScrub — the bank-busy interference clients
// observe. block indexes the shard's RAW device blocks (integrity
// sideband blocks included: every physical block needs refresh), which
// is why it bypasses the integrity mapping.
//
// On-schedule refresh is background work: admission sheds it under
// queue pressure, the scheduler drops the slot, and the block keeps
// aging — until the scheduler's priority aging marks it overdue and
// calls back with forced=true, which enqueues unconditionally (the
// ForceTake escape hatch: overdue refresh is never shed into data
// loss).
func (g *Shards) execRefresh(shard, block int, forced bool) (pcmlive.Outcome, error) {
	s := g.shards[shard]
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return pcmlive.RefreshUnwritten, ErrClosed
	}
	if s.healthState() == Dead {
		g.mu.RUnlock()
		return pcmlive.RefreshUnwritten, fmt.Errorf("pcmserve: shard %d is dead: %w", shard, ErrShardUnavailable)
	}
	done := make(chan shardResult, 1)
	req := shardReq{op: opRefresh, off: int64(block) * core.BlockBytes, enq: time.Now(), done: done}
	meta := opMeta{class: classBackground}
	if forced {
		meta = opMeta{} // legacy blocking: overdue refresh must land
	}
	err := s.admit(req, meta)
	g.mu.RUnlock()
	if err != nil {
		return pcmlive.RefreshUnwritten, err
	}
	r := <-done
	return r.live, r.err
}

// LiveStats reports the drift/refresh state of a live-mode service
// (Enabled false and everything zero otherwise). Safe to call
// concurrently with traffic.
type LiveStats struct {
	Enabled bool `json:"enabled"`
	// Model names the organization (e.g. "live-4LCo/bch10"); Levels is
	// its level count.
	Model  string `json:"model"`
	Levels int    `json:"levels"`
	// Configuration echoes: sim-time refresh interval, model-safe age,
	// wall-time write budget, time scale.
	IntervalSeconds   float64 `json:"interval_seconds"`
	SafeAgeSeconds    float64 `json:"safe_age_seconds"`
	BudgetBytesPerSec float64 `json:"budget_bytes_per_sec"`
	TimeScale         float64 `json:"time_scale"`
	// SimSeconds is shard 0's simulated clock.
	SimSeconds float64 `json:"sim_seconds"`
	// Read outcomes across shards: served corrected (within ECC) and
	// failed uncorrectable.
	CorrectedReads     uint64 `json:"corrected_reads"`
	UncorrectableReads uint64 `json:"uncorrectable_reads"`
	// Refresh outcomes across shards (see pcmlive.Outcome), plus the
	// scheduler's pass/skip/priority counters.
	RefreshClean         uint64 `json:"refresh_clean"`
	RefreshCorrected     uint64 `json:"refresh_corrected"`
	RefreshUncorrectable uint64 `json:"refresh_uncorrectable"`
	Passes               uint64 `json:"passes"`
	Forced               uint64 `json:"forced"`
	SkippedBudget        uint64 `json:"skipped_budget"`
	SkippedUnwritten     uint64 `json:"skipped_unwritten"`
	DeadlineMisses       uint64 `json:"deadline_misses"`
	// Refresh debt: written blocks currently past the model-safe age,
	// and the highest total the scheduler has observed.
	DebtBlocks int `json:"debt_blocks"`
	DebtPeak   int `json:"debt_peak"`
	// Foreground budget contention: writes that stalled behind refresh
	// and their cumulative bank-busy time.
	StalledWrites uint64  `json:"stalled_writes"`
	StallSeconds  float64 `json:"stall_seconds"`
}

// LiveStats aggregates the live-mode snapshot across shards (the zero
// value when live mode is disabled).
func (g *Shards) LiveStats() LiveStats {
	ls := g.live
	if ls == nil {
		return LiveStats{}
	}
	levels := ls.cfg.Levels
	if levels == 0 {
		levels = 4
	}
	st := LiveStats{
		Enabled:           true,
		Model:             ls.model.Name(),
		Levels:            levels,
		IntervalSeconds:   ls.cfg.RefreshIntervalSeconds,
		BudgetBytesPerSec: ls.cfg.WriteBudgetBytesPerSec,
	}
	for i, d := range ls.devs {
		ds := d.Stats()
		if i == 0 {
			st.SafeAgeSeconds = d.SafeAge()
			st.TimeScale = d.TimeScale()
			st.SimSeconds = ds.SimSeconds
		}
		st.CorrectedReads += ds.CorrectedReads
		st.UncorrectableReads += ds.UncorrectableReads
		st.RefreshClean += ds.RefreshClean
		st.RefreshCorrected += ds.RefreshCorrected
		st.RefreshUncorrectable += ds.RefreshUncorrectable
		st.StalledWrites += ds.StalledWrites
		st.StallSeconds += ds.StallSeconds
		st.DebtBlocks += ds.DebtBlocks
	}
	if ls.sched != nil {
		ss := ls.sched.Stats()
		st.Passes = ss.Passes
		st.Forced = ss.Forced
		st.SkippedBudget = ss.SkippedBudget
		st.SkippedUnwritten = ss.SkippedUnwritten
		st.DeadlineMisses = ss.DeadlineMisses
		st.DebtPeak = ss.DebtPeak
	}
	return st
}

// validateLive rejects configurations that would double-refresh or
// mis-compose live mode.
func validateLive(cfg ShardsConfig) error {
	if cfg.Live == nil {
		return nil
	}
	if cfg.ScrubInterval > 0 {
		return errors.New("pcmserve: live drift shards are refreshed by the pcmlive scheduler; ScrubInterval must be 0 (RefreshIntervalSeconds replaces it)")
	}
	if cfg.VerifyScrub {
		return errors.New("pcmserve: VerifyScrub drives the classic scrubber and cannot combine with Live")
	}
	return nil
}
