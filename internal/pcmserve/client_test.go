package pcmserve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultinject"
)

// testShardsFI builds a sharded device with every shard's device
// wrapped in fault injection, returning the wrappers for arming.
func testShardsFI(t testing.TB, cfg ShardsConfig, plan func(i int) faultinject.Plan) (*Shards, []*faultinject.Device) {
	t.Helper()
	if cfg.Device.Blocks == 0 {
		cfg.Device = device.Config{
			Kind:           device.ThreeLC,
			Blocks:         8,
			Seed:           12345,
			DisableWearout: true,
		}
	}
	fis := make([]*faultinject.Device, 0, 8)
	cfg.WrapDevice = func(i int, dev ShardDevice) ShardDevice {
		p := faultinject.Plan{Seed: uint64(i) + 1}
		if plan != nil {
			p = plan(i)
		}
		fi := faultinject.New(dev, p)
		fis = append(fis, fi)
		return fi
	}
	g, err := NewShards(cfg)
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g, fis
}

// TestClientCloseIdempotent is the satellite check: a second Close (or
// Close racing other Closes) returns ErrClosed instead of re-closing
// the conn and re-awaiting the reader.
func TestClientCloseIdempotent(t *testing.T) {
	g := testShards(t, 2, 4, 8)
	addr := startServer(t, g, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	var wg sync.WaitGroup
	results := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- c.Close()
		}()
	}
	wg.Wait()
	close(results)
	var firsts, rest int
	for err := range results {
		if errors.Is(err, ErrClosed) {
			rest++
		} else if err == nil {
			firsts++
		} else {
			t.Fatalf("Close returned unexpected error: %v", err)
		}
	}
	if firsts != 1 || rest != 7 {
		t.Fatalf("got %d nil and %d ErrClosed results, want 1 and 7", firsts, rest)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Close after Close = %v, want ErrClosed", err)
	}
	if _, err := c.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadAt after Close = %v, want ErrClosed", err)
	}
}

// TestTypedErrorsOverWire is the satellite check: sentinel error codes
// survive the network, so errors.Is and Classify work on the client
// side.
func TestTypedErrorsOverWire(t *testing.T) {
	g, fis := testShardsFI(t, ShardsConfig{Shards: 2, QueueDepth: 8}, nil)
	addr := startServer(t, g, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Fill a block, then corrupt it: the read must come back as a
	// typed core.ErrUncorrectable.
	if _, err := c.WriteAt(make([]byte, core.BlockBytes), 0); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	fis[0].CorruptBlock(0)
	_, rerr := c.ReadAt(make([]byte, core.BlockBytes), 0)
	if !errors.Is(rerr, core.ErrUncorrectable) {
		t.Fatalf("remote corrupt read = %v, want core.ErrUncorrectable", rerr)
	}
	var re *RemoteError
	if !errors.As(rerr, &re) || re.Code != CodeUncorrectable {
		t.Fatalf("remote corrupt read = %#v, want RemoteError{CodeUncorrectable}", rerr)
	}
	if Classify(rerr) != ClassCorrupt {
		t.Fatalf("Classify(%v) = %v, want corrupt", rerr, Classify(rerr))
	}

	// A bounds violation classifies permanent.
	_, werr := c.WriteAt(make([]byte, 8), g.Size())
	if werr == nil {
		t.Fatal("out-of-bounds write succeeded")
	}
	if !errors.As(werr, &re) || re.Code != CodeGeneric {
		t.Fatalf("bounds error = %#v, want RemoteError{CodeGeneric}", werr)
	}
	if Classify(werr) != ClassPermanent {
		t.Fatalf("Classify(bounds) = %v, want permanent", Classify(werr))
	}
}

func TestErrFrameRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		code uint8
		is   error
	}{
		{fmt.Errorf("wrapped: %w", core.ErrUncorrectable), CodeUncorrectable, core.ErrUncorrectable},
		{fmt.Errorf("shard 3: %w", ErrShardUnavailable), CodeShardUnavailable, ErrShardUnavailable},
		{fmt.Errorf("shutting down: %w", ErrClosed), CodeClosed, ErrClosed},
		{errors.New("some bounds violation"), CodeGeneric, nil},
	}
	for _, tc := range cases {
		fr := errFrame(42, tc.err)
		resp, err := parseResponse(fr[8:])
		if err != nil {
			t.Fatalf("parseResponse: %v", err)
		}
		if resp.status != StatusErr || resp.id != 42 {
			t.Fatalf("frame decoded to status %d id %d", resp.status, resp.id)
		}
		got := decodeWireError(resp.payload)
		var re *RemoteError
		if !errors.As(got, &re) || re.Code != tc.code {
			t.Fatalf("decoded %#v, want code %d", got, tc.code)
		}
		if re.Msg != tc.err.Error() {
			t.Fatalf("message %q, want %q", re.Msg, tc.err.Error())
		}
		if tc.is != nil && !errors.Is(got, tc.is) {
			t.Fatalf("decoded error does not unwrap to %v", tc.is)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"nil", nil, ClassPermanent},
		{"uncorrectable", core.ErrUncorrectable, ClassCorrupt},
		{"wrapped uncorrectable", fmt.Errorf("x: %w", core.ErrUncorrectable), ClassCorrupt},
		{"shard unavailable", ErrShardUnavailable, ClassTransient},
		{"closed", ErrClosed, ClassTransient},
		{"eof", io.EOF, ClassPermanent},
		{"remote generic", &RemoteError{Code: CodeGeneric, Msg: "bounds"}, ClassPermanent},
		{"remote uncorrectable", &RemoteError{Code: CodeUncorrectable}, ClassCorrupt},
		{"remote shard", &RemoteError{Code: CodeShardUnavailable}, ClassTransient},
		{"conn reset", errors.New("read tcp: connection reset by peer"), ClassTransient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}
