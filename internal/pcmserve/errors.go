package pcmserve

import (
	"encoding/binary"
	"errors"
	"io"
	"time"

	"repro/internal/core"
)

// Wire error codes carried in the first byte of a StatusErr payload.
// They let errors.Is work across the network: the client rebuilds a
// RemoteError that unwraps to the matching sentinel, so the retry layer
// can classify failures without parsing message strings.
const (
	// CodeGeneric is any server error without a more specific sentinel
	// (bounds violations, protocol misuse): permanent, not retryable.
	CodeGeneric uint8 = 0
	// CodeUncorrectable maps to core.ErrUncorrectable: the block's
	// accumulated errors exceed ECC capability (data integrity loss).
	CodeUncorrectable uint8 = 1
	// CodeShardUnavailable maps to ErrShardUnavailable: the owning
	// shard is restarting or dead; idempotent requests may be retried.
	CodeShardUnavailable uint8 = 2
	// CodeClosed maps to ErrClosed: the serving stack is shutting down.
	CodeClosed uint8 = 3
	// CodeUnsupported maps to ErrUnsupported: the server does not
	// implement the requested op (an older build, or range ops disabled).
	// Permanent — callers fall back to a compatible code path.
	CodeUnsupported uint8 = 4
	// CodeOverloaded maps to ErrOverloaded: the request was shed by
	// admission control instead of queued. Transient; the payload
	// carries a uint32 retry-after hint in microseconds after the code
	// byte.
	CodeOverloaded uint8 = 5
	// CodeDeadlineExceeded maps to ErrDeadlineExceeded: the request's
	// wire deadline expired before the shard executed it (dropped at
	// dequeue, never run). Transient — but only worth retrying with a
	// fresh deadline.
	CodeDeadlineExceeded uint8 = 6
)

// ErrShardUnavailable reports a request that hit a shard whose owner
// goroutine is restarting after a panic (retryable) or has been
// declared dead after exhausting its restart budget.
var ErrShardUnavailable = errors.New("pcmserve: shard unavailable")

// ErrFrameCRC reports a frame whose body failed its CRC32-C check:
// bits flipped in flight. The stream cannot be resynchronized, so the
// connection is torn down; the fault is transient (reconnect and
// retry), never a data-integrity verdict on the stored bytes.
var ErrFrameCRC = errors.New("pcmserve: frame checksum mismatch")

// ErrUnsupported reports an op the server does not implement — an
// older peer, or one running with ServerConfig.DisableRangeOps. It is
// a capability verdict, not a fault: the node is alive and the caller
// should use a compatible code path (e.g. the per-slot anti-entropy
// sweep instead of Merkle exchange) rather than retry.
var ErrUnsupported = errors.New("pcmserve: operation not supported by peer")

// ErrOverloaded reports a request shed by admission control: the shard
// queue was saturated and the server chose to fail fast rather than
// block the connection. Transient — the server is alive and telling
// the caller to back off; use RetryAfter to read its hint.
var ErrOverloaded = errors.New("pcmserve: overloaded, request shed")

// ErrDeadlineExceeded reports a request whose wire deadline expired
// before a shard executed it: the server dropped it at dequeue (work
// nobody is waiting for is never run). Transient, but retrying with
// the same stale deadline would only be dropped again.
var ErrDeadlineExceeded = errors.New("pcmserve: request deadline exceeded")

// ErrRetryBudgetExhausted is a client-side verdict: the retry budget's
// token bucket is empty, so the retry layer stopped retrying to avoid
// amplifying an overload. It wraps the last underlying failure.
var ErrRetryBudgetExhausted = errors.New("pcmserve: retry budget exhausted")

// ErrConnFailed marks a connection-level failure: the transport died
// before a response arrived, so the request outcome is unknown. The
// underlying cause is recorded as text only — deliberately NOT wrapped —
// because a peer close surfaces as io.EOF, and wrapping it would make a
// dead connection satisfy errors.Is(err, io.EOF), the io.ReaderAt
// end-of-device marker.
var ErrConnFailed = errors.New("pcmserve: connection failed")

// RemoteError is a server-side failure reconstructed on the client. It
// unwraps to the sentinel matching its wire code, so
// errors.Is(err, core.ErrUncorrectable) and friends hold across the
// network.
type RemoteError struct {
	Code uint8
	Msg  string
	// RetryAfterUs is the server's back-off hint in microseconds,
	// carried only with CodeOverloaded (0 otherwise).
	RetryAfterUs uint32
}

func (e *RemoteError) Error() string { return e.Msg }

// Unwrap maps the wire code back to its sentinel.
func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case CodeUncorrectable:
		return core.ErrUncorrectable
	case CodeShardUnavailable:
		return ErrShardUnavailable
	case CodeClosed:
		return ErrClosed
	case CodeUnsupported:
		return ErrUnsupported
	case CodeOverloaded:
		return ErrOverloaded
	case CodeDeadlineExceeded:
		return ErrDeadlineExceeded
	}
	return nil
}

// OverloadError is the server-side form of an admission rejection,
// carrying the shard's estimate of when capacity will free up. The
// wire layer flattens it into a CodeOverloaded frame; clients see a
// RemoteError that unwraps to ErrOverloaded with RetryAfterUs set.
type OverloadError struct {
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return "pcmserve: overloaded, request shed (retry after " + e.RetryAfter.String() + ")"
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// RetryAfter extracts the back-off hint from an overload error — the
// server-side OverloadError or its client-side RemoteError image —
// and 0 when err carries none.
func RetryAfter(err error) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	var re *RemoteError
	if errors.As(err, &re) && re.Code == CodeOverloaded {
		return time.Duration(re.RetryAfterUs) * time.Microsecond
	}
	return 0
}

// errCode picks the wire code for a server-side error.
func errCode(err error) uint8 {
	switch {
	case errors.Is(err, core.ErrUncorrectable):
		return CodeUncorrectable
	case errors.Is(err, ErrShardUnavailable):
		return CodeShardUnavailable
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrUnsupported):
		return CodeUnsupported
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrDeadlineExceeded):
		return CodeDeadlineExceeded
	}
	return CodeGeneric
}

// errFrame encodes a StatusErr response: one code byte, then the
// message. CodeOverloaded inserts a uint32 retry-after hint (µs)
// between the code and the message.
func errFrame(id uint64, err error) []byte {
	code := errCode(err)
	if code == CodeOverloaded {
		us := uint64(RetryAfter(err) / time.Microsecond)
		if us > uint64(^uint32(0)) {
			us = uint64(^uint32(0))
		}
		var hint [4]byte
		binary.BigEndian.PutUint32(hint[:], uint32(us))
		return frame(id, StatusErr, []byte{code}, hint[:], []byte(err.Error()))
	}
	return frame(id, StatusErr, []byte{code}, []byte(err.Error()))
}

// decodeWireError rebuilds the typed error from a StatusErr payload.
func decodeWireError(payload []byte) error {
	if len(payload) == 0 {
		return &RemoteError{Code: CodeGeneric, Msg: "pcmserve: empty error payload"}
	}
	re := &RemoteError{Code: payload[0]}
	rest := payload[1:]
	if re.Code == CodeOverloaded && len(rest) >= 4 {
		re.RetryAfterUs = binary.BigEndian.Uint32(rest)
		rest = rest[4:]
	}
	re.Msg = string(rest)
	return re
}

// ErrorClass groups failures by what a caller should do about them.
type ErrorClass int

const (
	// ClassTransient failures (connection loss, shard restarts, server
	// shutdown) may succeed on retry, possibly after reconnecting.
	ClassTransient ErrorClass = iota
	// ClassPermanent failures (bounds violations, protocol misuse,
	// io.EOF device-end semantics) will fail identically on retry.
	ClassPermanent
	// ClassCorrupt failures carry core.ErrUncorrectable: the data is
	// lost and retrying cannot recover it; surface, never retry.
	ClassCorrupt
)

// String implements fmt.Stringer.
func (c ErrorClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// Classify maps an error returned by the client (or the Shards layer)
// to its retry class. io.EOF is the device-end marker of io.ReaderAt,
// not a failure, and classifies permanent so no retry loop chases it.
func Classify(err error) ErrorClass {
	switch {
	case err == nil:
		return ClassPermanent
	case errors.Is(err, core.ErrUncorrectable):
		return ClassCorrupt
	case errors.Is(err, ErrShardUnavailable):
		return ClassTransient
	case errors.Is(err, ErrClosed):
		return ClassTransient
	case errors.Is(err, ErrConnFailed):
		return ClassTransient
	case errors.Is(err, ErrFrameCRC):
		return ClassTransient
	case errors.Is(err, ErrUnsupported):
		return ClassPermanent
	case errors.Is(err, ErrOverloaded):
		// Shed, not executed: safe and worthwhile to retry after backing
		// off — but checked before the RemoteError fallback below, which
		// would call any in-band rejection permanent.
		return ClassTransient
	case errors.Is(err, ErrDeadlineExceeded):
		return ClassTransient
	case errors.Is(err, io.EOF):
		return ClassPermanent
	}
	var re *RemoteError
	if errors.As(err, &re) {
		// The server executed the request and rejected it; retrying the
		// same request gives the same answer.
		return ClassPermanent
	}
	// Everything else is connection-level (dial failures, resets,
	// truncated frames): retry after reconnecting.
	return ClassTransient
}
