package pcmserve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire format. Every message — request or response — is one
// length-prefixed, checksummed frame:
//
//	uint32  frame length N (bytes after the checksum, big-endian)
//	uint32  CRC32-C (Castagnoli) of the N body bytes
//	uint64  request id (chosen by the client, echoed by the server)
//	uint8   op (request) / status (response)
//	uint64  trace id (requests only; 0 = untraced)
//	...     op-specific body
//
// The checksum covers everything after itself (id, op/status, and the
// op-specific body — not the length word, whose corruption surfaces as
// a bounds error or a misparse of the next frame). A mismatch means
// bits flipped in flight; the reader cannot resynchronize mid-stream,
// so both sides treat it as a dead connection: the client fails over
// to ErrFrameCRC→ErrConnFailed (transient — the retry layer
// reconnects), the server drops the connection.
//
// The trace id is the observability correlation key: the client
// allocates it (or inherits it from a context via internal/obs), and
// the server propagates it through the shard queues into span records,
// the sampled trace log, and the per-shard flight recorder. Responses
// do not carry it — the client already knows the trace of each request
// id it has in flight.
//
// Request bodies:
//
//	OpRead        uint64 offset, uint32 length
//	OpWrite       uint64 offset, then the data to write (to frame end)
//	OpAdvance     uint64 IEEE-754 bits of the float64 seconds to advance
//	OpStats       empty
//	OpHashRange   uint64 offset, uint32 recordBytes, uint32 recordCount,
//	              uint32 fanout — digest recordCount records of
//	              recordBytes each, split into up to fanout contiguous
//	              chunks (Merkle anti-entropy descent)
//	OpReadStride  uint64 offset, uint32 stride, uint32 recordBytes,
//	              uint32 recordCount — read the first recordBytes of
//	              every stride-spaced record (vectored trailer fetch)
//
// Response bodies:
//
//	StatusOK   OpRead → the bytes read; OpWrite → uint32 bytes written;
//	           OpAdvance → empty; OpStats → JSON-encoded Stats;
//	           OpHashRange → per chunk: uint32 recordCount, uint8 flag
//	           (0 ok, 1 unreadable), uint64 FNV-1a digest of the chunk's
//	           raw bytes; OpReadStride → recordCount flag bytes (0 ok,
//	           1 unreadable), then the recordCount×recordBytes
//	           concatenated records (unreadable ones zero-filled)
//	StatusEOF  OpRead only: the bytes read before end-of-device
//	           (the client surfaces io.EOF)
//	StatusErr  uint8 sentinel code (see errors.go), then the UTF-8
//	           error message; the client rebuilds a RemoteError that
//	           unwraps to the coded sentinel, so errors.Is works
//	           across the network
//
// Request ids let many requests be in flight on one connection and let
// responses return out of order (pipelining); the client matches them
// back to waiters.

// Operations.
const (
	OpRead    uint8 = 1
	OpWrite   uint8 = 2
	OpAdvance uint8 = 3
	OpStats   uint8 = 4
	// OpHashRange and OpReadStride are the vectored anti-entropy ops
	// (added for cluster membership changes). Servers predating them —
	// or running with ServerConfig.DisableRangeOps — answer with a
	// CodeUnsupported error; clients fall back to per-slot sweeps.
	OpHashRange  uint8 = 5
	OpReadStride uint8 = 6
)

// opFlagExt marks a request frame that carries the extended header —
// 9 extra bytes after the trace id: a uint64 deadline budget in
// microseconds (0 = none) and a uint8 admission class. The flag is
// OR'd into the op byte, so an old server sees an unknown op, answers
// with a typed error, and the new client latches into legacy framing
// (version gating without touching the frame layout old peers parse).
const opFlagExt uint8 = 0x80

// extHeaderBytes is the size of the extended request header.
const extHeaderBytes = 8 + 1

// Admission classes carried in the extended header. Background work
// (refresh, scrub, read-repair, anti-entropy, membership transfers)
// is shed first under queue pressure; foreground keeps its priority.
const (
	classForeground uint8 = 0
	classBackground uint8 = 1
)

// wireExt is one request's extended header; nil means legacy framing.
type wireExt struct {
	deadlineUs uint64
	class      uint8
}

func (e *wireExt) flag() uint8 {
	if e == nil {
		return 0
	}
	return opFlagExt
}

func (e *wireExt) bytes() []byte {
	if e == nil {
		return nil
	}
	var b [extHeaderBytes]byte
	binary.BigEndian.PutUint64(b[:], e.deadlineUs)
	b[8] = e.class
	return b[:]
}

// Response statuses.
const (
	StatusOK  uint8 = 0
	StatusErr uint8 = 1
	StatusEOF uint8 = 2
)

// headerBytes is the fixed id+status prefix inside a response frame
// (and the minimum parseable frame).
const headerBytes = 8 + 1

// reqHeaderBytes is the fixed id+op+trace prefix inside a request
// frame.
const reqHeaderBytes = headerBytes + 8

// DefaultMaxFrame bounds a single frame (1 MiB of payload plus
// request header); larger reads and writes must be issued in pieces.
const DefaultMaxFrame = 1<<20 + reqHeaderBytes + 12

// castagnoli is the CRC32-C table shared by framers and parsers; the
// Castagnoli polynomial has hardware support (SSE4.2, ARMv8 CRC) and
// better error-detection properties than IEEE for short messages.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// readFrame reads one length-prefixed frame body (everything after the
// length and checksum words) into a fresh buffer, verifying the CRC.
func readFrame(r io.Reader, maxFrame uint32) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	wantCRC := binary.BigEndian.Uint32(hdr[4:])
	if n < headerBytes {
		return nil, fmt.Errorf("pcmserve: frame length %d below header size", n)
	}
	if n > maxFrame {
		return nil, fmt.Errorf("pcmserve: frame length %d exceeds limit %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if got := crc32.Checksum(buf, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("pcmserve: frame body CRC %08x, header says %08x: %w",
			got, wantCRC, ErrFrameCRC)
	}
	return buf, nil
}

// frame assembles a full frame (length prefix and checksum included)
// from the id, op/status byte, and body parts.
func frame(id uint64, opOrStatus uint8, body ...[]byte) []byte {
	n := headerBytes
	for _, b := range body {
		n += len(b)
	}
	out := make([]byte, 8+n)
	binary.BigEndian.PutUint32(out, uint32(n))
	binary.BigEndian.PutUint64(out[8:], id)
	out[16] = opOrStatus
	p := 17
	for _, b := range body {
		p += copy(out[p:], b)
	}
	binary.BigEndian.PutUint32(out[4:], crc32.Checksum(out[8:], castagnoli))
	return out
}

func u64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func u32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

func encodeReadReq(id, trace uint64, ext *wireExt, off int64, n uint32) []byte {
	return frame(id, OpRead|ext.flag(), u64(trace), ext.bytes(), u64(uint64(off)), u32(n))
}

func encodeWriteReq(id, trace uint64, ext *wireExt, off int64, data []byte) []byte {
	return frame(id, OpWrite|ext.flag(), u64(trace), ext.bytes(), u64(uint64(off)), data)
}

func encodeAdvanceReq(id, trace uint64, ext *wireExt, dt float64) []byte {
	return frame(id, OpAdvance|ext.flag(), u64(trace), ext.bytes(), u64(math.Float64bits(dt)))
}

func encodeStatsReq(id, trace uint64, ext *wireExt) []byte {
	return frame(id, OpStats|ext.flag(), u64(trace), ext.bytes())
}

func encodeHashRangeReq(id, trace uint64, ext *wireExt, off int64, recordBytes, count, fanout uint32) []byte {
	return frame(id, OpHashRange|ext.flag(), u64(trace), ext.bytes(), u64(uint64(off)), u32(recordBytes), u32(count), u32(fanout))
}

func encodeReadStrideReq(id, trace uint64, ext *wireExt, off int64, stride, recordBytes, count uint32) []byte {
	return frame(id, OpReadStride|ext.flag(), u64(trace), ext.bytes(), u64(uint64(off)), u32(stride), u32(recordBytes), u32(count))
}

// request is a decoded client request.
type request struct {
	id    uint64
	op    uint8
	trace uint64
	off   int64
	n     uint32  // OpRead: bytes wanted
	data  []byte  // OpWrite: payload (aliases the frame buffer)
	dt    float64 // OpAdvance

	// Extended header (opFlagExt requests only).
	ext        bool
	deadlineUs uint64 // remaining budget in µs at send time; 0 = none
	class      uint8  // classForeground or classBackground

	// Vectored anti-entropy ops.
	recordBytes uint32 // OpHashRange, OpReadStride: bytes per record
	count       uint32 // OpHashRange, OpReadStride: records covered
	fanout      uint32 // OpHashRange: max chunks in the reply
	stride      uint32 // OpReadStride: spacing between record starts
}

// parseRequest decodes a frame body produced by the encode*Req helpers.
func parseRequest(buf []byte) (request, error) {
	var req request
	if len(buf) < headerBytes {
		return req, fmt.Errorf("pcmserve: short request frame (%d bytes)", len(buf))
	}
	req.id = binary.BigEndian.Uint64(buf)
	req.op = buf[8]
	if len(buf) < reqHeaderBytes {
		return req, fmt.Errorf("pcmserve: request frame %d bytes, below header size %d", len(buf), reqHeaderBytes)
	}
	req.trace = binary.BigEndian.Uint64(buf[headerBytes:])
	body := buf[reqHeaderBytes:]
	if req.op&opFlagExt != 0 {
		if len(body) < extHeaderBytes {
			return req, fmt.Errorf("pcmserve: extended request frame %d bytes, below ext header size %d",
				len(buf), reqHeaderBytes+extHeaderBytes)
		}
		req.ext = true
		req.deadlineUs = binary.BigEndian.Uint64(body)
		req.class = body[8]
		req.op &^= opFlagExt
		body = body[extHeaderBytes:]
	}
	switch req.op {
	case OpRead:
		if len(body) != 12 {
			return req, fmt.Errorf("pcmserve: READ body %d bytes, want 12", len(body))
		}
		req.off = int64(binary.BigEndian.Uint64(body))
		req.n = binary.BigEndian.Uint32(body[8:])
	case OpWrite:
		if len(body) < 8 {
			return req, fmt.Errorf("pcmserve: WRITE body %d bytes, want ≥ 8", len(body))
		}
		req.off = int64(binary.BigEndian.Uint64(body))
		req.data = body[8:]
	case OpAdvance:
		if len(body) != 8 {
			return req, fmt.Errorf("pcmserve: ADVANCE body %d bytes, want 8", len(body))
		}
		req.dt = math.Float64frombits(binary.BigEndian.Uint64(body))
	case OpStats:
		if len(body) != 0 {
			return req, fmt.Errorf("pcmserve: STATS body %d bytes, want 0", len(body))
		}
	case OpHashRange:
		if len(body) != 20 {
			return req, fmt.Errorf("pcmserve: HASH_RANGE body %d bytes, want 20", len(body))
		}
		req.off = int64(binary.BigEndian.Uint64(body))
		req.recordBytes = binary.BigEndian.Uint32(body[8:])
		req.count = binary.BigEndian.Uint32(body[12:])
		req.fanout = binary.BigEndian.Uint32(body[16:])
	case OpReadStride:
		if len(body) != 20 {
			return req, fmt.Errorf("pcmserve: READ_STRIDE body %d bytes, want 20", len(body))
		}
		req.off = int64(binary.BigEndian.Uint64(body))
		req.stride = binary.BigEndian.Uint32(body[8:])
		req.recordBytes = binary.BigEndian.Uint32(body[12:])
		req.count = binary.BigEndian.Uint32(body[16:])
	default:
		return req, fmt.Errorf("pcmserve: unknown op %d", req.op)
	}
	return req, nil
}

// response is a decoded server response.
type response struct {
	id      uint64
	status  uint8
	payload []byte
}

// parseResponse decodes a frame body produced by frame().
func parseResponse(buf []byte) (response, error) {
	if len(buf) < headerBytes {
		return response{}, fmt.Errorf("pcmserve: short response frame (%d bytes)", len(buf))
	}
	return response{
		id:      binary.BigEndian.Uint64(buf),
		status:  buf[8],
		payload: buf[headerBytes:],
	}, nil
}
