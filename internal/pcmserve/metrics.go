package pcmserve

import (
	"repro/internal/obs"
)

// histBuckets is the number of latency buckets. Bucket 0 counts
// operations of at most 1 µs; bucket i counts latencies in
// (2^(i-1), 2^i] µs; the last bucket absorbs everything slower
// (2^22 µs ≈ 4.2 s and beyond). The boundaries are exported through
// HistBucketBoundsUs and the LatencyBucketBoundsUs field of
// ShardStats, so external consumers can label the buckets.
const histBuckets = 24

// ShardStats is one shard's observability snapshot.
type ShardStats struct {
	Shard  int    `json:"shard"`
	Device string `json:"device"`
	// Health is the supervisor state: "healthy", "degraded" (serving
	// again after a panic restart), or "dead" (restart budget spent;
	// requests fail fast).
	Health   string `json:"health"`
	Reads    uint64 `json:"reads"`
	Writes   uint64 `json:"writes"`
	Advances uint64 `json:"advances"`
	Errors   uint64 `json:"errors"`
	// Panics counts recovered owner-goroutine panics; Restarts counts
	// supervisor restarts of the owner loop.
	Panics   uint64 `json:"panics"`
	Restarts uint64 `json:"restarts"`
	// QueueDepth is the instantaneous bounded-queue occupancy; QueueCap
	// is its capacity (the backpressure limit).
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// SpareBlocksLeft and BlocksRemapped report the shard device's
	// FREE-p remapping occupancy (zero when remapping is disabled):
	// reserve blocks still available, and worn blocks remapped into the
	// reserve so far.
	SpareBlocksLeft int `json:"spare_blocks_left"`
	BlocksRemapped  int `json:"blocks_remapped"`
	// LatencyBucketBoundsUs are the histogram bucket upper bounds in
	// microseconds: bucket i of the latency histograms below counts
	// operations of at most LatencyBucketBoundsUs[i] µs (and above the
	// previous bound); the final bucket, at index
	// len(LatencyBucketBoundsUs), absorbs everything slower.
	LatencyBucketBoundsUs []uint64 `json:"latency_bucket_bounds_us"`
	// Latency histograms: per-bucket operation counts.
	ReadLatencyUs  []uint64 `json:"read_latency_us"`
	WriteLatencyUs []uint64 `json:"write_latency_us"`
}

// Stats is the full service snapshot returned by the STATS op and
// published through expvar.
type Stats struct {
	// Device describes the sharded stack (e.g. "4×3LC+wl+remap");
	// SizeBytes is the combined byte capacity.
	Device    string `json:"device"`
	SizeBytes int64  `json:"size_bytes"`

	// Request-level op counts as issued by clients (a request that
	// straddles shard boundaries counts once here but once per touched
	// shard in the per-shard counters).
	Reads    uint64 `json:"reads"`
	Writes   uint64 `json:"writes"`
	Advances uint64 `json:"advances"`
	StatsOps uint64 `json:"stats_ops"`
	// HashRanges and ReadStrides count the vectored anti-entropy ops
	// (Merkle digest exchanges and strided trailer fetches).
	HashRanges  uint64 `json:"hash_ranges"`
	ReadStrides uint64 `json:"read_strides"`
	Errors      uint64 `json:"errors"`

	// Bytes moved by SUCCESSFUL requests only — a failed read or write
	// does not accrue throughput.
	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`

	// ActiveConns is the number of currently open connections;
	// TotalConns counts every connection ever accepted.
	ActiveConns int64 `json:"active_conns"`
	TotalConns  int64 `json:"total_conns"`

	// SlowOps counts server-side traces that crossed the slow-op
	// threshold (see Observability.SlowOp).
	SlowOps uint64 `json:"slow_ops"`

	// Scrub reports background scrubber progress (zero when disabled).
	Scrub ScrubStats `json:"scrub"`

	// Integrity reports the BCH stored-block protection layer (zero
	// when integrity protection is disabled).
	Integrity IntegrityStats `json:"integrity"`

	// Live reports the drift/refresh state of live-mode shards (zero
	// when live mode is disabled).
	Live LiveStats `json:"live"`

	// Overload reports classed-admission load shedding.
	Overload OverloadStats `json:"overload"`

	Shards []ShardStats `json:"shards"`
}

// OverloadStats snapshots the classed-admission layer: work shed
// before execution (by class), work dropped expired at dequeue, and
// the peak instantaneous queue occupancy across shards.
type OverloadStats struct {
	// ShedBackground counts background requests (scrub, refresh,
	// anti-entropy, repair) refused at the high-water mark;
	// ShedForeground counts client requests fast-failed with
	// ErrOverloaded after the bounded admission wait.
	ShedBackground uint64 `json:"shed_background"`
	ShedForeground uint64 `json:"shed_foreground"`
	// ExpiredDequeued counts requests whose deadline had passed when
	// the shard owner dequeued them — dropped without execution.
	ExpiredDequeued uint64 `json:"expired_dequeued"`
	// QueuePressure is the peak len/cap ratio across shard queues at
	// snapshot time (1.0 = some queue completely full).
	QueuePressure float64 `json:"queue_pressure"`
}

// IntegrityStats aggregates the stored-block integrity layer's
// counters across shards. Enabled is false (and everything zero) when
// the service runs without BCH protection.
type IntegrityStats struct {
	Enabled bool `json:"enabled"`
	// Code names the protection, e.g. "bch10+p" (BCH with t=10 plus an
	// overall parity bit for guaranteed t+1 detection).
	Code string `json:"code"`
	// CorrectedBits counts data/check bits corrected during decodes;
	// ReadRepairs counts corrected blocks rewritten in place.
	CorrectedBits uint64 `json:"corrected_bits"`
	ReadRepairs   uint64 `json:"read_repairs"`
	// Uncorrectable counts beyond-capability decode failures; Spared is
	// the mark-and-spare events they consumed, and Escalated the blocks
	// force-remapped onto the FREE-p reserve after the spare budget.
	Uncorrectable uint64 `json:"uncorrectable"`
	Spared        uint64 `json:"spared"`
	Escalated     uint64 `json:"escalated"`
}

// serverMetrics holds the request-level instruments (one increment per
// client request, regardless of how many shards it fans out to). They
// are registered instruments in the obs registry, so the same counters
// feed the STATS snapshot, expvar, and /metrics.
type serverMetrics struct {
	reads, writes, advances, statsOps *obs.Counter
	hashRanges, readStrides           *obs.Counter
	errors                            *obs.Counter
	errByClass                        map[ErrorClass]*obs.Counter
	bytesRead, bytesWritten           *obs.Counter
	totalConns                        *obs.Counter
	frameCRCMismatch                  *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	const opsName = "pcmserve_requests_total"
	const opsHelp = "Client requests by wire op."
	m := &serverMetrics{
		reads:    reg.Counter(opsName, opsHelp, obs.L("op", "read")...),
		writes:   reg.Counter(opsName, opsHelp, obs.L("op", "write")...),
		advances: reg.Counter(opsName, opsHelp, obs.L("op", "advance")...),
		statsOps: reg.Counter(opsName, opsHelp, obs.L("op", "stats")...),
		hashRanges: reg.Counter(opsName, opsHelp,
			obs.L("op", "hash_range")...),
		readStrides: reg.Counter(opsName, opsHelp,
			obs.L("op", "read_stride")...),
		errors: reg.Counter("pcmserve_request_errors_total",
			"Failed client requests (any error class)."),
		errByClass: make(map[ErrorClass]*obs.Counter),
		bytesRead: reg.Counter("pcmserve_bytes_total",
			"Bytes moved by successful requests.", obs.L("direction", "read")...),
		bytesWritten: reg.Counter("pcmserve_bytes_total",
			"Bytes moved by successful requests.", obs.L("direction", "write")...),
		totalConns: reg.Counter("pcmserve_connections_total",
			"Connections accepted since start."),
		frameCRCMismatch: reg.Counter("pcmserve_frame_crc_mismatch_total",
			"Request frames whose CRC32-C check failed (connection dropped)."),
	}
	for _, c := range []ErrorClass{ClassTransient, ClassPermanent, ClassCorrupt} {
		m.errByClass[c] = reg.Counter("pcmserve_request_errors_by_class_total",
			"Failed client requests by retry class.", obs.L("class", c.String())...)
	}
	return m
}

// countOp accrues one client request. Byte throughput is accrued only
// for successful operations: a failed read or write counts as a
// request and an error, never as bytes moved.
func (m *serverMetrics) countOp(op uint8, n int, err error) {
	switch op {
	case OpRead:
		m.reads.Inc()
		if err == nil {
			m.bytesRead.Add(uint64(n))
		}
	case OpWrite:
		m.writes.Inc()
		if err == nil {
			m.bytesWritten.Add(uint64(n))
		}
	case OpAdvance:
		m.advances.Inc()
	case OpStats:
		m.statsOps.Inc()
	case OpHashRange:
		// n is bytes digested server-side; nothing crossed the wire, so
		// no throughput accrual.
		m.hashRanges.Inc()
	case OpReadStride:
		m.readStrides.Inc()
		if err == nil {
			m.bytesRead.Add(uint64(n))
		}
	}
	if err != nil {
		m.errors.Inc()
		if c, ok := m.errByClass[Classify(err)]; ok {
			c.Inc()
		}
	}
}
