package pcmserve

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket 0
// counts operations under 1 µs; bucket i counts latencies in
// [2^(i-1), 2^i) µs; the last bucket absorbs everything slower
// (2^22 µs ≈ 4.2 s and beyond).
const histBuckets = 24

// histogram is a lock-free power-of-two latency histogram. Shard
// goroutines observe into it; Snapshot readers race benignly (each
// bucket is individually atomic, totals may be momentarily skewed).
type histogram struct {
	b [histBuckets]atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for us > 0 && i < histBuckets-1 {
		us >>= 1
		i++
	}
	h.b[i].Add(1)
}

func (h *histogram) snapshot() []uint64 {
	out := make([]uint64, histBuckets)
	for i := range out {
		out[i] = h.b[i].Load()
	}
	return out
}

// ShardStats is one shard's observability snapshot.
type ShardStats struct {
	Shard  int    `json:"shard"`
	Device string `json:"device"`
	// Health is the supervisor state: "healthy", "degraded" (serving
	// again after a panic restart), or "dead" (restart budget spent;
	// requests fail fast).
	Health   string `json:"health"`
	Reads    uint64 `json:"reads"`
	Writes   uint64 `json:"writes"`
	Advances uint64 `json:"advances"`
	Errors   uint64 `json:"errors"`
	// Panics counts recovered owner-goroutine panics; Restarts counts
	// supervisor restarts of the owner loop.
	Panics   uint64 `json:"panics"`
	Restarts uint64 `json:"restarts"`
	// QueueDepth is the instantaneous bounded-queue occupancy; QueueCap
	// is its capacity (the backpressure limit).
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Latency histograms in power-of-two microsecond buckets (see
	// histBuckets for the bucket boundaries).
	ReadLatencyUs  []uint64 `json:"read_latency_us"`
	WriteLatencyUs []uint64 `json:"write_latency_us"`
}

// Stats is the full service snapshot returned by the STATS op and
// published through expvar.
type Stats struct {
	// Device describes the sharded stack (e.g. "4×3LC+wl+remap");
	// SizeBytes is the combined byte capacity.
	Device    string `json:"device"`
	SizeBytes int64  `json:"size_bytes"`

	// Request-level op counts as issued by clients (a request that
	// straddles shard boundaries counts once here but once per touched
	// shard in the per-shard counters).
	Reads    uint64 `json:"reads"`
	Writes   uint64 `json:"writes"`
	Advances uint64 `json:"advances"`
	StatsOps uint64 `json:"stats_ops"`
	Errors   uint64 `json:"errors"`

	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`

	// ActiveConns is the number of currently open connections;
	// TotalConns counts every connection ever accepted.
	ActiveConns int64 `json:"active_conns"`
	TotalConns  int64 `json:"total_conns"`

	// Scrub reports background scrubber progress (zero when disabled).
	Scrub ScrubStats `json:"scrub"`

	Shards []ShardStats `json:"shards"`
}

// serverMetrics holds the request-level counters (one increment per
// client request, regardless of how many shards it fans out to).
type serverMetrics struct {
	reads, writes, advances, statsOps, errors atomic.Uint64
	bytesRead, bytesWritten                   atomic.Uint64
	activeConns, totalConns                   atomic.Int64
}

func (m *serverMetrics) countOp(op uint8, n int, err error) {
	switch op {
	case OpRead:
		m.reads.Add(1)
		m.bytesRead.Add(uint64(n))
	case OpWrite:
		m.writes.Add(1)
		m.bytesWritten.Add(uint64(n))
	case OpAdvance:
		m.advances.Add(1)
	case OpStats:
		m.statsOps.Add(1)
	}
	if err != nil {
		m.errors.Add(1)
	}
}
