package pcmserve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

const simDay = 86400.0

// liveShards builds a live-mode Shards: shards × blocks drift-backed
// devices at the given sim interval and time scale.
func liveShards(t *testing.T, shards, blocks int, live LiveConfig) *Shards {
	t.Helper()
	g, err := NewShards(ShardsConfig{
		Shards: shards,
		Device: device.Config{Blocks: blocks, Seed: 99},
		Live:   &live,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// fillShards writes a distinct pattern to every block through the
// public WriteAt surface.
func fillShards(t *testing.T, g *Shards) {
	t.Helper()
	buf := make([]byte, core.BlockBytes)
	for off := int64(0); off < g.Size(); off += core.BlockBytes {
		for i := range buf {
			buf[i] = byte(off/core.BlockBytes*31) + byte(i)
		}
		if _, err := g.WriteAt(buf, off); err != nil {
			t.Fatalf("fill at %d: %v", off, err)
		}
	}
}

// readAllBlocks reads every block individually and returns how many
// failed with core.ErrUncorrectable (block-by-block so one bad block
// cannot mask another behind dispatch's first-error semantics).
func readAllBlocks(t *testing.T, g *Shards) int {
	t.Helper()
	buf := make([]byte, core.BlockBytes)
	bad := 0
	for off := int64(0); off < g.Size(); off += core.BlockBytes {
		_, err := g.ReadAt(buf, off)
		switch {
		case err == nil:
		case errors.Is(err, core.ErrUncorrectable):
			bad++
		default:
			t.Fatalf("read at %d: %v", off, err)
		}
	}
	return bad
}

// TestLiveDriftRefreshSoak is the acceptance soak: drift-backed 4LCo
// shards at the paper's 1020 s refresh interval, time-compressed so
// each wall second covers a quarter sim day, serving concurrent
// foreground reads and writes the whole time. Nothing may come back
// uncorrectable, refresh must actually cycle, and the debt/stall
// instruments must be visible in the metrics exposition. Run under
// -race this doubles as the scheduler/owner/budget concurrency soak.
func TestLiveDriftRefreshSoak(t *testing.T) {
	g := liveShards(t, 2, 64, LiveConfig{
		Levels:                 4,
		RefreshIntervalSeconds: 1020,
		TimeScale:              simDay / 4,
		WriteBudgetBytesPerSec: 1 << 20,
	})
	fillShards(t, g)

	// Foreground traffic: half the blocks are rewritten continuously,
	// the other half only ever refreshed — those depend on the
	// scheduler to survive the ~50 sim days this soak covers.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			buf := make([]byte, core.BlockBytes)
			n := g.Size() / core.BlockBytes
			for i := int64(worker); ; i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				blk := i % (n / 2)
				off := blk * core.BlockBytes
				if worker%2 == 0 {
					if _, err := g.ReadAt(buf, off); err != nil && !errors.Is(err, core.ErrUncorrectable) {
						t.Errorf("worker %d read: %v", worker, err)
						return
					}
				} else if _, err := g.WriteAt(buf, off); err != nil {
					t.Errorf("worker %d write: %v", worker, err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	if bad := readAllBlocks(t, g); bad != 0 {
		t.Fatalf("%d blocks uncorrectable under refresh at the paper interval", bad)
	}
	st := g.LiveStats()
	if !st.Enabled {
		t.Fatal("LiveStats not enabled on a live Shards")
	}
	if st.UncorrectableReads != 0 {
		t.Fatalf("%d uncorrectable foreground reads", st.UncorrectableReads)
	}
	if st.Passes == 0 {
		t.Fatalf("scheduler completed no passes: %+v", st)
	}
	if st.RefreshClean+st.RefreshCorrected == 0 {
		t.Fatalf("no refresh executed: %+v", st)
	}
	if st.RefreshUncorrectable != 0 {
		t.Fatalf("refresh found %d dead blocks at the paper interval", st.RefreshUncorrectable)
	}
	exp := g.Registry().Exposition()
	for _, metric := range []string{
		"pcmlive_refresh_debt", "pcmlive_refresh_debt_peak",
		"pcmlive_refresh_total", "pcmlive_deadline_miss_total",
		"pcmlive_foreground_stall_seconds",
	} {
		if !strings.Contains(exp, metric) {
			t.Errorf("metric %s missing from exposition", metric)
		}
	}
}

// TestLiveDriftWithoutRefreshLosesData is the control arm: refresh
// disabled, a 45-day drift jump, and reads start failing beyond ECC.
func TestLiveDriftWithoutRefreshLosesData(t *testing.T) {
	g := liveShards(t, 2, 64, LiveConfig{Levels: 4})
	fillShards(t, g)
	if err := g.Advance(45 * simDay); err != nil {
		t.Fatal(err)
	}
	bad := readAllBlocks(t, g)
	if bad == 0 {
		t.Fatal("45 drift-days without refresh lost no blocks")
	}
	st := g.LiveStats()
	if st.UncorrectableReads == 0 {
		t.Fatalf("uncorrectable reads not counted: %+v", st)
	}
	if st.DebtBlocks == 0 {
		t.Fatalf("45-day-old blocks show no refresh debt: %+v", st)
	}
}

// TestLiveSchedulerDebtAtTooLongInterval runs the scheduler at 10× the
// paper interval: it meets its own (too-lax) deadline, but the
// model-derived debt gauge exposes the misconfiguration.
func TestLiveSchedulerDebtAtTooLongInterval(t *testing.T) {
	g := liveShards(t, 1, 64, LiveConfig{
		Levels:                 4,
		RefreshIntervalSeconds: 10200,
		TimeScale:              simDay,
	})
	fillShards(t, g)
	time.Sleep(1200 * time.Millisecond)
	st := g.LiveStats()
	if st.DebtPeak == 0 {
		t.Fatalf("10×-interval run observed no refresh-debt peak: %+v", st)
	}
	if st.DebtBlocks == 0 {
		t.Fatalf("10×-interval run shows no instantaneous debt: %+v", st)
	}
}

// TestLiveThreeLCNeedsNoRefresh: the 3LCo organization is nonvolatile
// on any practical horizon — a year of drift with no refresh loses
// nothing and accrues no debt.
func TestLiveThreeLCNeedsNoRefresh(t *testing.T) {
	g := liveShards(t, 1, 32, LiveConfig{Levels: 3})
	fillShards(t, g)
	if err := g.Advance(365 * simDay); err != nil {
		t.Fatal(err)
	}
	if bad := readAllBlocks(t, g); bad != 0 {
		t.Fatalf("3LCo lost %d blocks after a drift-year", bad)
	}
	if st := g.LiveStats(); st.DebtBlocks != 0 {
		t.Fatalf("3LCo reports refresh debt: %+v", st)
	}
}

func TestLiveConfigValidation(t *testing.T) {
	base := ShardsConfig{
		Shards: 1,
		Device: device.Config{Blocks: 8},
	}
	cases := []struct {
		name string
		mut  func(*ShardsConfig)
	}{
		{"scrub interval", func(c *ShardsConfig) {
			c.Live = &LiveConfig{}
			c.ScrubInterval = time.Second
		}},
		{"verify scrub", func(c *ShardsConfig) {
			c.Live = &LiveConfig{}
			c.Integrity = &IntegrityConfig{}
			c.VerifyScrub = true
		}},
		{"bad levels", func(c *ShardsConfig) {
			c.Live = &LiveConfig{Levels: 2}
		}},
		{"negative interval", func(c *ShardsConfig) {
			c.Live = &LiveConfig{RefreshIntervalSeconds: -1}
		}},
		{"negative budget", func(c *ShardsConfig) {
			c.Live = &LiveConfig{WriteBudgetBytesPerSec: -1}
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if g, err := NewShards(cfg); err == nil {
			g.Close()
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLiveStatsZeroWhenDisabled(t *testing.T) {
	g, err := NewShards(ShardsConfig{
		Shards: 1,
		Device: device.Config{Blocks: 8, DisableWearout: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if st := g.LiveStats(); st.Enabled || st != (LiveStats{}) {
		t.Fatalf("non-live Shards reports live stats: %+v", st)
	}
}
