package pcmserve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeeds returns representative wire inputs: one valid frame per
// request op, a response frame, and hostile mutants (truncations,
// corrupted CRC, lying length prefixes). The same set seeds the fuzzer
// and backs the checked-in corpus under testdata/fuzz/FuzzDecodeFrame.
func fuzzSeeds() [][]byte {
	seeds := [][]byte{
		encodeReadReq(1, 0xABCD, nil, 128, 64),
		encodeWriteReq(2, 0, nil, 64, bytes.Repeat([]byte{0x5A}, 64)),
		encodeAdvanceReq(3, 7, nil, 0.5),
		encodeStatsReq(4, 0, nil),
		frame(5, StatusOK, bytes.Repeat([]byte{0x11}, 32)),
		errFrame(6, errors.New("some failure")),
	}
	// Truncated mid-header and mid-body.
	full := encodeReadReq(7, 0, nil, 0, 16)
	seeds = append(seeds, full[:3], full[:9], full[:len(full)-2])
	// Corrupted CRC word and corrupted body.
	badCRC := append([]byte(nil), full...)
	badCRC[5] ^= 0xFF
	badBody := append([]byte(nil), full...)
	badBody[len(badBody)-1] ^= 0x01
	seeds = append(seeds, badCRC, badBody)
	// Lying length prefixes: zero, below header, huge, and a length
	// claiming more bytes than follow.
	for _, n := range []uint32{0, headerBytes - 1, 1 << 31, 1 << 20} {
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		seeds = append(seeds, append(hdr[:], 0xEE, 0xEE))
	}
	// Vectored anti-entropy ops (appended so the mutant indices above
	// stay stable).
	seeds = append(seeds,
		encodeHashRangeReq(11, 0, nil, 160, 80, 1024, 8),
		encodeReadStrideReq(12, 0xFEED, nil, 64, 80, 16, 34),
	)
	// Extended-header requests: deadline budget + admission class after
	// the trace word, flagged in the op byte. One truncated mid-ext.
	seeds = append(seeds,
		encodeReadReq(13, 5, &wireExt{deadlineUs: 1500, class: classBackground}, 128, 64),
		encodeWriteReq(14, 0, &wireExt{}, 64, bytes.Repeat([]byte{0x7C}, 64)),
	)
	extFull := encodeReadReq(15, 0, &wireExt{deadlineUs: 9}, 0, 16)
	seeds = append(seeds, extFull[:len(extFull)-extHeaderBytes-9])
	return seeds
}

// FuzzDecodeFrame drives arbitrary bytes through the full inbound wire
// path — readFrame, then both parsers — asserting it never panics and
// that frames surviving the CRC check uphold the parser contracts.
func FuzzDecodeFrame(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		buf, err := readFrame(bytes.NewReader(data), DefaultMaxFrame)
		if err != nil {
			// Rejected input must carry a diagnosable cause: either the
			// typed CRC sentinel or an I/O/length error.
			if buf != nil {
				t.Fatal("readFrame returned a buffer alongside an error")
			}
			return
		}
		if len(buf) < headerBytes {
			t.Fatalf("readFrame accepted a %d-byte frame below header size", len(buf))
		}
		// Responses have no op-specific validation beyond the header, so
		// any CRC-valid frame must parse as one without error or panic.
		if _, err := parseResponse(buf); err != nil {
			t.Fatalf("parseResponse rejected a CRC-valid frame: %v", err)
		}
		req, err := parseRequest(buf)
		if err != nil {
			return
		}
		// A frame that parses as a request must re-encode to the exact
		// bytes read off the wire (the codec is canonical).
		var ext *wireExt
		if req.ext {
			ext = &wireExt{deadlineUs: req.deadlineUs, class: req.class}
		}
		var re []byte
		switch req.op {
		case OpRead:
			re = encodeReadReq(req.id, req.trace, ext, req.off, req.n)
		case OpWrite:
			re = encodeWriteReq(req.id, req.trace, ext, req.off, req.data)
		case OpAdvance:
			re = encodeAdvanceReq(req.id, req.trace, ext, req.dt)
		case OpStats:
			re = encodeStatsReq(req.id, req.trace, ext)
		case OpHashRange:
			re = encodeHashRangeReq(req.id, req.trace, ext, req.off, req.recordBytes, req.count, req.fanout)
		case OpReadStride:
			re = encodeReadStrideReq(req.id, req.trace, ext, req.off, req.stride, req.recordBytes, req.count)
		default:
			t.Fatalf("parseRequest accepted unknown op %d", req.op)
		}
		if !bytes.Equal(re[8:], buf) {
			// NaN float bit patterns are the one legitimate asymmetry:
			// Float64frombits/Float64bits round-trip every pattern, so
			// inequality here is a real codec bug.
			t.Fatalf("request did not re-encode canonically:\n got %x\nwant %x", re[8:], buf)
		}
	})
}

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzDecodeFrame from fuzzSeeds(). Run it after a wire
// format change:
//
//	PCMSERVE_WRITE_FUZZ_CORPUS=1 go test -run TestRegenerateFuzzCorpus ./internal/pcmserve
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("PCMSERVE_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set PCMSERVE_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFuzzSeedsStillParse pins the seed corpus to the current wire
// format: the valid seeds must parse, the mutants must be rejected with
// the right cause. If the format changes, regenerate testdata/fuzz.
func TestFuzzSeedsStillParse(t *testing.T) {
	seeds := fuzzSeeds()
	for i := 0; i < 6; i++ {
		if _, err := readFrame(bytes.NewReader(seeds[i]), DefaultMaxFrame); err != nil {
			t.Errorf("valid seed %d rejected: %v", i, err)
		}
	}
	for i, wantCRC := range map[int]bool{6: false, 7: false, 8: false, 9: true, 10: true} {
		_, err := readFrame(bytes.NewReader(seeds[i]), DefaultMaxFrame)
		if err == nil {
			t.Errorf("mutant seed %d accepted", i)
			continue
		}
		if got := errors.Is(err, ErrFrameCRC); got != wantCRC {
			t.Errorf("mutant seed %d: ErrFrameCRC = %v, want %v (err: %v)", i, got, wantCRC, err)
		}
		if wantCRC {
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Errorf("mutant seed %d: want a truncation error, got %v", i, err)
		}
	}
}
