package pcmserve

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultinject"
)

// newIntegrityShards builds a single-shard integrity-protected stack
// with a fault injector UNDER the integrity layer, so armed stored-bit
// flips land beneath the decode ladder.
func newIntegrityShards(t *testing.T, tbits int, verify bool) (*Shards, *faultinject.Device) {
	t.Helper()
	var fi *faultinject.Device
	g, err := NewShards(ShardsConfig{
		Shards: 1,
		Device: device.Config{Blocks: 24, Seed: 42, ReserveBlocks: 4, DisableWearout: true},
		WrapDevice: func(shard int, dev ShardDevice) ShardDevice {
			fi = faultinject.New(dev, faultinject.Plan{Seed: 7})
			return fi
		},
		Integrity:   &IntegrityConfig{T: tbits},
		VerifyScrub: verify,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, fi
}

func TestIntegrityLayoutAndRoundTrip(t *testing.T) {
	g, _ := newIntegrityShards(t, 1, false)
	// 24 raw blocks, BCH-1+p = 11 parity bits = 2 sideband bytes per
	// block: 24·64/66 = 23 protected blocks.
	if got, want := g.Size(), int64(23*core.BlockBytes); got != want {
		t.Fatalf("protected size = %d, want %d", got, want)
	}
	// Unaligned write/read round-trip across block boundaries.
	data := make([]byte, 3*core.BlockBytes+17)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	const off = 5*core.BlockBytes - 11
	if _, err := g.WriteAt(data, off); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := g.ReadAt(got, off); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("round-trip mismatch through the integrity layer")
	}
	// Name advertises the protection level.
	if name := g.Name(); !bytes.Contains([]byte(name), []byte("bch1+p(")) {
		t.Fatalf("stack name %q does not advertise the integrity layer", name)
	}
}

func TestIntegrityReadRepair(t *testing.T) {
	g, fi := newIntegrityShards(t, 1, false)
	integ := g.shards[0].integ

	want := bytes.Repeat([]byte{0xC3}, core.BlockBytes)
	if _, err := g.WriteAt(want, 3*core.BlockBytes); err != nil {
		t.Fatalf("write: %v", err)
	}

	// One stored bit flips under the integrity layer; the read must
	// correct it, return proven-correct data, and repair in place.
	fi.FlipStoredBits(3, 1)
	got := make([]byte, core.BlockBytes)
	if _, err := g.ReadAt(got, 3*core.BlockBytes); err != nil {
		t.Fatalf("read over flipped bit: %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("read returned corrupt data instead of correcting")
	}
	if fi.Stats().BitFlips != 1 {
		t.Fatalf("fault injector flipped %d bits, want 1", fi.Stats().BitFlips)
	}
	if v := integ.correctedBits.Value(); v != 1 {
		t.Fatalf("corrected-bit counter = %d, want 1", v)
	}
	if v := integ.readRepairs.Value(); v != 1 {
		t.Fatalf("read-repair counter = %d, want 1", v)
	}

	// The repair was physical: the next read decodes clean (no new
	// repair) and still matches.
	if _, err := g.ReadAt(got, 3*core.BlockBytes); err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("re-read mismatch after repair")
	}
	if v := integ.readRepairs.Value(); v != 1 {
		t.Fatalf("read-repair counter moved to %d on a clean re-read", v)
	}

	// The correction left a repair event in the flight recorder.
	found := false
	for _, ev := range g.RecorderSnapshots()[0].Events {
		if ev.Op == opRepair && ev.Block == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("no repair event in the flight recorder")
	}
}

// TestIntegrityEscalation drives one block through the full ladder:
// repeated beyond-capability corruption consumes the mark-and-spare
// budget (6 spare pairs), then forces a FREE-p remap — the spare-block
// gauge drops — and every read surfaces a typed error, never garbage.
func TestIntegrityEscalation(t *testing.T) {
	g, fi := newIntegrityShards(t, 1, false)
	integ := g.shards[0].integ

	payload := bytes.Repeat([]byte{0x7E}, core.BlockBytes)
	buf := make([]byte, core.BlockBytes)
	const block = 5
	spares0 := g.Snapshot()[0].SpareBlocksLeft

	for event := 1; event <= 7; event++ {
		if _, err := g.WriteAt(payload, block*core.BlockBytes); err != nil {
			t.Fatalf("event %d: write: %v", event, err)
		}
		// T=1, so two flipped bits are beyond capability — and with the
		// extended code, guaranteed detected.
		fi.FlipStoredBits(block, 2)
		_, err := g.ReadAt(buf, block*core.BlockBytes)
		if !errors.Is(err, core.ErrUncorrectable) {
			t.Fatalf("event %d: read = %v, want ErrUncorrectable", event, err)
		}
		if Classify(err) != ClassCorrupt {
			t.Fatalf("event %d: classified %v, want corrupt", event, Classify(err))
		}
	}

	// Events 1–6 marked spare pairs; event 7 exceeded the budget and
	// remapped the block onto the FREE-p reserve.
	if v := integ.spared.Value(); v != 6 {
		t.Fatalf("spared = %d, want 6", v)
	}
	if v := integ.escalated.Value(); v != 1 {
		t.Fatalf("escalated = %d, want 1", v)
	}
	if spares := g.Snapshot()[0].SpareBlocksLeft; spares != spares0-1 {
		t.Fatalf("spare blocks = %d, want %d (gauge must drop on remap)", spares, spares0-1)
	}

	// The block serves again: content was replaced (zeros, valid check
	// bits), and writes stick on the fresh physical block.
	if _, err := g.ReadAt(buf, block*core.BlockBytes); err != nil {
		t.Fatalf("post-remap read: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, core.BlockBytes)) {
		t.Fatal("replaced block is not zeroed")
	}
	if _, err := g.WriteAt(payload, block*core.BlockBytes); err != nil {
		t.Fatalf("post-remap write: %v", err)
	}
	if _, err := g.ReadAt(buf, block*core.BlockBytes); err != nil {
		t.Fatalf("post-remap re-read: %v", err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("post-remap round-trip mismatch")
	}
}

// TestVerifyScrubOutcomes exercises the decode-based scrub pass
// synchronously through a manually driven scrubber.
func TestVerifyScrubOutcomes(t *testing.T) {
	g, fi := newIntegrityShards(t, 1, true)
	sc := newScrubber(g, time.Minute) // never started: driven by hand

	payload := bytes.Repeat([]byte{0x42}, core.BlockBytes)
	for b := int64(0); b < 3; b++ {
		if _, err := g.WriteAt(payload, b*core.BlockBytes); err != nil {
			t.Fatalf("write block %d: %v", b, err)
		}
	}

	sc.scrubOne(0) // clean
	fi.FlipStoredBits(1, 1)
	sc.scrubOne(1) // corrected
	fi.FlipStoredBits(2, 2)
	sc.scrubOne(2) // beyond BCH-1: uncorrectable, escalated

	st := sc.snapshot()
	if st.VerifyClean != 1 || st.VerifyCorrected != 1 || st.VerifyUncorrectable != 1 {
		t.Fatalf("verify outcomes = %d/%d/%d, want 1/1/1",
			st.VerifyClean, st.VerifyCorrected, st.VerifyUncorrectable)
	}
	// The verify pass repaired block 1 in place...
	buf := make([]byte, core.BlockBytes)
	if _, err := g.ReadAt(buf, 1*core.BlockBytes); err != nil {
		t.Fatalf("read repaired block: %v", err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("verify pass did not repair the corrected block")
	}
	// ...and replaced block 2 (typed loss already accounted).
	if _, err := g.ReadAt(buf, 2*core.BlockBytes); err != nil {
		t.Fatalf("read replaced block: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, core.BlockBytes)) {
		t.Fatal("uncorrectable block was not replaced with zeros")
	}
	if v := g.shards[0].integ.spared.Value(); v != 1 {
		t.Fatalf("integrity spare accounting = %d, want 1", v)
	}
}
