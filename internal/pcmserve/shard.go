package pcmserve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bch"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/pcmlive"
)

// ShardDevice is the per-shard device contract: the byte-addressable
// surface of device.Device, which internal/faultinject can wrap to
// inject failures underneath the serving stack.
type ShardDevice interface {
	io.ReaderAt
	io.WriterAt
	Advance(dt float64) error
	Name() string
}

// ShardsConfig assembles a sharded device.
type ShardsConfig struct {
	// Shards is the number of independent device instances the byte
	// address space is partitioned across (default 4).
	Shards int
	// QueueDepth bounds each shard's request queue; a full queue blocks
	// legacy enqueuers, while classed admission sheds background work at
	// the high-water mark and fast-fails sheddable foreground requests
	// after AdmitWait (default 64).
	QueueDepth int
	// AdmitWait bounds how long a sheddable foreground request may wait
	// for queue space before admission fails it with ErrOverloaded
	// (default 2ms). Legacy requests (no extended header) keep blocking
	// indefinitely — old clients rely on that backpressure.
	AdmitWait time.Duration
	// BackgroundHighWater is the queue occupancy fraction at or above
	// which background work (scrub, refresh, and wire requests tagged
	// background) is shed instead of queued, in (0, 1] (default 0.5).
	// Background yields well before foreground feels pressure.
	BackgroundHighWater float64
	// Device configures each shard's device. Blocks is the PER-SHARD
	// block count; the sharded device's total capacity is
	// Shards × Blocks × 64 bytes. Seed is decorrelated per shard.
	Device device.Config

	// WrapDevice, when non-nil, wraps each freshly built shard device —
	// the hook internal/faultinject uses to sit underneath the shard
	// owner goroutine.
	WrapDevice func(shard int, dev ShardDevice) ShardDevice

	// MaxRestarts bounds how many times a shard owner goroutine is
	// restarted after panics before the shard is declared dead
	// (default 8; negative means never restart).
	MaxRestarts int
	// HealAfter is the number of completed operations after a restart
	// before a degraded shard is considered healthy again (default 16).
	HealAfter int

	// ScrubInterval enables the background scrubber: one block is
	// scrubbed (read, wearout-accounted, rewritten) every interval,
	// walking the whole logical space round-robin (0 disables).
	ScrubInterval time.Duration

	// Live, when non-nil, replaces each shard's device.Device with a
	// drift-backed pcmlive.Device and the fixed-cadence scrubber with
	// the budgeted pcmlive.Scheduler. Device.Blocks and Device.Seed
	// still apply (per-shard block count and decorrelated seeding); the
	// other device.Config knobs are ignored — the live device models
	// drift only. Mutually exclusive with ScrubInterval and VerifyScrub
	// (see LiveConfig).
	Live *LiveConfig

	// Integrity enables per-block extended-BCH protection with sideband
	// check bits (nil disables). It shrinks the client-visible capacity:
	// each shard's usable blocks drop to what its raw blocks can fund
	// once every 64-byte block also stores its check bits.
	Integrity *IntegrityConfig
	// VerifyScrub switches the scrubber from blind read-rewrite to a
	// decode pass that distinguishes clean, corrected, and uncorrectable
	// blocks, rewriting only when there is something to fix. Requires
	// Integrity.
	VerifyScrub bool

	// Obs tunes the observability layer (nil → defaults: a private
	// metrics registry, sampled traces, 256-entry flight recorders,
	// dumps to stderr).
	Obs *Observability
}

// Health is a shard's lifecycle state.
type Health int32

const (
	// Healthy shards serve normally.
	Healthy Health = iota
	// Degraded shards are serving again after a panic restart but have
	// not yet completed HealAfter operations.
	Degraded
	// Dead shards exhausted their restart budget; requests touching
	// them fail fast with ErrShardUnavailable.
	Dead
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("Health(%d)", int32(h))
}

// Shard-queue-internal operation codes (never on the wire).
const (
	opScrub   uint8 = 0xF0
	opRefresh uint8 = 0xF2 // 0xF1 is integrity's opRepair
)

// shardReq is one shard-local unit of work, always fully contained in
// the owning shard's address range.
type shardReq struct {
	op    uint8
	off   int64   // shard-local byte offset
	buf   []byte  // read destination / write source
	dt    float64 // OpAdvance only
	pos   int     // offset of buf within the caller's buffer
	trace uint64  // request trace ID (0 = untraced)
	enq   time.Time
	// deadline is the request's absolute expiry; the owner drops the
	// request at dequeue (counted, never executed) once it has passed.
	// Zero means none.
	deadline time.Time
	// scrubSeq0 is the shard's scrub sequence at enqueue time; the
	// difference at completion is the scrub interference the request
	// observed.
	scrubSeq0 uint64
	done      chan<- shardResult
}

type shardResult struct {
	pos int
	n   int
	err error
	// scrub reports the outcome of an opScrub request.
	scrub scrubOutcome
	// live reports the outcome of an opRefresh request.
	live pcmlive.Outcome
	// Span detail for traced requests: queue wait, device service
	// time, and scrub ops interleaved since enqueue.
	wait    time.Duration
	service time.Duration
	scrubs  uint32
}

// scrubOutcome describes what one block scrub found and did.
type scrubOutcome int

const (
	scrubNone scrubOutcome = iota
	// scrubRepaired: the block read back correctable and was rewritten
	// at nominal levels (drift cleared).
	scrubRepaired
	// scrubUncorrectable: the read was beyond ECC; the block was
	// rewritten (content replaced) and must be wearout-accounted.
	scrubUncorrectable

	// Verify-pass outcomes (integrity layer + VerifyScrub). The
	// integrity ladder has already done any repairing, spare accounting,
	// and remapping by the time these are reported, so the scrubber
	// only counts them.
	scrubVerifyClean
	scrubVerifyCorrected
	scrubVerifyUncorrectable
)

// opMeta carries a request's admission attributes into dispatch: who
// is waiting (trace), until when (deadline), at what priority (class),
// and whether admission may fast-fail it instead of blocking.
type opMeta struct {
	trace    uint64
	deadline time.Time // zero = none
	class    uint8     // classForeground or classBackground
	// sheddable marks foreground requests whose caller understands
	// ErrOverloaded (extended-header wire requests); legacy callers get
	// blocking backpressure instead.
	sheddable bool
	// ctx, when non-nil, lets a blocked enqueue abandon the wait on
	// cancellation instead of blocking forever on a full queue.
	ctx context.Context
}

// admitInstruments are the Shards-wide overload counters, shared by
// every shard.
type admitInstruments struct {
	shedBg, shedFg *obs.Counter
	expired        *obs.Counter
}

// shard owns one ShardDevice. Exactly one goroutine (runOnce inside
// supervise) touches the device at a time, honouring the
// internal/device concurrency contract; the supervisor restarts that
// goroutine's work loop when it panics.
type shard struct {
	index     int
	dev       ShardDevice
	ch        chan shardReq
	healAfter uint64

	// Classed admission: shared shed/expired counters, the background
	// high-water mark (queue length at which background work sheds),
	// the bounded wait for sheddable foreground enqueues, and an EWMA
	// of recent service time feeding the retry-after hint.
	adm           *admitInstruments
	bgHighWater   int
	admitWait     time.Duration
	serviceEwmaNs atomic.Int64

	// integ is the shard's integrity layer (nil when disabled);
	// verifyScrub selects the decode-based scrub pass.
	integ       *integrityDevice
	verifyScrub bool

	// liveDev is the shard's raw drift-backed device (nil outside live
	// mode). opRefresh targets it directly: refresh is a physical
	// operation on raw blocks, underneath any integrity mapping.
	liveDev *pcmlive.Device

	o   *serveObs
	rec *obs.FlightRecorder

	reads, writes, advances, errCount *obs.Counter
	readLat, writeLat                 *obs.Histogram

	health   atomic.Int32
	panics   atomic.Uint64
	restarts atomic.Uint64
	okStreak atomic.Uint64 // completed ops since the last restart

	// scrubSeq counts completed opScrub requests; the delta across a
	// request's queue residence is its scrub interference.
	scrubSeq atomic.Uint64

	// Cached device-level gauges, refreshed by the owner goroutine
	// after each operation so gauge collection never touches the
	// single-goroutine device from a scrape.
	remap          remapReporter // nil when the device stack has no remapping
	spareLeft      atomic.Int64
	blocksRemapped atomic.Int64

	// cur is the request being handled; only the owner goroutine (and
	// its own recover) touches it, so no lock is needed.
	cur *shardReq
}

func (s *shard) healthState() Health { return Health(s.health.Load()) }

// initInstruments registers the shard's metrics in the registry.
func (s *shard) initInstruments() {
	reg := s.o.reg
	si := strconv.Itoa(s.index)
	const opsName = "pcmserve_shard_ops_total"
	const opsHelp = "Operations executed by each shard's owner goroutine."
	s.reads = reg.Counter(opsName, opsHelp, obs.L("shard", si, "op", "read")...)
	s.writes = reg.Counter(opsName, opsHelp, obs.L("shard", si, "op", "write")...)
	s.advances = reg.Counter(opsName, opsHelp, obs.L("shard", si, "op", "advance")...)
	s.errCount = reg.Counter("pcmserve_shard_errors_total",
		"Failed shard operations (excluding io.EOF).", obs.L("shard", si)...)
	const latName = "pcmserve_shard_op_latency_seconds"
	const latHelp = "Device operation latency by shard and op."
	s.readLat = reg.Histogram(latName, latHelp, latBoundsSeconds, obs.L("shard", si, "op", "read")...)
	s.writeLat = reg.Histogram(latName, latHelp, latBoundsSeconds, obs.L("shard", si, "op", "write")...)
	reg.GaugeFunc("pcmserve_shard_health",
		"Supervisor state: 0 healthy, 1 degraded, 2 dead.",
		func() float64 { return float64(s.health.Load()) }, obs.L("shard", si)...)
	reg.GaugeFunc("pcmserve_shard_queue_depth",
		"Instantaneous bounded-queue occupancy.",
		func() float64 { return float64(len(s.ch)) }, obs.L("shard", si)...)
	reg.GaugeFunc("pcmserve_shard_queue_capacity",
		"Bounded-queue capacity (the backpressure limit).",
		func() float64 { return float64(cap(s.ch)) }, obs.L("shard", si)...)
	reg.GaugeFunc("pcmserve_shard_panics_total",
		"Recovered owner-goroutine panics.",
		func() float64 { return float64(s.panics.Load()) }, obs.L("shard", si)...)
	reg.GaugeFunc("pcmserve_shard_restarts_total",
		"Supervisor restarts of the owner loop.",
		func() float64 { return float64(s.restarts.Load()) }, obs.L("shard", si)...)
	reg.GaugeFunc("pcmserve_shard_spare_blocks",
		"FREE-p reserve blocks still available on the shard device.",
		func() float64 { return float64(s.spareLeft.Load()) }, obs.L("shard", si)...)
	reg.GaugeFunc("pcmserve_shard_blocks_remapped",
		"Worn blocks remapped into the FREE-p reserve so far.",
		func() float64 { return float64(s.blocksRemapped.Load()) }, obs.L("shard", si)...)
}

// refreshDeviceGauges re-caches remap occupancy. Called from the owner
// goroutine (and once before it starts), so the device is never
// touched concurrently.
func (s *shard) refreshDeviceGauges() {
	if s.remap == nil {
		return
	}
	left, remapped := s.remap.RemapStats()
	s.spareLeft.Store(int64(left))
	s.blocksRemapped.Store(int64(remapped))
}

// dump emits the flight-recorder window to the configured sink.
func (s *shard) dump(reason string) {
	s.o.sink(obs.Dump{
		Shard:  s.index,
		Reason: reason,
		Time:   time.Now().UnixNano(),
		Events: s.rec.Snapshot(),
	})
}

// retryAfterHint estimates when queue capacity frees up: the recent
// per-op service EWMA times the work queued ahead, clamped to
// [1ms, 500ms] so a cold EWMA or a monster queue still yields a sane
// back-off.
func (s *shard) retryAfterHint() time.Duration {
	ewma := time.Duration(s.serviceEwmaNs.Load())
	if ewma <= 0 {
		ewma = time.Millisecond
	}
	d := ewma * time.Duration(len(s.ch)+1)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	return d
}

// admit applies classed admission for one shard-local request.
// Background work sheds at the high-water mark; sheddable foreground
// waits at most admitWait; legacy foreground blocks — but abandons the
// wait if its context dies first (a full queue must never pin a
// cancelled request's goroutine forever).
func (s *shard) admit(req shardReq, meta opMeta) error {
	var ctxDone <-chan struct{}
	if meta.ctx != nil {
		ctxDone = meta.ctx.Done()
	}
	if meta.class == classBackground {
		if len(s.ch) < s.bgHighWater {
			select {
			case s.ch <- req:
				return nil
			default:
			}
		}
		s.adm.shedBg.Inc()
		return &OverloadError{RetryAfter: s.retryAfterHint()}
	}
	if meta.sheddable {
		select {
		case s.ch <- req:
			return nil
		default:
		}
		timer := time.NewTimer(s.admitWait)
		defer timer.Stop()
		select {
		case s.ch <- req:
			return nil
		case <-ctxDone:
			return enqueueAbandoned(meta.ctx)
		case <-timer.C:
			s.adm.shedFg.Inc()
			return &OverloadError{RetryAfter: s.retryAfterHint()}
		}
	}
	if ctxDone == nil {
		s.ch <- req
		return nil
	}
	select {
	case s.ch <- req:
		return nil
	case <-ctxDone:
		return enqueueAbandoned(meta.ctx)
	}
}

// enqueueAbandoned types the error for an enqueue wait cut short by
// context cancellation.
func enqueueAbandoned(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("pcmserve: enqueue abandoned: %w", ErrDeadlineExceeded)
	}
	return fmt.Errorf("pcmserve: enqueue abandoned: %w", ctx.Err())
}

// handle executes one request against the device and replies on done.
func (s *shard) handle(req shardReq) {
	start := time.Now()
	var wait time.Duration
	if !req.enq.IsZero() {
		wait = start.Sub(req.enq)
	}
	var n int
	var err error
	outcome := scrubNone
	var liveOut pcmlive.Outcome
	switch req.op {
	case OpRead:
		n, err = s.dev.ReadAt(req.buf, req.off)
		s.reads.Inc()
		s.readLat.ObserveTrace(time.Since(start).Seconds(), req.trace)
	case OpWrite:
		n, err = s.dev.WriteAt(req.buf, req.off)
		s.writes.Inc()
		s.writeLat.ObserveTrace(time.Since(start).Seconds(), req.trace)
	case OpAdvance:
		err = s.dev.Advance(req.dt)
		s.advances.Inc()
	case opScrub:
		if s.integ != nil && s.verifyScrub {
			outcome, err = s.integ.verifyBlock(req.off)
		} else {
			outcome, err = s.scrubBlock(req.off)
		}
		s.scrubSeq.Add(1)
	case opRefresh:
		if s.liveDev == nil {
			err = fmt.Errorf("pcmserve: shard %d: refresh on non-live device", s.index)
		} else {
			liveOut, err = s.liveDev.RefreshBlock(int(req.off / core.BlockBytes))
		}
		// Refresh counts as scrub interference on foreground requests:
		// it occupies the owner exactly like an opScrub would.
		s.scrubSeq.Add(1)
	default:
		err = fmt.Errorf("pcmserve: shard %d: unknown op %d", s.index, req.op)
	}
	service := time.Since(start)
	// EWMA (α=1/8) of service time, feeding the retry-after hint; only
	// the owner goroutine writes it, so load-modify-store is safe.
	if old := s.serviceEwmaNs.Load(); old == 0 {
		s.serviceEwmaNs.Store(int64(service))
	} else {
		s.serviceEwmaNs.Store(old + (int64(service)-old)/8)
	}
	if err != nil && err != io.EOF {
		s.errCount.Inc()
	}
	s.rec.Record(obs.Event{
		TraceID: req.trace,
		Op:      req.op,
		Block:   req.off / core.BlockBytes,
		Latency: service,
		Class:   eventClass(err),
	})
	s.refreshDeviceGauges()
	if err != nil && s.o.dumpOnUncorrectable && errors.Is(err, core.ErrUncorrectable) {
		s.dump("uncorrectable error")
	}
	if s.healthState() == Degraded {
		if s.okStreak.Add(1) >= s.healAfter {
			s.health.CompareAndSwap(int32(Degraded), int32(Healthy))
		}
	}
	req.done <- shardResult{
		pos: req.pos, n: n, err: err, scrub: outcome, live: liveOut,
		wait: wait, service: service,
		scrubs: uint32(s.scrubSeq.Load() - req.scrubSeq0),
	}
}

// scrubBlock performs one atomic read-correct-rewrite cycle on the
// 64-byte block at shard-local offset off — the refresh operation of
// the paper's Section 4, executed inside the owner goroutine so it
// serializes with client traffic and can never interleave with a
// concurrent write. A correctable block is rewritten as read (returning
// every cell to nominal resistance); an uncorrectable one has its
// content replaced, containing the loss to this block, and is reported
// for mark-and-spare accounting.
func (s *shard) scrubBlock(off int64) (scrubOutcome, error) {
	buf := make([]byte, core.BlockBytes)
	_, rerr := s.dev.ReadAt(buf, off)
	switch {
	case rerr == nil:
		if _, werr := s.dev.WriteAt(buf, off); werr != nil {
			return scrubNone, fmt.Errorf("pcmserve: scrub rewrite at %d: %w", off, werr)
		}
		return scrubRepaired, nil
	case errors.Is(rerr, core.ErrUncorrectable):
		// The read buffer may hold garbage; rewrite zeros so the block
		// is usable again (data loss is the caller-visible event).
		zero := make([]byte, core.BlockBytes)
		if _, werr := s.dev.WriteAt(zero, off); werr != nil {
			return scrubUncorrectable, fmt.Errorf("pcmserve: scrub replace at %d: %w", off, werr)
		}
		return scrubUncorrectable, nil
	default:
		return scrubNone, fmt.Errorf("pcmserve: scrub read at %d: %w", off, rerr)
	}
}

// runOnce drains the queue until the channel closes (clean shutdown,
// returns false) or a panic escapes the device (returns true). A panic
// mid-request fails that request with ErrShardUnavailable so its waiter
// is never stranded; queued requests stay queued for the restarted
// loop.
func (s *shard) runOnce() (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			s.panics.Add(1)
			s.dump(fmt.Sprintf("panic: %v", r))
			if req := s.cur; req != nil {
				s.cur = nil
				req.done <- shardResult{
					pos: req.pos,
					err: fmt.Errorf("pcmserve: shard %d panicked: %v: %w", s.index, r, ErrShardUnavailable),
				}
			}
		}
	}()
	for req := range s.ch {
		req := req
		if !req.deadline.IsZero() && time.Now().After(req.deadline) {
			// Nobody is waiting anymore: drop at dequeue, counted, never
			// executed — burning device time on it would steal capacity
			// from requests that can still meet their deadlines.
			s.adm.expired.Inc()
			req.done <- shardResult{
				pos: req.pos,
				err: fmt.Errorf("pcmserve: shard %d: expired in queue: %w", s.index, ErrDeadlineExceeded),
			}
			continue
		}
		s.cur = &req
		s.handle(req)
		s.cur = nil
	}
	return false
}

// supervise owns the shard lifecycle: run, recover, restart with a
// bounded budget, and — once the budget is spent — fail everything fast
// until shutdown.
func (s *shard) supervise(g *Shards) {
	defer g.wg.Done()
	for {
		if !s.runOnce() {
			return // queue closed: clean shutdown
		}
		n := s.restarts.Add(1)
		if g.maxRestarts >= 0 && n > uint64(g.maxRestarts) {
			s.health.Store(int32(Dead))
			s.dump(fmt.Sprintf("shard dead after %d restarts", n-1))
			// Drain-and-fail so enqueuers (and queued waiters) are
			// never stranded behind a dead shard.
			for req := range s.ch {
				req.done <- shardResult{
					pos: req.pos,
					err: fmt.Errorf("pcmserve: shard %d dead after %d restarts: %w", s.index, n-1, ErrShardUnavailable),
				}
			}
			return
		}
		s.okStreak.Store(0)
		s.health.Store(int32(Degraded))
	}
}

// Shards partitions a byte address space across N ShardDevice
// instances, each drained by a supervised goroutine through a bounded
// queue. It implements io.ReaderAt/io.WriterAt over the combined space
// and, unlike a bare Device, is safe for concurrent use by any number
// of goroutines.
type Shards struct {
	shards      []*shard
	shardSize   int64 // bytes per shard
	size        int64 // total bytes
	maxRestarts int

	adm *admitInstruments

	obs   *serveObs
	scrub *scrubber
	live  *liveState // nil outside live mode

	mu     sync.RWMutex // guards closed vs. in-flight enqueues
	closed bool
	wg     sync.WaitGroup
}

var _ io.ReaderAt = (*Shards)(nil)
var _ io.WriterAt = (*Shards)(nil)

// ErrClosed is returned for operations on a closed Shards or Client.
var ErrClosed = errors.New("pcmserve: closed")

// NewShards builds the sharded device. Each shard gets its own
// device.Device with a decorrelated seed.
func NewShards(cfg ShardsConfig) (*Shards, error) {
	n := cfg.Shards
	if n == 0 {
		n = 4
	}
	if n < 1 {
		return nil, fmt.Errorf("pcmserve: shard count %d < 1", n)
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = 64
	}
	if depth < 1 {
		return nil, fmt.Errorf("pcmserve: queue depth %d < 1", depth)
	}
	if cfg.Device.Blocks < 1 {
		return nil, errors.New("pcmserve: need at least one block per shard")
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = 8
	}
	healAfter := cfg.HealAfter
	if healAfter <= 0 {
		healAfter = 16
	}
	if cfg.VerifyScrub && cfg.Integrity == nil {
		return nil, errors.New("pcmserve: VerifyScrub requires Integrity")
	}
	admitWait := cfg.AdmitWait
	if admitWait == 0 {
		admitWait = 2 * time.Millisecond
	}
	if admitWait < 0 {
		return nil, fmt.Errorf("pcmserve: AdmitWait %v < 0", cfg.AdmitWait)
	}
	highWater := cfg.BackgroundHighWater
	if highWater == 0 {
		highWater = 0.5
	}
	if highWater < 0 || highWater > 1 {
		return nil, fmt.Errorf("pcmserve: BackgroundHighWater %g outside (0, 1]", cfg.BackgroundHighWater)
	}
	bgHighWater := int(highWater * float64(depth))
	if bgHighWater < 1 {
		bgHighWater = 1
	}
	if err := validateLive(cfg); err != nil {
		return nil, err
	}
	shardSize := int64(cfg.Device.Blocks) * core.BlockBytes
	var code *bch.Extended
	if cfg.Integrity != nil {
		var err error
		code, err = integrityCode(cfg.Integrity)
		if err != nil {
			return nil, fmt.Errorf("pcmserve: integrity: %w", err)
		}
		db := integrityDataBlocks(cfg.Device.Blocks, code)
		if db < 1 {
			return nil, fmt.Errorf("pcmserve: %d blocks per shard cannot fund one BCH-%d protected block",
				cfg.Device.Blocks, code.T())
		}
		shardSize = int64(db) * core.BlockBytes
	}
	g := &Shards{
		shards:      make([]*shard, n),
		shardSize:   shardSize,
		maxRestarts: maxRestarts,
		obs:         newServeObs(cfg.Obs),
	}
	g.size = g.shardSize * int64(n)
	const shedName = "pcmserve_shed_total"
	const shedHelp = "Requests rejected by classed admission instead of queued, by class."
	g.adm = &admitInstruments{
		shedBg: g.obs.reg.Counter(shedName, shedHelp, obs.L("class", "background")...),
		shedFg: g.obs.reg.Counter(shedName, shedHelp, obs.L("class", "foreground")...),
		expired: g.obs.reg.Counter("pcmserve_expired_dequeued_total",
			"Requests dropped at dequeue because their deadline had already passed (counted, never executed)."),
	}
	g.obs.reg.GaugeFunc("pcmserve_queue_pressure",
		"Peak shard queue occupancy fraction (len/cap) across shards.",
		func() float64 {
			peak := 0.0
			for _, s := range g.shards {
				if s == nil {
					continue
				}
				if f := float64(len(s.ch)) / float64(cap(s.ch)); f > peak {
					peak = f
				}
			}
			return peak
		})
	if cfg.Live != nil {
		ls, err := newLiveState(*cfg.Live, n, g.obs.reg)
		if err != nil {
			return nil, err
		}
		g.live = ls
	}
	for i := range g.shards {
		dcfg := cfg.Device
		// SplitMix64 increment keeps per-shard stochastic behaviour
		// decorrelated even for adjacent seeds.
		dcfg.Seed = cfg.Device.Seed + uint64(i)*0x9e3779b97f4a7c15
		var sd ShardDevice
		var liveDev *pcmlive.Device
		if g.live != nil {
			si := strconv.Itoa(i)
			stallHist := g.obs.reg.Histogram("pcmlive_foreground_stall_seconds",
				"Foreground write stalls behind the shared write budget (refresh-induced bank-busy time).",
				latBoundsSeconds, obs.L("shard", si)...)
			ld, err := pcmlive.NewDevice(pcmlive.DeviceConfig{
				Blocks:    cfg.Device.Blocks,
				Model:     g.live.model,
				Seed:      dcfg.Seed,
				TimeScale: g.live.cfg.TimeScale,
				Budget:    g.live.budget,
				OnStall:   func(stall time.Duration) { stallHist.Observe(stall.Seconds()) },
			})
			if err != nil {
				return nil, fmt.Errorf("pcmserve: shard %d: %w", i, err)
			}
			g.obs.reg.GaugeFunc("pcmlive_refresh_debt",
				"Written blocks currently older than the model-derived safe refresh age.",
				func() float64 { return float64(ld.DebtBlocks()) }, obs.L("shard", si)...)
			g.live.devs = append(g.live.devs, ld)
			liveDev, sd = ld, ld
		} else {
			dev, err := device.New(dcfg)
			if err != nil {
				return nil, fmt.Errorf("pcmserve: shard %d: %w", i, err)
			}
			sd = dev
		}
		if cfg.WrapDevice != nil {
			sd = cfg.WrapDevice(i, sd)
		}
		rec := obs.NewFlightRecorder(g.obs.recorderDepth)
		var integ *integrityDevice
		if code != nil {
			// Integrity sits OUTERMOST: injected stored-bit faults land
			// underneath it, so the decode ladder sees (and heals) them.
			var err error
			integ, err = newIntegrityDevice(sd, code, cfg.Device.Blocks, i, g.obs.reg, rec)
			if err != nil {
				return nil, err
			}
			sd = integ
		}
		s := &shard{
			index:       i,
			dev:         sd,
			ch:          make(chan shardReq, depth),
			healAfter:   uint64(healAfter),
			adm:         g.adm,
			bgHighWater: bgHighWater,
			admitWait:   admitWait,
			o:           g.obs,
			rec:         rec,
			integ:       integ,
			verifyScrub: cfg.VerifyScrub,
			liveDev:     liveDev,
		}
		s.remap, _ = sd.(remapReporter)
		s.refreshDeviceGauges() // seed gauges before the owner starts
		s.initInstruments()
		g.shards[i] = s
		g.wg.Add(1)
		go s.supervise(g)
	}
	if cfg.ScrubInterval > 0 {
		g.scrub = newScrubber(g, cfg.ScrubInterval)
		g.scrub.start()
	}
	if g.live != nil {
		g.live.registerGauges(g.obs.reg)
		if err := g.live.startScheduler(g); err != nil {
			g.Close()
			return nil, err
		}
	}
	return g, nil
}

// Size returns the combined capacity in bytes.
func (g *Shards) Size() int64 { return g.size }

// NumShards returns the shard count.
func (g *Shards) NumShards() int { return len(g.shards) }

// Name describes the per-shard device stack.
func (g *Shards) Name() string {
	return fmt.Sprintf("%d×%s", len(g.shards), g.shards[0].dev.Name())
}

// Health returns the lifecycle state of one shard.
func (g *Shards) Health(shard int) Health { return g.shards[shard].healthState() }

// Registry returns the metrics registry every instrument of this
// Shards (and any Server built over it) is registered in.
func (g *Shards) Registry() *obs.Registry { return g.obs.reg }

// Traces returns the sampled trace / slow-op log.
func (g *Shards) Traces() *obs.TraceLog { return g.obs.traces }

// RecorderSnapshots returns a live flight-recorder snapshot per shard,
// oldest events first. Safe to call concurrently with traffic.
func (g *Shards) RecorderSnapshots() []obs.Dump {
	out := make([]obs.Dump, len(g.shards))
	for i, s := range g.shards {
		out[i] = obs.Dump{
			Shard:  i,
			Reason: "live snapshot",
			Time:   time.Now().UnixNano(),
			Events: s.rec.Snapshot(),
		}
	}
	return out
}

// Close stops the refresh scheduler, the scrubber, and all shard
// goroutines after in-flight requests drain. Operations issued after
// Close return ErrClosed.
func (g *Shards) Close() error {
	// Stop the live refresh scheduler before closing the shard queues:
	// its pass goroutines enqueue refreshes under g.mu.RLock, so they
	// must be quiesced while the owners still drain (Stop is
	// idempotent, making concurrent Close calls safe).
	if g.live != nil && g.live.sched != nil {
		g.live.sched.Stop()
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	if g.scrub != nil {
		close(g.scrub.stop)
	}
	for _, s := range g.shards {
		close(s.ch)
	}
	g.mu.Unlock()
	if g.scrub != nil {
		g.scrub.wg.Wait()
	}
	g.wg.Wait()
	return nil
}

// span is one shard-local slice of a caller request.
type span struct {
	shard    int64
	localOff int64
	pos, n   int // range within the caller's buffer
}

// splitSpans cuts [off, off+n) at shard boundaries.
func (g *Shards) splitSpans(off int64, n int) []span {
	spans := make([]span, 0, n/int(g.shardSize)+2)
	for pos := 0; pos < n; {
		abs := off + int64(pos)
		localOff := abs % g.shardSize
		sz := int(g.shardSize - localOff)
		if sz > n-pos {
			sz = n - pos
		}
		spans = append(spans, span{shard: abs / g.shardSize, localOff: localOff, pos: pos, n: sz})
		pos += sz
	}
	return spans
}

// deadResult synthesizes the fast-fail reply for a span whose shard is
// dead, without touching its queue.
func deadResult(index int, pos int) shardResult {
	return shardResult{
		pos: pos,
		err: fmt.Errorf("pcmserve: shard %d is dead: %w", index, ErrShardUnavailable),
	}
}

// dispatch splits the byte range [off, off+len(p)) into per-shard spans
// and admits them per class, then waits for every span. Spans owned by
// a dead shard fail fast with ErrShardUnavailable while the rest are
// served; spans refused by admission fail with ErrOverloaded (or the
// context's verdict) without touching the queue. A full queue still
// blocks legacy requests — backpressure propagates to the connection
// reader and ultimately to the client — while classed requests shed
// instead. It returns the number of contiguous bytes processed from
// the start of p and the first error in address order. A nonzero trace
// assembles the span details into a Trace observed by the trace log.
func (g *Shards) dispatch(op uint8, p []byte, off int64, meta opMeta) (int, error) {
	t0 := time.Now()
	spans := g.splitSpans(off, len(p))
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return 0, ErrClosed
	}
	done := make(chan shardResult, len(spans))
	for _, sp := range spans {
		s := g.shards[sp.shard]
		if s.healthState() == Dead {
			done <- deadResult(s.index, sp.pos)
			continue
		}
		req := shardReq{
			op: op, off: sp.localOff, buf: p[sp.pos : sp.pos+sp.n], pos: sp.pos,
			trace: meta.trace, enq: t0, deadline: meta.deadline,
			scrubSeq0: s.scrubSeq.Load(),
			done:      done,
		}
		if err := s.admit(req, meta); err != nil {
			done <- shardResult{pos: sp.pos, err: err}
		}
	}
	g.mu.RUnlock()

	// Reassemble: spans complete out of order; report the contiguous
	// prefix and the first error in address order.
	byPos := make(map[int]shardResult, len(spans))
	for range spans {
		r := <-done
		byPos[r.pos] = r
	}
	n := 0
	var firstErr error
	for _, sp := range spans {
		r := byPos[sp.pos]
		if firstErr == nil {
			n += r.n
			if r.err != nil {
				firstErr = r.err
			}
		}
	}
	g.observeTrace(meta.trace, op, off, len(p), t0, spans, byPos)
	return n, firstErr
}

// observeTrace assembles one request's span records and hands them to
// the trace log.
func (g *Shards) observeTrace(trace uint64, op uint8, off int64, n int, t0 time.Time, spans []span, byPos map[int]shardResult) {
	if trace == 0 {
		return
	}
	t := obs.Trace{
		ID:     trace,
		Op:     opName(op),
		Offset: off,
		Bytes:  n,
		Start:  t0,
		Total:  time.Since(t0),
		Spans:  make([]obs.Span, 0, len(spans)),
	}
	for _, sp := range spans {
		r := byPos[sp.pos]
		errClass := ""
		if r.err != nil {
			errClass = Classify(r.err).String()
		}
		t.Spans = append(t.Spans, obs.Span{
			Shard:    int(sp.shard),
			Wait:     r.wait,
			Service:  r.service,
			ScrubOps: r.scrubs,
			Err:      errClass,
		})
	}
	g.obs.traces.Observe(t)
}

// ReadAt implements io.ReaderAt over the combined byte space with the
// same EOF semantics as device.Device: reads past the end return the
// available prefix and io.EOF.
func (g *Shards) ReadAt(p []byte, off int64) (int, error) {
	return g.readAtMeta(opMeta{}, p, off)
}

// ReadAtCtx is ReadAt with a context: a read blocked on a full shard
// queue abandons the wait with a typed error when ctx dies, instead of
// blocking forever.
func (g *Shards) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	return g.readAtMeta(opMeta{ctx: ctx}, p, off)
}

// readAtTraced is ReadAt carrying the request's trace ID into the
// shard queues and span records.
func (g *Shards) readAtTraced(trace uint64, p []byte, off int64) (int, error) {
	return g.readAtMeta(opMeta{trace: trace}, p, off)
}

// readAtMeta is the admission-aware read entry point.
func (g *Shards) readAtMeta(meta opMeta, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pcmserve: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off >= g.size {
		return 0, io.EOF
	}
	eof := false
	if off+int64(len(p)) > g.size {
		p = p[:g.size-off]
		eof = true
	}
	n, err := g.dispatch(OpRead, p, off, meta)
	if err == nil && eof {
		err = io.EOF
	}
	return n, err
}

// WriteAt implements io.WriterAt. Writes beyond the device size are
// rejected whole, matching device.Device.
func (g *Shards) WriteAt(p []byte, off int64) (int, error) {
	return g.writeAtMeta(opMeta{}, p, off)
}

// WriteAtCtx is WriteAt with a context: a write blocked on a full
// shard queue abandons the wait with a typed error when ctx dies.
func (g *Shards) WriteAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	return g.writeAtMeta(opMeta{ctx: ctx}, p, off)
}

// writeAtTraced is WriteAt carrying the request's trace ID.
func (g *Shards) writeAtTraced(trace uint64, p []byte, off int64) (int, error) {
	return g.writeAtMeta(opMeta{trace: trace}, p, off)
}

// writeAtMeta is the admission-aware write entry point.
func (g *Shards) writeAtMeta(meta opMeta, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pcmserve: negative offset")
	}
	if off+int64(len(p)) > g.size {
		return 0, fmt.Errorf("pcmserve: write [%d, %d) exceeds size %d", off, off+int64(len(p)), g.size)
	}
	if len(p) == 0 {
		return 0, nil
	}
	return g.dispatch(OpWrite, p, off, meta)
}

// Advance moves simulated time forward by dt seconds on every live
// shard, running any refresh work that falls due. It waits for all
// shards; a dead shard contributes an ErrShardUnavailable.
func (g *Shards) Advance(dt float64) error {
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return ErrClosed
	}
	done := make(chan shardResult, len(g.shards))
	enq := time.Now()
	for _, s := range g.shards {
		if s.healthState() == Dead {
			done <- deadResult(s.index, 0)
			continue
		}
		s.ch <- shardReq{op: OpAdvance, dt: dt, enq: enq, done: done}
	}
	g.mu.RUnlock()
	var first error
	for range g.shards {
		if r := <-done; r.err != nil && first == nil {
			first = r.err
		}
	}
	return first
}

// Snapshot captures per-shard counters, health, queue gauges, device
// spare-pool occupancy, and latency histograms. Safe to call
// concurrently with traffic.
func (g *Shards) Snapshot() []ShardStats {
	bounds := HistBucketBoundsUs()
	out := make([]ShardStats, len(g.shards))
	for i, s := range g.shards {
		out[i] = ShardStats{
			Shard:                 i,
			Device:                s.dev.Name(),
			Health:                s.healthState().String(),
			Reads:                 s.reads.Value(),
			Writes:                s.writes.Value(),
			Advances:              s.advances.Value(),
			Errors:                s.errCount.Value(),
			Panics:                s.panics.Load(),
			Restarts:              s.restarts.Load(),
			QueueDepth:            len(s.ch),
			QueueCap:              cap(s.ch),
			SpareBlocksLeft:       int(s.spareLeft.Load()),
			BlocksRemapped:        int(s.blocksRemapped.Load()),
			LatencyBucketBoundsUs: bounds,
			ReadLatencyUs:         s.readLat.Counts(),
			WriteLatencyUs:        s.writeLat.Counts(),
		}
	}
	return out
}

// IntegrityStats aggregates the BCH layer's counters across shards
// (the zero value when integrity protection is disabled).
func (g *Shards) IntegrityStats() IntegrityStats {
	var st IntegrityStats
	for _, s := range g.shards {
		if s.integ == nil {
			return IntegrityStats{}
		}
		st.Enabled = true
		st.Code = fmt.Sprintf("bch%d+p", s.integ.code.T())
		st.CorrectedBits += s.integ.correctedBits.Value()
		st.ReadRepairs += s.integ.readRepairs.Value()
		st.Uncorrectable += s.integ.uncorrectable.Value()
		st.Spared += s.integ.spared.Value()
		st.Escalated += s.integ.escalated.Value()
	}
	return st
}

// OverloadStats snapshots the classed-admission counters.
func (g *Shards) OverloadStats() OverloadStats {
	peak := 0.0
	for _, s := range g.shards {
		if f := float64(len(s.ch)) / float64(cap(s.ch)); f > peak {
			peak = f
		}
	}
	return OverloadStats{
		ShedBackground:  g.adm.shedBg.Value(),
		ShedForeground:  g.adm.shedFg.Value(),
		ExpiredDequeued: g.adm.expired.Value(),
		QueuePressure:   peak,
	}
}

// ScrubStats returns the scrubber's counters (the zero value when
// scrubbing is disabled).
func (g *Shards) ScrubStats() ScrubStats {
	if g.scrub == nil {
		return ScrubStats{}
	}
	return g.scrub.snapshot()
}
