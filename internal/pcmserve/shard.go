package pcmserve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

// ShardsConfig assembles a sharded device.
type ShardsConfig struct {
	// Shards is the number of independent device instances the byte
	// address space is partitioned across (default 4).
	Shards int
	// QueueDepth bounds each shard's request queue; a full queue blocks
	// the enqueuer, which is the service's backpressure mechanism
	// (default 64).
	QueueDepth int
	// Device configures each shard's device. Blocks is the PER-SHARD
	// block count; the sharded device's total capacity is
	// Shards × Blocks × 64 bytes. Seed is decorrelated per shard.
	Device device.Config
}

// shardReq is one shard-local unit of work, always fully contained in
// the owning shard's address range.
type shardReq struct {
	op   uint8
	off  int64   // shard-local byte offset
	buf  []byte  // read destination / write source
	dt   float64 // OpAdvance only
	pos  int     // offset of buf within the caller's buffer
	done chan<- shardResult
}

type shardResult struct {
	pos int
	n   int
	err error
}

// shard owns one device.Device. Exactly one goroutine (run) touches the
// device, honouring the internal/device concurrency contract.
type shard struct {
	index int
	dev   *device.Device
	ch    chan shardReq

	reads, writes, advances, errCount atomic.Uint64
	readLat, writeLat                 histogram
}

func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for req := range s.ch {
		start := time.Now()
		var n int
		var err error
		switch req.op {
		case OpRead:
			n, err = s.dev.ReadAt(req.buf, req.off)
			s.reads.Add(1)
			s.readLat.observe(time.Since(start))
		case OpWrite:
			n, err = s.dev.WriteAt(req.buf, req.off)
			s.writes.Add(1)
			s.writeLat.observe(time.Since(start))
		case OpAdvance:
			err = s.dev.Advance(req.dt)
			s.advances.Add(1)
		default:
			err = fmt.Errorf("pcmserve: shard %d: unknown op %d", s.index, req.op)
		}
		if err != nil && err != io.EOF {
			s.errCount.Add(1)
		}
		req.done <- shardResult{pos: req.pos, n: n, err: err}
	}
}

// Shards partitions a byte address space across N device.Device
// instances, each drained by a dedicated goroutine through a bounded
// queue. It implements io.ReaderAt/io.WriterAt over the combined space
// and, unlike a bare Device, is safe for concurrent use by any number
// of goroutines.
type Shards struct {
	shards    []*shard
	shardSize int64 // bytes per shard
	size      int64 // total bytes

	mu     sync.RWMutex // guards closed vs. in-flight enqueues
	closed bool
	wg     sync.WaitGroup
}

var _ io.ReaderAt = (*Shards)(nil)
var _ io.WriterAt = (*Shards)(nil)

// ErrClosed is returned for operations on a closed Shards or Client.
var ErrClosed = errors.New("pcmserve: closed")

// NewShards builds the sharded device. Each shard gets its own
// device.Device with a decorrelated seed.
func NewShards(cfg ShardsConfig) (*Shards, error) {
	n := cfg.Shards
	if n == 0 {
		n = 4
	}
	if n < 1 {
		return nil, fmt.Errorf("pcmserve: shard count %d < 1", n)
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = 64
	}
	if depth < 1 {
		return nil, fmt.Errorf("pcmserve: queue depth %d < 1", depth)
	}
	if cfg.Device.Blocks < 1 {
		return nil, errors.New("pcmserve: need at least one block per shard")
	}
	g := &Shards{
		shards:    make([]*shard, n),
		shardSize: int64(cfg.Device.Blocks) * core.BlockBytes,
	}
	g.size = g.shardSize * int64(n)
	for i := range g.shards {
		dcfg := cfg.Device
		// SplitMix64 increment keeps per-shard stochastic behaviour
		// decorrelated even for adjacent seeds.
		dcfg.Seed = cfg.Device.Seed + uint64(i)*0x9e3779b97f4a7c15
		dev, err := device.New(dcfg)
		if err != nil {
			return nil, fmt.Errorf("pcmserve: shard %d: %w", i, err)
		}
		g.shards[i] = &shard{index: i, dev: dev, ch: make(chan shardReq, depth)}
		g.wg.Add(1)
		go g.shards[i].run(&g.wg)
	}
	return g, nil
}

// Size returns the combined capacity in bytes.
func (g *Shards) Size() int64 { return g.size }

// NumShards returns the shard count.
func (g *Shards) NumShards() int { return len(g.shards) }

// Name describes the per-shard device stack.
func (g *Shards) Name() string {
	return fmt.Sprintf("%d×%s", len(g.shards), g.shards[0].dev.Name())
}

// Close stops all shard goroutines after in-flight requests drain.
// Operations issued after Close return ErrClosed.
func (g *Shards) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	for _, s := range g.shards {
		close(s.ch)
	}
	g.mu.Unlock()
	g.wg.Wait()
	return nil
}

// span is one shard-local slice of a caller request.
type span struct {
	shard    int64
	localOff int64
	pos, n   int // range within the caller's buffer
}

// splitSpans cuts [off, off+n) at shard boundaries.
func (g *Shards) splitSpans(off int64, n int) []span {
	spans := make([]span, 0, n/int(g.shardSize)+2)
	for pos := 0; pos < n; {
		abs := off + int64(pos)
		localOff := abs % g.shardSize
		sz := int(g.shardSize - localOff)
		if sz > n-pos {
			sz = n - pos
		}
		spans = append(spans, span{shard: abs / g.shardSize, localOff: localOff, pos: pos, n: sz})
		pos += sz
	}
	return spans
}

// dispatch splits the byte range [off, off+len(p)) into per-shard spans
// and enqueues them, then waits for every span. It returns the number
// of contiguous bytes processed from the start of p and the first error
// in address order.
func (g *Shards) dispatch(op uint8, p []byte, off int64) (int, error) {
	spans := g.splitSpans(off, len(p))
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return 0, ErrClosed
	}
	done := make(chan shardResult, len(spans))
	for _, sp := range spans {
		// A full queue blocks here: backpressure propagates to the
		// connection reader and ultimately to the client.
		g.shards[sp.shard].ch <- shardReq{
			op: op, off: sp.localOff, buf: p[sp.pos : sp.pos+sp.n], pos: sp.pos, done: done,
		}
	}
	g.mu.RUnlock()

	// Reassemble: spans complete out of order; report the contiguous
	// prefix and the first error in address order.
	byPos := make(map[int]shardResult, len(spans))
	for range spans {
		r := <-done
		byPos[r.pos] = r
	}
	n := 0
	for _, sp := range spans {
		r := byPos[sp.pos]
		n += r.n
		if r.err != nil {
			return n, r.err
		}
	}
	return n, nil
}

// ReadAt implements io.ReaderAt over the combined byte space with the
// same EOF semantics as device.Device: reads past the end return the
// available prefix and io.EOF.
func (g *Shards) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pcmserve: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off >= g.size {
		return 0, io.EOF
	}
	eof := false
	if off+int64(len(p)) > g.size {
		p = p[:g.size-off]
		eof = true
	}
	n, err := g.dispatch(OpRead, p, off)
	if err == nil && eof {
		err = io.EOF
	}
	return n, err
}

// WriteAt implements io.WriterAt. Writes beyond the device size are
// rejected whole, matching device.Device.
func (g *Shards) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pcmserve: negative offset")
	}
	if off+int64(len(p)) > g.size {
		return 0, fmt.Errorf("pcmserve: write [%d, %d) exceeds size %d", off, off+int64(len(p)), g.size)
	}
	if len(p) == 0 {
		return 0, nil
	}
	return g.dispatch(OpWrite, p, off)
}

// Advance moves simulated time forward by dt seconds on every shard,
// running any refresh work that falls due. It waits for all shards.
func (g *Shards) Advance(dt float64) error {
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return ErrClosed
	}
	done := make(chan shardResult, len(g.shards))
	for _, s := range g.shards {
		s.ch <- shardReq{op: OpAdvance, dt: dt, done: done}
	}
	g.mu.RUnlock()
	var first error
	for range g.shards {
		if r := <-done; r.err != nil && first == nil {
			first = r.err
		}
	}
	return first
}

// Snapshot captures per-shard counters, queue gauges, and latency
// histograms. Safe to call concurrently with traffic.
func (g *Shards) Snapshot() []ShardStats {
	out := make([]ShardStats, len(g.shards))
	for i, s := range g.shards {
		out[i] = ShardStats{
			Shard:          i,
			Device:         s.dev.Name(),
			Reads:          s.reads.Load(),
			Writes:         s.writes.Load(),
			Advances:       s.advances.Load(),
			Errors:         s.errCount.Load(),
			QueueDepth:     len(s.ch),
			QueueCap:       cap(s.ch),
			ReadLatencyUs:  s.readLat.snapshot(),
			WriteLatencyUs: s.writeLat.snapshot(),
		}
	}
	return out
}
