package pcmserve

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// waitHealth polls until every shard reports the wanted state.
func waitHealth(t *testing.T, g *Shards, want Health, timeout time.Duration, tick func()) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for i := 0; i < g.NumShards(); i++ {
			if g.Health(i) != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		if tick != nil {
			tick()
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < g.NumShards(); i++ {
		t.Logf("shard %d: %v", i, g.Health(i))
	}
	t.Fatalf("shards did not reach %v within %v", want, timeout)
}

// TestSupervisorRecoversPanic: a panic mid-request fails that request
// with the typed retryable error, the owner goroutine restarts, and the
// shard heals back to Healthy after HealAfter completed operations.
func TestSupervisorRecoversPanic(t *testing.T) {
	g, fis := testShardsFI(t, ShardsConfig{Shards: 2, QueueDepth: 8, HealAfter: 4}, nil)

	fis[0].ArmPanic(1)
	_, err := g.ReadAt(make([]byte, 8), 0) // shard 0
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("panicked read = %v, want ErrShardUnavailable", err)
	}
	if Classify(err) != ClassTransient {
		t.Fatalf("Classify(panic error) = %v, want transient", Classify(err))
	}
	if h := g.Health(0); h != Degraded {
		t.Fatalf("health after panic = %v, want degraded", h)
	}

	// Subsequent requests are served by the restarted goroutine, and
	// HealAfter of them restore Healthy.
	for i := 0; i < 6; i++ {
		if _, err := g.ReadAt(make([]byte, 8), 0); err != nil {
			t.Fatalf("read %d after restart: %v", i, err)
		}
	}
	if h := g.Health(0); h != Healthy {
		t.Fatalf("health after recovery ops = %v, want healthy", h)
	}

	snap := g.Snapshot()
	if snap[0].Panics != 1 || snap[0].Restarts != 1 {
		t.Fatalf("shard 0 panics=%d restarts=%d, want 1/1", snap[0].Panics, snap[0].Restarts)
	}
	if snap[0].Health != "healthy" || snap[1].Health != "healthy" {
		t.Fatalf("snapshot healths = %q/%q", snap[0].Health, snap[1].Health)
	}
}

// TestSupervisorDeadShard: a shard that exhausts its restart budget
// goes Dead; requests touching it fail fast with ErrShardUnavailable
// while the other shards keep serving.
func TestSupervisorDeadShard(t *testing.T) {
	g, fis := testShardsFI(t, ShardsConfig{Shards: 2, QueueDepth: 8, MaxRestarts: 1}, nil)
	shardSize := g.Size() / 2

	fis[0].ArmPanic(2) // panic, restart, panic again → budget spent
	for i := 0; i < 2; i++ {
		if _, err := g.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("panicked read %d = %v, want ErrShardUnavailable", i, err)
		}
	}
	// The supervisor transitions to Dead asynchronously after the
	// second recover; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for g.Health(0) != Dead && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h := g.Health(0); h != Dead {
		t.Fatalf("health = %v, want dead", h)
	}

	// Fast-fail on the dead shard, normal service on the live one.
	if _, err := g.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("read on dead shard = %v, want ErrShardUnavailable", err)
	}
	buf := bytes.Repeat([]byte{7}, 64)
	if _, err := g.WriteAt(buf, shardSize); err != nil {
		t.Fatalf("write on live shard: %v", err)
	}
	got := make([]byte, 64)
	if _, err := g.ReadAt(got, shardSize); err != nil || !bytes.Equal(got, buf) {
		t.Fatalf("live shard readback: %v", err)
	}
	// A span straddling the dead shard fails with the typed error.
	if _, err := g.WriteAt(make([]byte, 64), shardSize-32); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("straddling write = %v, want ErrShardUnavailable", err)
	}
	// Advance reports the dead shard but does not hang.
	if err := g.Advance(1); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("Advance = %v, want ErrShardUnavailable", err)
	}
	if snap := g.Snapshot(); snap[0].Health != "dead" || snap[1].Health != "healthy" {
		t.Fatalf("snapshot healths = %q/%q, want dead/healthy", snap[0].Health, snap[1].Health)
	}
}

// TestDispatchPartialFailureReassembly is the satellite check: when one
// shard of a split span errors, dispatch reports the contiguous prefix
// and the first error in address order, and spans on other shards are
// still applied.
func TestDispatchPartialFailureReassembly(t *testing.T) {
	g, fis := testShardsFI(t, ShardsConfig{Shards: 4, QueueDepth: 8}, nil)
	shardSize := g.Size() / 4 // 512 B with the 8-block default

	fis[1].ArmWriteError(1)
	p := make([]byte, 16+int(shardSize)+32) // spans shards 0,1,2
	for i := range p {
		p[i] = byte(i*7 + 1)
	}
	off := shardSize - 16
	n, err := g.WriteAt(p, off)
	if err == nil {
		t.Fatal("write with failing middle shard succeeded")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error = %v, want the injected write error", err)
	}
	if n != 16 {
		t.Fatalf("contiguous prefix = %d, want 16 (the shard-0 span)", n)
	}

	// The shard-0 and shard-2 spans were applied; the shard-1 span was
	// not.
	head := make([]byte, 16)
	if _, err := g.ReadAt(head, off); err != nil {
		t.Fatalf("read head: %v", err)
	}
	if !bytes.Equal(head, p[:16]) {
		t.Fatal("shard-0 span not applied")
	}
	tail := make([]byte, 32)
	if _, err := g.ReadAt(tail, 2*shardSize); err != nil {
		t.Fatalf("read tail: %v", err)
	}
	if !bytes.Equal(tail, p[16+shardSize:]) {
		t.Fatal("shard-2 span not applied")
	}
	mid := make([]byte, shardSize)
	if _, err := g.ReadAt(mid, shardSize); err != nil {
		t.Fatalf("read middle: %v", err)
	}
	if !bytes.Equal(mid, make([]byte, shardSize)) {
		t.Fatal("failed shard-1 span was partially applied")
	}
}

// TestStraddlingWritesRaceAdvance is the satellite check: writes that
// straddle a shard boundary racing concurrent Advance calls — run under
// -race this proves the queue discipline keeps device access
// single-threaded.
func TestStraddlingWritesRaceAdvance(t *testing.T) {
	g := testShards(t, 2, 8, 4)
	shardSize := g.Size() / 2
	const iters = 200

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(3)
	go func() { // straddling writer
		defer wg.Done()
		buf := make([]byte, 64)
		for i := 0; i < iters; i++ {
			for j := range buf {
				buf[j] = byte(i + j)
			}
			if _, err := g.WriteAt(buf, shardSize-32); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() { // straddling reader
		defer wg.Done()
		buf := make([]byte, 64)
		for i := 0; i < iters; i++ {
			if _, err := g.ReadAt(buf, shardSize-32); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() { // time advancer
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := g.Advance(0.001); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent read-after-write across the boundary still checks out.
	want := bytes.Repeat([]byte{0xC3}, 64)
	if _, err := g.WriteAt(want, shardSize-32); err != nil {
		t.Fatalf("final write: %v", err)
	}
	got := make([]byte, 64)
	if _, err := g.ReadAt(got, shardSize-32); err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("final straddling readback mismatch")
	}
}

// TestScrubberRepairsAndSpares: the scrubber rewrites a drifted block
// (clearing its marker) and routes an uncorrectable one through
// mark-and-spare accounting, with both visible in ScrubStats and the
// server Stats snapshot.
func TestScrubberRepairsAndSpares(t *testing.T) {
	g, fis := testShardsFI(t, ShardsConfig{
		Shards:        2,
		QueueDepth:    8,
		ScrubInterval: time.Millisecond,
	}, nil)
	shardBlocks := g.Size() / 2 / core.BlockBytes

	// Fill the device so every block holds data.
	pattern := make([]byte, g.Size())
	for i := range pattern {
		pattern[i] = byte(i%251 + 1)
	}
	if _, err := g.WriteAt(pattern, 0); err != nil {
		t.Fatalf("fill: %v", err)
	}

	fis[0].DriftBlock(3)   // global block 3: correctable drift
	fis[1].CorruptBlock(1) // global block shardBlocks+1: uncorrectable

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fis[0].DriftedCount() == 0 && fis[1].CorruptCount() == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := fis[0].DriftedCount(); n != 0 {
		t.Fatalf("drifted blocks remaining = %d, want 0 (scrub rewrite should heal)", n)
	}
	if n := fis[1].CorruptCount(); n != 0 {
		t.Fatalf("corrupt blocks remaining = %d, want 0 (scrub replace should heal)", n)
	}

	st := g.ScrubStats()
	if st.Scrubbed == 0 {
		t.Fatal("no blocks scrubbed")
	}
	if st.Repaired == 0 {
		t.Fatal("no correctable blocks repaired")
	}
	if st.Uncorrectable == 0 || st.Spared == 0 {
		t.Fatalf("uncorrectable=%d spared=%d, want both > 0", st.Uncorrectable, st.Spared)
	}

	// The drifted block kept its contents (repair is a rewrite of the
	// corrected data); the corrupt block was replaced (its loss is the
	// counted event) and is readable again.
	got := make([]byte, core.BlockBytes)
	if _, err := g.ReadAt(got, 3*core.BlockBytes); err != nil {
		t.Fatalf("read repaired block: %v", err)
	}
	if !bytes.Equal(got, pattern[3*core.BlockBytes:4*core.BlockBytes]) {
		t.Fatal("repaired block lost its contents")
	}
	corruptOff := (shardBlocks + 1) * core.BlockBytes
	if _, err := g.ReadAt(got, corruptOff); err != nil {
		t.Fatalf("read replaced block: %v", err)
	}

	// The counters flow through the server Stats snapshot (and hence
	// expvar and the STATS op).
	srv := NewServer(g, ServerConfig{})
	if sst := srv.Stats(); sst.Scrub.Scrubbed == 0 || sst.Scrub.Spared == 0 {
		t.Fatalf("server Stats scrub = %+v, want populated", sst.Scrub)
	}
}
