package pcmserve

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultinject"
)

// TestVerifyScrubNoDoubleCountWithReadRepair pins the interaction
// between the foreground read-repair ladder and the verify-scrub pass
// with exact counter deltas: a repair performed by one path must show
// up once, and the other path must then observe the block as clean —
// never a second repair for the same damage.
func TestVerifyScrubNoDoubleCountWithReadRepair(t *testing.T) {
	var fi *faultinject.Device
	g, err := NewShards(ShardsConfig{
		Shards: 1,
		Device: device.Config{Blocks: 24, Seed: 42, ReserveBlocks: 4, DisableWearout: true},
		WrapDevice: func(shard int, dev ShardDevice) ShardDevice {
			fi = faultinject.New(dev, faultinject.Plan{Seed: 7})
			return fi
		},
		Integrity:   &IntegrityConfig{T: 10},
		VerifyScrub: true,
		// A real scrubber (so scrubOne is wired up) that never ticks on
		// its own: the test drives every scrub by hand.
		ScrubInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const block = int64(3)
	want := bytes.Repeat([]byte{0xC3}, core.BlockBytes)
	if _, err := g.WriteAt(want, block*core.BlockBytes); err != nil {
		t.Fatalf("write: %v", err)
	}

	assertCounters := func(step string, wantInteg IntegrityStats, wantScrub ScrubStats) {
		t.Helper()
		integ := g.IntegrityStats()
		if integ.CorrectedBits != wantInteg.CorrectedBits || integ.ReadRepairs != wantInteg.ReadRepairs {
			t.Fatalf("%s: integrity = {CorrectedBits:%d ReadRepairs:%d}, want {CorrectedBits:%d ReadRepairs:%d}",
				step, integ.CorrectedBits, integ.ReadRepairs, wantInteg.CorrectedBits, wantInteg.ReadRepairs)
		}
		scrub := g.ScrubStats()
		if scrub.VerifyClean != wantScrub.VerifyClean ||
			scrub.VerifyCorrected != wantScrub.VerifyCorrected ||
			scrub.VerifyUncorrectable != wantScrub.VerifyUncorrectable {
			t.Fatalf("%s: scrub verify = {Clean:%d Corrected:%d Uncorrectable:%d}, want {Clean:%d Corrected:%d Uncorrectable:%d}",
				step, scrub.VerifyClean, scrub.VerifyCorrected, scrub.VerifyUncorrectable,
				wantScrub.VerifyClean, wantScrub.VerifyCorrected, wantScrub.VerifyUncorrectable)
		}
	}

	// Order 1: foreground read repairs first, then a verify scrub must
	// find the block clean — the scrub observes the earlier repair, it
	// does not redo (or recount) it.
	fi.FlipStoredBits(block, 3)
	got := make([]byte, core.BlockBytes)
	if _, err := g.ReadAt(got, block*core.BlockBytes); err != nil {
		t.Fatalf("read over flipped bits: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read returned corrupt data instead of correcting it")
	}
	assertCounters("after foreground read-repair",
		IntegrityStats{CorrectedBits: 3, ReadRepairs: 1}, ScrubStats{})

	g.scrub.scrubOne(block)
	assertCounters("after scrub of repaired block",
		IntegrityStats{CorrectedBits: 3, ReadRepairs: 1}, ScrubStats{VerifyClean: 1})

	// Order 2: the verify scrub repairs first (one repair, counted once
	// as a verify-corrected outcome AND once in the shared read-repair
	// counter that did the rewrite), then a foreground read must find
	// the block clean and add nothing.
	fi.FlipStoredBits(block, 2)
	g.scrub.scrubOne(block)
	assertCounters("after scrub-first repair",
		IntegrityStats{CorrectedBits: 5, ReadRepairs: 2}, ScrubStats{VerifyClean: 1, VerifyCorrected: 1})

	if _, err := g.ReadAt(got, block*core.BlockBytes); err != nil {
		t.Fatalf("read after scrub repair: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("scrub repair corrupted the block")
	}
	assertCounters("after foreground read of scrub-repaired block",
		IntegrityStats{CorrectedBits: 5, ReadRepairs: 2}, ScrubStats{VerifyClean: 1, VerifyCorrected: 1})

	if sc := g.ScrubStats(); sc.Scrubbed != 2 {
		t.Fatalf("Scrubbed = %d, want 2 (one per hand-driven scrub)", sc.Scrubbed)
	}
}
