package pcmserve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faultinject"
)

// checkGoroutines asserts at cleanup that the test leaked no
// goroutines: a stuffed shard queue or an abandoned enqueue wait must
// never pin a goroutine forever. Register it BEFORE the fixtures whose
// cleanups tear the goroutines down.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 64<<10)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// saturated builds a single-shard device whose owner goroutine is
// pinned by injected latency and whose queue holds queued legacy
// writes. release clears the latency and waits for the stuffed writes
// to drain; the caller must run its assertions well inside lat, while
// the first op still occupies the owner.
func saturated(t *testing.T, queueDepth, nQueued int, lat time.Duration) (g *Shards, fi *faultinject.Device, release func()) {
	t.Helper()
	var fis []*faultinject.Device
	g, fis = testShardsFI(t, ShardsConfig{
		Shards:     1,
		QueueDepth: queueDepth,
		Device: device.Config{
			Kind:           device.ThreeLC,
			Blocks:         16,
			Seed:           7,
			DisableWearout: true,
		},
	}, nil)
	fi = fis[0]
	fi.SetLatency(lat)

	var wg sync.WaitGroup
	buf := make([]byte, 64)
	for i := 0; i <= nQueued; i++ { // one in service + nQueued queued
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := g.WriteAt(buf, int64(i*64)); err != nil {
				t.Errorf("stuffing write %d: %v", i, err)
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(g.shards[0].ch) < nQueued {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d queued writes (at %d)", nQueued, len(g.shards[0].ch))
		}
		time.Sleep(time.Millisecond)
	}
	return g, fi, func() {
		fi.SetLatency(0)
		wg.Wait()
	}
}

// TestBackgroundShedsBeforeForeground is the priority property: at a
// queue occupancy past the background high-water mark but below full,
// background admission sheds with a retry-after hint while sheddable
// foreground work is still admitted and completes.
func TestBackgroundShedsBeforeForeground(t *testing.T) {
	checkGoroutines(t)
	// queueDepth 4 → bgHighWater 2; stuff 2 queued so background sheds
	// but foreground still has room.
	g, _, release := saturated(t, 4, 2, 500*time.Millisecond)

	buf := make([]byte, 64)
	_, err := g.writeAtMeta(opMeta{class: classBackground}, buf, 512)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("background write at high water: got %v, want ErrOverloaded", err)
	}
	if RetryAfter(err) <= 0 {
		t.Errorf("shed background write carried no retry-after hint: %v", err)
	}

	// Sheddable foreground admitted at the same occupancy; it completes
	// once the owner unblocks.
	fgErr := make(chan error, 1)
	go func() {
		_, err := g.writeAtMeta(opMeta{sheddable: true}, buf, 576)
		fgErr <- err
	}()
	release()
	if err := <-fgErr; err != nil {
		t.Fatalf("sheddable foreground write at background high water: %v", err)
	}

	st := g.OverloadStats()
	if st.ShedBackground == 0 {
		t.Error("ShedBackground counter never incremented")
	}
	if st.ShedForeground != 0 {
		t.Errorf("ShedForeground = %d, want 0 (queue was never full)", st.ShedForeground)
	}
}

// TestForegroundShedsWhenFull: with the queue completely full, a
// sheddable foreground request fast-fails with a typed overload error
// after the bounded admission wait instead of blocking.
func TestForegroundShedsWhenFull(t *testing.T) {
	checkGoroutines(t)
	g, _, release := saturated(t, 4, 4, 500*time.Millisecond)
	defer release()

	buf := make([]byte, 64)
	start := time.Now()
	_, err := g.writeAtMeta(opMeta{sheddable: true}, buf, 512)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("sheddable foreground write on full queue: got %v, want ErrOverloaded", err)
	}
	if wait := time.Since(start); wait > 200*time.Millisecond {
		t.Errorf("fast-fail took %v, want ≲ the bounded admission wait", wait)
	}
	if RetryAfter(err) <= 0 {
		t.Errorf("shed foreground write carried no retry-after hint: %v", err)
	}
	if st := g.OverloadStats(); st.ShedForeground == 0 {
		t.Error("ShedForeground counter never incremented")
	}
}

// TestEnqueueCtxCancelStuffedQueue is the regression test for the
// blocking-enqueue fix: a legacy (non-sheddable) request blocked on a
// full shard queue must abandon the wait promptly when its context
// dies — with the typed deadline error when the context timed out —
// instead of pinning its goroutine until the queue drains.
func TestEnqueueCtxCancelStuffedQueue(t *testing.T) {
	checkGoroutines(t)
	g, _, release := saturated(t, 4, 4, 500*time.Millisecond)
	defer release()

	buf := make([]byte, 64)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.WriteAtCtx(ctx, buf, 512)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it block on the full queue
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled enqueue returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled enqueue still blocked after 2s (stuffed-queue goroutine pin)")
	}

	// A context deadline maps to the typed wire sentinel.
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	if _, err := g.ReadAtCtx(dctx, buf, 0); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("deadline-expired enqueue returned %v, want ErrDeadlineExceeded", err)
	}
}

// TestExpiredDroppedAtDequeue: a queued request whose deadline passes
// before the shard reaches it is dropped at dequeue — counted, failed
// typed, and never executed against the device.
func TestExpiredDroppedAtDequeue(t *testing.T) {
	checkGoroutines(t)
	g, _, release := saturated(t, 8, 1, 300*time.Millisecond)

	// Seed block 2 with known bytes through the stuffed queue (it will
	// execute after the blockers drain).
	want := make([]byte, 64)
	for i := range want {
		want[i] = byte(0xA0 + i)
	}
	seeded := make(chan error, 1)
	go func() {
		_, err := g.WriteAt(want, 128)
		seeded <- err
	}()

	// This write's deadline expires while it waits behind the pinned
	// owner; it must come back typed and must never touch the device.
	garbage := make([]byte, 64)
	for i := range garbage {
		garbage[i] = 0xFF
	}
	_, err := g.writeAtMeta(opMeta{deadline: time.Now().Add(10 * time.Millisecond)}, garbage, 128)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired queued write returned %v, want ErrDeadlineExceeded", err)
	}

	release()
	if err := <-seeded; err != nil {
		t.Fatalf("seed write: %v", err)
	}
	if st := g.OverloadStats(); st.ExpiredDequeued == 0 {
		t.Error("ExpiredDequeued counter never incremented")
	}
	got := make([]byte, 64)
	if _, err := g.ReadAt(got, 128); err != nil {
		t.Fatalf("readback: %v", err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("expired write executed anyway: block content diverged at byte %d", i)
		}
	}
}

// TestOverloadWireRoundTrip checks the StatusErr encoding of an
// admission rejection: code, retry-after hint, and message survive
// errFrame → decodeWireError, and the rebuilt error keeps its sentinel
// identity and transient classification.
func TestOverloadWireRoundTrip(t *testing.T) {
	src := &OverloadError{RetryAfter: 7 * time.Millisecond}
	fr := errFrame(42, src)
	// Frame layout: u32 len, u32 crc, u64 id, u8 status, payload.
	payload := fr[8+headerBytes:]
	err := decodeWireError(payload)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("decoded error %v does not unwrap to ErrOverloaded", err)
	}
	if got := RetryAfter(err); got != 7*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 7ms", got)
	}
	if Classify(err) != ClassTransient {
		t.Errorf("Classify = %v, want transient", Classify(err))
	}

	fr = errFrame(43, ErrDeadlineExceeded)
	err = decodeWireError(fr[8+headerBytes:])
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("decoded error %v does not unwrap to ErrDeadlineExceeded", err)
	}
	if Classify(err) != ClassTransient {
		t.Errorf("Classify = %v, want transient", Classify(err))
	}
	if got := RetryAfter(err); got != 0 {
		t.Errorf("RetryAfter on deadline error = %v, want 0", got)
	}
}

// TestOverloadOverWire drives a shed through the full server + client
// stack: a saturated shard rejects a sheddable foreground request and
// the client sees a RemoteError that unwraps to ErrOverloaded with the
// server's retry-after hint attached.
func TestOverloadOverWire(t *testing.T) {
	checkGoroutines(t)
	g, _, release := saturated(t, 4, 4, 800*time.Millisecond)
	defer release()
	addr := startServer(t, g, ServerConfig{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	buf := make([]byte, 64)
	_, err = c.WriteAtCtx(context.Background(), buf, 512)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("write against saturated server: got %v, want ErrOverloaded", err)
	}
	if RetryAfter(err) <= 0 {
		t.Errorf("wire overload error carried no retry-after hint: %v", err)
	}

	// Background-classed request sheds too (high-water, not full, would
	// also shed — full certainly does).
	_, err = c.ReadAtCtx(WithBackground(context.Background()), buf, 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("background read against saturated server: got %v, want ErrOverloaded", err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Overload.ShedForeground == 0 {
		t.Error("server stats show no foreground sheds")
	}
	if st.Overload.ShedBackground == 0 {
		t.Error("server stats show no background sheds")
	}
}

// TestExtHeaderInterop covers both directions of version gating: a new
// client against a server predating the extended header latches into
// legacy framing (transparently, under the retry client), and a
// legacy-framing client works against a new server.
func TestExtHeaderInterop(t *testing.T) {
	checkGoroutines(t)
	g := testShards(t, 2, 8, 8)
	oldServer := startServer(t, g, ServerConfig{DisableExtHeader: true})

	// Bare client: the first extended request is rejected and the
	// connection dies (old servers close on unknown ops), surfacing as
	// a typed transient conn failure — but the latch is set.
	c, err := Dial(oldServer)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	buf := make([]byte, 64)
	if _, err := c.ReadAtCtx(context.Background(), buf, 0); !errors.Is(err, ErrConnFailed) {
		t.Fatalf("first ext request against old server: got %v, want ErrConnFailed", err)
	}
	if !c.legacy.Load() {
		t.Fatal("client did not latch legacy framing after ext rejection")
	}

	// Retry client: the latch is shared across redials, so the whole
	// fallback is invisible to the caller — even with a deadline and a
	// background class that have no wire representation in legacy frames.
	r, err := DialRetry(oldServer, RetryConfig{
		MaxReadAttempts:  4,
		MaxWriteAttempts: 4,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial retry: %v", err)
	}
	defer r.Close()
	want := make([]byte, 64)
	for i := range want {
		want[i] = byte(i + 1)
	}
	ctx, cancel := context.WithTimeout(WithBackground(context.Background()), 5*time.Second)
	defer cancel()
	if _, err := r.WriteAtCtx(ctx, want, 64); err != nil {
		t.Fatalf("retry client write against old server: %v", err)
	}
	got := make([]byte, 64)
	if _, err := r.ReadAtCtx(ctx, got, 64); err != nil {
		t.Fatalf("retry client read against old server: %v", err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("readback mismatch at byte %d through legacy fallback", i)
		}
	}

	// Other direction: a client pinned to legacy framing (an old build)
	// against a NEW server.
	newServer := startServer(t, testShards(t, 2, 8, 8), ServerConfig{})
	lc, err := Dial(newServer)
	if err != nil {
		t.Fatalf("dial new server: %v", err)
	}
	defer lc.Close()
	lc.legacy.Store(true)
	if _, err := lc.WriteAt(want, 0); err != nil {
		t.Fatalf("legacy-framing write against new server: %v", err)
	}
	if _, err := lc.ReadAt(got, 0); err != nil {
		t.Fatalf("legacy-framing read against new server: %v", err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("legacy-framing readback mismatch at byte %d", i)
		}
	}
}

// TestRetryBudget is the token-bucket unit test: the bucket starts
// full, spends one token per retry, refills a ratio per success, and
// saturates at the burst size.
func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(0.5, 4)
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("Allow %d: bucket should start full", i)
		}
	}
	if b.Allow() {
		t.Fatal("Allow succeeded on a dry bucket")
	}
	b.OnSuccess()
	if b.Allow() {
		t.Fatal("half a token must not grant a retry")
	}
	b.OnSuccess()
	if !b.Allow() {
		t.Fatal("two successes at ratio 0.5 should refill one retry")
	}
	for i := 0; i < 100; i++ {
		b.OnSuccess()
	}
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("Allow %d after refill: refill must saturate at burst, not below", i)
		}
	}
	if b.Allow() {
		t.Fatal("refill exceeded the burst size")
	}
}

// TestRetryBudgetExhaustion: against a persistently overloaded server,
// the retry client stops retrying when the budget dries up and fails
// with ErrRetryBudgetExhausted wrapping the overload error — the
// anti-amplification property.
func TestRetryBudgetExhaustion(t *testing.T) {
	checkGoroutines(t)
	g, _, release := saturated(t, 4, 4, 2*time.Second)
	defer release()
	addr := startServer(t, g, ServerConfig{})

	budget := NewRetryBudget(0.1, 1)
	r, err := DialRetry(addr, RetryConfig{
		MaxWriteAttempts: 4,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		Budget:           budget,
	})
	if err != nil {
		t.Fatalf("dial retry: %v", err)
	}
	defer r.Close()

	buf := make([]byte, 64)
	_, err = r.WriteAtCtx(context.Background(), buf, 512)
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("write against saturated server: got %v, want ErrRetryBudgetExhausted", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("budget-exhausted error does not wrap the underlying overload: %v", err)
	}
	if st := r.RetryStats(); st.BudgetExhausted == 0 {
		t.Error("RetryStats.BudgetExhausted never incremented")
	}
}
