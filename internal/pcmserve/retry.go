package pcmserve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RetryConfig tunes RetryClient. The zero value (plus a Dial function
// or DialRetry) is usable.
type RetryConfig struct {
	// Dial opens a new server connection; it is called on first use and
	// after every connection failure. Required unless the client is
	// built with DialRetry.
	Dial func() (net.Conn, error)

	// MaxReadAttempts bounds attempts for idempotent ops — reads,
	// Stats — which are retried transparently across reconnects
	// (default 16).
	MaxReadAttempts int
	// MaxWriteAttempts bounds attempts for writes and Advance, whose
	// resubmission after a lost response may apply twice; failures
	// surface the attempt count (default 4).
	MaxWriteAttempts int

	// BaseBackoff is the first retry delay; each attempt doubles it up
	// to MaxBackoff, with ±50% seeded jitter (defaults 5ms / 500ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter generator (default 1), keeping retry
	// schedules reproducible in tests.
	Seed uint64

	// OpTimeout bounds each attempt (not the whole op); it is installed
	// on every underlying Client via SetOpTimeout (default 10s,
	// negative disables).
	OpTimeout time.Duration

	// Budget, when non-nil, caps retry work relative to successful work:
	// each retry (every attempt beyond an op's first) spends one token,
	// each success refills a fraction of one. When the bucket is empty
	// the op fails with ErrRetryBudgetExhausted instead of amplifying
	// load against an overloaded server. A budget may be shared across
	// clients (it is concurrency-safe); nil retries without a budget.
	Budget *RetryBudget
}

// RetryBudget is a token bucket that bounds retries to a fraction of
// successful operations — the standard defense against retry storms:
// when a server browns out, clients quickly exhaust the bucket and
// fail fast instead of multiplying the overload.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	ratio  float64
}

// NewRetryBudget builds a budget allowing roughly ratio retries per
// success in steady state (e.g. 0.1 = 10%), with a burst-sized bucket
// that starts full so isolated failures retry freely.
func NewRetryBudget(ratio float64, burst int) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 16
	}
	return &RetryBudget{tokens: float64(burst), burst: float64(burst), ratio: ratio}
}

// Allow spends one retry token, reporting false when the bucket is dry.
func (b *RetryBudget) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// OnSuccess refills ratio tokens, saturating at the burst size.
func (b *RetryBudget) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

func (cfg RetryConfig) withDefaults() RetryConfig {
	if cfg.MaxReadAttempts <= 0 {
		cfg.MaxReadAttempts = 16
	}
	if cfg.MaxWriteAttempts <= 0 {
		cfg.MaxWriteAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 5 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 500 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = 10 * time.Second
	} else if cfg.OpTimeout < 0 {
		cfg.OpTimeout = 0
	}
	return cfg
}

// RetryStats counts the retry layer's recovery work.
type RetryStats struct {
	// Redials is the number of connections established (including the
	// first).
	Redials uint64
	// Retries counts op attempts beyond each op's first.
	Retries uint64
	// BudgetExhausted counts ops abandoned because the retry budget was
	// dry (zero when no budget is configured).
	BudgetExhausted uint64
}

// RetryClient wraps Client with error classification, automatic
// reconnection, and capped exponential backoff with jitter: transient
// failures (connection loss, shard restarts, server shutdown) are
// retried — transparently for idempotent reads, with bounded surfaced
// attempts for writes — while permanent and corrupt errors return
// immediately. It is safe for concurrent use.
type RetryClient struct {
	cfg RetryConfig

	mu  sync.Mutex
	cur *Client
	gen uint64 // bumped per established connection
	rng *rand.Rand

	// closed is set before Close contends for mu, so an in-progress
	// Close is visible to the retry loop even while a dial holds the
	// mutex — a write resubmission racing Close must report ErrClosed,
	// not the dial's generic connection error.
	closed atomic.Bool

	redials, retries atomic.Uint64
	budgetExhausted  atomic.Uint64

	// legacy is the extended-header downgrade latch shared by every
	// connection this client dials: one peer rejection downgrades all
	// future frames, surviving redials.
	legacy atomic.Bool
}

var _ io.ReaderAt = (*RetryClient)(nil)
var _ io.WriterAt = (*RetryClient)(nil)

// NewRetryClient builds a client over cfg.Dial. The first connection is
// established lazily, so a server that is still starting (or
// restarting) does not fail construction.
func NewRetryClient(cfg RetryConfig) (*RetryClient, error) {
	if cfg.Dial == nil {
		return nil, errors.New("pcmserve: RetryConfig.Dial is required")
	}
	cfg = cfg.withDefaults()
	return &RetryClient{cfg: cfg, rng: rand.New(rand.NewSource(int64(cfg.Seed)))}, nil
}

// DialRetry builds a RetryClient for a TCP address.
func DialRetry(addr string, cfg RetryConfig) (*RetryClient, error) {
	if cfg.Dial == nil {
		cfg.Dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	return NewRetryClient(cfg)
}

// RetryStats snapshots the recovery counters.
func (r *RetryClient) RetryStats() RetryStats {
	return RetryStats{
		Redials:         r.redials.Load(),
		Retries:         r.retries.Load(),
		BudgetExhausted: r.budgetExhausted.Load(),
	}
}

// Close closes the current connection. It is idempotent: later calls
// return ErrClosed, and in-flight operations stop retrying.
func (r *RetryClient) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	r.mu.Lock()
	c := r.cur
	r.cur = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// conn returns the live connection, dialing one if needed.
func (r *RetryClient) conn() (*Client, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return nil, 0, ErrClosed
	}
	if r.cur != nil {
		return r.cur, r.gen, nil
	}
	conn, err := r.cfg.Dial()
	if err != nil {
		return nil, 0, fmt.Errorf("pcmserve: redial: %w", err)
	}
	c := NewClient(conn)
	c.legacy = &r.legacy // downgrade latch survives redials
	if r.cfg.OpTimeout > 0 {
		c.SetOpTimeout(r.cfg.OpTimeout)
	}
	r.cur = c
	r.gen++
	r.redials.Add(1)
	return c, r.gen, nil
}

// invalidate drops a failed connection so the next attempt redials. The
// generation check keeps a slow goroutine from closing a replacement
// connection that other goroutines are already using.
func (r *RetryClient) invalidate(c *Client, gen uint64) {
	r.mu.Lock()
	if r.cur == c && r.gen == gen {
		r.cur = nil
	}
	r.mu.Unlock()
	c.Close()
}

// backoff sleeps before attempt a (no sleep for the first attempt),
// doubling from BaseBackoff up to MaxBackoff with ±50% jitter, honoring
// ctx. A server retry-after hint (from a typed overload rejection)
// floors the delay: the server knows its queue depth better than the
// client's exponential schedule does.
func (r *RetryClient) backoff(ctx context.Context, attempt int, hint time.Duration) error {
	if attempt == 0 {
		return nil
	}
	r.retries.Add(1)
	d := r.cfg.BaseBackoff << (attempt - 1)
	if d > r.cfg.MaxBackoff || d <= 0 {
		d = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	jitter := 0.5 + r.rng.Float64() // ×[0.5, 1.5)
	r.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	if hint > d {
		d = hint
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do runs one op through the retry loop. Each attempt gets its own
// OpTimeout-bounded context derived from ctx, so a stalled server fails
// the attempt (and invalidates its connection) rather than blocking
// forever. ok-or-EOF results return as is; permanent and corrupt errors
// return immediately; transient errors retry up to attempts,
// reconnecting when the failure was connection-level (anything that is
// not a typed in-band RemoteError).
func (r *RetryClient) do(ctx context.Context, attempts int, op func(ctx context.Context, c *Client) error) error {
	// One trace ID spans every attempt of the op, so server-side traces
	// and flight-recorder entries show retries as repeats of the same
	// ID rather than unrelated requests.
	ctx, _ = obs.EnsureTrace(ctx)
	var lastErr error
	var hint time.Duration
	for a := 0; a < attempts; a++ {
		if err := r.backoff(ctx, a, hint); err != nil {
			return errors.Join(err, lastErr)
		}
		c, gen, err := r.conn()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return err
			}
			lastErr = err // dial failure: transient, back off and retry
			if r.isClosed() {
				return fmt.Errorf("%w (last error: %w)", ErrClosed, lastErr)
			}
			continue
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if r.cfg.OpTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.cfg.OpTimeout)
		}
		err = op(actx, c)
		cancel()
		if err == nil || errors.Is(err, io.EOF) {
			if r.cfg.Budget != nil {
				r.cfg.Budget.OnSuccess()
			}
			return err
		}
		switch Classify(err) {
		case ClassPermanent, ClassCorrupt:
			return err
		}
		lastErr = err
		hint = RetryAfter(err)
		var re *RemoteError
		if !errors.As(err, &re) {
			// Connection-level failure (including a per-attempt
			// timeout on a stalled server): this conn is done.
			r.invalidate(c, gen)
		}
		if ctx.Err() != nil {
			// The caller's own context ended; stop retrying.
			return errors.Join(ctx.Err(), lastErr)
		}
		if r.isClosed() {
			return fmt.Errorf("%w (last error: %w)", ErrClosed, lastErr)
		}
		if a+1 < attempts && r.cfg.Budget != nil && !r.cfg.Budget.Allow() {
			// Dry budget: stop amplifying load against a struggling
			// server; the typed verdict lets callers shed or defer.
			r.budgetExhausted.Add(1)
			return fmt.Errorf("%w (last error: %w)", ErrRetryBudgetExhausted, lastErr)
		}
	}
	// A close that raced with the final attempt must surface as
	// ErrClosed, not as whatever connection error the dying conn
	// produced.
	if r.isClosed() {
		return fmt.Errorf("%w (last error: %w)", ErrClosed, lastErr)
	}
	return fmt.Errorf("pcmserve: giving up after %d attempts: %w", attempts, lastErr)
}

func (r *RetryClient) isClosed() bool {
	return r.closed.Load()
}

// ReadAt retries transient failures transparently across reconnects;
// reads are idempotent so a retried read is indistinguishable from a
// slow one. io.EOF keeps its io.ReaderAt end-of-device meaning.
func (r *RetryClient) ReadAt(p []byte, off int64) (int, error) {
	return r.ReadAtCtx(context.Background(), p, off)
}

// ReadAtCtx is ReadAt bounded by ctx across all attempts.
func (r *RetryClient) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	var n int
	err := r.do(ctx, r.cfg.MaxReadAttempts, func(ctx context.Context, c *Client) error {
		var err error
		n, err = c.ReadAtCtx(ctx, p, off)
		return err
	})
	return n, err
}

// WriteAt resubmits on transient failure with bounded attempts. A
// write whose response was lost may have applied server-side before the
// resubmission; writers needing exactly-once must layer sequence
// numbers above this API.
func (r *RetryClient) WriteAt(p []byte, off int64) (int, error) {
	return r.WriteAtCtx(context.Background(), p, off)
}

// WriteAtCtx is WriteAt bounded by ctx across all attempts.
func (r *RetryClient) WriteAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	var n int
	err := r.do(ctx, r.cfg.MaxWriteAttempts, func(ctx context.Context, c *Client) error {
		var err error
		n, err = c.WriteAtCtx(ctx, p, off)
		return err
	})
	return n, err
}

// HashRangeCtx retries like a read: digesting stored bytes is
// idempotent. An ErrUnsupported verdict is permanent and returns
// immediately — the peer will never grow the op by retrying.
func (r *RetryClient) HashRangeCtx(ctx context.Context, off int64, recordBytes, count, fanout int) ([]RangeDigest, error) {
	var out []RangeDigest
	err := r.do(ctx, r.cfg.MaxReadAttempts, func(ctx context.Context, c *Client) error {
		var err error
		out, err = c.HashRangeCtx(ctx, off, recordBytes, count, fanout)
		return err
	})
	return out, err
}

// ReadStrideCtx retries like a read.
func (r *RetryClient) ReadStrideCtx(ctx context.Context, off int64, stride, recordBytes, count int) ([][]byte, error) {
	var out [][]byte
	err := r.do(ctx, r.cfg.MaxReadAttempts, func(ctx context.Context, c *Client) error {
		var err error
		out, err = c.ReadStrideCtx(ctx, off, stride, recordBytes, count)
		return err
	})
	return out, err
}

// Advance retries like a write (resubmission may double-apply the time
// step if the original was executed but its response lost).
func (r *RetryClient) Advance(dt float64) error {
	return r.do(context.Background(), r.cfg.MaxWriteAttempts, func(ctx context.Context, c *Client) error {
		return c.AdvanceCtx(ctx, dt)
	})
}

// Stats retries like a read.
func (r *RetryClient) Stats() (Stats, error) {
	var st Stats
	err := r.do(context.Background(), r.cfg.MaxReadAttempts, func(ctx context.Context, c *Client) error {
		var err error
		st, err = c.StatsCtx(ctx)
		return err
	})
	return st, err
}
