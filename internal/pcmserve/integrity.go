package pcmserve

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/bch"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wearout"
)

// IntegrityConfig enables the stored-block integrity layer: every
// 64-byte block a shard stores carries extended-BCH check bits in a
// per-shard sideband region, so the serving path can prove the bytes it
// returns are the bytes that were written — the end-to-end complement
// to the cell-level ECC the device model already simulates.
type IntegrityConfig struct {
	// T is the correction capability in bits per 64-byte block — the
	// paper's serve-path codes are BCH-1 (T=1) and BCH-10 (T=10, the
	// default). The stored code is extended with an overall parity bit,
	// so any T+1-bit pattern is detected rather than miscorrected.
	T int
}

// Internal op code for read-repair events in the flight recorder.
const opRepair uint8 = 0xF1

// retirer is the optional device interface the escalation ladder uses
// to force-remap a block whose corruption exceeded BCH capability
// (device.Device implements it; faultinject.Device forwards it).
type retirer interface{ RetireBlock(int) error }

// integrityDevice wraps a shard's device with block-granular extended
// BCH protection. The raw block space is split in two: the first
// dataBlocks 64-byte blocks hold data, the tail holds the sideband —
// parityBytes of check bits per data block, packed back to back. Every
// read decodes; every write re-encodes.
//
// On decode, the correction→repair→remap ladder applies:
//
//  1. up to T flipped bits: corrected in memory, then REPAIRED in
//     place (block and parity rewritten at nominal levels — the same
//     healing action as a scrub rewrite, surfaced in the read-repair
//     counters and the flight recorder);
//  2. beyond T: detection, never silent miscorrection. The block is
//     escalated through mark-and-spare accounting (one spare pair per
//     event, the paper's Section 6.4 budget); past SparePairs the
//     block is force-remapped onto a FREE-p reserve block. Either way
//     its content is replaced (zeros, valid parity) so the block
//     serves again, and the read fails with core.ErrUncorrectable —
//     a typed data-loss verdict, never raw corrupt bytes.
//
// Like the device it wraps, an integrityDevice is confined to the
// shard owner goroutine; the obs instruments it updates are safe to
// scrape concurrently.
type integrityDevice struct {
	inner ShardDevice
	code  *bch.Extended
	shard int
	rec   *obs.FlightRecorder

	dataBlocks   int64
	parityBytes  int64
	sidebandBase int64 // byte offset of the sideband region

	design     wearout.MarkAndSpare
	sparesUsed map[int64]int // data block → spare pairs consumed

	correctedBits *obs.Counter
	readRepairs   *obs.Counter
	uncorrectable *obs.Counter
	spared        *obs.Counter
	escalated     *obs.Counter // blocks force-remapped (also a gauge)
}

var _ ShardDevice = (*integrityDevice)(nil)

// integrityCode builds the extended serve-path code for a config.
func integrityCode(cfg *IntegrityConfig) (*bch.Extended, error) {
	t := cfg.T
	if t == 0 {
		t = 10
	}
	return bch.NewExtended(10, t, core.BlockBytes*8)
}

// integrityDataBlocks computes how many of rawBlocks 64-byte blocks
// hold data once each must also fund parityBytes of sideband.
func integrityDataBlocks(rawBlocks int, code *bch.Extended) int {
	parityBytes := (code.ParityBits() + 7) / 8
	return rawBlocks * core.BlockBytes / (core.BlockBytes + parityBytes)
}

func newIntegrityDevice(inner ShardDevice, code *bch.Extended, rawBlocks, shard int, reg *obs.Registry, rec *obs.FlightRecorder) (*integrityDevice, error) {
	dataBlocks := integrityDataBlocks(rawBlocks, code)
	if dataBlocks < 1 {
		return nil, fmt.Errorf("pcmserve: %d raw blocks cannot fund one BCH-%d protected block", rawBlocks, code.T())
	}
	d := &integrityDevice{
		inner:        inner,
		code:         code,
		shard:        shard,
		rec:          rec,
		dataBlocks:   int64(dataBlocks),
		parityBytes:  int64((code.ParityBits() + 7) / 8),
		sidebandBase: int64(dataBlocks) * core.BlockBytes,
		design:       wearout.PaperDesign(),
		sparesUsed:   make(map[int64]int),
	}
	si := strconv.Itoa(shard)
	d.correctedBits = reg.Counter("pcmserve_integrity_corrected_bits_total",
		"Stored bits corrected by the block-level BCH decode.", obs.L("shard", si)...)
	d.readRepairs = reg.Counter("pcmserve_integrity_read_repairs_total",
		"Corrected blocks rewritten in place on the read path.", obs.L("shard", si)...)
	d.uncorrectable = reg.Counter("pcmserve_integrity_uncorrectable_total",
		"Block decodes beyond BCH capability (typed data loss).", obs.L("shard", si)...)
	d.spared = reg.Counter("pcmserve_integrity_spared_total",
		"Spare pairs consumed by integrity mark-and-spare accounting.", obs.L("shard", si)...)
	d.escalated = reg.Counter("pcmserve_integrity_escalated_total",
		"Blocks escalated past mark-and-spare onto FREE-p reserve blocks.", obs.L("shard", si)...)
	reg.GaugeFunc("pcmserve_integrity_escalated_blocks",
		"Blocks this shard has force-remapped after integrity escalation.",
		func() float64 { return float64(d.escalated.Value()) }, obs.L("shard", si)...)
	return d, nil
}

// Name tags the stack with the protection level.
func (d *integrityDevice) Name() string {
	return fmt.Sprintf("bch%d+p(%s)", d.code.T(), d.inner.Name())
}

// Advance passes through to the device clock.
func (d *integrityDevice) Advance(dt float64) error { return d.inner.Advance(dt) }

// RemapStats forwards spare-pool occupancy so shard gauges see through
// this wrapper.
func (d *integrityDevice) RemapStats() (reserveLeft, retired int) {
	if rr, ok := d.inner.(remapReporter); ok {
		return rr.RemapStats()
	}
	return 0, 0
}

// Size returns the protected (client-visible) capacity in bytes.
func (d *integrityDevice) Size() int64 { return d.dataBlocks * core.BlockBytes }

// parityOff returns the sideband offset of block b's check bits.
func (d *integrityDevice) parityOff(b int64) int64 {
	return d.sidebandBase + b*d.parityBytes
}

// decodeBlock reads and decodes one data block, running the
// correction→repair→remap ladder. It returns the proven-correct 64
// bytes and the verify outcome; on scrubVerifyUncorrectable the error
// wraps core.ErrUncorrectable and the returned data is nil.
func (d *integrityDevice) decodeBlock(b int64) ([]byte, scrubOutcome, error) {
	blk := make([]byte, core.BlockBytes)
	if _, err := d.inner.ReadAt(blk, b*core.BlockBytes); err != nil {
		return nil, scrubNone, err
	}
	par := make([]byte, d.parityBytes)
	if _, err := d.inner.ReadAt(par, d.parityOff(b)); err != nil {
		return nil, scrubNone, err
	}
	msg := bitvec.FromBytes(blk, core.BlockBytes*8)
	parity := bitvec.FromBytes(par, d.code.ParityBits())
	res := d.code.Decode(msg, parity)
	if !res.OK {
		return nil, scrubVerifyUncorrectable, d.escalate(b)
	}
	if res.Corrected == 0 {
		return blk, scrubVerifyClean, nil
	}
	data := msg.Bytes()
	d.repair(b, data, parity, res.Corrected)
	return data, scrubVerifyCorrected, nil
}

// repair rewrites a corrected block (data and check bits) in place —
// the read path doing the scrubber's healing work the moment drift is
// caught, instead of leaving the damage to accumulate until the next
// scrub pass reaches the block.
func (d *integrityDevice) repair(b int64, data []byte, parity bitvec.Vector, corrected int) {
	start := time.Now()
	d.correctedBits.Add(uint64(corrected))
	_, err := d.inner.WriteAt(data, b*core.BlockBytes)
	if err == nil {
		_, err = d.inner.WriteAt(parity.Bytes(), d.parityOff(b))
	}
	// A failed repair write is not a read failure: the decoded data in
	// hand is correct; the rewrite retries on the next read or scrub.
	d.readRepairs.Inc()
	d.rec.Record(obs.Event{
		Op:      opRepair,
		Block:   b,
		Latency: time.Since(start),
		Class:   eventClass(err),
	})
}

// escalate runs the beyond-capability ladder for block b and returns
// the typed data-loss error the caller must surface.
func (d *integrityDevice) escalate(b int64) error {
	d.uncorrectable.Inc()
	d.sparesUsed[b]++
	used := d.sparesUsed[b]
	verdict := "spare pair marked"
	if used <= d.design.SparePairs {
		d.spared.Inc()
	} else {
		// The mark-and-spare budget is spent: this block keeps failing
		// integrity checks, so move it wholesale onto a FREE-p reserve
		// block (the paper's Section 6.4 end-to-end combination).
		delete(d.sparesUsed, b)
		verdict = "remapped to reserve"
		if r, ok := d.inner.(retirer); ok {
			if err := r.RetireBlock(int(b)); err != nil {
				verdict = fmt.Sprintf("remap failed: %v", err)
			} else {
				d.escalated.Inc()
			}
		} else {
			verdict = "remap unavailable"
		}
	}
	// Replace the content — zeros with valid check bits — so the block
	// serves again. The data loss is the typed error, never raw bytes.
	if err := d.writeBlock(b, make([]byte, core.BlockBytes)); err != nil {
		verdict += fmt.Sprintf("; replace failed: %v", err)
	}
	return fmt.Errorf("pcmserve: shard %d: block %d beyond BCH-%d+p capability (%s): %w",
		d.shard, b, d.code.T(), verdict, core.ErrUncorrectable)
}

// writeBlock encodes and stores one aligned data block.
func (d *integrityDevice) writeBlock(b int64, data []byte) error {
	msg := bitvec.FromBytes(data, core.BlockBytes*8)
	parity := d.code.Encode(msg)
	if _, err := d.inner.WriteAt(data, b*core.BlockBytes); err != nil {
		return err
	}
	_, err := d.inner.WriteAt(parity.Bytes(), d.parityOff(b))
	return err
}

// verifyBlock is the scrubber's decode-don't-blindly-rewrite pass on
// the block at shard-local byte offset off.
func (d *integrityDevice) verifyBlock(off int64) (scrubOutcome, error) {
	b := off / core.BlockBytes
	if b >= d.dataBlocks {
		return scrubNone, fmt.Errorf("pcmserve: verify block %d beyond %d data blocks", b, d.dataBlocks)
	}
	_, outcome, err := d.decodeBlock(b)
	return outcome, err
}

// ReadAt implements io.ReaderAt over the protected byte space with
// device.Device EOF semantics.
func (d *integrityDevice) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pcmserve: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		if pos >= d.Size() {
			return n, io.EOF
		}
		b := pos / core.BlockBytes
		inBlk := int(pos % core.BlockBytes)
		data, _, err := d.decodeBlock(b)
		if err != nil {
			return n, err
		}
		n += copy(p[n:], data[inBlk:])
	}
	return n, nil
}

// WriteAt implements io.WriterAt, re-encoding check bits for every
// touched block with read-modify-write at the edges.
func (d *integrityDevice) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pcmserve: negative offset %d", off)
	}
	if off+int64(len(p)) > d.Size() {
		return 0, fmt.Errorf("pcmserve: write [%d, %d) exceeds protected capacity %d",
			off, off+int64(len(p)), d.Size())
	}
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		b := pos / core.BlockBytes
		inBlk := int(pos % core.BlockBytes)
		span := core.BlockBytes - inBlk
		if span > len(p)-n {
			span = len(p) - n
		}
		var blk []byte
		if inBlk == 0 && span == core.BlockBytes {
			blk = p[n : n+core.BlockBytes]
		} else {
			cur, _, err := d.decodeBlock(b)
			if err != nil {
				if !errors.Is(err, core.ErrUncorrectable) {
					return n, err
				}
				// The write replaces the damaged span; escalate already
				// replaced the rest with zeros, so build on that.
				cur = make([]byte, core.BlockBytes)
			}
			copy(cur[inBlk:], p[n:n+span])
			blk = cur
		}
		if err := d.writeBlock(b, blk); err != nil {
			return n, err
		}
		n += span
	}
	return n, nil
}
