// Package pcmserve turns the composed internal/device storage stack
// into a network service: the serving layer that the paper's Section 1
// adoption scenarios (file systems, checkpointing, persistent key-value
// stores) assume sits between many request streams and the underlying
// PCM device, in the role a memory controller plays in hardware.
//
// The package has four layers, bottom to top:
//
//   - Shards partitions the byte address space across N independent
//     device.Device instances. Each shard is owned by exactly one
//     goroutine that drains a bounded request channel, which both
//     serializes access to the non-thread-safe device (see the
//     internal/device concurrency contract) and gives linear scaling of
//     independent reads across shards. Requests that straddle a shard
//     boundary are split, dispatched concurrently, and reassembled.
//
//   - The wire protocol (protocol.go) is a length-prefixed binary
//     framing over TCP with four operations — OpRead, OpWrite,
//     OpAdvance, OpStats — each carrying a caller-chosen request ID so
//     that many requests can be in flight on one connection and
//     responses may return out of order (pipelining).
//
//   - Server accepts TCP connections and runs one reader and one writer
//     goroutine per connection. Backpressure is structural: the bounded
//     per-shard queues plus a bounded per-connection in-flight limit
//     mean a slow device stalls the connection reader rather than
//     queueing unbounded work. Read and write deadlines bound
//     dead-peer detection, and Shutdown drains in-flight requests
//     before closing.
//
//   - Client is a concurrency-safe, pipelined client: any number of
//     goroutines may issue ReadAt/WriteAt/Advance/Stats calls on one
//     connection; a single reader goroutine matches responses to
//     waiters by request ID.
//
// Observability: every shard keeps atomic op and error counters, a
// queue-depth gauge, and power-of-two latency histograms. The same
// snapshot is served by the STATS op (as JSON) and optionally published
// through expvar for scraping alongside the rest of the process.
package pcmserve
