package pcmserve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// maxChunk is the largest read or write payload the client puts in one
// frame; larger ReadAt/WriteAt calls are split into sequential chunks.
const maxChunk = 1 << 20

// Client is a pipelined pcmserve client. It is safe for concurrent use:
// any number of goroutines may issue requests on one connection, each
// call blocking only its own goroutine while responses are matched back
// by request id.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]chan response
	err     error // sticky; set when the connection dies
	closed  bool

	nextID     atomic.Uint64
	readerDone chan struct{}
}

var _ io.ReaderAt = (*Client)(nil)
var _ io.WriterAt = (*Client)(nil)

// Dial connects to a pcmserve server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful for tests and
// custom transports). The client owns conn from here on.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriter(conn),
		pending:    make(map[uint64]chan response),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// readLoop routes response frames to waiting callers by request id.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReader(c.conn)
	for {
		buf, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		resp, err := parseResponse(buf)
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[resp.id]
		delete(c.pending, resp.id)
		c.pmu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// fail marks the client dead and wakes every waiter.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.err == nil {
		if c.closed {
			err = ErrClosed
		}
		c.err = fmt.Errorf("pcmserve: connection failed: %w", err)
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch) // a closed channel signals "see c.err"
	}
}

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() error {
	c.pmu.Lock()
	c.closed = true
	c.pmu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// roundTrip sends one encoded request frame and waits for its response.
func (c *Client) roundTrip(id uint64, reqFrame []byte) (response, error) {
	ch := make(chan response, 1)
	c.pmu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		c.pmu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return response{}, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	_, werr := c.bw.Write(reqFrame)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return response{}, fmt.Errorf("pcmserve: send: %w", werr)
	}

	resp, ok := <-ch
	if !ok {
		c.pmu.Lock()
		err := c.err
		c.pmu.Unlock()
		return response{}, err
	}
	if resp.status == StatusErr {
		return resp, errors.New(string(resp.payload))
	}
	return resp, nil
}

// ReadAt implements io.ReaderAt against the remote device, preserving
// its EOF semantics. Calls larger than 1 MiB are split into chunks.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	n := 0
	for n < len(p) {
		chunk := len(p) - n
		if chunk > maxChunk {
			chunk = maxChunk
		}
		id := c.nextID.Add(1)
		resp, err := c.roundTrip(id, encodeReadReq(id, off+int64(n), uint32(chunk)))
		if err != nil {
			return n, err
		}
		if len(resp.payload) > chunk {
			return n, fmt.Errorf("pcmserve: server returned %d bytes for a %d-byte read", len(resp.payload), chunk)
		}
		n += copy(p[n:], resp.payload)
		if resp.status == StatusEOF {
			return n, io.EOF
		}
		if len(resp.payload) < chunk {
			return n, io.ErrUnexpectedEOF
		}
	}
	return n, nil
}

// WriteAt implements io.WriterAt against the remote device. Calls
// larger than 1 MiB are split into chunks.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n := 0
	for n < len(p) {
		chunk := len(p) - n
		if chunk > maxChunk {
			chunk = maxChunk
		}
		id := c.nextID.Add(1)
		resp, err := c.roundTrip(id, encodeWriteReq(id, off+int64(n), p[n:n+chunk]))
		if err != nil {
			return n, err
		}
		if len(resp.payload) != 4 {
			return n, fmt.Errorf("pcmserve: malformed WRITE response (%d bytes)", len(resp.payload))
		}
		wrote := int(binary.BigEndian.Uint32(resp.payload))
		n += wrote
		if wrote < chunk {
			return n, io.ErrShortWrite
		}
	}
	return n, nil
}

// Advance moves the remote device's simulated time forward by dt
// seconds (driving refresh where the architecture needs it).
func (c *Client) Advance(dt float64) error {
	id := c.nextID.Add(1)
	_, err := c.roundTrip(id, encodeAdvanceReq(id, dt))
	return err
}

// Stats fetches the server's observability snapshot via the STATS op.
func (c *Client) Stats() (Stats, error) {
	id := c.nextID.Add(1)
	resp, err := c.roundTrip(id, encodeStatsReq(id))
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(resp.payload, &st); err != nil {
		return Stats{}, fmt.Errorf("pcmserve: decoding STATS response: %w", err)
	}
	return st, nil
}
