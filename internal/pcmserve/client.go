package pcmserve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// maxChunk is the largest read or write payload the client puts in one
// frame; larger ReadAt/WriteAt calls are split into sequential chunks.
// Extended-header writes shave extHeaderBytes (rounded up to 64 for
// slack) off the chunk so the frame stays inside DefaultMaxFrame,
// which predates the header and must not move (old peers enforce it).
const maxChunk = 1 << 20

// classKey tags a context as carrying background work.
type classKey struct{}

// WithBackground marks ctx's requests as background class: servers shed
// them first under queue pressure (refresh, scrub, read-repair,
// anti-entropy, membership transfers ride this).
func WithBackground(ctx context.Context) context.Context {
	return context.WithValue(ctx, classKey{}, true)
}

// IsBackground reports whether ctx was tagged by WithBackground.
func IsBackground(ctx context.Context) bool {
	b, _ := ctx.Value(classKey{}).(bool)
	return b
}

// Client is a pipelined pcmserve client over ONE connection. It is safe
// for concurrent use: any number of goroutines may issue requests, each
// call blocking only its own goroutine while responses are matched back
// by request id.
//
// A Client does not survive its connection: once the conn dies every
// call fails with a sticky error. RetryClient layers reconnection and
// retry policy on top.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]chan response
	err     error // sticky; set when the connection dies
	closed  bool

	nextID     atomic.Uint64
	opTimeout  atomic.Int64 // nanoseconds; 0 = none
	readerDone chan struct{}

	// legacy latches when a peer rejects the extended header (deadline +
	// class): from then on this client sends legacy frames. RetryClient
	// shares one latch across redials so the downgrade is probed once
	// per peer, not once per connection.
	legacy *atomic.Bool
}

var _ io.ReaderAt = (*Client)(nil)
var _ io.WriterAt = (*Client)(nil)

// Dial connects to a pcmserve server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful for tests and
// custom transports). The client owns conn from here on.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriter(conn),
		pending:    make(map[uint64]chan response),
		readerDone: make(chan struct{}),
		legacy:     new(atomic.Bool),
	}
	go c.readLoop()
	return c
}

// reqExt builds the extended header for one request, or nil when the
// peer latched legacy. The deadline field carries the budget REMAINING
// at send time in µs (the server restarts the clock at receipt, so
// one-way latency eats into the budget exactly once).
func (c *Client) reqExt(ctx context.Context) *wireExt {
	if c.legacy.Load() {
		return nil
	}
	e := &wireExt{}
	if IsBackground(ctx) {
		e.class = classBackground
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			e.deadlineUs = uint64(rem / time.Microsecond)
			if e.deadlineUs == 0 {
				e.deadlineUs = 1
			}
		} else {
			e.deadlineUs = 1 // already expired; server fast-fails typed
		}
	}
	return e
}

// roundTripExt is roundTrip plus the legacy-downgrade probe: a peer
// predating the extended header answers a flagged op with a generic
// "unknown op" error and closes the connection. The latch flips, the
// typed failure invalidates the connection upstream, and the retry
// lands with legacy framing.
func (c *Client) roundTripExt(ctx context.Context, id uint64, reqFrame []byte, ext *wireExt) (response, error) {
	resp, err := c.roundTrip(ctx, id, reqFrame)
	if err != nil && ext != nil {
		var re *RemoteError
		if errors.As(err, &re) && re.Code == CodeGeneric && strings.Contains(re.Msg, "unknown op") {
			c.legacy.Store(true)
			// RemoteError rides as text only: the caller must see a dead
			// conn (redial), not an in-band verdict (conn reuse).
			return response{}, fmt.Errorf("%w: peer rejected extended header, latched legacy framing: %v", ErrConnFailed, re)
		}
	}
	return resp, err
}

// SetOpTimeout bounds every subsequent deadline-less operation (the
// plain ReadAt/WriteAt/Advance/Stats API): each op gets a context with
// this timeout, so a stalled server fails the call instead of blocking
// it forever. Zero (the default) disables the bound. Context-taking
// variants are unaffected.
func (c *Client) SetOpTimeout(d time.Duration) { c.opTimeout.Store(int64(d)) }

// opCtx derives the context for a deadline-less API call.
func (c *Client) opCtx() (context.Context, context.CancelFunc) {
	if d := time.Duration(c.opTimeout.Load()); d > 0 {
		return context.WithTimeout(context.Background(), d)
	}
	return context.Background(), func() {}
}

// readLoop routes response frames to waiting callers by request id.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReader(c.conn)
	for {
		buf, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		resp, err := parseResponse(buf)
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[resp.id]
		delete(c.pending, resp.id)
		c.pmu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// fail marks the client dead and wakes every waiter.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.err == nil {
		switch {
		case c.closed:
			c.err = fmt.Errorf("%w: %w", ErrConnFailed, ErrClosed)
		case errors.Is(err, ErrFrameCRC):
			// Keep the typed identity: callers distinguishing wire
			// corruption from plain disconnects rely on errors.Is, and
			// ErrFrameCRC has no aliasing hazard.
			c.err = fmt.Errorf("%w: %w", ErrConnFailed, ErrFrameCRC)
		default:
			// The cause goes in as text only: a peer close is io.EOF, and
			// wrapping it would alias a dead conn with end-of-device.
			c.err = fmt.Errorf("%w: %v", ErrConnFailed, err)
		}
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch) // a closed channel signals "see c.err"
	}
}

// Close tears down the connection; outstanding calls fail. It is
// idempotent and concurrent-safe: exactly one caller closes the conn
// and awaits the reader, every later call returns ErrClosed.
func (c *Client) Close() error {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return ErrClosed
	}
	c.closed = true
	c.pmu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// roundTrip sends one encoded request frame and waits for its response,
// abandoning the wait (but not the server-side work) when ctx ends.
func (c *Client) roundTrip(ctx context.Context, id uint64, reqFrame []byte) (response, error) {
	ch := make(chan response, 1)
	c.pmu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		c.pmu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return response{}, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	_, werr := c.bw.Write(reqFrame)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return response{}, fmt.Errorf("pcmserve: send: %w", werr)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.pmu.Lock()
			err := c.err
			c.pmu.Unlock()
			return response{}, err
		}
		if resp.status == StatusErr {
			return resp, decodeWireError(resp.payload)
		}
		return resp, nil
	case <-ctx.Done():
		// Unregister so the late response (if any) is dropped; the
		// request may still execute server-side.
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return response{}, fmt.Errorf("pcmserve: request %d abandoned: %w", id, ctx.Err())
	}
}

// ReadAt implements io.ReaderAt against the remote device, preserving
// its EOF semantics, bounded by the SetOpTimeout deadline if one is
// set. Calls larger than 1 MiB are split into chunks.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	ctx, cancel := c.opCtx()
	defer cancel()
	return c.ReadAtCtx(ctx, p, off)
}

// ReadAtCtx is ReadAt under a caller context: when ctx ends the call
// returns immediately with ctx's error (the wait is abandoned; reads
// are idempotent so nothing is lost). A trace ID attached to ctx via
// internal/obs rides the request frames to the server, where it keys
// span records, the sampled trace log, and flight-recorder entries.
func (c *Client) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	trace := obs.TraceFromContext(ctx)
	n := 0
	for n < len(p) {
		chunk := len(p) - n
		if chunk > maxChunk {
			chunk = maxChunk
		}
		id := c.nextID.Add(1)
		ext := c.reqExt(ctx)
		resp, err := c.roundTripExt(ctx, id, encodeReadReq(id, trace, ext, off+int64(n), uint32(chunk)), ext)
		if err != nil {
			return n, err
		}
		if len(resp.payload) > chunk {
			return n, fmt.Errorf("pcmserve: server returned %d bytes for a %d-byte read", len(resp.payload), chunk)
		}
		n += copy(p[n:], resp.payload)
		if resp.status == StatusEOF {
			return n, io.EOF
		}
		if len(resp.payload) < chunk {
			return n, io.ErrUnexpectedEOF
		}
	}
	return n, nil
}

// WriteAt implements io.WriterAt against the remote device, bounded by
// the SetOpTimeout deadline if one is set. Calls larger than 1 MiB are
// split into chunks.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	ctx, cancel := c.opCtx()
	defer cancel()
	return c.WriteAtCtx(ctx, p, off)
}

// WriteAtCtx is WriteAt under a caller context. An abandoned write may
// still apply server-side; callers needing certainty must read back or
// resubmit (RetryClient does the latter with bounded attempts). A
// trace ID attached to ctx via internal/obs rides the request frames.
func (c *Client) WriteAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	trace := obs.TraceFromContext(ctx)
	n := 0
	for n < len(p) {
		ext := c.reqExt(ctx)
		limit := maxChunk
		if ext != nil {
			limit = maxChunk - 64 // leave room for the extended header
		}
		chunk := len(p) - n
		if chunk > limit {
			chunk = limit
		}
		id := c.nextID.Add(1)
		resp, err := c.roundTripExt(ctx, id, encodeWriteReq(id, trace, ext, off+int64(n), p[n:n+chunk]), ext)
		if err != nil {
			return n, err
		}
		if len(resp.payload) != 4 {
			return n, fmt.Errorf("pcmserve: malformed WRITE response (%d bytes)", len(resp.payload))
		}
		wrote := int(binary.BigEndian.Uint32(resp.payload))
		n += wrote
		if wrote < chunk {
			return n, io.ErrShortWrite
		}
	}
	return n, nil
}

// RangeDigest is one chunk's verdict from a HASH_RANGE exchange.
type RangeDigest struct {
	// Records is how many records the chunk covers.
	Records int
	// Unreadable marks a chunk the server could not read; its Digest is
	// meaningless and callers must treat the chunk as divergent.
	Unreadable bool
	// Digest is the FNV-1a 64 hash of the chunk's raw bytes.
	Digest uint64
}

// HashRangeCtx asks the server to digest count records of recordBytes
// each starting at off, split into at most fanout contiguous chunks.
// The server never ships the range over the wire — only one digest per
// chunk — so comparing replicas costs O(fanout), not O(bytes). Peers
// without the op return an error satisfying
// errors.Is(err, ErrUnsupported).
func (c *Client) HashRangeCtx(ctx context.Context, off int64, recordBytes, count, fanout int) ([]RangeDigest, error) {
	if recordBytes <= 0 || count <= 0 || fanout <= 0 {
		return nil, fmt.Errorf("pcmserve: HashRange rec=%d count=%d fanout=%d: all must be positive",
			recordBytes, count, fanout)
	}
	if int64(recordBytes)*int64(count) > maxRangeBytes {
		return nil, fmt.Errorf("pcmserve: HashRange covers %d bytes, limit %d",
			int64(recordBytes)*int64(count), maxRangeBytes)
	}
	id := c.nextID.Add(1)
	ext := c.reqExt(ctx)
	req := encodeHashRangeReq(id, obs.TraceFromContext(ctx), ext, off,
		uint32(recordBytes), uint32(count), uint32(fanout))
	resp, err := c.roundTripExt(ctx, id, req, ext)
	if err != nil {
		return nil, err
	}
	if len(resp.payload) == 0 || len(resp.payload)%13 != 0 {
		return nil, fmt.Errorf("pcmserve: malformed HASH_RANGE response (%d bytes)", len(resp.payload))
	}
	out := make([]RangeDigest, 0, len(resp.payload)/13)
	covered := 0
	for p := resp.payload; len(p) > 0; p = p[13:] {
		d := RangeDigest{
			Records:    int(binary.BigEndian.Uint32(p)),
			Unreadable: p[4] != 0,
			Digest:     binary.BigEndian.Uint64(p[5:]),
		}
		covered += d.Records
		out = append(out, d)
	}
	if covered != count {
		return nil, fmt.Errorf("pcmserve: HASH_RANGE response covers %d records, want %d", covered, count)
	}
	return out, nil
}

// ReadStrideCtx reads the first recordBytes of count records spaced
// stride bytes apart starting at off — one round trip where per-record
// reads would cost count. It returns one slice per record, nil for
// records the server could not read. Peers without the op return an
// error satisfying errors.Is(err, ErrUnsupported).
func (c *Client) ReadStrideCtx(ctx context.Context, off int64, stride, recordBytes, count int) ([][]byte, error) {
	if recordBytes <= 0 || count <= 0 || stride < recordBytes {
		return nil, fmt.Errorf("pcmserve: ReadStride rec=%d count=%d stride=%d: need rec>0, count>0, stride≥rec",
			recordBytes, count, stride)
	}
	if int64(count)+int64(count)*int64(recordBytes) > maxChunk {
		return nil, fmt.Errorf("pcmserve: ReadStride reply %d bytes exceeds frame budget",
			int64(count)+int64(count)*int64(recordBytes))
	}
	id := c.nextID.Add(1)
	ext := c.reqExt(ctx)
	req := encodeReadStrideReq(id, obs.TraceFromContext(ctx), ext, off,
		uint32(stride), uint32(recordBytes), uint32(count))
	resp, err := c.roundTripExt(ctx, id, req, ext)
	if err != nil {
		return nil, err
	}
	want := count + count*recordBytes
	if len(resp.payload) != want {
		return nil, fmt.Errorf("pcmserve: malformed READ_STRIDE response (%d bytes, want %d)", len(resp.payload), want)
	}
	flags, records := resp.payload[:count], resp.payload[count:]
	out := make([][]byte, count)
	for i := 0; i < count; i++ {
		if flags[i] != 0 {
			continue
		}
		out[i] = records[i*recordBytes : (i+1)*recordBytes]
	}
	return out, nil
}

// Advance moves the remote device's simulated time forward by dt
// seconds (driving refresh where the architecture needs it).
func (c *Client) Advance(dt float64) error {
	ctx, cancel := c.opCtx()
	defer cancel()
	return c.AdvanceCtx(ctx, dt)
}

// AdvanceCtx is Advance under a caller context.
func (c *Client) AdvanceCtx(ctx context.Context, dt float64) error {
	id := c.nextID.Add(1)
	ext := c.reqExt(ctx)
	_, err := c.roundTripExt(ctx, id, encodeAdvanceReq(id, obs.TraceFromContext(ctx), ext, dt), ext)
	return err
}

// Stats fetches the server's observability snapshot via the STATS op.
func (c *Client) Stats() (Stats, error) {
	ctx, cancel := c.opCtx()
	defer cancel()
	return c.StatsCtx(ctx)
}

// StatsCtx is Stats under a caller context.
func (c *Client) StatsCtx(ctx context.Context) (Stats, error) {
	id := c.nextID.Add(1)
	ext := c.reqExt(ctx)
	resp, err := c.roundTripExt(ctx, id, encodeStatsReq(id, obs.TraceFromContext(ctx), ext), ext)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(resp.payload, &st); err != nil {
		return Stats{}, fmt.Errorf("pcmserve: decoding STATS response: %w", err)
	}
	return st, nil
}
