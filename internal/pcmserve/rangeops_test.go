package pcmserve

import (
	"context"
	"errors"
	"hash/fnv"
	"testing"
)

// TestHashRangeDigests pins the HASH_RANGE contract: chunk digests
// equal FNV-1a 64 over the raw stored bytes, chunk record counts sum
// to the request, and fanout larger than the record count clamps.
func TestHashRangeDigests(t *testing.T) {
	g := testShards(t, 2, 16, 8) // 2 shards × 16 blocks × 64 B = 2 KiB
	addr := startServer(t, g, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const recordBytes = 80
	const count = 20
	data := make([]byte, recordBytes*count)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	if _, err := c.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}

	for _, fanout := range []int{1, 3, count, count * 4} {
		digests, err := c.HashRangeCtx(context.Background(), 0, recordBytes, count, fanout)
		if err != nil {
			t.Fatalf("HashRange fanout=%d: %v", fanout, err)
		}
		wantChunks := fanout
		if wantChunks > count {
			wantChunks = count
		}
		if len(digests) != wantChunks {
			t.Fatalf("fanout=%d: got %d chunks, want %d", fanout, len(digests), wantChunks)
		}
		off := 0
		for i, d := range digests {
			if d.Unreadable {
				t.Fatalf("fanout=%d chunk %d flagged unreadable", fanout, i)
			}
			h := fnv.New64a()
			h.Write(data[off : off+d.Records*recordBytes])
			if d.Digest != h.Sum64() {
				t.Fatalf("fanout=%d chunk %d digest mismatch", fanout, i)
			}
			off += d.Records * recordBytes
		}
		if off != len(data) {
			t.Fatalf("fanout=%d: chunks cover %d bytes, want %d", fanout, off, len(data))
		}
	}

	// A single flipped stored byte must change exactly the covering
	// chunk's digest.
	before, err := c.HashRangeCtx(context.Background(), 0, recordBytes, count, 4)
	if err != nil {
		t.Fatalf("HashRange: %v", err)
	}
	data[recordBytes*7] ^= 0xFF // record 7 → chunk 1 of 4 (5 records each)
	if _, err := c.WriteAt(data[recordBytes*7:recordBytes*8], recordBytes*7); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	after, err := c.HashRangeCtx(context.Background(), 0, recordBytes, count, 4)
	if err != nil {
		t.Fatalf("HashRange: %v", err)
	}
	for i := range before {
		changed := before[i].Digest != after[i].Digest
		if want := i == 1; changed != want {
			t.Errorf("chunk %d digest changed=%v, want %v", i, changed, want)
		}
	}
}

// TestReadStrideFetchesTrailers pins the READ_STRIDE contract: one
// round trip returns the first recordBytes of every stride-spaced
// record, exactly matching the stored bytes.
func TestReadStrideFetchesTrailers(t *testing.T) {
	g := testShards(t, 2, 16, 8)
	addr := startServer(t, g, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const stride = 80
	const recordBytes = 16
	const count = 12
	data := make([]byte, stride*count)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if _, err := c.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	records, err := c.ReadStrideCtx(context.Background(), 0, stride, recordBytes, count)
	if err != nil {
		t.Fatalf("ReadStride: %v", err)
	}
	if len(records) != count {
		t.Fatalf("got %d records, want %d", len(records), count)
	}
	for i, rec := range records {
		if rec == nil {
			t.Fatalf("record %d flagged unreadable", i)
		}
		want := data[i*stride : i*stride+recordBytes]
		for j := range rec {
			if rec[j] != want[j] {
				t.Fatalf("record %d byte %d = %#x, want %#x", i, j, rec[j], want[j])
			}
		}
	}
}

// TestRangeOpsUnsupported pins the capability fallback: a server with
// DisableRangeOps answers both ops with a typed ErrUnsupported that
// classifies permanent (the breaker must not count it, and callers
// must fall back instead of retrying).
func TestRangeOpsUnsupported(t *testing.T) {
	g := testShards(t, 2, 16, 8)
	addr := startServer(t, g, ServerConfig{DisableRangeOps: true})
	rc, err := DialRetry(addr, RetryConfig{MaxReadAttempts: 2, OpTimeout: 5e9})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()

	if _, err := rc.HashRangeCtx(context.Background(), 0, 80, 4, 2); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("HashRange error = %v, want ErrUnsupported", err)
	} else if Classify(err) != ClassPermanent {
		t.Fatalf("HashRange unsupported classifies %v, want permanent", Classify(err))
	}
	if _, err := rc.ReadStrideCtx(context.Background(), 0, 80, 16, 4); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("ReadStride error = %v, want ErrUnsupported", err)
	}
	if st := rc.RetryStats(); st.Retries != 0 {
		t.Fatalf("unsupported verdict was retried %d times, want 0", st.Retries)
	}

	// The data-path ops must be unaffected by the capability flag.
	buf := make([]byte, 64)
	if _, err := rc.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt with DisableRangeOps: %v", err)
	}
}
