package pcmserve

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
)

// obsShardsConfig is the common base for observability tests: 2 shards
// × 8 blocks (512 B per shard), every trace sampled.
func obsShardsConfig() ShardsConfig {
	return ShardsConfig{
		Shards:     2,
		QueueDepth: 8,
		Device: device.Config{
			Kind:           device.ThreeLC,
			Blocks:         8,
			Seed:           12345,
			DisableWearout: true,
		},
		Obs: &Observability{TraceSampleEvery: 1},
	}
}

// TestTracePropagationEndToEnd is the acceptance-criteria tracing test:
// a trace ID allocated in the client rides the wire protocol into the
// server, appears in the server's span records (with per-shard queue
// wait and service time), and lands in the per-shard flight recorder.
func TestTracePropagationEndToEnd(t *testing.T) {
	g, err := NewShards(obsShardsConfig())
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	addr := startServer(t, g, ServerConfig{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const traceID = 0xC0FFEE42
	ctx := obs.ContextWithTrace(context.Background(), traceID)
	shardSize := g.Size() / int64(g.NumShards())
	// Straddle the shard boundary so the trace records two spans.
	buf := make([]byte, 128)
	off := shardSize - 64
	if _, err := c.WriteAtCtx(ctx, buf, off); err != nil {
		t.Fatalf("WriteAtCtx: %v", err)
	}
	if _, err := c.ReadAtCtx(ctx, buf, off); err != nil {
		t.Fatalf("ReadAtCtx: %v", err)
	}

	var writeTrace, readTrace *obs.Trace
	for _, tr := range g.Traces().Recent() {
		tr := tr
		if tr.ID != traceID {
			continue
		}
		switch tr.Op {
		case "write":
			writeTrace = &tr
		case "read":
			readTrace = &tr
		}
	}
	if writeTrace == nil || readTrace == nil {
		t.Fatalf("trace %#x missing from server trace log (write=%v read=%v)", uint64(traceID), writeTrace, readTrace)
	}
	for _, tr := range []*obs.Trace{writeTrace, readTrace} {
		if len(tr.Spans) != 2 {
			t.Errorf("%s trace has %d spans, want 2 (boundary straddle)", tr.Op, len(tr.Spans))
			continue
		}
		shards := map[int]bool{}
		for _, sp := range tr.Spans {
			shards[sp.Shard] = true
			if sp.Err != "" {
				t.Errorf("%s span on shard %d reports error %q", tr.Op, sp.Shard, sp.Err)
			}
		}
		if !shards[0] || !shards[1] {
			t.Errorf("%s trace spans cover shards %v, want both 0 and 1", tr.Op, shards)
		}
		if tr.Total <= 0 {
			t.Errorf("%s trace total = %v, want > 0", tr.Op, tr.Total)
		}
	}

	// The same trace ID must be visible in the flight recorders of both
	// shards the request touched.
	found := map[int]bool{}
	for _, d := range g.RecorderSnapshots() {
		for _, ev := range d.Events {
			if ev.TraceID == traceID {
				found[d.Shard] = true
			}
		}
	}
	if !found[0] || !found[1] {
		t.Errorf("trace %#x in flight recorders of shards %v, want both", uint64(traceID), found)
	}
}

// TestRetryClientAllocatesTrace verifies the retry layer stamps every
// op with a trace ID of its own when the caller provides none, so
// server-side observability never sees untraced client traffic.
func TestRetryClientAllocatesTrace(t *testing.T) {
	g, err := NewShards(obsShardsConfig())
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	addr := startServer(t, g, ServerConfig{})

	rc, err := DialRetry(addr, RetryConfig{})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer rc.Close()
	if _, err := rc.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	traces := g.Traces().Recent()
	if len(traces) == 0 {
		t.Fatal("no traces recorded")
	}
	for _, tr := range traces {
		if tr.ID == 0 {
			t.Errorf("retry-client %s op recorded with zero trace ID", tr.Op)
		}
	}
}

// TestAdminPlane is the acceptance-criteria metrics test: /metrics is
// valid Prometheus exposition carrying shard latency histograms, error
// counts by class, scrub repairs, and spare-pool gauges; /healthz and
// pprof respond 200; and byte counters exclude failed requests.
func TestAdminPlane(t *testing.T) {
	cfg := obsShardsConfig()
	cfg.Device.ReserveBlocks = 2
	cfg.ScrubInterval = 2 * time.Millisecond
	g, fis := testShardsFI(t, cfg, nil)
	srv := NewServer(g, ServerConfig{})
	ln := startServerOn(t, srv)
	c, err := Dial(ln)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Successful traffic, then a failed read that must not accrue
	// bytes (the countOp fix).
	buf := make([]byte, 64)
	if _, err := c.WriteAt(buf, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	before := srv.Stats()
	fis[0].ArmReadError(1)
	if _, err := c.ReadAt(buf, 0); err == nil {
		t.Fatal("armed read error did not surface")
	}
	after := srv.Stats()
	if after.BytesRead != before.BytesRead {
		t.Errorf("failed read accrued %d bytes", after.BytesRead-before.BytesRead)
	}
	if after.Reads != before.Reads+1 || after.Errors != before.Errors+1 {
		t.Errorf("failed read counted reads %d→%d errors %d→%d, want +1 each",
			before.Reads, after.Reads, before.Errors, after.Errors)
	}

	// Arm correctable drift on a block so the scrubber has something
	// to repair, then wait for it to come around.
	fis[0].DriftBlock(2)
	deadline := time.Now().Add(5 * time.Second)
	for g.ScrubStats().Repaired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scrubber repaired nothing within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}

	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(admin.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	fams, err := obs.ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics not valid exposition: %v", err)
	}

	lat := fams["pcmserve_shard_op_latency_seconds"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("latency histogram family missing (%+v)", lat)
	}
	sawBucket := false
	for _, s := range lat.Samples {
		if strings.HasSuffix(s.Name, "_bucket") && s.Labels["op"] == "read" && s.Value > 0 {
			sawBucket = true
		}
	}
	if !sawBucket {
		t.Error("no populated read-latency bucket in /metrics")
	}

	classErrs := fams["pcmserve_request_errors_by_class_total"]
	if classErrs == nil {
		t.Fatal("error-by-class family missing")
	}
	corrupt := 0.0
	for _, s := range classErrs.Samples {
		if s.Labels["class"] == "corrupt" {
			corrupt = s.Value
		}
	}
	if corrupt < 1 {
		t.Errorf("corrupt error counter = %g, want ≥ 1 after injected uncorrectable read", corrupt)
	}

	repairs := fams["pcmserve_scrub_repairs_total"]
	if repairs == nil {
		t.Fatal("scrub repairs family missing")
	}
	drift := 0.0
	for _, s := range repairs.Samples {
		if s.Labels["cause"] == "drift" {
			drift = s.Value
		}
	}
	if drift < 1 {
		t.Errorf("scrub repairs (cause=drift) = %g, want ≥ 1", drift)
	}

	spares := fams["pcmserve_shard_spare_blocks"]
	if spares == nil {
		t.Fatal("spare-pool gauge family missing")
	}
	for _, s := range spares.Samples {
		if s.Value != 2 {
			t.Errorf("shard %s spare blocks = %g, want 2 (untouched reserve)", s.Labels["shard"], s.Value)
		}
	}
	if fams["pcmserve_scrub_pass_headroom_seconds"] == nil {
		t.Error("refresh headroom gauge missing")
	}

	// The STATS snapshot must expose the same spare pool and the
	// bucket boundary export (the ShardStats satellite).
	st := srv.Stats()
	for _, ss := range st.Shards {
		if ss.SpareBlocksLeft != 2 {
			t.Errorf("shard %d SpareBlocksLeft = %d, want 2", ss.Shard, ss.SpareBlocksLeft)
		}
		if len(ss.LatencyBucketBoundsUs) != histBuckets-1 {
			t.Errorf("shard %d exports %d bucket bounds, want %d", ss.Shard, len(ss.LatencyBucketBoundsUs), histBuckets-1)
		}
		if len(ss.ReadLatencyUs) != histBuckets {
			t.Errorf("shard %d read histogram has %d buckets, want %d", ss.Shard, len(ss.ReadLatencyUs), histBuckets)
		}
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz status = %d, want 200", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status = %d, want 200", code)
	}
	if code, body := get("/tracez"); code != 200 || !strings.Contains(body, `"recent"`) {
		t.Errorf("/tracez status=%d body=%q", code, body)
	}
}

// startServerOn is startServer for a pre-built Server (so tests can
// keep the *Server for AdminHandler and Stats).
func startServerOn(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		<-serveErr
	})
	return ln.Addr().String()
}

// TestFlightRecorderDumpOnPanic is the acceptance-criteria flight
// recorder test: an injected shard panic (internal/faultinject) emits a
// dump of the shard's preceding operations, in order.
func TestFlightRecorderDumpOnPanic(t *testing.T) {
	var mu sync.Mutex
	var dumps []obs.Dump
	cfg := obsShardsConfig()
	cfg.Obs.DumpSink = func(d obs.Dump) {
		mu.Lock()
		dumps = append(dumps, d)
		mu.Unlock()
	}
	g, fis := testShardsFI(t, cfg, nil)

	// Seed the recorder with known traffic on shard 0.
	const warmupOps = 5
	for i := 0; i < warmupOps; i++ {
		if _, err := g.WriteAt(make([]byte, 64), int64(i)*64); err != nil {
			t.Fatalf("warmup write %d: %v", i, err)
		}
	}
	fis[0].ArmPanic(1)
	if _, err := g.WriteAt(make([]byte, 64), 0); err == nil {
		t.Fatal("write through armed panic succeeded")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(dumps) == 0 {
		t.Fatal("no flight-recorder dump after injected panic")
	}
	d := dumps[0]
	if d.Shard != 0 {
		t.Errorf("dump shard = %d, want 0", d.Shard)
	}
	if !strings.Contains(d.Reason, "panic") {
		t.Errorf("dump reason = %q, want a panic reason", d.Reason)
	}
	if len(d.Events) != warmupOps {
		t.Errorf("dump has %d events, want %d (the pre-panic ops)", len(d.Events), warmupOps)
	}
	for i, ev := range d.Events {
		if ev.Op != OpWrite {
			t.Errorf("event %d: op = %d, want write", i, ev.Op)
		}
		if i > 0 && ev.Seq != d.Events[i-1].Seq+1 {
			t.Errorf("event %d: seq %d not in order after %d", i, ev.Seq, d.Events[i-1].Seq)
		}
	}
}

// TestObsHammer drives concurrent readers and writers while polling
// /metrics and the STATS op; under -race it proves the observability
// plumbing adds no data races, and it asserts counters stay monotonic
// and the exposition stays well formed throughout.
func TestObsHammer(t *testing.T) {
	g, err := NewShards(obsShardsConfig())
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	srv := NewServer(g, ServerConfig{})
	addr := startServerOn(t, srv)
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	const workers = 4
	const itersPerWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers+2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			buf := make([]byte, 64)
			for i := 0; i < itersPerWorker; i++ {
				off := int64((w*itersPerWorker + i) % 8 * 64)
				if _, err := c.WriteAt(buf, off); err != nil {
					errs <- err
					return
				}
				if _, err := c.ReadAt(buf, off); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(2)
	go func() { // exposition poller
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(admin.URL + "/metrics")
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if _, err := obs.ParseExposition(strings.NewReader(string(body))); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() { // STATS poller asserting monotonic counters
		defer pollWG.Done()
		c, err := Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		var lastReads, lastWrites, lastBytes uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, err := c.Stats()
			if err != nil {
				errs <- err
				return
			}
			if st.Reads < lastReads || st.Writes < lastWrites || st.BytesRead < lastBytes {
				t.Errorf("counters went backwards: reads %d→%d writes %d→%d bytes %d→%d",
					lastReads, st.Reads, lastWrites, st.Writes, lastBytes, st.BytesRead)
				return
			}
			lastReads, lastWrites, lastBytes = st.Reads, st.Writes, st.BytesRead
		}
	}()

	wg.Wait()
	close(stop)
	pollWG.Wait()
	select {
	case err := <-errs:
		t.Fatalf("hammer: %v", err)
	default:
	}

	st := srv.Stats()
	wantOps := uint64(workers * itersPerWorker)
	if st.Writes != wantOps || st.Reads < wantOps {
		// Reads: the STATS poller issues none, the workers exactly
		// wantOps; Stats() itself is not a read.
		t.Errorf("final counters reads=%d writes=%d, want reads=%d writes=%d",
			st.Reads, st.Writes, wantOps, wantOps)
	}
	if st.BytesWritten != wantOps*64 {
		t.Errorf("BytesWritten = %d, want %d", st.BytesWritten, wantOps*64)
	}
}
