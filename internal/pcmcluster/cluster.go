package pcmcluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pcmserve"
)

// Typed cluster errors; errors.Is-able through every wrap.
var (
	// ErrClosed: the cluster was closed.
	ErrClosed = errors.New("pcmcluster: cluster closed")
	// ErrReadQuorum: too few structurally valid replica replies.
	ErrReadQuorum = errors.New("pcmcluster: read quorum not met")
	// ErrWriteQuorum: too few replica acknowledgements. The write may
	// still have applied on some replicas; callers must treat the
	// block's content as undefined until a later write acknowledges.
	ErrWriteQuorum = errors.New("pcmcluster: write quorum not met")

	// errNodeDown is a replica-level fast-fail when the breaker holds a
	// node down; it classifies as transient.
	errNodeDown = errors.New("pcmcluster: node marked down")
)

const writeStripes = 1024

// Config assembles a Cluster. Zero values take documented defaults.
type Config struct {
	// Nodes lists the pcmserve node addresses. Placement depends only
	// on the set of addresses, not their order.
	Nodes []string
	// DialNode overrides how node connections are made (tests). The
	// default dials a pcmserve.RetryClient tuned for fast failover
	// (2 attempts, OpTimeout per attempt).
	DialNode func(addr string) (NodeClient, error)

	// ReplicationFactor is replicas per block (default min(3, nodes)).
	ReplicationFactor int
	// WriteQuorum (W) acknowledgements make a write durable;
	// ReadQuorum (R) valid replies serve a read. Defaults RF/2+1 each.
	// W+R > RF is enforced so read and write sets always intersect.
	WriteQuorum int
	ReadQuorum  int

	// Blocks fixes the replicated capacity; 0 probes every node's
	// STATS and uses the smallest node's capacity in SlotBytes slots.
	// The probe requires every node to answer (see probeCapacity); set
	// Blocks explicitly to start against a fleet with a node down.
	Blocks int64

	// OpTimeout bounds each replica attempt (default 1s).
	OpTimeout time.Duration
	// FailThreshold consecutive transient failures mark a node down
	// (default 2); ProbeInterval spaces half-open probes (default 500ms).
	FailThreshold int
	ProbeInterval time.Duration

	// HintCapacity bounds buffered writes per down node (default 4096);
	// HintReplayInterval paces the replay loop (default 200ms).
	HintCapacity       int
	HintReplayInterval time.Duration

	// AntiEntropyInterval is the per-block cadence of the background
	// reconciliation sweep; 0 disables it.
	AntiEntropyInterval time.Duration

	// Seed decorrelates version tiebreak tags and node retry jitter
	// between cluster clients. The default is a fresh random value per
	// process, so two clients never share a tiebreak tag unless both
	// are configured with the same explicit seed.
	Seed uint64

	// Registry receives the pcmcluster_* instruments (default: a
	// private registry, reachable via Cluster.Registry).
	Registry *obs.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = min(3, len(cfg.Nodes))
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.ReplicationFactor/2 + 1
	}
	if cfg.ReadQuorum <= 0 {
		cfg.ReadQuorum = cfg.ReplicationFactor/2 + 1
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.HintCapacity <= 0 {
		cfg.HintCapacity = 4096
	}
	if cfg.HintReplayInterval <= 0 {
		cfg.HintReplayInterval = 200 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = randomSeed()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	return cfg
}

// Cluster is a client-embedded replication layer over pcmserve nodes.
// It is safe for concurrent use.
type Cluster struct {
	nodes  []*node
	seeds  []uint64
	rf     int
	w, r   int
	blocks int64

	opTimeout time.Duration

	// verCounter, shifted over verTag, produces the version stamps. It
	// is a hybrid logical clock — max(wall-clock µs, last+1), seeded
	// from the clock at startup and ratcheted past every version
	// observed on any replica — so a restarted or second client keeps
	// stamping above everything already stored; a plain in-memory
	// counter would restart at 0 and lose last-writer-wins to its own
	// predecessor's data. The tag byte breaks ties between distinct
	// clients, and exact ties fall back to the data CRC (blockMeta.newer).
	verCounter atomic.Uint64
	verTag     uint8

	// stripes serialize every mutation of one block issued by this
	// client — quorum writes (held until all replicas resolve, not
	// just W), read-repairs, and hint replays — so a repair's
	// re-check-then-write can never clobber a newer in-flight write.
	stripes [writeStripes]sync.Mutex

	met *metrics

	closed atomic.Bool
	// opGate lets Close wait for in-flight public ops (read lock) to
	// finish spawning background work before it waits on bg.
	opGate sync.RWMutex
	stop   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	bg     sync.WaitGroup // straggler drains + repairs
	loops  sync.WaitGroup // hint drainer + anti-entropy sweeper
}

// New validates cfg, connects to every node, sizes the cluster, and
// starts the background loops.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("pcmcluster: at least one node required")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, a := range cfg.Nodes {
		if a == "" {
			return nil, errors.New("pcmcluster: empty node address")
		}
		if seen[a] {
			return nil, fmt.Errorf("pcmcluster: duplicate node address %q", a)
		}
		seen[a] = true
	}
	cfg = cfg.withDefaults()
	if cfg.ReplicationFactor > len(cfg.Nodes) {
		return nil, fmt.Errorf("pcmcluster: replication factor %d exceeds %d nodes",
			cfg.ReplicationFactor, len(cfg.Nodes))
	}
	rf := cfg.ReplicationFactor
	if cfg.WriteQuorum > rf || cfg.ReadQuorum > rf {
		return nil, fmt.Errorf("pcmcluster: quorums W=%d R=%d exceed replication factor %d",
			cfg.WriteQuorum, cfg.ReadQuorum, rf)
	}
	if cfg.WriteQuorum+cfg.ReadQuorum <= rf {
		return nil, fmt.Errorf("pcmcluster: W=%d + R=%d must exceed replication factor %d or reads can miss acknowledged writes",
			cfg.WriteQuorum, cfg.ReadQuorum, rf)
	}

	dial := cfg.DialNode
	if dial == nil {
		opTimeout := cfg.OpTimeout
		seed := cfg.Seed
		dial = func(addr string) (NodeClient, error) {
			return pcmserve.DialRetry(addr, pcmserve.RetryConfig{
				MaxReadAttempts:  2,
				MaxWriteAttempts: 2,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       50 * time.Millisecond,
				OpTimeout:        opTimeout,
				Seed:             seed ^ nodeSeed(addr),
			})
		}
	}

	c := &Cluster{
		rf:        rf,
		w:         cfg.WriteQuorum,
		r:         cfg.ReadQuorum,
		blocks:    cfg.Blocks,
		opTimeout: cfg.OpTimeout,
		verTag:    uint8(mix64(cfg.Seed)),
		stop:      make(chan struct{}),
	}
	c.verCounter.Store(uint64(time.Now().UnixMicro()))
	c.ctx, c.cancel = context.WithCancel(context.Background())
	for _, addr := range cfg.Nodes {
		nc, err := dial(addr)
		if err != nil {
			for _, n := range c.nodes {
				n.client.Close()
			}
			return nil, fmt.Errorf("pcmcluster: dial node %s: %w", addr, err)
		}
		n := newNode(addr, nc, cfg.FailThreshold, cfg.ProbeInterval, cfg.HintCapacity)
		c.nodes = append(c.nodes, n)
		c.seeds = append(c.seeds, n.seed)
	}
	c.met = newMetrics(cfg.Registry, c)

	if c.blocks == 0 {
		if err := c.probeCapacity(); err != nil {
			for _, n := range c.nodes {
				n.client.Close()
			}
			return nil, err
		}
	}

	c.loops.Add(1)
	go c.drainLoop(cfg.HintReplayInterval)
	if cfg.AntiEntropyInterval > 0 {
		c.loops.Add(1)
		go c.antiEntropyLoop(cfg.AntiEntropyInterval)
	}
	return c, nil
}

// probeCapacity sizes the cluster from the smallest node. Every
// configured node must answer: sizing from the smallest *reachable*
// node would overshoot an unreachable smaller one, and once it came
// back every write, hint, and repair beyond its capacity would fail
// permanently — its blocks stuck at RF-1 durability with no alarm. To
// start against a fleet with a node known down, set Config.Blocks
// explicitly.
func (c *Cluster) probeCapacity() error {
	type probe struct {
		idx  int
		size int64
		err  error
	}
	results := make(chan probe, len(c.nodes))
	for i, n := range c.nodes {
		go func(i int, n *node) {
			st, err := n.client.Stats()
			results <- probe{idx: i, size: st.SizeBytes, err: err}
		}(i, n)
	}
	minSize := int64(-1)
	var unreachable []string
	for range c.nodes {
		p := <-results
		if p.err != nil {
			unreachable = append(unreachable, fmt.Sprintf("%s (%v)", c.nodes[p.idx].addr, p.err))
			continue
		}
		if minSize < 0 || p.size < minSize {
			minSize = p.size
		}
	}
	if len(unreachable) > 0 {
		sort.Strings(unreachable)
		return fmt.Errorf("pcmcluster: capacity probe needs every node, %d unreachable: %s (set Config.Blocks to size the cluster without probing)",
			len(unreachable), strings.Join(unreachable, "; "))
	}
	c.blocks = minSize / SlotBytes
	if c.blocks < 1 {
		return fmt.Errorf("pcmcluster: smallest node (%d bytes) cannot hold one %d-byte slot", minSize, SlotBytes)
	}
	return nil
}

// Blocks returns the replicated block capacity.
func (c *Cluster) Blocks() int64 { return c.blocks }

// Close stops the background loops, waits for in-flight work, and
// closes every node connection.
func (c *Cluster) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	close(c.stop)
	c.loops.Wait()
	c.cancel()
	// Wait for public ops to finish spawning background work, then for
	// that work itself.
	c.opGate.Lock()
	//lint:ignore SA2001 the Lock/Unlock pair is a barrier for in-flight ops, not a critical section
	c.opGate.Unlock()
	c.bg.Wait()
	var firstErr error
	for _, n := range c.nodes {
		if err := n.client.Close(); err != nil && firstErr == nil && !errors.Is(err, pcmserve.ErrClosed) {
			firstErr = err
		}
	}
	return firstErr
}

func (c *Cluster) stripe(b int64) *sync.Mutex {
	return &c.stripes[uint64(b)%writeStripes]
}

func (c *Cluster) nextVersion() uint64 {
	now := uint64(time.Now().UnixMicro())
	for {
		cur := c.verCounter.Load()
		next := cur + 1
		if now > next {
			next = now
		}
		if c.verCounter.CompareAndSwap(cur, next) {
			return next<<8 | uint64(c.verTag)
		}
	}
}

// observeVersion ratchets the clock past a version seen on a replica,
// so every future write by this client orders after it.
func (c *Cluster) observeVersion(v uint64) {
	vc := v >> 8
	for {
		cur := c.verCounter.Load()
		if cur >= vc || c.verCounter.CompareAndSwap(cur, vc) {
			return
		}
	}
}

func (c *Cluster) checkBlock(b int64) error {
	if b < 0 || b >= c.blocks {
		return fmt.Errorf("pcmcluster: block %d out of range [0, %d)", b, c.blocks)
	}
	return nil
}

// noteResult feeds one replica op's outcome to the node's breaker and
// the per-node instruments. Typed in-band responses — including
// permanent and corrupt verdicts — prove the node alive; only
// transient failures (connection loss, timeouts, fast-fail while
// down) count toward marking it down.
func (c *Cluster) noteResult(idx int, write bool, err error) {
	n := c.nodes[idx]
	if write {
		c.met.nodeWrites[idx].Inc()
	} else {
		c.met.nodeReads[idx].Inc()
	}
	if err == nil {
		n.onSuccess()
		return
	}
	c.met.nodeErrs[idx].Inc()
	if errors.Is(err, errNodeDown) {
		return // fast-fail, not new evidence
	}
	if pcmserve.Classify(err) == pcmserve.ClassTransient {
		if n.onFailure() {
			c.met.nodeTransitions.Inc()
		}
		return
	}
	n.onSuccess()
}

// replicaRead is one replica's reply to a slot read.
type replicaRead struct {
	idx    int
	slot   []byte
	data   []byte
	meta   blockMeta
	status slotStatus
	err    error
}

// valid reports whether this reply counts toward the read quorum: a
// structurally sound slot (written or provably unwritten). Corrupt
// slots and errors do not count.
func (r replicaRead) valid() bool {
	return r.err == nil && r.status != slotCorrupt
}

// readReplica reads block b's slot from one node.
func (c *Cluster) readReplica(ctx context.Context, idx int, b int64) replicaRead {
	n := c.nodes[idx]
	if !n.admit() {
		c.noteResult(idx, false, errNodeDown)
		return replicaRead{idx: idx, err: errNodeDown}
	}
	buf := make([]byte, SlotBytes)
	_, err := n.client.ReadAtCtx(ctx, buf, b*SlotBytes)
	c.noteResult(idx, false, err)
	if err != nil {
		return replicaRead{idx: idx, err: err}
	}
	data, meta, status := decodeSlot(buf)
	if status == slotOK {
		c.observeVersion(meta.Version)
	}
	return replicaRead{idx: idx, slot: buf, data: data, meta: meta, status: status}
}

// writeReplica writes a stamped slot to one node, buffering a hint
// when the node is down or the write fails transiently.
func (c *Cluster) writeReplica(ctx context.Context, idx int, b int64, slot []byte, version uint64) error {
	n := c.nodes[idx]
	if !n.admit() {
		c.noteResult(idx, true, errNodeDown)
		c.queueHint(idx, b, slot, version)
		return errNodeDown
	}
	_, err := n.client.WriteAtCtx(ctx, slot, b*SlotBytes)
	c.noteResult(idx, true, err)
	if err != nil && pcmserve.Classify(err) == pcmserve.ClassTransient {
		c.queueHint(idx, b, slot, version)
	}
	return err
}

func (c *Cluster) queueHint(idx int, b int64, slot []byte, version uint64) {
	switch c.nodes[idx].addHint(b, slot, version) {
	case hintStored:
		c.met.hintsQueued.Inc()
	case hintSuperseded:
		c.met.hintsDroppedStale.Inc()
	case hintOverflow:
		c.met.hintsDroppedFull.Inc()
	}
}

// requeueHint puts a hint back after a failed replay batch. The re-add
// can itself fail — the buffer refilled meanwhile, or a newer hint for
// the block arrived — and those drops must be counted, not silent.
func (c *Cluster) requeueHint(n *node, b int64, h hint) {
	switch n.addHint(b, h.slot, h.version) {
	case hintSuperseded:
		c.met.hintsDroppedStale.Inc()
	case hintOverflow:
		c.met.hintsDroppedFull.Inc()
	}
}

// ReadBlock reads block b with read-quorum semantics: it returns the
// highest-version structurally valid copy among R valid replica
// replies (64 bytes; all zeros if the block was never written), or a
// typed error — never silently stale or corrupt data. Divergent
// replicas found along the way are repaired in the background.
func (c *Cluster) ReadBlock(ctx context.Context, b int64) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if err := c.checkBlock(b); err != nil {
		return nil, err
	}
	c.opGate.RLock()
	defer c.opGate.RUnlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.met.quorumReads.Inc()
	t0 := time.Now()

	reps := replicasFor(c.seeds, b, c.rf)
	results := make(chan replicaRead, len(reps))
	for _, idx := range reps {
		c.bg.Add(1)
		go func(idx int) {
			defer c.bg.Done()
			results <- c.readReplica(ctx, idx, b)
		}(idx)
	}

	var all []replicaRead
	valids := 0
	degraded := false
	for len(all) < len(reps) && valids < c.r {
		select {
		case res := <-results:
			all = append(all, res)
			if res.valid() {
				valids++
			} else {
				degraded = true
			}
		case <-ctx.Done():
			c.drainReads(b, len(reps)-len(all), results, all, blockMeta{}, nil, false)
			c.met.quorumFailRead.Inc()
			return nil, fmt.Errorf("pcmcluster: read block %d: %d/%d valid replies: %w: %w",
				b, valids, c.r, ctx.Err(), ErrReadQuorum)
		}
	}
	if valids < c.r {
		c.drainReads(b, len(reps)-len(all), results, all, blockMeta{}, nil, false)
		c.met.quorumFailRead.Inc()
		return nil, fmt.Errorf("pcmcluster: read block %d: %d/%d valid replies from %d replicas (last: %v): %w",
			b, valids, c.r, len(reps), firstProblem(all), ErrReadQuorum)
	}

	// Last-writer-wins: the highest version among the valid replies
	// (exact ties broken by data CRC — see blockMeta.newer).
	var winner replicaRead
	found := false
	for _, res := range all {
		if res.valid() && (!found || res.meta.newer(winner.meta)) {
			winner, found = res, true
		}
	}
	c.met.latRead.Observe(time.Since(t0).Seconds())
	if degraded {
		c.met.degradedReads.Inc()
	}
	// Stragglers still resolve, and any divergent replica (in the
	// quorum or behind it) is repaired — in the background so the read
	// returns at quorum speed.
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		c.drainReads(b, len(reps)-len(all), results, all, winner.meta, winner.slot, true)
	}()
	out := make([]byte, DataBytes)
	copy(out, winner.data)
	return out, nil
}

// firstProblem summarizes the first non-valid reply for error text.
func firstProblem(all []replicaRead) error {
	for _, r := range all {
		if r.err != nil {
			return r.err
		}
		if r.status == slotCorrupt {
			return errors.New("corrupt slot")
		}
	}
	return nil
}

// drainReads consumes remaining replica replies and, when repair is
// set, reconciles every divergent replica against the winner.
func (c *Cluster) drainReads(b int64, remaining int, results chan replicaRead, all []replicaRead, winner blockMeta, winnerSlot []byte, repair bool) {
	for ; remaining > 0; remaining-- {
		all = append(all, <-results)
	}
	if !repair {
		return
	}
	for _, res := range all {
		if res.err != nil {
			continue
		}
		switch {
		case res.status == slotCorrupt:
			c.met.divergentCorrupt.Inc()
			c.repairReplica(res.idx, b, winnerSlot, winner, c.met.repairsRead)
		case winner.newer(res.meta):
			c.met.divergentStale.Inc()
			c.repairReplica(res.idx, b, winnerSlot, winner, c.met.repairsRead)
		}
	}
}

// repairReplica rewrites block b on one replica from the winner slot.
// Under the block's stripe lock it re-reads the stored slot first: if a
// copy at or past the winner (in the version-then-CRC order) landed in
// the meantime the repair is skipped, so a repair can never regress a
// replica past a newer write. The re-check decodes the whole slot, not
// just the trailer — corrupted data under an intact trailer must still
// be rewritten.
func (c *Cluster) repairReplica(idx int, b int64, winnerSlot []byte, winner blockMeta, counter *obs.Counter) {
	n := c.nodes[idx]
	if n.currentState() != NodeUp {
		return // unreachable replicas converge via hints or later sweeps
	}
	mu := c.stripe(b)
	mu.Lock()
	defer mu.Unlock()
	cur := make([]byte, SlotBytes)
	if _, err := n.client.ReadAtCtx(c.ctx, cur, b*SlotBytes); err == nil {
		if _, m, status := decodeSlot(cur); status == slotOK {
			c.observeVersion(m.Version)
			if !winner.newer(m) {
				c.met.repairsSkipped.Inc()
				return
			}
		}
	}
	_, err := n.client.WriteAtCtx(c.ctx, winnerSlot, b*SlotBytes)
	c.noteResult(idx, true, err)
	if err != nil {
		c.met.repairsFailed.Inc()
		return
	}
	counter.Inc()
}

// WriteBlock writes 64 bytes to block b with write-quorum semantics:
// it stamps a fresh version, fans out to every replica, and returns
// once W replicas acknowledge (stragglers finish in the background;
// failed or unreachable replicas get hinted writes). On ErrWriteQuorum
// the write may still have partially applied.
func (c *Cluster) WriteBlock(ctx context.Context, b int64, data []byte) error {
	if len(data) != DataBytes {
		return fmt.Errorf("pcmcluster: write needs exactly %d bytes, got %d", DataBytes, len(data))
	}
	if c.closed.Load() {
		return ErrClosed
	}
	if err := c.checkBlock(b); err != nil {
		return err
	}
	c.opGate.RLock()
	defer c.opGate.RUnlock()
	if c.closed.Load() {
		return ErrClosed
	}
	c.met.quorumWrites.Inc()
	t0 := time.Now()

	version := c.nextVersion()
	slot := make([]byte, SlotBytes)
	encodeSlot(slot, data, version)
	reps := replicasFor(c.seeds, b, c.rf)

	// The stripe stays locked until every replica write resolves (not
	// just the first W), so no repair or hint replay can interleave
	// with this write's stragglers.
	mu := c.stripe(b)
	mu.Lock()
	results := make(chan error, len(reps))
	for _, idx := range reps {
		c.bg.Add(1)
		go func(idx int) {
			defer c.bg.Done()
			results <- c.writeReplica(ctx, idx, b, slot, version)
		}(idx)
	}

	acks, resolved := 0, 0
	var lastErr error
	ctxErr := error(nil)
	for resolved < len(reps) && acks < c.w && ctxErr == nil {
		select {
		case err := <-results:
			resolved++
			if err == nil {
				acks++
			} else {
				lastErr = err
			}
		case <-ctx.Done():
			ctxErr = ctx.Err()
		}
	}
	if resolved == len(reps) {
		mu.Unlock()
	} else {
		c.bg.Add(1)
		go func(remaining int) {
			defer c.bg.Done()
			for ; remaining > 0; remaining-- {
				<-results
			}
			mu.Unlock()
		}(len(reps) - resolved)
	}

	if acks >= c.w {
		c.met.latWrite.Observe(time.Since(t0).Seconds())
		if lastErr != nil {
			c.met.degradedWrites.Inc()
		}
		return nil
	}
	c.met.quorumFailWrite.Inc()
	if ctxErr != nil {
		return fmt.Errorf("pcmcluster: write block %d: %d/%d acks: %w: %w",
			b, acks, c.w, ctxErr, ErrWriteQuorum)
	}
	return fmt.Errorf("pcmcluster: write block %d: %d/%d acks from %d replicas (last: %v): %w",
		b, acks, c.w, len(reps), lastErr, ErrWriteQuorum)
}

// drainLoop replays hinted writes to nodes that have come back.
func (c *Cluster) drainLoop(interval time.Duration) {
	defer c.loops.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for idx, n := range c.nodes {
			if n.hintCount() == 0 {
				continue
			}
			if !n.admit() { // down and no probe due
				continue
			}
			hints := n.takeHints(256)
			requeue := false
			for b, h := range hints {
				if requeue {
					c.requeueHint(n, b, h)
					continue
				}
				if !c.replayHint(idx, b, h) {
					requeue = true
					c.requeueHint(n, b, h)
				}
			}
		}
	}
}

// replayHint applies one buffered write if the node's stored slot is
// still older. It returns false when the node failed again (the
// caller re-queues).
func (c *Cluster) replayHint(idx int, b int64, h hint) bool {
	n := c.nodes[idx]
	_, hMeta, _ := decodeSlot(h.slot) // always slotOK: hints hold encodeSlot output
	mu := c.stripe(b)
	mu.Lock()
	defer mu.Unlock()
	cur := make([]byte, SlotBytes)
	if _, err := n.client.ReadAtCtx(c.ctx, cur, b*SlotBytes); err == nil {
		if _, m, status := decodeSlot(cur); status == slotOK {
			c.observeVersion(m.Version)
			if !hMeta.newer(m) {
				c.met.hintsDroppedStale.Inc()
				return true
			}
		}
	}
	_, err := n.client.WriteAtCtx(c.ctx, h.slot, b*SlotBytes)
	c.noteResult(idx, true, err)
	if err != nil {
		return pcmserve.Classify(err) != pcmserve.ClassTransient
	}
	c.met.hintsReplayed.Inc()
	return true
}
