package pcmcluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ecstripe"
	"repro/internal/obs"
	"repro/internal/pcmlive"
	"repro/internal/pcmserve"
)

// Typed cluster errors; errors.Is-able through every wrap.
var (
	// ErrClosed: the cluster was closed.
	ErrClosed = errors.New("pcmcluster: cluster closed")
	// ErrReadQuorum: too few structurally valid replica replies.
	ErrReadQuorum = errors.New("pcmcluster: read quorum not met")
	// ErrWriteQuorum: too few replica acknowledgements. The write may
	// still have applied on some replicas; callers must treat the
	// block's content as undefined until a later write acknowledges.
	ErrWriteQuorum = errors.New("pcmcluster: write quorum not met")

	// errNodeDown is a replica-level fast-fail when the breaker holds a
	// node down; it classifies as transient.
	errNodeDown = errors.New("pcmcluster: node marked down")
)

const writeStripes = 1024

// Config assembles a Cluster. Zero values take documented defaults.
type Config struct {
	// Nodes lists the pcmserve node addresses. Placement depends only
	// on the set of addresses, not their order.
	Nodes []string
	// DialNode overrides how node connections are made (tests). The
	// default dials a pcmserve.RetryClient tuned for fast failover
	// (2 attempts, OpTimeout per attempt). Join dials through the same
	// function.
	DialNode func(addr string) (NodeClient, error)

	// Coding selects the redundancy scheme. "" or "rf" mirrors each
	// block onto ReplicationFactor nodes; "rs:K+M" Reed-Solomon-stripes
	// each block into K data + M parity fragments on K+M nodes (see
	// coding.go). Coded mode derives ReplicationFactor = K+M,
	// WriteQuorum = K+⌈M/2⌉, and ReadQuorum = K; setting any of those
	// to a conflicting value is a configuration error.
	Coding string

	// ReplicationFactor is replicas per block (default min(3, nodes)).
	ReplicationFactor int
	// WriteQuorum (W) acknowledgements make a write durable;
	// ReadQuorum (R) valid replies serve a read. Defaults RF/2+1 each.
	// W+R > RF is enforced so read and write sets always intersect.
	WriteQuorum int
	ReadQuorum  int

	// Blocks fixes the replicated capacity; 0 probes every node's
	// STATS and uses the smallest node's capacity in SlotBytes slots.
	// The probe requires every node to answer (see probeCapacity); set
	// Blocks explicitly to start against a fleet with a node down.
	Blocks int64

	// PartitionSlots is the placement granularity: consecutive runs of
	// this many slots share their replica set, making a partition the
	// unit of membership transfer and Merkle anti-entropy exchange. The
	// default (defaultPartitionSlots) is 1 slot per partition until the
	// block count exceeds maxPartitions, then the smallest power of two
	// keeping the partition count bounded.
	PartitionSlots int64

	// TransferSegmentSlots is the membership bulk-transfer batch: slots
	// moved per checkpointed segment (default 64).
	TransferSegmentSlots int64

	// OpTimeout bounds each replica attempt (default 1s).
	OpTimeout time.Duration
	// FailThreshold consecutive transient failures mark a node down
	// (default 2); ProbeInterval spaces half-open probes (default 500ms).
	FailThreshold int
	ProbeInterval time.Duration

	// HintCapacity bounds buffered writes per down node (default 4096);
	// HintReplayInterval paces the replay loop (default 200ms).
	HintCapacity       int
	HintReplayInterval time.Duration

	// AntiEntropyInterval is the per-partition cadence of the background
	// reconciliation sweep; 0 disables it.
	AntiEntropyInterval time.Duration
	// AntiEntropySweepBytesPerSec caps how fast the legacy per-slot
	// sweep reads replica data (default 4 MiB/s; negative disables the
	// cap). The Merkle exchange is O(divergence) and is not metered.
	AntiEntropySweepBytesPerSec float64
	// DisableMerkleExchange forces the legacy per-slot sweep even when
	// every replica supports the range ops.
	DisableMerkleExchange bool

	// Seed decorrelates version tiebreak tags and node retry jitter
	// between cluster clients. The default is a fresh random value per
	// process, so two clients never share a tiebreak tag unless both
	// are configured with the same explicit seed.
	Seed uint64

	// Registry receives the pcmcluster_* instruments (default: a
	// private registry, reachable via Cluster.Registry).
	Registry *obs.Registry

	// TraceSampleEvery keeps one in N fast foreground traces in the
	// cluster trace log (default 64; 1 keeps all — tests and admin
	// tooling want 1). Slow traces are always kept.
	TraceSampleEvery int
	// SlowQuorumThreshold is the time-to-quorum past which a foreground
	// op lands in the slow-quorum log with straggler attribution
	// (default 50ms; negative disables the log). It also serves as the
	// trace log's slow threshold.
	SlowQuorumThreshold time.Duration
	// DisableTracing turns the whole trace plane off — no trace IDs on
	// the wire, no span collection, no per-node reply histograms, no
	// slow-quorum log. Metrics and SLOs still record. This is the
	// baseline for measuring tracing overhead.
	DisableTracing bool

	// SLOObjective is the availability target: the fraction of quorum
	// ops that must succeed (default 0.999; negative disables both
	// SLOs).
	SLOObjective float64
	// SLOLatencyTarget is the latency objective's good/bad cut: a
	// successful op counts good when its time-to-quorum is at or under
	// this (default 100ms).
	SLOLatencyTarget time.Duration
	// SLOWindow is the rolling window burn rate is computed over
	// (default 5m).
	SLOWindow time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = min(3, len(cfg.Nodes))
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.ReplicationFactor/2 + 1
	}
	if cfg.ReadQuorum <= 0 {
		cfg.ReadQuorum = cfg.ReplicationFactor/2 + 1
	}
	if cfg.TransferSegmentSlots <= 0 {
		cfg.TransferSegmentSlots = 64
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.HintCapacity <= 0 {
		cfg.HintCapacity = 4096
	}
	if cfg.HintReplayInterval <= 0 {
		cfg.HintReplayInterval = 200 * time.Millisecond
	}
	if cfg.AntiEntropySweepBytesPerSec == 0 {
		cfg.AntiEntropySweepBytesPerSec = 4 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = randomSeed()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.TraceSampleEvery <= 0 {
		cfg.TraceSampleEvery = 64
	}
	if cfg.SlowQuorumThreshold == 0 {
		cfg.SlowQuorumThreshold = 50 * time.Millisecond
	}
	if cfg.SLOObjective == 0 {
		cfg.SLOObjective = 0.999
	}
	if cfg.SLOLatencyTarget <= 0 {
		cfg.SLOLatencyTarget = 100 * time.Millisecond
	}
	if cfg.SLOWindow <= 0 {
		cfg.SLOWindow = 5 * time.Minute
	}
	return cfg
}

// Cluster is a client-embedded replication layer over pcmserve nodes.
// It is safe for concurrent use.
type Cluster struct {
	rf     int
	w, r   int
	blocks int64

	// Coded placement (see coding.go): codec is non-nil iff coded.
	// fragBytes is the per-fragment payload (DataBytes/K) and slotBytes
	// the per-node stored slot size — fragment + trailer when coded,
	// SlotBytes when mirrored. Every replica offset and buffer in this
	// package sizes off slotBytes so both modes share one data path.
	coded     bool
	codec     *ecstripe.Codec
	fragBytes int
	slotBytes int64
	// hedgeRTT is the EWMA (nanoseconds) of fragment reply round-trips
	// driving the coded read's straggler cutoff (see coded.go).
	hedgeRTT atomic.Uint64

	// partSlots is the placement granularity (see Config.PartitionSlots);
	// segSlots the bulk-transfer segment size.
	partSlots int64
	segSlots  int64

	opTimeout     time.Duration
	failThreshold int
	probeInterval time.Duration
	hintCap       int
	dial          func(addr string) (NodeClient, error)

	// epoch is the membership snapshot every op works against; memMu
	// serializes membership changes (one Join or Drain at a time) and
	// guards retired. Retired nodes stay out of every placement but
	// their clients remain open until Close, so background stragglers
	// holding an old epoch never touch a closed connection.
	epoch   atomic.Pointer[epoch]
	memMu   sync.Mutex
	retired []*node
	// prog is the in-flight membership transfer's checkpoint (nil when
	// stable), read by Membership for progress reporting.
	prog atomic.Pointer[transferProgress]

	// aeBudget meters the legacy anti-entropy sweep's replica reads
	// (nil = unmetered); disableMerkle forces that sweep everywhere.
	aeBudget      *pcmlive.Budget
	disableMerkle bool

	// verCounter, shifted over verTag, produces the version stamps. It
	// is a hybrid logical clock — max(wall-clock µs, last+1), seeded
	// from the clock at startup and ratcheted past every version
	// observed on any replica — so a restarted or second client keeps
	// stamping above everything already stored; a plain in-memory
	// counter would restart at 0 and lose last-writer-wins to its own
	// predecessor's data. The tag byte breaks ties between distinct
	// clients, and exact ties fall back to the data CRC (blockMeta.newer).
	verCounter atomic.Uint64
	verTag     uint8

	// stripes serialize every mutation of one block issued by this
	// client — quorum writes (held until all replicas resolve, not
	// just W), read-repairs, hint replays, and membership transfer
	// pushes — so a repair's re-check-then-write can never clobber a
	// newer in-flight write.
	stripes [writeStripes]sync.Mutex

	met *metrics

	// brownout meters typed overload verdicts into the degradation
	// ladder (see overload.go).
	brownout brownoutMeter

	// Trace plane (see trace.go). traceOff disables it wholesale;
	// slowQuorumThreshold gates the slow-quorum log.
	traces              *obs.TraceLog
	slowQ               *slowQuorumLog
	slowQuorumThreshold time.Duration
	traceOff            bool

	// SLO layer: availability (quorum ops succeed) and latency
	// (time-to-quorum under target). Nil when disabled.
	sloAvail, sloLat *obs.SLO
	sloLatTarget     time.Duration

	closed atomic.Bool
	// opGate lets Close wait for in-flight public ops (read lock) to
	// finish spawning background work before it waits on bg.
	opGate sync.RWMutex
	stop   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	bg     sync.WaitGroup // straggler drains + repairs
	loops  sync.WaitGroup // hint drainer + anti-entropy sweeper
}

// New validates cfg, connects to every node, sizes the cluster, and
// starts the background loops.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("pcmcluster: at least one node required")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, a := range cfg.Nodes {
		if a == "" {
			return nil, errors.New("pcmcluster: empty node address")
		}
		if seen[a] {
			return nil, fmt.Errorf("pcmcluster: duplicate node address %q", a)
		}
		seen[a] = true
	}
	codeK, codeM, coded, err := parseCoding(cfg.Coding)
	if err != nil {
		return nil, err
	}
	if coded {
		// The codec fixes the quorum geometry: rf = K+M fragment slots,
		// W = K+⌈M/2⌉ fragment acks, R = K valid fragments. Explicit
		// conflicting values are configuration errors, not overrides —
		// a mirrored quorum count applied to fragments would silently
		// weaken (or break) the intersection guarantee.
		ecRF, ecW, ecR := codeK+codeM, codeK+(codeM+1)/2, codeK
		if cfg.ReplicationFactor != 0 && cfg.ReplicationFactor != ecRF {
			return nil, fmt.Errorf("pcmcluster: coding %s implies replication factor %d, conflicting with configured %d",
				cfg.Coding, ecRF, cfg.ReplicationFactor)
		}
		if cfg.WriteQuorum != 0 && cfg.WriteQuorum != ecW {
			return nil, fmt.Errorf("pcmcluster: coding %s implies write quorum %d, conflicting with configured %d",
				cfg.Coding, ecW, cfg.WriteQuorum)
		}
		if cfg.ReadQuorum != 0 && cfg.ReadQuorum != ecR {
			return nil, fmt.Errorf("pcmcluster: coding %s implies read quorum %d, conflicting with configured %d",
				cfg.Coding, ecR, cfg.ReadQuorum)
		}
		cfg.ReplicationFactor, cfg.WriteQuorum, cfg.ReadQuorum = ecRF, ecW, ecR
	}
	cfg = cfg.withDefaults()
	if cfg.ReplicationFactor > len(cfg.Nodes) {
		return nil, fmt.Errorf("pcmcluster: replication factor %d exceeds %d nodes",
			cfg.ReplicationFactor, len(cfg.Nodes))
	}
	rf := cfg.ReplicationFactor
	if cfg.WriteQuorum > rf || cfg.ReadQuorum > rf {
		return nil, fmt.Errorf("pcmcluster: quorums W=%d R=%d exceed replication factor %d",
			cfg.WriteQuorum, cfg.ReadQuorum, rf)
	}
	if cfg.WriteQuorum+cfg.ReadQuorum <= rf {
		return nil, fmt.Errorf("pcmcluster: W=%d + R=%d must exceed replication factor %d or reads can miss acknowledged writes",
			cfg.WriteQuorum, cfg.ReadQuorum, rf)
	}
	if cfg.PartitionSlots < 0 {
		return nil, fmt.Errorf("pcmcluster: negative partition slots %d", cfg.PartitionSlots)
	}

	dial := cfg.DialNode
	if dial == nil {
		opTimeout := cfg.OpTimeout
		seed := cfg.Seed
		// One retry budget spans every node connection this cluster
		// client opens: retries refill at ~10% of successes, so a
		// cluster-wide brownout cannot be amplified into a retry storm.
		// The burst is generous — isolated failures retry freely.
		budget := pcmserve.NewRetryBudget(0.1, 256)
		dial = func(addr string) (NodeClient, error) {
			return pcmserve.DialRetry(addr, pcmserve.RetryConfig{
				MaxReadAttempts:  2,
				MaxWriteAttempts: 2,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       50 * time.Millisecond,
				OpTimeout:        opTimeout,
				Seed:             seed ^ nodeSeed(addr),
				Budget:           budget,
			})
		}
	}

	c := &Cluster{
		rf:            rf,
		w:             cfg.WriteQuorum,
		r:             cfg.ReadQuorum,
		blocks:        cfg.Blocks,
		segSlots:      cfg.TransferSegmentSlots,
		opTimeout:     cfg.OpTimeout,
		failThreshold: cfg.FailThreshold,
		probeInterval: cfg.ProbeInterval,
		hintCap:       cfg.HintCapacity,
		dial:          dial,
		verTag:        uint8(mix64(cfg.Seed)),
		stop:          make(chan struct{}),
	}
	c.slotBytes = SlotBytes
	if coded {
		codec, err := ecstripe.NewCodec(codeK, codeM)
		if err != nil {
			return nil, err
		}
		c.coded = true
		c.codec = codec
		c.fragBytes = DataBytes / codeK
		c.slotBytes = int64(c.fragBytes + ecstripe.FragTrailerBytes)
		c.hedgeRTT.Store(uint64(hedgeInitRTT))
	}
	if cfg.AntiEntropySweepBytesPerSec > 0 {
		c.aeBudget = pcmlive.NewBudget(cfg.AntiEntropySweepBytesPerSec, cfg.AntiEntropySweepBytesPerSec)
	}
	c.disableMerkle = cfg.DisableMerkleExchange
	c.verCounter.Store(uint64(time.Now().UnixMicro()))
	c.ctx, c.cancel = context.WithCancel(context.Background())
	var nodes []*node
	for _, addr := range cfg.Nodes {
		nc, err := dial(addr)
		if err != nil {
			for _, n := range nodes {
				n.client.Close()
			}
			return nil, fmt.Errorf("pcmcluster: dial node %s: %w", addr, err)
		}
		nodes = append(nodes, newNode(addr, nc, cfg.FailThreshold, cfg.ProbeInterval, cfg.HintCapacity))
	}

	if c.blocks == 0 {
		if err := c.probeCapacity(nodes); err != nil {
			for _, n := range nodes {
				n.client.Close()
			}
			return nil, err
		}
	}
	c.partSlots = cfg.PartitionSlots
	if c.partSlots == 0 {
		c.partSlots = defaultPartitionSlots(c.blocks)
	}

	pl := newPlacement(c.partSlots, nodes)
	c.epoch.Store(&epoch{gen: 1, nodes: nodes, cur: pl, mode: modeStable})
	c.traceOff = cfg.DisableTracing
	c.slowQuorumThreshold = cfg.SlowQuorumThreshold
	c.traces = obs.NewTraceLog(obs.TraceLogConfig{
		SampleEvery:   cfg.TraceSampleEvery,
		SlowThreshold: cfg.SlowQuorumThreshold,
	})
	c.slowQ = newSlowQuorumLog(64)
	if cfg.SLOObjective > 0 {
		c.sloLatTarget = cfg.SLOLatencyTarget
		c.sloAvail = obs.NewSLO(cfg.Registry, obs.SLOConfig{
			Name:      "pcmcluster_availability",
			Help:      "Quorum operations by outcome (good = quorum met).",
			Objective: cfg.SLOObjective,
			Window:    cfg.SLOWindow,
		})
		c.sloLat = obs.NewSLO(cfg.Registry, obs.SLOConfig{
			Name: "pcmcluster_latency",
			Help: fmt.Sprintf("Successful quorum operations by latency verdict (good = quorum within %v).",
				cfg.SLOLatencyTarget),
			Objective: cfg.SLOObjective,
			Window:    cfg.SLOWindow,
		})
	}
	c.met = newMetrics(cfg.Registry, c)
	for _, n := range nodes {
		c.met.registerNode(n)
	}

	c.loops.Add(1)
	go c.drainLoop(cfg.HintReplayInterval)
	if cfg.AntiEntropyInterval > 0 {
		c.loops.Add(1)
		go c.antiEntropyLoop(cfg.AntiEntropyInterval)
	}
	return c, nil
}

// probeCapacity sizes the cluster from the smallest node. Every
// configured node must answer: sizing from the smallest *reachable*
// node would overshoot an unreachable smaller one, and once it came
// back every write, hint, and repair beyond its capacity would fail
// permanently — its blocks stuck at RF-1 durability with no alarm. To
// start against a fleet with a node known down, set Config.Blocks
// explicitly.
func (c *Cluster) probeCapacity(nodes []*node) error {
	type probe struct {
		idx  int
		size int64
		err  error
	}
	results := make(chan probe, len(nodes))
	for i, n := range nodes {
		go func(i int, n *node) {
			st, err := n.client.Stats()
			results <- probe{idx: i, size: st.SizeBytes, err: err}
		}(i, n)
	}
	minSize := int64(-1)
	var unreachable []string
	for range nodes {
		p := <-results
		if p.err != nil {
			unreachable = append(unreachable, fmt.Sprintf("%s (%v)", nodes[p.idx].addr, p.err))
			continue
		}
		if minSize < 0 || p.size < minSize {
			minSize = p.size
		}
	}
	if len(unreachable) > 0 {
		sort.Strings(unreachable)
		return fmt.Errorf("pcmcluster: capacity probe needs every node, %d unreachable: %s (set Config.Blocks to size the cluster without probing)",
			len(unreachable), strings.Join(unreachable, "; "))
	}
	c.blocks = minSize / c.slotBytes
	if c.blocks < 1 {
		return fmt.Errorf("pcmcluster: smallest node (%d bytes) cannot hold one %d-byte slot", minSize, c.slotBytes)
	}
	return nil
}

// Blocks returns the replicated block capacity.
func (c *Cluster) Blocks() int64 { return c.blocks }

// numParts returns how many placement partitions cover the block space.
func (c *Cluster) numParts() int64 {
	return (c.blocks + c.partSlots - 1) / c.partSlots
}

// partOf maps a block to its placement partition.
func (c *Cluster) partOf(b int64) int64 { return b / c.partSlots }

// partSpan returns partition p's block range (the last partition may
// be short).
func (c *Cluster) partSpan(p int64) (lo, n int64) {
	lo = p * c.partSlots
	n = c.partSlots
	if lo+n > c.blocks {
		n = c.blocks - lo
	}
	return lo, n
}

// Close stops the background loops, waits for in-flight work (any
// running Join or Drain aborts), and closes every node connection —
// retired nodes included.
func (c *Cluster) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	close(c.stop)
	c.loops.Wait()
	c.cancel()
	// Wait for public ops to finish spawning background work, then for
	// that work itself.
	c.opGate.Lock()
	//lint:ignore SA2001 the Lock/Unlock pair is a barrier for in-flight ops, not a critical section
	c.opGate.Unlock()
	c.bg.Wait()
	// An in-flight Join/Drain holds memMu until its transfer notices
	// c.stop and unwinds; taking the lock here means no membership
	// change is mid-flight while connections close.
	c.memMu.Lock()
	defer c.memMu.Unlock()
	var firstErr error
	closeNode := func(n *node) {
		if err := n.client.Close(); err != nil && firstErr == nil && !errors.Is(err, pcmserve.ErrClosed) {
			firstErr = err
		}
	}
	for _, n := range c.epoch.Load().nodes {
		closeNode(n)
	}
	for _, n := range c.retired {
		closeNode(n)
	}
	return firstErr
}

func (c *Cluster) stripe(b int64) *sync.Mutex {
	return &c.stripes[uint64(b)%writeStripes]
}

func (c *Cluster) nextVersion() uint64 {
	now := uint64(time.Now().UnixMicro())
	for {
		cur := c.verCounter.Load()
		next := cur + 1
		if now > next {
			next = now
		}
		if c.verCounter.CompareAndSwap(cur, next) {
			return next<<8 | uint64(c.verTag)
		}
	}
}

// observeVersion ratchets the clock past a version seen on a replica,
// so every future write by this client orders after it.
func (c *Cluster) observeVersion(v uint64) {
	vc := v >> 8
	for {
		cur := c.verCounter.Load()
		if cur >= vc || c.verCounter.CompareAndSwap(cur, vc) {
			return
		}
	}
}

func (c *Cluster) checkBlock(b int64) error {
	if b < 0 || b >= c.blocks {
		return fmt.Errorf("pcmcluster: block %d out of range [0, %d)", b, c.blocks)
	}
	return nil
}

// noteResult feeds one replica op's outcome to the node's breaker and
// the per-node instruments. Typed in-band responses — including
// permanent and corrupt verdicts — prove the node alive; only
// transient failures (connection loss, timeouts, fast-fail while
// down) count toward marking it down.
func (c *Cluster) noteResult(n *node, write bool, err error) {
	if write {
		n.mWrites.Inc()
	} else {
		n.mReads.Inc()
	}
	if err == nil {
		n.onSuccess()
		return
	}
	n.mErrs.Inc()
	if errors.Is(err, errNodeDown) {
		return // fast-fail, not new evidence
	}
	if errors.Is(err, pcmserve.ErrRetryBudgetExhausted) {
		c.met.retryBudgetExhausted.Inc()
	}
	if errors.Is(err, pcmserve.ErrOverloaded) || errors.Is(err, pcmserve.ErrDeadlineExceeded) {
		// A typed shed verdict is proof of life, never breaker
		// evidence: it opens the node's overload backoff window and
		// feeds the brownout meter instead.
		c.overloadEvent(n, pcmserve.RetryAfter(err))
		return
	}
	if pcmserve.Classify(err) == pcmserve.ClassTransient {
		if n.onFailure() {
			c.met.nodeTransitions.Inc()
		}
		return
	}
	n.onSuccess()
}

// replicaRead is one replica's reply to a slot read.
type replicaRead struct {
	n      *node
	slot   []byte
	data   []byte
	meta   blockMeta
	status slotStatus
	err    error
	// fragIdx is the stored fragment index in coded mode (from the
	// fragment trailer, so it survives placement reshuffles).
	fragIdx uint8
	// rtt is the reply round-trip as seen by the quorum fan-out (zero
	// when the reply was not timed, e.g. anti-entropy sweeps).
	rtt time.Duration
}

// valid reports whether this reply counts toward the read quorum: a
// structurally sound slot (written or provably unwritten). Corrupt
// slots and errors do not count.
func (r replicaRead) valid() bool {
	return r.err == nil && r.status != slotCorrupt
}

// readReplica reads block b's slot from one node.
func (c *Cluster) readReplica(ctx context.Context, n *node, b int64) replicaRead {
	if !n.admit() {
		c.noteResult(n, false, errNodeDown)
		return replicaRead{n: n, err: errNodeDown}
	}
	buf := make([]byte, c.slotBytes)
	_, err := n.client.ReadAtCtx(ctx, buf, b*c.slotBytes)
	c.noteResult(n, false, err)
	if err != nil {
		return replicaRead{n: n, err: err}
	}
	ss := c.decodeStoredSlot(buf)
	if ss.status == slotOK {
		c.observeVersion(ss.meta.Version)
	}
	return replicaRead{n: n, slot: buf, data: ss.data, meta: ss.meta, status: ss.status, fragIdx: ss.fragIdx}
}

// writeReplica writes a stamped slot to one node, buffering a hint
// when the node is down or the write fails transiently.
func (c *Cluster) writeReplica(ctx context.Context, n *node, b int64, slot []byte, version uint64) error {
	if !n.admit() {
		c.noteResult(n, true, errNodeDown)
		c.queueHint(n, b, slot, version)
		return errNodeDown
	}
	_, err := n.client.WriteAtCtx(ctx, slot, b*c.slotBytes)
	c.noteResult(n, true, err)
	if err != nil && pcmserve.Classify(err) == pcmserve.ClassTransient {
		c.queueHint(n, b, slot, version)
	}
	return err
}

func (c *Cluster) queueHint(n *node, b int64, slot []byte, version uint64) {
	switch n.addHint(b, slot, version) {
	case hintStored:
		c.met.hintsQueued.Inc()
	case hintSuperseded:
		c.met.hintsDroppedStale.Inc()
	case hintOverflow:
		c.met.hintsDroppedFull.Inc()
	case hintObsolete:
		c.met.hintsObsolete.Inc()
	}
}

// requeueHint puts a hint back after a failed replay batch. The re-add
// can itself fail — the buffer refilled meanwhile, or a newer hint for
// the block arrived — and those drops must be counted, not silent.
func (c *Cluster) requeueHint(n *node, b int64, h hint) {
	switch n.addHint(b, h.slot, h.version) {
	case hintSuperseded:
		c.met.hintsDroppedStale.Inc()
	case hintOverflow:
		c.met.hintsDroppedFull.Inc()
	case hintObsolete:
		c.met.hintsObsolete.Inc()
	}
}

// ReadBlock reads block b with read-quorum semantics: it returns the
// highest-version structurally valid copy among R valid replica
// replies (64 bytes; all zeros if the block was never written), or a
// typed error — never silently stale or corrupt data. Reads quorum
// against the authoritative placement only: a node that is still
// joining never serves them. Divergent replicas found along the way
// are repaired in the background.
func (c *Cluster) ReadBlock(ctx context.Context, b int64) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if err := c.checkBlock(b); err != nil {
		return nil, err
	}
	c.opGate.RLock()
	defer c.opGate.RUnlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if c.coded {
		return c.readCodedBlock(ctx, b)
	}
	c.met.quorumReads.Inc()
	t0 := time.Now()

	var traceID uint64
	var ot *opTrace
	if !c.traceOff {
		ctx, traceID = obs.EnsureTrace(ctx)
		ot = c.startTrace("quorum_read", b, traceID, "")
	}

	ep := c.epoch.Load()
	reps := ep.cur.replicas(c.partOf(b), c.rf)
	results := make(chan replicaRead, len(reps))
	for _, n := range reps {
		c.bg.Add(1)
		go func(n *node) {
			defer c.bg.Done()
			sent := time.Now()
			res := c.readReplica(ctx, n, b)
			res.rtt = time.Since(sent)
			results <- res
		}(n)
	}

	var all []replicaRead
	valids := 0
	degraded := false
	for len(all) < len(reps) && valids < c.r {
		select {
		case res := <-results:
			all = append(all, res)
			ot.reply("replica_read", res.n, res.rtt, res.err, false)
			if res.valid() {
				valids++
			} else {
				degraded = true
			}
		case <-ctx.Done():
			ot.fail(ctx.Err())
			c.sloAvail.Record(false)
			c.sloLat.Record(false)
			c.drainReads(b, len(reps)-len(all), results, all, blockMeta{}, nil, false, ot)
			c.met.quorumFailRead.Inc()
			return nil, fmt.Errorf("pcmcluster: read block %d: %d/%d valid replies: %w: %w",
				b, valids, c.r, ctx.Err(), ErrReadQuorum)
		}
	}
	if valids < c.r {
		err := fmt.Errorf("pcmcluster: read block %d: %d/%d valid replies from %d replicas (last: %w): %w",
			b, valids, c.r, len(reps), firstProblem(all), ErrReadQuorum)
		ot.fail(firstProblem(all))
		c.sloAvail.Record(false)
		c.sloLat.Record(false)
		c.drainReads(b, len(reps)-len(all), results, all, blockMeta{}, nil, false, ot)
		c.met.quorumFailRead.Inc()
		return nil, err
	}
	ot.quorum()

	// Last-writer-wins: the highest version among the valid replies
	// (exact ties broken by data CRC — see blockMeta.newer).
	electT := time.Now()
	var winner replicaRead
	found := false
	for _, res := range all {
		if res.valid() && (!found || res.meta.newer(winner.meta)) {
			winner, found = res, true
		}
	}
	ot.span("winner_election", "", electT, nil)
	quorumLat := time.Since(t0)
	c.met.latRead.ObserveTrace(quorumLat.Seconds(), traceID)
	c.sloAvail.Record(true)
	c.sloLat.Record(quorumLat <= c.sloLatTarget)
	if degraded {
		c.met.degradedReads.Inc()
	}
	// Stragglers still resolve, and any divergent replica (in the
	// quorum or behind it) is repaired — in the background so the read
	// returns at quorum speed.
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		c.drainReads(b, len(reps)-len(all), results, all, winner.meta, winner.slot, true, ot)
	}()
	out := make([]byte, DataBytes)
	copy(out, winner.data)
	return out, nil
}

// firstProblem summarizes the first non-valid reply for error text.
func firstProblem(all []replicaRead) error {
	for _, r := range all {
		if r.err != nil {
			return r.err
		}
		if r.status == slotCorrupt {
			return errors.New("corrupt slot")
		}
	}
	return nil
}

// drainReads consumes remaining replica replies (recording them on ot
// as stragglers and closing the trace) and, when repair is set,
// reconciles every divergent replica against the winner. Each repair
// runs under its own cause-tagged root trace, not the read's — the
// read's trace closed at the straggler tail, and repair traffic should
// be separable in /tracez.
func (c *Cluster) drainReads(b int64, remaining int, results chan replicaRead, all []replicaRead, winner blockMeta, winnerSlot []byte, repair bool, ot *opTrace) {
	for ; remaining > 0; remaining-- {
		res := <-results
		ot.reply("replica_read", res.n, res.rtt, res.err, true)
		all = append(all, res)
	}
	ot.finish()
	if !repair {
		return
	}
	for _, res := range all {
		if res.err != nil {
			continue
		}
		divergent := res.status == slotCorrupt || winner.newer(res.meta)
		if !divergent {
			continue
		}
		if res.status == slotCorrupt {
			c.met.divergentCorrupt.Inc()
		} else {
			c.met.divergentStale.Inc()
		}
		if c.brownoutLevel() >= brownoutDeferRepairs {
			// Deep brownout: park the repair in the hint buffer instead
			// of adding write load. The drain loop replays it once the
			// node's overload window closes.
			c.queueHint(res.n, b, winnerSlot, winner.Version)
			c.met.repairsDeferred.Inc()
			continue
		}
		rctx, rot := c.bgTrace("read_repair", "read_repair", b)
		c.repairReplica(rctx, rot, res.n, b, winnerSlot, winner, c.met.repairsRead)
		rot.finish()
	}
}

// repairReplica rewrites block b on one replica from the winner slot.
// Under the block's stripe lock it re-reads the stored slot first: if a
// copy at or past the winner (in the version-then-CRC order) landed in
// the meantime the repair is skipped, so a repair can never regress a
// replica past a newer write. The re-check decodes the whole slot, not
// just the trailer — corrupted data under an intact trailer must still
// be rewritten.
func (c *Cluster) repairReplica(ctx context.Context, ot *opTrace, n *node, b int64, winnerSlot []byte, winner blockMeta, counter *obs.Counter) {
	if n.currentState() != NodeUp {
		return // unreachable replicas converge via hints or later sweeps
	}
	if n.isOverloaded() {
		// Repair is background write load; hint it for replay after the
		// node's overload window instead of piling on now.
		c.queueHint(n, b, winnerSlot, winner.Version)
		c.met.repairsDeferred.Inc()
		return
	}
	ctx, cancel := context.WithTimeout(ctx, c.opTimeout)
	defer cancel()
	lockT := time.Now()
	mu := c.stripe(b)
	mu.Lock()
	defer mu.Unlock()
	ot.span("stripe_lock", "", lockT, nil)
	recheckT := time.Now()
	cur := make([]byte, c.slotBytes)
	_, rerr := n.client.ReadAtCtx(ctx, cur, b*c.slotBytes)
	switch {
	case rerr == nil:
		if ss := c.decodeStoredSlot(cur); ss.status == slotOK {
			c.observeVersion(ss.meta.Version)
			if !winner.newer(ss.meta) {
				ot.span("repair_recheck", n.addr, recheckT, nil)
				ot.mark("repair_skipped")
				c.met.repairsSkipped.Inc()
				return
			}
		}
	case pcmserve.Classify(rerr) == pcmserve.ClassTransient:
		// Can't prove the winner is still newest (the recheck itself
		// was shed or timed out); a blind write could regress a replica
		// that took later writes. Defer to a hint — its replay rechecks
		// once the node answers reads again and drops stale data.
		ot.span("repair_recheck", n.addr, recheckT, rerr)
		c.noteResult(n, false, rerr)
		c.queueHint(n, b, winnerSlot, winner.Version)
		c.met.repairsDeferred.Inc()
		return
	}
	// Corrupt or otherwise permanently unreadable slot: the repair
	// write replaces it; fall through.
	ot.span("repair_recheck", n.addr, recheckT, nil)
	writeT := time.Now()
	_, err := n.client.WriteAtCtx(ctx, winnerSlot, b*c.slotBytes)
	ot.span("repair_write", n.addr, writeT, err)
	c.noteResult(n, true, err)
	if err != nil {
		c.met.repairsFailed.Inc()
		return
	}
	counter.Inc()
	if c.coded {
		c.met.ecFragRepairs.Inc()
	}
}

// WriteBlock writes 64 bytes to block b with write-quorum semantics:
// it stamps a fresh version, fans out to every replica, and returns
// once W replicas acknowledge (stragglers finish in the background;
// failed or unreachable replicas get hinted writes). During a
// membership transition the write must reach W acknowledgements under
// BOTH the current and the next placement — the dual-quorum rule that
// makes the epoch flip safe (see membership.go). On ErrWriteQuorum the
// write may still have partially applied.
func (c *Cluster) WriteBlock(ctx context.Context, b int64, data []byte) error {
	if len(data) != DataBytes {
		return fmt.Errorf("pcmcluster: write needs exactly %d bytes, got %d", DataBytes, len(data))
	}
	if c.closed.Load() {
		return ErrClosed
	}
	if err := c.checkBlock(b); err != nil {
		return err
	}
	c.opGate.RLock()
	defer c.opGate.RUnlock()
	if c.closed.Load() {
		return ErrClosed
	}
	c.met.quorumWrites.Inc()
	t0 := time.Now()

	var traceID uint64
	var ot *opTrace
	if !c.traceOff {
		ctx, traceID = obs.EnsureTrace(ctx)
		ot = c.startTrace("quorum_write", b, traceID, "")
	}

	version := c.nextVersion()

	ep := c.epoch.Load()
	part := c.partOf(b)
	curReps := ep.cur.replicas(part, c.rf)
	targets := curReps
	var nextReps []*node
	if ep.next != nil {
		nextReps = ep.next.replicas(part, c.rf)
		targets = unionNodes(curReps, nextReps)
	}
	// Per-target slot images: identical replica slots when mirrored,
	// per-position fragment slots when coded.
	payloads, err := c.writePayloads(curReps, nextReps, targets, data, version)
	if err != nil {
		ot.fail(err)
		ot.finish()
		return err
	}

	// The stripe stays locked until every replica write resolves (not
	// just the first W), so no repair or hint replay can interleave
	// with this write's stragglers.
	lockT := time.Now()
	mu := c.stripe(b)
	mu.Lock()
	ot.span("stripe_lock", "", lockT, nil)
	type writeRes struct {
		n   *node
		err error
		rtt time.Duration
	}
	results := make(chan writeRes, len(targets))
	for i, n := range targets {
		c.bg.Add(1)
		go func(n *node, slot []byte) {
			defer c.bg.Done()
			sent := time.Now()
			err := c.writeReplica(ctx, n, b, slot, version)
			results <- writeRes{n: n, err: err, rtt: time.Since(sent)}
		}(n, payloads[i])
	}

	acksCur, acksNext, resolved := 0, 0, 0
	quorum := func() bool {
		return acksCur >= c.w && (nextReps == nil || acksNext >= c.w)
	}
	var lastErr error
	ctxErr := error(nil)
	for resolved < len(targets) && !quorum() && ctxErr == nil {
		select {
		case res := <-results:
			resolved++
			ot.reply("replica_write", res.n, res.rtt, res.err, false)
			if res.err == nil {
				if containsNode(curReps, res.n) {
					acksCur++
				}
				if containsNode(nextReps, res.n) {
					acksNext++
				}
			} else {
				if errors.Is(res.err, errNodeDown) || pcmserve.Classify(res.err) == pcmserve.ClassTransient {
					ot.mark("hint_enqueue")
				}
				lastErr = res.err
			}
		case <-ctx.Done():
			ctxErr = ctx.Err()
		}
	}
	met := quorum()
	if met {
		ot.quorum()
	} else if ctxErr != nil {
		ot.fail(ctxErr)
	} else {
		ot.fail(lastErr)
	}
	if resolved == len(targets) {
		ot.finish()
		mu.Unlock()
	} else {
		c.bg.Add(1)
		go func(remaining int) {
			defer c.bg.Done()
			for ; remaining > 0; remaining-- {
				res := <-results
				ot.reply("replica_write", res.n, res.rtt, res.err, true)
			}
			ot.finish()
			mu.Unlock()
		}(len(targets) - resolved)
	}

	if met {
		quorumLat := time.Since(t0)
		c.met.latWrite.ObserveTrace(quorumLat.Seconds(), traceID)
		c.sloAvail.Record(true)
		c.sloLat.Record(quorumLat <= c.sloLatTarget)
		if lastErr != nil {
			c.met.degradedWrites.Inc()
		}
		return nil
	}
	c.sloAvail.Record(false)
	c.sloLat.Record(false)
	c.met.quorumFailWrite.Inc()
	acks := acksCur
	if nextReps != nil && acksNext < acks {
		acks = acksNext
	}
	if ctxErr != nil {
		return fmt.Errorf("pcmcluster: write block %d: %d/%d acks: %w: %w",
			b, acks, c.w, ctxErr, ErrWriteQuorum)
	}
	return fmt.Errorf("pcmcluster: write block %d: %d/%d acks from %d replicas (last: %w): %w",
		b, acks, c.w, len(targets), lastErr, ErrWriteQuorum)
}

// drainLoop replays hinted writes to nodes that have come back.
func (c *Cluster) drainLoop(interval time.Duration) {
	defer c.loops.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, n := range c.epoch.Load().nodes {
			if n.hintCount() == 0 || n.currentRole() == RoleRemoved {
				continue
			}
			if !n.admit() { // down and no probe due
				continue
			}
			if n.isOverloaded() {
				continue // replay is background; let the node breathe
			}
			hints := n.takeHints(256)
			requeue := false
			for b, h := range hints {
				if requeue {
					c.requeueHint(n, b, h)
					continue
				}
				if !c.replayHint(n, b, h) {
					requeue = true
					c.requeueHint(n, b, h)
				}
			}
		}
	}
}

// replayHint applies one buffered write if the node's stored slot is
// still older. It returns false when the node failed again (the
// caller re-queues). Each attempt runs under its own cause-tagged
// root trace and a per-attempt deadline, so a wedged node cannot
// stall the drain loop forever.
func (c *Cluster) replayHint(n *node, b int64, h hint) bool {
	ctx, ot := c.bgTrace("hint_replay", "hint_replay", b)
	defer ot.finish()
	ctx, cancel := context.WithTimeout(ctx, c.opTimeout)
	defer cancel()
	hMeta := c.decodeStoredSlot(h.slot).meta // always slotOK: hints hold encoded slot images
	lockT := time.Now()
	mu := c.stripe(b)
	mu.Lock()
	defer mu.Unlock()
	ot.span("stripe_lock", "", lockT, nil)
	recheckT := time.Now()
	cur := make([]byte, c.slotBytes)
	_, rerr := n.client.ReadAtCtx(ctx, cur, b*c.slotBytes)
	switch {
	case rerr == nil:
		if ss := c.decodeStoredSlot(cur); ss.status == slotOK {
			c.observeVersion(ss.meta.Version)
			if !hMeta.newer(ss.meta) {
				ot.span("hint_recheck", n.addr, recheckT, nil)
				ot.mark("hint_stale")
				c.met.hintsDroppedStale.Inc()
				return true
			}
		}
	case pcmserve.Classify(rerr) == pcmserve.ClassTransient:
		// The recheck failed transiently (shed, deadline, conn), so the
		// hint cannot be proven fresh — and a blind write could regress
		// a replica that accepted later writes while this hint sat in
		// the buffer. Requeue and retry once the node answers reads.
		ot.span("hint_recheck", n.addr, recheckT, rerr)
		c.noteResult(n, false, rerr)
		return false
	}
	// Corrupt or otherwise permanently unreadable slot: the hinted
	// write IS the repair; fall through.
	ot.span("hint_recheck", n.addr, recheckT, nil)
	writeT := time.Now()
	_, err := n.client.WriteAtCtx(ctx, h.slot, b*c.slotBytes)
	ot.span("hint_write", n.addr, writeT, err)
	c.noteResult(n, true, err)
	if err != nil {
		return pcmserve.Classify(err) != pcmserve.ClassTransient
	}
	c.met.hintsReplayed.Inc()
	return true
}
