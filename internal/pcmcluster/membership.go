package pcmcluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/pcmserve"
)

// Membership-change design.
//
// The cluster's view of its nodes is an immutable epoch snapshot held
// in an atomic pointer. Every read and write loads the epoch once and
// works against that consistent view; publishing a new epoch is one
// atomic store. An epoch carries two placements:
//
//   - cur:  the authoritative placement. Reads quorum against cur ONLY,
//     so a joining node never serves a read before it is caught up.
//   - next: non-nil during a transition (join or drain) — the placement
//     that becomes cur when the transition completes.
//
// While next is non-nil every write must reach W acknowledgements
// under BOTH placements (fanning out to their union). That dual-quorum
// rule is what makes the single atomic flip safe: whichever side of
// the flip a later read lands on, its R-set intersects the write's
// W-set under that same placement, so acknowledged writes are never
// exposed stale. Without it, a write acked by {old owners} ∪ {joiner}
// could miss the read quorum drawn purely from the new placement.
//
// JOIN: publish {cur: old, next: old+joiner} → bulk-transfer every
// partition the joiner now owns (vectored source reads, stripe-locked
// recheck-then-write pushes, per-segment checkpoint so an interrupted
// join resumes) → flip cur=next. DRAIN: publish {cur: old, next:
// old−drainee} → re-replicate the drainee's partitions to their new
// owners → flip cur=next (the fence: no new op routes to the drainee)
// → replay the drainee's pending hints onto the new owners → report
// safe-to-stop. Both directions abort cleanly: reverting to the old
// epoch is always safe because dual-quorum writes are durable under
// either placement.

// transitionMode labels what an epoch is doing.
type transitionMode int32

const (
	modeStable transitionMode = iota
	modeJoining
	modeDraining
)

func (m transitionMode) String() string {
	switch m {
	case modeJoining:
		return "joining"
	case modeDraining:
		return "draining"
	}
	return "stable"
}

// placement maps partitions to replica nodes by rendezvous hashing
// over a fixed membership snapshot. Immutable once built.
type placement struct {
	partSlots int64
	nodes     []*node
	seeds     []uint64
}

func newPlacement(partSlots int64, nodes []*node) *placement {
	p := &placement{partSlots: partSlots, nodes: nodes}
	for _, n := range nodes {
		p.seeds = append(p.seeds, n.seed)
	}
	return p
}

// replicas returns the rf highest-scoring nodes for a partition, in
// descending score order.
func (p *placement) replicas(part int64, rf int) []*node {
	idx := replicasFor(p.seeds, part, rf)
	out := make([]*node, len(idx))
	for i, j := range idx {
		out[i] = p.nodes[j]
	}
	return out
}

// epoch is one immutable membership snapshot; see the package comment
// above for the transition protocol.
type epoch struct {
	gen    uint64
	nodes  []*node // every reachable member this epoch (cur ∪ next owners)
	cur    *placement
	next   *placement // non-nil during a transition
	mode   transitionMode
	target *node // the joiner or drainee mid-transition
}

func containsNode(nodes []*node, n *node) bool {
	for _, m := range nodes {
		if m == n {
			return true
		}
	}
	return false
}

// unionNodes merges two replica sets preserving a's order.
func unionNodes(a, b []*node) []*node {
	out := append(make([]*node, 0, len(a)+len(b)), a...)
	for _, n := range b {
		if !containsNode(out, n) {
			out = append(out, n)
		}
	}
	return out
}

// MembershipStatus is a point-in-time view of the membership state
// machine, included in ClusterStats.
type MembershipStatus struct {
	// Mode is "stable", "joining", or "draining"; Target names the node
	// mid-transition.
	Mode   string `json:"mode"`
	Target string `json:"target,omitempty"`
	// PartsDone / PartsTotal is transfer checkpoint progress (partitions
	// fully pushed over partitions affected by the transition).
	PartsDone  int64 `json:"parts_done,omitempty"`
	PartsTotal int64 `json:"parts_total,omitempty"`
}

// Membership reports the current epoch's mode and transfer progress.
func (c *Cluster) Membership() MembershipStatus {
	ep := c.epoch.Load()
	st := MembershipStatus{Mode: ep.mode.String()}
	if ep.target != nil {
		st.Target = ep.target.addr
	}
	if prog := c.prog.Load(); prog != nil && ep.mode != modeStable {
		done, total := prog.progress()
		st.PartsDone, st.PartsTotal = done, total
	}
	return st
}

// Join adds a node to the cluster: it dials the address, verifies
// capacity, publishes the transitional epoch (dual-quorum writes begin
// immediately), bulk-transfers every partition the joiner now owns —
// resuming from its checkpoint across transient interruptions, the
// joiner's own crashes included — and only then flips the epoch so the
// joiner enters the read quorum. One membership change runs at a time;
// Join blocks while another Join or Drain is in flight. On error the
// membership reverts to the pre-join epoch.
func (c *Cluster) Join(ctx context.Context, addr string) error {
	if addr == "" {
		return errors.New("pcmcluster: join needs a node address")
	}
	if c.closed.Load() {
		return ErrClosed
	}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	old := c.epoch.Load()
	for _, n := range old.nodes {
		if n.addr == addr {
			return fmt.Errorf("pcmcluster: node %s is already a member", addr)
		}
	}

	nc, err := c.dial(addr)
	if err != nil {
		return fmt.Errorf("pcmcluster: join %s: dial: %w", addr, err)
	}
	st, err := nc.Stats()
	if err != nil {
		nc.Close()
		return fmt.Errorf("pcmcluster: join %s: capacity probe: %w", addr, err)
	}
	if st.SizeBytes/c.slotBytes < c.blocks {
		nc.Close()
		return fmt.Errorf("pcmcluster: join %s: %d bytes holds %d slots, cluster needs %d",
			addr, st.SizeBytes, st.SizeBytes/c.slotBytes, c.blocks)
	}

	joiner := newNode(addr, nc, c.failThreshold, c.probeInterval, c.hintCap)
	joiner.setRole(RoleJoining)
	c.met.registerNode(joiner)
	c.met.joinsStarted.Inc()

	next := newPlacement(c.partSlots, append(append([]*node{}, old.nodes...), joiner))
	trans := &epoch{
		gen:    old.gen + 1,
		nodes:  next.nodes,
		cur:    old.cur,
		next:   next,
		mode:   modeJoining,
		target: joiner,
	}
	c.epoch.Store(trans)

	// Every partition whose next-owners include the joiner needs its
	// slots pushed there.
	var parts []transferPart
	for p := int64(0); p < c.numParts(); p++ {
		if containsNode(next.replicas(p, c.rf), joiner) {
			parts = append(parts, transferPart{part: p, target: joiner})
		}
	}

	if err := c.runTransferResuming(ctx, trans, parts); err != nil {
		// Revert: drop the joiner. In-flight dual-quorum writes are
		// durable under the old placement alone, so the rollback loses
		// nothing acknowledged.
		c.epoch.Store(&epoch{gen: trans.gen + 1, nodes: old.nodes, cur: old.cur, mode: modeStable})
		joiner.setRole(RoleRemoved)
		c.retired = append(c.retired, joiner)
		// Hints buffered for the joiner are obsolete: every acknowledged
		// dual-quorum write already holds W among the old owners.
		for range joiner.takeHints(1 << 30) {
			c.met.hintsObsolete.Inc()
		}
		c.met.joinsAborted.Inc()
		return fmt.Errorf("pcmcluster: join %s aborted: %w", addr, err)
	}

	joiner.setRole(RoleActive)
	c.epoch.Store(&epoch{gen: trans.gen + 1, nodes: next.nodes, cur: next, mode: modeStable})
	c.met.joinsCompleted.Inc()
	return nil
}

// Drain removes a node in an orderly handoff: re-replicate every
// partition it owns to the new owners, fence it out of the placement
// (the atomic epoch flip — no new op routes to it), replay its pending
// hints onto the new owners, and return. A nil return means the node
// is safe to stop: every slot it owned has RF copies elsewhere and no
// buffered write remains addressed to it. On error the membership
// reverts and the node remains a full member.
func (c *Cluster) Drain(ctx context.Context, addr string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	old := c.epoch.Load()
	var drainee *node
	for _, n := range old.nodes {
		if n.addr == addr {
			drainee = n
			break
		}
	}
	if drainee == nil {
		return fmt.Errorf("pcmcluster: drain %s: not a member", addr)
	}
	if len(old.nodes)-1 < c.rf {
		return fmt.Errorf("pcmcluster: drain %s would leave %d nodes, below replication factor %d",
			addr, len(old.nodes)-1, c.rf)
	}

	remaining := make([]*node, 0, len(old.nodes)-1)
	for _, n := range old.nodes {
		if n != drainee {
			remaining = append(remaining, n)
		}
	}
	next := newPlacement(c.partSlots, remaining)
	trans := &epoch{
		gen:    old.gen + 1,
		nodes:  old.nodes, // drainee still a member until the fence
		cur:    old.cur,
		next:   next,
		mode:   modeDraining,
		target: drainee,
	}
	drainee.setRole(RoleDraining)
	c.met.drainsStarted.Inc()
	c.epoch.Store(trans)

	// Each partition the drainee owns gains exactly one new owner under
	// the shrunk placement; push the partition there. The drainee stays
	// reachable and serves as a transfer source.
	var parts []transferPart
	for p := int64(0); p < c.numParts(); p++ {
		if !containsNode(old.cur.replicas(p, c.rf), drainee) {
			continue
		}
		for _, n := range next.replicas(p, c.rf) {
			if !containsNode(old.cur.replicas(p, c.rf), n) {
				parts = append(parts, transferPart{part: p, target: n})
			}
		}
	}

	if err := c.runTransferResuming(ctx, trans, parts); err != nil {
		drainee.setRole(RoleActive)
		c.epoch.Store(&epoch{gen: trans.gen + 1, nodes: old.nodes, cur: old.cur, mode: modeStable})
		c.met.drainsAborted.Inc()
		return fmt.Errorf("pcmcluster: drain %s aborted: %w", addr, err)
	}

	// The fence: after this store no read or write routes to the
	// drainee. Writes that loaded the transitional epoch before the
	// store still fan out to it, but each already needs (and gets) a
	// full W among the new owners, so their durability never rests on
	// the drainee.
	c.epoch.Store(&epoch{gen: trans.gen + 1, nodes: remaining, cur: next, mode: modeStable})
	drainee.setRole(RoleRemoved)
	c.retired = append(c.retired, drainee)

	// Replay the drainee's buffered hints onto the blocks' new owners.
	// Almost all are stale by now — the transfer already pushed newer
	// copies — but a hint that raced the last segment must not be lost.
	for b, h := range drainee.takeHints(1 << 30) {
		c.replayDrainedHint(next, b, h)
	}

	c.met.drainsCompleted.Inc()
	return nil
}

// replayDrainedHint re-targets one orphaned hint at the block's owners
// under the post-drain placement, with the usual stripe-locked
// recheck-then-write. Owners that fail transiently get the hint in
// their own buffer, so the normal replay machinery finishes the job.
func (c *Cluster) replayDrainedHint(pl *placement, b int64, h hint) {
	if c.coded {
		// A fragment hint is only meaningful to the node canonically
		// holding its stored index — route it there alone.
		c.replayDrainedHintCoded(pl, b, h)
		return
	}
	ctx, ot := c.bgTrace("drain_hint_replay", "drain", b)
	defer ot.finish()
	_, hMeta, _ := decodeSlot(h.slot)
	for _, n := range pl.replicas(c.partOf(b), c.rf) {
		nctx, cancel := context.WithTimeout(ctx, c.opTimeout)
		mu := c.stripe(b)
		mu.Lock()
		recheckT := time.Now()
		cur := make([]byte, SlotBytes)
		stale := false
		if _, err := n.client.ReadAtCtx(nctx, cur, b*SlotBytes); err == nil {
			if _, m, status := decodeSlot(cur); status == slotOK {
				c.observeVersion(m.Version)
				stale = !hMeta.newer(m)
			}
		}
		ot.span("hint_recheck", n.addr, recheckT, nil)
		if stale {
			mu.Unlock()
			cancel()
			c.met.drainHintsStale.Inc()
			continue
		}
		writeT := time.Now()
		_, err := n.client.WriteAtCtx(nctx, h.slot, b*SlotBytes)
		ot.span("hint_write", n.addr, writeT, err)
		mu.Unlock()
		cancel()
		c.noteResult(n, true, err)
		if err != nil {
			if pcmserve.Classify(err) == pcmserve.ClassTransient {
				c.queueHint(n, b, h.slot, h.version)
			}
			continue
		}
		c.met.drainHintsReplayed.Inc()
	}
}

// runTransferResuming drives the bulk transfer for a transition,
// retrying transient failures with backoff from the checkpoint instead
// of restarting — a killed-and-restarted target resumes exactly where
// the interruption left it. It fails only when the caller's context
// ends, the cluster closes, or a permanent error surfaces.
func (c *Cluster) runTransferResuming(ctx context.Context, ep *epoch, parts []transferPart) error {
	prog := newTransferProgress(parts)
	c.prog.Store(prog)
	defer c.prog.Store((*transferProgress)(nil))
	backoff := 50 * time.Millisecond
	for {
		err := c.runTransfer(ctx, ep, prog)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || c.closed.Load() {
			return err
		}
		if errors.Is(err, ErrClosed) || pcmserve.Classify(err) != pcmserve.ClassTransient {
			return err
		}
		c.met.transferResumes.Inc()
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		case <-c.stop:
			return ErrClosed
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}
