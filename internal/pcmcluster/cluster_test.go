package pcmcluster

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faultinject"
	"repro/internal/pcmserve"
)

// testNode is one in-process pcmserve node the cluster tests can kill
// and restart on a stable address, with fault injection armed under
// each shard.
type testNode struct {
	t      testing.TB
	g      *pcmserve.Shards
	fis    []*faultinject.Device
	addr   string
	srvCfg pcmserve.ServerConfig // reused across kill/restart

	mu       sync.Mutex
	srv      *pcmserve.Server
	serveErr chan error
	alive    bool
}

// startTestNode builds a 2-shard node (blocksPerShard × 64 B each) and
// serves it on a fresh loopback port.
func startTestNode(t testing.TB, blocksPerShard int, seed uint64) *testNode {
	return startTestNodeCfg(t, blocksPerShard, seed, pcmserve.ServerConfig{})
}

// startTestNodeCfg is startTestNode with an explicit server config —
// membership tests use it to emulate old peers (DisableRangeOps).
func startTestNodeCfg(t testing.TB, blocksPerShard int, seed uint64, srvCfg pcmserve.ServerConfig) *testNode {
	return startTestNodeTune(t, blocksPerShard, seed, srvCfg, nil)
}

// startTestNodeTune additionally lets the caller adjust the shards
// config before the node is built — overload tests shrink the queue
// depth so admission control engages under modest traffic.
func startTestNodeTune(t testing.TB, blocksPerShard int, seed uint64, srvCfg pcmserve.ServerConfig, tune func(*pcmserve.ShardsConfig)) *testNode {
	t.Helper()
	n := &testNode{t: t, srvCfg: srvCfg}
	cfg := pcmserve.ShardsConfig{
		Shards: 2,
		Device: device.Config{
			Blocks:         blocksPerShard,
			Seed:           seed,
			DisableWearout: true,
		},
		WrapDevice: func(i int, dev pcmserve.ShardDevice) pcmserve.ShardDevice {
			fi := faultinject.New(dev, faultinject.Plan{Seed: seed + uint64(i)})
			n.fis = append(n.fis, fi)
			return fi
		},
		// Keep every server-side trace so tests can stitch any op's ID.
		Obs: &pcmserve.Observability{TraceSampleEvery: 1},
	}
	if tune != nil {
		tune(&cfg)
	}
	g, err := pcmserve.NewShards(cfg)
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	n.g = g
	t.Cleanup(func() { g.Close() })

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	n.addr = ln.Addr().String()
	n.serve(ln)
	t.Cleanup(n.kill)
	return n
}

func (n *testNode) serve(ln net.Listener) {
	srv := pcmserve.NewServer(n.g, n.srvCfg)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	n.mu.Lock()
	n.srv, n.serveErr, n.alive = srv, errCh, true
	n.mu.Unlock()
}

// kill shuts the server down; the shards (and their stored bytes)
// survive for a later restart.
func (n *testNode) kill() {
	n.mu.Lock()
	srv, errCh, alive := n.srv, n.serveErr, n.alive
	n.alive = false
	n.mu.Unlock()
	if !alive {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		n.t.Errorf("Shutdown(%s): %v", n.addr, err)
	}
	if err := <-errCh; !errors.Is(err, pcmserve.ErrServerClosed) {
		n.t.Errorf("Serve(%s) returned %v, want ErrServerClosed", n.addr, err)
	}
}

// restart brings the node back on its original address over the same
// storage. The OS may briefly hold the port, so rebinding retries.
func (n *testNode) restart() {
	n.t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 200; i++ {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		n.t.Fatalf("rebind %s: %v", n.addr, err)
	}
	n.serve(ln)
}

// testCluster spins up count nodes and a cluster over them, tuned for
// fast failover in tests.
func testCluster(t testing.TB, count int, tune func(*Config)) (*Cluster, []*testNode) {
	t.Helper()
	nodes := make([]*testNode, count)
	addrs := make([]string, count)
	for i := range nodes {
		nodes[i] = startTestNode(t, 64, uint64(1000*i+7))
		addrs[i] = nodes[i].addr
	}
	cfg := Config{
		Nodes:              addrs,
		OpTimeout:          2 * time.Second,
		FailThreshold:      1,
		ProbeInterval:      20 * time.Millisecond,
		HintReplayInterval: 10 * time.Millisecond,
		Seed:               99,
	}
	if tune != nil {
		tune(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, nodes
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// readNodeSlot reads block b's raw slot directly off one node, outside
// the cluster, for replica-level assertions.
func readNodeSlot(t *testing.T, addr string, b int64) ([]byte, blockMeta, slotStatus) {
	t.Helper()
	cl, err := pcmserve.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer cl.Close()
	slot := make([]byte, SlotBytes)
	if _, err := cl.ReadAt(slot, b*SlotBytes); err != nil {
		t.Fatalf("raw read %s block %d: %v", addr, b, err)
	}
	data, meta, status := decodeSlot(slot)
	return data, meta, status
}

// writeNodeSlot plants a raw slot image directly on one node, outside
// the cluster — for forging divergent replica states.
func writeNodeSlot(t *testing.T, addr string, b int64, slot []byte) {
	t.Helper()
	cl, err := pcmserve.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer cl.Close()
	if _, err := cl.WriteAt(slot, b*SlotBytes); err != nil {
		t.Fatalf("raw write %s block %d: %v", addr, b, err)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no nodes", Config{}, "at least one node"},
		{"empty addr", Config{Nodes: []string{"a:1", ""}}, "empty node address"},
		{"duplicate addr", Config{Nodes: []string{"a:1", "a:1"}}, "duplicate node address"},
		{"rf exceeds nodes", Config{Nodes: []string{"a:1", "b:1"}, ReplicationFactor: 3}, "exceeds 2 nodes"},
		{"quorum exceeds rf", Config{Nodes: []string{"a:1", "b:1", "c:1"}, WriteQuorum: 4}, "exceed replication factor"},
		{"non-intersecting quorums", Config{Nodes: []string{"a:1", "b:1", "c:1"}, WriteQuorum: 1, ReadQuorum: 2}, "must exceed replication factor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestClusterRoundTrip(t *testing.T) {
	c, _ := testCluster(t, 3, nil)
	ctx := context.Background()

	// Capacity comes from the STATS probe: 2 shards × 64 blocks × 64 B
	// per node = 8192 B → 102 slots.
	if got := c.Blocks(); got != 102 {
		t.Fatalf("Blocks() = %d, want 102", got)
	}

	for b := int64(0); b < 10; b++ {
		data := bytes.Repeat([]byte{byte(0x30 + b)}, DataBytes)
		if err := c.WriteBlock(ctx, b, data); err != nil {
			t.Fatalf("write block %d: %v", b, err)
		}
		got, err := c.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("read block %d: %v", b, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("block %d round-trip mismatch", b)
		}
	}
	// Overwrites win: the newest version is what reads return.
	newer := bytes.Repeat([]byte{0xEE}, DataBytes)
	if err := c.WriteBlock(ctx, 3, newer); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadBlock(ctx, 3)
	if err != nil || !bytes.Equal(got, newer) {
		t.Fatalf("overwrite not visible: %v", err)
	}

	// Never-written blocks read as zeros, not an error.
	got, err = c.ReadBlock(ctx, c.Blocks()-1)
	if err != nil {
		t.Fatalf("read unwritten: %v", err)
	}
	if !bytes.Equal(got, make([]byte, DataBytes)) {
		t.Fatal("unwritten block not zero")
	}

	// Range and size errors are immediate and typed.
	if _, err := c.ReadBlock(ctx, c.Blocks()); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := c.WriteBlock(ctx, -1, newer); err == nil {
		t.Fatal("negative block write accepted")
	}
	if err := c.WriteBlock(ctx, 0, newer[:10]); err == nil {
		t.Fatal("short write accepted")
	}

	st := c.Stats()
	if st.QuorumReads == 0 || st.QuorumWrites == 0 {
		t.Fatalf("quorum counters not moving: %+v", st)
	}
	if !c.Health().Healthy {
		t.Fatal("healthy cluster reports unhealthy")
	}
}

func TestClusterClosedOps(t *testing.T) {
	c, _ := testCluster(t, 3, nil)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := c.ReadBlock(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close = %v, want ErrClosed", err)
	}
	if err := c.WriteBlock(context.Background(), 0, make([]byte, DataBytes)); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

// TestClusterReadRepairsCorruptReplica flips stored bits under one
// replica and checks that reads keep returning exact data while the
// damaged copy is detected, excluded from the quorum, and rewritten.
func TestClusterReadRepairsCorruptReplica(t *testing.T) {
	c, nodes := testCluster(t, 3, nil)
	ctx := context.Background()

	const b = int64(0) // slot 0 sits in shard 0, device block 0, on every node
	data := bytes.Repeat([]byte{0x5A}, DataBytes)
	if err := c.WriteBlock(ctx, b, data); err != nil {
		t.Fatal(err)
	}

	victim := nodes[0]
	victim.fis[0].FlipStoredBits(0, 4)

	// Every read must return the exact data: the corrupt replica can
	// cost quorum speed, never correctness.
	waitFor(t, 5*time.Second, "corrupt replica detected and repaired", func() bool {
		got, err := c.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("read during corruption: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read returned wrong bytes during corruption")
		}
		st := c.Stats()
		return st.DivergentCorrupt >= 1 && st.ReadRepairs >= 1
	})

	// The victim's replica converged back to the written value.
	waitFor(t, 5*time.Second, "victim replica rewritten", func() bool {
		got, _, status := readNodeSlot(t, victim.addr, b)
		return status == slotOK && bytes.Equal(got, data)
	})
}

// TestClusterFailoverAndHintedHandoff kills one node, keeps writing
// (quorum holds at W=2), restarts it, and checks the missed writes are
// replayed from the hint buffer until the replica converges.
func TestClusterFailoverAndHintedHandoff(t *testing.T) {
	c, nodes := testCluster(t, 3, nil)
	ctx := context.Background()

	const b = int64(1)
	v1 := bytes.Repeat([]byte{0x11}, DataBytes)
	if err := c.WriteBlock(ctx, b, v1); err != nil {
		t.Fatal(err)
	}

	nodes[0].kill()

	// Writes and reads survive the dead node.
	v2 := bytes.Repeat([]byte{0x22}, DataBytes)
	if err := c.WriteBlock(ctx, b, v2); err != nil {
		t.Fatalf("write with one node down: %v", err)
	}
	got, err := c.ReadBlock(ctx, b)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("read with one node down: %v", err)
	}
	waitFor(t, 5*time.Second, "breaker to mark the node down", func() bool {
		// Drive traffic so the breaker sees the failures.
		if err := c.WriteBlock(ctx, b, v2); err != nil {
			t.Fatalf("write: %v", err)
		}
		st := c.Stats()
		return st.NodeDownTransitions >= 1 && st.HintsQueued >= 1
	})

	nodes[0].restart()

	waitFor(t, 10*time.Second, "hint replay after restart", func() bool {
		return c.Stats().HintsReplayed >= 1
	})
	// The revived replica holds the last-acknowledged write.
	waitFor(t, 5*time.Second, "revived replica to converge", func() bool {
		got, _, status := readNodeSlot(t, nodes[0].addr, b)
		return status == slotOK && bytes.Equal(got, v2)
	})
	waitFor(t, 5*time.Second, "breaker to revive the node", func() bool {
		for _, ns := range c.Stats().Nodes {
			if ns.Addr == nodes[0].addr {
				return ns.State == "up"
			}
		}
		return false
	})
}

// TestClusterQuorumFailuresTyped kills two of three nodes: both
// quorums become unreachable and every operation fails with its typed
// sentinel — never a hang, never fabricated data.
func TestClusterQuorumFailuresTyped(t *testing.T) {
	c, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.OpTimeout = 500 * time.Millisecond
	})
	ctx := context.Background()

	if err := c.WriteBlock(ctx, 2, bytes.Repeat([]byte{9}, DataBytes)); err != nil {
		t.Fatal(err)
	}
	nodes[0].kill()
	nodes[1].kill()

	if err := c.WriteBlock(ctx, 2, bytes.Repeat([]byte{8}, DataBytes)); !errors.Is(err, ErrWriteQuorum) {
		t.Fatalf("write with 2 nodes down = %v, want ErrWriteQuorum", err)
	}
	if _, err := c.ReadBlock(ctx, 2); !errors.Is(err, ErrReadQuorum) {
		t.Fatalf("read with 2 nodes down = %v, want ErrReadQuorum", err)
	}
	st := c.Stats()
	if st.WriteQuorumFails == 0 || st.ReadQuorumFailures == 0 {
		t.Fatalf("quorum failure counters not recorded: %+v", st)
	}
	if c.Health().Healthy {
		t.Fatal("cluster below quorum reports healthy")
	}
}

// TestClusterAntiEntropyRepairsColdBlock forces divergence on a block
// no foreground read touches (hints disabled by a huge replay
// interval) and checks the background sweep alone converges it.
func TestClusterAntiEntropyRepairsColdBlock(t *testing.T) {
	c, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.HintReplayInterval = time.Hour // hints must not beat the sweep
		cfg.AntiEntropyInterval = 2 * time.Millisecond
	})
	ctx := context.Background()

	const b = int64(4)
	v1 := bytes.Repeat([]byte{0x44}, DataBytes)
	if err := c.WriteBlock(ctx, b, v1); err != nil {
		t.Fatal(err)
	}

	nodes[0].kill()
	v2 := bytes.Repeat([]byte{0x55}, DataBytes)
	waitFor(t, 5*time.Second, "write to land while node 0 is down", func() bool {
		if err := c.WriteBlock(ctx, b, v2); err != nil {
			t.Fatalf("write: %v", err)
		}
		return c.Stats().NodeDownTransitions >= 1
	})
	nodes[0].restart()

	waitFor(t, 10*time.Second, "anti-entropy to repair the stale replica", func() bool {
		if c.Stats().AntiEntropyRepairs == 0 {
			return false
		}
		got, _, status := readNodeSlot(t, nodes[0].addr, b)
		return status == slotOK && bytes.Equal(got, v2)
	})
	waitFor(t, 5*time.Second, "a full sweep pass", func() bool {
		return c.Stats().AntiEntropyPasses >= 1
	})
}

// TestClusterRestartedClientWins pins the version-stamp contract
// across client restarts: a brand-new cluster client (fresh process,
// same tag seed — the worst case) writing over data stored by an
// earlier client must outrank it, so its acknowledged writes are never
// reverted to the predecessor's data by read-repair. A plain
// in-memory version counter restarting at 0 breaks this.
func TestClusterRestartedClientWins(t *testing.T) {
	nodes := make([]*testNode, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = startTestNode(t, 64, uint64(1000*i+7))
		addrs[i] = nodes[i].addr
	}
	mkCfg := func() Config {
		return Config{
			Nodes:              addrs,
			OpTimeout:          2 * time.Second,
			FailThreshold:      1,
			ProbeInterval:      20 * time.Millisecond,
			HintReplayInterval: 10 * time.Millisecond,
			Seed:               7, // identical on purpose: both clients share a tag
		}
	}
	ctx := context.Background()
	const b = int64(6)

	a, err := New(mkCfg())
	if err != nil {
		t.Fatalf("New (first client): %v", err)
	}
	v1 := bytes.Repeat([]byte{0xAA}, DataBytes)
	for i := 0; i < 50; i++ { // advance the first client's clock well past 1 tick
		if err := a.WriteBlock(ctx, b, v1); err != nil {
			t.Fatalf("first client write: %v", err)
		}
	}
	_, aMeta, status := readNodeSlot(t, nodes[0].addr, b)
	if status != slotOK {
		t.Fatalf("stored slot after first client: %v", status)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close (first client): %v", err)
	}

	bCl, err := New(mkCfg())
	if err != nil {
		t.Fatalf("New (restarted client): %v", err)
	}
	t.Cleanup(func() { bCl.Close() })
	v2 := bytes.Repeat([]byte{0xBB}, DataBytes)
	if err := bCl.WriteBlock(ctx, b, v2); err != nil {
		t.Fatalf("restarted client write: %v", err)
	}
	// The new write must outrank everything the predecessor stored…
	for _, n := range nodes {
		_, m, status := readNodeSlot(t, n.addr, b)
		if status != slotOK || !m.newer(aMeta) {
			t.Fatalf("node %s: version %d does not outrank predecessor's %d (status %v)",
				n.addr, m.Version, aMeta.Version, status)
		}
	}
	// …and reads (plus the repairs they trigger) must never revert it.
	for i := 0; i < 20; i++ {
		got, err := bCl.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, v2) {
			t.Fatalf("read %d reverted to the predecessor's data", i)
		}
	}
}

// TestClusterEqualVersionTiebreakConverges forges the concurrent-client
// worst case: replicas disagreeing at byte-identical versions. The
// data-CRC tiebreak must pick one winner deterministically and repair
// the losers, instead of replicas disagreeing forever with reads
// flipping by quorum sample.
func TestClusterEqualVersionTiebreakConverges(t *testing.T) {
	c, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.AntiEntropyInterval = 2 * time.Millisecond
	})
	ctx := context.Background()

	const b = int64(2)
	ver := uint64(77)<<8 | 0x5A // same stamp, as if two clients shared counter and tag
	dataX := bytes.Repeat([]byte{0xA1}, DataBytes)
	dataY := bytes.Repeat([]byte{0xB2}, DataBytes)
	slotX := make([]byte, SlotBytes)
	slotY := make([]byte, SlotBytes)
	encodeSlot(slotX, dataX, ver)
	encodeSlot(slotY, dataY, ver)
	writeNodeSlot(t, nodes[0].addr, b, slotX)
	writeNodeSlot(t, nodes[1].addr, b, slotX)
	writeNodeSlot(t, nodes[2].addr, b, slotY)

	_, mX, _ := decodeSlot(slotX)
	_, mY, _ := decodeSlot(slotY)
	want := dataX
	if mY.newer(mX) {
		want = dataY
	}

	waitFor(t, 5*time.Second, "replicas to converge on the tie winner", func() bool {
		for _, n := range nodes {
			got, _, status := readNodeSlot(t, n.addr, b)
			if status != slotOK || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	})
	for i := 0; i < 10; i++ {
		got, err := c.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d returned the tie loser after convergence", i)
		}
	}
}

// TestClusterProbeRequiresAllNodes pins the sizing contract: with a
// node unreachable, auto-sizing must refuse to construct (sizing from
// the smallest *reachable* node could overshoot the missing node's
// capacity and strand its blocks at RF-1 durability once it returned);
// an explicit Blocks skips the probe and still works.
func TestClusterProbeRequiresAllNodes(t *testing.T) {
	nodes := make([]*testNode, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = startTestNode(t, 64, uint64(1000*i+7))
		addrs[i] = nodes[i].addr
	}
	nodes[2].kill()
	cfg := Config{
		Nodes:         addrs,
		OpTimeout:     time.Second,
		FailThreshold: 1,
	}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "capacity probe needs every node") {
		t.Fatalf("New with a node down = %v, want capacity probe failure", err)
	}
	cfg.Blocks = 10
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New with explicit Blocks: %v", err)
	}
	defer c.Close()
	if got := c.Blocks(); got != 10 {
		t.Fatalf("Blocks() = %d, want 10", got)
	}
	if err := c.WriteBlock(context.Background(), 0, make([]byte, DataBytes)); err != nil {
		t.Fatalf("write on explicitly sized cluster: %v", err)
	}
}

// TestAddHintResults pins addHint's outcome classification, which the
// hint metrics (queued / dropped_stale / dropped_overflow) rely on —
// including in the drain-loop requeue path.
func TestAddHintResults(t *testing.T) {
	n := newNode("test:0", nil, 1, time.Second, 2)
	slot := make([]byte, SlotBytes)
	steps := []struct {
		b    int64
		ver  uint64
		want hintAddResult
	}{
		{1, 10, hintStored},
		{1, 9, hintSuperseded},  // older than queued
		{1, 10, hintSuperseded}, // equal to queued
		{1, 11, hintStored},     // newer replaces in place
		{2, 1, hintStored},      // fills the 2-slot buffer
		{3, 1, hintOverflow},    // new block at capacity
		{1, 12, hintStored},     // replacement still allowed at capacity
	}
	for i, s := range steps {
		if got := n.addHint(s.b, slot, s.ver); got != s.want {
			t.Fatalf("step %d: addHint(%d, v%d) = %v, want %v", i, s.b, s.ver, got, s.want)
		}
	}
	if got := n.hintCount(); got != 2 {
		t.Fatalf("hintCount = %d, want 2", got)
	}
}

// TestClusterBlocksFixedByConfig skips the capacity probe.
func TestClusterBlocksFixedByConfig(t *testing.T) {
	c, _ := testCluster(t, 3, func(cfg *Config) {
		cfg.Blocks = 17
	})
	if got := c.Blocks(); got != 17 {
		t.Fatalf("Blocks() = %d, want 17", got)
	}
	if _, err := c.ReadBlock(context.Background(), 17); err == nil {
		t.Fatal("read past configured capacity accepted")
	}
}
