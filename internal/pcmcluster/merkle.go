package pcmcluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/pcmserve"
)

// Merkle anti-entropy.
//
// The legacy sweeper reads every slot from every replica once per
// pass — O(blocks × RF) reads even when nothing diverges, which dies
// at production block counts. The Merkle exchange instead compares
// hash-tree levels built on demand by each node over its raw slot
// bytes (HASH_RANGE: one digest per chunk, computed server-side,
// nothing shipped but the digests) and descends only into chunks whose
// digests disagree. A clean partition costs RF digest RPCs; a
// partition with one divergent slot costs O(fanout × depth) digest
// comparisons plus the one slot's reconciliation — O(divergence), not
// O(blocks).
//
// Digests cover the full 80-byte slots, so stored-bit rot under an
// intact trailer is caught too, not just missed writes. At the leaf
// the replicas' slot trailers are compared byte-for-byte (one
// READ_STRIDE round trip per replica); slots whose trailers differ —
// or leaves whose digests disagree while every trailer matches, the
// data-rot signature — are fetched in full and reconciled through the
// same stripe-locked winner-repair path foreground reads use.

const (
	// merkleFanout is the tree's branching factor: each HASH_RANGE
	// request splits its span into at most this many chunks.
	merkleFanout = 8
	// merkleLeafSlots is the span below which the descent switches from
	// digest comparison to direct trailer comparison.
	merkleLeafSlots = 8
)

// merkleOutcome classifies one partition exchange.
type merkleOutcome int

const (
	merkleClean merkleOutcome = iota
	merkleRepaired
	merkleUnavailable
	merkleUnsupported
)

// merkleSweepPartition reconciles one partition by digest exchange.
func (c *Cluster) merkleSweepPartition(ctx context.Context, ot *opTrace, part int64, reps []*node) merkleOutcome {
	lo, n := c.partSpan(part)
	exchT := time.Now()
	divergent, err := c.merkleDescend(ctx, reps, lo, n)
	ot.span("merkle_exchange", "", exchT, err)
	switch {
	case err == nil:
	case errors.Is(err, pcmserve.ErrUnsupported):
		return merkleUnsupported
	default:
		c.met.mkPartsUnavailable.Inc()
		return merkleUnavailable
	}
	if len(divergent) == 0 {
		c.met.mkPartsClean.Inc()
		return merkleClean
	}
	// Full-slot reconciliation, one divergent slot at a time — the only
	// point where whole slots cross the wire, and the counter the
	// O(divergence) acceptance bound is asserted against.
	for _, b := range divergent {
		c.met.mkSlotsFetched.Add(uint64(len(reps)))
		c.sweepBlockReplicas(ctx, ot, b, reps)
	}
	c.met.mkPartsDivergent.Inc()
	return merkleRepaired
}

// merkleDescend walks the replicas' implicit hash trees from the
// partition root, returning the slots whose copies disagree. An error
// means the exchange could not finish (a replica down mid-descent, or
// one that does not speak the ops — distinguishable via
// pcmserve.ErrUnsupported).
func (c *Cluster) merkleDescend(ctx context.Context, reps []*node, lo, n int64) ([]int64, error) {
	type span struct{ lo, n int64 }
	// compareLeaf's all-trailers-equal-means-data-rot rule is only sound
	// for spans whose digests were seen to disagree, so a root span
	// already at leaf size gets a digest exchange first.
	if n <= merkleLeafSlots {
		clean := true
		var first []pcmserve.RangeDigest
		for i, rep := range reps {
			d, err := c.hashRangeOn(ctx, rep, lo, n)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				first = d
				continue
			}
			for ci := range d {
				if ci >= len(first) || d[ci].Unreadable || first[ci].Unreadable ||
					d[ci].Digest != first[ci].Digest {
					clean = false
				}
			}
		}
		if clean {
			return nil, nil
		}
		return c.compareLeaf(ctx, reps, lo, n)
	}
	queue := []span{{lo, n}}
	var divergent []int64
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if s.n <= merkleLeafSlots {
			slots, err := c.compareLeaf(ctx, reps, s.lo, s.n)
			if err != nil {
				return nil, err
			}
			divergent = append(divergent, slots...)
			continue
		}
		// One digest vector per replica over the span.
		digests := make([][]pcmserve.RangeDigest, len(reps))
		for i, rep := range reps {
			d, err := c.hashRangeOn(ctx, rep, s.lo, s.n)
			if err != nil {
				return nil, err
			}
			digests[i] = d
		}
		// The server's chunk split is deterministic in (count, fanout),
		// so chunk i covers the same records on every replica.
		childLo := s.lo
		for ci := range digests[0] {
			records := int64(digests[0][ci].Records)
			mismatch := false
			for _, d := range digests {
				if ci >= len(d) || int64(d[ci].Records) != records {
					return nil, fmt.Errorf("pcmcluster: merkle chunk layout diverged between replicas")
				}
				if d[ci].Unreadable || d[ci].Digest != digests[0][ci].Digest {
					mismatch = true
				}
			}
			if mismatch {
				queue = append(queue, span{childLo, records})
			}
			childLo += records
		}
	}
	return divergent, nil
}

// hashRangeOn requests one replica's digest vector for a slot span,
// bounded by a per-RPC deadline.
func (c *Cluster) hashRangeOn(ctx context.Context, rep *node, lo, n int64) ([]pcmserve.RangeDigest, error) {
	if rep.noMerkle.Load() {
		return nil, pcmserve.ErrUnsupported
	}
	if !rep.admit() {
		c.noteResult(rep, false, errNodeDown)
		return nil, errNodeDown
	}
	ctx, cancel := context.WithTimeout(ctx, c.opTimeout)
	defer cancel()
	c.met.mkDigestRPCs.Inc()
	d, err := rep.client.HashRangeCtx(ctx, lo*SlotBytes, SlotBytes, int(n), merkleFanout)
	c.noteResult(rep, false, err)
	if err != nil {
		if errors.Is(err, pcmserve.ErrUnsupported) {
			rep.noMerkle.Store(true)
		}
		return nil, err
	}
	return d, nil
}

// compareLeaf compares a leaf span's slot trailers across replicas —
// one READ_STRIDE round trip each — and returns the slots needing
// full reconciliation. A leaf is only visited because its digests
// disagreed; if every trailer still matches, the divergence is in the
// data bytes under an intact trailer (stored-bit rot), so the whole
// leaf is reconciled — the full-slot re-read decodes data CRCs and
// repairs the rotted copy.
func (c *Cluster) compareLeaf(ctx context.Context, reps []*node, lo, n int64) ([]int64, error) {
	trailers := make([][][]byte, len(reps))
	for i, rep := range reps {
		if rep.noMerkle.Load() {
			return nil, pcmserve.ErrUnsupported
		}
		if !rep.admit() {
			c.noteResult(rep, false, errNodeDown)
			return nil, errNodeDown
		}
		c.met.mkDigestRPCs.Inc()
		rctx, cancel := context.WithTimeout(ctx, c.opTimeout)
		recs, err := rep.client.ReadStrideCtx(rctx, lo*SlotBytes+DataBytes, SlotBytes, metaBytes, int(n))
		cancel()
		c.noteResult(rep, false, err)
		if err != nil {
			if errors.Is(err, pcmserve.ErrUnsupported) {
				rep.noMerkle.Store(true)
			}
			return nil, err
		}
		trailers[i] = recs
	}
	var out []int64
	for i := int64(0); i < n; i++ {
		mismatch := false
		ref := trailers[0][i]
		for _, t := range trailers {
			if t[i] == nil || ref == nil || !bytes.Equal(t[i], ref) {
				mismatch = true
				break
			}
		}
		if mismatch {
			out = append(out, lo+i)
		}
	}
	if out == nil {
		// Digests disagreed but trailers match everywhere: data-byte rot.
		for i := int64(0); i < n; i++ {
			out = append(out, lo+i)
		}
	}
	return out, nil
}
