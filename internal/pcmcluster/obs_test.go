package pcmcluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// adminServers mounts each test node's admin plane on an httptest
// server and returns stitch sources pointing at them.
func adminServers(t *testing.T, nodes []*testNode) []obs.StitchSource {
	t.Helper()
	out := make([]obs.StitchSource, len(nodes))
	for i, n := range nodes {
		srv := httptest.NewServer(n.srv.AdminHandler())
		t.Cleanup(srv.Close)
		out[i] = obs.StitchSource{Node: n.addr, URL: srv.URL}
	}
	return out
}

// TestTracePropagationE2E drives one traced write and one traced read
// through a 3-node cluster and checks the trace ID made it everywhere:
// the cluster-side trace log, every replica's server-side trace log,
// and a stitched /clusterz-style timeline covering both halves.
func TestTracePropagationE2E(t *testing.T) {
	c, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.TraceSampleEvery = 1
	})
	sources := adminServers(t, nodes)

	wID := obs.NextTraceID()
	wctx := obs.ContextWithTrace(context.Background(), wID)
	data := bytes.Repeat([]byte{0xA7}, DataBytes)
	if err := c.WriteBlock(wctx, 5, data); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}

	rID := obs.NextTraceID()
	rctx := obs.ContextWithTrace(context.Background(), rID)
	if _, err := c.ReadBlock(rctx, 5); err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}

	// The trace record lands after the last replica drains, so poll.
	for _, id := range []uint64{wID, rID} {
		id := id
		waitFor(t, 5*time.Second, "cluster trace "+strconv.FormatUint(id, 16), func() bool {
			return len(c.Traces().Find(id)) > 0
		})
	}

	wTraces := c.Traces().Find(wID)
	if !hasEvent(wTraces, "replica_write") || !hasEvent(wTraces, "quorum_met") {
		t.Fatalf("write trace missing replica_write/quorum_met events: %+v", wTraces)
	}
	rTraces := c.Traces().Find(rID)
	if !hasEvent(rTraces, "replica_read") || !hasEvent(rTraces, "quorum_met") {
		t.Fatalf("read trace missing replica_read/quorum_met events: %+v", rTraces)
	}

	// Every replica served the write (RF=3) and recorded it under the
	// originating ID.
	for _, n := range nodes {
		n := n
		waitFor(t, 5*time.Second, "node trace on "+n.addr, func() bool {
			return len(n.g.Traces().Find(wID)) > 0
		})
	}

	// Stitch the read: client quorum events plus each replica that
	// served it, merged into one timeline.
	st := (&obs.Stitcher{
		Local:   c.Traces(),
		Sources: func() []obs.StitchSource { return sources },
	}).Stitch(context.Background(), rID)
	if len(st.Client) == 0 {
		t.Fatal("stitched trace has no client half")
	}
	nodesWithSpans := 0
	for _, ns := range st.Nodes {
		if ns.Err != "" {
			t.Fatalf("stitch source %s: %s", ns.Node, ns.Err)
		}
		if len(ns.Traces) > 0 {
			nodesWithSpans++
		}
	}
	// R=2 with async drain: at least the two quorum replicas must have
	// server-side spans by now (usually all three).
	if nodesWithSpans < 2 {
		t.Fatalf("stitched read trace covers %d nodes, want >= 2", nodesWithSpans)
	}
	tl := strings.Join(st.Timeline, "\n")
	if !strings.Contains(tl, "client.replica_read") {
		t.Errorf("timeline missing client.replica_read:\n%s", tl)
	}
	if !strings.Contains(tl, "client.quorum_met") {
		t.Errorf("timeline missing client.quorum_met:\n%s", tl)
	}
	if !strings.Contains(tl, "node ") {
		t.Errorf("timeline missing node spans:\n%s", tl)
	}
}

func hasEvent(traces []obs.Trace, name string) bool {
	for _, tr := range traces {
		for _, e := range tr.Events {
			if e.Name == name {
				return true
			}
		}
	}
	return false
}

// TestBackgroundTraceCauses checks that repair traffic runs under
// cause-tagged root traces instead of blending into foreground ops:
// a hinted-handoff replay must surface as a "hint_replay" trace.
func TestBackgroundTraceCauses(t *testing.T) {
	c, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.TraceSampleEvery = 1
		cfg.AntiEntropyInterval = -1 // isolate the hint path
	})

	nodes[2].kill()
	data := bytes.Repeat([]byte{0x3C}, DataBytes)
	// First write may fail while the dead node still counts toward the
	// quorum; keep writing until hints queue.
	waitFor(t, 5*time.Second, "hint queued", func() bool {
		_ = c.WriteBlock(context.Background(), 9, data)
		return c.Stats().HintsQueued > 0
	})
	nodes[2].restart()
	waitFor(t, 10*time.Second, "hint replayed", func() bool {
		return c.Stats().HintsReplayed > 0
	})

	waitFor(t, 5*time.Second, "hint_replay trace", func() bool {
		for _, tr := range c.Traces().Recent() {
			if tr.Cause == "hint_replay" {
				return true
			}
		}
		for _, tr := range c.Traces().Slow() {
			if tr.Cause == "hint_replay" {
				return true
			}
		}
		return false
	})
}

// TestStragglerAttribution is the acceptance scenario: one replica
// stalled by an injected device latency spike must be identifiable
// from the observability outputs alone — the slow-quorum log names it,
// the straggler-position reply histogram separates it, its exemplar
// trace ID stitches to a timeline showing the stall, and the latency
// SLO's burn rate advances.
func TestStragglerAttribution(t *testing.T) {
	const (
		spike     = 120 * time.Millisecond
		slowAt    = 30 * time.Millisecond
		latTarget = 50 * time.Millisecond
	)
	c, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.WriteQuorum = 3 // writes need every replica: the stall sets their pace
		cfg.ReadQuorum = 2  // reads quorum fast: the stall is pure straggler tail
		cfg.TraceSampleEvery = 1
		cfg.SlowQuorumThreshold = slowAt
		cfg.SLOObjective = 0.9
		cfg.SLOLatencyTarget = latTarget
		cfg.AntiEntropyInterval = -1
	})
	sources := adminServers(t, nodes)
	stalled := nodes[1]

	// Warm up un-stalled: nothing should be slow.
	data := bytes.Repeat([]byte{0x55}, DataBytes)
	for b := int64(0); b < 4; b++ {
		if err := c.WriteBlock(context.Background(), b, data); err != nil {
			t.Fatalf("warmup write %d: %v", b, err)
		}
		if _, err := c.ReadBlock(context.Background(), b); err != nil {
			t.Fatalf("warmup read %d: %v", b, err)
		}
	}
	if n := c.SlowQuorumTotal(); n != 0 {
		t.Fatalf("slow quorums before the stall: %d", n)
	}

	// Stall one replica mid-run.
	for _, fi := range stalled.fis {
		fi.SetLatency(spike)
	}
	for b := int64(0); b < 6; b++ {
		if err := c.WriteBlock(context.Background(), b, data); err != nil {
			t.Fatalf("stalled write %d: %v", b, err)
		}
		if _, err := c.ReadBlock(context.Background(), b); err != nil {
			t.Fatalf("stalled read %d: %v", b, err)
		}
	}
	// Read traces finish after the straggler drains.
	waitFor(t, 10*time.Second, "slow-quorum entries", func() bool {
		return c.SlowQuorumTotal() >= 6
	})

	// 1. The slow-quorum log names the stalled node, with slow writes
	// (quorum-pacing) and straggler-tail reads both attributed.
	classes := map[string]bool{}
	for _, e := range c.SlowQuorums() {
		if e.Straggler != stalled.addr {
			t.Errorf("slow quorum %s block %d attributes %s, want %s",
				e.Op, e.Block, e.Straggler, stalled.addr)
		}
		classes[e.ErrClass] = true
		if e.QuorumLatency == 0 && e.ErrClass != "straggler_tail" {
			t.Errorf("entry %+v: no quorum latency but class %q", e, e.ErrClass)
		}
	}
	if !classes["slow"] {
		t.Errorf("no quorum-pacing (\"slow\") entries; classes: %v", classes)
	}
	if !classes["straggler_tail"] {
		t.Errorf("no straggler_tail entries; classes: %v", classes)
	}

	// 2. The straggler-position reply histogram separates the stalled
	// node, and its tail bucket carries a trace-ID exemplar.
	var sb strings.Builder
	c.Registry().WritePrometheus(&sb)
	fams, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	fam := fams["pcmcluster_node_reply_seconds"]
	if fam == nil {
		t.Fatal("no pcmcluster_node_reply_seconds family")
	}
	var exemplarID uint64
	stragglerCount := 0.0
	for _, s := range fam.Samples {
		if s.Labels["node"] != stalled.addr || s.Labels["position"] != "straggler" {
			continue
		}
		if strings.HasSuffix(s.Name, "_count") {
			stragglerCount = s.Value
		}
		if s.Exemplar != nil && s.Exemplar.Value >= spike.Seconds() {
			id, perr := strconv.ParseUint(s.Exemplar.Labels["trace_id"], 16, 64)
			if perr != nil {
				t.Fatalf("bad exemplar trace_id %q: %v", s.Exemplar.Labels["trace_id"], perr)
			}
			exemplarID = id
		}
	}
	if stragglerCount == 0 {
		t.Fatalf("stalled node has no straggler-position replies:\n%s", sb.String())
	}
	if exemplarID == 0 {
		t.Fatal("no >= spike exemplar on the stalled node's straggler histogram")
	}

	// 3. The exemplar resolves to a stitched timeline showing the stall
	// on the stalled node.
	st := (&obs.Stitcher{
		Local:   c.Traces(),
		Sources: func() []obs.StitchSource { return sources },
	}).Stitch(context.Background(), exemplarID)
	if len(st.Client) == 0 {
		t.Fatalf("exemplar trace %016x not in the cluster trace log", exemplarID)
	}
	found := false
	for _, ns := range st.Nodes {
		if ns.Node != stalled.addr {
			continue
		}
		for _, tr := range ns.Traces {
			for _, sp := range tr.Spans {
				if sp.Service >= spike {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("stitched trace %016x has no >= %v service span on %s:\n%s",
			exemplarID, spike, stalled.addr, strings.Join(st.Timeline, "\n"))
	}

	// 4. The latency SLO burns: stalled writes blow the target.
	var latSLO *obs.SLOStatus
	for _, s := range c.Stats().SLOs {
		if s.Name == "pcmcluster_latency" {
			s := s
			latSLO = &s
		}
	}
	if latSLO == nil {
		t.Fatal("no pcmcluster_latency SLO in Stats")
	}
	if latSLO.WindowBad == 0 || latSLO.BurnRate <= 0 {
		t.Errorf("latency SLO did not burn: %+v", latSLO)
	}
	burnFam := fams["pcmcluster_latency_slo_burn_rate"]
	if burnFam == nil || len(burnFam.Samples) == 0 || burnFam.Samples[0].Value <= 0 {
		t.Errorf("pcmcluster_latency_slo_burn_rate gauge missing or zero in /metrics")
	}
	eventsFam := fams["pcmcluster_latency_slo_events_total"]
	if eventsFam == nil {
		t.Error("no pcmcluster_latency_slo_events_total family in /metrics")
	}
}

// TestTracingDisabled pins the untraced baseline: no trace plane, no
// per-node reply series, no trace IDs on the wire — but SLOs still
// record, so the overhead bench isolates tracing cost alone.
func TestTracingDisabled(t *testing.T) {
	c, _ := testCluster(t, 3, func(cfg *Config) {
		cfg.DisableTracing = true
		cfg.SlowQuorumThreshold = time.Nanosecond // would fire on every op if tracing were on
	})
	data := bytes.Repeat([]byte{0x11}, DataBytes)
	for b := int64(0); b < 3; b++ {
		if err := c.WriteBlock(context.Background(), b, data); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := c.ReadBlock(context.Background(), b); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	if got := len(c.Traces().Recent()) + len(c.Traces().Slow()); got != 0 {
		t.Errorf("disabled tracing still recorded %d traces", got)
	}
	if n := c.SlowQuorumTotal(); n != 0 {
		t.Errorf("disabled tracing still logged %d slow quorums", n)
	}
	var sb strings.Builder
	c.Registry().WritePrometheus(&sb)
	if strings.Contains(sb.String(), "pcmcluster_node_reply_seconds") {
		t.Error("untraced baseline still registers per-node reply histograms")
	}
	// SLOs stay on either way.
	if len(c.Stats().SLOs) == 0 {
		t.Error("SLOs should record with tracing disabled")
	}
}
