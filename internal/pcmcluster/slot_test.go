package pcmcluster

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

func TestSlotRoundTrip(t *testing.T) {
	data := make([]byte, DataBytes)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	slot := make([]byte, SlotBytes)
	encodeSlot(slot, data, 0x1234567890ab)

	got, meta, status := decodeSlot(slot)
	if status != slotOK {
		t.Fatalf("status = %v, want ok", status)
	}
	if meta.Version != 0x1234567890ab {
		t.Fatalf("version = %#x, want 0x1234567890ab", meta.Version)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after round-trip")
	}
	// The bare trailer decodes to the same verdict.
	m, ok := decodeMeta(slot[DataBytes:])
	if !ok || m != meta {
		t.Fatalf("decodeMeta = %+v ok=%v, want %+v ok=true", m, ok, meta)
	}
}

func TestSlotUnwritten(t *testing.T) {
	zero := make([]byte, SlotBytes)
	data, meta, status := decodeSlot(zero)
	if status != slotUnwritten {
		t.Fatalf("all-zero slot status = %v, want unwritten", status)
	}
	if meta.Version != 0 {
		t.Fatalf("unwritten version = %d, want 0", meta.Version)
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("unwritten payload not zero")
		}
	}
	if m, ok := decodeMeta(zero[DataBytes:]); !ok || m.Version != 0 {
		t.Fatalf("decodeMeta(zero trailer) = %+v ok=%v, want version 0 ok=true", m, ok)
	}
}

// TestBlockMetaNewer pins the last-writer-wins order: version first,
// exact ties broken deterministically by data CRC, equal metas ordered
// by neither side (so repair treats them as converged).
func TestBlockMetaNewer(t *testing.T) {
	lo := blockMeta{Version: 5 << 8, DataCRC: 0xFFFF}
	hi := blockMeta{Version: 6 << 8, DataCRC: 0x0001}
	if !hi.newer(lo) || lo.newer(hi) {
		t.Fatal("higher version must win regardless of CRC")
	}
	tieA := blockMeta{Version: 7 << 8, DataCRC: 0x10}
	tieB := blockMeta{Version: 7 << 8, DataCRC: 0x20}
	if !tieB.newer(tieA) || tieA.newer(tieB) {
		t.Fatal("equal versions must order by data CRC, exactly one way")
	}
	if tieA.newer(tieA) {
		t.Fatal("a meta must not order after itself")
	}
	written := blockMeta{Version: 1 << 8}
	if !written.newer(blockMeta{}) {
		t.Fatal("any written meta must order after unwritten")
	}
}

func TestSlotCorruptionDetected(t *testing.T) {
	data := bytes.Repeat([]byte{0xC3}, DataBytes)
	canonical := make([]byte, SlotBytes)
	encodeSlot(canonical, data, 99<<8|7)

	// Any single flipped bit — data, version, either CRC — must turn
	// the slot corrupt, never silently decode.
	for byteIdx := 0; byteIdx < SlotBytes; byteIdx++ {
		slot := make([]byte, SlotBytes)
		copy(slot, canonical)
		slot[byteIdx] ^= 0x10
		if _, _, status := decodeSlot(slot); status != slotCorrupt {
			t.Fatalf("flip at byte %d: status = %v, want corrupt", byteIdx, status)
		}
	}
	// A nonzero slot with a garbage trailer is corrupt, not unwritten.
	slot := make([]byte, SlotBytes)
	slot[0] = 1
	if _, _, status := decodeSlot(slot); status != slotCorrupt {
		t.Fatal("nonzero slot with zero trailer must be corrupt")
	}
	// Wrong length is corrupt.
	if _, _, status := decodeSlot(canonical[:SlotBytes-1]); status != slotCorrupt {
		t.Fatal("short slot must be corrupt")
	}
	// A forged version-0 trailer with a valid self-check is corrupt:
	// writers never stamp version 0, so it cannot pass as written OR
	// as unwritten (the data is nonzero).
	forged := make([]byte, SlotBytes)
	encodeSlot(forged, data, 1)
	binary.BigEndian.PutUint64(forged[DataBytes:], 0) // version → 0
	binary.BigEndian.PutUint32(forged[DataBytes+12:],
		crc32.Checksum(forged[DataBytes:DataBytes+12], castagnoli)) // re-seal self-check
	if _, _, status := decodeSlot(forged); status != slotCorrupt {
		t.Fatal("version-0 trailer with valid self-check must be corrupt")
	}
	if _, ok := decodeMeta(forged[DataBytes:]); ok {
		t.Fatal("decodeMeta must reject a sealed version-0 trailer")
	}
}
