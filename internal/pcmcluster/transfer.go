package pcmcluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pcmserve"
)

// transferPart is one unit of bulk-transfer work: push one partition's
// slots to one target node (the joiner, or a drainee's replacement).
type transferPart struct {
	part   int64
	target *node
}

// transferProgress is the transfer checkpoint: which partitions are
// fully pushed and where inside the current one the cursor stands.
// runTransfer reads and advances it under its mutex, so a retry after
// a transient failure — a mid-join kill of the target included —
// resumes at the cursor instead of restarting from partition zero.
type transferProgress struct {
	mu    sync.Mutex
	parts []transferPart
	next  int   // index of the first incomplete part
	slot  int64 // absolute resume slot within parts[next] (0 = part start)
}

func newTransferProgress(parts []transferPart) *transferProgress {
	return &transferProgress{parts: parts}
}

func (p *transferProgress) progress() (done, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.next), int64(len(p.parts))
}

// errTransferSources reports a segment for which too few valid source
// replies arrived to pick winners safely. It is transient: sources
// recover, and the resume loop retries the same segment.
var errTransferSources = errors.New("pcmcluster: transfer segment below read quorum" +
	" (source replicas unavailable)")

// runTransfer pushes every remaining checkpointed partition to its
// target. It returns nil when the checkpoint completes, or the first
// error — leaving the checkpoint at the failed segment for the resume
// loop.
func (c *Cluster) runTransfer(ctx context.Context, ep *epoch, prog *transferProgress) error {
	for {
		select {
		case <-c.stop:
			return ErrClosed
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		prog.mu.Lock()
		if prog.next >= len(prog.parts) {
			prog.mu.Unlock()
			return nil
		}
		tp := prog.parts[prog.next]
		cursor := prog.slot
		prog.mu.Unlock()

		lo, n := c.partSpan(tp.part)
		if cursor < lo {
			cursor = lo
		}
		cause := "join"
		if ep.mode == modeDraining {
			cause = "drain"
		}
		for cursor < lo+n {
			seg := c.segSlots
			if rest := lo + n - cursor; rest < seg {
				seg = rest
			}
			// Each segment runs as its own cause-tagged root trace; the
			// caller's ctx (with its deadline) is kept, only the trace ID
			// is layered on.
			sctx, ot := ctx, (*opTrace)(nil)
			if !c.traceOff {
				id := obs.NextTraceID()
				sctx = obs.ContextWithTrace(ctx, id)
				ot = c.startTrace("transfer_segment", cursor, id, cause)
			}
			err := c.transferSegment(sctx, ot, ep, tp, cursor, seg)
			ot.finish()
			if err != nil {
				return err
			}
			cursor += seg
			c.met.transferSegments.Inc()
			prog.mu.Lock()
			prog.slot = cursor
			prog.mu.Unlock()
			select {
			case <-c.stop:
				return ErrClosed
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		prog.mu.Lock()
		prog.next++
		prog.slot = 0
		prog.mu.Unlock()
	}
}

// transferSegment moves one contiguous run of slots to the target:
// vectored reads from every current owner, per-slot winner election
// (same version-then-CRC order as the read path), then stripe-locked
// recheck-then-write pushes so a push can never clobber a newer
// foreground write landing on the target through the dual-quorum
// write path.
func (c *Cluster) transferSegment(ctx context.Context, ot *opTrace, ep *epoch, tp transferPart, lo, n int64) error {
	if c.coded {
		// Coded mode cannot forward slots verbatim: the target needs the
		// fragment for ITS stripe position, synthesized from the
		// sources' fragments (see coded.go).
		return c.transferSegmentCoded(ctx, ot, ep, tp, lo, n)
	}
	srcs := make([]*node, 0, c.rf)
	for _, s := range ep.cur.replicas(tp.part, c.rf) {
		if s != tp.target {
			srcs = append(srcs, s)
		}
	}
	if len(srcs) == 0 {
		return fmt.Errorf("pcmcluster: partition %d has no source besides the target", tp.part)
	}

	// Vectored source reads, in parallel.
	type srcRead struct {
		buf []byte
		err error
	}
	reads := make([]srcRead, len(srcs))
	var wg sync.WaitGroup
	for i, s := range srcs {
		wg.Add(1)
		go func(i int, s *node) {
			defer wg.Done()
			readT := time.Now()
			if !s.admit() {
				c.noteResult(s, false, errNodeDown)
				reads[i].err = errNodeDown
				ot.span("source_read", s.addr, readT, errNodeDown)
				return
			}
			buf := make([]byte, n*SlotBytes)
			_, err := s.client.ReadAtCtx(ctx, buf, lo*SlotBytes)
			c.noteResult(s, false, err)
			reads[i] = srcRead{buf: buf, err: err}
			ot.span("source_read", s.addr, readT, err)
		}(i, s)
	}
	wg.Wait()

	// Per-slot winner election. Every slot needs at least R structurally
	// valid source copies — the same bar a foreground read applies — or
	// the segment is retried once sources recover.
	winners := make([][]byte, n) // nil = nothing to push
	metas := make([]blockMeta, n)
	for i := int64(0); i < n; i++ {
		valids := 0
		var winSlot []byte
		var winMeta blockMeta
		found := false
		for _, r := range reads {
			if r.err != nil {
				continue
			}
			slot := r.buf[i*SlotBytes : (i+1)*SlotBytes]
			_, meta, status := decodeSlot(slot)
			if status == slotCorrupt {
				continue
			}
			valids++
			if status == slotOK {
				c.observeVersion(meta.Version)
				if !found || meta.newer(winMeta) {
					winSlot, winMeta, found = slot, meta, true
				}
			}
		}
		if valids < c.r {
			return fmt.Errorf("%w: partition %d slot %d: %d/%d valid", errTransferSources,
				tp.part, lo+i, valids, c.r)
		}
		if found {
			winners[i], metas[i] = winSlot, winMeta
		}
	}

	// Push under the segment's stripe locks, acquired in ascending
	// order. The transfer path is the only one that ever holds more
	// than one stripe at a time; everyone else locks exactly one, so
	// the sorted acquisition cannot deadlock against them.
	stripes := stripesForRange(lo, n)
	for _, s := range stripes {
		c.stripes[s].Lock()
	}
	defer func() {
		for _, s := range stripes {
			c.stripes[s].Unlock()
		}
	}()

	// One vectored trailer read rechecks the whole segment on the
	// target; peers without READ_STRIDE fall back to a full range read.
	recheckT := time.Now()
	tMetas, tOK, err := c.targetMetas(ctx, tp.target, lo, n)
	ot.span("target_recheck", tp.target.addr, recheckT, err)
	if err != nil {
		return err
	}

	pushT := time.Now()
	for i := int64(0); i < n; i++ {
		if winners[i] == nil {
			continue // nothing written anywhere: leave the target alone
		}
		if tOK[i] && !metas[i].newer(tMetas[i]) {
			c.met.transferSlotsSkipped.Inc()
			continue // target already at or past the winner
		}
		if !tp.target.admit() {
			c.noteResult(tp.target, true, errNodeDown)
			return errNodeDown
		}
		_, err := tp.target.client.WriteAtCtx(ctx, winners[i], (lo+i)*SlotBytes)
		c.noteResult(tp.target, true, err)
		if err != nil {
			return err
		}
		c.met.transferSlotsPushed.Inc()
	}
	ot.span("push_slots", tp.target.addr, pushT, nil)
	return nil
}

// targetMetas fetches the target's current slot trailers for a
// segment. tOK[i] is false when the trailer is unreadable or invalid —
// the push then proceeds unconditionally, mirroring how repairs treat
// corrupt slots.
func (c *Cluster) targetMetas(ctx context.Context, target *node, lo, n int64) ([]blockMeta, []bool, error) {
	if !target.admit() {
		c.noteResult(target, false, errNodeDown)
		return nil, nil, errNodeDown
	}
	metas := make([]blockMeta, n)
	ok := make([]bool, n)
	if !target.noMerkle.Load() {
		recs, err := target.client.ReadStrideCtx(ctx, lo*SlotBytes+DataBytes, SlotBytes, metaBytes, int(n))
		if err == nil {
			c.noteResult(target, false, nil)
			for i, rec := range recs {
				if rec == nil {
					continue
				}
				metas[i], ok[i] = decodeMeta(rec)
			}
			return metas, ok, nil
		}
		if !errors.Is(err, pcmserve.ErrUnsupported) {
			c.noteResult(target, false, err)
			return nil, nil, err
		}
		target.noMerkle.Store(true)
	}
	buf := make([]byte, n*SlotBytes)
	_, err := target.client.ReadAtCtx(ctx, buf, lo*SlotBytes)
	c.noteResult(target, false, err)
	if err != nil {
		return nil, nil, err
	}
	for i := int64(0); i < n; i++ {
		_, m, status := decodeSlot(buf[i*SlotBytes : (i+1)*SlotBytes])
		if status == slotOK || status == slotUnwritten {
			metas[i], ok[i] = m, true
		}
	}
	return metas, ok, nil
}

// stripesForRange returns the distinct stripe indices covering blocks
// [lo, lo+n), sorted ascending for deadlock-free multi-acquisition.
func stripesForRange(lo, n int64) []int {
	if n >= writeStripes {
		out := make([]int, writeStripes)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for b := lo; b < lo+n; b++ {
		s := int(uint64(b) % writeStripes)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}
