package pcmcluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pcmserve"
)

// TestClusterChaosSoak is the acceptance soak: RF=3 W=2 R=2 over three
// nodes while connections are cut mid-frame by a byte-budget dialer,
// node 0 is killed and later restarted, and stored bits keep flipping
// on node 1's replicas. Workers own disjoint block sets and mirror
// every acknowledged write; the invariant under fire is that each read
// returns either the exact last-acknowledged bytes or a typed quorum
// error — never silently stale or corrupt data. Afterwards the cluster
// must converge: every acknowledged value readable, and the repair,
// hint, and breaker counters accounting for the recoveries.
func TestClusterChaosSoak(t *testing.T) {
	soak := 2500 * time.Millisecond
	if testing.Short() {
		soak = 800 * time.Millisecond
	}

	nodes := make([]*testNode, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = startTestNode(t, 64, uint64(1000*i+7))
		addrs[i] = nodes[i].addr
	}
	c, err := New(Config{
		Nodes: addrs,
		DialNode: func(addr string) (NodeClient, error) {
			// Connections die after a random 32–256 KiB budget, killing
			// some ops mid-frame; the retry layer redials underneath.
			return pcmserve.NewRetryClient(pcmserve.RetryConfig{
				Dial:             faultinject.Dialer(addr, 17^nodeSeed(addr), 32<<10, 256<<10),
				MaxReadAttempts:  3,
				MaxWriteAttempts: 3,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       20 * time.Millisecond,
				OpTimeout:        2 * time.Second,
				Seed:             nodeSeed(addr),
			})
		},
		ReplicationFactor:   3,
		WriteQuorum:         2,
		ReadQuorum:          2,
		FailThreshold:       2,
		ProbeInterval:       50 * time.Millisecond,
		HintReplayInterval:  20 * time.Millisecond,
		AntiEntropyInterval: 500 * time.Microsecond,
		Seed:                4242,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	const workers = 4
	const blockSpan = 40 // blocks 0..39; worker w owns b % workers == w

	stop := make(chan struct{})
	failures := make(chan error, workers+1)
	mirrors := make(chan map[int64][]byte, workers)
	var wg sync.WaitGroup

	// Chaos controller: kill node 0 a quarter in, restart it at the
	// half; flip stored bits on node 1 throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(777))
		killAt := time.After(soak / 4)
		restartAt := time.After(soak / 2)
		flip := time.NewTicker(25 * time.Millisecond)
		defer flip.Stop()
		for {
			select {
			case <-stop:
				return
			case <-killAt:
				nodes[0].kill()
			case <-restartAt:
				nodes[0].restart()
			case <-flip.C:
				// Corrupt a stored 64-byte device block under a verified
				// slot (blocks 0..39 span device bytes 0..3200 → device
				// blocks 0..49, i.e. the first 50 of shard 0's 64).
				fi := nodes[1].fis[0]
				fi.FlipStoredBits(rng.Int63n(50), 1+rng.Intn(3))
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			rng := rand.New(rand.NewSource(int64(w)*101 + 5))
			// lastAcked[b] is the exact data of b's newest acknowledged
			// write; nil marks a block undefined after a failed write
			// (it may or may not have partially applied).
			lastAcked := make(map[int64][]byte)
			defer func() { mirrors <- lastAcked }()
			data := make([]byte, DataBytes)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(rng.Intn(blockSpan/workers)*workers + w)
				if rng.Intn(10) < 6 { // write
					for i := range data {
						data[i] = byte(w*31 + iter*7 + i)
					}
					if err := c.WriteBlock(ctx, b, data); err != nil {
						if !errors.Is(err, ErrWriteQuorum) {
							failures <- fmt.Errorf("worker %d: write block %d: untyped error %w", w, b, err)
							return
						}
						lastAcked[b] = nil // undefined until re-acknowledged
						continue
					}
					lastAcked[b] = append([]byte(nil), data...)
					continue
				}
				got, err := c.ReadBlock(ctx, b)
				if err != nil {
					if !errors.Is(err, ErrReadQuorum) {
						failures <- fmt.Errorf("worker %d: read block %d: untyped error %w", w, b, err)
						return
					}
					continue // degraded is allowed; silent bad data is not
				}
				want, wrote := lastAcked[b]
				switch {
				case !wrote:
					if !bytes.Equal(got, make([]byte, DataBytes)) {
						failures <- fmt.Errorf("worker %d: unwritten block %d returned nonzero data", w, b)
						return
					}
				case want == nil:
					// Undefined after an unacknowledged write: content
					// unverifiable, but it still had to decode cleanly.
				default:
					if !bytes.Equal(got, want) {
						failures <- fmt.Errorf("worker %d: block %d diverged from last-acknowledged write", w, b)
						return
					}
				}
			}
		}(w)
	}

	time.Sleep(soak)
	close(stop)
	wg.Wait()
	close(failures)
	close(mirrors)
	for err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Convergence: with all nodes back and the chaos stopped, every
	// block must become readable, and every block with a known
	// last-acknowledged value must read back exactly those bytes
	// (anti-entropy and hint replay clean up remaining divergence).
	want := make(map[int64][]byte)
	for m := range mirrors {
		for b, v := range m {
			want[b] = v // block sets are disjoint; no clobbering
		}
	}
	ctx := context.Background()
	deadline := time.Now().Add(15 * time.Second)
	for b := int64(0); b < blockSpan; b++ {
		for {
			got, err := c.ReadBlock(ctx, b)
			if err == nil {
				if w, ok := want[b]; ok && w != nil && !bytes.Equal(got, w) {
					t.Fatalf("block %d converged to wrong data", b)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("block %d never became readable: %v", b, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	st := c.Stats()
	t.Logf("soak stats: %+v", st)
	if st.NodeDownTransitions == 0 {
		t.Error("breaker never tripped despite a killed node")
	}
	if st.DivergentCorrupt == 0 {
		t.Error("bit flips were never detected as corrupt replicas")
	}
	recoveries := st.ReadRepairs + st.AntiEntropyRepairs + st.HintsReplayed + st.HintsDroppedStale
	if recoveries == 0 {
		t.Error("no recovery work recorded (repairs, hints) despite injected faults")
	}
	if st.QuorumReads == 0 || st.QuorumWrites == 0 {
		t.Error("soak produced no quorum traffic")
	}
}
