package pcmcluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// slotFuzzSeeds returns representative slot images: a canonical written
// slot, the unwritten all-zero slot, and hostile mutants (bit flips in
// data, version, and both CRCs; truncations; a forged version-0
// trailer). The same set seeds the fuzzer and backs the checked-in
// corpus under testdata/fuzz/FuzzDecodeSlot.
func slotFuzzSeeds() [][]byte {
	data := make([]byte, DataBytes)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	canonical := make([]byte, SlotBytes)
	encodeSlot(canonical, data, 42<<8|0xA7)

	flip := func(at int) []byte {
		s := append([]byte(nil), canonical...)
		s[at] ^= 0x40
		return s
	}
	seeds := [][]byte{
		canonical,
		make([]byte, SlotBytes), // unwritten
		flip(0),                 // data corruption
		flip(DataBytes + 3),     // version corruption
		flip(DataBytes + 13),    // data-CRC corruption
		flip(DataBytes + 14),    // meta-CRC self-check corruption
		canonical[:DataBytes],   // trailer torn off entirely
		canonical[:SlotBytes-1], // short by one byte
	}
	// Nonzero data with an all-zero trailer: looks like a torn write.
	torn := make([]byte, SlotBytes)
	copy(torn, data)
	seeds = append(seeds, torn)
	return seeds
}

// FuzzDecodeSlot drives arbitrary bytes through the replica slot codec,
// asserting it never panics, that accepted slots re-encode canonically,
// and that the bare-trailer decoder agrees with the full one.
func FuzzDecodeSlot(f *testing.F) {
	for _, s := range slotFuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, slot []byte) {
		data, meta, status := decodeSlot(slot)
		switch status {
		case slotOK:
			if meta.Version == 0 {
				t.Fatal("decodeSlot accepted a version-0 slot as written")
			}
			// A slot that decodes must re-encode to the exact bytes: the
			// codec is canonical, so repairs forward verbatim replicas.
			re := make([]byte, SlotBytes)
			encodeSlot(re, data, meta.Version)
			if !bytes.Equal(re, slot) {
				t.Fatalf("slot did not re-encode canonically:\n got %x\nwant %x", re, slot)
			}
			m, ok := decodeMeta(slot[DataBytes:])
			if !ok || m != meta {
				t.Fatalf("decodeMeta = %+v ok=%v disagrees with decodeSlot %+v", m, ok, meta)
			}
		case slotUnwritten:
			for _, b := range slot {
				if b != 0 {
					t.Fatal("nonzero slot classified unwritten")
				}
			}
		case slotCorrupt:
			// Fine: rejected input never contributes to a read quorum.
		default:
			t.Fatalf("decodeSlot returned unknown status %v", status)
		}
		if len(slot) >= SlotBytes {
			// decodeMeta must never panic on an arbitrary trailer.
			_, _ = decodeMeta(slot[DataBytes:])
		}
	})
}

// TestRegenerateSlotFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzDecodeSlot from slotFuzzSeeds(). Run it after a slot
// layout change:
//
//	PCMCLUSTER_WRITE_FUZZ_CORPUS=1 go test -run TestRegenerateSlotFuzzCorpus ./internal/pcmcluster
func TestRegenerateSlotFuzzCorpus(t *testing.T) {
	if os.Getenv("PCMCLUSTER_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set PCMCLUSTER_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSlot")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range slotFuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSlotFuzzSeedsStillParse pins the seed corpus to the current slot
// layout: the canonical seed decodes, the zero slot is unwritten, every
// mutant is corrupt. If the layout changes, regenerate testdata/fuzz.
func TestSlotFuzzSeedsStillParse(t *testing.T) {
	seeds := slotFuzzSeeds()
	if _, meta, status := decodeSlot(seeds[0]); status != slotOK || meta.Version != 42<<8|0xA7 {
		t.Errorf("canonical seed: status=%v version=%#x, want ok/42<<8|0xA7", status, meta.Version)
	}
	if _, _, status := decodeSlot(seeds[1]); status != slotUnwritten {
		t.Errorf("zero seed: status=%v, want unwritten", status)
	}
	for i := 2; i < len(seeds); i++ {
		if _, _, status := decodeSlot(seeds[i]); status != slotCorrupt {
			t.Errorf("mutant seed %d: status=%v, want corrupt", i, status)
		}
	}
}
