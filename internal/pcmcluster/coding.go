package pcmcluster

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ecstripe"
)

// Coded placement design.
//
// Config.Coding "rs:K+M" switches the cluster from full mirroring to
// Reed-Solomon striping: each 64-byte block splits into K data
// fragments extended by M parity fragments (internal/ecstripe), and
// the stripe group rendezvous-hashes onto K+M distinct nodes — the
// same placement machinery as mirroring with rf = K+M, each node
// holding one fragment slot per block instead of a full replica slot.
// Storage per data byte drops from RF× to (K+M)/K× while any M node
// losses stay survivable.
//
// The quorum math reuses the mirrored machinery unchanged by mapping
//
//	rf = K+M,   W = K+⌈M/2⌉ fragment acks,   R = K valid fragments,
//
// which satisfies the existing W+R > RF intersection check exactly
// when K > ⌊M/2⌋ (enforced at construction). A read that gathers K
// distinct-index fragments of one write reconstructs the block; the
// stripe CRC stamped into every fragment trailer doubles as the
// last-writer-wins tiebreak (blockMeta.DataCRC) and as the end-to-end
// check on the reconstructed bytes.
//
// Reads are version-safe without reading all K+M fragments thanks to
// the possible-acks rule: a version v seen on some fragments may only
// be skipped in favor of an older one when count(v) + unknown +
// shadow < W — unknown counts replicas that returned nothing usable
// (dead, corrupt, still in flight) and shadow counts replicas holding
// already-skipped newer versions, since either kind may have acked v
// before losing or overwriting it. Below that bound the write could
// not have collected W acks. Otherwise the read waits for more
// fragments or fails with the typed ErrReadQuorum.
// Exact-data-or-typed-error is preserved: a coded read never silently
// serves a stale or zero block past a possibly-acknowledged write.
//
// Fragment indices are assigned by placement position (node i of the
// stripe group stores fragment i) but each fragment also carries its
// index in its trailer, so reads stay correct across membership
// reshuffles that change a node's position; anti-entropy realigns
// stray indices back to the canonical position over time.

// parseCoding parses a Config.Coding spec. "" and "rf" select
// mirroring; "rs:K+M" selects K data + M parity striping.
func parseCoding(s string) (k, m int, coded bool, err error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "rf" {
		return 0, 0, false, nil
	}
	spec, ok := strings.CutPrefix(s, "rs:")
	if !ok {
		return 0, 0, false, fmt.Errorf("pcmcluster: unknown coding %q (want \"rf\" or \"rs:K+M\")", s)
	}
	ks, ms, ok := strings.Cut(spec, "+")
	if !ok {
		return 0, 0, false, fmt.Errorf("pcmcluster: coding %q: want \"rs:K+M\", e.g. \"rs:4+2\"", s)
	}
	k, kerr := strconv.Atoi(ks)
	m, merr := strconv.Atoi(ms)
	if kerr != nil || merr != nil || k < 1 || m < 1 {
		return 0, 0, false, fmt.Errorf("pcmcluster: coding %q: K and M must be positive integers", s)
	}
	if DataBytes%k != 0 {
		return 0, 0, false, fmt.Errorf("pcmcluster: coding %q: K must divide the %d-byte block (2, 4, 8, ...)", s, DataBytes)
	}
	if k+m > ecstripe.MaxFragments {
		return 0, 0, false, fmt.Errorf("pcmcluster: coding %q: K+M exceeds %d fragments", s, ecstripe.MaxFragments)
	}
	if k <= m/2 {
		return 0, 0, false, fmt.Errorf("pcmcluster: coding %q: need K > M/2 so the fragment write quorum K+⌈M/2⌉ and read quorum K always intersect", s)
	}
	return k, m, true, nil
}

// Coding returns the cluster's redundancy scheme label: "rf" or
// "rs:K+M".
func (c *Cluster) Coding() string {
	if !c.coded {
		return "rf"
	}
	return fmt.Sprintf("rs:%d+%d", c.codec.K, c.codec.M)
}

// StorageOverhead returns stored copies per data byte: RF under
// mirroring, (K+M)/K under striping.
func (c *Cluster) StorageOverhead() float64 {
	if !c.coded {
		return float64(c.rf)
	}
	return float64(c.codec.K+c.codec.M) / float64(c.codec.K)
}

// storedSlot is one node's decoded stored slot in either mode: a full
// replica slot (mirrored) or a fragment slot (coded). meta.DataCRC
// carries the stripe CRC in coded mode, so blockMeta.newer orders
// stripe fragments exactly like replica slots.
type storedSlot struct {
	data    []byte
	meta    blockMeta
	fragIdx uint8
	status  slotStatus
}

// decodeStoredSlot decodes one stored slot under the cluster's coding
// mode. This is the single seam the repair paths (read-repair, hint
// replay, anti-entropy, transfer) decode through, so they work on
// fragments and full replicas alike.
func (c *Cluster) decodeStoredSlot(slot []byte) storedSlot {
	if !c.coded {
		data, meta, status := decodeSlot(slot)
		return storedSlot{data: data, meta: meta, status: status}
	}
	frag, fm, fs := ecstripe.DecodeFragSlot(slot, c.fragBytes)
	var status slotStatus
	switch fs {
	case ecstripe.FragOK:
		status = slotOK
	case ecstripe.FragUnwritten:
		status = slotUnwritten
	default:
		status = slotCorrupt
	}
	return storedSlot{
		data:    frag,
		meta:    blockMeta{Version: fm.Version, DataCRC: fm.StripeCRC},
		fragIdx: fm.Index,
		status:  status,
	}
}

// encodeFragmentSlot builds the stored fragment slot for fragment idx
// of a block at the given version.
func (c *Cluster) encodeFragmentSlot(dataFrags [][]byte, idx int, version uint64, stripeCRC uint32) ([]byte, error) {
	frag := make([]byte, c.fragBytes)
	if err := c.codec.EncodeFragment(frag, dataFrags, idx); err != nil {
		return nil, err
	}
	slot := make([]byte, c.slotBytes)
	ecstripe.EncodeFragSlot(slot, frag, ecstripe.FragMeta{
		Version:   version,
		StripeCRC: stripeCRC,
		Index:     uint8(idx),
	})
	return slot, nil
}

// nodePosition returns n's index within a replica set, -1 when absent.
func nodePosition(reps []*node, n *node) int {
	for i, m := range reps {
		if m == n {
			return i
		}
	}
	return -1
}

// writePayloads builds the per-node slot images for one write.
// Mirrored mode sends every target the same replica slot; coded mode
// sends each target the fragment slot for its placement position —
// its position under the authoritative placement, or, for a node only
// in the next placement, its position there (extended generator rows
// make any index < 256 decodable, so transitional positions need no
// special casing).
func (c *Cluster) writePayloads(curReps, nextReps, targets []*node, data []byte, version uint64) ([][]byte, error) {
	out := make([][]byte, len(targets))
	if !c.coded {
		slot := make([]byte, SlotBytes)
		encodeSlot(slot, data, version)
		for i := range out {
			out[i] = slot
		}
		return out, nil
	}
	dataFrags, err := c.codec.Split(data)
	if err != nil {
		return nil, err
	}
	crc := ecstripe.StripeCRC(data)
	for i, n := range targets {
		idx := nodePosition(curReps, n)
		if idx < 0 {
			idx = nodePosition(nextReps, n)
		}
		if idx < 0 {
			return nil, fmt.Errorf("pcmcluster: write target %s not in either placement", n.addr)
		}
		slot, err := c.encodeFragmentSlot(dataFrags, idx, version, crc)
		if err != nil {
			return nil, err
		}
		out[i] = slot
	}
	return out, nil
}
