package pcmcluster

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/core"
)

const (
	// DataBytes is the replicated payload: one device block.
	DataBytes = core.BlockBytes
	// metaBytes is the sideband trailer: version (8), CRC32-C over the
	// data (4), CRC32-C self-check over the previous 12 bytes (4).
	metaBytes = 16
	// SlotBytes is one block's on-node footprint; block b occupies the
	// byte range [b·SlotBytes, (b+1)·SlotBytes) on each of its replicas.
	SlotBytes = DataBytes + metaBytes
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// blockMeta is the decoded sideband trailer of one slot.
type blockMeta struct {
	// Version orders writes cluster-wide (last-writer-wins). Writers
	// always stamp a version ≥ 1; 0 means the slot was never written.
	Version uint64
	// DataCRC is the CRC32-C of the 64 data bytes.
	DataCRC uint32
}

// newer reports whether m orders strictly after other under the
// cluster's last-writer-wins order: by version, with exact version
// ties (distinct clients that happen to share a tag byte) broken
// deterministically by the data CRC. Without the tiebreak, replicas
// holding different data at equal versions would never converge: every
// repair would see the other copy as "at or past the winner" and skip.
func (m blockMeta) newer(other blockMeta) bool {
	if m.Version != other.Version {
		return m.Version > other.Version
	}
	return m.DataCRC > other.DataCRC
}

// slotStatus classifies one replica's stored slot.
type slotStatus int

const (
	// slotOK: trailer self-check and data CRC both hold.
	slotOK slotStatus = iota
	// slotUnwritten: the slot is all zeros — fresh PCM reads back
	// zeros, so an untouched block is structurally valid with version 0.
	slotUnwritten
	// slotCorrupt: a CRC fails — a torn write (the 80-byte slot is not
	// atomic on the node) or stored-bit corruption. The replica is
	// divergent and must be repaired from a valid peer.
	slotCorrupt
)

func (s slotStatus) String() string {
	switch s {
	case slotOK:
		return "ok"
	case slotUnwritten:
		return "unwritten"
	case slotCorrupt:
		return "corrupt"
	}
	return "invalid"
}

// encodeSlot fills dst (SlotBytes) with data (DataBytes) and a trailer
// stamped with version.
func encodeSlot(dst, data []byte, version uint64) {
	_ = dst[SlotBytes-1]
	copy(dst, data[:DataBytes])
	binary.BigEndian.PutUint64(dst[DataBytes:], version)
	binary.BigEndian.PutUint32(dst[DataBytes+8:], crc32.Checksum(data[:DataBytes], castagnoli))
	binary.BigEndian.PutUint32(dst[DataBytes+12:], crc32.Checksum(dst[DataBytes:DataBytes+12], castagnoli))
}

// decodeSlot validates one stored slot. On slotOK the returned data
// aliases slot and meta carries the trailer; on slotUnwritten the data
// is the (all-zero) payload with Version 0; on slotCorrupt both are
// zero values.
func decodeSlot(slot []byte) ([]byte, blockMeta, slotStatus) {
	if len(slot) != SlotBytes {
		return nil, blockMeta{}, slotCorrupt
	}
	data := slot[:DataBytes]
	metaCRC := binary.BigEndian.Uint32(slot[DataBytes+12:])
	if crc32.Checksum(slot[DataBytes:DataBytes+12], castagnoli) == metaCRC {
		m := blockMeta{
			Version: binary.BigEndian.Uint64(slot[DataBytes:]),
			DataCRC: binary.BigEndian.Uint32(slot[DataBytes+8:]),
		}
		if m.Version == 0 {
			// Writers stamp versions ≥ 1; a self-consistent trailer
			// claiming version 0 is not something encodeSlot produces.
			return nil, blockMeta{}, slotCorrupt
		}
		if crc32.Checksum(data, castagnoli) != m.DataCRC {
			return nil, blockMeta{}, slotCorrupt
		}
		return data, m, slotOK
	}
	for _, b := range slot {
		if b != 0 {
			return nil, blockMeta{}, slotCorrupt
		}
	}
	return data, blockMeta{}, slotUnwritten
}

// decodeMeta validates a bare 16-byte trailer (read without its data,
// e.g. the stale-check before replaying a hint). ok is false when the
// self-check fails and the trailer is not all zeros.
func decodeMeta(trailer []byte) (blockMeta, bool) {
	if len(trailer) != metaBytes {
		return blockMeta{}, false
	}
	if crc32.Checksum(trailer[:12], castagnoli) == binary.BigEndian.Uint32(trailer[12:]) {
		m := blockMeta{
			Version: binary.BigEndian.Uint64(trailer),
			DataCRC: binary.BigEndian.Uint32(trailer[8:]),
		}
		if m.Version != 0 {
			return m, true
		}
		return blockMeta{}, false
	}
	for _, b := range trailer {
		if b != 0 {
			return blockMeta{}, false
		}
	}
	return blockMeta{}, true // unwritten: Version 0
}
