package pcmcluster

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// benchmarkQuorum measures the quorum hot path (one write + one read
// per iteration) against a 3-node loopback cluster. The traced and
// untraced variants differ only in Config.DisableTracing, so benchdiff
// -compare gates the instrumentation overhead on the pair.
func benchmarkQuorum(b *testing.B, disableTracing bool) {
	c, _ := testCluster(b, 3, func(cfg *Config) {
		cfg.DisableTracing = disableTracing
		cfg.AntiEntropyInterval = -1 // steady-state foreground traffic only
		cfg.SlowQuorumThreshold = 50 * time.Millisecond
	})
	ctx := context.Background()
	data := bytes.Repeat([]byte{0xB5}, DataBytes)
	blocks := c.Blocks()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := int64(i) % blocks
		if err := c.WriteBlock(ctx, blk, data); err != nil {
			b.Fatalf("write: %v", err)
		}
		if _, err := c.ReadBlock(ctx, blk); err != nil {
			b.Fatalf("read: %v", err)
		}
	}
}

func BenchmarkClusterQuorum(b *testing.B) {
	b.Run("traced", func(b *testing.B) { benchmarkQuorum(b, false) })
	b.Run("untraced", func(b *testing.B) { benchmarkQuorum(b, true) })
}
