package pcmcluster

import (
	"sync"
	"time"
)

// Cluster-side overload response.
//
// Typed shed verdicts from nodes (pcmserve.ErrOverloaded /
// ErrDeadlineExceeded) never feed the breaker — a node that sheds is
// alive and protecting itself. Instead each verdict opens a short
// per-node backoff window that only background traffic honours, and
// feeds the cluster-wide brownout meter below. The meter drives a
// two-step degradation ladder:
//
//	level 1 — pause anti-entropy sweeps (the heaviest background load)
//	level 2 — additionally defer read-repair writes to the hint buffer
//
// Foreground quorum traffic is never throttled by the ladder; the
// point is to hand every spare cycle to it while the storm lasts.

// Brownout levels.
const (
	brownoutNone         = 0
	brownoutPauseAE      = 1
	brownoutDeferRepairs = 2
)

const (
	// brownoutBucket × brownoutBuckets is the sliding window the meter
	// counts overload events over (2 s).
	brownoutBucket  = 250 * time.Millisecond
	brownoutBuckets = 8
	// Events per window that engage each ladder step.
	brownoutL1Events = 8
	brownoutL2Events = 32
)

// brownoutMeter is a sliding-window counter of typed overload events.
type brownoutMeter struct {
	mu       sync.Mutex
	buckets  [brownoutBuckets]uint32
	cur      int
	curStart time.Time
}

// rotate retires buckets that have aged out of the window. Callers
// hold m.mu.
func (m *brownoutMeter) rotate(now time.Time) {
	if m.curStart.IsZero() {
		m.curStart = now
		return
	}
	steps := int(now.Sub(m.curStart) / brownoutBucket)
	if steps <= 0 {
		return
	}
	if steps >= brownoutBuckets {
		m.buckets = [brownoutBuckets]uint32{}
		m.cur = 0
		m.curStart = now
		return
	}
	for i := 0; i < steps; i++ {
		m.cur = (m.cur + 1) % brownoutBuckets
		m.buckets[m.cur] = 0
	}
	m.curStart = m.curStart.Add(time.Duration(steps) * brownoutBucket)
}

// note records one overload event at now.
func (m *brownoutMeter) note(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rotate(now)
	m.buckets[m.cur]++
}

// events returns the window's event count.
func (m *brownoutMeter) events(now time.Time) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rotate(now)
	var total uint64
	for _, b := range m.buckets {
		total += uint64(b)
	}
	return total
}

// level maps the window count onto the degradation ladder.
func (m *brownoutMeter) level(now time.Time) int {
	switch n := m.events(now); {
	case n >= brownoutL2Events:
		return brownoutDeferRepairs
	case n >= brownoutL1Events:
		return brownoutPauseAE
	default:
		return brownoutNone
	}
}

// brownoutLevel is the cluster's current ladder step.
func (c *Cluster) brownoutLevel() int { return c.brownout.level(time.Now()) }

// overloadEvent records one typed shed verdict from node n: the node's
// backoff window opens (sized by the server's retry-after hint) and
// the brownout meter ticks.
func (c *Cluster) overloadEvent(n *node, retryAfter time.Duration) {
	n.noteOverload(retryAfter)
	c.met.overloadEvents.Inc()
	c.brownout.note(time.Now())
}

// brownoutName names a ladder step for health reporting.
func brownoutName(level int) string {
	switch level {
	case brownoutPauseAE:
		return "brownout:antientropy-paused"
	case brownoutDeferRepairs:
		return "brownout:repairs-deferred"
	default:
		return "normal"
	}
}
