package pcmcluster

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/pcmserve"
)

// TestMerkleSweepReadsOnlyDivergence is the O(divergence) acceptance
// test: with one stale slot forged on one replica, a full anti-entropy
// pass over every partition must fetch far fewer full slots than the
// keyspace holds — the Merkle exchange localizes the divergence by
// digest comparison instead of reading everything.
func TestMerkleSweepReadsOnlyDivergence(t *testing.T) {
	c, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.PartitionSlots = 34 // 102 blocks -> exactly 3 partitions
	})
	mirror := fillCluster(t, c)

	// Forge a stale copy of block 10 on one replica: older version,
	// different bytes, structurally valid trailer.
	const b = int64(10)
	_, meta, status := readNodeSlot(t, nodes[0].addr, b)
	if status != slotOK {
		t.Fatalf("block %d on %s: status %v, want slotOK", b, nodes[0].addr, status)
	}
	stale := make([]byte, SlotBytes)
	encodeSlot(stale, bytes.Repeat([]byte{0xEE}, DataBytes), meta.Version-1)
	writeNodeSlot(t, nodes[0].addr, b, stale)

	before := c.Stats()
	for p := int64(0); p < c.numParts(); p++ {
		c.sweepPartition(p)
	}
	after := c.Stats()

	if got := after.MerklePartsClean - before.MerklePartsClean; got != 2 {
		t.Errorf("clean partitions: got %d, want 2", got)
	}
	if got := after.MerklePartsDivergent - before.MerklePartsDivergent; got != 1 {
		t.Errorf("divergent partitions: got %d, want 1", got)
	}
	if got := after.MerkleFallbackSweeps - before.MerkleFallbackSweeps; got != 0 {
		t.Errorf("legacy fallback sweeps: got %d, want 0", got)
	}
	if got := after.AntiEntropyRepairs - before.AntiEntropyRepairs; got < 1 {
		t.Errorf("anti-entropy repairs: got %d, want >= 1", got)
	}
	// The o(total blocks) bound: full-slot fetches are confined to the
	// one divergent leaf (x RF replicas), nowhere near the 102-block
	// keyspace a legacy pass would read.
	fetched := after.MerkleSlotsFetched - before.MerkleSlotsFetched
	if fetched == 0 || fetched > 3*merkleLeafSlots {
		t.Errorf("slots fetched: got %d, want in [1, %d]", fetched, 3*merkleLeafSlots)
	}
	if fetched >= uint64(c.Blocks()) {
		t.Errorf("slots fetched %d not o(total blocks %d)", fetched, c.Blocks())
	}

	data, repairedMeta, st := readNodeSlot(t, nodes[0].addr, b)
	if st != slotOK || !bytes.Equal(data, mirror[b]) {
		t.Fatalf("forged replica not repaired: status %v", st)
	}
	if !(repairedMeta.Version > meta.Version-1) {
		t.Fatalf("repaired version %d not newer than forged %d", repairedMeta.Version, meta.Version-1)
	}
}

// TestMerkleDetectsDataRotUnderIntactTrailer forges the nastier
// divergence: data bytes flipped while the trailer (version + CRC
// field) stays byte-identical across replicas. Trailer comparison
// alone cannot see it; the full-slot digests must.
func TestMerkleDetectsDataRotUnderIntactTrailer(t *testing.T) {
	c, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.PartitionSlots = 34
	})
	mirror := fillCluster(t, c)

	// Read the good slot raw off one node and corrupt only data bytes.
	const b = int64(20)
	cl, err := pcmserve.Dial(nodes[0].addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	slot := make([]byte, SlotBytes)
	if _, err := cl.ReadAt(slot, b*SlotBytes); err != nil {
		cl.Close()
		t.Fatalf("raw read: %v", err)
	}
	cl.Close()
	slot[0] ^= 0xFF // data rot; trailer untouched
	writeNodeSlot(t, nodes[0].addr, b, slot)

	before := c.Stats()
	for p := int64(0); p < c.numParts(); p++ {
		c.sweepPartition(p)
	}
	after := c.Stats()

	if got := after.MerklePartsDivergent - before.MerklePartsDivergent; got != 1 {
		t.Errorf("divergent partitions: got %d, want 1", got)
	}
	data, _, st := readNodeSlot(t, nodes[0].addr, b)
	if st != slotOK || !bytes.Equal(data, mirror[b]) {
		t.Fatalf("rotted replica not repaired: status %v", st)
	}
}

// TestLegacySweepFallbackThrottled covers the compatibility + metering
// satellite: one node emulates an old build (range ops disabled), so
// anti-entropy must latch ErrUnsupported, drop to the legacy per-slot
// sweep, meter it with the token-bucket budget (throttle counter
// moves), and still converge a forged stale replica.
func TestLegacySweepFallbackThrottled(t *testing.T) {
	old := startTestNodeCfg(t, 64, 9001, pcmserve.ServerConfig{DisableRangeOps: true})
	n1 := startTestNode(t, 64, 9002)
	n2 := startTestNode(t, 64, 9003)
	cfg := Config{
		Nodes:              []string{old.addr, n1.addr, n2.addr},
		OpTimeout:          2 * time.Second,
		FailThreshold:      1,
		ProbeInterval:      20 * time.Millisecond,
		HintReplayInterval: 10 * time.Millisecond,
		Seed:               99,
		// Sweep demand (3 replicas x 80 B per block at a 1 ms cadence)
		// far exceeds this rate, so the bucket must throttle.
		AntiEntropyInterval:         time.Millisecond,
		AntiEntropySweepBytesPerSec: 16 << 10,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	mirror := fillCluster(t, c)

	// Forge a stale replica on a range-capable node; only the legacy
	// sweep can find it once the old peer poisons the Merkle path.
	const b = int64(5)
	_, meta, status := readNodeSlot(t, n1.addr, b)
	if status != slotOK {
		t.Fatalf("block %d: status %v, want slotOK", b, status)
	}
	stale := make([]byte, SlotBytes)
	encodeSlot(stale, bytes.Repeat([]byte{0xAA}, DataBytes), meta.Version-1)
	writeNodeSlot(t, n1.addr, b, stale)

	waitFor(t, 30*time.Second, "legacy sweep to throttle and repair", func() bool {
		st := c.Stats()
		if st.MerkleFallbackSweeps == 0 || st.AntiEntropyThrottled == 0 {
			return false
		}
		data, _, sl := readNodeSlot(t, n1.addr, b)
		return sl == slotOK && bytes.Equal(data, mirror[b])
	})

	st := c.Stats()
	if st.MerkleFallbackSweeps == 0 || st.AntiEntropyThrottled == 0 {
		t.Fatalf("fallback=%d throttled=%d, want both > 0",
			st.MerkleFallbackSweeps, st.AntiEntropyThrottled)
	}
	// The old peer's incapability must be latched, not retried forever.
	found := false
	for _, n := range c.epoch.Load().nodes {
		if n.addr == old.addr {
			found = n.noMerkle.Load()
		}
	}
	if !found {
		t.Errorf("old peer %s did not latch noMerkle", old.addr)
	}
}
