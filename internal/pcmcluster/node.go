package pcmcluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pcmserve"
)

// NodeClient is what the cluster needs from one node's connection.
// *pcmserve.RetryClient satisfies it; tests substitute in-process
// fakes via Config.DialNode.
type NodeClient interface {
	ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error)
	WriteAtCtx(ctx context.Context, p []byte, off int64) (int, error)
	// HashRangeCtx and ReadStrideCtx are the vectored anti-entropy ops.
	// Peers without them return errors satisfying
	// errors.Is(err, pcmserve.ErrUnsupported); the cluster then falls
	// back to the per-slot sweep for ranges owned by that node.
	HashRangeCtx(ctx context.Context, off int64, recordBytes, count, fanout int) ([]pcmserve.RangeDigest, error)
	ReadStrideCtx(ctx context.Context, off int64, stride, recordBytes, count int) ([][]byte, error)
	Stats() (pcmserve.Stats, error)
	Close() error
}

// NodeState is a node's breaker verdict.
type NodeState int32

const (
	// NodeUp: ops are admitted normally.
	NodeUp NodeState = iota
	// NodeDown: consecutive transient failures reached the threshold;
	// ops fast-fail (writes buffer as hints) until a probe succeeds.
	NodeDown
)

func (s NodeState) String() string {
	if s == NodeDown {
		return "down"
	}
	return "up"
}

// NodeRole is a node's position in the membership lifecycle.
type NodeRole int32

const (
	// RoleActive: a full member; serves reads and takes writes.
	RoleActive NodeRole = iota
	// RoleJoining: receiving its bulk join stream; takes dual-quorum
	// writes but is not yet in the read set.
	RoleJoining
	// RoleDraining: being drained; still serves reads and takes writes
	// until the fence flips the epoch past it.
	RoleDraining
	// RoleRemoved: drained out (or an aborted joiner). No longer in any
	// placement; hints offered to it are obsolete by construction —
	// every acknowledged write holds a quorum among the live owners.
	RoleRemoved
)

func (r NodeRole) String() string {
	switch r {
	case RoleJoining:
		return "joining"
	case RoleDraining:
		return "draining"
	case RoleRemoved:
		return "removed"
	}
	return "active"
}

// hint is one buffered write awaiting a down node's return. Only the
// newest version per block is kept.
type hint struct {
	slot    []byte
	version uint64
}

// node pairs one pcmserve connection with breaker state and a hinted
// handoff buffer. The breaker is deliberately one-sided: only
// transient failures (connection loss, timeouts — pcmserve.Classify
// ClassTransient) count against the node, because a typed in-band
// RemoteError is proof the node is alive and serving.
type node struct {
	addr   string
	seed   uint64
	client NodeClient

	failThreshold int
	probeInterval time.Duration
	hintCap       int

	// role tracks the membership lifecycle; noMerkle latches when the
	// node answers a range op with ErrUnsupported, steering anti-entropy
	// to the legacy per-slot sweep for its ranges.
	role     atomic.Int32
	noMerkle atomic.Bool

	// Per-node instruments, registered by metrics.registerNode when the
	// node enters the membership (construction or Join). The reply
	// histograms split replica round-trips by quorum position — replies
	// that counted toward their op's quorum vs. the straggler tail —
	// and carry trace-ID exemplars; they stay nil when tracing is off.
	mReads, mWrites, mErrs      *obs.Counter
	latReply, latReplyStraggler *obs.Histogram

	mu        sync.Mutex
	state     NodeState
	fails     int // consecutive transient failures while up
	downSince time.Time
	probing   bool
	hints     map[int64]hint
	// overloadedUntil is the end of the node's typed-overload backoff
	// window (opened by noteOverload). Background traffic — hint
	// replay, anti-entropy, repairs — skips the node inside the window;
	// foreground quorum ops still try, because a shed reply is cheap
	// and the server's admission is the real arbiter.
	overloadedUntil time.Time
}

func newNode(addr string, client NodeClient, failThreshold int, probeInterval time.Duration, hintCap int) *node {
	return &node{
		addr:          addr,
		seed:          nodeSeed(addr),
		client:        client,
		failThreshold: failThreshold,
		probeInterval: probeInterval,
		hintCap:       hintCap,
		hints:         make(map[int64]hint),
	}
}

func (n *node) currentRole() NodeRole { return NodeRole(n.role.Load()) }
func (n *node) setRole(role NodeRole) { n.role.Store(int32(role)) }

// admit reports whether an op may be sent: always while up, and once
// per probe interval while down (the half-open probe whose outcome
// decides revival).
func (n *node) admit() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == NodeUp {
		return true
	}
	if !n.probing && time.Since(n.downSince) >= n.probeInterval {
		n.probing = true
		return true
	}
	return false
}

// onSuccess records a live response (including typed in-band errors)
// and revives a down node.
func (n *node) onSuccess() {
	n.mu.Lock()
	n.fails = 0
	n.probing = false
	n.state = NodeUp
	n.mu.Unlock()
}

// onFailure records a transient failure; it returns true when this
// failure transitioned the node to down. A failed probe re-arms the
// probe window without re-counting a transition.
func (n *node) onFailure() (wentDown bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == NodeDown {
		n.probing = false
		n.downSince = time.Now()
		return false
	}
	n.fails++
	if n.fails >= n.failThreshold {
		n.state = NodeDown
		n.downSince = time.Now()
		n.probing = false
		return true
	}
	return false
}

func (n *node) currentState() NodeState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// noteOverload opens (or extends) the node's overload backoff window
// after a typed shed verdict. A shed reply is proof of life, so the
// breaker resets exactly as onSuccess — marking an overloaded node
// down would convert brownout into blackout.
func (n *node) noteOverload(retryAfter time.Duration) {
	if retryAfter <= 0 {
		retryAfter = 50 * time.Millisecond
	}
	until := time.Now().Add(retryAfter)
	n.mu.Lock()
	if until.After(n.overloadedUntil) {
		n.overloadedUntil = until
	}
	n.fails = 0
	n.probing = false
	n.state = NodeUp
	n.mu.Unlock()
}

// isOverloaded reports whether the node is inside its overload backoff
// window.
func (n *node) isOverloaded() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return time.Now().Before(n.overloadedUntil)
}

// hintAddResult says what addHint did with a hint, so callers can
// count stores, supersessions, and overflow drops distinctly.
type hintAddResult int

const (
	// hintStored: the hint was buffered (possibly replacing an older one).
	hintStored hintAddResult = iota
	// hintSuperseded: an equal-or-newer hint for the block is already
	// queued; the offered write is obsolete, not lost.
	hintSuperseded
	// hintOverflow: the buffer is at capacity; the write is dropped and
	// only anti-entropy can recover the replica.
	hintOverflow
	// hintObsolete: the node has been drained out of the membership. The
	// write is not lost — a drain fences before removal, so any write
	// still in flight toward the old epoch already holds a full quorum
	// among the new owners (dual-quorum transition writes).
	hintObsolete
)

// addHint buffers a write for replay, keeping only the newest version
// per block.
func (n *node) addHint(b int64, slot []byte, version uint64) hintAddResult {
	if n.currentRole() == RoleRemoved {
		return hintObsolete
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.hints[b]; ok {
		if old.version >= version {
			return hintSuperseded
		}
	} else if len(n.hints) >= n.hintCap {
		return hintOverflow
	}
	cp := make([]byte, len(slot))
	copy(cp, slot)
	n.hints[b] = hint{slot: cp, version: version}
	return hintStored
}

// takeHints removes and returns up to max buffered hints. Failed
// replays re-queue via addHint, which keeps whichever version is newer.
func (n *node) takeHints(max int) map[int64]hint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.hints) == 0 {
		return nil
	}
	out := make(map[int64]hint, min(max, len(n.hints)))
	for b, h := range n.hints {
		out[b] = h
		delete(n.hints, b)
		if len(out) >= max {
			break
		}
	}
	return out
}

func (n *node) hintCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.hints)
}
