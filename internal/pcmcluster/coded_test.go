package pcmcluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ecstripe"
	"repro/internal/faultinject"
	"repro/internal/pcmserve"
)

func TestParseCoding(t *testing.T) {
	cases := []struct {
		spec    string
		k, m    int
		coded   bool
		wantErr string
	}{
		{spec: ""},
		{spec: "rf"},
		{spec: "  rf  "},
		{spec: "rs:4+2", k: 4, m: 2, coded: true},
		{spec: "rs:2+1", k: 2, m: 1, coded: true},
		{spec: "rs:8+4", k: 8, m: 4, coded: true},
		{spec: "xor:2+1", wantErr: "unknown coding"},
		{spec: "rs:4-2", wantErr: `want "rs:K+M"`},
		{spec: "rs:4+", wantErr: "positive integers"},
		{spec: "rs:0+2", wantErr: "positive integers"},
		{spec: "rs:4+0", wantErr: "positive integers"},
		{spec: "rs:3+2", wantErr: "must divide"},
		{spec: "rs:64+200", wantErr: "exceeds"},
		{spec: "rs:1+3", wantErr: "need K > M/2"},
		{spec: "rs:2+4", wantErr: "need K > M/2"},
	}
	for _, tc := range cases {
		k, m, coded, err := parseCoding(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseCoding(%q) err = %v, want containing %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCoding(%q): unexpected error %v", tc.spec, err)
			continue
		}
		if k != tc.k || m != tc.m || coded != tc.coded {
			t.Errorf("parseCoding(%q) = (%d,%d,%v), want (%d,%d,%v)", tc.spec, k, m, coded, tc.k, tc.m, tc.coded)
		}
	}
}

// TestCodedConfigConflicts: an explicit quorum knob that contradicts
// the coding-implied value is a configuration error, not a silent
// override. These all fail before any node is dialed, so placeholder
// addresses suffice.
func TestCodedConfigConflicts(t *testing.T) {
	addrs := []string{"n0:1", "n1:1", "n2:1", "n3:1", "n4:1", "n5:1"}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"bad spec", Config{Nodes: addrs, Coding: "rs:5+1"}, "must divide"},
		{"rf conflict", Config{Nodes: addrs, Coding: "rs:4+2", ReplicationFactor: 3},
			"implies replication factor 6, conflicting with configured 3"},
		{"w conflict", Config{Nodes: addrs, Coding: "rs:4+2", WriteQuorum: 4},
			"implies write quorum 5, conflicting with configured 4"},
		{"r conflict", Config{Nodes: addrs, Coding: "rs:4+2", ReadQuorum: 5},
			"implies read quorum 4, conflicting with configured 5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New err = %v, want containing %q", err, tc.want)
			}
		})
	}
	// Matching explicit values are accepted as far as coding validation
	// goes: the error, if any, must come from a later stage (dialing the
	// placeholder nodes), not from a conflict.
	_, err := New(Config{Nodes: addrs, Coding: "rs:4+2", ReplicationFactor: 6, WriteQuorum: 5, ReadQuorum: 4})
	if err != nil && strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("matching explicit quorums flagged as conflict: %v", err)
	}
}

// codedTestCluster builds a 6-node rs:4+2 cluster on the standard
// 8 KiB test nodes.
func codedTestCluster(t testing.TB, tune func(*Config)) (*Cluster, []*testNode) {
	t.Helper()
	return testCluster(t, 6, func(cfg *Config) {
		cfg.Coding = "rs:4+2"
		if tune != nil {
			tune(cfg)
		}
	})
}

// codedReps returns block b's stripe group in placement order.
func codedReps(c *Cluster, b int64) []*node {
	return c.epoch.Load().cur.replicas(c.partOf(b), c.rf)
}

// readNodeFrag reads block b's raw fragment slot directly off one
// node, outside the cluster, for fragment-level assertions.
func readNodeFrag(t *testing.T, c *Cluster, addr string, b int64) ([]byte, ecstripe.FragMeta, ecstripe.FragStatus) {
	t.Helper()
	cl, err := pcmserve.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer cl.Close()
	slot := make([]byte, c.slotBytes)
	if _, err := cl.ReadAt(slot, b*c.slotBytes); err != nil {
		t.Fatalf("raw read %s block %d: %v", addr, b, err)
	}
	return ecstripe.DecodeFragSlot(slot, c.fragBytes)
}

// writeNodeFrag plants a raw fragment slot image directly on one node,
// outside the cluster — for forging divergent stripe states.
func writeNodeFrag(t *testing.T, c *Cluster, addr string, b int64, slot []byte) {
	t.Helper()
	cl, err := pcmserve.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer cl.Close()
	if _, err := cl.WriteAt(slot, b*c.slotBytes); err != nil {
		t.Fatalf("raw write %s block %d: %v", addr, b, err)
	}
}

// forgeFragSlot encodes a valid fragment slot for the given block
// content at an arbitrary version — the raw material for staleness and
// realignment scenarios.
func forgeFragSlot(t *testing.T, c *Cluster, data []byte, idx int, version uint64) []byte {
	t.Helper()
	dataFrags, err := c.codec.Split(data)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	frag := make([]byte, c.fragBytes)
	if err := c.codec.EncodeFragment(frag, dataFrags, idx); err != nil {
		t.Fatalf("EncodeFragment(%d): %v", idx, err)
	}
	slot := make([]byte, c.slotBytes)
	ecstripe.EncodeFragSlot(slot, frag, ecstripe.FragMeta{
		Version:   version,
		StripeCRC: ecstripe.StripeCRC(data),
		Index:     uint8(idx),
	})
	return slot
}

func TestCodedClusterRoundTrip(t *testing.T) {
	c, _ := codedTestCluster(t, nil)
	ctx := context.Background()

	if got := c.Coding(); got != "rs:4+2" {
		t.Fatalf("Coding() = %q, want rs:4+2", got)
	}
	if got := c.StorageOverhead(); got != 1.5 {
		t.Fatalf("StorageOverhead() = %v, want 1.5", got)
	}
	// 8192 device bytes per node at 16+17-byte fragment slots: the
	// coded geometry stores 248 blocks where mirroring fits 102 — the
	// capacity side of the 1.5× vs 3× overhead trade.
	if got := c.Blocks(); got != 248 {
		t.Fatalf("Blocks() = %d, want 248 (8192/33)", got)
	}

	// Round-trip a handful of blocks.
	want := make(map[int64][]byte)
	for b := int64(0); b < 8; b++ {
		data := bytes.Repeat([]byte{byte(0xC0 + b)}, DataBytes)
		data[0] = byte(b)
		if err := c.WriteBlock(ctx, b, data); err != nil {
			t.Fatalf("write block %d: %v", b, err)
		}
		want[b] = data
	}
	for b, w := range want {
		got, err := c.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("read block %d: %v", b, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("block %d round-trip mismatch", b)
		}
	}

	// An unwritten block reads as zeros.
	got, err := c.ReadBlock(ctx, c.Blocks()-1)
	if err != nil {
		t.Fatalf("read unwritten: %v", err)
	}
	if !bytes.Equal(got, make([]byte, DataBytes)) {
		t.Fatal("unwritten block returned nonzero data")
	}

	// Fragment-level invariants: every stripe-group node holds a valid
	// fragment slot whose index matches its placement position, all at
	// one version and stripe CRC, and data fragments are systematic.
	const b = int64(3)
	dataFrags, err := c.codec.Split(want[b])
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	reps := codedReps(c, b)
	if len(reps) != 6 {
		t.Fatalf("stripe group size %d, want 6", len(reps))
	}
	var v0 uint64
	var crc0 uint32
	for pos, n := range reps {
		frag, fm, status := readNodeFrag(t, c, n.addr, b)
		if status != ecstripe.FragOK {
			t.Fatalf("position %d (%s): fragment status %v", pos, n.addr, status)
		}
		if int(fm.Index) != pos {
			t.Fatalf("position %d holds fragment index %d", pos, fm.Index)
		}
		if pos == 0 {
			v0, crc0 = fm.Version, fm.StripeCRC
		} else if fm.Version != v0 || fm.StripeCRC != crc0 {
			t.Fatalf("position %d stamp (%d,%08x) differs from position 0 (%d,%08x)",
				pos, fm.Version, fm.StripeCRC, v0, crc0)
		}
		if pos < c.codec.K && !bytes.Equal(frag, dataFrags[pos]) {
			t.Fatalf("data fragment %d is not systematic", pos)
		}
	}
	if crc0 != ecstripe.StripeCRC(want[b]) {
		t.Fatalf("stored stripe CRC %08x != CRC of written block", crc0)
	}

	if st := c.Stats(); st.Coding != "rs:4+2" || st.StorageOverhead != 1.5 {
		t.Fatalf("Stats coding/overhead = %q/%v", st.Coding, st.StorageOverhead)
	}
}

// TestCodedDegradedRead: with M=2 of the 6 stripe nodes hard-killed,
// every acknowledged block stays readable through parity
// reconstruction, unwritten blocks still prove themselves zero, and
// writes fail with the typed quorum error (W=5 > 4 live). Restarting
// the nodes restores write availability.
func TestCodedDegradedRead(t *testing.T) {
	c, nodes := codedTestCluster(t, nil)
	ctx := context.Background()

	want := make(map[int64][]byte)
	for b := int64(0); b < 10; b++ {
		data := bytes.Repeat([]byte{byte(0xA0 + b)}, DataBytes)
		if err := c.WriteBlock(ctx, b, data); err != nil {
			t.Fatalf("write block %d: %v", b, err)
		}
		want[b] = data
	}

	// Kill the nodes at positions 0 and 1 of block 0's stripe group, so
	// block 0 is guaranteed to need parity math (two of its systematic
	// fragments are gone).
	reps := codedReps(c, 0)
	byAddr := make(map[string]*testNode)
	for _, n := range nodes {
		byAddr[n.addr] = n
	}
	killed := []*testNode{byAddr[reps[0].addr], byAddr[reps[1].addr]}
	killed[0].kill()
	killed[1].kill()

	for b, w := range want {
		got, err := c.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("degraded read block %d: %v", b, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("degraded read block %d returned wrong data", b)
		}
	}
	got, err := c.ReadBlock(ctx, c.Blocks()-1)
	if err != nil {
		t.Fatalf("degraded read of unwritten block: %v", err)
	}
	if !bytes.Equal(got, make([]byte, DataBytes)) {
		t.Fatal("unwritten block returned nonzero data under failures")
	}

	st := c.Stats()
	if st.ECReconstructions == 0 {
		t.Error("no parity reconstructions despite two dead stripe nodes")
	}
	if st.DegradedReads == 0 {
		t.Error("no degraded reads recorded despite two dead stripe nodes")
	}
	if st.ECReconstructFailures != 0 {
		t.Errorf("%d reconstruction failures", st.ECReconstructFailures)
	}

	// Two dead nodes sit below the fragment write quorum: the write must
	// fail with the typed error, never hang or succeed silently.
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := c.WriteBlock(wctx, 0, want[0]); !errors.Is(err, ErrWriteQuorum) {
		t.Fatalf("write with 2/6 nodes dead: err = %v, want ErrWriteQuorum", err)
	}

	killed[0].restart()
	killed[1].restart()
	waitFor(t, 10*time.Second, "write availability after restarts", func() bool {
		return c.WriteBlock(ctx, 0, want[0]) == nil
	})
	got, err = c.ReadBlock(ctx, 0)
	if err != nil || !bytes.Equal(got, want[0]) {
		t.Fatalf("post-restart read: %v", err)
	}
}

// TestCodedReadRepair: a corrupt fragment is detected during a
// foreground read (stripe served exactly via the other fragments) and
// rewritten in the background, re-encoded from the surviving K.
func TestCodedReadRepair(t *testing.T) {
	c, _ := codedTestCluster(t, nil)
	ctx := context.Background()

	const b = int64(5)
	data := bytes.Repeat([]byte{0x5E}, DataBytes)
	if err := c.WriteBlock(ctx, b, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	reps := codedReps(c, b)
	_, fm, _ := readNodeFrag(t, c, reps[2].addr, b)

	garbage := bytes.Repeat([]byte{0xFF}, int(c.slotBytes))
	writeNodeFrag(t, c, reps[2].addr, b, garbage)

	got, err := c.ReadBlock(ctx, b)
	if err != nil {
		t.Fatalf("read with corrupt fragment: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read with corrupt fragment returned wrong data")
	}

	waitFor(t, 5*time.Second, "fragment read-repair", func() bool {
		frag, rm, status := readNodeFrag(t, c, reps[2].addr, b)
		if status != ecstripe.FragOK || rm.Version != fm.Version || rm.Index != 2 {
			// Not repaired yet; another read gives repair another chance.
			_, _ = c.ReadBlock(ctx, b)
			return false
		}
		dataFrags, _ := c.codec.Split(data)
		return bytes.Equal(frag, dataFrags[2])
	})
	st := c.Stats()
	if st.ECFragmentRepairs == 0 {
		t.Error("fragment repair not counted")
	}
	if st.ReadRepairs == 0 {
		t.Error("read repair not counted")
	}
}

// TestCodedRealign: a fragment that is valid and current but stored at
// the wrong stripe position (as membership reshuffles leave behind)
// still serves reads — indices come from the trailer, not the
// placement — and is rewritten to the canonical position fragment.
func TestCodedRealign(t *testing.T) {
	c, _ := codedTestCluster(t, nil)
	ctx := context.Background()

	const b = int64(7)
	data := bytes.Repeat([]byte{0x7A}, DataBytes)
	if err := c.WriteBlock(ctx, b, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	reps := codedReps(c, b)
	_, fm, _ := readNodeFrag(t, c, reps[2].addr, b)

	// Position 2 now holds fragment index 3 — same version, right
	// stripe, wrong slot for its seat.
	writeNodeFrag(t, c, reps[2].addr, b, forgeFragSlot(t, c, data, 3, fm.Version))

	got, err := c.ReadBlock(ctx, b)
	if err != nil {
		t.Fatalf("read with misaligned fragment: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read with misaligned fragment returned wrong data")
	}

	waitFor(t, 5*time.Second, "fragment realignment", func() bool {
		frag, rm, status := readNodeFrag(t, c, reps[2].addr, b)
		if status != ecstripe.FragOK || rm.Index != 2 || rm.Version != fm.Version {
			_, _ = c.ReadBlock(ctx, b)
			return false
		}
		dataFrags, _ := c.codec.Split(data)
		return bytes.Equal(frag, dataFrags[2])
	})
	if st := c.Stats(); st.ECFragmentsRealigned == 0 {
		t.Error("realignment not counted")
	}
}

// TestCodedStalenessGuard exercises the possible-acks election rule:
// a partial newer write is only skipped when it provably failed its
// quorum, and a version that MIGHT have been acknowledged is never
// read past — the read fails typed instead of serving older data or
// zeros.
func TestCodedStalenessGuard(t *testing.T) {
	c, nodes := codedTestCluster(t, func(cfg *Config) {
		cfg.AntiEntropyInterval = -1 // keep the forged states untouched
		cfg.OpTimeout = time.Second
	})
	ctx := context.Background()

	const b = int64(9)
	v1data := bytes.Repeat([]byte{0x11}, DataBytes)
	if err := c.WriteBlock(ctx, b, v1data); err != nil {
		t.Fatalf("write: %v", err)
	}
	reps := codedReps(c, b)
	_, fm, _ := readNodeFrag(t, c, reps[0].addr, b)
	v2 := fm.Version + (1 << 8) // one HLC counter tick ahead
	v2data := bytes.Repeat([]byte{0x22}, DataBytes)

	// One stray v2 fragment: count(v2)=1 with every replica heard is
	// provably below W=5, so the read skips it and serves v1.
	writeNodeFrag(t, c, reps[0].addr, b, forgeFragSlot(t, c, v2data, 0, v2))
	got, err := c.ReadBlock(ctx, b)
	if err != nil {
		t.Fatalf("read over stray newer fragment: %v", err)
	}
	if !bytes.Equal(got, v1data) {
		t.Fatal("stray unacknowledged fragment changed the served data")
	}

	// Now the undecidable shape: v2 on two nodes, two other nodes dead.
	// v2 could not have been acked (2 visible + 2 unknown < 5)… but the
	// overwritten and dead nodes together could hide a v1 quorum, and
	// only two v1 fragments are reachable — below K. Serving v1 is
	// impossible, serving zeros or v2 would be wrong: the read must
	// fail with the typed quorum error until the dead nodes return.
	writeNodeFrag(t, c, reps[1].addr, b, forgeFragSlot(t, c, v2data, 1, v2))
	byAddr := make(map[string]*testNode)
	for _, n := range nodes {
		byAddr[n.addr] = n
	}
	killed := []*testNode{byAddr[reps[2].addr], byAddr[reps[3].addr]}
	killed[0].kill()
	killed[1].kill()

	waitFor(t, 10*time.Second, "typed read failure in the undecidable state", func() bool {
		rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		got, err := c.ReadBlock(rctx, b)
		if err == nil {
			t.Fatalf("undecidable read served data (stale or zero): % x…", got[:8])
		}
		return errors.Is(err, ErrReadQuorum)
	})

	// With the dead nodes back, four v1 fragments are reachable again:
	// v2 is skipped as provably unacknowledged and v1 reconstructs.
	killed[0].restart()
	killed[1].restart()
	waitFor(t, 10*time.Second, "v1 served after restarts", func() bool {
		got, err := c.ReadBlock(ctx, b)
		if err != nil {
			return false
		}
		if !bytes.Equal(got, v1data) {
			t.Fatal("read after restart served wrong data")
		}
		return true
	})
}

// TestCodedHintedHandoff: a write that misses one stripe node (killed)
// still reaches quorum; the missed fragment is queued as a hint and
// replayed when the node returns.
func TestCodedHintedHandoff(t *testing.T) {
	c, nodes := codedTestCluster(t, nil)
	ctx := context.Background()

	const b = int64(4)
	reps := codedReps(c, b)
	byAddr := make(map[string]*testNode)
	for _, n := range nodes {
		byAddr[n.addr] = n
	}
	down := byAddr[reps[5].addr]
	down.kill()

	data := bytes.Repeat([]byte{0x99}, DataBytes)
	waitFor(t, 10*time.Second, "write quorum with one node down", func() bool {
		return c.WriteBlock(ctx, b, data) == nil
	})
	// The write returns at W=5 acks while the straggler write to the
	// dead node is still retrying in the background; wait for it to
	// exhaust its retries and buffer the fragment as a hint, or an
	// immediate restart would let the retry land directly.
	waitFor(t, 10*time.Second, "fragment hint queued for the dead node", func() bool {
		return c.Stats().HintsQueued > 0
	})
	down.restart()

	dataFrags, _ := c.codec.Split(data)
	waitFor(t, 10*time.Second, "hint replay onto the restarted node", func() bool {
		frag, fm, status := readNodeFrag(t, c, down.addr, b)
		return status == ecstripe.FragOK && fm.Index == 5 &&
			fm.StripeCRC == ecstripe.StripeCRC(data) &&
			bytes.Equal(frag, mustParity(t, c, dataFrags, 5))
	})
	if st := c.Stats(); st.HintsReplayed == 0 {
		t.Error("hint replay not counted")
	}
}

func mustParity(t *testing.T, c *Cluster, dataFrags [][]byte, idx int) []byte {
	t.Helper()
	frag := make([]byte, c.fragBytes)
	if err := c.codec.EncodeFragment(frag, dataFrags, idx); err != nil {
		t.Fatalf("EncodeFragment(%d): %v", idx, err)
	}
	return frag
}

// TestCodedAntiEntropy: divergence planted while sweeps are off —
// one corrupt fragment, one missing (zeroed) fragment — is repaired by
// the per-slot coded anti-entropy pass without any foreground reads.
func TestCodedAntiEntropy(t *testing.T) {
	c, _ := codedTestCluster(t, func(cfg *Config) {
		cfg.AntiEntropyInterval = -1
	})
	ctx := context.Background()

	const b = int64(6)
	data := bytes.Repeat([]byte{0x6B}, DataBytes)
	if err := c.WriteBlock(ctx, b, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	reps := codedReps(c, b)
	_, fm, _ := readNodeFrag(t, c, reps[1].addr, b)

	writeNodeFrag(t, c, reps[1].addr, b, bytes.Repeat([]byte{0xFF}, int(c.slotBytes)))
	writeNodeFrag(t, c, reps[4].addr, b, make([]byte, c.slotBytes))

	// Drive the sweep directly (the loop is disabled): one partition
	// pass must restore both fragments.
	waitFor(t, 10*time.Second, "anti-entropy fragment repair", func() bool {
		c.sweepPartition(c.partOf(b))
		f1, m1, s1 := readNodeFrag(t, c, reps[1].addr, b)
		f4, m4, s4 := readNodeFrag(t, c, reps[4].addr, b)
		if s1 != ecstripe.FragOK || m1.Index != 1 || m1.Version != fm.Version {
			return false
		}
		if s4 != ecstripe.FragOK || m4.Index != 4 || m4.Version != fm.Version {
			return false
		}
		dataFrags, _ := c.codec.Split(data)
		return bytes.Equal(f1, dataFrags[1]) && bytes.Equal(f4, mustParity(t, c, dataFrags, 4))
	})
	st := c.Stats()
	if st.AntiEntropyRepairs == 0 {
		t.Error("anti-entropy repair not counted")
	}
	if st.ECFragmentRepairs == 0 {
		t.Error("fragment repair not counted")
	}
}

// TestECChaosSoak is the coded acceptance soak: rs:4+2 over six nodes
// while connections are cut mid-frame, two nodes are hard-killed and
// later restarted, and stored bits keep flipping on a third node's
// fragments. The invariant under fire is unchanged from the mirrored
// soak: every read returns the exact last-acknowledged bytes or a
// typed quorum error — never silently stale, zero, or corrupt data —
// and the cluster converges once the chaos stops.
func TestECChaosSoak(t *testing.T) {
	soak := 2500 * time.Millisecond
	if testing.Short() {
		soak = 800 * time.Millisecond
	}

	nodes := make([]*testNode, 6)
	addrs := make([]string, 6)
	for i := range nodes {
		nodes[i] = startTestNode(t, 64, uint64(1000*i+7))
		addrs[i] = nodes[i].addr
	}
	c, err := New(Config{
		Nodes: addrs,
		DialNode: func(addr string) (NodeClient, error) {
			return pcmserve.NewRetryClient(pcmserve.RetryConfig{
				Dial:             faultinject.Dialer(addr, 17^nodeSeed(addr), 32<<10, 256<<10),
				MaxReadAttempts:  3,
				MaxWriteAttempts: 3,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       20 * time.Millisecond,
				OpTimeout:        2 * time.Second,
				Seed:             nodeSeed(addr),
			})
		},
		Coding:              "rs:4+2",
		FailThreshold:       2,
		ProbeInterval:       50 * time.Millisecond,
		HintReplayInterval:  20 * time.Millisecond,
		AntiEntropyInterval: 500 * time.Microsecond,
		Seed:                4242,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	const workers = 4
	const blockSpan = 40

	stop := make(chan struct{})
	failures := make(chan error, workers+1)
	mirrors := make(chan map[int64][]byte, workers)
	var wg sync.WaitGroup

	// Chaos controller: hard-kill nodes 0 and 1 (the full parity
	// budget) a quarter in, restart them at the half; flip stored bits
	// under node 2's fragment slots throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(777))
		killAt := time.After(soak / 4)
		restartAt := time.After(soak / 2)
		flip := time.NewTicker(25 * time.Millisecond)
		defer flip.Stop()
		for {
			select {
			case <-stop:
				return
			case <-killAt:
				nodes[0].kill()
				nodes[1].kill()
			case <-restartAt:
				nodes[0].restart()
				nodes[1].restart()
			case <-flip.C:
				// Blocks 0..39 at 33-byte fragment slots span device bytes
				// 0..1320 → the first 21 of shard 0's 64-byte device blocks.
				fi := nodes[2].fis[0]
				fi.FlipStoredBits(rng.Int63n(21), 1+rng.Intn(3))
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			rng := rand.New(rand.NewSource(int64(w)*101 + 5))
			lastAcked := make(map[int64][]byte)
			defer func() { mirrors <- lastAcked }()
			data := make([]byte, DataBytes)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(rng.Intn(blockSpan/workers)*workers + w)
				if rng.Intn(10) < 6 { // write
					for i := range data {
						data[i] = byte(w*31 + iter*7 + i)
					}
					if err := c.WriteBlock(ctx, b, data); err != nil {
						if !errors.Is(err, ErrWriteQuorum) {
							failures <- fmt.Errorf("worker %d: write block %d: untyped error %w", w, b, err)
							return
						}
						lastAcked[b] = nil // undefined until re-acknowledged
						continue
					}
					lastAcked[b] = append([]byte(nil), data...)
					continue
				}
				got, err := c.ReadBlock(ctx, b)
				if err != nil {
					if !errors.Is(err, ErrReadQuorum) {
						failures <- fmt.Errorf("worker %d: read block %d: untyped error %w", w, b, err)
						return
					}
					continue
				}
				want, wrote := lastAcked[b]
				switch {
				case !wrote:
					if !bytes.Equal(got, make([]byte, DataBytes)) {
						failures <- fmt.Errorf("worker %d: unwritten block %d returned nonzero data", w, b)
						return
					}
				case want == nil:
					// Undefined after an unacknowledged write.
				default:
					if !bytes.Equal(got, want) {
						failures <- fmt.Errorf("worker %d: block %d diverged from last-acknowledged write", w, b)
						return
					}
				}
			}
		}(w)
	}

	time.Sleep(soak)
	close(stop)
	wg.Wait()
	close(failures)
	close(mirrors)
	for err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	want := make(map[int64][]byte)
	for m := range mirrors {
		for b, v := range m {
			want[b] = v
		}
	}
	ctx := context.Background()
	deadline := time.Now().Add(15 * time.Second)
	for b := int64(0); b < blockSpan; b++ {
		for {
			got, err := c.ReadBlock(ctx, b)
			if err == nil {
				if w, ok := want[b]; ok && w != nil && !bytes.Equal(got, w) {
					t.Fatalf("block %d converged to wrong data", b)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("block %d never became readable: %v", b, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	st := c.Stats()
	t.Logf("soak stats: %+v", st)
	if st.NodeDownTransitions == 0 {
		t.Error("breaker never tripped despite killed nodes")
	}
	if st.DivergentCorrupt == 0 {
		t.Error("bit flips were never detected as corrupt fragments")
	}
	if st.ECReconstructions == 0 {
		t.Error("no parity reconstructions despite two killed stripe nodes")
	}
	recoveries := st.ReadRepairs + st.AntiEntropyRepairs + st.HintsReplayed + st.HintsDroppedStale
	if recoveries == 0 {
		t.Error("no recovery work recorded despite injected faults")
	}
	if st.QuorumReads == 0 || st.QuorumWrites == 0 {
		t.Error("soak produced no quorum traffic")
	}
}

// BenchmarkClusterQuorumEC measures the coded quorum hot path (encode
// + 6-way fragment fan-out per write, 4-fragment gather + systematic
// join per read) for benchdiff comparison against the mirrored
// BenchmarkClusterQuorum.
func BenchmarkClusterQuorumEC(b *testing.B) {
	c, _ := codedTestCluster(b, func(cfg *Config) {
		cfg.AntiEntropyInterval = -1
		cfg.SlowQuorumThreshold = 50 * time.Millisecond
	})
	ctx := context.Background()
	data := bytes.Repeat([]byte{0xB5}, DataBytes)
	blocks := c.Blocks()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := int64(i) % blocks
		if err := c.WriteBlock(ctx, blk, data); err != nil {
			b.Fatalf("write: %v", err)
		}
		if _, err := c.ReadBlock(ctx, blk); err != nil {
			b.Fatalf("read: %v", err)
		}
	}
}
