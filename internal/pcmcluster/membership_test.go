package pcmcluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// fillCluster writes a distinct pattern to every block and returns the
// mirror of what was acknowledged.
func fillCluster(t *testing.T, c *Cluster) map[int64][]byte {
	t.Helper()
	ctx := context.Background()
	mirror := make(map[int64][]byte, c.Blocks())
	for b := int64(0); b < c.Blocks(); b++ {
		data := bytes.Repeat([]byte{byte(b*3 + 1)}, DataBytes)
		if err := c.WriteBlock(ctx, b, data); err != nil {
			t.Fatalf("fill block %d: %v", b, err)
		}
		mirror[b] = data
	}
	return mirror
}

// verifyMirror reads every mirrored block through the cluster and
// checks exact bytes.
func verifyMirror(t *testing.T, c *Cluster, mirror map[int64][]byte) {
	t.Helper()
	ctx := context.Background()
	for b, want := range mirror {
		got, err := c.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("read block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d diverged from acknowledged write", b)
		}
	}
}

// TestClusterJoinBulkStream joins a fourth node to a populated 3-node
// cluster and checks the full contract: the join transfers every
// partition the joiner owns, the joiner enters the read set only once
// caught up, and the data it serves is exact.
func TestClusterJoinBulkStream(t *testing.T) {
	c, _ := testCluster(t, 3, func(cfg *Config) {
		cfg.ReplicationFactor = 3
		cfg.WriteQuorum = 2
		cfg.ReadQuorum = 2
	})
	mirror := fillCluster(t, c)

	joiner := startTestNode(t, 64, 4007)
	if err := c.Join(context.Background(), joiner.addr); err != nil {
		t.Fatalf("Join: %v", err)
	}

	st := c.Stats()
	if st.JoinsCompleted != 1 || st.Membership.Mode != "stable" {
		t.Fatalf("after join: completed=%d mode=%s", st.JoinsCompleted, st.Membership.Mode)
	}
	if len(st.Nodes) != 4 {
		t.Fatalf("membership has %d nodes, want 4", len(st.Nodes))
	}
	if st.TransferSlotsPushed == 0 {
		t.Fatal("join pushed no slots to the joiner")
	}

	// Every slot the joiner now owns must be present and exact on its
	// store — that is what admits it to the read quorum.
	ep := c.epoch.Load()
	var joinerNode *node
	for _, n := range ep.nodes {
		if n.addr == joiner.addr {
			joinerNode = n
		}
	}
	if joinerNode == nil || joinerNode.currentRole() != RoleActive {
		t.Fatalf("joiner not an active member after join")
	}
	owned := 0
	for p := int64(0); p < c.numParts(); p++ {
		if !containsNode(ep.cur.replicas(p, c.rf), joinerNode) {
			continue
		}
		lo, n := c.partSpan(p)
		for b := lo; b < lo+n; b++ {
			owned++
			got, _, status := readNodeSlot(t, joiner.addr, b)
			if status != slotOK || !bytes.Equal(got, mirror[b]) {
				t.Fatalf("joiner's copy of block %d wrong (status %v)", b, status)
			}
		}
	}
	if owned == 0 {
		t.Fatal("rendezvous placement gave the joiner no partitions")
	}
	verifyMirror(t, c, mirror)

	// Duplicate join is rejected.
	if err := c.Join(context.Background(), joiner.addr); err == nil ||
		!strings.Contains(err.Error(), "already a member") {
		t.Fatalf("duplicate join = %v, want already-a-member error", err)
	}
}

// TestClusterJoinResumesAfterTargetKill kills the joining node in the
// middle of its bulk stream and restarts it: the join must resume from
// its checkpoint and complete, not restart or fail.
func TestClusterJoinResumesAfterTargetKill(t *testing.T) {
	c, _ := testCluster(t, 3, func(cfg *Config) {
		cfg.ReplicationFactor = 3
		cfg.WriteQuorum = 2
		cfg.ReadQuorum = 2
		cfg.TransferSegmentSlots = 4 // many segments → the kill lands mid-stream
	})
	mirror := fillCluster(t, c)

	joiner := startTestNode(t, 64, 4013)

	// Kill the joiner after the first segments land, restart it shortly
	// after; the transfer retries from its checkpoint meanwhile.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(10 * time.Second)
		for c.Stats().TransferSegments < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		joiner.kill()
		time.Sleep(150 * time.Millisecond)
		joiner.restart()
	}()

	if err := c.Join(context.Background(), joiner.addr); err != nil {
		t.Fatalf("Join across a mid-stream kill: %v", err)
	}
	wg.Wait()

	st := c.Stats()
	if st.TransferResumes == 0 {
		t.Fatalf("join survived the kill without a checkpoint resume (segments=%d)", st.TransferSegments)
	}
	if st.JoinsCompleted != 1 {
		t.Fatalf("joins completed = %d, want 1", st.JoinsCompleted)
	}
	verifyMirror(t, c, mirror)
}

// TestClusterDrainSafeStop drains a node from a 4-node cluster, then
// actually stops it, and checks nothing was lost: the remaining
// replicas hold every acknowledged write at full replication.
func TestClusterDrainSafeStop(t *testing.T) {
	nodes := make([]*testNode, 4)
	addrs := make([]string, 4)
	for i := range nodes {
		nodes[i] = startTestNode(t, 64, uint64(1000*i+7))
		addrs[i] = nodes[i].addr
	}
	c, err := New(Config{
		Nodes:              addrs,
		ReplicationFactor:  3,
		WriteQuorum:        2,
		ReadQuorum:         2,
		OpTimeout:          2 * time.Second,
		FailThreshold:      1,
		ProbeInterval:      20 * time.Millisecond,
		HintReplayInterval: 10 * time.Millisecond,
		Seed:               99,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	mirror := fillCluster(t, c)

	if err := c.Drain(context.Background(), nodes[0].addr); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := c.Stats()
	if st.DrainsCompleted != 1 || len(st.Nodes) != 3 {
		t.Fatalf("after drain: completed=%d nodes=%d", st.DrainsCompleted, len(st.Nodes))
	}

	// Safe-to-stop is the whole point: kill the drained node and the
	// cluster must still serve every acknowledged write exactly.
	nodes[0].kill()
	verifyMirror(t, c, mirror)

	// The drained node is out of every placement.
	ep := c.epoch.Load()
	for p := int64(0); p < c.numParts(); p++ {
		for _, n := range ep.cur.replicas(p, c.rf) {
			if n.addr == nodes[0].addr {
				t.Fatalf("drained node still owns partition %d", p)
			}
		}
	}

	// Draining below the replication factor is refused.
	if err := c.Drain(context.Background(), nodes[1].addr); err == nil ||
		!strings.Contains(err.Error(), "below replication factor") {
		t.Fatalf("drain below RF = %v, want refusal", err)
	}
	if err := c.Drain(context.Background(), nodes[0].addr); err == nil ||
		!strings.Contains(err.Error(), "not a member") {
		t.Fatalf("re-drain of removed node = %v, want not-a-member", err)
	}
}

// TestPlacementMoveBound is the placement property test: adding one
// node to an N-node ring moves no more than ~1/(N+1) of the per-slot
// placements (rendezvous hashing's minimal-disruption bound, with
// sampling slack), untouched partitions keep byte-identical replica
// sets, and removing the node restores the original placement exactly.
func TestPlacementMoveBound(t *testing.T) {
	const parts = int64(4096)
	const rf = 3
	for _, nN := range []int{4, 7, 10} {
		nodes := make([]*node, nN+1)
		for i := range nodes {
			nodes[i] = newNode(fmt.Sprintf("node-%d:900%d", i, i), nil, 1, time.Second, 16)
		}
		before := newPlacement(1, nodes[:nN])
		after := newPlacement(1, nodes)
		added := nodes[nN]

		moved := 0 // replica assignments that changed, out of parts×rf
		for p := int64(0); p < parts; p++ {
			a := before.replicas(p, rf)
			b := after.replicas(p, rf)
			for _, n := range b {
				if !containsNode(a, n) {
					moved++
				}
			}
			// Rendezvous guarantee: a partition's set only changes by the
			// new node displacing exactly one previous owner.
			if !containsNode(b, added) {
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("N=%d: partition %d changed owners without involving the new node", nN, p)
					}
				}
			}
		}
		// Each of the rf assignments moves with probability 1/(N+1);
		// allow 1.5× sampling slack over the expectation.
		bound := int(1.5 * float64(parts) * float64(rf) / float64(nN+1))
		if moved > bound {
			t.Fatalf("N=%d: adding a node moved %d/%d assignments, bound %d", nN, moved, parts*rf, bound)
		}
		if moved == 0 {
			t.Fatalf("N=%d: new node was never placed", nN)
		}

		// Removing the node restores the original placement exactly.
		restored := newPlacement(1, nodes[:nN])
		for p := int64(0); p < parts; p++ {
			a := before.replicas(p, rf)
			b := restored.replicas(p, rf)
			for i := range a {
				if a[i].addr != b[i].addr {
					t.Fatalf("N=%d: partition %d not restored after removal", nN, p)
				}
			}
		}
	}
}

// TestClusterWritesDuringJoinDualQuorum keeps writing while a join is
// in flight and checks that every write acknowledged during the
// transition is readable afterwards — the dual-quorum rule across the
// epoch flip.
func TestClusterWritesDuringJoinDualQuorum(t *testing.T) {
	c, _ := testCluster(t, 3, func(cfg *Config) {
		cfg.ReplicationFactor = 3
		cfg.WriteQuorum = 2
		cfg.ReadQuorum = 2
		cfg.TransferSegmentSlots = 2 // slow the join down
	})
	mirror := fillCluster(t, c)
	joiner := startTestNode(t, 64, 4019)

	stop := make(chan struct{})
	var mu sync.Mutex
	var writeErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		rng := rand.New(rand.NewSource(31))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b := int64(rng.Intn(int(c.Blocks())))
			data := bytes.Repeat([]byte{byte(i)}, DataBytes)
			if err := c.WriteBlock(ctx, b, data); err != nil {
				mu.Lock()
				writeErr = err
				mu.Unlock()
				return
			}
			mu.Lock()
			mirror[b] = data
			mu.Unlock()
		}
	}()

	if err := c.Join(context.Background(), joiner.addr); err != nil {
		t.Fatalf("Join under write load: %v", err)
	}
	close(stop)
	wg.Wait()
	if writeErr != nil {
		t.Fatalf("write during join: %v", writeErr)
	}
	verifyMirror(t, c, mirror)
}

// TestMembershipChaosSoak is the membership acceptance soak: constant
// read/write load with per-worker mirrors while a fourth node joins
// (and is killed and restarted mid-join) and a founding node is
// drained and stopped. The invariant is the usual one — every read
// returns the exact last-acknowledged bytes or a typed error — and
// both membership changes must complete and converge.
func TestMembershipChaosSoak(t *testing.T) {
	nodes := make([]*testNode, 4)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = startTestNode(t, 64, uint64(2000*i+11))
		if i < 3 {
			addrs[i] = nodes[i].addr
		}
	}
	c, err := New(Config{
		Nodes:                addrs,
		ReplicationFactor:    3,
		WriteQuorum:          2,
		ReadQuorum:           2,
		OpTimeout:            2 * time.Second,
		FailThreshold:        2,
		ProbeInterval:        50 * time.Millisecond,
		HintReplayInterval:   20 * time.Millisecond,
		AntiEntropyInterval:  time.Millisecond,
		TransferSegmentSlots: 4,
		Seed:                 777,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	const workers = 4
	const blockSpan = 40
	stop := make(chan struct{})
	failures := make(chan error, workers)
	mirrors := make(chan map[int64][]byte, workers)
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			rng := rand.New(rand.NewSource(int64(w)*131 + 3))
			lastAcked := make(map[int64][]byte)
			defer func() { mirrors <- lastAcked }()
			data := make([]byte, DataBytes)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(rng.Intn(blockSpan/workers)*workers + w)
				if rng.Intn(10) < 6 {
					for i := range data {
						data[i] = byte(w*37 + iter*11 + i)
					}
					if err := c.WriteBlock(ctx, b, data); err != nil {
						if !errors.Is(err, ErrWriteQuorum) {
							failures <- fmt.Errorf("worker %d: write %d: untyped error %w", w, b, err)
							return
						}
						lastAcked[b] = nil
						continue
					}
					lastAcked[b] = append([]byte(nil), data...)
					continue
				}
				got, err := c.ReadBlock(ctx, b)
				if err != nil {
					if !errors.Is(err, ErrReadQuorum) {
						failures <- fmt.Errorf("worker %d: read %d: untyped error %w", w, b, err)
						return
					}
					continue
				}
				want, wrote := lastAcked[b]
				switch {
				case !wrote:
					if !bytes.Equal(got, make([]byte, DataBytes)) {
						failures <- fmt.Errorf("worker %d: unwritten block %d nonzero", w, b)
						return
					}
				case want == nil:
					// Undefined after an unacknowledged write.
				default:
					if !bytes.Equal(got, want) {
						failures <- fmt.Errorf("worker %d: block %d lost an acknowledged write", w, b)
						return
					}
				}
			}
		}(w)
	}

	// Membership chaos, sequential and deterministic: join the fourth
	// node with a kill-and-restart mid-stream, then drain node 0 while a
	// transfer source (node 1) bounces.
	joinCtx, cancelJoin := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelJoin()
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		deadline := time.Now().Add(20 * time.Second)
		for c.Stats().TransferSegments < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		nodes[3].kill()
		time.Sleep(100 * time.Millisecond)
		nodes[3].restart()
	}()
	if err := c.Join(joinCtx, nodes[3].addr); err != nil {
		t.Fatalf("chaos join: %v", err)
	}
	killWG.Wait()

	segsBefore := c.Stats().TransferSegments
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		deadline := time.Now().Add(20 * time.Second)
		for c.Stats().TransferSegments < segsBefore+2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		nodes[1].kill()
		time.Sleep(100 * time.Millisecond)
		nodes[1].restart()
	}()
	if err := c.Drain(joinCtx, nodes[0].addr); err != nil {
		t.Fatalf("chaos drain: %v", err)
	}
	killWG.Wait()
	nodes[0].kill() // drain said safe-to-stop; hold it to that

	close(stop)
	wg.Wait()
	close(failures)
	close(mirrors)
	for err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Convergence: every acknowledged write readable, exactly.
	want := make(map[int64][]byte)
	for m := range mirrors {
		for b, v := range m {
			want[b] = v
		}
	}
	ctx := context.Background()
	deadline := time.Now().Add(20 * time.Second)
	for b := int64(0); b < blockSpan; b++ {
		for {
			got, err := c.ReadBlock(ctx, b)
			if err == nil {
				if w, ok := want[b]; ok && w != nil && !bytes.Equal(got, w) {
					t.Fatalf("block %d converged to wrong data", b)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("block %d never became readable: %v", b, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	st := c.Stats()
	t.Logf("membership soak stats: %+v", st)
	if st.JoinsCompleted != 1 || st.DrainsCompleted != 1 {
		t.Errorf("joins=%d drains=%d, want 1 each", st.JoinsCompleted, st.DrainsCompleted)
	}
	if st.TransferResumes == 0 {
		t.Error("mid-stream kills never exercised the transfer checkpoint resume")
	}
	if len(st.Nodes) != 3 {
		t.Errorf("final membership %d nodes, want 3", len(st.Nodes))
	}
	for _, ns := range st.Nodes {
		if ns.Addr == nodes[0].addr {
			t.Errorf("drained node still in the membership")
		}
		if ns.Addr == nodes[3].addr && ns.Reads == 0 {
			t.Errorf("joined node is not serving reads")
		}
	}
}
