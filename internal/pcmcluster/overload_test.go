package pcmcluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pcmserve"
)

// TestBrownoutMeter drives the sliding-window meter with synthetic
// clocks: the ladder engages at the documented thresholds and events
// age out of the window.
func TestBrownoutMeter(t *testing.T) {
	var m brownoutMeter
	t0 := time.Unix(1000, 0)

	if got := m.level(t0); got != brownoutNone {
		t.Fatalf("empty meter level = %d, want none", got)
	}
	for i := 0; i < brownoutL1Events-1; i++ {
		m.note(t0)
	}
	if got := m.level(t0); got != brownoutNone {
		t.Fatalf("level below L1 threshold = %d, want none", got)
	}
	m.note(t0)
	if got := m.level(t0); got != brownoutPauseAE {
		t.Fatalf("level at %d events = %d, want pause-AE", brownoutL1Events, got)
	}
	for i := brownoutL1Events; i < brownoutL2Events; i++ {
		m.note(t0)
	}
	if got := m.level(t0); got != brownoutDeferRepairs {
		t.Fatalf("level at %d events = %d, want defer-repairs", brownoutL2Events, got)
	}

	// Partway through the window the events still count...
	half := t0.Add(brownoutBucket * brownoutBuckets / 2)
	if got := m.level(half); got != brownoutDeferRepairs {
		t.Fatalf("level mid-window = %d, want defer-repairs", got)
	}
	// ...and past it they age out entirely.
	past := t0.Add(brownoutBucket*brownoutBuckets + brownoutBucket)
	if got := m.level(past); got != brownoutNone {
		t.Fatalf("level past window = %d, want none", got)
	}
	if got := m.events(past); got != 0 {
		t.Fatalf("events past window = %d, want 0", got)
	}

	// Events spread across buckets retire one bucket at a time, not all
	// at once.
	for i := 0; i < brownoutBuckets; i++ {
		m.note(past.Add(time.Duration(i) * brownoutBucket))
	}
	lastNote := past.Add(time.Duration(brownoutBuckets-1) * brownoutBucket)
	if got := m.events(lastNote); got != brownoutBuckets {
		t.Fatalf("events with one per bucket = %d, want %d", got, brownoutBuckets)
	}
	if got := m.events(lastNote.Add(2 * brownoutBucket)); got >= brownoutBuckets {
		t.Fatalf("events after partial aging = %d, want < %d", got, brownoutBuckets)
	}
}

// TestOverloadChaosSoak is the metastable-failure soak: a straggling
// node under injected device latency sheds load instead of stalling
// the cluster. The invariants under storm: goodput never reaches
// zero (healthy replicas keep satisfying quorums), every rejection is
// typed, background work is shed at the straggler before foreground
// feels it, the shed verdicts never trip the straggler's breaker into
// a blackout, and once the storm lifts the cluster recovers within a
// bounded window with all acknowledged data intact.
func TestOverloadChaosSoak(t *testing.T) {
	soak := 2500 * time.Millisecond
	if testing.Short() {
		soak = 1200 * time.Millisecond
	}

	// Small queues so admission control engages under modest traffic:
	// depth 4 puts the background high-water mark at 2.
	nodes := make([]*testNode, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = startTestNodeTune(t, 64, uint64(2000*i+11), pcmserve.ServerConfig{},
			func(cfg *pcmserve.ShardsConfig) { cfg.QueueDepth = 4 })
		addrs[i] = nodes[i].addr
	}
	c, err := New(Config{
		Nodes: addrs,
		DialNode: func(addr string) (NodeClient, error) {
			return pcmserve.DialRetry(addr, pcmserve.RetryConfig{
				MaxReadAttempts:  3,
				MaxWriteAttempts: 2,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       10 * time.Millisecond,
				OpTimeout:        time.Second,
				Seed:             nodeSeed(addr),
				Budget:           pcmserve.NewRetryBudget(0.1, 32),
			})
		},
		ReplicationFactor:   3,
		WriteQuorum:         2,
		ReadQuorum:          2,
		FailThreshold:       8,
		ProbeInterval:       50 * time.Millisecond,
		HintReplayInterval:  10 * time.Millisecond,
		AntiEntropyInterval: time.Millisecond,
		Seed:                777,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	const workers = 8
	const blockSpan = 40

	// allowedErr: under overload every failure must still be typed —
	// a quorum verdict, a shed verdict, a spent retry budget, or the
	// caller's own deadline. Anything else is a bug.
	allowedErr := func(err error) bool {
		return errors.Is(err, ErrWriteQuorum) ||
			errors.Is(err, ErrReadQuorum) ||
			errors.Is(err, ErrClosed) ||
			errors.Is(err, pcmserve.ErrOverloaded) ||
			errors.Is(err, pcmserve.ErrDeadlineExceeded) ||
			errors.Is(err, pcmserve.ErrRetryBudgetExhausted) ||
			errors.Is(err, context.DeadlineExceeded)
	}

	stop := make(chan struct{})
	failures := make(chan error, workers+1)
	mirrors := make(chan map[int64][]byte, workers)
	var storming atomic.Bool
	var stormOps atomic.Uint64
	var wg sync.WaitGroup

	// Storm controller: a quarter in, node 1's devices turn into
	// stragglers; at three quarters the latency lifts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		stormAt := time.After(soak / 4)
		clearAt := time.After(3 * soak / 4)
		for {
			select {
			case <-stop:
				return
			case <-stormAt:
				for _, fi := range nodes[1].fis {
					fi.SetLatency(8 * time.Millisecond)
				}
				storming.Store(true)
			case <-clearAt:
				storming.Store(false)
				for _, fi := range nodes[1].fis {
					fi.SetLatency(0)
				}
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*211 + 3))
			lastAcked := make(map[int64][]byte)
			defer func() { mirrors <- lastAcked }()
			data := make([]byte, DataBytes)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := int64(rng.Intn(blockSpan/workers)*workers + w)
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
				if rng.Intn(10) < 5 { // write
					for i := range data {
						data[i] = byte(w*29 + iter*13 + i)
					}
					err := c.WriteBlock(ctx, b, data)
					cancel()
					if err != nil {
						if !allowedErr(err) {
							failures <- fmt.Errorf("worker %d: write block %d: untyped error under overload: %w", w, b, err)
							return
						}
						lastAcked[b] = nil // undefined until re-acknowledged
						continue
					}
					lastAcked[b] = append([]byte(nil), data...)
					if storming.Load() {
						stormOps.Add(1)
					}
					continue
				}
				got, err := c.ReadBlock(ctx, b)
				cancel()
				if err != nil {
					if !allowedErr(err) {
						failures <- fmt.Errorf("worker %d: read block %d: untyped error under overload: %w", w, b, err)
						return
					}
					continue
				}
				if storming.Load() {
					stormOps.Add(1)
				}
				want, wrote := lastAcked[b]
				switch {
				case !wrote:
					if !bytes.Equal(got, make([]byte, DataBytes)) {
						failures <- fmt.Errorf("worker %d: unwritten block %d returned nonzero data", w, b)
						return
					}
				case want == nil:
					// Unverifiable after an unacknowledged write.
				default:
					if !bytes.Equal(got, want) {
						failures <- fmt.Errorf("worker %d: block %d diverged from last-acknowledged write", w, b)
						return
					}
				}
			}
		}(w)
	}

	time.Sleep(soak)
	close(stop)
	wg.Wait()
	close(failures)
	close(mirrors)
	for err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Goodput floor: foreground quorums kept landing while the
	// straggler was shedding.
	if stormOps.Load() == 0 {
		t.Error("no operations succeeded during the storm (goodput collapsed to zero)")
	}

	// The straggler shed background work server-side: its high-water
	// mark protects foreground capacity first.
	ov := nodes[1].g.OverloadStats()
	if ov.ShedBackground == 0 {
		t.Error("straggler never shed background work despite saturated queues")
	}

	st := c.Stats()
	t.Logf("soak stats: %+v straggler overload: %+v", st, ov)
	if st.OverloadEvents == 0 {
		t.Error("cluster recorded no typed overload verdicts despite the storm")
	}

	// Bounded recovery: with the storm lifted, every block becomes
	// readable and every acknowledged value reads back exactly.
	want := make(map[int64][]byte)
	for m := range mirrors {
		for b, v := range m {
			want[b] = v
		}
	}
	ctx := context.Background()
	deadline := time.Now().Add(15 * time.Second)
	for b := int64(0); b < blockSpan; b++ {
		for {
			got, err := c.ReadBlock(ctx, b)
			if err == nil {
				if w, ok := want[b]; ok && w != nil && !bytes.Equal(got, w) {
					t.Fatalf("block %d converged to wrong data", b)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("block %d never became readable after the storm: %v", b, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// The brownout clears once the shed verdicts age out of the meter's
	// window — degraded mode is bounded, not sticky.
	calm := time.Now().Add(10 * time.Second)
	for c.brownoutLevel() != brownoutNone {
		if time.Now().After(calm) {
			t.Fatalf("brownout level still %d long after the storm cleared", c.brownoutLevel())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
