package pcmcluster

import (
	"strconv"

	"repro/internal/obs"
)

// latBoundsSeconds mirrors pcmserve's histogram scheme: power-of-two
// microsecond upper bounds from 1 µs to ~4.2 s, +Inf making 24 buckets.
var latBoundsSeconds = func() []float64 {
	out := make([]float64, 23)
	for i := range out {
		out[i] = float64(uint64(1)<<uint(i)) * 1e-6
	}
	return out
}()

// metrics holds the cluster's registered instruments.
type metrics struct {
	reg *obs.Registry

	quorumReads, quorumWrites           *obs.Counter
	quorumFailRead, quorumFailWrite     *obs.Counter
	degradedReads, degradedWrites       *obs.Counter
	latRead, latWrite                   *obs.Histogram
	repairsRead, repairsAntiEntropy     *obs.Counter
	repairsSkipped, repairsFailed       *obs.Counter
	divergentStale, divergentCorrupt    *obs.Counter
	hintsQueued, hintsReplayed          *obs.Counter
	hintsDroppedStale, hintsDroppedFull *obs.Counter
	nodeTransitions                     *obs.Counter
	aeClean, aeRepaired, aeUnavailable  *obs.Counter
	aePasses                            *obs.Counter

	nodeReads, nodeWrites []*obs.Counter // per node index
	nodeErrs              []*obs.Counter
}

func newMetrics(reg *obs.Registry, c *Cluster) *metrics {
	m := &metrics{reg: reg}

	reg.GaugeFunc("pcmcluster_nodes", "Nodes in the cluster membership.",
		func() float64 { return float64(len(c.nodes)) })
	reg.GaugeFunc("pcmcluster_blocks", "Replicated block capacity.",
		func() float64 { return float64(c.blocks) })
	reg.GaugeFunc("pcmcluster_replication_factor", "Replicas per block.",
		func() float64 { return float64(c.rf) })

	const qName = "pcmcluster_quorum_requests_total"
	const qHelp = "Quorum operations issued, by op."
	m.quorumReads = reg.Counter(qName, qHelp, obs.L("op", "read")...)
	m.quorumWrites = reg.Counter(qName, qHelp, obs.L("op", "write")...)
	const qfName = "pcmcluster_quorum_failures_total"
	const qfHelp = "Quorum operations that could not gather enough replica replies."
	m.quorumFailRead = reg.Counter(qfName, qfHelp, obs.L("op", "read")...)
	m.quorumFailWrite = reg.Counter(qfName, qfHelp, obs.L("op", "write")...)
	const dgName = "pcmcluster_degraded_quorums_total"
	const dgHelp = "Quorum operations that succeeded despite at least one replica failure or corrupt reply (failover working as designed)."
	m.degradedReads = reg.Counter(dgName, dgHelp, obs.L("op", "read")...)
	m.degradedWrites = reg.Counter(dgName, dgHelp, obs.L("op", "write")...)
	const latName = "pcmcluster_quorum_latency_seconds"
	const latHelp = "Latency from issuing a quorum operation to reaching its quorum."
	m.latRead = reg.Histogram(latName, latHelp, latBoundsSeconds, obs.L("op", "read")...)
	m.latWrite = reg.Histogram(latName, latHelp, latBoundsSeconds, obs.L("op", "write")...)

	const rrName = "pcmcluster_read_repairs_total"
	const rrHelp = "Divergent replicas rewritten from the quorum winner, by repair source."
	m.repairsRead = reg.Counter(rrName, rrHelp, obs.L("source", "read")...)
	m.repairsAntiEntropy = reg.Counter(rrName, rrHelp, obs.L("source", "antientropy")...)
	m.repairsSkipped = reg.Counter("pcmcluster_repairs_skipped_total",
		"Repairs abandoned because the stripe-locked re-check found the replica already at or past the winner (version order, data-CRC tiebreak).")
	m.repairsFailed = reg.Counter("pcmcluster_repairs_failed_total",
		"Repair writes that failed; the divergence stands until re-detected.")
	const dvName = "pcmcluster_divergent_replicas_total"
	const dvHelp = "Replica divergences detected on the read path, by cause."
	m.divergentStale = reg.Counter(dvName, dvHelp, obs.L("cause", "stale")...)
	m.divergentCorrupt = reg.Counter(dvName, dvHelp, obs.L("cause", "corrupt")...)

	const hName = "pcmcluster_hints_total"
	const hHelp = "Hinted-handoff events: writes buffered for down nodes, replays, and drops."
	m.hintsQueued = reg.Counter(hName, hHelp, obs.L("outcome", "queued")...)
	m.hintsReplayed = reg.Counter(hName, hHelp, obs.L("outcome", "replayed")...)
	m.hintsDroppedStale = reg.Counter(hName, hHelp, obs.L("outcome", "dropped_stale")...)
	m.hintsDroppedFull = reg.Counter(hName, hHelp, obs.L("outcome", "dropped_overflow")...)

	m.nodeTransitions = reg.Counter("pcmcluster_node_down_transitions_total",
		"Times the breaker marked a node down.")

	const aeName = "pcmcluster_antientropy_blocks_total"
	const aeHelp = "Anti-entropy sweep outcomes per block visited."
	m.aeClean = reg.Counter(aeName, aeHelp, obs.L("outcome", "clean")...)
	m.aeRepaired = reg.Counter(aeName, aeHelp, obs.L("outcome", "repaired")...)
	m.aeUnavailable = reg.Counter(aeName, aeHelp, obs.L("outcome", "unavailable")...)
	m.aePasses = reg.Counter("pcmcluster_antientropy_passes_total",
		"Completed anti-entropy walks of the whole block space.")

	const nopName = "pcmcluster_node_ops_total"
	const nopHelp = "Replica operations sent per node, by op."
	const nerrName = "pcmcluster_node_errors_total"
	const nerrHelp = "Replica operations that failed per node (any error class)."
	for _, n := range c.nodes {
		labels := obs.L("node", n.addr)
		reg.GaugeFunc("pcmcluster_node_up",
			"Breaker verdict per node: 1 up, 0 down.",
			func() float64 {
				if n.currentState() == NodeUp {
					return 1
				}
				return 0
			}, labels...)
		reg.GaugeFunc("pcmcluster_node_hints_pending",
			"Hinted writes buffered for this node.",
			func() float64 { return float64(n.hintCount()) }, labels...)
		m.nodeReads = append(m.nodeReads, reg.Counter(nopName, nopHelp, obs.L("node", n.addr, "op", "read")...))
		m.nodeWrites = append(m.nodeWrites, reg.Counter(nopName, nopHelp, obs.L("node", n.addr, "op", "write")...))
		m.nodeErrs = append(m.nodeErrs, reg.Counter(nerrName, nerrHelp, labels...))
	}
	return m
}

// NodeStats is one node's slice of a ClusterStats snapshot.
type NodeStats struct {
	Addr         string `json:"addr"`
	State        string `json:"state"`
	Reads        uint64 `json:"reads"`
	Writes       uint64 `json:"writes"`
	Errors       uint64 `json:"errors"`
	HintsPending int    `json:"hints_pending"`
}

// ClusterStats is a JSON-friendly snapshot of the cluster's counters —
// the loadgen report and test assertions read this instead of scraping
// the exposition text.
type ClusterStats struct {
	Blocks            int64 `json:"blocks"`
	ReplicationFactor int   `json:"replication_factor"`
	WriteQuorum       int   `json:"write_quorum"`
	ReadQuorum        int   `json:"read_quorum"`

	QuorumReads        uint64 `json:"quorum_reads"`
	QuorumWrites       uint64 `json:"quorum_writes"`
	ReadQuorumFailures uint64 `json:"read_quorum_failures"`
	WriteQuorumFails   uint64 `json:"write_quorum_failures"`
	DegradedReads      uint64 `json:"degraded_reads"`
	DegradedWrites     uint64 `json:"degraded_writes"`

	ReadRepairs        uint64 `json:"read_repairs"`
	AntiEntropyRepairs uint64 `json:"antientropy_repairs"`
	RepairsSkipped     uint64 `json:"repairs_skipped"`
	RepairsFailed      uint64 `json:"repairs_failed"`
	DivergentStale     uint64 `json:"divergent_stale"`
	DivergentCorrupt   uint64 `json:"divergent_corrupt"`

	HintsQueued         uint64 `json:"hints_queued"`
	HintsReplayed       uint64 `json:"hints_replayed"`
	HintsDroppedStale   uint64 `json:"hints_dropped_stale"`
	HintsDroppedFull    uint64 `json:"hints_dropped_overflow"`
	NodeDownTransitions uint64 `json:"node_down_transitions"`

	AntiEntropyClean       uint64 `json:"antientropy_clean"`
	AntiEntropyUnavailable uint64 `json:"antientropy_unavailable"`
	AntiEntropyPasses      uint64 `json:"antientropy_passes"`

	Nodes []NodeStats `json:"nodes"`
}

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() ClusterStats {
	m := c.met
	st := ClusterStats{
		Blocks:            c.blocks,
		ReplicationFactor: c.rf,
		WriteQuorum:       c.w,
		ReadQuorum:        c.r,

		QuorumReads:        m.quorumReads.Value(),
		QuorumWrites:       m.quorumWrites.Value(),
		ReadQuorumFailures: m.quorumFailRead.Value(),
		WriteQuorumFails:   m.quorumFailWrite.Value(),
		DegradedReads:      m.degradedReads.Value(),
		DegradedWrites:     m.degradedWrites.Value(),

		ReadRepairs:        m.repairsRead.Value(),
		AntiEntropyRepairs: m.repairsAntiEntropy.Value(),
		RepairsSkipped:     m.repairsSkipped.Value(),
		RepairsFailed:      m.repairsFailed.Value(),
		DivergentStale:     m.divergentStale.Value(),
		DivergentCorrupt:   m.divergentCorrupt.Value(),

		HintsQueued:         m.hintsQueued.Value(),
		HintsReplayed:       m.hintsReplayed.Value(),
		HintsDroppedStale:   m.hintsDroppedStale.Value(),
		HintsDroppedFull:    m.hintsDroppedFull.Value(),
		NodeDownTransitions: m.nodeTransitions.Value(),

		AntiEntropyClean:       m.aeClean.Value(),
		AntiEntropyUnavailable: m.aeUnavailable.Value(),
		AntiEntropyPasses:      m.aePasses.Value(),
	}
	for i, n := range c.nodes {
		st.Nodes = append(st.Nodes, NodeStats{
			Addr:         n.addr,
			State:        n.currentState().String(),
			Reads:        m.nodeReads[i].Value(),
			Writes:       m.nodeWrites[i].Value(),
			Errors:       m.nodeErrs[i].Value(),
			HintsPending: n.hintCount(),
		})
	}
	return st
}

// Registry returns the metrics registry backing this cluster, for
// mounting on an obs.AdminHandler.
func (c *Cluster) Registry() *obs.Registry { return c.met.reg }

// Health reports breaker state per node for /healthz: healthy while
// enough nodes are up to meet both quorums.
func (c *Cluster) Health() obs.HealthReport {
	up := 0
	rep := obs.HealthReport{}
	for _, n := range c.nodes {
		st := n.currentState()
		if st == NodeUp {
			up++
		}
		rep.Components = append(rep.Components, obs.ComponentHealth{
			Name:   "node/" + n.addr,
			State:  st.String(),
			Detail: strconv.Itoa(n.hintCount()) + " hints pending",
		})
	}
	rep.Healthy = up >= c.w && up >= c.r
	return rep
}
