package pcmcluster

import (
	"strconv"

	"repro/internal/obs"
)

// latBoundsSeconds mirrors pcmserve's histogram scheme: power-of-two
// microsecond upper bounds from 1 µs to ~4.2 s, +Inf making 24 buckets.
var latBoundsSeconds = func() []float64 {
	out := make([]float64, 23)
	for i := range out {
		out[i] = float64(uint64(1)<<uint(i)) * 1e-6
	}
	return out
}()

// metrics holds the cluster's registered instruments.
type metrics struct {
	reg *obs.Registry
	c   *Cluster

	quorumReads, quorumWrites           *obs.Counter
	quorumFailRead, quorumFailWrite     *obs.Counter
	degradedReads, degradedWrites       *obs.Counter
	latRead, latWrite                   *obs.Histogram
	repairsRead, repairsAntiEntropy     *obs.Counter
	repairsSkipped, repairsFailed       *obs.Counter
	divergentStale, divergentCorrupt    *obs.Counter
	hintsQueued, hintsReplayed          *obs.Counter
	hintsDroppedStale, hintsDroppedFull *obs.Counter
	hintsObsolete                       *obs.Counter
	nodeTransitions                     *obs.Counter
	aeClean, aeRepaired, aeUnavailable  *obs.Counter
	aePasses, aeThrottled               *obs.Counter

	// Overload response (see overload.go).
	overloadEvents       *obs.Counter
	retryBudgetExhausted *obs.Counter
	aePaused             *obs.Counter
	repairsDeferred      *obs.Counter

	// Membership lifecycle.
	joinsStarted, joinsCompleted, joinsAborted    *obs.Counter
	drainsStarted, drainsCompleted, drainsAborted *obs.Counter
	transferSegments, transferResumes             *obs.Counter
	transferSlotsPushed, transferSlotsSkipped     *obs.Counter
	drainHintsReplayed, drainHintsStale           *obs.Counter

	// Merkle anti-entropy exchange.
	mkDigestRPCs, mkSlotsFetched   *obs.Counter
	mkPartsClean, mkPartsDivergent *obs.Counter
	mkPartsUnavailable, mkFallback *obs.Counter

	// Erasure-coded placement (see coding.go / coded.go).
	ecReconstructRead, ecReconstructAE *obs.Counter
	ecReconstructTransfer              *obs.Counter
	ecReconstructFailed                *obs.Counter
	ecHedgedStraggler, ecHedgedFailure *obs.Counter
	ecFragRepairs, ecRealigned         *obs.Counter
}

func newMetrics(reg *obs.Registry, c *Cluster) *metrics {
	m := &metrics{reg: reg, c: c}

	reg.GaugeFunc("pcmcluster_nodes", "Nodes in the cluster membership.",
		func() float64 { return float64(len(c.epoch.Load().nodes)) })
	reg.GaugeFunc("pcmcluster_blocks", "Replicated block capacity.",
		func() float64 { return float64(c.blocks) })
	reg.GaugeFunc("pcmcluster_replication_factor", "Replicas per block.",
		func() float64 { return float64(c.rf) })
	reg.GaugeFunc("pcmcluster_partition_slots", "Slots per placement partition.",
		func() float64 { return float64(c.partSlots) })
	reg.GaugeFunc("pcmcluster_membership_transition",
		"Membership state machine: 0 stable, 1 joining, 2 draining.",
		func() float64 { return float64(c.epoch.Load().mode) })

	const qName = "pcmcluster_quorum_requests_total"
	const qHelp = "Quorum operations issued, by op."
	m.quorumReads = reg.Counter(qName, qHelp, obs.L("op", "read")...)
	m.quorumWrites = reg.Counter(qName, qHelp, obs.L("op", "write")...)
	const qfName = "pcmcluster_quorum_failures_total"
	const qfHelp = "Quorum operations that could not gather enough replica replies."
	m.quorumFailRead = reg.Counter(qfName, qfHelp, obs.L("op", "read")...)
	m.quorumFailWrite = reg.Counter(qfName, qfHelp, obs.L("op", "write")...)
	const dgName = "pcmcluster_degraded_quorums_total"
	const dgHelp = "Quorum operations that succeeded despite at least one replica failure or corrupt reply (failover working as designed)."
	m.degradedReads = reg.Counter(dgName, dgHelp, obs.L("op", "read")...)
	m.degradedWrites = reg.Counter(dgName, dgHelp, obs.L("op", "write")...)
	const latName = "pcmcluster_quorum_latency_seconds"
	const latHelp = "Latency from issuing a quorum operation to reaching its quorum."
	m.latRead = reg.Histogram(latName, latHelp, latBoundsSeconds, obs.L("op", "read")...)
	m.latWrite = reg.Histogram(latName, latHelp, latBoundsSeconds, obs.L("op", "write")...)

	const rrName = "pcmcluster_read_repairs_total"
	const rrHelp = "Divergent replicas rewritten from the quorum winner, by repair source."
	m.repairsRead = reg.Counter(rrName, rrHelp, obs.L("source", "read")...)
	m.repairsAntiEntropy = reg.Counter(rrName, rrHelp, obs.L("source", "antientropy")...)
	m.repairsSkipped = reg.Counter("pcmcluster_repairs_skipped_total",
		"Repairs abandoned because the stripe-locked re-check found the replica already at or past the winner (version order, data-CRC tiebreak).")
	m.repairsFailed = reg.Counter("pcmcluster_repairs_failed_total",
		"Repair writes that failed; the divergence stands until re-detected.")
	const dvName = "pcmcluster_divergent_replicas_total"
	const dvHelp = "Replica divergences detected on the read path, by cause."
	m.divergentStale = reg.Counter(dvName, dvHelp, obs.L("cause", "stale")...)
	m.divergentCorrupt = reg.Counter(dvName, dvHelp, obs.L("cause", "corrupt")...)

	const hName = "pcmcluster_hints_total"
	const hHelp = "Hinted-handoff events: writes buffered for down nodes, replays, and drops."
	m.hintsQueued = reg.Counter(hName, hHelp, obs.L("outcome", "queued")...)
	m.hintsReplayed = reg.Counter(hName, hHelp, obs.L("outcome", "replayed")...)
	m.hintsDroppedStale = reg.Counter(hName, hHelp, obs.L("outcome", "dropped_stale")...)
	m.hintsDroppedFull = reg.Counter(hName, hHelp, obs.L("outcome", "dropped_overflow")...)
	m.hintsObsolete = reg.Counter(hName, hHelp, obs.L("outcome", "dropped_obsolete")...)

	m.nodeTransitions = reg.Counter("pcmcluster_node_down_transitions_total",
		"Times the breaker marked a node down.")

	const aeName = "pcmcluster_antientropy_blocks_total"
	const aeHelp = "Legacy anti-entropy sweep outcomes per block visited."
	m.aeClean = reg.Counter(aeName, aeHelp, obs.L("outcome", "clean")...)
	m.aeRepaired = reg.Counter(aeName, aeHelp, obs.L("outcome", "repaired")...)
	m.aeUnavailable = reg.Counter(aeName, aeHelp, obs.L("outcome", "unavailable")...)
	m.aePasses = reg.Counter("pcmcluster_antientropy_passes_total",
		"Completed anti-entropy walks of the whole block space.")
	m.aeThrottled = reg.Counter("pcmcluster_antientropy_throttled_total",
		"Legacy sweep reads that waited on the read-rate budget.")

	m.overloadEvents = reg.Counter("pcmcluster_overload_events_total",
		"Typed shed verdicts (overloaded / deadline exceeded) received from nodes; proof of life, never breaker evidence.")
	m.retryBudgetExhausted = reg.Counter("pcmcluster_retry_budget_exhausted_total",
		"Replica operations abandoned because the shared retry budget was dry.")
	m.aePaused = reg.Counter("pcmcluster_antientropy_paused_total",
		"Anti-entropy sweep ticks skipped by the brownout ladder (level >= 1).")
	m.repairsDeferred = reg.Counter("pcmcluster_repairs_deferred_total",
		"Repair writes parked in the hint buffer instead of executed, because the target node or the cluster was browning out.")
	reg.GaugeFunc("pcmcluster_brownout_level",
		"Degradation ladder step: 0 normal, 1 anti-entropy paused, 2 repairs also deferred to hints.",
		func() float64 { return float64(c.brownoutLevel()) })

	const mbName = "pcmcluster_membership_changes_total"
	const mbHelp = "Membership lifecycle events, by kind and outcome."
	m.joinsStarted = reg.Counter(mbName, mbHelp, obs.L("kind", "join", "outcome", "started")...)
	m.joinsCompleted = reg.Counter(mbName, mbHelp, obs.L("kind", "join", "outcome", "completed")...)
	m.joinsAborted = reg.Counter(mbName, mbHelp, obs.L("kind", "join", "outcome", "aborted")...)
	m.drainsStarted = reg.Counter(mbName, mbHelp, obs.L("kind", "drain", "outcome", "started")...)
	m.drainsCompleted = reg.Counter(mbName, mbHelp, obs.L("kind", "drain", "outcome", "completed")...)
	m.drainsAborted = reg.Counter(mbName, mbHelp, obs.L("kind", "drain", "outcome", "aborted")...)

	m.transferSegments = reg.Counter("pcmcluster_transfer_segments_total",
		"Bulk-transfer segments pushed during membership changes.")
	m.transferResumes = reg.Counter("pcmcluster_transfer_resumes_total",
		"Bulk transfers resumed from their checkpoint after a transient interruption.")
	const tsName = "pcmcluster_transfer_slots_total"
	const tsHelp = "Per-slot bulk-transfer outcomes: pushed to the target or skipped because the target already held an equal-or-newer copy."
	m.transferSlotsPushed = reg.Counter(tsName, tsHelp, obs.L("outcome", "pushed")...)
	m.transferSlotsSkipped = reg.Counter(tsName, tsHelp, obs.L("outcome", "skipped")...)

	const dhName = "pcmcluster_drain_hints_total"
	const dhHelp = "Hints found on a drained node at fence time, by disposition."
	m.drainHintsReplayed = reg.Counter(dhName, dhHelp, obs.L("outcome", "replayed")...)
	m.drainHintsStale = reg.Counter(dhName, dhHelp, obs.L("outcome", "stale")...)

	m.mkDigestRPCs = reg.Counter("pcmcluster_merkle_digest_rpcs_total",
		"HASH_RANGE and trailer-stride RPCs issued by the Merkle exchange.")
	m.mkSlotsFetched = reg.Counter("pcmcluster_merkle_slots_fetched_total",
		"Full replica slots fetched by the Merkle exchange for reconciliation — O(divergence), not O(blocks).")
	const mpName = "pcmcluster_merkle_partitions_total"
	const mpHelp = "Merkle anti-entropy partition exchanges, by outcome."
	m.mkPartsClean = reg.Counter(mpName, mpHelp, obs.L("outcome", "clean")...)
	m.mkPartsDivergent = reg.Counter(mpName, mpHelp, obs.L("outcome", "divergent")...)
	m.mkPartsUnavailable = reg.Counter(mpName, mpHelp, obs.L("outcome", "unavailable")...)
	m.mkFallback = reg.Counter(mpName, mpHelp, obs.L("outcome", "fallback_sweep")...)

	reg.GaugeFunc("pcmcluster_storage_overhead_ratio",
		"Stored copies per data byte: RF mirrored, (K+M)/K coded.",
		func() float64 { return c.StorageOverhead() })
	if c.coded {
		reg.GaugeFunc("pcmcluster_coding_data_fragments",
			"Data fragments per stripe (K).",
			func() float64 { return float64(c.codec.K) })
		reg.GaugeFunc("pcmcluster_coding_parity_fragments",
			"Parity fragments per stripe (M).",
			func() float64 { return float64(c.codec.M) })
	}
	const ecrName = "pcmcluster_ec_reconstructions_total"
	const ecrHelp = "Degraded reconstructions: blocks decoded through parity math instead of the systematic fast path, by initiating subsystem."
	m.ecReconstructRead = reg.Counter(ecrName, ecrHelp, obs.L("source", "read")...)
	m.ecReconstructAE = reg.Counter(ecrName, ecrHelp, obs.L("source", "antientropy")...)
	m.ecReconstructTransfer = reg.Counter(ecrName, ecrHelp, obs.L("source", "transfer")...)
	m.ecReconstructFailed = reg.Counter("pcmcluster_ec_reconstruct_failures_total",
		"Reconstruction attempts that failed decode or the stripe CRC check; the read waits or fails typed, never serves the bytes.")
	const echName = "pcmcluster_ec_hedged_fanouts_total"
	const echHelp = "Coded reads that widened from the K-fragment fast path to the full stripe group, by trigger."
	m.ecHedgedStraggler = reg.Counter(echName, echHelp, obs.L("cause", "straggler")...)
	m.ecHedgedFailure = reg.Counter(echName, echHelp, obs.L("cause", "failure")...)
	m.ecFragRepairs = reg.Counter("pcmcluster_ec_fragment_repairs_total",
		"Fragment slots rewritten from a reconstructed stripe (all repair paths).")
	m.ecRealigned = reg.Counter("pcmcluster_ec_fragments_realigned_total",
		"Current-version fragments rewritten because a membership reshuffle left them stored under a stale index.")

	return m
}

// registerNode installs one node's per-address instruments. Counter
// registration is idempotent, so an address that drains out and later
// rejoins keeps accumulating on the same series; the gauges resolve
// the node by address at collection time for the same reason — the
// first-registered callback must keep describing whoever currently
// holds the address.
func (m *metrics) registerNode(n *node) {
	addr := n.addr
	labels := obs.L("node", addr)
	m.reg.GaugeFunc("pcmcluster_node_up",
		"Breaker verdict per node: 1 up, 0 down or removed.",
		func() float64 {
			if cur := m.c.nodeByAddr(addr); cur != nil && cur.currentState() == NodeUp {
				return 1
			}
			return 0
		}, labels...)
	m.reg.GaugeFunc("pcmcluster_node_hints_pending",
		"Hinted writes buffered for this node.",
		func() float64 {
			if cur := m.c.nodeByAddr(addr); cur != nil {
				return float64(cur.hintCount())
			}
			return 0
		}, labels...)
	const nopName = "pcmcluster_node_ops_total"
	const nopHelp = "Replica operations sent per node, by op."
	const nerrName = "pcmcluster_node_errors_total"
	const nerrHelp = "Replica operations that failed per node (any error class)."
	n.mReads = m.reg.Counter(nopName, nopHelp, obs.L("node", addr, "op", "read")...)
	n.mWrites = m.reg.Counter(nopName, nopHelp, obs.L("node", addr, "op", "write")...)
	n.mErrs = m.reg.Counter(nerrName, nerrHelp, labels...)
	if !m.c.traceOff {
		const rpName = "pcmcluster_node_reply_seconds"
		const rpHelp = "Replica reply round-trips per node, split by whether the reply counted toward its quorum or trailed it (the straggler tail). Buckets carry trace-ID exemplars."
		n.latReply = m.reg.Histogram(rpName, rpHelp, latBoundsSeconds,
			obs.L("node", addr, "position", "quorum")...)
		n.latReplyStraggler = m.reg.Histogram(rpName, rpHelp, latBoundsSeconds,
			obs.L("node", addr, "position", "straggler")...)
	}
}

// noteSlowQuorum counts one slow-quorum log entry on a per-straggler,
// per-class counter. Series are created lazily — the straggler set is
// only known at runtime — and Counter registration is idempotent, so
// repeat offenders accumulate on one series.
func (m *metrics) noteSlowQuorum(straggler, class string) {
	m.reg.Counter("pcmcluster_slow_quorums_total",
		"Quorum operations that failed or crossed the slow-quorum threshold, by attributed straggler node and error class.",
		obs.L("straggler", straggler, "class", class)...).Inc()
}

// nodeByAddr finds the current member with the given address, nil if
// none (drained out, or an aborted joiner).
func (c *Cluster) nodeByAddr(addr string) *node {
	for _, n := range c.epoch.Load().nodes {
		if n.addr == addr {
			return n
		}
	}
	return nil
}

// NodeStats is one node's slice of a ClusterStats snapshot.
type NodeStats struct {
	Addr         string `json:"addr"`
	State        string `json:"state"`
	Role         string `json:"role"`
	Reads        uint64 `json:"reads"`
	Writes       uint64 `json:"writes"`
	Errors       uint64 `json:"errors"`
	HintsPending int    `json:"hints_pending"`
}

// ClusterStats is a JSON-friendly snapshot of the cluster's counters —
// the loadgen report and test assertions read this instead of scraping
// the exposition text.
type ClusterStats struct {
	Blocks            int64   `json:"blocks"`
	ReplicationFactor int     `json:"replication_factor"`
	WriteQuorum       int     `json:"write_quorum"`
	ReadQuorum        int     `json:"read_quorum"`
	PartitionSlots    int64   `json:"partition_slots"`
	Coding            string  `json:"coding"`
	StorageOverhead   float64 `json:"storage_overhead"`

	Membership MembershipStatus `json:"membership"`

	QuorumReads        uint64 `json:"quorum_reads"`
	QuorumWrites       uint64 `json:"quorum_writes"`
	ReadQuorumFailures uint64 `json:"read_quorum_failures"`
	WriteQuorumFails   uint64 `json:"write_quorum_failures"`
	DegradedReads      uint64 `json:"degraded_reads"`
	DegradedWrites     uint64 `json:"degraded_writes"`

	ReadRepairs        uint64 `json:"read_repairs"`
	AntiEntropyRepairs uint64 `json:"antientropy_repairs"`
	RepairsSkipped     uint64 `json:"repairs_skipped"`
	RepairsFailed      uint64 `json:"repairs_failed"`
	DivergentStale     uint64 `json:"divergent_stale"`
	DivergentCorrupt   uint64 `json:"divergent_corrupt"`

	HintsQueued          uint64 `json:"hints_queued"`
	HintsReplayed        uint64 `json:"hints_replayed"`
	HintsDroppedStale    uint64 `json:"hints_dropped_stale"`
	HintsDroppedFull     uint64 `json:"hints_dropped_overflow"`
	HintsDroppedObsolete uint64 `json:"hints_dropped_obsolete"`
	NodeDownTransitions  uint64 `json:"node_down_transitions"`

	AntiEntropyClean       uint64 `json:"antientropy_clean"`
	AntiEntropyUnavailable uint64 `json:"antientropy_unavailable"`
	AntiEntropyPasses      uint64 `json:"antientropy_passes"`
	AntiEntropyThrottled   uint64 `json:"antientropy_throttled"`

	// Overload response: typed shed verdicts received, ops dropped on a
	// dry retry budget, brownout actions taken, and the current ladder
	// step.
	OverloadEvents       uint64 `json:"overload_events"`
	RetryBudgetExhausted uint64 `json:"retry_budget_exhausted"`
	AntiEntropyPaused    uint64 `json:"antientropy_paused"`
	RepairsDeferred      uint64 `json:"repairs_deferred"`
	BrownoutLevel        int    `json:"brownout_level"`

	JoinsStarted    uint64 `json:"joins_started"`
	JoinsCompleted  uint64 `json:"joins_completed"`
	JoinsAborted    uint64 `json:"joins_aborted"`
	DrainsStarted   uint64 `json:"drains_started"`
	DrainsCompleted uint64 `json:"drains_completed"`
	DrainsAborted   uint64 `json:"drains_aborted"`

	TransferSegments     uint64 `json:"transfer_segments"`
	TransferResumes      uint64 `json:"transfer_resumes"`
	TransferSlotsPushed  uint64 `json:"transfer_slots_pushed"`
	TransferSlotsSkipped uint64 `json:"transfer_slots_skipped"`
	DrainHintsReplayed   uint64 `json:"drain_hints_replayed"`
	DrainHintsStale      uint64 `json:"drain_hints_stale"`

	MerkleDigestRPCs       uint64 `json:"merkle_digest_rpcs"`
	MerkleSlotsFetched     uint64 `json:"merkle_slots_fetched"`
	MerklePartsClean       uint64 `json:"merkle_parts_clean"`
	MerklePartsDivergent   uint64 `json:"merkle_parts_divergent"`
	MerklePartsUnavailable uint64 `json:"merkle_parts_unavailable"`
	MerkleFallbackSweeps   uint64 `json:"merkle_fallback_sweeps"`

	// Erasure-coded placement.
	ECReconstructions     uint64 `json:"ec_reconstructions"`
	ECReconstructFailures uint64 `json:"ec_reconstruct_failures"`
	ECHedgedFanouts       uint64 `json:"ec_hedged_fanouts"`
	ECFragmentRepairs     uint64 `json:"ec_fragment_repairs"`
	ECFragmentsRealigned  uint64 `json:"ec_fragments_realigned"`

	// SlowQuorums counts ops that entered the slow-quorum log; SLOs
	// snapshots the availability and latency objectives (empty when
	// disabled).
	SlowQuorums uint64          `json:"slow_quorums"`
	SLOs        []obs.SLOStatus `json:"slos,omitempty"`

	Nodes []NodeStats `json:"nodes"`
}

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() ClusterStats {
	m := c.met
	st := ClusterStats{
		Blocks:            c.blocks,
		ReplicationFactor: c.rf,
		WriteQuorum:       c.w,
		ReadQuorum:        c.r,
		PartitionSlots:    c.partSlots,
		Coding:            c.Coding(),
		StorageOverhead:   c.StorageOverhead(),

		Membership: c.Membership(),

		QuorumReads:        m.quorumReads.Value(),
		QuorumWrites:       m.quorumWrites.Value(),
		ReadQuorumFailures: m.quorumFailRead.Value(),
		WriteQuorumFails:   m.quorumFailWrite.Value(),
		DegradedReads:      m.degradedReads.Value(),
		DegradedWrites:     m.degradedWrites.Value(),

		ReadRepairs:        m.repairsRead.Value(),
		AntiEntropyRepairs: m.repairsAntiEntropy.Value(),
		RepairsSkipped:     m.repairsSkipped.Value(),
		RepairsFailed:      m.repairsFailed.Value(),
		DivergentStale:     m.divergentStale.Value(),
		DivergentCorrupt:   m.divergentCorrupt.Value(),

		HintsQueued:          m.hintsQueued.Value(),
		HintsReplayed:        m.hintsReplayed.Value(),
		HintsDroppedStale:    m.hintsDroppedStale.Value(),
		HintsDroppedFull:     m.hintsDroppedFull.Value(),
		HintsDroppedObsolete: m.hintsObsolete.Value(),
		NodeDownTransitions:  m.nodeTransitions.Value(),

		AntiEntropyClean:       m.aeClean.Value(),
		AntiEntropyUnavailable: m.aeUnavailable.Value(),
		AntiEntropyPasses:      m.aePasses.Value(),
		AntiEntropyThrottled:   m.aeThrottled.Value(),

		OverloadEvents:       m.overloadEvents.Value(),
		RetryBudgetExhausted: m.retryBudgetExhausted.Value(),
		AntiEntropyPaused:    m.aePaused.Value(),
		RepairsDeferred:      m.repairsDeferred.Value(),
		BrownoutLevel:        c.brownoutLevel(),

		JoinsStarted:    m.joinsStarted.Value(),
		JoinsCompleted:  m.joinsCompleted.Value(),
		JoinsAborted:    m.joinsAborted.Value(),
		DrainsStarted:   m.drainsStarted.Value(),
		DrainsCompleted: m.drainsCompleted.Value(),
		DrainsAborted:   m.drainsAborted.Value(),

		TransferSegments:     m.transferSegments.Value(),
		TransferResumes:      m.transferResumes.Value(),
		TransferSlotsPushed:  m.transferSlotsPushed.Value(),
		TransferSlotsSkipped: m.transferSlotsSkipped.Value(),
		DrainHintsReplayed:   m.drainHintsReplayed.Value(),
		DrainHintsStale:      m.drainHintsStale.Value(),

		MerkleDigestRPCs:       m.mkDigestRPCs.Value(),
		MerkleSlotsFetched:     m.mkSlotsFetched.Value(),
		MerklePartsClean:       m.mkPartsClean.Value(),
		MerklePartsDivergent:   m.mkPartsDivergent.Value(),
		MerklePartsUnavailable: m.mkPartsUnavailable.Value(),
		MerkleFallbackSweeps:   m.mkFallback.Value(),

		ECReconstructions:     m.ecReconstructRead.Value() + m.ecReconstructAE.Value() + m.ecReconstructTransfer.Value(),
		ECReconstructFailures: m.ecReconstructFailed.Value(),
		ECHedgedFanouts:       m.ecHedgedStraggler.Value() + m.ecHedgedFailure.Value(),
		ECFragmentRepairs:     m.ecFragRepairs.Value(),
		ECFragmentsRealigned:  m.ecRealigned.Value(),

		SlowQuorums: c.SlowQuorumTotal(),
	}
	if c.sloAvail != nil {
		st.SLOs = append(st.SLOs, c.sloAvail.Status(), c.sloLat.Status())
	}
	for _, n := range c.epoch.Load().nodes {
		st.Nodes = append(st.Nodes, NodeStats{
			Addr:         n.addr,
			State:        n.currentState().String(),
			Role:         n.currentRole().String(),
			Reads:        n.mReads.Value(),
			Writes:       n.mWrites.Value(),
			Errors:       n.mErrs.Value(),
			HintsPending: n.hintCount(),
		})
	}
	return st
}

// Registry returns the metrics registry backing this cluster, for
// mounting on an obs.AdminHandler.
func (c *Cluster) Registry() *obs.Registry { return c.met.reg }

// Health reports breaker state per node for /healthz: healthy while
// enough read-serving nodes (the authoritative placement's members)
// are up to meet both quorums.
func (c *Cluster) Health() obs.HealthReport {
	ep := c.epoch.Load()
	up := 0
	rep := obs.HealthReport{}
	for _, n := range ep.nodes {
		st := n.currentState()
		if st == NodeUp && containsNode(ep.cur.nodes, n) {
			up++
		}
		rep.Components = append(rep.Components, obs.ComponentHealth{
			Name:   "node/" + n.addr,
			State:  st.String() + "/" + n.currentRole().String(),
			Detail: strconv.Itoa(n.hintCount()) + " hints pending",
		})
	}
	rep.Healthy = up >= c.w && up >= c.r
	// Brownout is informational like the SLO burn state: a degraded-mode
	// cluster still serves quorums, it just sheds background work.
	rep.Components = append(rep.Components, obs.ComponentHealth{
		Name:   "overload",
		State:  brownoutName(c.brownoutLevel()),
		Detail: strconv.FormatUint(c.met.overloadEvents.Value(), 10) + " shed verdicts total",
	})
	// SLO burn state is informational: a burning objective should page,
	// not fail readiness (see obs.SLO.Health).
	if c.sloAvail != nil {
		rep.Components = append(rep.Components, c.sloAvail.Health(), c.sloLat.Health())
	}
	return rep
}

// ClusterzInfo is the /clusterz summary body: the stats snapshot plus
// the slow-quorum log with straggler attribution.
type ClusterzInfo struct {
	Stats       ClusterStats      `json:"stats"`
	SlowQuorums []SlowQuorumEntry `json:"slow_quorums,omitempty"`
}

// Clusterz assembles the /clusterz summary.
func (c *Cluster) Clusterz() ClusterzInfo {
	return ClusterzInfo{Stats: c.Stats(), SlowQuorums: c.SlowQuorums()}
}
