package pcmcluster

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pcmserve"
)

// Cluster-side tracing.
//
// Every foreground ReadBlock/WriteBlock runs under a trace ID
// (obs.EnsureTrace) that rides the reserved frame field of every
// replica RPC, so each node's own /tracez holds server-side spans for
// the same ID — /clusterz?trace=<hex> stitches them back into one
// timeline. The cluster side records its half here: per-replica RPC
// events, stripe-lock waits, the quorum-met marker, hint enqueues.
// Background work (read-repair, hint replay, anti-entropy, membership
// transfers) gets its own cause-tagged root traces, so repair storms
// are attributable in /tracez instead of blending into user traffic.
//
// The same per-reply bookkeeping feeds straggler attribution: each
// node's reply time lands in a "quorum" or "straggler" histogram
// (position relative to the op's quorum point) with the trace ID as an
// OpenMetrics exemplar, and ops that miss the slow-quorum threshold or
// fail leave a slow-quorum log entry naming the slowest (or failed)
// replica and its error class.

// maxTraceEvents caps one trace's event list; overflow is counted and
// marked with a trailing events_truncated entry.
const maxTraceEvents = 48

// opTrace accumulates one operation's cluster-side spans and replica
// reply records. A nil *opTrace no-ops every method, so call sites
// stay unconditional while Config.DisableTracing (the untraced bench
// baseline) skips collection entirely.
type opTrace struct {
	c     *Cluster
	id    uint64
	op    string
	block int64
	cause string
	start time.Time

	mu        sync.Mutex
	events    []obs.TraceEvent
	truncated int
	quorumAt  time.Duration // 0 until the quorum point
	failClass string        // "" unless the op failed
	replies   []SlowQuorumReply
}

// startTrace opens a trace record; nil when tracing is disabled.
func (c *Cluster) startTrace(op string, block int64, id uint64, cause string) *opTrace {
	if c.traceOff {
		return nil
	}
	return &opTrace{c: c, id: id, op: op, block: block, cause: cause, start: time.Now()}
}

// bgTrace opens a cause-tagged root trace for one background attempt
// and returns a context carrying its ID (over c.ctx, so the attempt
// still dies with the cluster). The context is tagged background class,
// so the RPCs it issues are first to shed under server queue pressure.
// Callers add their own per-attempt deadline.
func (c *Cluster) bgTrace(op, cause string, block int64) (context.Context, *opTrace) {
	ctx := pcmserve.WithBackground(c.ctx)
	if c.traceOff {
		return ctx, nil
	}
	id := obs.NextTraceID()
	return obs.ContextWithTrace(ctx, id), c.startTrace(op, block, id, cause)
}

func (t *opTrace) add(e obs.TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= maxTraceEvents {
		t.truncated++
		return
	}
	t.events = append(t.events, e)
}

// span records a named event that began at begin and just ended.
func (t *opTrace) span(name, node string, begin time.Time, err error) {
	if t == nil {
		return
	}
	t.add(obs.TraceEvent{
		Name: name, Node: node,
		Start: begin.Sub(t.start), Dur: time.Since(begin),
		Err: errClass(err),
	})
}

// mark records a zero-duration event at now.
func (t *opTrace) mark(name string) {
	if t == nil {
		return
	}
	t.add(obs.TraceEvent{Name: name, Start: time.Since(t.start)})
}

// reply records one replica's answer to a quorum op: a trace event,
// a slow-quorum reply record, and the node's positional reply
// histogram with this trace's ID as the exemplar.
func (t *opTrace) reply(name string, n *node, rtt time.Duration, err error, straggler bool) {
	if t == nil {
		return
	}
	class := errClass(err)
	t.add(obs.TraceEvent{Name: name, Node: n.addr, Start: time.Since(t.start) - rtt, Dur: rtt, Err: class})
	h := n.latReply
	if straggler {
		h = n.latReplyStraggler
	}
	if h != nil {
		h.ObserveTrace(rtt.Seconds(), t.id)
	}
	t.mu.Lock()
	t.replies = append(t.replies, SlowQuorumReply{Node: n.addr, RTT: rtt, Err: class, Straggler: straggler})
	t.mu.Unlock()
}

// quorum marks the op's quorum point.
func (t *opTrace) quorum() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.quorumAt = time.Since(t.start)
	t.mu.Unlock()
	t.add(obs.TraceEvent{Name: "quorum_met", Start: time.Since(t.start)})
}

// fail marks the op as failed with err's class.
func (t *opTrace) fail(err error) {
	if t == nil {
		return
	}
	class := errClass(err)
	if class == "" {
		class = "error"
	}
	t.mu.Lock()
	t.failClass = class
	t.mu.Unlock()
	t.add(obs.TraceEvent{Name: "quorum_failed", Start: time.Since(t.start), Err: class})
}

// finish closes the record: observes the trace into the cluster trace
// log and, for foreground ops that failed or crossed the slow-quorum
// threshold, appends a slow-quorum log entry attributing the straggler.
func (t *opTrace) finish() {
	if t == nil {
		return
	}
	total := time.Since(t.start)
	t.mu.Lock()
	if t.truncated > 0 {
		t.events = append(t.events, obs.TraceEvent{
			Name: "events_truncated", Start: total, Err: strconv.Itoa(t.truncated) + " dropped",
		})
	}
	tr := obs.Trace{
		ID: t.id, Op: t.op, Offset: t.block, Bytes: DataBytes,
		Start: t.start, Cause: t.cause, Total: total, Events: t.events,
	}
	quorumAt, failClass := t.quorumAt, t.failClass
	replies := t.replies
	t.mu.Unlock()

	c := t.c
	c.traces.Observe(tr)
	if t.cause != "" {
		return // background root traces have no quorum to attribute
	}
	// Two ways in: the quorum itself was slow (user-visible latency), or
	// the quorum was fine but a straggling replica pushed the op's total
	// past the threshold (tail risk: one more failure and the straggler
	// sets the quorum pace).
	slowQuorum := c.slowQuorumThreshold > 0 && quorumAt >= c.slowQuorumThreshold
	slowTail := c.slowQuorumThreshold > 0 && total >= c.slowQuorumThreshold
	if failClass == "" && !slowQuorum && !slowTail {
		return
	}
	entry := SlowQuorumEntry{
		Time:          t.start,
		TraceID:       strconv.FormatUint(t.id, 16),
		Op:            t.op,
		Block:         t.block,
		QuorumLatency: quorumAt,
		Total:         total,
		ErrClass:      failClass,
		Replies:       replies,
	}
	// Attribution: the failed replica if any, else the slowest reply.
	var worst *SlowQuorumReply
	for i := range replies {
		r := &replies[i]
		switch {
		case worst == nil:
			worst = r
		case (r.Err != "") != (worst.Err != ""):
			if r.Err != "" {
				worst = r
			}
		case r.RTT > worst.RTT:
			worst = r
		}
	}
	if worst != nil {
		entry.Straggler = worst.Node
		if entry.ErrClass == "" {
			entry.ErrClass = worst.Err
		}
	}
	if entry.ErrClass == "" {
		if slowQuorum {
			entry.ErrClass = "slow"
		} else {
			entry.ErrClass = "straggler_tail"
		}
	}
	if entry.Straggler == "" {
		entry.Straggler = "none"
	}
	c.slowQ.push(entry)
	c.met.noteSlowQuorum(entry.Straggler, entry.ErrClass)
}

// errClass names an error for trace events and the slow-quorum log.
func errClass(err error) string {
	if err == nil {
		return ""
	}
	switch {
	case errors.Is(err, errNodeDown):
		return "node_down"
	case errors.Is(err, pcmserve.ErrOverloaded), errors.Is(err, pcmserve.ErrDeadlineExceeded):
		return "overloaded"
	case errors.Is(err, pcmserve.ErrRetryBudgetExhausted):
		return "retry_budget"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	switch pcmserve.Classify(err) {
	case pcmserve.ClassCorrupt:
		return "corrupt"
	case pcmserve.ClassPermanent:
		return "permanent"
	}
	return "transient"
}

// SlowQuorumReply is one replica's timing inside a SlowQuorumEntry.
type SlowQuorumReply struct {
	Node string        `json:"node"`
	RTT  time.Duration `json:"rtt_ns"`
	Err  string        `json:"err,omitempty"`
	// Straggler marks replies that arrived after the quorum point.
	Straggler bool `json:"straggler,omitempty"`
}

// SlowQuorumEntry is one slow or failed quorum op with straggler
// attribution: which replica was slowest (or failed), with every
// reply's timing, and the trace ID to stitch the full cross-node
// timeline from /clusterz.
type SlowQuorumEntry struct {
	Time    time.Time `json:"time"`
	TraceID string    `json:"trace_id"`
	Op      string    `json:"op"`
	Block   int64     `json:"block"`
	// QuorumLatency is issue-to-quorum (0 when the quorum never met);
	// Total includes the straggler tail.
	QuorumLatency time.Duration     `json:"quorum_latency_ns"`
	Total         time.Duration     `json:"total_ns"`
	Straggler     string            `json:"straggler"`
	ErrClass      string            `json:"err_class"`
	Replies       []SlowQuorumReply `json:"replies"`
}

// slowQuorumLog is a bounded ring of SlowQuorumEntry.
type slowQuorumLog struct {
	mu    sync.Mutex
	buf   []SlowQuorumEntry
	next  int
	total atomic.Uint64
}

func newSlowQuorumLog(capacity int) *slowQuorumLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &slowQuorumLog{buf: make([]SlowQuorumEntry, 0, capacity)}
}

func (l *slowQuorumLog) push(e SlowQuorumEntry) {
	l.total.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % cap(l.buf)
}

func (l *slowQuorumLog) entries() []SlowQuorumEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuorumEntry, 0, len(l.buf))
	if len(l.buf) == cap(l.buf) {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = append(out, l.buf...)
	}
	return out
}

// SlowQuorums returns the retained slow-quorum log, oldest first.
func (c *Cluster) SlowQuorums() []SlowQuorumEntry { return c.slowQ.entries() }

// SlowQuorumTotal counts every op that entered the slow-quorum log,
// including entries since evicted.
func (c *Cluster) SlowQuorumTotal() uint64 { return c.slowQ.total.Load() }

// Traces returns the cluster-side trace log, for mounting on an
// obs.AdminHandler (and as the Stitcher's local half).
func (c *Cluster) Traces() *obs.TraceLog { return c.traces }
