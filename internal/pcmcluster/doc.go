// Package pcmcluster replicates 64-byte blocks across N independent
// pcmserve nodes — the paper's redundancy-plus-background-repair
// argument lifted one level, from cells and blocks inside a chip to
// whole devices in a fleet.
//
// Placement is rendezvous hashing: each block hashes every node and
// lives on the ReplicationFactor highest scorers, so the layout is
// deterministic from the node list alone (in any order) and no
// membership table has to be replicated. Every replica stores the
// block in an 80-byte slot — 64 data bytes plus a 16-byte sideband
// trailer carrying a version tag, a CRC32-C over the data, and a
// CRC32-C self-check over the trailer (the PR 4 sideband technique
// applied cross-node). An all-zero slot means never written.
//
// Writes stamp a cluster-unique, monotonically increasing version and
// fan out to all replicas; WriteQuorum acknowledgements make the write
// durable and the call returns while stragglers finish in the
// background. Reads fan out and need ReadQuorum structurally valid
// replies; the highest version wins (last-writer-wins), and because
// ReadQuorum+WriteQuorum > ReplicationFactor every read set intersects
// every acknowledged write set, so an acknowledged write is never
// silently missed. Divergent replicas — stale versions or slots whose
// CRCs fail — are rewritten from the winner (read-repair), with a
// re-check under a per-block stripe lock so a repair can never clobber
// a newer concurrent write from this client.
//
// Node health is a breaker driven by pcmserve.Classify: consecutive
// transient failures (connection loss, timeouts) mark a node down, and
// probes re-admit it; typed in-band errors prove the node alive.
// Writes to down nodes buffer as hinted handoff and replay, newest
// version per block, when the node returns. A background anti-entropy
// sweeper walks the block space like the scrubber and reconciles
// replicas that foreground traffic never reads.
package pcmcluster
