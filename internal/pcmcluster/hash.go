package pcmcluster

import (
	crand "crypto/rand"
	"encoding/binary"
	"hash/fnv"
	"time"
)

// randomSeed draws a nonzero per-process seed so distinct cluster
// clients get decorrelated version tags and retry jitter by default;
// it falls back to the clock if the entropy source fails.
func randomSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) | 1
	}
	s := binary.LittleEndian.Uint64(b[:])
	if s == 0 {
		s = 1
	}
	return s
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// permutation used as the rendezvous scoring hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nodeSeed derives a node's stable hash identity from its address, so
// placement depends only on the membership set, never on list order.
func nodeSeed(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return h.Sum64()
}

// rendezvousScore ranks node (by seed) for block b: each block
// independently permutes the node set and its replicas are the top
// scorers — highest-random-weight (rendezvous) hashing.
func rendezvousScore(seed uint64, b int64) uint64 {
	return mix64(seed ^ mix64(uint64(b)+0x9e3779b97f4a7c15))
}

// maxPartitions bounds how many placement partitions a cluster tracks:
// membership transfers checkpoint per partition, and anti-entropy
// digests one partition per exchange, so the count must stay walkable.
const maxPartitions = 2048

// defaultPartitionSlots picks the placement granularity: placement is
// computed per PARTITION of consecutive slots, not per slot, so a
// partition is the unit of membership transfer and Merkle exchange
// (hashing a range of slots across replicas is only meaningful when
// they own the same contiguous range). Small clusters get one slot per
// partition — identical placement to per-block rendezvous hashing —
// and the size doubles only past maxPartitions so huge block counts
// stay tractable.
func defaultPartitionSlots(blocks int64) int64 {
	p := int64(1)
	for (blocks+p-1)/p > maxPartitions {
		p *= 2
	}
	return p
}

// replicasFor returns the indices of the rf highest-scoring nodes for
// block b, in descending score order.
func replicasFor(seeds []uint64, b int64, rf int) []int {
	top := make([]int, 0, rf)
	scores := make([]uint64, 0, rf)
	for i, s := range seeds {
		sc := rendezvousScore(s, b)
		// Insertion into the small descending top-rf list.
		pos := len(top)
		for pos > 0 && sc > scores[pos-1] {
			pos--
		}
		if pos == rf {
			continue
		}
		top = append(top, 0)
		scores = append(scores, 0)
		copy(top[pos+1:], top[pos:])
		copy(scores[pos+1:], scores[pos:])
		top[pos] = i
		scores[pos] = sc
		if len(top) > rf {
			top = top[:rf]
			scores = scores[:rf]
		}
	}
	return top
}
