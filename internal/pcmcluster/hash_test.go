package pcmcluster

import (
	"fmt"
	"testing"
)

func testSeeds(n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = nodeSeed(fmt.Sprintf("10.0.0.%d:7070", i))
	}
	return seeds
}

func TestReplicasForDeterministicAndDistinct(t *testing.T) {
	seeds := testSeeds(5)
	for b := int64(0); b < 200; b++ {
		reps := replicasFor(seeds, b, 3)
		if len(reps) != 3 {
			t.Fatalf("block %d: %d replicas, want 3", b, len(reps))
		}
		seen := map[int]bool{}
		for _, idx := range reps {
			if idx < 0 || idx >= 5 || seen[idx] {
				t.Fatalf("block %d: bad replica set %v", b, reps)
			}
			seen[idx] = true
		}
		again := replicasFor(seeds, b, 3)
		for i := range reps {
			if reps[i] != again[i] {
				t.Fatalf("block %d: placement not deterministic: %v vs %v", b, reps, again)
			}
		}
	}
}

// TestReplicasForOrderIndependent: placement must depend on the set of
// addresses, not the order the node list was written in.
func TestReplicasForOrderIndependent(t *testing.T) {
	seeds := testSeeds(5)
	shuffled := []uint64{seeds[3], seeds[0], seeds[4], seeds[2], seeds[1]}
	perm := []int{3, 0, 4, 2, 1} // shuffled[i] == seeds[perm[i]]
	for b := int64(0); b < 100; b++ {
		a := replicasFor(seeds, b, 3)
		s := replicasFor(shuffled, b, 3)
		for i := range a {
			if a[i] != perm[s[i]] {
				t.Fatalf("block %d: placement depends on node order: %v vs %v", b, a, s)
			}
		}
	}
}

// TestReplicasForBalance: rendezvous hashing should spread primaries
// roughly evenly; no node may be starved or doubly loaded.
func TestReplicasForBalance(t *testing.T) {
	seeds := testSeeds(5)
	const blocks = 5000
	counts := make([]int, 5)
	for b := int64(0); b < blocks; b++ {
		for _, idx := range replicasFor(seeds, b, 3) {
			counts[idx]++
		}
	}
	want := blocks * 3 / 5
	for i, got := range counts {
		if got < want*8/10 || got > want*12/10 {
			t.Fatalf("node %d holds %d replicas, want %d ±20%%: %v", i, got, want, counts)
		}
	}
}

func TestReplicasForFullSet(t *testing.T) {
	seeds := testSeeds(3)
	reps := replicasFor(seeds, 7, 3)
	seen := map[int]bool{}
	for _, idx := range reps {
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("rf == nodes must place on every node, got %v", reps)
	}
}
