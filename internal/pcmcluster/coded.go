package pcmcluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ecstripe"
	"repro/internal/obs"
	"repro/internal/pcmserve"
)

// codedOutcome classifies one election attempt over the fragment
// replies gathered so far.
type codedOutcome int

const (
	// codedWait: no version is decidable yet, but unheard replicas can
	// still change the verdict — keep collecting.
	codedWait codedOutcome = iota
	// codedDone: a winning version reconstructed (and verified against
	// its stripe CRC).
	codedDone
	// codedZero: every decidable version is provably unacknowledged and
	// enough replicas answered — the block reads as never written.
	codedZero
	// codedFail: all replies are in and no version can be served
	// without risking staleness; the read must fail typed.
	codedFail
)

// codedElection is the result of electing a stripe winner from
// fragment replies.
type codedElection struct {
	outcome codedOutcome
	block   []byte
	winner  blockMeta
	// reconstructed is true when parity math ran — the winning set was
	// not simply the K data fragments in their home positions.
	reconstructed bool
}

// electCoded tries to elect and reconstruct the newest acknowledged
// version from the replies so far. nReps is the total number of
// replicas that could possibly hold a fragment of this stripe; every
// replica WITHOUT a structurally valid reply in `all` — not yet
// launched, still in flight, errored (a down node may have acked
// before dying), or corrupt — counts as an unknown possible holder of
// any version. A valid reply at another version or an unwritten slot
// proves its node holds nothing else (one slot per node).
//
// Versions are visited newest-first (version order, stripe-CRC
// tiebreak — identical to blockMeta.newer). A version with K distinct
// fragment indices reconstructs and wins. A version with fewer may be
// skipped ONLY when provably unacknowledged: count(v) + unknown +
// shadow < W — where shadow counts replies in already-skipped NEWER
// groups, whose nodes may have acked v before the newer write
// overwrote them — means the writer cannot have collected W fragment
// acks even if every uncertain replica acked v. Otherwise the
// election waits (more info could decide it) or fails — never serves
// an older version (or zeros) past a possibly-acknowledged newer one.
// The caller converts codedWait into a typed failure when no further
// replies can arrive.
func (c *Cluster) electCoded(all []replicaRead, nReps int) codedElection {
	k := c.codec.K
	groups := make(map[blockMeta][]replicaRead)
	valids := 0
	for _, res := range all {
		if !res.valid() {
			continue
		}
		valids++
		if res.status == slotOK {
			groups[res.meta] = append(groups[res.meta], res)
		}
	}
	unknown := nReps - valids
	metas := make([]blockMeta, 0, len(groups))
	for m := range groups {
		metas = append(metas, m)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].newer(metas[j]) })

	undecidable := func() codedElection {
		if unknown > 0 {
			return codedElection{outcome: codedWait}
		}
		return codedElection{outcome: codedFail}
	}
	shadow := 0
	for _, meta := range metas {
		grp := groups[meta]
		frags := make([]ecstripe.Fragment, 0, len(grp))
		seen := make(map[uint8]bool, len(grp))
		for _, res := range grp {
			if !seen[res.fragIdx] {
				seen[res.fragIdx] = true
				frags = append(frags, ecstripe.Fragment{Index: int(res.fragIdx), Data: res.data})
			}
		}
		if len(frags) >= k {
			if block, systematic, err := c.reconstructStripe(frags, meta); err == nil {
				return codedElection{outcome: codedDone, block: block, winner: meta, reconstructed: !systematic}
			}
			// Reconstruction or stripe-CRC verification failed — the
			// group is untrustworthy. Fall through to the skip guard: it
			// is treated like a group that cannot (yet) be served.
		}
		if len(grp)+unknown+shadow >= c.w {
			// Possibly acknowledged: serving anything older would be a
			// stale read.
			return undecidable()
		}
		// Provably unacknowledged: skip to the next-older version. Its
		// nodes join the shadow — they may have acked an older version
		// before this one overwrote them.
		shadow += len(grp)
	}
	if valids >= c.r && shadow+unknown < c.w {
		// Every written version was provably unacknowledged and an
		// acknowledged write cannot hide entirely among the uncertain
		// replicas (unknown plus overwritten-by-skipped-versions): the
		// block provably reads as never written.
		return codedElection{outcome: codedZero, block: make([]byte, DataBytes)}
	}
	return undecidable()
}

// reconstructStripe decodes one version group's fragments into the
// block and verifies the result against the stripe CRC stamped by the
// writer. systematic reports whether the fast copy path sufficed (the
// K data fragments present under their home indices).
func (c *Cluster) reconstructStripe(frags []ecstripe.Fragment, meta blockMeta) (block []byte, systematic bool, err error) {
	k := c.codec.K
	data, err := c.codec.Reconstruct(frags)
	if err != nil {
		c.met.ecReconstructFailed.Inc()
		return nil, false, err
	}
	block = make([]byte, 0, DataBytes)
	for _, d := range data {
		block = append(block, d...)
	}
	if ecstripe.StripeCRC(block) != meta.DataCRC {
		// Every fragment passed its own CRC yet the stripe does not —
		// a mixed or forged group. Refuse it rather than serve bytes
		// nobody wrote.
		c.met.ecReconstructFailed.Inc()
		return nil, false, fmt.Errorf("pcmcluster: reconstructed stripe fails its CRC (version %d)", meta.Version)
	}
	systematic = len(frags) >= k
	for i := 0; systematic && i < k; i++ {
		found := false
		for _, f := range frags {
			if f.Index == i {
				found = true
				break
			}
		}
		systematic = found
	}
	return block, systematic, nil
}

// hedge RTT tracking: an EWMA of fragment reply round-trips drives the
// straggler cutoff — the delay after which a coded read launches the
// parity fragments it skipped in phase one.
const hedgeInitRTT = 2 * time.Millisecond

func (c *Cluster) noteFragRTT(d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		cur := c.hedgeRTT.Load()
		next := uint64((time.Duration(cur)*7 + d) / 8)
		if c.hedgeRTT.CompareAndSwap(cur, next) {
			return
		}
	}
}

// hedgeDelay is the straggler cutoff: 3× the reply EWMA, clamped to
// [500µs, OpTimeout/4] so a cold cluster hedges fast and a slow one
// cannot starve the degraded-read path of its time budget.
func (c *Cluster) hedgeDelay() time.Duration {
	d := 3 * time.Duration(c.hedgeRTT.Load())
	if d < 500*time.Microsecond {
		d = 500 * time.Microsecond
	}
	if max := c.opTimeout / 4; d > max {
		d = max
	}
	return d
}

// readCodedBlock is the coded-mode read path. Phase one fans out to
// the K replicas holding the stripe's data fragments (position-
// aligned, they satisfy the read with plain copies). Parity replicas
// launch when a phase-one reply fails, proves corrupt, or the
// straggler cutoff elapses; the election then reconstructs the block
// from any K distinct fragments — the degraded read that rides out up
// to M down or slow nodes.
func (c *Cluster) readCodedBlock(ctx context.Context, b int64) ([]byte, error) {
	c.met.quorumReads.Inc()
	t0 := time.Now()

	var traceID uint64
	var ot *opTrace
	if !c.traceOff {
		ctx, traceID = obs.EnsureTrace(ctx)
		ot = c.startTrace("quorum_read", b, traceID, "")
	}

	ep := c.epoch.Load()
	reps := ep.cur.replicas(c.partOf(b), c.rf)
	k := c.codec.K
	results := make(chan replicaRead, len(reps))
	launched := make([]bool, len(reps))
	inFlight := 0
	launch := func(i int) {
		if launched[i] {
			return
		}
		launched[i] = true
		inFlight++
		c.bg.Add(1)
		go func(n *node) {
			defer c.bg.Done()
			sent := time.Now()
			res := c.readReplica(ctx, n, b)
			res.rtt = time.Since(sent)
			results <- res
		}(reps[i])
	}
	for i := 0; i < k; i++ {
		launch(i)
	}
	hedged := false
	launchRest := func(cause string) {
		if hedged {
			return
		}
		hedged = true
		ot.mark("hedge_" + cause)
		if cause == "straggler" {
			c.met.ecHedgedStraggler.Inc()
		} else {
			c.met.ecHedgedFailure.Inc()
		}
		for i := range reps {
			launch(i)
		}
	}
	hedgeTimer := time.NewTimer(c.hedgeDelay())
	defer hedgeTimer.Stop()

	var all []replicaRead
	invalid := false
	fail := func(err error) ([]byte, error) {
		ot.fail(err)
		c.sloAvail.Record(false)
		c.sloLat.Record(false)
		c.drainCodedReads(b, inFlight-len(all), results, all, reps, codedElection{}, ot)
		c.met.quorumFailRead.Inc()
		return nil, err
	}
	for {
		el := c.electCoded(all, len(reps))
		if el.outcome == codedWait && inFlight == len(all) {
			if !hedged {
				// Phase one is fully in but undecidable (a failed or
				// corrupt fragment, or a version needing parity): go wide.
				launchRest("failure")
				continue
			}
			// Every launched reply is in and the unknown replicas are
			// dead or corrupt — no further reply can decide the read.
			el = codedElection{outcome: codedFail}
		}
		if el.outcome == codedDone || el.outcome == codedZero {
			ot.quorum()
			quorumLat := time.Since(t0)
			c.met.latRead.ObserveTrace(quorumLat.Seconds(), traceID)
			c.sloAvail.Record(true)
			c.sloLat.Record(quorumLat <= c.sloLatTarget)
			if el.reconstructed {
				c.met.ecReconstructRead.Inc()
			}
			if invalid || el.reconstructed {
				c.met.degradedReads.Inc()
			}
			c.bg.Add(1)
			go func(remaining int, all []replicaRead) {
				defer c.bg.Done()
				c.drainCodedReads(b, remaining, results, all, reps, el, ot)
			}(inFlight-len(all), all)
			out := make([]byte, DataBytes)
			copy(out, el.block)
			return out, nil
		}
		if el.outcome == codedFail {
			if fp := firstProblem(all); fp != nil {
				return fail(fmt.Errorf("pcmcluster: read block %d: cannot assemble %d distinct fragments from %d replies (last: %w): %w",
					b, c.r, len(all), fp, ErrReadQuorum))
			}
			return fail(fmt.Errorf("pcmcluster: read block %d: %d replies cannot prove any version safe to serve: %w",
				b, len(all), ErrReadQuorum))
		}
		select {
		case res := <-results:
			all = append(all, res)
			ot.reply("replica_read", res.n, res.rtt, res.err, false)
			if res.valid() {
				c.noteFragRTT(res.rtt)
			} else {
				invalid = true
				launchRest("failure")
			}
		case <-hedgeTimer.C:
			launchRest("straggler")
		case <-ctx.Done():
			return fail(fmt.Errorf("pcmcluster: read block %d: %d replies: %w: %w",
				b, len(all), ctx.Err(), ErrReadQuorum))
		}
	}
}

// drainCodedReads consumes outstanding fragment replies, closes the
// trace, and — when the election produced a winner — repairs every
// divergent fragment: stale or corrupt fragments are re-encoded from
// the reconstructed block at the replica's canonical index, and
// aligned-version fragments stored under a stale index (a membership
// reshuffle moved the node) are rewritten in place.
func (c *Cluster) drainCodedReads(b int64, remaining int, results chan replicaRead, all []replicaRead, reps []*node, el codedElection, ot *opTrace) {
	for ; remaining > 0; remaining-- {
		res := <-results
		ot.reply("replica_read", res.n, res.rtt, res.err, true)
		all = append(all, res)
	}
	ot.finish()
	if el.outcome != codedDone {
		return
	}
	c.repairCodedReplicas(b, reps, all, el, "read_repair", c.met.repairsRead)
}

// repairCodedReplicas reconciles fragment replies against an elected
// winner, rewriting divergent fragments. It is shared by the read path
// (cause "read_repair") and the anti-entropy sweep.
func (c *Cluster) repairCodedReplicas(b int64, reps []*node, all []replicaRead, el codedElection, cause string, counter *obs.Counter) (repaired bool) {
	dataFrags, err := c.codec.Split(el.block)
	if err != nil {
		return false
	}
	for _, res := range all {
		if res.err != nil {
			continue
		}
		pos := nodePosition(reps, res.n)
		if pos < 0 {
			continue
		}
		switch {
		case res.status == slotCorrupt || el.winner.newer(res.meta):
			if res.status == slotCorrupt {
				c.met.divergentCorrupt.Inc()
			} else {
				c.met.divergentStale.Inc()
			}
			slot, err := c.encodeFragmentSlot(dataFrags, pos, el.winner.Version, el.winner.DataCRC)
			if err != nil {
				continue
			}
			repaired = true
			if c.brownoutLevel() >= brownoutDeferRepairs {
				c.queueHint(res.n, b, slot, el.winner.Version)
				c.met.repairsDeferred.Inc()
				continue
			}
			rctx, rot := c.bgTrace(cause, cause, b)
			c.repairReplica(rctx, rot, res.n, b, slot, el.winner, counter)
			rot.finish()
		case res.status == slotOK && res.meta == el.winner && int(res.fragIdx) != pos:
			repaired = true
			c.realignFragment(b, res.n, pos, dataFrags, el.winner)
		}
	}
	return repaired
}

// realignFragment rewrites one replica's fragment at its canonical
// placement index. The stored fragment is valid data at the winning
// version — only its index is a leftover from an older placement — so
// version-ordered repair would skip it; this path rechecks and
// rewrites on index alone. Regression safety matches repairReplica:
// under the stripe lock, any newer (or re-aligned) slot aborts the
// write.
func (c *Cluster) realignFragment(b int64, n *node, pos int, dataFrags [][]byte, winner blockMeta) {
	if n.currentState() != NodeUp || n.isOverloaded() {
		return // anti-entropy retries once the node is reachable again
	}
	slot, err := c.encodeFragmentSlot(dataFrags, pos, winner.Version, winner.DataCRC)
	if err != nil {
		return
	}
	ctx, ot := c.bgTrace("fragment_realign", "antientropy", b)
	defer ot.finish()
	ctx, cancel := context.WithTimeout(ctx, c.opTimeout)
	defer cancel()
	mu := c.stripe(b)
	mu.Lock()
	defer mu.Unlock()
	recheckT := time.Now()
	cur := make([]byte, c.slotBytes)
	if _, err := n.client.ReadAtCtx(ctx, cur, b*c.slotBytes); err != nil {
		ot.span("realign_recheck", n.addr, recheckT, err)
		c.noteResult(n, false, err)
		return
	}
	ss := c.decodeStoredSlot(cur)
	if ss.status == slotOK {
		c.observeVersion(ss.meta.Version)
		aligned := ss.meta == winner && int(ss.fragIdx) == pos
		if ss.meta.newer(winner) || aligned {
			ot.span("realign_recheck", n.addr, recheckT, nil)
			ot.mark("realign_skipped")
			return
		}
	}
	ot.span("realign_recheck", n.addr, recheckT, nil)
	writeT := time.Now()
	_, werr := n.client.WriteAtCtx(ctx, slot, b*c.slotBytes)
	ot.span("realign_write", n.addr, writeT, werr)
	c.noteResult(n, true, werr)
	if werr != nil {
		c.met.repairsFailed.Inc()
		return
	}
	c.met.ecRealigned.Inc()
}

// sweepCodedBlock is the coded-mode anti-entropy unit: read every
// fragment of one stripe, elect the winner (all replies in, so the
// possible-acks rule degenerates to plain count checks), and repair
// stale, corrupt, or misaligned fragments by re-encoding from the K
// survivors. The Merkle exchange is structurally useless here — coded
// replicas store different bytes by design, so digests never match —
// which is why sweepPartition routes coded clusters straight here.
func (c *Cluster) sweepCodedBlock(ctx context.Context, ot *opTrace, b int64, reps []*node) {
	readT := time.Now()
	rctx, cancel := context.WithTimeout(ctx, c.opTimeout)
	all := make([]replicaRead, 0, len(reps))
	results := make(chan replicaRead, len(reps))
	for _, n := range reps {
		c.bg.Add(1)
		go func(n *node) {
			defer c.bg.Done()
			results <- c.readReplica(rctx, n, b)
		}(n)
	}
	for range reps {
		all = append(all, <-results)
	}
	cancel()
	ot.span("sweep_block_read", "", readT, nil)

	el := c.electCoded(all, len(reps))
	switch el.outcome {
	case codedDone:
		if el.reconstructed {
			c.met.ecReconstructAE.Inc()
		}
		if c.repairCodedReplicas(b, reps, all, el, "antientropy_repair", c.met.repairsAntiEntropy) {
			c.met.aeRepaired.Inc()
		} else {
			c.met.aeClean.Inc()
		}
	case codedZero:
		// Unwritten stripe: the only repairable divergence is a corrupt
		// fragment, rewritten to the unwritten (all-zero) slot.
		repaired := false
		for _, res := range all {
			if res.err == nil && res.status == slotCorrupt {
				c.met.divergentCorrupt.Inc()
				repaired = true
				rctx, rot := c.bgTrace("antientropy_repair", "antientropy", b)
				c.repairReplica(rctx, rot, res.n, b, make([]byte, c.slotBytes), blockMeta{}, c.met.repairsAntiEntropy)
				rot.finish()
			}
		}
		if repaired {
			c.met.aeRepaired.Inc()
		} else {
			c.met.aeClean.Inc()
		}
	default:
		// Not enough reachable fragments to decide anything safely.
		c.met.aeUnavailable.Inc()
	}
}

// transferSegmentCoded moves one run of stripes to a membership-change
// target. Unlike the mirrored path — which forwards the winning slot
// verbatim — the coded path must synthesize the target's fragment:
// read every source's fragment slots, elect each stripe's winner,
// reconstruct, and re-encode the fragment for the target's position
// under the NEXT placement (the placement that owns it after the
// flip). Election uses the same possible-acks rule with the unheard
// sources (and the target itself) counted, so a transfer never pushes
// a provably-superseded version over a possibly-acknowledged one.
func (c *Cluster) transferSegmentCoded(ctx context.Context, ot *opTrace, ep *epoch, tp transferPart, lo, n int64) error {
	if ep.next == nil {
		return fmt.Errorf("pcmcluster: coded transfer outside a transition")
	}
	tIdx := nodePosition(ep.next.replicas(tp.part, c.rf), tp.target)
	if tIdx < 0 {
		return fmt.Errorf("pcmcluster: transfer target %s does not own partition %d under the next placement",
			tp.target.addr, tp.part)
	}
	srcs := make([]*node, 0, c.rf)
	for _, s := range ep.cur.replicas(tp.part, c.rf) {
		if s != tp.target {
			srcs = append(srcs, s)
		}
	}
	if len(srcs) == 0 {
		return fmt.Errorf("pcmcluster: partition %d has no source besides the target", tp.part)
	}

	type srcRead struct {
		buf []byte
		err error
	}
	reads := make([]srcRead, len(srcs))
	var wg sync.WaitGroup
	for i, s := range srcs {
		wg.Add(1)
		go func(i int, s *node) {
			defer wg.Done()
			readT := time.Now()
			if !s.admit() {
				c.noteResult(s, false, errNodeDown)
				reads[i].err = errNodeDown
				ot.span("source_read", s.addr, readT, errNodeDown)
				return
			}
			buf := make([]byte, n*c.slotBytes)
			_, err := s.client.ReadAtCtx(ctx, buf, lo*c.slotBytes)
			c.noteResult(s, false, err)
			reads[i] = srcRead{buf: buf, err: err}
			ot.span("source_read", s.addr, readT, err)
		}(i, s)
	}
	wg.Wait()

	// Elect and re-encode per stripe. The target's own (unread) copy
	// counts as a possible fragment holder alongside failed sources —
	// dual-quorum writes reach it mid-transition — keeping the
	// possible-acks guard honest.
	nReps := len(srcs) + 1
	pushes := make([][]byte, n) // nil = nothing to push
	metas := make([]blockMeta, n)
	for i := int64(0); i < n; i++ {
		all := make([]replicaRead, 0, len(srcs))
		for si, r := range reads {
			if r.err != nil {
				continue
			}
			ss := c.decodeStoredSlot(r.buf[i*c.slotBytes : (i+1)*c.slotBytes])
			if ss.status == slotOK {
				c.observeVersion(ss.meta.Version)
			}
			all = append(all, replicaRead{
				n: srcs[si], data: ss.data, meta: ss.meta, fragIdx: ss.fragIdx, status: ss.status,
			})
		}
		el := c.electCoded(all, nReps)
		switch el.outcome {
		case codedDone:
			if el.reconstructed {
				c.met.ecReconstructTransfer.Inc()
			}
			dataFrags, err := c.codec.Split(el.block)
			if err != nil {
				return err
			}
			slot, err := c.encodeFragmentSlot(dataFrags, tIdx, el.winner.Version, el.winner.DataCRC)
			if err != nil {
				return err
			}
			pushes[i], metas[i] = slot, el.winner
		case codedZero:
			// Never written: leave the target's slot alone.
		default:
			// Sources below the reconstruction bar; transient — the
			// resume loop retries this segment once they recover.
			return fmt.Errorf("%w: partition %d slot %d: %d replies of %d possible holders",
				errTransferSources, tp.part, lo+i, len(all), nReps)
		}
	}

	stripes := stripesForRange(lo, n)
	for _, s := range stripes {
		c.stripes[s].Lock()
	}
	defer func() {
		for _, s := range stripes {
			c.stripes[s].Unlock()
		}
	}()

	// Recheck the target's current fragment slots in one vectored read.
	// Fragment slots are small, so the full-slot read costs less than a
	// mirrored trailer stride and validates the whole slot.
	recheckT := time.Now()
	if !tp.target.admit() {
		c.noteResult(tp.target, false, errNodeDown)
		return errNodeDown
	}
	tbuf := make([]byte, n*c.slotBytes)
	_, terr := tp.target.client.ReadAtCtx(ctx, tbuf, lo*c.slotBytes)
	c.noteResult(tp.target, false, terr)
	ot.span("target_recheck", tp.target.addr, recheckT, terr)
	if terr != nil {
		return terr
	}

	pushT := time.Now()
	for i := int64(0); i < n; i++ {
		if pushes[i] == nil {
			continue
		}
		ts := c.decodeStoredSlot(tbuf[i*c.slotBytes : (i+1)*c.slotBytes])
		if ts.status == slotOK || ts.status == slotUnwritten {
			aligned := ts.meta == metas[i] && int(ts.fragIdx) == tIdx
			if ts.status == slotOK && (ts.meta.newer(metas[i]) || aligned) {
				c.met.transferSlotsSkipped.Inc()
				continue // target already at, past, or aligned with the winner
			}
		}
		if !tp.target.admit() {
			c.noteResult(tp.target, true, errNodeDown)
			return errNodeDown
		}
		_, err := tp.target.client.WriteAtCtx(ctx, pushes[i], (lo+i)*c.slotBytes)
		c.noteResult(tp.target, true, err)
		if err != nil {
			return err
		}
		c.met.transferSlotsPushed.Inc()
	}
	ot.span("push_slots", tp.target.addr, pushT, nil)
	return nil
}

// replayDrainedHintCoded re-targets one orphaned fragment hint after a
// drain. A fragment is only meaningful to the node canonically holding
// its index, so the hint goes to the new owner at that placement
// position — not to every owner like a mirrored hint.
func (c *Cluster) replayDrainedHintCoded(pl *placement, b int64, h hint) {
	hs := c.decodeStoredSlot(h.slot)
	if hs.status != slotOK || int(hs.fragIdx) >= c.rf {
		c.met.drainHintsStale.Inc()
		return
	}
	reps := pl.replicas(c.partOf(b), c.rf)
	n := reps[hs.fragIdx]
	ctx, ot := c.bgTrace("drain_hint_replay", "drain", b)
	defer ot.finish()
	nctx, cancel := context.WithTimeout(ctx, c.opTimeout)
	defer cancel()
	mu := c.stripe(b)
	mu.Lock()
	defer mu.Unlock()
	recheckT := time.Now()
	cur := make([]byte, c.slotBytes)
	stale := false
	if _, err := n.client.ReadAtCtx(nctx, cur, b*c.slotBytes); err == nil {
		if ss := c.decodeStoredSlot(cur); ss.status == slotOK {
			c.observeVersion(ss.meta.Version)
			stale = !hs.meta.newer(ss.meta)
		}
	}
	ot.span("hint_recheck", n.addr, recheckT, nil)
	if stale {
		c.met.drainHintsStale.Inc()
		return
	}
	writeT := time.Now()
	_, err := n.client.WriteAtCtx(nctx, h.slot, b*c.slotBytes)
	ot.span("hint_write", n.addr, writeT, err)
	c.noteResult(n, true, err)
	if err != nil {
		if isTransient(err) {
			c.queueHint(n, b, h.slot, h.version)
		}
		return
	}
	c.met.drainHintsReplayed.Inc()
}

// isTransient is a local shorthand for the pcmserve error class check.
func isTransient(err error) bool {
	return errors.Is(err, errNodeDown) || pcmserve.Classify(err) == pcmserve.ClassTransient
}
