package pcmcluster

import (
	"context"
	"time"
)

// antiEntropyLoop is the cross-node scrubber: it walks the partition
// space one partition per tick and reconciles replicas that diverge
// from the highest-version valid copy — catching divergence on blocks
// foreground reads never touch (a down node that missed writes,
// dropped hints, bit rot on a cold replica).
//
// When every replica of a partition speaks the range ops, the sweep is
// a Merkle digest exchange (merkle.go): it reads O(divergence) slots,
// not O(blocks). Replicas that answered a range op with ErrUnsupported
// — old pcmserve builds — drop their partitions to the legacy per-slot
// sweep, whose replica reads are metered by the sweep budget so a big
// keyspace walk cannot starve foreground traffic.
func (c *Cluster) antiEntropyLoop(interval time.Duration) {
	defer c.loops.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	cursor := int64(0)
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		if cursor >= c.numParts() {
			cursor = 0
		}
		if c.brownoutLevel() >= brownoutPauseAE {
			// Brownout: the sweep is the heaviest background load, so it
			// yields first. The cursor holds position; the tick retries
			// once the overload window clears.
			c.met.aePaused.Inc()
			continue
		}
		c.sweepPartition(cursor)
		cursor++
		if cursor >= c.numParts() {
			cursor = 0
			c.met.aePasses.Inc()
		}
	}
}

// sweepPartition reconciles one partition, preferring the Merkle
// exchange and falling back to the metered per-slot sweep. The whole
// partition sweep runs under one cause-tagged root trace, so its RPCs
// show up server-side under an "antientropy" identity instead of
// blending into foreground traffic.
func (c *Cluster) sweepPartition(part int64) {
	ep := c.epoch.Load()
	reps := ep.cur.replicas(part, c.rf)
	if len(reps) == 0 {
		return
	}
	lo, n := c.partSpan(part)
	ctx, ot := c.bgTrace("antientropy_sweep", "antientropy", lo)
	defer ot.finish()
	if c.coded {
		// Coded replicas store different bytes by construction, so a
		// digest exchange always "diverges" — the per-slot sweep with
		// stripe-aware election is the only meaningful reconciliation.
		// Fragment slots are small (DataBytes/K + trailer), so the
		// metered walk stays cheap.
		for b := lo; b < lo+n; b++ {
			if !c.aeTake(int64(len(reps)) * c.slotBytes) {
				return // closing
			}
			c.sweepCodedBlock(ctx, ot, b, reps)
		}
		return
	}
	if !c.disableMerkle {
		merkleOK := true
		for _, n := range reps {
			if n.noMerkle.Load() {
				merkleOK = false
				break
			}
		}
		if merkleOK && c.merkleSweepPartition(ctx, ot, part, reps) != merkleUnsupported {
			return
		}
	}
	c.met.mkFallback.Inc()
	ot.mark("fallback_sweep")
	for b := lo; b < lo+n; b++ {
		if !c.aeTake(int64(len(reps)) * c.slotBytes) {
			return // closing
		}
		c.sweepBlockReplicas(ctx, ot, b, reps)
	}
}

// aeTake blocks until the sweep budget grants n bytes of replica
// reads, returning false when the cluster is closing. The poll loop
// (rather than Budget.Take) keeps Close from waiting out a long
// budget debt.
func (c *Cluster) aeTake(n int64) bool {
	if c.aeBudget == nil {
		return true
	}
	throttled := false
	for !c.aeBudget.TryTake(int(n), 0) {
		if !throttled {
			throttled = true
			c.met.aeThrottled.Inc()
		}
		select {
		case <-c.stop:
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
	return true
}

// sweepBlockReplicas reconciles one block across the given replicas.
// Replica reads run under the sweep's trace context with a per-block
// deadline, so a wedged replica cannot stall the sweeper.
func (c *Cluster) sweepBlockReplicas(ctx context.Context, ot *opTrace, b int64, reps []*node) {
	readT := time.Now()
	rctx, cancel := context.WithTimeout(ctx, c.opTimeout)
	all := make([]replicaRead, 0, len(reps))
	results := make(chan replicaRead, len(reps))
	for _, n := range reps {
		c.bg.Add(1)
		go func(n *node) {
			defer c.bg.Done()
			results <- c.readReplica(rctx, n, b)
		}(n)
	}
	for range reps {
		all = append(all, <-results)
	}
	cancel()
	ot.span("sweep_block_read", "", readT, nil)

	var winner replicaRead
	found := false
	for _, res := range all {
		if res.valid() && (!found || res.meta.newer(winner.meta)) {
			winner, found = res, true
		}
	}
	if !found {
		// No structurally valid copy reachable: nothing trustworthy to
		// repair from. Foreground reads fail typed; the sweep retries
		// next pass.
		c.met.aeUnavailable.Inc()
		return
	}
	repaired := false
	for _, res := range all {
		if res.err != nil {
			continue
		}
		switch {
		case res.status == slotCorrupt:
			c.met.divergentCorrupt.Inc()
		case winner.meta.newer(res.meta):
			c.met.divergentStale.Inc()
		default:
			continue
		}
		repaired = true
		c.repairReplica(ctx, ot, res.n, b, winner.slot, winner.meta, c.met.repairsAntiEntropy)
	}
	if repaired {
		c.met.aeRepaired.Inc()
	} else {
		c.met.aeClean.Inc()
	}
}
