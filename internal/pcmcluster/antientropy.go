package pcmcluster

import "time"

// antiEntropyLoop is the cross-node scrubber: it walks the partition
// space one partition per tick and reconciles replicas that diverge
// from the highest-version valid copy — catching divergence on blocks
// foreground reads never touch (a down node that missed writes,
// dropped hints, bit rot on a cold replica).
//
// When every replica of a partition speaks the range ops, the sweep is
// a Merkle digest exchange (merkle.go): it reads O(divergence) slots,
// not O(blocks). Replicas that answered a range op with ErrUnsupported
// — old pcmserve builds — drop their partitions to the legacy per-slot
// sweep, whose replica reads are metered by the sweep budget so a big
// keyspace walk cannot starve foreground traffic.
func (c *Cluster) antiEntropyLoop(interval time.Duration) {
	defer c.loops.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	cursor := int64(0)
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		if cursor >= c.numParts() {
			cursor = 0
		}
		c.sweepPartition(cursor)
		cursor++
		if cursor >= c.numParts() {
			cursor = 0
			c.met.aePasses.Inc()
		}
	}
}

// sweepPartition reconciles one partition, preferring the Merkle
// exchange and falling back to the metered per-slot sweep.
func (c *Cluster) sweepPartition(part int64) {
	ep := c.epoch.Load()
	reps := ep.cur.replicas(part, c.rf)
	if len(reps) == 0 {
		return
	}
	if !c.disableMerkle {
		merkleOK := true
		for _, n := range reps {
			if n.noMerkle.Load() {
				merkleOK = false
				break
			}
		}
		if merkleOK && c.merkleSweepPartition(part, reps) != merkleUnsupported {
			return
		}
	}
	c.met.mkFallback.Inc()
	lo, n := c.partSpan(part)
	for b := lo; b < lo+n; b++ {
		if !c.aeTake(int64(len(reps)) * SlotBytes) {
			return // closing
		}
		c.sweepBlockReplicas(b, reps)
	}
}

// aeTake blocks until the sweep budget grants n bytes of replica
// reads, returning false when the cluster is closing. The poll loop
// (rather than Budget.Take) keeps Close from waiting out a long
// budget debt.
func (c *Cluster) aeTake(n int64) bool {
	if c.aeBudget == nil {
		return true
	}
	throttled := false
	for !c.aeBudget.TryTake(int(n), 0) {
		if !throttled {
			throttled = true
			c.met.aeThrottled.Inc()
		}
		select {
		case <-c.stop:
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
	return true
}

// sweepBlockReplicas reconciles one block across the given replicas.
func (c *Cluster) sweepBlockReplicas(b int64, reps []*node) {
	all := make([]replicaRead, 0, len(reps))
	results := make(chan replicaRead, len(reps))
	for _, n := range reps {
		c.bg.Add(1)
		go func(n *node) {
			defer c.bg.Done()
			results <- c.readReplica(c.ctx, n, b)
		}(n)
	}
	for range reps {
		all = append(all, <-results)
	}

	var winner replicaRead
	found := false
	for _, res := range all {
		if res.valid() && (!found || res.meta.newer(winner.meta)) {
			winner, found = res, true
		}
	}
	if !found {
		// No structurally valid copy reachable: nothing trustworthy to
		// repair from. Foreground reads fail typed; the sweep retries
		// next pass.
		c.met.aeUnavailable.Inc()
		return
	}
	repaired := false
	for _, res := range all {
		if res.err != nil {
			continue
		}
		switch {
		case res.status == slotCorrupt:
			c.met.divergentCorrupt.Inc()
		case winner.meta.newer(res.meta):
			c.met.divergentStale.Inc()
		default:
			continue
		}
		repaired = true
		c.repairReplica(res.n, b, winner.slot, winner.meta, c.met.repairsAntiEntropy)
	}
	if repaired {
		c.met.aeRepaired.Inc()
	} else {
		c.met.aeClean.Inc()
	}
}
