package pcmcluster

import "time"

// antiEntropyLoop is the cross-node scrubber: it walks the block space
// one block per tick, reads every replica, and repairs the ones that
// diverge from the highest-version valid copy — catching divergence on
// blocks foreground reads never touch (a down node that missed writes,
// dropped hints, bit rot on a cold replica).
func (c *Cluster) antiEntropyLoop(interval time.Duration) {
	defer c.loops.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	cursor := int64(0)
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.sweepBlock(cursor)
		cursor++
		if cursor >= c.blocks {
			cursor = 0
			c.met.aePasses.Inc()
		}
	}
}

// sweepBlock reconciles one block across its replicas.
func (c *Cluster) sweepBlock(b int64) {
	reps := replicasFor(c.seeds, b, c.rf)
	all := make([]replicaRead, 0, len(reps))
	results := make(chan replicaRead, len(reps))
	for _, idx := range reps {
		c.bg.Add(1)
		go func(idx int) {
			defer c.bg.Done()
			results <- c.readReplica(c.ctx, idx, b)
		}(idx)
	}
	for range reps {
		all = append(all, <-results)
	}

	var winner replicaRead
	found := false
	for _, res := range all {
		if res.valid() && (!found || res.meta.newer(winner.meta)) {
			winner, found = res, true
		}
	}
	if !found {
		// No structurally valid copy reachable: nothing trustworthy to
		// repair from. Foreground reads fail typed; the sweep retries
		// next pass.
		c.met.aeUnavailable.Inc()
		return
	}
	repaired := false
	for _, res := range all {
		if res.err != nil {
			continue
		}
		switch {
		case res.status == slotCorrupt:
			c.met.divergentCorrupt.Inc()
		case winner.meta.newer(res.meta):
			c.met.divergentStale.Inc()
		default:
			continue
		}
		repaired = true
		c.repairReplica(res.idx, b, winner.slot, winner.meta, c.met.repairsAntiEntropy)
	}
	if repaired {
		c.met.aeRepaired.Inc()
	} else {
		c.met.aeClean.Inc()
	}
}
