package ecstripe

import (
	"bytes"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// reconstructSeed is one fuzz input: geom packs (k-1) in bits 0-3,
// (m-1) in bits 6-8, (fragBytes-1) in bits 12-13; seed feeds the data
// generator; erase is a bitmask of erased fragment indices.
type reconstructSeed struct {
	geom  uint16
	seed  int64
	erase uint64
}

func reconstructFuzzSeeds() []reconstructSeed {
	pack := func(k, m, fs int) uint16 {
		return uint16(k-1) | uint16(m-1)<<6 | uint16(fs-1)<<12
	}
	return []reconstructSeed{
		{pack(4, 2, 4), 1, 0},               // rs:4+2, nothing erased
		{pack(4, 2, 4), 2, 0b000011},        // both data fragments 0,1 gone
		{pack(4, 2, 4), 3, 0b110000},        // both parity gone
		{pack(4, 2, 4), 4, 0b010010},        // one of each
		{pack(4, 2, 4), 5, 0b000111},        // 3 erasures: > m, must error
		{pack(4, 2, 4), 6, ^uint64(0)},      // everything erased
		{pack(1, 1, 1), 7, 0b01},            // smallest geometry
		{pack(2, 2, 2), 8, 0b0011},          // all data gone, parity-only
		{pack(16, 8, 1), 9, 0xFF00},         // wide stripe, 8 erasures
		{pack(8, 4, 2), 10, 0b101010101010}, // alternating
	}
}

// FuzzReconstruct drives random geometries and erasure patterns
// through the codec: with ≥ k survivors reconstruction must round-trip
// the exact stripe (and single-fragment repair must reproduce the
// erased fragment bit-for-bit); with < k survivors it must return the
// typed ErrInsufficientFragments — never wrong data, never a panic.
func FuzzReconstruct(f *testing.F) {
	for _, s := range reconstructFuzzSeeds() {
		f.Add(s.geom, s.seed, s.erase)
	}
	f.Fuzz(func(t *testing.T, geom uint16, seed int64, erase uint64) {
		k := int(geom&0x3F)%16 + 1
		m := int(geom>>6)%8 + 1
		fs := int(geom>>12)%4 + 1
		c, err := NewCodec(k, m)
		if err != nil {
			t.Fatalf("NewCodec(%d,%d): %v", k, m, err)
		}
		block := make([]byte, k*fs)
		rand.New(rand.NewSource(seed)).Read(block)
		data, err := c.Split(block)
		if err != nil {
			t.Fatal(err)
		}
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		n := k + m
		var alive []Fragment
		var erased []int
		for i := 0; i < n; i++ {
			if erase&(1<<uint(i)) != 0 {
				erased = append(erased, i)
				continue
			}
			if i < k {
				alive = append(alive, Fragment{Index: i, Data: data[i]})
			} else {
				alive = append(alive, Fragment{Index: i, Data: parity[i-k]})
			}
		}
		got, err := c.Reconstruct(alive)
		if len(alive) >= k {
			if err != nil {
				t.Fatalf("k=%d m=%d erase=%b (%d erased): %v",
					k, m, erase, bits.OnesCount64(erase), err)
			}
			if !bytes.Equal(joined(got), block) {
				t.Fatalf("k=%d m=%d erase=%b: reconstructed wrong data", k, m, erase)
			}
			// Repair path: every erased fragment must re-encode exactly.
			for _, idx := range erased {
				want := parity
				_ = want
				var orig []byte
				if idx < k {
					orig = data[idx]
				} else {
					orig = parity[idx-k]
				}
				dst := make([]byte, fs)
				if err := c.ReconstructFragment(dst, alive, idx); err != nil {
					t.Fatalf("repair of fragment %d: %v", idx, err)
				}
				if !bytes.Equal(dst, orig) {
					t.Fatalf("repaired fragment %d differs from original", idx)
				}
			}
		} else if !errors.Is(err, ErrInsufficientFragments) {
			t.Fatalf("k=%d m=%d with %d survivors: err = %v, want ErrInsufficientFragments",
				k, m, len(alive), err)
		}
	})
}

// TestRegenerateReconstructFuzzCorpus rewrites the checked-in seed
// corpus under testdata/fuzz/FuzzReconstruct. Run after changing the
// seed set:
//
//	ECSTRIPE_WRITE_FUZZ_CORPUS=1 go test -run TestRegenerateReconstructFuzzCorpus ./internal/ecstripe
func TestRegenerateReconstructFuzzCorpus(t *testing.T) {
	if os.Getenv("ECSTRIPE_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set ECSTRIPE_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReconstruct")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range reconstructFuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\nuint16(%d)\nint64(%d)\nuint64(%d)\n", s.geom, s.seed, s.erase)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
