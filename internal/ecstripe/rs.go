package ecstripe

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gf2"
)

// MaxFragments is the number of distinct fragment indices GF(2^8)
// supports; k+m (and any transitional index) must stay below it.
const MaxFragments = 256

// ErrInsufficientFragments is returned by Reconstruct when fewer than
// k distinct valid fragments survive — more than m erasures. The codec
// can then say nothing about the data; callers must treat the stripe
// as unreadable rather than guess.
var ErrInsufficientFragments = errors.New("ecstripe: fewer than k distinct fragments, cannot reconstruct")

// Fragment pairs a fragment's generator index with its payload bytes.
type Fragment struct {
	Index int
	Data  []byte
}

// Codec is a systematic Reed-Solomon code with k data and m parity
// fragments over GF(2^8). Construct with NewCodec; the value is
// immutable after construction and safe for concurrent use.
type Codec struct {
	K, M int

	f *gf2.F256
	// rows caches generator rows for parity indices ≥ k, built lazily:
	// the steady state touches only [k, k+m) but transitions may ask
	// for any index < MaxFragments.
	rows sync.Map // int -> []byte (length K)
	// invs caches decode matrices keyed by the chosen fragment-index
	// tuple. Steady state uses a handful of keys (all-data, plus one
	// per commonly-failed node), so the cache stays tiny.
	invs sync.Map // string -> [][]byte (K×K)
}

// NewCodec returns the k+m codec. k must be ≥ 1, m ≥ 1, and k+m ≤
// MaxFragments.
func NewCodec(k, m int) (*Codec, error) {
	if k < 1 || m < 1 || k+m > MaxFragments {
		return nil, fmt.Errorf("ecstripe: invalid geometry k=%d m=%d (need k≥1, m≥1, k+m≤%d)", k, m, MaxFragments)
	}
	return &Codec{K: k, M: m, f: gf2.GF256()}, nil
}

// Row returns the generator row for fragment index idx: the k
// coefficients that combine the data fragments into fragment idx.
// Indices below k are unit vectors; indices in [k, MaxFragments) are
// Cauchy rows 1/(idx⊕c). The returned slice is shared — do not mutate.
func (c *Codec) Row(idx int) ([]byte, error) {
	if idx < 0 || idx >= MaxFragments {
		return nil, fmt.Errorf("ecstripe: fragment index %d out of [0,%d)", idx, MaxFragments)
	}
	if r, ok := c.rows.Load(idx); ok {
		return r.([]byte), nil
	}
	row := make([]byte, c.K)
	if idx < c.K {
		row[idx] = 1
	} else {
		for col := 0; col < c.K; col++ {
			// idx ≥ k > col, so idx⊕col ≠ 0 and the inverse exists.
			row[col] = c.f.Inv(byte(idx) ^ byte(col))
		}
	}
	c.rows.Store(idx, row)
	return row, nil
}

// Split views a block of k·fragBytes bytes as its k data fragments.
// The fragments alias block.
func (c *Codec) Split(block []byte) ([][]byte, error) {
	if len(block) == 0 || len(block)%c.K != 0 {
		return nil, fmt.Errorf("ecstripe: block of %d bytes does not split into %d fragments", len(block), c.K)
	}
	fs := len(block) / c.K
	data := make([][]byte, c.K)
	for i := range data {
		data[i] = block[i*fs : (i+1)*fs]
	}
	return data, nil
}

// EncodeFragment writes fragment idx of the stripe into dst. data must
// hold the k data fragments, all of len(dst) bytes. For idx < k this
// is a copy; for parity indices it is the Cauchy row applied across
// the data.
func (c *Codec) EncodeFragment(dst []byte, data [][]byte, idx int) error {
	if len(data) != c.K {
		return fmt.Errorf("ecstripe: encode needs %d data fragments, got %d", c.K, len(data))
	}
	row, err := c.Row(idx)
	if err != nil {
		return err
	}
	if idx < c.K {
		copy(dst, data[idx])
		return nil
	}
	for i := range dst {
		dst[i] = 0
	}
	for col, d := range data {
		c.f.MulAddSlice(dst, d, row[col])
	}
	return nil
}

// Encode produces the m parity fragments (indices k..k+m-1) for the
// given data fragments. All data fragments must share one length; the
// returned parity fragments are newly allocated with that length.
func (c *Codec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.K {
		return nil, fmt.Errorf("ecstripe: encode needs %d data fragments, got %d", c.K, len(data))
	}
	fs := len(data[0])
	for i, d := range data {
		if len(d) != fs {
			return nil, fmt.Errorf("ecstripe: data fragment %d has %d bytes, want %d", i, len(d), fs)
		}
	}
	parity := make([][]byte, c.M)
	buf := make([]byte, c.M*fs)
	for j := 0; j < c.M; j++ {
		parity[j] = buf[j*fs : (j+1)*fs]
		if err := c.EncodeFragment(parity[j], data, c.K+j); err != nil {
			return nil, err
		}
	}
	return parity, nil
}

// Reconstruct recovers the k data fragments from any k fragments with
// distinct indices. Fragments beyond the first k distinct indices and
// duplicate indices are ignored. Returns ErrInsufficientFragments when
// fewer than k distinct indices are present; it never returns wrong
// data for a structurally valid input set.
func (c *Codec) Reconstruct(frags []Fragment) ([][]byte, error) {
	chosen, err := c.choose(frags)
	if err != nil {
		return nil, err
	}
	fs := len(chosen[0].Data)
	out := make([][]byte, c.K)
	buf := make([]byte, c.K*fs)
	for i := range out {
		out[i] = buf[i*fs : (i+1)*fs]
	}
	// Fast path: all data fragments present in positions 0..k-1.
	systematic := true
	for i, fr := range chosen {
		if fr.Index != i {
			systematic = false
			break
		}
	}
	if systematic {
		for i, fr := range chosen {
			copy(out[i], fr.Data)
		}
		return out, nil
	}
	inv, err := c.decodeMatrix(chosen)
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.K; i++ {
		row := inv[i]
		for r, fr := range chosen {
			c.f.MulAddSlice(out[i], fr.Data, row[r])
		}
	}
	return out, nil
}

// ReconstructFragment rebuilds the single fragment idx from any k
// survivors — the repair path: a node that lost one fragment gets it
// re-encoded from k peers without materialising peers' roles.
func (c *Codec) ReconstructFragment(dst []byte, frags []Fragment, idx int) error {
	// If the fragment is among the inputs, it is its own repair source.
	for _, fr := range frags {
		if fr.Index == idx && len(fr.Data) == len(dst) {
			copy(dst, fr.Data)
			return nil
		}
	}
	data, err := c.Reconstruct(frags)
	if err != nil {
		return err
	}
	return c.EncodeFragment(dst, data, idx)
}

// choose validates the fragment set and picks the k fragments to
// decode from: distinct indices, equal sizes, sorted ascending so data
// fragments (cheap unit-vector rows) are preferred and the cache key
// is canonical.
func (c *Codec) choose(frags []Fragment) ([]Fragment, error) {
	var seen [MaxFragments]bool
	fs := -1
	chosen := make([]Fragment, 0, c.K)
	for _, fr := range frags {
		if fr.Index < 0 || fr.Index >= MaxFragments {
			return nil, fmt.Errorf("ecstripe: fragment index %d out of [0,%d)", fr.Index, MaxFragments)
		}
		if seen[fr.Index] || len(fr.Data) == 0 {
			continue
		}
		if fs == -1 {
			fs = len(fr.Data)
		} else if len(fr.Data) != fs {
			return nil, fmt.Errorf("ecstripe: fragment %d has %d bytes, others have %d", fr.Index, len(fr.Data), fs)
		}
		seen[fr.Index] = true
		chosen = append(chosen, fr)
	}
	if len(chosen) < c.K {
		return nil, fmt.Errorf("%w (have %d of %d)", ErrInsufficientFragments, len(chosen), c.K)
	}
	// Insertion sort by index: k is small (≤ 64 in practice).
	for i := 1; i < len(chosen); i++ {
		for j := i; j > 0 && chosen[j-1].Index > chosen[j].Index; j-- {
			chosen[j], chosen[j-1] = chosen[j-1], chosen[j]
		}
	}
	return chosen[:c.K], nil
}

// decodeMatrix returns the inverse of the k×k generator submatrix for
// the chosen fragments (sorted, distinct indices), cached by index
// tuple.
func (c *Codec) decodeMatrix(chosen []Fragment) ([][]byte, error) {
	key := make([]byte, len(chosen))
	for i, fr := range chosen {
		key[i] = byte(fr.Index)
	}
	if m, ok := c.invs.Load(string(key)); ok {
		return m.([][]byte), nil
	}
	// Build [A | I] and run Gauss-Jordan to [I | A^-1].
	aug := make([][]byte, c.K)
	for r, fr := range chosen {
		row, err := c.Row(fr.Index)
		if err != nil {
			return nil, err
		}
		aug[r] = make([]byte, 2*c.K)
		copy(aug[r], row)
		aug[r][c.K+r] = 1
	}
	for col := 0; col < c.K; col++ {
		pivot := -1
		for r := col; r < c.K; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			// Unreachable for the identity-over-Cauchy construction —
			// any k distinct rows are independent — but a hard error
			// beats silently wrong data if the invariant ever breaks.
			return nil, fmt.Errorf("ecstripe: singular decode matrix for indices %v", key)
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		if p := aug[col][col]; p != 1 {
			c.f.MulSlice(aug[col], aug[col], c.f.Inv(p))
		}
		for r := 0; r < c.K; r++ {
			if r != col && aug[r][col] != 0 {
				c.f.MulAddSlice(aug[r], aug[col], aug[r][col])
			}
		}
	}
	inv := make([][]byte, c.K)
	for r := range inv {
		inv[r] = aug[r][c.K:]
	}
	c.invs.Store(string(key), inv)
	return inv, nil
}
