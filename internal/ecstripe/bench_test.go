package ecstripe

import (
	"fmt"
	"testing"
)

// BenchmarkECEncode measures parity generation for one 64-byte stripe
// — the per-write codec cost in coded placement mode.
func BenchmarkECEncode(b *testing.B) {
	for _, km := range [][2]int{{4, 2}, {8, 4}} {
		k, m := km[0], km[1]
		b.Run(fmt.Sprintf("rs_%d+%d", k, m), func(b *testing.B) {
			c, err := NewCodec(k, m)
			if err != nil {
				b.Fatal(err)
			}
			block := mkBlock(64, 1)
			data, _ := c.Split(block)
			parity := make([][]byte, m)
			for j := range parity {
				parity[j] = make([]byte, 64/k)
			}
			b.SetBytes(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range parity {
					if err := c.EncodeFragment(parity[j], data, k+j); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkECReconstruct measures a worst-case degraded read: all
// parity fragments stand in for erased data fragments.
func BenchmarkECReconstruct(b *testing.B) {
	for _, km := range [][2]int{{4, 2}, {8, 4}} {
		k, m := km[0], km[1]
		b.Run(fmt.Sprintf("rs_%d+%d", k, m), func(b *testing.B) {
			c, err := NewCodec(k, m)
			if err != nil {
				b.Fatal(err)
			}
			block := mkBlock(64, 2)
			frags := stripeFragments(b, c, block)
			// Erase the first m data fragments; decode from the rest.
			alive := frags[m:]
			b.SetBytes(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Reconstruct(alive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
