// Package ecstripe implements the cross-node erasure code: a
// systematic Reed-Solomon codec over GF(2^8) plus the stripe geometry
// that maps one replicated 64-byte block onto k+m fragment slots.
//
// The paper's core economics — spend coding to buy density (Sections
// 5.3, 6.3: BCH makes 2+ bits/cell trustworthy) — applies across
// nodes too: k+m striping buys f-failure durability at (k+m)/k×
// storage instead of mirroring's (f+1)×. This package supplies the
// algebra and the wire format; internal/pcmcluster supplies placement,
// quorums, and repair.
//
// # Codec
//
// Codec is the standard "identity over Cauchy" systematic
// construction. The generator has one row per fragment index:
// indices below k are unit vectors (data fragments are stored
// verbatim), and every index in [k, 256) is the Cauchy row
//
//	row[c] = 1 / (idx ⊕ c),  c ∈ [0, k)
//
// Any k distinct rows are linearly independent (delete the unit-vector
// rows and their columns; the rest is a Cauchy submatrix, which is
// always nonsingular), so any k surviving fragments reconstruct the
// stripe. Defining parity for every index up to 255 — not just the m
// deployed ones — lets placement hand out fragment positions beyond
// k+m during membership transitions without a format change.
//
// # Fragment slots
//
// A stripe is one block: the 64 data bytes split into k fragments of
// 64/k bytes, extended by m parity fragments of the same size. Each
// fragment is stored in its own self-validating slot, mirroring the
// replica slot codec in pcmcluster:
//
//	[frag 64/k][version u64][stripeCRC u32][index u8][checkCRC u32]
//
// version and stripeCRC (the CRC32-C of the whole 64-byte block) are
// identical across one write's fragments, so the cluster's existing
// last-writer-wins order — version, then CRC tiebreak — elects stripe
// winners without decoding; checkCRC covers everything before it, so a
// torn or bit-flipped fragment classifies as corrupt exactly like a
// torn replica slot; the stored index makes a fragment
// self-describing, so reads keep working when membership reshuffles
// reassign positions.
package ecstripe
