package ecstripe

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func mkBlock(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// stripeFragments encodes a block and returns all k+m fragments.
func stripeFragments(t testing.TB, c *Codec, block []byte) []Fragment {
	t.Helper()
	data, err := c.Split(block)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	frags := make([]Fragment, 0, c.K+c.M)
	for i, d := range data {
		frags = append(frags, Fragment{Index: i, Data: d})
	}
	for j, p := range parity {
		frags = append(frags, Fragment{Index: c.K + j, Data: p})
	}
	return frags
}

func TestCodecValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 2}, {4, 0}, {-1, 3}, {200, 100}} {
		if _, err := NewCodec(bad[0], bad[1]); err == nil {
			t.Errorf("NewCodec(%d,%d) accepted", bad[0], bad[1])
		}
	}
	c, err := NewCodec(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Split(make([]byte, 63)); err == nil {
		t.Error("Split accepted a block not divisible by k")
	}
	if _, err := c.Split(nil); err == nil {
		t.Error("Split accepted an empty block")
	}
	if _, err := c.Row(-1); err == nil {
		t.Error("Row(-1) accepted")
	}
	if _, err := c.Row(256); err == nil {
		t.Error("Row(256) accepted")
	}
	if _, err := c.Encode([][]byte{{1}, {2}}); err == nil {
		t.Error("Encode accepted wrong fragment count")
	}
	if _, err := c.Encode([][]byte{{1}, {2}, {3}, {4, 5}}); err == nil {
		t.Error("Encode accepted ragged fragment sizes")
	}
	if _, err := c.Reconstruct([]Fragment{
		{Index: 0, Data: []byte{1, 2}},
		{Index: 1, Data: []byte{3}},
		{Index: 2, Data: []byte{4, 5}},
		{Index: 3, Data: []byte{6, 7}},
	}); err == nil {
		t.Error("Reconstruct accepted ragged fragment sizes")
	}
}

func TestRowStructure(t *testing.T) {
	c, _ := NewCodec(4, 2)
	for i := 0; i < c.K; i++ {
		row, err := c.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		for col, v := range row {
			want := byte(0)
			if col == i {
				want = 1
			}
			if v != want {
				t.Fatalf("data row %d is not a unit vector: %v", i, row)
			}
		}
	}
	f := gfMul(t)
	for idx := c.K; idx < MaxFragments; idx++ {
		row, err := c.Row(idx)
		if err != nil {
			t.Fatal(err)
		}
		for col, v := range row {
			if v == 0 {
				t.Fatalf("parity row %d has a zero coefficient at col %d", idx, col)
			}
			if f(v, byte(idx)^byte(col)) != 1 {
				t.Fatalf("parity row %d col %d: %d is not 1/(%d)", idx, col, v, byte(idx)^byte(col))
			}
		}
	}
}

func gfMul(t *testing.T) func(a, b byte) byte {
	t.Helper()
	// Tiny local GF(2^8) multiply (poly 0x11D) so the test does not
	// trust the table it is checking.
	return func(a, b byte) byte {
		var p byte
		for b > 0 {
			if b&1 != 0 {
				p ^= a
			}
			hi := a & 0x80
			a <<= 1
			if hi != 0 {
				a ^= 0x1D
			}
			b >>= 1
		}
		return p
	}
}

// TestAllErasurePatterns exhaustively checks rs:4+2 — every subset of
// surviving fragments of size ≥ k reconstructs exactly; every smaller
// subset returns the typed error.
func TestAllErasurePatterns(t *testing.T) {
	c, _ := NewCodec(4, 2)
	block := mkBlock(64, 1)
	frags := stripeFragments(t, c, block)
	n := c.K + c.M
	for mask := 0; mask < 1<<n; mask++ {
		var alive []Fragment
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				alive = append(alive, frags[i])
			}
		}
		got, err := c.Reconstruct(alive)
		if len(alive) >= c.K {
			if err != nil {
				t.Fatalf("mask %06b: Reconstruct failed: %v", mask, err)
			}
			if !bytes.Equal(joined(got), block) {
				t.Fatalf("mask %06b: wrong data", mask)
			}
		} else if !errors.Is(err, ErrInsufficientFragments) {
			t.Fatalf("mask %06b: err = %v, want ErrInsufficientFragments", mask, err)
		}
	}
}

func joined(frags [][]byte) []byte {
	var out []byte
	for _, f := range frags {
		out = append(out, f...)
	}
	return out
}

func TestReconstructIgnoresDuplicatesAndOrder(t *testing.T) {
	c, _ := NewCodec(4, 2)
	block := mkBlock(64, 2)
	frags := stripeFragments(t, c, block)
	// Parity-heavy, shuffled, with a duplicate and an empty fragment.
	in := []Fragment{
		frags[5], frags[1], {Index: 3, Data: nil}, frags[4], frags[1], frags[2],
	}
	got, err := c.Reconstruct(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(joined(got), block) {
		t.Fatal("reconstruction from shuffled/duplicated fragments is wrong")
	}
}

func TestReconstructFragment(t *testing.T) {
	c, _ := NewCodec(4, 2)
	block := mkBlock(64, 3)
	frags := stripeFragments(t, c, block)
	for lost := 0; lost < 6; lost++ {
		var survivors []Fragment
		for i, fr := range frags {
			if i != lost && i != (lost+1)%6 {
				survivors = append(survivors, fr)
			}
		}
		dst := make([]byte, 16)
		if err := c.ReconstructFragment(dst, survivors, lost); err != nil {
			t.Fatalf("lost=%d: %v", lost, err)
		}
		if !bytes.Equal(dst, frags[lost].Data) {
			t.Fatalf("lost=%d: repaired fragment differs", lost)
		}
	}
}

// TestExtendedIndices exercises generator rows beyond k+m: during a
// membership transition a stripe may temporarily place fragments at
// union positions past the steady-state set.
func TestExtendedIndices(t *testing.T) {
	c, _ := NewCodec(4, 2)
	block := mkBlock(64, 4)
	data, _ := c.Split(block)
	hi := make([]byte, 16)
	if err := c.EncodeFragment(hi, data, 250); err != nil {
		t.Fatal(err)
	}
	// Reconstruct from one data fragment, two parity, and the
	// transitional fragment at index 250.
	parity, _ := c.Encode(data)
	in := []Fragment{
		{Index: 2, Data: data[2]},
		{Index: 4, Data: parity[0]},
		{Index: 5, Data: parity[1]},
		{Index: 250, Data: hi},
	}
	got, err := c.Reconstruct(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(joined(got), block) {
		t.Fatal("reconstruction using an extended-index fragment is wrong")
	}
}

func TestManyGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, km := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 3}, {8, 4}, {16, 8}, {32, 4}} {
		k, m := km[0], km[1]
		c, err := NewCodec(k, m)
		if err != nil {
			t.Fatal(err)
		}
		fs := 1 + rng.Intn(8)
		block := mkBlock(k*fs, int64(k*100+m))
		frags := stripeFragments(t, c, block)
		// Erase m random fragments.
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		got, err := c.Reconstruct(frags[:k])
		if err != nil {
			t.Fatalf("k=%d m=%d: %v", k, m, err)
		}
		if !bytes.Equal(joined(got), block) {
			t.Fatalf("k=%d m=%d: wrong data", k, m)
		}
	}
}
