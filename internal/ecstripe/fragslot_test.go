package ecstripe

import (
	"bytes"
	"testing"
)

func TestFragSlotRoundTrip(t *testing.T) {
	frag := mkBlock(16, 7)
	meta := FragMeta{Version: 42<<8 | 0xA7, StripeCRC: 0xDEADBEEF, Index: 5}
	slot := make([]byte, 16+FragTrailerBytes)
	EncodeFragSlot(slot, frag, meta)
	got, m, status := DecodeFragSlot(slot, 16)
	if status != FragOK {
		t.Fatalf("status = %v", status)
	}
	if m != meta {
		t.Fatalf("meta = %+v, want %+v", m, meta)
	}
	if !bytes.Equal(got, frag) {
		t.Fatal("fragment data mismatch")
	}
	bare, ok := DecodeFragMeta(slot[16:])
	if !ok || bare != meta {
		t.Fatalf("DecodeFragMeta = %+v ok=%v", bare, ok)
	}
}

func TestFragSlotClassification(t *testing.T) {
	frag := mkBlock(16, 8)
	canonical := make([]byte, 16+FragTrailerBytes)
	EncodeFragSlot(canonical, frag, FragMeta{Version: 9, StripeCRC: 1, Index: 2})

	if _, _, s := DecodeFragSlot(make([]byte, 16+FragTrailerBytes), 16); s != FragUnwritten {
		t.Errorf("all-zero slot: %v, want unwritten", s)
	}
	for _, at := range []int{0, 15, 16, 23, 27, 28, 29, 32} {
		mut := append([]byte(nil), canonical...)
		mut[at] ^= 0x40
		if _, _, s := DecodeFragSlot(mut, 16); s != FragCorrupt {
			t.Errorf("bit flip at %d: %v, want corrupt", at, s)
		}
	}
	if _, _, s := DecodeFragSlot(canonical[:20], 16); s != FragCorrupt {
		t.Error("short slot not corrupt")
	}
	if _, _, s := DecodeFragSlot(canonical, 8); s != FragCorrupt {
		t.Error("wrong fragBytes not corrupt")
	}
	// Nonzero data with zero trailer: torn write.
	torn := make([]byte, 16+FragTrailerBytes)
	copy(torn, frag)
	if _, _, s := DecodeFragSlot(torn, 16); s != FragCorrupt {
		t.Error("torn write not corrupt")
	}
}

// TestFragSlotRejectsForgedVersionZero pins the invariant that a
// structurally valid trailer claiming version 0 is corrupt, not
// unwritten — writers stamp versions ≥ 1.
func TestFragSlotRejectsForgedVersionZero(t *testing.T) {
	frag := mkBlock(16, 9)
	slot := make([]byte, 16+FragTrailerBytes)
	EncodeFragSlot(slot, frag, FragMeta{Version: 0, StripeCRC: 3, Index: 1})
	if _, _, s := DecodeFragSlot(slot, 16); s != FragCorrupt {
		t.Fatalf("forged version-0 slot: %v, want corrupt", s)
	}
}

func TestStripeCRCSharedAcrossFragments(t *testing.T) {
	c, _ := NewCodec(4, 2)
	block := mkBlock(64, 10)
	crc := StripeCRC(block)
	frags := stripeFragments(t, c, block)
	for _, fr := range frags {
		slot := make([]byte, len(fr.Data)+FragTrailerBytes)
		EncodeFragSlot(slot, fr.Data, FragMeta{Version: 7, StripeCRC: crc, Index: uint8(fr.Index)})
		_, m, s := DecodeFragSlot(slot, len(fr.Data))
		if s != FragOK || m.StripeCRC != crc {
			t.Fatalf("fragment %d: status=%v stripeCRC=%#x want %#x", fr.Index, s, m.StripeCRC, crc)
		}
	}
	// And a reconstruction verifies against the same stripe CRC.
	got, err := c.Reconstruct(frags[1:])
	if err != nil {
		t.Fatal(err)
	}
	if StripeCRC(joined(got)) != crc {
		t.Fatal("reconstructed stripe fails the stripe CRC")
	}
}
