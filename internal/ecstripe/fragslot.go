package ecstripe

import (
	"encoding/binary"
	"hash/crc32"
)

// FragTrailerBytes is the sideband trailer on every fragment slot:
// version (8), stripe CRC32-C (4), fragment index (1), CRC32-C
// self-check over fragment data plus the previous 13 bytes (4).
const FragTrailerBytes = 17

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// StripeCRC is the checksum stamped identically into every fragment
// of one write: the CRC32-C of the whole (pre-split) data block. It
// doubles as the last-writer-wins tiebreak at equal versions and as
// the end-to-end check on a reconstructed stripe.
func StripeCRC(block []byte) uint32 {
	return crc32.Checksum(block, castagnoli)
}

// FragMeta is the decoded sideband trailer of one fragment slot.
type FragMeta struct {
	// Version orders writes cluster-wide; writers stamp ≥ 1, and all
	// fragments of one write share the stripe's version.
	Version uint64
	// StripeCRC is the CRC32-C of the whole data block this fragment
	// was encoded from — identical across the stripe's fragments.
	StripeCRC uint32
	// Index is the fragment's generator index, stored so a fragment
	// stays decodable after placement reshuffles its position.
	Index uint8
}

// FragStatus classifies one stored fragment slot, mirroring the
// replica slot statuses in pcmcluster.
type FragStatus int

const (
	// FragOK: the self-check CRC holds over data and trailer.
	FragOK FragStatus = iota
	// FragUnwritten: the slot is all zeros — fresh PCM reads back
	// zeros, so an untouched fragment is structurally valid, version 0.
	FragUnwritten
	// FragCorrupt: the self-check fails on a nonzero slot — a torn
	// write or stored-bit corruption; the fragment must be repaired.
	FragCorrupt
)

func (s FragStatus) String() string {
	switch s {
	case FragOK:
		return "ok"
	case FragUnwritten:
		return "unwritten"
	case FragCorrupt:
		return "corrupt"
	}
	return "invalid"
}

// EncodeFragSlot fills dst (len(frag)+FragTrailerBytes) with the
// fragment payload and its trailer.
func EncodeFragSlot(dst, frag []byte, m FragMeta) {
	fs := len(frag)
	_ = dst[fs+FragTrailerBytes-1]
	copy(dst, frag)
	binary.BigEndian.PutUint64(dst[fs:], m.Version)
	binary.BigEndian.PutUint32(dst[fs+8:], m.StripeCRC)
	dst[fs+12] = m.Index
	binary.BigEndian.PutUint32(dst[fs+13:], crc32.Checksum(dst[:fs+13], castagnoli))
}

// DecodeFragSlot validates one stored fragment slot of fragBytes
// payload. On FragOK the returned fragment aliases slot and meta
// carries the trailer; on FragUnwritten the fragment is the all-zero
// payload with a zero meta; on FragCorrupt both are zero values.
func DecodeFragSlot(slot []byte, fragBytes int) ([]byte, FragMeta, FragStatus) {
	if len(slot) != fragBytes+FragTrailerBytes {
		return nil, FragMeta{}, FragCorrupt
	}
	fs := fragBytes
	check := binary.BigEndian.Uint32(slot[fs+13:])
	if crc32.Checksum(slot[:fs+13], castagnoli) == check {
		m := FragMeta{
			Version:   binary.BigEndian.Uint64(slot[fs:]),
			StripeCRC: binary.BigEndian.Uint32(slot[fs+8:]),
			Index:     slot[fs+12],
		}
		if m.Version == 0 {
			// Writers stamp versions ≥ 1; a self-consistent trailer
			// claiming version 0 is not something EncodeFragSlot
			// produces (the all-zero slot fails the CRC branch: the
			// checksum of zeros is nonzero).
			return nil, FragMeta{}, FragCorrupt
		}
		return slot[:fs], m, FragOK
	}
	for _, b := range slot {
		if b != 0 {
			return nil, FragMeta{}, FragCorrupt
		}
	}
	return slot[:fs], FragMeta{}, FragUnwritten
}

// DecodeFragMeta validates a bare trailer read without its payload
// (the stale-check before replaying a fragment hint). Because the
// self-check covers the payload too, a bare trailer cannot be fully
// verified; this only sanity-screens the version so obviously-stale
// replays are skipped, and ok is false on a short buffer.
func DecodeFragMeta(trailer []byte) (FragMeta, bool) {
	if len(trailer) != FragTrailerBytes {
		return FragMeta{}, false
	}
	m := FragMeta{
		Version:   binary.BigEndian.Uint64(trailer),
		StripeCRC: binary.BigEndian.Uint32(trailer[8:]),
		Index:     trailer[12],
	}
	return m, true
}
