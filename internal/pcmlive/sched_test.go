package pcmlive

import (
	"sync/atomic"
	"testing"
	"time"
)

// schedDev builds a filled device at the given time scale, plus an
// Exec that routes refreshes straight to the device. The device
// itself is unmetered (tests wanting budget contention give the
// Budget to the scheduler only, so the fill doesn't stall); tests
// that also touch owner-confined state from the test goroutine do so
// only while the scheduler is stopped.
func schedDev(t *testing.T, blocks int, seed uint64, timeScale float64) (*Device, func(int, int, bool) (Outcome, error)) {
	t.Helper()
	d, err := NewDevice(DeviceConfig{
		Blocks: blocks, Model: fourModel(t), Seed: seed,
		TimeScale: timeScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < blocks; b++ {
		if _, err := d.WriteAt(blockPattern(b), int64(b)*64); err != nil {
			t.Fatal(err)
		}
	}
	return d, func(_, block int, _ bool) (Outcome, error) { return d.RefreshBlock(block) }
}

func TestSchedulerKeepsDeviceAliveAtPaperInterval(t *testing.T) {
	// A quarter sim day per wall second: the 17-minute interval is
	// ~47 ms of wall time, so OS scheduling hiccups stay well inside
	// the deadline grace. Two wall seconds ≈ 42 passes; nothing may
	// die.
	d, exec := schedDev(t, 64, 11, day/4)
	sc, err := NewScheduler([]*Device{d}, SchedulerConfig{Interval: 1020, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	sc.Start()
	time.Sleep(2 * time.Second)
	sc.Stop()
	st := sc.Stats()
	if st.Refreshed < 64 {
		t.Fatalf("only %d refreshes in 2 wall seconds; pass loop stalled", st.Refreshed)
	}
	if st.Uncorrectable != 0 {
		t.Fatalf("%d uncorrectable refresh outcomes at the paper interval", st.Uncorrectable)
	}
	// Wall-paced refresh can miss a deadline when the OS stalls the
	// pass goroutine; steady state must keep that rare.
	if st.DeadlineMisses*50 > st.Refreshed {
		t.Fatalf("%d deadline misses in %d refreshes (>2%%) in unobstructed steady state",
			st.DeadlineMisses, st.Refreshed)
	}
	if bad := countBad(d); bad != 0 {
		t.Fatalf("%d blocks lost under scheduled refresh", bad)
	}
}

func TestSchedulerAccruesDebtAtTooLongInterval(t *testing.T) {
	// Interval 10× the paper's: the scheduler meets ITS deadline, but
	// blocks spend most of each pass beyond the model-safe age, so the
	// debt gauge and its peak must go nonzero.
	d, exec := schedDev(t, 64, 12, day)
	sc, err := NewScheduler([]*Device{d}, SchedulerConfig{Interval: 10200, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	sc.Start()
	time.Sleep(1500 * time.Millisecond)
	sc.Stop()
	if peak := sc.DebtPeak(); peak == 0 {
		t.Fatal("10×-interval run observed zero refresh-debt peak")
	}
	if d.DebtBlocks() == 0 {
		t.Fatal("10×-interval run shows no instantaneous debt")
	}
}

func TestSchedulerForcesOverdueRefreshUnderStarvedBudget(t *testing.T) {
	// A budget far too small for the refresh demand: on-schedule
	// refreshes are skipped, the cursor block ages past the interval,
	// and the overdue path preempts with ForceTake — refresh never
	// starves (priority aging).
	budget := NewBudget(64, 128) // one block per second
	d, exec := schedDev(t, 32, 13, day)
	sc, err := NewScheduler([]*Device{d}, SchedulerConfig{
		Interval: 1020, Exec: exec, Budget: budget, ReserveBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.Start()
	time.Sleep(1200 * time.Millisecond)
	sc.Stop()
	st := sc.Stats()
	if st.SkippedBudget == 0 {
		t.Fatalf("starved budget never deferred a refresh: %+v", st)
	}
	if st.Forced == 0 {
		t.Fatalf("no overdue refresh preempted the starved budget: %+v", st)
	}
	if st.Refreshed == 0 {
		t.Fatalf("refresh fully starved: %+v", st)
	}
}

func TestSchedulerExecErrorsDropSlots(t *testing.T) {
	d, _ := schedDev(t, 16, 14, day)
	var calls atomic.Int64
	sc, err := NewScheduler([]*Device{d}, SchedulerConfig{
		Interval: 1020,
		Exec: func(_, _ int, _ bool) (Outcome, error) {
			calls.Add(1)
			return RefreshUnwritten, errShardGone
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.Start()
	time.Sleep(300 * time.Millisecond)
	sc.Stop()
	st := sc.Stats()
	if st.ExecErrors == 0 || st.ExecErrors != uint64(calls.Load()) {
		t.Fatalf("exec errors %d, calls %d", st.ExecErrors, calls.Load())
	}
	if st.Refreshed != 0 {
		t.Fatalf("failed execs counted as refreshes: %+v", st)
	}
}

var errShardGone = &schedTestErr{}

type schedTestErr struct{}

func (*schedTestErr) Error() string { return "shard gone" }

func TestSchedulerConfigValidation(t *testing.T) {
	d, exec := schedDev(t, 1, 15, 1)
	if _, err := NewScheduler(nil, SchedulerConfig{Interval: 1, Exec: exec}); err == nil {
		t.Fatal("no devices accepted")
	}
	if _, err := NewScheduler([]*Device{d}, SchedulerConfig{Interval: 0, Exec: exec}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewScheduler([]*Device{d}, SchedulerConfig{Interval: 1}); err == nil {
		t.Fatal("nil Exec accepted")
	}
	if _, err := NewScheduler([]*Device{d}, SchedulerConfig{Interval: 1, Exec: exec, GraceFactor: -1}); err == nil {
		t.Fatal("negative grace accepted")
	}
}

func TestRecommendedTimeScale(t *testing.T) {
	// 4096 blocks × 4 shards × 64 B = 1 MiB per pass; demanding
	// 1 MiB/s of wall refresh bandwidth at a 1020 s sim interval needs
	// ts ≈ 1020.
	ts := RecommendedTimeScale(1020, 4096, 4, float64(4096*4*64))
	if ts < 1019 || ts > 1021 {
		t.Fatalf("ts = %g, want ≈1020", ts)
	}
	if ts := RecommendedTimeScale(1, 1, 1, 1e-12); ts != 1 {
		t.Fatalf("degenerate demand: ts = %g, want floor 1", ts)
	}
}
