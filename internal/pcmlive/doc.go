// Package pcmlive makes served PCM shards drift in simulated time and
// pays for their refresh out of the same write-bandwidth budget as
// foreground traffic — the paper's central systems tension (Sections 1,
// 4 and 7, Figure 16) turned into a live serving component.
//
// Three pieces compose:
//
//   - ErrorModel precomputes, from the same drift distributions that
//     generate the paper's CER curves (internal/drift quadrature over a
//     levels.Mapping), the distribution of two per-block order
//     statistics: the time of the first cell error and the time of the
//     (t+1)-th cell error, where t is the block's ECC correction
//     capability. A block whose age crosses the first is served
//     corrected; one that crosses the second is beyond ECC and returns
//     core.ErrUncorrectable.
//
//   - Device is a byte-addressable block store (the pcmserve shard
//     device contract: io.ReaderAt, io.WriterAt, Advance, Name) whose
//     blocks age against a simulated clock. Every write — foreground or
//     refresh — restores nominal resistance and resamples the block's
//     error times from the model. The clock advances with wall time
//     scaled by TimeScale and jumps explicitly through Advance.
//
//   - Scheduler walks every device's blocks once per refresh interval,
//     in simulated time, the way the paper's Section 4 scrubber spreads
//     one full pass uniformly over the interval — but each refresh must
//     first buy its bytes from a Budget shared with foreground writes
//     (the paper's 40 MB/s write-bandwidth budget). On-schedule
//     refreshes yield to foreground traffic (they take tokens only when
//     headroom exists); once a block ages past the interval it is
//     overdue and its refresh preempts foreground token waiters, so
//     refresh never starves while foreground writes observe the
//     resulting bank-busy stall.
//
// Like internal/device, a Device is NOT safe for concurrent use except
// where noted: ReadAt/WriteAt/Advance/RefreshBlock must be confined to
// one goroutine (the pcmserve shard owner), while SimNow, BlockAge,
// OverdueBlocks and the stats snapshot are safe from any goroutine and
// are what the Scheduler and metric collection use.
//
// The model is drift-only: wearout (endurance limits, mark-and-spare)
// is served by the classic device.Device stack; pcmlive trades that
// fidelity for per-block O(1) sampling so drift-faithful shards can
// sustain production-shaped traffic.
package pcmlive
