package pcmlive

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// neverWritten is the lastWrite sentinel for blocks that have never
// been written: they hold zeros, do not drift, and need no refresh.
const neverWritten = math.MinInt64

// DeviceConfig assembles a live drift-backed device.
type DeviceConfig struct {
	// Blocks is the 64-byte block capacity (required).
	Blocks int
	// Model is the error model blocks age under (required); build one
	// per organization and share it across shards.
	Model *ErrorModel
	// Seed drives the per-block life sampling.
	Seed uint64
	// TimeScale is simulated seconds per wall second (default 1). The
	// simulated clock runs continuously at this rate and additionally
	// jumps by explicit Advance calls.
	TimeScale float64
	// Budget, when non-nil, meters foreground writes: each touched
	// block debits one block write and may stall (bank busy) while
	// refresh holds the tokens.
	Budget *Budget
	// OnStall, when non-nil, observes each nonzero foreground budget
	// stall — the glue point for a latency histogram.
	OnStall func(time.Duration)
}

// Device is a byte-addressable block store whose blocks age under the
// configured drift error model. It implements the pcmserve shard
// device contract (io.ReaderAt, io.WriterAt, Advance, Name).
//
// Concurrency follows internal/device: ReadAt, WriteAt, Advance and
// RefreshBlock must be confined to one goroutine (the shard owner).
// SimNow, BlockAge, Written, OverdueBlocks, DebtBlocks and Stats are
// safe from any goroutine — they are what the Scheduler and metric
// scrapes use.
type Device struct {
	model     *ErrorModel
	blocks    int
	timeScale float64
	budget    *Budget
	onStall   func(time.Duration)

	r    *rng.Rand
	data []byte

	// lastWrite[b] is the sim-clock nanosecond of block b's most recent
	// write (neverWritten before the first). Atomic so the scheduler
	// and debt gauges can scan ages without touching the owner's state.
	lastWrite []atomic.Int64
	// firstAt/deadAt are the absolute sim seconds at which block b
	// starts needing correction / passes beyond ECC. Owner-confined.
	firstAt []float64
	deadAt  []float64

	// base is the accumulated Advance offset in sim nanoseconds; the
	// continuous part is timeScale × wall time since start.
	base      atomic.Int64
	wallStart time.Time

	safeAge float64

	correctedReads atomic.Uint64
	uncorrReads    atomic.Uint64
	stallNanos     atomic.Int64
	stalledWrites  atomic.Uint64
	refClean       atomic.Uint64
	refCorrected   atomic.Uint64
	refUncorr      atomic.Uint64
}

var _ io.ReaderAt = (*Device)(nil)
var _ io.WriterAt = (*Device)(nil)

// NewDevice builds the device with every block unwritten (reads as
// zeros, no drift until first written).
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if cfg.Blocks < 1 {
		return nil, errors.New("pcmlive: need at least one block")
	}
	if cfg.Model == nil {
		return nil, errors.New("pcmlive: DeviceConfig.Model is required")
	}
	ts := cfg.TimeScale
	if ts == 0 {
		ts = 1
	}
	if ts < 0 {
		return nil, fmt.Errorf("pcmlive: negative time scale %g", ts)
	}
	d := &Device{
		model:     cfg.Model,
		blocks:    cfg.Blocks,
		timeScale: ts,
		budget:    cfg.Budget,
		onStall:   cfg.OnStall,
		r:         rng.New(cfg.Seed),
		data:      make([]byte, cfg.Blocks*core.BlockBytes),
		lastWrite: make([]atomic.Int64, cfg.Blocks),
		firstAt:   make([]float64, cfg.Blocks),
		deadAt:    make([]float64, cfg.Blocks),
		wallStart: time.Now(),
		safeAge:   cfg.Model.SafeInterval(safeAgeTarget),
	}
	for b := range d.lastWrite {
		d.lastWrite[b].Store(neverWritten)
		d.firstAt[b] = math.Inf(1)
		d.deadAt[b] = math.Inf(1)
	}
	return d, nil
}

// safeAgeTarget is the per-block uncorrectable probability defining
// the model-derived safe refresh age: a block older than
// SafeInterval(safeAgeTarget) counts as refresh debt. 1e-9 puts the
// paper's 17-minute 4LCo interval just inside the safe region.
const safeAgeTarget = 1e-9

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(d.blocks) * core.BlockBytes }

// Blocks returns the block capacity.
func (d *Device) Blocks() int { return d.blocks }

// Name describes the device for shard reports.
func (d *Device) Name() string { return d.model.Name() }

// TimeScale returns simulated seconds per wall second.
func (d *Device) TimeScale() float64 { return d.timeScale }

// SafeAge returns the model-derived age in sim seconds past which a
// block counts as refresh debt (+Inf for organizations, like 3LCo,
// that never reach the debt threshold on the model horizon).
func (d *Device) SafeAge() float64 { return d.safeAge }

// SimNow returns the simulated clock in seconds since device start:
// TimeScale × wall elapsed, plus every Advance jump. Safe from any
// goroutine.
func (d *Device) SimNow() float64 {
	return float64(d.base.Load())/1e9 + d.timeScale*time.Since(d.wallStart).Seconds()
}

// Advance jumps the simulated clock forward dt seconds, aging every
// written block. Part of the shard device contract.
func (d *Device) Advance(dt float64) error {
	if dt < 0 {
		return fmt.Errorf("pcmlive: negative advance %g", dt)
	}
	d.base.Add(int64(dt * 1e9))
	return nil
}

// Written reports whether block b has ever been written. Safe from
// any goroutine.
func (d *Device) Written(b int) bool { return d.lastWrite[b].Load() != neverWritten }

// BlockAge returns the sim seconds since block b's last write, or -1
// if it was never written. Safe from any goroutine.
func (d *Device) BlockAge(b int) float64 {
	lw := d.lastWrite[b].Load()
	if lw == neverWritten {
		return -1
	}
	return d.SimNow() - float64(lw)/1e9
}

// OverdueBlocks counts written blocks older than age sim seconds.
// Safe from any goroutine.
func (d *Device) OverdueBlocks(age float64) int {
	now := d.SimNow()
	cutoff := int64((now - age) * 1e9)
	n := 0
	for b := range d.lastWrite {
		if lw := d.lastWrite[b].Load(); lw != neverWritten && lw < cutoff {
			n++
		}
	}
	return n
}

// DebtBlocks counts written blocks older than the model-derived safe
// age — the refresh-debt gauge. Unlike OverdueBlocks (measured against
// the configured interval, which drives scheduling priority), debt is
// measured against what the MODEL says is safe, so an operator who
// configures the interval 10× too long sees nonzero debt even while
// the scheduler dutifully meets that too-long deadline. Safe from any
// goroutine.
func (d *Device) DebtBlocks() int {
	if math.IsInf(d.safeAge, 1) {
		return 0
	}
	return d.OverdueBlocks(d.safeAge)
}

// ReadAt implements io.ReaderAt with device.Device semantics: reads
// past the end return the available prefix and io.EOF. A block whose
// age has passed its sampled uncorrectable time fails the read with
// core.ErrUncorrectable; one past its first-error time is served
// corrected (counted, content intact).
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pcmlive: negative offset")
	}
	now := d.SimNow()
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		if pos >= d.Size() {
			return n, io.EOF
		}
		b := int(pos / core.BlockBytes)
		inBlk := int(pos % core.BlockBytes)
		if d.lastWrite[b].Load() != neverWritten {
			switch {
			case now >= d.deadAt[b]:
				d.uncorrReads.Add(1)
				return n, fmt.Errorf("pcmlive: block %d drifted beyond ECC: %w", b, core.ErrUncorrectable)
			case now >= d.firstAt[b]:
				d.correctedReads.Add(1)
			}
		}
		n += copy(p[n:], d.data[b*core.BlockBytes+inBlk:(b+1)*core.BlockBytes])
	}
	return n, nil
}

// WriteAt implements io.WriterAt with device.Device semantics: writes
// beyond the device size are rejected whole; partial blocks are
// read-modify-write (tolerating drifted content — the rewrite replaces
// it physically). Every touched block is rewritten at nominal levels:
// its drift clock restarts and its error times are resampled. Each
// touched block debits one block write from the budget; the stall, if
// any, is the refresh-induced bank-busy latency.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pcmlive: negative offset")
	}
	if off+int64(len(p)) > d.Size() {
		return 0, fmt.Errorf("pcmlive: write [%d, %d) exceeds size %d", off, off+int64(len(p)), d.Size())
	}
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		b := int(pos / core.BlockBytes)
		inBlk := int(pos % core.BlockBytes)
		span := core.BlockBytes - inBlk
		if span > len(p)-n {
			span = len(p) - n
		}
		if d.budget != nil {
			if stall := d.budget.Take(core.BlockBytes); stall > 0 {
				d.stallNanos.Add(int64(stall))
				d.stalledWrites.Add(1)
				if d.onStall != nil {
					d.onStall(stall)
				}
			}
		}
		copy(d.data[b*core.BlockBytes+inBlk:], p[n:n+span])
		d.restamp(b, d.SimNow())
		n += span
	}
	return n, nil
}

// restamp restarts block b's drift clock at sim time now and resamples
// its error times — the effect of any full-block rewrite at nominal
// resistance.
func (d *Device) restamp(b int, now float64) {
	first, uncorr := d.model.SampleLife(d.r)
	d.firstAt[b] = now + first
	d.deadAt[b] = now + uncorr
	d.lastWrite[b].Store(int64(now * 1e9))
}

// Outcome classifies what one block refresh found.
type Outcome int

const (
	// RefreshUnwritten: the block was never written; nothing to do.
	RefreshUnwritten Outcome = iota
	// RefreshClean: no cell had erred yet; rewritten at nominal anyway.
	RefreshClean
	// RefreshCorrected: the block needed ECC correction and was
	// rewritten in place — drift cleared before it could accumulate.
	RefreshCorrected
	// RefreshUncorrectable: the block had drifted beyond ECC; its
	// content was replaced with zeros (the data loss is the event the
	// refresh interval exists to prevent).
	RefreshUncorrectable
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case RefreshUnwritten:
		return "unwritten"
	case RefreshClean:
		return "clean"
	case RefreshCorrected:
		return "corrected"
	case RefreshUncorrectable:
		return "uncorrectable"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// RefreshBlock performs one refresh cycle on block b: read with
// correction, rewrite at nominal levels, restart the drift clock. An
// uncorrectable block has its content replaced with zeros, containing
// the loss to this block. Refresh does NOT debit the budget — the
// Scheduler pays for refresh bytes before dispatching, under its own
// priority rules. Owner-confined, like ReadAt/WriteAt.
func (d *Device) RefreshBlock(b int) (Outcome, error) {
	if b < 0 || b >= d.blocks {
		return RefreshUnwritten, fmt.Errorf("pcmlive: refresh block %d out of range [0,%d)", b, d.blocks)
	}
	now := d.SimNow()
	lw := d.lastWrite[b].Load()
	if lw == neverWritten {
		return RefreshUnwritten, nil
	}
	out := RefreshClean
	switch {
	case now >= d.deadAt[b]:
		out = RefreshUncorrectable
		d.refUncorr.Add(1)
		clear(d.data[b*core.BlockBytes : (b+1)*core.BlockBytes])
	case now >= d.firstAt[b]:
		out = RefreshCorrected
		d.refCorrected.Add(1)
	default:
		d.refClean.Add(1)
	}
	d.restamp(b, now)
	return out, nil
}

// DeviceStats is a point-in-time snapshot of the device's drift and
// contention counters. Safe to collect concurrently with traffic.
type DeviceStats struct {
	// CorrectedReads counts reads served from blocks past their first
	// cell error (ECC did its job); UncorrectableReads counts reads
	// that failed because the block drifted beyond ECC.
	CorrectedReads     uint64 `json:"corrected_reads"`
	UncorrectableReads uint64 `json:"uncorrectable_reads"`
	// Refresh outcomes (see Outcome).
	RefreshClean         uint64 `json:"refresh_clean"`
	RefreshCorrected     uint64 `json:"refresh_corrected"`
	RefreshUncorrectable uint64 `json:"refresh_uncorrectable"`
	// StalledWrites counts foreground writes that blocked on the write
	// budget; StallSeconds is their cumulative bank-busy time.
	StalledWrites uint64  `json:"stalled_writes"`
	StallSeconds  float64 `json:"stall_seconds"`
	// DebtBlocks is the instantaneous refresh debt (see DebtBlocks).
	DebtBlocks int `json:"debt_blocks"`
	// SimSeconds is the simulated clock.
	SimSeconds float64 `json:"sim_seconds"`
}

// Stats snapshots the device counters. Safe from any goroutine.
func (d *Device) Stats() DeviceStats {
	return DeviceStats{
		CorrectedReads:       d.correctedReads.Load(),
		UncorrectableReads:   d.uncorrReads.Load(),
		RefreshClean:         d.refClean.Load(),
		RefreshCorrected:     d.refCorrected.Load(),
		RefreshUncorrectable: d.refUncorr.Load(),
		StalledWrites:        d.stalledWrites.Load(),
		StallSeconds:         float64(d.stallNanos.Load()) / 1e9,
		DebtBlocks:           d.DebtBlocks(),
		SimSeconds:           d.SimNow(),
	}
}
