package pcmlive

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

const day = 86400.0

func fourModel(t *testing.T) *ErrorModel {
	t.Helper()
	m, err := NewErrorModel(FourLC())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newDev(t *testing.T, blocks int, seed uint64) *Device {
	t.Helper()
	d, err := NewDevice(DeviceConfig{Blocks: blocks, Model: fourModel(t), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func blockPattern(b int) []byte {
	p := make([]byte, core.BlockBytes)
	for i := range p {
		p[i] = byte(b*31 + i)
	}
	return p
}

func fillDev(t *testing.T, d *Device) {
	t.Helper()
	for b := 0; b < d.Blocks(); b++ {
		if _, err := d.WriteAt(blockPattern(b), int64(b)*core.BlockBytes); err != nil {
			t.Fatal(err)
		}
	}
}

func countBad(d *Device) (bad int) {
	buf := make([]byte, core.BlockBytes)
	for b := 0; b < d.Blocks(); b++ {
		_, err := d.ReadAt(buf, int64(b)*core.BlockBytes)
		if err != nil || !bytes.Equal(buf, blockPattern(b)) {
			bad++
		}
	}
	return bad
}

func TestUnwrittenReadsZeros(t *testing.T) {
	d := newDev(t, 4, 1)
	// Unwritten blocks never drift, even across a huge jump.
	if err := d.Advance(3650 * day); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*core.BlockBytes)
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v != 0 {
			t.Fatal("unwritten block read nonzero")
		}
	}
	if d.DebtBlocks() != 0 {
		t.Fatalf("unwritten device reports debt %d", d.DebtBlocks())
	}
}

func TestDriftKillsUnrefreshedBlocks(t *testing.T) {
	d := newDev(t, 64, 2)
	fillDev(t, d)
	if bad := countBad(d); bad != 0 {
		t.Fatalf("%d blocks bad immediately after write", bad)
	}
	// 45 unrefreshed days: ~51% of 4LCo blocks are beyond BCH-10
	// (P(all 64 survive) ≈ 1e-20).
	if err := d.Advance(45 * day); err != nil {
		t.Fatal(err)
	}
	bad := countBad(d)
	if bad == 0 {
		t.Fatal("no blocks lost after 45 unrefreshed days; drift model inert")
	}
	st := d.Stats()
	if st.UncorrectableReads == 0 {
		t.Fatal("uncorrectable reads not counted")
	}
	if !errors.Is(firstReadErr(d), core.ErrUncorrectable) {
		t.Fatal("dead block read did not wrap core.ErrUncorrectable")
	}
}

func firstReadErr(d *Device) error {
	buf := make([]byte, core.BlockBytes)
	for b := 0; b < d.Blocks(); b++ {
		if _, err := d.ReadAt(buf, int64(b)*core.BlockBytes); err != nil {
			return err
		}
	}
	return nil
}

func TestRefreshKeepsBlocksAlive(t *testing.T) {
	d := newDev(t, 64, 3)
	fillDev(t, d)
	// A simulated week in paper-interval steps, refreshing every block
	// each step: nothing may die (per-step uncorr ≈ 1e-10 per block).
	steps := int(7*day) / 1020
	for i := 0; i < steps; i++ {
		if err := d.Advance(1020); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < d.Blocks(); b++ {
			out, err := d.RefreshBlock(b)
			if err != nil {
				t.Fatal(err)
			}
			if out == RefreshUncorrectable {
				t.Fatalf("block %d uncorrectable at step %d under paper-interval refresh", b, i)
			}
		}
	}
	if bad := countBad(d); bad != 0 {
		t.Fatalf("%d blocks lost under paper-interval refresh", bad)
	}
	st := d.Stats()
	if st.RefreshClean+st.RefreshCorrected == 0 {
		t.Fatal("refresh outcomes not counted")
	}
}

func TestRefreshZeroFillsUncorrectable(t *testing.T) {
	d := newDev(t, 32, 4)
	fillDev(t, d)
	if err := d.Advance(45 * day); err != nil {
		t.Fatal(err)
	}
	sawUncorr := false
	for b := 0; b < d.Blocks(); b++ {
		out, err := d.RefreshBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		if out == RefreshUncorrectable {
			sawUncorr = true
			buf := make([]byte, core.BlockBytes)
			if _, err := d.ReadAt(buf, int64(b)*core.BlockBytes); err != nil {
				t.Fatalf("refreshed block %d still unreadable: %v", b, err)
			}
			if !bytes.Equal(buf, make([]byte, core.BlockBytes)) {
				t.Fatalf("uncorrectable block %d not zero-filled by refresh", b)
			}
		}
	}
	if !sawUncorr {
		t.Fatal("45 unrefreshed days produced no uncorrectable refresh outcome")
	}
	// Every block is fresh again: nothing may read uncorrectable now.
	if err := firstReadErr(d); err != nil {
		t.Fatalf("read after full refresh pass: %v", err)
	}
}

func TestPartialWriteRestampsWholeBlock(t *testing.T) {
	d := newDev(t, 8, 5)
	fillDev(t, d)
	if err := d.Advance(45 * day); err != nil {
		t.Fatal(err)
	}
	// A 1-byte write physically rewrites its whole block: the block is
	// alive afterwards regardless of prior drift state (the RMW path
	// tolerates drifted content; the write replaces it at nominal).
	for b := 0; b < d.Blocks(); b++ {
		if _, err := d.WriteAt([]byte{0xAA}, int64(b)*core.BlockBytes+7); err != nil {
			t.Fatal(err)
		}
	}
	if err := firstReadErr(d); err != nil {
		t.Fatalf("read after touching every block: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := d.ReadAt(buf, 7); err != nil || buf[0] != 0xAA {
		t.Fatalf("partial write not applied: %v %x", err, buf[0])
	}
}

func TestDeviceBoundsAndEOF(t *testing.T) {
	d := newDev(t, 2, 6)
	buf := make([]byte, 3*core.BlockBytes)
	n, err := d.ReadAt(buf, 0)
	if err != io.EOF || n != 2*core.BlockBytes {
		t.Fatalf("overlong read = (%d, %v), want (%d, EOF)", n, err, 2*core.BlockBytes)
	}
	if _, err := d.WriteAt(buf, 0); err == nil {
		t.Fatal("overlong write accepted")
	}
	if _, err := d.ReadAt(buf[:1], -1); err == nil {
		t.Fatal("negative read offset accepted")
	}
	if _, err := d.WriteAt(buf[:1], -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if err := d.Advance(-1); err == nil {
		t.Fatal("negative advance accepted")
	}
}

func TestCorrectedReadsCounted(t *testing.T) {
	d := newDev(t, 256, 7)
	fillDev(t, d)
	// At ~3 hours, P(first error) ≈ 0.87 but P(beyond ECC) ≈ 1e-6:
	// essentially every block serves corrected, none die.
	if err := d.Advance(10200); err != nil {
		t.Fatal(err)
	}
	if bad := countBad(d); bad != 0 {
		t.Fatalf("%d blocks dead at 3 hours (uncorr should be ~1e-6)", bad)
	}
	if st := d.Stats(); st.CorrectedReads == 0 {
		t.Fatal("no corrected reads counted at an age where most blocks need correction")
	}
}

func TestDebtAgainstModelSafeAge(t *testing.T) {
	d := newDev(t, 16, 8)
	fillDev(t, d)
	safe := d.SafeAge()
	if safe < 1020 || safe > 20400 {
		t.Fatalf("4LCo safe age = %g s; want between the paper interval and ~20×", safe)
	}
	if d.DebtBlocks() != 0 {
		t.Fatal("fresh device already in debt")
	}
	if err := d.Advance(safe * 2); err != nil {
		t.Fatal(err)
	}
	if got := d.DebtBlocks(); got != 16 {
		t.Fatalf("debt = %d, want all 16 blocks past the safe age", got)
	}
	if got := d.OverdueBlocks(3 * safe); got != 0 {
		t.Fatalf("overdue(3×safe) = %d, want 0", got)
	}
}

func TestThreeLCNeverInDebt(t *testing.T) {
	m, err := NewErrorModel(ThreeLC())
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(DeviceConfig{Blocks: 8, Model: m, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fillDev(t, d)
	if err := d.Advance(3650 * day); err != nil {
		t.Fatal(err)
	}
	if d.DebtBlocks() != 0 {
		t.Fatal("3LCo in refresh debt: nonvolatility broken")
	}
	if bad := countBad(d); bad != 0 {
		t.Fatalf("%d 3LCo blocks lost in a decade", bad)
	}
}

func TestWriteDebitsBudget(t *testing.T) {
	b := NewBudget(64*1024, 512)
	m := fourModel(t)
	var stalls int
	d, err := NewDevice(DeviceConfig{
		Blocks: 8, Model: m, Seed: 10, Budget: b,
		OnStall: func(_ time.Duration) { stalls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the bucket with a forced debit, then write: the write must
	// stall and the stall must be observed.
	b.ForceTake(32 * 1024)
	if _, err := d.WriteAt(blockPattern(0), 0); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.StalledWrites == 0 || st.StallSeconds <= 0 || stalls == 0 {
		t.Fatalf("stall not recorded: %+v (hook calls %d)", st, stalls)
	}
}
