package pcmlive

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/drift"
	"repro/internal/levels"
	"repro/internal/rng"
)

// LevelsConfig describes the cell organization of one live 64-byte
// block: the level mapping its cells are programmed under, how many of
// its cells drift, and how many transient cell errors its ECC corrects.
type LevelsConfig struct {
	// Mapping is the level design (nominals, thresholds, occurrence
	// probabilities, drift parameters) the cells are written under.
	Mapping levels.Mapping
	// Cells is the number of drifting cells per block, ECC overhead
	// included (SLC-mode check cells, which do not drift on any horizon
	// this model resolves, are excluded).
	Cells int
	// ECCT is the transient-error correction capability t: a block with
	// more than t cell errors is uncorrectable.
	ECCT int
}

// FourLC returns the 4LCo organization of core.FourLC: 256 Gray-coded
// data cells plus 50 four-level check cells holding the BCH-10 parity,
// all drifting under the optimal four-level mapping.
func FourLC() LevelsConfig {
	return LevelsConfig{Mapping: levels.FourLCOpt(), Cells: 306, ECCT: 10}
}

// ThreeLC returns the 3LCo organization of core.ThreeLC: 354 ternary
// pair cells under the paper's optimally mapped three-level design with
// BCH-1 transient correction (the 10 check bits live in SLC cells and
// do not drift).
func ThreeLC() LevelsConfig {
	return LevelsConfig{Mapping: levels.ThreeLCOpt(), Cells: 354, ECCT: 1}
}

// ConfigForLevels maps a level count (4 or 3) to its preset.
func ConfigForLevels(levels int) (LevelsConfig, error) {
	switch levels {
	case 4:
		return FourLC(), nil
	case 3:
		return ThreeLC(), nil
	}
	return LevelsConfig{}, fmt.Errorf("pcmlive: unsupported level count %d (want 4 or 3)", levels)
}

// modelGrid is the log-spaced time grid the CDFs are tabulated on:
// from the drift reference time out to ~317 years, past any horizon
// the paper (or a serving benchmark) evaluates.
const (
	gridPoints = 384
	gridLo     = drift.T0 // 1 s
	gridHi     = 1e10     // ~317 years
)

// ErrorModel tabulates, for one cell organization, the CDFs of the two
// per-block drift order statistics that decide serving outcomes:
//
//	first(t)  = P(any cell errs by t)        = 1 − (1 − CER(t))^Cells
//	uncorr(t) = P(more than t errors by t)   = P(Binomial(Cells, CER(t)) ≥ ECCT+1)
//
// where CER is the mapping's cell error rate by deterministic
// quadrature (drift.QuadCERMix) — the exact curves of Figures 3, 7 and
// 8. Sampling a block life is then two inverse-CDF lookups sharing one
// uniform variate (comonotone coupling), which guarantees the first
// error never lands after the uncorrectable one while keeping both
// marginals exact.
type ErrorModel struct {
	cfg    LevelsConfig
	times  []float64 // ascending, log-spaced
	first  []float64 // CDF of the first cell error time
	uncorr []float64 // CDF of the (ECCT+1)-th cell error time
}

// NewErrorModel tabulates the model for one organization. The build
// runs the mapping's quadrature CER over the whole grid once (a few
// hundred evaluations); callers should reuse the model across devices.
func NewErrorModel(cfg LevelsConfig) (*ErrorModel, error) {
	if err := cfg.Mapping.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cells < 1 {
		return nil, errors.New("pcmlive: need at least one cell per block")
	}
	if cfg.ECCT < 0 || cfg.ECCT >= cfg.Cells {
		return nil, fmt.Errorf("pcmlive: ECC capability %d outside [0,%d)", cfg.ECCT, cfg.Cells)
	}
	m := &ErrorModel{
		cfg:    cfg,
		times:  make([]float64, gridPoints),
		first:  make([]float64, gridPoints),
		uncorr: make([]float64, gridPoints),
	}
	specs := cfg.Mapping.Specs()
	lo, hi := math.Log10(gridLo), math.Log10(gridHi)
	for i := range m.times {
		t := math.Pow(10, lo+(hi-lo)*float64(i)/float64(gridPoints-1))
		cer := drift.QuadCERMix(specs, cfg.Mapping.Probs, t)
		m.times[i] = t
		m.first[i] = -math.Expm1(float64(cfg.Cells) * math.Log1p(-cer))
		m.uncorr[i] = binomTail(cfg.Cells, cer, cfg.ECCT+1)
	}
	// Quadrature noise can leave microscopic non-monotonicity; the
	// inverse lookups require monotone CDFs.
	for i := 1; i < gridPoints; i++ {
		m.first[i] = math.Max(m.first[i], m.first[i-1])
		m.uncorr[i] = math.Max(m.uncorr[i], m.uncorr[i-1])
	}
	return m, nil
}

// Config returns the organization the model was built for.
func (m *ErrorModel) Config() LevelsConfig { return m.cfg }

// Name identifies the model in device names and reports.
func (m *ErrorModel) Name() string {
	return fmt.Sprintf("live-%s/bch%d", m.cfg.Mapping.Name, m.cfg.ECCT)
}

// SampleLife draws one block's drift life: the seconds after a write at
// which the block starts needing correction (first) and at which it
// passes beyond ECC (uncorr). Either may be +Inf (never, within the
// model horizon). Always first ≤ uncorr.
func (m *ErrorModel) SampleLife(r *rng.Rand) (first, uncorr float64) {
	u := r.Float64()
	return m.invert(m.first, u), m.invert(m.uncorr, u)
}

// FirstErrorProb returns P(any cell of a block errs within t seconds
// of its write) on the tabulated grid.
func (m *ErrorModel) FirstErrorProb(t float64) float64 { return m.at(m.first, t) }

// UncorrectableProb returns P(a block is beyond ECC within t seconds of
// its write) on the tabulated grid — the block error rate the paper's
// Section 4 bounds with the refresh interval.
func (m *ErrorModel) UncorrectableProb(t float64) float64 { return m.at(m.uncorr, t) }

// SafeInterval returns the longest age t at which the per-block
// uncorrectable probability is still at most target — the model's own
// answer to "how long may a block go unrefreshed". Returns +Inf when
// the whole tabulated horizon stays under target (3LCo at any
// practical target: the nonvolatile case).
func (m *ErrorModel) SafeInterval(target float64) float64 {
	n := len(m.uncorr)
	if m.uncorr[n-1] <= target {
		return math.Inf(1)
	}
	// Largest i with uncorr[i] <= target; the CDF is monotone.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.uncorr[mid] <= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return m.times[lo]
}

// at evaluates a tabulated CDF at time t with log-time interpolation.
func (m *ErrorModel) at(cdf []float64, t float64) float64 {
	if t <= m.times[0] {
		return 0
	}
	if t >= m.times[len(m.times)-1] {
		return cdf[len(cdf)-1]
	}
	lo, hi := math.Log10(gridLo), math.Log10(gridHi)
	pos := (math.Log10(t) - lo) / (hi - lo) * float64(gridPoints-1)
	i := int(pos)
	frac := pos - float64(i)
	return cdf[i] + (cdf[i+1]-cdf[i])*frac
}

// invert returns the time at which the tabulated CDF reaches u, +Inf
// when it never does within the grid horizon.
func (m *ErrorModel) invert(cdf []float64, u float64) float64 {
	n := len(cdf)
	if u > cdf[n-1] {
		return math.Inf(1)
	}
	// Binary search: smallest i with cdf[i] >= u.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] >= u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 || cdf[lo] == cdf[lo-1] {
		return m.times[lo]
	}
	// Interpolate in log-time between the bracketing grid points.
	frac := (u - cdf[lo-1]) / (cdf[lo] - cdf[lo-1])
	lt := math.Log10(m.times[lo-1]) + frac*(math.Log10(m.times[lo])-math.Log10(m.times[lo-1]))
	return math.Pow(10, lt)
}

// binomTail returns P(Binomial(n, p) ≥ k), computed through the
// complement sum of the k lowest terms in log space — stable for the
// small p and small k (ECC capability + 1) this model needs.
func binomTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	sum := 0.0
	lchoose := 0.0 // log C(n,0)
	for i := 0; i < k; i++ {
		if i > 0 {
			lchoose += math.Log(float64(n-i+1)) - math.Log(float64(i))
		}
		sum += math.Exp(lchoose + float64(i)*lp + float64(n-i)*lq)
	}
	if sum >= 1 {
		return 0
	}
	return 1 - sum
}
