package pcmlive

import (
	"testing"
	"time"
)

func TestBudgetTryTakeHonorsHeadroom(t *testing.T) {
	b := NewBudget(1e6, 1024)
	// Full bucket: taking 512 leaves 512, exactly the headroom.
	if !b.TryTake(512, 512) {
		t.Fatal("TryTake refused with exact headroom available")
	}
	// Now ~512 tokens: another 512 would leave nothing.
	if b.TryTake(512, 512) {
		t.Fatal("TryTake consumed the reserved headroom")
	}
	// Without a headroom requirement it may proceed.
	if !b.TryTake(256, 0) {
		t.Fatal("TryTake refused despite sufficient tokens and zero headroom")
	}
}

func TestBudgetForceTakeStallsForeground(t *testing.T) {
	// 64 KiB/s, small burst: a forced 64 KiB debit leaves ~1 s of debt.
	b := NewBudget(64*1024, 1024)
	b.ForceTake(64 * 1024)
	start := time.Now()
	stall := b.Take(64)
	elapsed := time.Since(start)
	if stall <= 0 {
		t.Fatalf("foreground take did not stall behind forced refresh debt (stall=%v)", stall)
	}
	if elapsed < 500*time.Millisecond {
		t.Fatalf("debt cleared implausibly fast: %v", elapsed)
	}
	st := b.Stats()
	if st.StalledTakes != 1 || st.ForcedTakes != 1 {
		t.Fatalf("stats = %+v, want 1 stalled take and 1 forced take", st)
	}
	if st.StallSeconds <= 0 {
		t.Fatalf("stall seconds not accrued: %+v", st)
	}
}

func TestBudgetTakeUnblockedWhenFunded(t *testing.T) {
	b := NewBudget(1e9, 1<<20)
	if stall := b.Take(4096); stall != 0 {
		t.Fatalf("funded take stalled %v", stall)
	}
}

func TestBudgetDefaultsAndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate budget did not panic")
		}
	}()
	b := NewBudget(40e6, 0)
	if b.Burst() != 40e6/20 {
		t.Fatalf("default burst = %g, want 50 ms of refill", b.Burst())
	}
	NewBudget(0, 0)
}
