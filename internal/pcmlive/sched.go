package pcmlive

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// SchedulerConfig assembles the refresh scheduler.
type SchedulerConfig struct {
	// Interval is the refresh interval in sim seconds: every written
	// block is revisited once per interval, the pass spread uniformly
	// across it the way the paper's Section 4 scrubber amortizes
	// refresh bandwidth (required > 0).
	Interval float64
	// Budget, when non-nil, is the shared write-bandwidth bucket
	// refresh bytes are bought from. On-schedule refreshes take tokens
	// only when ReserveBytes of headroom remain (yielding to
	// foreground); a refresh slot skipped for budget is retried next
	// tick without advancing the cursor, so the block keeps aging until
	// it is overdue (half a grace past the interval) — at which point
	// ForceTake preempts foreground.
	Budget *Budget
	// ReserveBytes is the headroom on-schedule refresh leaves in the
	// bucket (default: half the burst).
	ReserveBytes float64
	// Exec performs one block refresh on a shard, typically by routing
	// through the shard's queue so refresh serializes with foreground
	// traffic (required). The scheduler has already paid for the
	// refresh bytes when Exec is called. forced marks overdue refreshes
	// that preempted the budget: an Exec routing through load-shedding
	// admission must enqueue these unconditionally (an error drops the
	// slot, the block keeps aging, and the next visit arrives forced —
	// shedding can defer refresh but never starve it).
	Exec func(shard, block int, forced bool) (Outcome, error)
	// GraceFactor sets the deadline-miss threshold: a refresh executed
	// at block age > Interval×(1+GraceFactor) counts as a missed
	// deadline (default 0.25). The grace absorbs pass-phase jitter so
	// steady-state operation at the configured interval reports zero
	// misses.
	GraceFactor float64
	// OnOutcome and OnDeadlineMiss, when non-nil, observe per-refresh
	// events — the glue points for metric counters.
	OnOutcome      func(shard int, o Outcome)
	OnDeadlineMiss func(shard int)
}

// minWake is the shortest wall sleep the pass loop takes: faster
// cadences batch multiple due slots per wakeup, and a budget-starved
// loop retries no faster than this.
const minWake = 200 * time.Microsecond

// Scheduler drives budgeted refresh over a set of live Devices (one
// per shard), one goroutine per device. Construct with NewScheduler,
// arm with Start, and Stop before closing the shards.
type Scheduler struct {
	devs []*Device
	cfg  SchedulerConfig

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	passes        atomic.Uint64
	refreshed     atomic.Uint64
	forced        atomic.Uint64
	skipBudget    atomic.Uint64
	skipUnwritten atomic.Uint64
	execErrors    atomic.Uint64
	misses        atomic.Uint64
	outClean      atomic.Uint64
	outCorrected  atomic.Uint64
	outUncorr     atomic.Uint64
	debtPeak      atomic.Int64
}

// NewScheduler validates the configuration against the devices (one
// per shard, all sharing a time scale).
func NewScheduler(devs []*Device, cfg SchedulerConfig) (*Scheduler, error) {
	if len(devs) == 0 {
		return nil, errors.New("pcmlive: scheduler needs at least one device")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("pcmlive: refresh interval %g must be positive", cfg.Interval)
	}
	if cfg.Exec == nil {
		return nil, errors.New("pcmlive: SchedulerConfig.Exec is required")
	}
	if cfg.GraceFactor == 0 {
		cfg.GraceFactor = 0.25
	}
	if cfg.GraceFactor < 0 {
		return nil, fmt.Errorf("pcmlive: negative grace factor %g", cfg.GraceFactor)
	}
	if cfg.Budget != nil && cfg.ReserveBytes <= 0 {
		cfg.ReserveBytes = cfg.Budget.Burst() / 2
	}
	return &Scheduler{devs: devs, cfg: cfg, stop: make(chan struct{})}, nil
}

// Start launches one pass goroutine per device.
func (sc *Scheduler) Start() {
	for i := range sc.devs {
		sc.wg.Add(1)
		go sc.run(i)
	}
}

// Stop halts all pass goroutines and waits for them. Idempotent.
func (sc *Scheduler) Stop() {
	sc.stopOnce.Do(func() { close(sc.stop) })
	sc.wg.Wait()
}

// DebtPeak returns the highest refresh debt (blocks past the model
// safe age, summed over devices) the scheduler has observed.
func (sc *Scheduler) DebtPeak() int { return int(sc.debtPeak.Load()) }

// run is one device's pass loop: visit every block once per Interval
// of sim time, spread uniformly, buying each refresh from the budget.
// Pacing is slot-based: slot k falls due k ticks after start, and each
// wakeup processes every slot now due, so sleep overshoot batches up
// instead of stretching the pass past the interval.
func (sc *Scheduler) run(i int) {
	defer sc.wg.Done()
	d := sc.devs[i]
	// Wall nanoseconds per block so one pass spans Interval sim seconds.
	tickNs := sc.cfg.Interval / d.TimeScale() / float64(d.Blocks()) * 1e9
	if tickNs < 1 {
		tickNs = 1
	}
	start := time.Now()
	var slots int64 // refresh slots consumed so far
	cursor := 0
	timer := time.NewTimer(minWake)
	defer timer.Stop()
	for {
		due := int64(float64(time.Since(start))/tickNs) - slots
		if maxDue := int64(d.Blocks()); due > maxDue {
			// More than a full pass behind (budget debt, shard queue
			// pressure): a pass visits each block at most once, so the
			// surplus backlog is dropped rather than replayed.
			slots += due - maxDue
			due = maxDue
		}
		for ; due > 0; due-- {
			if !sc.refreshOne(i, d, cursor) {
				break // budget-starved: retry this block after a sleep
			}
			slots++
			cursor++
			if cursor >= d.Blocks() {
				cursor = 0
				sc.passes.Add(1)
				sc.sampleDebt()
			} else if slots%1024 == 0 {
				sc.sampleDebt()
			}
		}
		// Sleep until the next slot falls due, with a floor so a
		// budget-starved retry loop still yields the CPU.
		wait := time.Duration(float64(slots+1)*tickNs) - time.Since(start)
		if wait < minWake {
			wait = minWake
		}
		timer.Reset(wait)
		select {
		case <-sc.stop:
			return
		case <-timer.C:
		}
	}
}

// sampleDebt folds the instantaneous total debt into the peak gauge.
func (sc *Scheduler) sampleDebt() {
	debt := 0
	for _, d := range sc.devs {
		debt += d.DebtBlocks()
	}
	for {
		cur := sc.debtPeak.Load()
		if int64(debt) <= cur || sc.debtPeak.CompareAndSwap(cur, int64(debt)) {
			return
		}
	}
}

// refreshOne refreshes one block, honouring the budget's priority
// rules. Returns false when the slot was skipped for budget and the
// cursor must not advance (the block keeps aging toward overdue).
func (sc *Scheduler) refreshOne(shard int, d *Device, block int) bool {
	if !d.Written(block) {
		sc.skipUnwritten.Add(1)
		return true
	}
	age := d.BlockAge(block)
	// In steady state a block's age at its slot is exactly ~Interval
	// (it was last refreshed one pass ago), so "overdue" starts half a
	// grace past that — between the two, the budget-yielding TryTake
	// path applies and skipped slots retry; past it, the block has
	// genuinely been starved and preempts. The full grace marks a
	// deadline miss.
	overdue := age > sc.cfg.Interval*(1+0.5*sc.cfg.GraceFactor)
	if sc.cfg.Budget != nil {
		if overdue {
			sc.cfg.Budget.ForceTake(core.BlockBytes)
			sc.forced.Add(1)
		} else if !sc.cfg.Budget.TryTake(core.BlockBytes, sc.cfg.ReserveBytes) {
			sc.skipBudget.Add(1)
			return false
		}
	}
	if age > sc.cfg.Interval*(1+sc.cfg.GraceFactor) {
		sc.misses.Add(1)
		if sc.cfg.OnDeadlineMiss != nil {
			sc.cfg.OnDeadlineMiss(shard)
		}
	}
	out, err := sc.cfg.Exec(shard, block, overdue)
	if err != nil {
		// Shard dead or shutting down; drop the slot and move on.
		sc.execErrors.Add(1)
		return true
	}
	sc.refreshed.Add(1)
	switch out {
	case RefreshClean:
		sc.outClean.Add(1)
	case RefreshCorrected:
		sc.outCorrected.Add(1)
	case RefreshUncorrectable:
		sc.outUncorr.Add(1)
	case RefreshUnwritten:
		sc.skipUnwritten.Add(1)
	}
	if sc.cfg.OnOutcome != nil {
		sc.cfg.OnOutcome(shard, out)
	}
	return true
}

// SchedStats is a point-in-time snapshot of the scheduler's counters.
type SchedStats struct {
	// Passes counts completed walks of a device's block space (summed
	// over devices); Refreshed counts executed block refreshes.
	Passes    uint64 `json:"passes"`
	Refreshed uint64 `json:"refreshed"`
	// Outcome breakdown of executed refreshes.
	Clean         uint64 `json:"clean"`
	Corrected     uint64 `json:"corrected"`
	Uncorrectable uint64 `json:"uncorrectable"`
	// Forced counts overdue refreshes that preempted the budget;
	// SkippedBudget counts slots deferred for lack of budget headroom;
	// SkippedUnwritten counts slots over never-written blocks.
	Forced           uint64 `json:"forced"`
	SkippedBudget    uint64 `json:"skipped_budget"`
	SkippedUnwritten uint64 `json:"skipped_unwritten"`
	// ExecErrors counts refreshes dropped because the shard was dead or
	// closing; DeadlineMisses counts refreshes executed past
	// Interval×(1+GraceFactor) of block age.
	ExecErrors     uint64 `json:"exec_errors"`
	DeadlineMisses uint64 `json:"deadline_misses"`
	// DebtPeak is the highest total refresh debt observed.
	DebtPeak int `json:"debt_peak"`
}

// Stats snapshots the scheduler. Safe from any goroutine.
func (sc *Scheduler) Stats() SchedStats {
	return SchedStats{
		Passes:           sc.passes.Load(),
		Refreshed:        sc.refreshed.Load(),
		Clean:            sc.outClean.Load(),
		Corrected:        sc.outCorrected.Load(),
		Uncorrectable:    sc.outUncorr.Load(),
		Forced:           sc.forced.Load(),
		SkippedBudget:    sc.skipBudget.Load(),
		SkippedUnwritten: sc.skipUnwritten.Load(),
		ExecErrors:       sc.execErrors.Load(),
		DeadlineMisses:   sc.misses.Load(),
		DebtPeak:         sc.DebtPeak(),
	}
}

// RecommendedTimeScale returns a time scale at which a refresh pass of
// the given sim interval over blocks×shards blocks demands about
// demandBytesPerSec of wall write bandwidth — the helper sweep modes
// use to keep refresh wall-demand constant while sweeping the sim
// interval.
func RecommendedTimeScale(intervalSim float64, blocks, shards int, demandBytesPerSec float64) float64 {
	totalBytes := float64(blocks*shards) * core.BlockBytes
	if totalBytes <= 0 || demandBytesPerSec <= 0 {
		return 1
	}
	ts := intervalSim * demandBytesPerSec / totalBytes
	return math.Max(ts, 1)
}
