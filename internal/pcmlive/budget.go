package pcmlive

import (
	"sync"
	"sync/atomic"
	"time"
)

// Budget is a wall-clock token bucket metering the device's write
// bandwidth in bytes — the paper's Section 4 accounting where refresh
// and foreground writes compete for the same 40 MB/s of array write
// throughput. One Budget is shared by every shard of a live device;
// three take paths encode the priority scheme:
//
//   - Take (foreground writes) blocks until tokens are available. The
//     time spent blocked is the refresh-induced bank-busy stall the
//     caller observes.
//   - TryTake (on-schedule refresh) only succeeds when taking would
//     still leave the requested headroom, so routine refresh yields to
//     foreground bursts.
//   - ForceTake (overdue refresh) always succeeds, driving the bucket
//     negative if needed; foreground Take then stalls until the refill
//     pays the debt off. This is the priority aging that keeps refresh
//     from starving.
//
// All methods are safe for concurrent use.
type Budget struct {
	mu     sync.Mutex
	rate   float64 // bytes per wall second
	burst  float64 // bucket capacity in bytes
	tokens float64 // current tokens; negative = overdue-refresh debt
	last   time.Time

	stallNanos atomic.Int64
	stalls     atomic.Uint64
	forced     atomic.Uint64
}

// NewBudget builds a bucket refilling at bytesPerSec with the given
// burst capacity in bytes. A zero or negative burst defaults to 50 ms
// of refill (but never less than four 64-byte blocks). bytesPerSec
// must be positive; callers wanting an unmetered device pass a nil
// *Budget instead.
func NewBudget(bytesPerSec, burst float64) *Budget {
	if bytesPerSec <= 0 {
		panic("pcmlive: budget rate must be positive (use a nil Budget for unmetered)")
	}
	if burst <= 0 {
		burst = bytesPerSec / 20
		if burst < 256 {
			burst = 256
		}
	}
	return &Budget{rate: bytesPerSec, burst: burst, tokens: burst, last: time.Now()}
}

// Rate returns the refill rate in bytes per wall second.
func (b *Budget) Rate() float64 { return b.rate }

// Burst returns the bucket capacity in bytes.
func (b *Budget) Burst() float64 { return b.burst }

// refillLocked accrues tokens for the wall time since the last refill.
// The cap only applies on the way up: a negative balance (ForceTake
// debt) accrues toward zero at the same rate.
func (b *Budget) refillLocked(now time.Time) {
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += b.rate * dt
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Take debits n bytes for a foreground write, blocking until the
// bucket can fund them, and returns how long it blocked — the
// bank-busy stall the write observed.
func (b *Budget) Take(n int) time.Duration {
	need := float64(n)
	var start time.Time // zero until the first time we have to wait
	for {
		now := time.Now()
		b.mu.Lock()
		b.refillLocked(now)
		if b.tokens >= need {
			b.tokens -= need
			b.mu.Unlock()
			if start.IsZero() {
				return 0 // funded on the first try: no stall
			}
			stall := time.Since(start)
			b.stallNanos.Add(int64(stall))
			b.stalls.Add(1)
			return stall
		}
		if start.IsZero() {
			start = now
		}
		wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		// Sleep for the projected refill, then re-check: a concurrent
		// taker may have raced us to the tokens.
		if wait < 10*time.Microsecond {
			wait = 10 * time.Microsecond
		}
		time.Sleep(wait)
	}
}

// TryTake debits n bytes only if the bucket would still hold at least
// headroom bytes afterwards — the yielding path for on-schedule
// refresh.
func (b *Budget) TryTake(n int, headroom float64) bool {
	need := float64(n)
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens-need < headroom {
		return false
	}
	b.tokens -= need
	return true
}

// ForceTake debits n bytes unconditionally, driving the bucket
// negative if needed — the preempting path for overdue refresh.
// Foreground Take callers stall until the refill clears the debt.
func (b *Budget) ForceTake(n int) {
	now := time.Now()
	b.mu.Lock()
	b.refillLocked(now)
	b.tokens -= float64(n)
	b.mu.Unlock()
	b.forced.Add(1)
}

// BudgetStats is a point-in-time snapshot of the bucket's contention
// counters.
type BudgetStats struct {
	// StalledTakes counts foreground Takes that blocked; StallSeconds
	// is their cumulative blocked time.
	StalledTakes uint64
	StallSeconds float64
	// ForcedTakes counts overdue-refresh debits that preempted the
	// bucket.
	ForcedTakes uint64
	// Tokens is the instantaneous balance (negative = refresh debt).
	Tokens float64
}

// Stats snapshots the bucket. Safe to call concurrently with takers.
func (b *Budget) Stats() BudgetStats {
	now := time.Now()
	b.mu.Lock()
	b.refillLocked(now)
	tokens := b.tokens
	b.mu.Unlock()
	return BudgetStats{
		StalledTakes: b.stalls.Load(),
		StallSeconds: float64(b.stallNanos.Load()) / 1e9,
		ForcedTakes:  b.forced.Load(),
		Tokens:       tokens,
	}
}
