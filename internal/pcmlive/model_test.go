package pcmlive

import (
	"math"
	"testing"

	"repro/internal/levels"
	"repro/internal/rng"
)

func TestModelCalibration(t *testing.T) {
	four, err := NewErrorModel(FourLC())
	if err != nil {
		t.Fatal(err)
	}
	three, err := NewErrorModel(ThreeLC())
	if err != nil {
		t.Fatal(err)
	}
	day := 86400.0
	for _, tc := range []struct {
		name string
		m    *ErrorModel
		t    float64
	}{
		{"4LC@17m", four, 1020},
		{"4LC@170m", four, 10200},
		{"4LC@1d", four, day},
		{"4LC@4d", four, 4 * day},
		{"4LC@12d", four, 12 * day},
		{"4LC@30d", four, 30 * day},
		{"4LC@45d", four, 45 * day},
		{"3LC@10y", three, 10 * 365.25 * day},
	} {
		t.Logf("%-10s first=%.3e uncorr=%.3e", tc.name, tc.m.FirstErrorProb(tc.t), tc.m.UncorrectableProb(tc.t))
	}
	_ = levels.FourLCOpt()
	r := rng.New(1)
	inf, dead := 0, 0
	for i := 0; i < 10000; i++ {
		f, u := four.SampleLife(r)
		if f > u {
			t.Fatalf("first %v > uncorr %v", f, u)
		}
		if math.IsInf(u, 1) {
			inf++
		}
		if u < 45*day {
			dead++
		}
	}
	t.Logf("4LC samples: %d/10000 never uncorrectable, %d/10000 dead within 45d", inf, dead)
}
