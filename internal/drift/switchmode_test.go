package drift

import (
	"math"
	"testing"
)

// switchSpec builds a 3LC-like S2 spec with the given switch mode.
func switchSpec(mode SwitchMode) StateSpec {
	return StateSpec{
		Nominal: 3.967, Sigma: SigmaLogR, Upper: 5.533,
		Alpha:  Table1[1].Alpha,
		Switch: &RateSwitch{AtLogR: 4.5, Alpha: Table1[2].Alpha, Mode: mode},
	}
}

func TestSwitchModeStrings(t *testing.T) {
	for _, m := range []SwitchMode{SwitchResample, SwitchCorrelated, SwitchMeanOnly} {
		if m.String() == "SwitchMode(?)" {
			t.Errorf("mode %d has no name", int(m))
		}
	}
}

func TestMeanOnlyIsMostOptimistic(t *testing.T) {
	// With α2 pinned at its mean, the deep tail vanishes: phase 2 alone
	// takes d2/µα2 ≈ 17 log-decades, so nothing errs on any human
	// timescale — strictly below both stochastic modes.
	year := 365.25 * 86400.0
	for _, tt := range []float64{year, 10 * year, 68 * year} {
		mean := QuadCER(switchSpec(SwitchMeanOnly), tt)
		res := QuadCER(switchSpec(SwitchResample), tt)
		if mean > res {
			t.Errorf("t=%v: mean-only %v above resample %v", tt, mean, res)
		}
	}
	if got := QuadCER(switchSpec(SwitchMeanOnly), 68*year); got != 0 {
		t.Errorf("mean-only CER at 68 yr = %v, want exactly 0", got)
	}
}

func TestModesAgreeWithMonteCarlo(t *testing.T) {
	const n = 4_000_000
	year := 365.25 * 86400.0
	for _, mode := range []SwitchMode{SwitchResample, SwitchCorrelated, SwitchMeanOnly} {
		spec := switchSpec(mode)
		times := []float64{10 * year, 68 * year}
		res := MCCERCurve([]StateSpec{spec}, []float64{1}, times, n, 5, 0)
		for i, tt := range times {
			q := QuadCER(spec, tt)
			mc := res.CER[i]
			tol := 6*math.Sqrt(math.Max(q, 1e-7)/n) + 3e-6
			if math.Abs(mc-q) > tol {
				t.Errorf("%v t=%v: MC %v vs quad %v", mode, tt, mc, q)
			}
		}
	}
}

func TestCorrelatedMonotoneInTime(t *testing.T) {
	spec := switchSpec(SwitchCorrelated)
	prev := -1.0
	for _, tt := range []float64{1e6, 1e7, 1e8, 1e9, 1e10} {
		cur := QuadCER(spec, tt)
		if cur < prev {
			t.Fatalf("correlated CER decreased at t=%v", tt)
		}
		if cur < 0 || cur > 1 || math.IsNaN(cur) {
			t.Fatalf("correlated CER out of range at t=%v: %v", tt, cur)
		}
		prev = cur
	}
}

func TestModeSpreadAtLongHorizons(t *testing.T) {
	// The modeling choice must actually matter in the deep tail (that is
	// the point of exposing it): at 68 years the three modes span orders
	// of magnitude.
	year := 365.25 * 86400.0
	res := QuadCER(switchSpec(SwitchResample), 68*year)
	cor := QuadCER(switchSpec(SwitchCorrelated), 68*year)
	mean := QuadCER(switchSpec(SwitchMeanOnly), 68*year)
	if !(mean <= cor && mean <= res) {
		t.Errorf("mean-only (%v) not the optimistic extreme (cor %v, res %v)", mean, cor, res)
	}
	hi := math.Max(cor, res)
	if hi <= 0 || mean > hi/10 {
		t.Errorf("modes too close to matter: mean %v vs max %v", mean, hi)
	}
}
