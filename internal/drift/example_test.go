package drift_test

import (
	"fmt"

	"repro/internal/drift"
)

// Evaluate the drift law for an S2 cell written at its nominal value:
// log-resistance grows linearly in log-time until it crosses the next
// state's threshold (Figure 2).
func Example() {
	spec := drift.StateSpec{
		Nominal: 4, Sigma: drift.SigmaLogR, Upper: 4.5,
		Alpha: drift.Table1[1].Alpha, // S2: µα = 0.02
	}
	for _, t := range []float64{1, 1020, 3.156e7} {
		logR := spec.LogRAt(spec.Nominal, spec.Alpha.Mu, 0, t)
		fmt.Printf("t=%8.0fs  log10R=%.3f\n", t, logR)
	}
	// CER by deterministic quadrature at the 17-minute refresh interval.
	fmt.Printf("CER(17min) = %.2E\n", drift.QuadCER(spec, 1020))
	// Output:
	// t=       1s  log10R=4.000
	// t=    1020s  log10R=4.060
	// t=31560000s  log10R=4.150
	// CER(17min) = 1.67E-03
}
