package drift

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// naive4LC builds the conventional four-level-cell state specs: nominals
// at 10^3..10^6 Ω and thresholds midway in the log domain (Figure 1).
func naive4LC() []StateSpec {
	uppers := []float64{3.5, 4.5, 5.5, math.Inf(1)}
	specs := make([]StateSpec, 4)
	for i := range specs {
		specs[i] = StateSpec{
			Nominal: Table1[i].MuLogR,
			Sigma:   SigmaLogR,
			Upper:   uppers[i],
			Alpha:   Table1[i].Alpha,
		}
	}
	return specs
}

func TestTopStateNeverErrs(t *testing.T) {
	s := naive4LC()[3]
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		if !math.IsInf(s.ErrorTime(r), 1) {
			t.Fatal("S4 produced a finite error time")
		}
	}
	if got := QuadCER(s, 1e12); got != 0 {
		t.Fatalf("S4 QuadCER = %v", got)
	}
}

func TestS1EssentiallyNeverErrs(t *testing.T) {
	// S1's µα = 0.001 with τ1-µ1 = 0.5: crossing within 17 minutes would
	// need α ≈ 0.014 even from the top of the write window, which is 33σ
	// out. Per the paper, "the infinitesimal drift essentially never
	// changes an S1 state into an S2 state."
	if got := QuadCER(naive4LC()[0], 17*60); got > 1e-30 {
		t.Fatalf("S1 CER at 17 min = %v, expected ~0", got)
	}
}

func TestErrorTimeAlwaysAfterT0(t *testing.T) {
	r := rng.New(2)
	for _, s := range naive4LC()[:3] {
		for i := 0; i < 10000; i++ {
			te := s.ErrorTime(r)
			if te < T0 {
				t.Fatalf("error time %v before t0", te)
			}
		}
	}
}

func TestQuadCERMonotonicInTime(t *testing.T) {
	s := naive4LC()[2] // S3
	prev := -1.0
	for _, tt := range []float64{2, 10, 30, 1020, 3600, 86400, 3.15e7, 3.15e9} {
		cur := QuadCER(s, tt)
		if cur < prev-1e-15 {
			t.Fatalf("CER decreased over time: %v after %v at t=%v", cur, prev, tt)
		}
		prev = cur
	}
}

func TestPaperAnchorS3Dominates(t *testing.T) {
	// Figure 3: S3's cell error rate is roughly an order of magnitude
	// above S2's across the practical range.
	specs := naive4LC()
	for _, tt := range []float64{60, 1020, 9 * 3600} {
		s2 := QuadCER(specs[1], tt)
		s3 := QuadCER(specs[2], tt)
		if s3 < 3*s2 {
			t.Errorf("at t=%v S3 CER %v not well above S2 CER %v", tt, s3, s2)
		}
	}
}

func TestPaperAnchor4LCnAt30s(t *testing.T) {
	// Section 5.3: "The cell error rate is 1E-3 at a very frequent refresh
	// interval of 30 s" for 4LCn with equal state probabilities. Accept a
	// factor-of-five band around the published value.
	specs := naive4LC()
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	got := QuadCERMix(specs, probs, 30)
	if got < 2e-4 || got > 5e-3 {
		t.Fatalf("4LCn CER(30 s) = %v, want ~1E-3", got)
	}
}

func TestPaperAnchor4LCnAt17min(t *testing.T) {
	// Section 5.3: at 17 minutes or longer, 4LCn cell error rates are
	// "too high (> 1E-2)" — dominated by S3.
	got := QuadCER(naive4LC()[2], 17*60)
	if got < 1e-2 {
		t.Fatalf("S3 CER(17 min) = %v, want > 1E-2", got)
	}
}

func TestMCAgreesWithQuad(t *testing.T) {
	specs := naive4LC()
	times := []float64{30, 1020, 86400}
	const n = 2_000_000
	res := MCCERCurve(specs[2:3], []float64{1}, times, n, 42, 0)
	for i, tt := range times {
		q := QuadCER(specs[2], tt)
		mc := res.CER[i]
		// Allow 5 binomial standard errors plus a small absolute floor.
		se := math.Sqrt(q*(1-q)/n)*5 + 2e-6
		if math.Abs(mc-q) > se {
			t.Errorf("t=%v: MC %v vs quad %v (tol %v)", tt, mc, q, se)
		}
	}
}

func TestMCMixtureAgreesWithQuadMix(t *testing.T) {
	specs := naive4LC()
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	times := []float64{1020}
	const n = 2_000_000
	res := MCCERCurve(specs, probs, times, n, 7, 4)
	q := QuadCERMix(specs, probs, 1020)
	se := math.Sqrt(q*(1-q)/n)*5 + 2e-6
	if math.Abs(res.CER[0]-q) > se {
		t.Errorf("mixture MC %v vs quad %v", res.CER[0], q)
	}
}

func TestMCDeterministicAcrossRuns(t *testing.T) {
	specs := naive4LC()[2:3]
	times := []float64{30, 1020}
	a := MCCERCurve(specs, []float64{1}, times, 100000, 5, 3)
	b := MCCERCurve(specs, []float64{1}, times, 100000, 5, 3)
	for i := range times {
		if a.CER[i] != b.CER[i] {
			t.Fatalf("same seed/workers diverged at %d: %v vs %v", i, a.CER[i], b.CER[i])
		}
	}
}

func TestMCCurveMonotone(t *testing.T) {
	specs := naive4LC()
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	times := []float64{2, 32, 1020, 32400, 1.0368e6, 3.15e7}
	res := MCCERCurve(specs, probs, times, 500000, 11, 0)
	for i := 1; i < len(times); i++ {
		if res.CER[i] < res.CER[i-1] {
			t.Fatalf("MC curve not monotone at index %d", i)
		}
	}
}

func TestRateSwitchAcceleratesErrors(t *testing.T) {
	// A 3LC S2 state with the drift-rate switch at 10^4.5 Ω must err no
	// later (statistically) than the same geometry without the switch.
	base := StateSpec{
		Nominal: 4, Sigma: SigmaLogR, Upper: 5.5,
		Alpha: Table1[1].Alpha,
	}
	switched := base
	switched.Switch = &RateSwitch{AtLogR: 4.5, Alpha: Table1[2].Alpha}
	for _, tt := range []float64{1e4, 1e6, 1e8} {
		p0 := QuadCER(base, tt)
		p1 := QuadCER(switched, tt)
		if p1+1e-18 < p0 {
			t.Errorf("t=%v: switched CER %v below unswitched %v", tt, p1, p0)
		}
	}
	// And at long horizons it should be strictly faster.
	if QuadCER(switched, 1e8) <= QuadCER(base, 1e8) {
		t.Error("rate switch had no accelerating effect at t=1e8")
	}
}

func TestRateSwitchQuadVsMC(t *testing.T) {
	spec := StateSpec{
		Nominal: 4, Sigma: SigmaLogR, Upper: 5.53,
		Alpha:  Table1[1].Alpha,
		Switch: &RateSwitch{AtLogR: 4.5, Alpha: Table1[2].Alpha},
	}
	const n = 4_000_000
	times := []float64{1e5, 1e6, 1e7}
	res := MCCERCurve([]StateSpec{spec}, []float64{1}, times, n, 99, 0)
	for i, tt := range times {
		q := QuadCER(spec, tt)
		mc := res.CER[i]
		se := math.Sqrt(math.Max(q, 1e-7)*(1)/n)*6 + 3e-6
		if math.Abs(mc-q) > se {
			t.Errorf("switch t=%v: MC %v vs quad %v (tol %v)", tt, mc, q, se)
		}
	}
}

func TestLogRAtContinuity(t *testing.T) {
	spec := StateSpec{
		Nominal: 4, Sigma: SigmaLogR, Upper: 5.5,
		Alpha:  AlphaParams{0.02, 0.008},
		Switch: &RateSwitch{AtLogR: 4.5, Alpha: AlphaParams{0.06, 0.024}},
	}
	x, a1, a2 := 4.2, 0.1, 0.08 // crossing at 10^((4.5-4.2)/0.1) = 10^3 s
	// Crossing time of the switch resistance.
	tCross := T0 * math.Pow(10, (4.5-x)/a1)
	before := spec.LogRAt(x, a1, a2, tCross*0.999)
	after := spec.LogRAt(x, a1, a2, tCross*1.001)
	if math.Abs(before-4.5) > 0.01 || math.Abs(after-4.5) > 0.01 {
		t.Fatalf("trajectory discontinuous at switch: %v / %v", before, after)
	}
	// Monotone non-decreasing overall.
	prev := -math.MaxFloat64
	for _, tt := range []float64{1, 10, 100, tCross, 1e6, 1e9} {
		v := spec.LogRAt(x, a1, a2, tt)
		if v < prev {
			t.Fatalf("trajectory decreased at t=%v", tt)
		}
		prev = v
	}
}

func TestLogRAtNoDriftForNegativeAlpha(t *testing.T) {
	spec := StateSpec{Nominal: 4, Sigma: SigmaLogR, Upper: 5.5, Alpha: AlphaParams{0.02, 0.008}}
	if got := spec.LogRAt(4.1, -0.01, 0, 1e9); got != 4.1 {
		t.Fatalf("negative alpha drifted: %v", got)
	}
}

func TestAlphaForLevel(t *testing.T) {
	cases := []struct {
		mu   float64
		want float64
	}{
		{3, 0.001}, {3.4, 0.001}, {3.9, 0.02}, {4.6, 0.06}, {5.2, 0.06}, {6, 0.1}, {7, 0.1},
	}
	for _, c := range cases {
		if got := AlphaForLevel(c.mu); got.Mu != c.want {
			t.Errorf("AlphaForLevel(%v).Mu = %v, want %v", c.mu, got.Mu, c.want)
		}
	}
}

func TestQuadCERBounds(t *testing.T) {
	f := func(nomRaw, gapRaw uint16, tExp uint8) bool {
		nominal := 3 + float64(nomRaw%2000)/1000      // [3, 5)
		upper := nominal + 0.46 + float64(gapRaw%1500)/1000
		tt := math.Pow(10, float64(tExp%12))
		spec := StateSpec{
			Nominal: nominal, Sigma: SigmaLogR, Upper: upper,
			Alpha: AlphaForLevel(nominal),
		}
		p := QuadCER(spec, tt)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMCCERCurvePanics(t *testing.T) {
	spec := naive4LC()[1]
	for name, fn := range map[string]func(){
		"mismatch": func() {
			MCCERCurve([]StateSpec{spec}, []float64{0.5, 0.5}, []float64{1}, 10, 1, 1)
		},
		"unsorted": func() {
			MCCERCurve([]StateSpec{spec}, []float64{1}, []float64{10, 1}, 10, 1, 1)
		},
		"zeroSamples": func() {
			MCCERCurve([]StateSpec{spec}, []float64{1}, []float64{1}, 0, 1, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkQuadCER(b *testing.B) {
	s := naive4LC()[2]
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += QuadCER(s, 1020)
	}
	_ = sink
}

func BenchmarkQuadCERSwitch(b *testing.B) {
	s := StateSpec{
		Nominal: 4, Sigma: SigmaLogR, Upper: 5.53,
		Alpha:  Table1[1].Alpha,
		Switch: &RateSwitch{AtLogR: 4.5, Alpha: Table1[2].Alpha},
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += QuadCER(s, 1e7)
	}
	_ = sink
}

func BenchmarkMCCER1M(b *testing.B) {
	specs := naive4LC()
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	times := []float64{2, 32, 1020, 32400, 1.0368e6, 3.15e7, 1.07e9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MCCERCurve(specs, probs, times, 1_000_000, uint64(i), 0)
	}
}
