// Package drift implements the resistance-drift model of multilevel-cell
// phase change memory from Section 2 of the paper, including Table 1's
// parameters, and computes cell error rates (CER) two independent ways:
//
//   - Parallel Monte Carlo over per-cell samples of the written resistance
//     and drift exponent (the paper's methodology, Sections 2.4 and 5.3).
//   - Deterministic Gauss–Legendre quadrature over the same distributions,
//     which resolves error rates far below any practical Monte Carlo floor
//     and serves as the optimizer objective and as a cross-check.
//
// Model. A cell programmed to a state with nominal log10 resistance µ is
// accepted by iterative write-and-verify when its log10 resistance lies
// within ±2.75 σ of µ, so the written log-resistance x follows a truncated
// Gaussian. The resistance then drifts as
//
//	R(t) = R0 · (t/t0)^α,  i.e.  log10 R(t) = x + α·log10(t/t0),
//
// with a per-cell drift exponent α ~ N(µα, σα) (Table 1). A transient
// error occurs when log10 R(t) crosses the threshold τ into the next
// state's region. For the three-level-cell designs the paper conservatively
// switches a drifting S2 cell to S3's faster drift parameters once its
// log-resistance reaches 4.5 (the original τ2 of the naive four-level
// mapping); RateSwitch models that piecewise behaviour.
package drift

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// T0 is the reference sense time t0 of the drift law, in seconds: the cell
// resistance is defined to be the written value R0 at t = t0. With Table
// 1's parameters this choice reproduces the paper's anchor numbers (see
// DESIGN.md).
const T0 = 1.0

// WriteWindow is the write-and-verify acceptance window in multiples of
// the per-state σ: a write is accepted within ±2.75 σ of nominal.
const WriteWindow = 2.75

// SigmaLogR is Table 1's standard deviation of written log10 resistance,
// identical for all four states.
const SigmaLogR = 1.0 / 6.0

// AlphaParams describes the Gaussian distribution of the drift exponent α.
type AlphaParams struct {
	Mu, Sigma float64
}

// SwitchMode selects how the post-switch drift exponent relates to the
// cell's pre-switch exponent. The paper specifies only that S3's
// parameters apply after the switch (Section 5.3); how much of the
// cell's individual variation carries over is a modeling choice that
// dominates the deep retention tail, so all three natural readings are
// implemented and compared (exhibit A6).
type SwitchMode int

const (
	// SwitchResample draws a fresh α from the post-switch distribution,
	// independent of the cell's earlier exponent (the default; the most
	// conservative spread).
	SwitchResample SwitchMode = iota
	// SwitchCorrelated keeps the cell's standard score: a cell that
	// drifted fast keeps drifting fast (α is a per-cell material
	// property).
	SwitchCorrelated
	// SwitchMeanOnly applies the post-switch mean with no variation —
	// the literal reading of "using S3's drift rate parameters: µα".
	SwitchMeanOnly
)

// String implements fmt.Stringer.
func (m SwitchMode) String() string {
	switch m {
	case SwitchResample:
		return "resample"
	case SwitchCorrelated:
		return "correlated"
	case SwitchMeanOnly:
		return "mean-only"
	}
	return "SwitchMode(?)"
}

// RateSwitch models the conservative drift-rate increase for 3LC designs:
// once a cell's log-resistance reaches AtLogR, drift continues with an
// exponent from Alpha, related to the pre-switch exponent per Mode.
type RateSwitch struct {
	AtLogR float64
	Alpha  AlphaParams
	Mode   SwitchMode
}

// StateSpec fully describes the drift-error behaviour of one programmed
// state under a particular level mapping.
type StateSpec struct {
	Nominal float64     // µ: nominal log10 resistance
	Sigma   float64     // σ of written log10 resistance
	Upper   float64     // τ: threshold into the next state; +Inf for the top state
	Alpha   AlphaParams // drift exponent distribution
	Switch  *RateSwitch // optional piecewise rate increase (3LC designs)
}

// Table1 holds the published MLC-PCM resistance and drift parameters
// (paper Table 1, after Xu & Zhang): nominal log10 R of 3, 4, 5, 6 for
// S1..S4, σR = 1/6, µα = 0.001, 0.02, 0.06, 0.1 and σα = 0.4·µα.
var Table1 = [4]struct {
	MuLogR float64
	Alpha  AlphaParams
}{
	{3, AlphaParams{0.001, 0.4 * 0.001}},
	{4, AlphaParams{0.02, 0.4 * 0.02}},
	{5, AlphaParams{0.06, 0.4 * 0.06}},
	{6, AlphaParams{0.1, 0.4 * 0.1}},
}

// AlphaForLevel returns Table 1's drift-exponent distribution for the
// state whose nominal log10 resistance is closest to muLogR. The paper's
// drift rate is tied to the resistance regime rather than to the logical
// state index, so remapped states inherit the parameters of their
// resistance neighbourhood.
func AlphaForLevel(muLogR float64) AlphaParams {
	best := 0
	bestD := math.Inf(1)
	for i, e := range Table1 {
		if d := math.Abs(e.MuLogR - muLogR); d < bestD {
			best, bestD = i, d
		}
	}
	return Table1[best].Alpha
}

// WriteLow and WriteHigh return the acceptance bounds of write-and-verify.
func (s StateSpec) WriteLow() float64  { return s.Nominal - WriteWindow*s.Sigma }
func (s StateSpec) WriteHigh() float64 { return s.Nominal + WriteWindow*s.Sigma }

// SampleWrite draws a written log10 resistance from the truncated
// Gaussian acceptance distribution.
func (s StateSpec) SampleWrite(r *rng.Rand) float64 {
	return r.TruncNorm(s.Nominal, s.Sigma, s.WriteLow(), s.WriteHigh())
}

// LogRAt returns the cell's log10 resistance at time t (seconds) given its
// written value x and drift exponent(s). alpha2 is used only when the spec
// has a rate switch and the trajectory crosses it.
func (s StateSpec) LogRAt(x, alpha, alpha2, t float64) float64 {
	if t <= T0 {
		return x
	}
	l := math.Log10(t / T0)
	if s.Switch == nil || x >= s.Switch.AtLogR {
		a := alpha
		if s.Switch != nil && x >= s.Switch.AtLogR {
			a = alpha2
		}
		if a <= 0 {
			return x
		}
		return x + a*l
	}
	if alpha <= 0 {
		return x
	}
	// Phase 1 up to the switch resistance.
	l1 := (s.Switch.AtLogR - x) / alpha
	if l >= l1 {
		if alpha2 <= 0 {
			return s.Switch.AtLogR
		}
		return s.Switch.AtLogR + alpha2*(l-l1)
	}
	return x + alpha*l
}

// ErrorTime returns the time in seconds at which a freshly written cell's
// log-resistance crosses the state's upper threshold, or +Inf if it never
// does under the model (top state, non-positive drift exponent, or a
// threshold below the switch point already reached).
//
// Closed form: log10(t/t0) = (τ-x)/α, piecewise through the rate switch.
func (s StateSpec) ErrorTime(r *rng.Rand) float64 {
	if math.IsInf(s.Upper, 1) {
		return math.Inf(1)
	}
	x := s.SampleWrite(r)
	alpha := r.Normal(s.Alpha.Mu, s.Alpha.Sigma)
	if s.Switch == nil || s.Upper <= s.Switch.AtLogR {
		return errorTimeSimple(x, alpha, s.Upper)
	}
	a2 := s.SampleAlpha2(r, alpha)
	if x >= s.Switch.AtLogR {
		// Written already past the switch point: drift entirely at the
		// post-switch rate.
		return errorTimeSimple(x, a2, s.Upper)
	}
	if alpha <= 0 {
		return math.Inf(1)
	}
	l1 := (s.Switch.AtLogR - x) / alpha
	if a2 <= 0 {
		return math.Inf(1)
	}
	l := l1 + (s.Upper-s.Switch.AtLogR)/a2
	return T0 * math.Pow(10, l)
}

// SampleAlpha2 draws the post-switch exponent per the switch mode, given
// the cell's pre-switch exponent. It panics if the spec has no switch.
func (s StateSpec) SampleAlpha2(r *rng.Rand, alpha float64) float64 {
	sw := s.Switch
	switch sw.Mode {
	case SwitchCorrelated:
		z := (alpha - s.Alpha.Mu) / s.Alpha.Sigma
		return sw.Alpha.Mu + sw.Alpha.Sigma*z
	case SwitchMeanOnly:
		return sw.Alpha.Mu
	}
	return r.Normal(sw.Alpha.Mu, sw.Alpha.Sigma)
}

func errorTimeSimple(x, alpha, upper float64) float64 {
	if x >= upper {
		return T0 // out-of-state writes err immediately (cannot happen within ±2.75σ windows that respect constraints)
	}
	if alpha <= 0 {
		return math.Inf(1)
	}
	return T0 * math.Pow(10, (upper-x)/alpha)
}

// MCResult is a Monte Carlo CER estimate with its sampling resolution.
type MCResult struct {
	CER     []float64 // per entry of the time grid
	Samples int64
}

// Floor returns the smallest nonzero rate resolvable by the sample count.
func (m MCResult) Floor() float64 { return 1 / float64(m.Samples) }

// MCCERCurve estimates, by parallel Monte Carlo, the cell error rate of a
// state mixture at each time in the (ascending) grid: the fraction of
// cells whose drift trajectory has crossed their threshold by that time.
// probs weights the states (they must sum to ~1); pass a single spec with
// prob 1 for a per-state curve. The computation splits samples across
// workers with independent RNG streams and is deterministic for a given
// (seed, workers) pair.
func MCCERCurve(specs []StateSpec, probs []float64, times []float64, samples int64, seed uint64, workers int) MCResult {
	if len(specs) != len(probs) || len(specs) == 0 {
		panic("drift: specs/probs length mismatch")
	}
	if !sort.Float64sAreSorted(times) {
		panic("drift: time grid must be ascending")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > int(samples) && samples > 0 {
		workers = int(samples)
	}
	if samples <= 0 {
		panic("drift: non-positive sample count")
	}

	// Cumulative state-selection thresholds.
	cum := make([]float64, len(probs))
	acc := 0.0
	for i, p := range probs {
		acc += p
		cum[i] = acc
	}

	root := rng.New(seed)
	streams := make([]*rng.Rand, workers)
	for i := range streams {
		streams[i] = root.Split()
	}

	counts := make([][]int64, workers)
	var wg sync.WaitGroup
	per := samples / int64(workers)
	extra := samples % int64(workers)
	for w := 0; w < workers; w++ {
		n := per
		if int64(w) < extra {
			n++
		}
		counts[w] = make([]int64, len(times))
		wg.Add(1)
		go func(r *rng.Rand, n int64, cnt []int64) {
			defer wg.Done()
			for i := int64(0); i < n; i++ {
				// Select state by probability.
				u := r.Float64() * acc
				si := sort.SearchFloat64s(cum, u)
				if si >= len(specs) {
					si = len(specs) - 1
				}
				te := specs[si].ErrorTime(r)
				if math.IsInf(te, 1) || te > times[len(times)-1] {
					continue
				}
				// First grid index with time >= te.
				idx := sort.SearchFloat64s(times, te)
				if idx < len(cnt) {
					cnt[idx]++
				}
			}
		}(streams[w], n, counts[w])
	}
	wg.Wait()

	// Merge and prefix-sum: CER at times[i] counts all errors with te <= times[i].
	out := make([]float64, len(times))
	var running int64
	for i := range times {
		for w := 0; w < workers; w++ {
			running += counts[w][i]
		}
		out[i] = float64(running) / float64(samples)
	}
	return MCResult{CER: out, Samples: samples}
}

// MCCER estimates the cell error rate at a single time.
func MCCER(spec StateSpec, t float64, samples int64, seed uint64) float64 {
	res := MCCERCurve([]StateSpec{spec}, []float64{1}, []float64{t}, samples, seed, 0)
	return res.CER[0]
}

// QuadCER computes the cell error rate of one state at time t by
// deterministic quadrature over the written-resistance and drift-exponent
// distributions. Unlike Monte Carlo it resolves arbitrarily small rates,
// which Figure 8's deep 3LC tails and the mapping optimizer require.
func QuadCER(spec StateSpec, t float64) float64 {
	if math.IsInf(spec.Upper, 1) || t <= T0 {
		return 0
	}
	l := math.Log10(t / T0)
	wr := stats.TruncNorm{
		Mean: spec.Nominal, SD: spec.Sigma,
		Lo: spec.WriteLow(), Hi: spec.WriteHigh(),
	}
	if spec.Switch == nil || spec.Upper <= spec.Switch.AtLogR {
		// P(err) = ∫ f(x) · P(α > (τ-x)/l) dx.
		f := func(x float64) float64 {
			need := (spec.Upper - x) / l
			z := (need - spec.Alpha.Mu) / spec.Alpha.Sigma
			return wr.PDF(x) * stats.NormSF(z)
		}
		return clampProb(stats.GaussLegendrePanels(f, wr.Lo, wr.Hi, 8))
	}

	sw := spec.Switch
	// Piecewise: for x >= switch point the whole trajectory uses α2;
	// otherwise phase 1 at α1 must reach the switch resistance and phase 2
	// at α2 must cover the rest within total log-time l:
	//   (s-x)/α1 + (τ-s)/α2 <= l, α1 > 0, α2 > 0.
	tailAbove := 0.0
	if wr.Hi > sw.AtLogR {
		f := func(x float64) float64 {
			need := (spec.Upper - x) / l
			var p float64
			if sw.Mode == SwitchMeanOnly {
				if sw.Alpha.Mu > need {
					p = 1
				}
			} else {
				// Resampled and correlated α2 share the same marginal.
				p = stats.NormSF((need - sw.Alpha.Mu) / sw.Alpha.Sigma)
			}
			return wr.PDF(x) * p
		}
		tailAbove = stats.GaussLegendrePanels(f, math.Max(wr.Lo, sw.AtLogR), wr.Hi, 4)
	}
	lo := wr.Lo
	hi := math.Min(wr.Hi, sw.AtLogR)
	var below float64
	if hi > lo {
		d2 := spec.Upper - sw.AtLogR
		var perX func(x float64) float64
		switch sw.Mode {
		case SwitchMeanOnly:
			// α2 is fixed at its mean: error iff phase 2's log-duration
			// c = d2/µα2 fits and α1 >= d1/(l-c).
			c := math.Inf(1)
			if sw.Alpha.Mu > 0 {
				c = d2 / sw.Alpha.Mu
			}
			perX = func(x float64) float64 {
				rem := l - c
				if rem <= 0 {
					return 0
				}
				need1 := (sw.AtLogR - x) / rem
				return stats.NormSF((need1 - spec.Alpha.Mu) / spec.Alpha.Sigma)
			}
		case SwitchCorrelated:
			// One latent score z drives both phases:
			//   T(z) = d1/(µ1+σ1 z) + d2/(µ2+σ2 z),
			// strictly decreasing where both rates are positive; the
			// error probability is the tail beyond the z* with T(z*) = l.
			perX = func(x float64) float64 {
				d1 := sw.AtLogR - x
				zMin := math.Max(-spec.Alpha.Mu/spec.Alpha.Sigma, -sw.Alpha.Mu/sw.Alpha.Sigma) + 1e-9
				T := func(z float64) float64 {
					return d1/(spec.Alpha.Mu+spec.Alpha.Sigma*z) + d2/(sw.Alpha.Mu+sw.Alpha.Sigma*z)
				}
				const zMax = 40.0
				if T(zMax) > l {
					return 0 // even an extreme cell cannot err by time t
				}
				if T(zMin) <= l {
					return 1
				}
				loZ, hiZ := zMin, zMax
				for i := 0; i < 80; i++ {
					mid := (loZ + hiZ) / 2
					if T(mid) > l {
						loZ = mid
					} else {
						hiZ = mid
					}
				}
				return stats.NormSF((loZ + hiZ) / 2)
			}
		default: // SwitchResample
			perX = func(x float64) float64 {
				d1 := sw.AtLogR - x
				// Inner integral over α1 from d1/l (minimum rate to
				// finish phase 1 in time) upward; given α1, phase 2
				// needs α2 >= d2 / (l - d1/α1).
				a1min := d1 / l
				a1hi := spec.Alpha.Mu + 8*spec.Alpha.Sigma
				if a1min >= a1hi {
					return 0
				}
				a1lo := math.Max(a1min, math.Max(0, spec.Alpha.Mu-8*spec.Alpha.Sigma))
				if a1lo >= a1hi {
					return 0
				}
				inner := func(a1 float64) float64 {
					rem := l - d1/a1
					if rem <= 0 {
						return 0
					}
					need2 := d2 / rem
					z2 := (need2 - sw.Alpha.Mu) / sw.Alpha.Sigma
					z1 := (a1 - spec.Alpha.Mu) / spec.Alpha.Sigma
					return stats.NormPDF(z1) / spec.Alpha.Sigma * stats.NormSF(z2)
				}
				return stats.GaussLegendrePanels(inner, a1lo, a1hi, 6)
			}
		}
		f := func(x float64) float64 { return wr.PDF(x) * perX(x) }
		below = stats.GaussLegendrePanels(f, lo, hi, 8)
	}
	return clampProb(tailAbove + below)
}

// QuadCERMix computes the probability-weighted cell error rate of a state
// mixture at time t.
func QuadCERMix(specs []StateSpec, probs []float64, t float64) float64 {
	if len(specs) != len(probs) {
		panic("drift: specs/probs length mismatch")
	}
	sum := 0.0
	for i, s := range specs {
		if probs[i] == 0 {
			continue
		}
		sum += probs[i] * QuadCER(s, t)
	}
	return clampProb(sum)
}

func clampProb(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}
