package drift

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// Property: the drift trajectory is non-decreasing in time for any
// non-negative exponents, with or without the rate switch.
func TestLogRAtMonotoneProperty(t *testing.T) {
	f := func(xRaw, a1Raw, a2Raw uint16, withSwitch bool) bool {
		x := 3.6 + float64(xRaw%800)/1000 // [3.6, 4.4)
		a1 := float64(a1Raw%200) / 1000   // [0, 0.2)
		a2 := float64(a2Raw%300) / 1000   // [0, 0.3)
		spec := StateSpec{Nominal: 4, Sigma: SigmaLogR, Upper: 5.5, Alpha: Table1[1].Alpha}
		if withSwitch {
			spec.Switch = &RateSwitch{AtLogR: 4.5, Alpha: Table1[2].Alpha}
		}
		prev := -math.MaxFloat64
		for _, tt := range []float64{0.5, 1, 10, 1e3, 1e6, 1e9, 1e12} {
			v := spec.LogRAt(x, a1, a2, tt)
			if math.IsNaN(v) || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ErrorTime is consistent with LogRAt — at 99.9% of the error
// time the trajectory is below the threshold; just after it, at or above.
func TestErrorTimeConsistencyProperty(t *testing.T) {
	spec := StateSpec{Nominal: 4, Sigma: SigmaLogR, Upper: 4.6, Alpha: Table1[1].Alpha}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		// Re-derive the same draws ErrorTime makes so the trajectory can
		// be replayed: sample manually.
		x := spec.SampleWrite(r)
		alpha := r.Normal(spec.Alpha.Mu, spec.Alpha.Sigma)
		te := errorTimeSimple(x, alpha, spec.Upper)
		if math.IsInf(te, 1) {
			return alpha <= 0 || true // never errs: nothing to check cheaply
		}
		if te <= T0 {
			return true
		}
		before := spec.LogRAt(x, alpha, 0, te*0.999)
		after := spec.LogRAt(x, alpha, 0, te*1.001)
		return before <= spec.Upper+1e-9 && after >= spec.Upper-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: QuadCER of a mixture equals the probability-weighted sum of
// the per-state quadratures (linearity).
func TestQuadCERMixLinearityProperty(t *testing.T) {
	specs := []StateSpec{
		{Nominal: 4, Sigma: SigmaLogR, Upper: 4.5, Alpha: Table1[1].Alpha},
		{Nominal: 5, Sigma: SigmaLogR, Upper: 5.5, Alpha: Table1[2].Alpha},
	}
	f := func(wRaw uint8, tExp uint8) bool {
		w := float64(wRaw) / 255
		tt := math.Pow(10, 1+float64(tExp%8))
		probs := []float64{w, 1 - w}
		mix := QuadCERMix(specs, probs, tt)
		direct := w*QuadCER(specs[0], tt) + (1-w)*QuadCER(specs[1], tt)
		return math.Abs(mix-direct) <= 1e-12+1e-9*direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
