package gf2

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestGF256MatchesField(t *testing.T) {
	f := GF256()
	base := MustField(8)
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := base.Mul(uint32(a), uint32(b))
			if got := f.Mul(byte(a), byte(b)); uint32(got) != want {
				t.Fatalf("Mul(%d,%d) = %d, field says %d", a, b, got, want)
			}
		}
		if a != 0 {
			if got, want := f.Inv(byte(a)), base.Inv(uint32(a)); uint32(got) != want {
				t.Fatalf("Inv(%d) = %d, field says %d", a, got, want)
			}
		}
	}
}

func TestGF256FieldAxioms(t *testing.T) {
	f := GF256()
	for a := 1; a < 256; a++ {
		if f.Mul(byte(a), f.Inv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
		if f.Div(byte(a), byte(a)) != 1 {
			t.Fatalf("a/a != 1 for a=%d", a)
		}
		if f.Mul(byte(a), 1) != byte(a) || f.Mul(byte(a), 0) != 0 {
			t.Fatalf("identity/absorber broken for a=%d", a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if f.Mul(a, b) != f.Mul(b, a) {
			t.Fatalf("commutativity broken at (%d,%d)", a, b)
		}
		if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
			t.Fatalf("associativity broken at (%d,%d,%d)", a, b, c)
		}
		if f.Mul(a, b^c) != f.Mul(a, b)^f.Mul(a, c) {
			t.Fatalf("distributivity broken at (%d,%d,%d)", a, b, c)
		}
	}
}

func TestGF256ZeroPanics(t *testing.T) {
	f := GF256()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s(0) did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Inv", func() { f.Inv(0) })
	mustPanic("Div", func() { f.Div(3, 0) })
}

func TestGF256SliceKernels(t *testing.T) {
	f := GF256()
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 16, 64, 257} {
		src := make([]byte, n)
		rng.Read(src)
		for _, c := range []byte{0, 1, 2, 0x53, 0xFF} {
			want := make([]byte, n)
			for i := range src {
				want[i] = f.Mul(c, src[i])
			}
			got := make([]byte, n)
			rng.Read(got)
			base := append([]byte(nil), got...)
			f.MulAddSlice(got, src, c)
			for i := range got {
				if got[i] != base[i]^want[i] {
					t.Fatalf("MulAddSlice n=%d c=%d index %d: got %d want %d",
						n, c, i, got[i], base[i]^want[i])
				}
			}
			f.MulSlice(got, src, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSlice n=%d c=%d mismatch", n, c)
			}
		}
	}
}

func TestGF256Row(t *testing.T) {
	f := GF256()
	row := f.Row(0x1D)
	for x := 0; x < 256; x++ {
		if row[x] != f.Mul(0x1D, byte(x)) {
			t.Fatalf("Row(0x1D)[%d] = %d, Mul says %d", x, row[x], f.Mul(0x1D, byte(x)))
		}
	}
}

func BenchmarkGF256Mul(b *testing.B) {
	f := GF256()
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= f.Mul(byte(i), byte(i>>8)|1)
	}
	sinkByte = acc
}

func BenchmarkFieldMul8(b *testing.B) {
	f := MustField(8)
	var acc uint32
	for i := 0; i < b.N; i++ {
		acc ^= f.Mul(uint32(i)&0xFF, (uint32(i>>8)&0xFF)|1)
	}
	sinkUint = acc
}

func BenchmarkGF256MulAddSlice(b *testing.B) {
	f := GF256()
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MulAddSlice(dst, src, 0x8E)
	}
}

var (
	sinkByte byte
	sinkUint uint32
)
