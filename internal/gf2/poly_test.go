package gf2

import (
	"testing"
	"testing/quick"
)

func polyFromMask(mask uint32) Poly {
	p := NewPoly(32)
	for d := 0; d < 32; d++ {
		if mask&(1<<d) != 0 {
			p.SetCoeff(d, true)
		}
	}
	return p
}

func TestPolyBasics(t *testing.T) {
	p := PolyFromCoeffs(0, 1, 3) // 1 + x + x^3
	if p.Degree() != 3 {
		t.Fatalf("degree = %d", p.Degree())
	}
	if !p.Coeff(0) || !p.Coeff(1) || p.Coeff(2) || !p.Coeff(3) {
		t.Fatal("coefficients wrong")
	}
	if p.String() != "x^3+x+1" {
		t.Fatalf("String = %q", p.String())
	}
	z := NewPoly(5)
	if !z.IsZero() || z.Degree() != -1 || z.String() != "0" {
		t.Fatal("zero polynomial wrong")
	}
}

func TestPolyDegreeMaintenance(t *testing.T) {
	p := PolyFromCoeffs(2, 5)
	p.SetCoeff(5, false)
	if p.Degree() != 2 {
		t.Fatalf("degree after clearing leading term = %d", p.Degree())
	}
	p.SetCoeff(70, true)
	if p.Degree() != 70 {
		t.Fatalf("degree after growth = %d", p.Degree())
	}
}

func TestPolyAdd(t *testing.T) {
	a := PolyFromCoeffs(0, 2)
	b := PolyFromCoeffs(1, 2)
	sum := a.Add(b) // 1 + x (x^2 cancels)
	if !sum.Equal(PolyFromCoeffs(0, 1)) {
		t.Fatalf("Add = %v", sum)
	}
	if !a.Add(a).IsZero() {
		t.Fatal("p+p should be zero over GF(2)")
	}
}

func TestPolyMulKnown(t *testing.T) {
	// (x+1)(x+1) = x^2+1 over GF(2)
	a := PolyFromCoeffs(0, 1)
	if got := a.Mul(a); !got.Equal(PolyFromCoeffs(0, 2)) {
		t.Fatalf("(x+1)^2 = %v", got)
	}
	// (x^2+x+1)(x+1) = x^3+1
	b := PolyFromCoeffs(0, 1, 2)
	if got := b.Mul(a); !got.Equal(PolyFromCoeffs(0, 3)) {
		t.Fatalf("product = %v", got)
	}
}

func TestPolyModKnown(t *testing.T) {
	// x^3+1 mod (x+1) = 0; x^3 mod (x+1) = 1
	if !PolyFromCoeffs(0, 3).Mod(PolyFromCoeffs(0, 1)).IsZero() {
		t.Fatal("x^3+1 mod x+1 != 0")
	}
	if got := PolyFromCoeffs(3).Mod(PolyFromCoeffs(0, 1)); !got.Equal(PolyFromCoeffs(0)) {
		t.Fatalf("x^3 mod x+1 = %v", got)
	}
}

func TestPolyModPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PolyFromCoeffs(1).Mod(NewPoly(3))
}

// Property: (a*b) mod b == 0 and ((a mod b) + b*floor) reconstructs a's
// residue class.
func TestPolyMulModProperty(t *testing.T) {
	f := func(am, bm uint32) bool {
		b := polyFromMask(bm | 1) // ensure nonzero
		a := polyFromMask(am)
		if !a.Mul(b).Mod(b).IsZero() {
			return false
		}
		r := a.Mod(b)
		return r.IsZero() || r.Degree() < b.Degree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: multiplication is commutative and distributes over addition.
func TestPolyRingAxioms(t *testing.T) {
	f := func(am, bm, cm uint32) bool {
		a, b, c := polyFromMask(am), polyFromMask(bm), polyFromMask(cm)
		if !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		lhs := a.Mul(b.Add(c))
		rhs := a.Mul(b).Add(a.Mul(c))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
