package gf2

import "strings"

// Poly is a polynomial over GF(2), stored as packed coefficient bits,
// lowest degree first. The generator polynomials of the BCH codes used in
// the paper have degree up to ~120, so operations are word-parallel.
type Poly struct {
	w []uint64
	// deg is the degree of the polynomial, or -1 for the zero polynomial.
	deg int
}

// NewPoly returns the zero polynomial with capacity for degree maxDeg.
func NewPoly(maxDeg int) Poly {
	return Poly{w: make([]uint64, maxDeg/64+1), deg: -1}
}

// PolyFromCoeffs builds a polynomial from the degrees of its nonzero
// terms, e.g. PolyFromCoeffs(0, 1, 3) = 1 + x + x^3.
func PolyFromCoeffs(degrees ...int) Poly {
	maxDeg := 0
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	p := NewPoly(maxDeg)
	for _, d := range degrees {
		p.SetCoeff(d, !p.Coeff(d))
	}
	return p
}

// Degree returns the degree, or -1 for the zero polynomial.
func (p Poly) Degree() int { return p.deg }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return p.deg < 0 }

// Coeff returns the coefficient of x^d.
func (p Poly) Coeff(d int) bool {
	if d < 0 || d >= len(p.w)*64 {
		return false
	}
	return p.w[d>>6]>>(d&63)&1 != 0
}

// SetCoeff assigns the coefficient of x^d, growing storage as needed, and
// maintains the cached degree.
func (p *Poly) SetCoeff(d int, v bool) {
	if d < 0 {
		panic("gf2: negative degree")
	}
	for d >= len(p.w)*64 {
		p.w = append(p.w, 0)
	}
	mask := uint64(1) << (d & 63)
	if v {
		p.w[d>>6] |= mask
		if d > p.deg {
			p.deg = d
		}
	} else {
		p.w[d>>6] &^= mask
		if d == p.deg {
			p.recomputeDegree()
		}
	}
}

func (p *Poly) recomputeDegree() {
	for i := len(p.w) - 1; i >= 0; i-- {
		if p.w[i] != 0 {
			d := i * 64
			w := p.w[i]
			for w > 1 {
				w >>= 1
				d++
			}
			p.deg = d
			return
		}
	}
	p.deg = -1
}

// Clone returns an independent copy.
func (p Poly) Clone() Poly {
	out := Poly{w: make([]uint64, len(p.w)), deg: p.deg}
	copy(out.w, p.w)
	return out
}

// Equal reports polynomial equality.
func (p Poly) Equal(q Poly) bool {
	if p.deg != q.deg {
		return false
	}
	n := len(p.w)
	if len(q.w) < n {
		n = len(q.w)
	}
	for i := 0; i < n; i++ {
		if p.w[i] != q.w[i] {
			return false
		}
	}
	for i := n; i < len(p.w); i++ {
		if p.w[i] != 0 {
			return false
		}
	}
	for i := n; i < len(q.w); i++ {
		if q.w[i] != 0 {
			return false
		}
	}
	return true
}

// Add returns p + q over GF(2).
func (p Poly) Add(q Poly) Poly {
	n := len(p.w)
	if len(q.w) > n {
		n = len(q.w)
	}
	out := Poly{w: make([]uint64, n)}
	copy(out.w, p.w)
	for i := range q.w {
		out.w[i] ^= q.w[i]
	}
	out.recomputeDegree()
	return out
}

// Mul returns p · q over GF(2) (carry-less polynomial product).
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return NewPoly(0)
	}
	out := NewPoly(p.deg + q.deg)
	for d := 0; d <= p.deg; d++ {
		if !p.Coeff(d) {
			continue
		}
		for e := 0; e <= q.deg; e++ {
			if q.Coeff(e) {
				out.SetCoeff(d+e, !out.Coeff(d+e))
			}
		}
	}
	return out
}

// Mod returns p mod q; q must be nonzero.
func (p Poly) Mod(q Poly) Poly {
	if q.IsZero() {
		panic("gf2: modulo by zero polynomial")
	}
	r := p.Clone()
	for r.deg >= q.deg {
		shift := r.deg - q.deg
		for d := 0; d <= q.deg; d++ {
			if q.Coeff(d) {
				r.SetCoeff(d+shift, !r.Coeff(d+shift))
			}
		}
	}
	return r
}

// String renders the polynomial in conventional descending form.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var terms []string
	for d := p.deg; d >= 0; d-- {
		if !p.Coeff(d) {
			continue
		}
		switch d {
		case 0:
			terms = append(terms, "1")
		case 1:
			terms = append(terms, "x")
		default:
			terms = append(terms, "x^"+itoa(d))
		}
	}
	return strings.Join(terms, "+")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
